package oclgemm

import (
	"oclgemm/internal/tunedb"
)

// TunedKernel is one persisted tuning result.
type TunedKernel = tunedb.Record

// TuningDB is a persistent set of tuning results keyed by
// (device, precision).
type TuningDB = tunedb.DB

// PaperKernels returns the paper's published Table II kernels as a
// tuning database — ready-to-use configurations for every catalogued
// device without running a search.
func PaperKernels() *TuningDB { return tunedb.PaperTableII() }

// LoadTuningDB reads a tuning database written by (*TuningDB).Save,
// validating every record.
func LoadTuningDB(path string) (*TuningDB, error) { return tunedb.Load(path) }

// RecordTuneResult converts a Tune outcome into a persistable record.
func RecordTuneResult(deviceID string, res *TuneResult) TunedKernel {
	return tunedb.FromParams(deviceID, res.Params, res.GFlops, res.BestN, "search")
}

// ParamsFor returns the kernel parameters stored in db for a device and
// precision, if present.
func ParamsFor(db *TuningDB, deviceID string, prec Precision) (Params, bool, error) {
	rec, ok := db.Get(deviceID, prec)
	if !ok {
		return Params{}, false, nil
	}
	p, err := rec.Params()
	return p, true, err
}
