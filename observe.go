package oclgemm

import (
	"oclgemm/internal/obs"
)

// Metrics is a process-local metrics registry: named counters, gauges
// and histograms with an atomic, allocation-free hot path. One registry
// can be shared by any number of GEMM routines, pools and tuning runs —
// instruments with the same name aggregate. The zero of everything is
// cheap: components given no registry skip all recording.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's instruments,
// renderable as an aligned table or JSON.
type MetricsSnapshot = obs.Snapshot

// Trace is a fixed-capacity ring buffer of completed spans. When full,
// the oldest spans are overwritten (see Trace.Dropped) so tracing never
// blocks or grows without bound.
type Trace = obs.Tracer

// TraceSpan is one completed span: name, start time, duration and the
// bytes/flops/attribute annotations the recording layer attached.
type TraceSpan = obs.SpanRecord

// PhaseStat aggregates the spans of one phase name: call count, total
// seconds, bytes and flops.
type PhaseStat = obs.Phase

// BenchReport is the machine-readable benchmark artifact gemmbench
// emits (schema "oclgemm-bench/v1"): the run's configuration, wall
// time, throughput, per-phase breakdown and a metrics snapshot.
type BenchReport = obs.BenchReport

// BenchEntry is one named throughput row inside a BenchReport: a leg of
// a comparative run, e.g. the batched path versus its loop-of-GEMMs
// baseline.
type BenchEntry = obs.BenchEntry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTrace returns a span ring buffer holding up to capacity spans
// (<= 0 selects the default, 4096).
func NewTrace(capacity int) *Trace { return obs.NewTracer(capacity) }

// PhaseBreakdown aggregates spans by name, sorted by total time
// descending — the per-phase (pack/kernel/copy) profile of a trace.
func PhaseBreakdown(spans []TraceSpan) []PhaseStat { return obs.PhaseBreakdown(spans) }

// RenderPhases formats a phase breakdown as an aligned table with each
// phase's share of the total.
func RenderPhases(phases []PhaseStat) string { return obs.RenderPhases(phases) }

// NewBenchReport returns a report skeleton for the given mode
// ("single" or "pool") stamped with the current time.
func NewBenchReport(mode string) *BenchReport { return obs.NewBenchReport(mode) }

// Observe attaches a metrics registry and/or span trace to the routine
// (either may be nil). Plans the engine builds afterwards record
// per-phase pack/kernel/copy timings, plan-cache and pack-reuse
// counters, and the underlying runtime's launch/buffer accounting.
// Call it before the first Run: plans already cached keep the
// instruments they were built with (Close first to rebuild). Safe to
// call concurrently with Runs.
func (g *GEMM) Observe(m *Metrics, t *Trace) {
	g.eng.Impl().SetObservability(m, t)
}
