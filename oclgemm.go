// Package oclgemm is an auto-tuning system for fast matrix
// multiplication (GEMM) kernels in OpenCL, reproducing Matsumoto,
// Nakasato and Sedukhin, "Performance Tuning of Matrix Multiplication
// in OpenCL on Different GPUs and CPUs" (SC Companion 2012).
//
// The system consists of a GEMM kernel code generator (parameterized by
// two-level blocking factors, work-group shape, vector width, stride
// modes, local-memory staging, block-major data layouts, and three
// algorithm schedules), a heuristic search engine implementing the
// paper's three-stage selection procedure, and full GEMM routines that
// copy/transpose/re-lay-out operands before running the tuned
// C ← α·Aᵀ·B + β·C kernel.
//
// Because this repository targets no physical GPUs, kernels execute on
// a simulated OpenCL runtime (functional, with exact work-group/barrier
// semantics) and are timed by a calibrated analytic performance model
// of the paper's six processors; see DESIGN.md for the substitution
// notes. Everything needed to regenerate the paper's Tables I-III and
// Figures 7-11 ships in this module (cmd/gemmbench).
//
// # Quick start
//
//	dev, _ := oclgemm.DeviceByID("tahiti")
//	res, _ := oclgemm.Tune(oclgemm.TuneOptions{
//		Device: dev, Precision: oclgemm.Single, MaxCandidates: 4000,
//	})
//	g, _ := oclgemm.NewGEMM(dev, res.Params)
//	a := oclgemm.NewMatrix[float32](m, k, oclgemm.ColMajor)
//	b := oclgemm.NewMatrix[float32](k, n, oclgemm.ColMajor)
//	c := oclgemm.NewMatrix[float32](m, n, oclgemm.ColMajor)
//	_ = g.Run(oclgemm.NoTrans, oclgemm.NoTrans, 1, a, b, 0, c)
package oclgemm

import (
	"context"
	"fmt"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/core"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/perfmodel"
	"oclgemm/internal/tunedb"
)

// Precision selects single (SGEMM) or double (DGEMM) precision.
type Precision = matrix.Precision

// Precision values.
const (
	Single = matrix.Single
	Double = matrix.Double
)

// Order is the storage order of a plain matrix.
type Order = matrix.Order

// Storage orders.
const (
	RowMajor = matrix.RowMajor
	ColMajor = matrix.ColMajor
)

// Layout is a kernel operand data layout (row-major, CBL or RBL).
type Layout = matrix.Layout

// Operand layouts (paper §III-D).
const (
	LayoutRowMajor = matrix.LayoutRowMajor
	LayoutCBL      = matrix.LayoutCBL
	LayoutRBL      = matrix.LayoutRBL
)

// Scalar constrains matrix element types.
type Scalar = matrix.Scalar

// Matrix is a dense matrix of float32 or float64.
type Matrix[T Scalar] = matrix.Matrix[T]

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix[T Scalar](rows, cols int, order Order) *Matrix[T] {
	return matrix.New[T](rows, cols, order)
}

// Transpose selects op(X) for a GEMM operand.
type Transpose = blas.Transpose

// Transpose values.
const (
	NoTrans = blas.NoTrans
	Trans   = blas.Trans
)

// Algorithm is one of the paper's three GEMM schedules.
type Algorithm = codegen.Algorithm

// Algorithms (§III-E).
const (
	BA = codegen.BA
	PL = codegen.PL
	DB = codegen.DB
)

// Params is a full kernel-generator parameter set (§III).
type Params = codegen.Params

// Device describes one of the catalogued processors (Table I).
type Device = device.Spec

// Devices returns the six processors of Table I.
func Devices() []*Device { return device.All() }

// DeviceCatalog returns every catalogued processor: Table I's six plus
// the Cypress (§IV-C) and Sandy Bridge SDK-2012 (Fig. 11) variants —
// the full set PoolGEMM may draw members from.
func DeviceCatalog() []*Device { return device.Catalog() }

// DeviceByID looks a device up by its short identifier: "tahiti",
// "cayman", "kepler", "fermi", "sandybridge", "bulldozer", "cypress"
// or "sandybridge-sdk2012".
func DeviceByID(id string) (*Device, error) { return device.ByID(id) }

// GenerateSource emits the OpenCL C kernel for a parameter set.
func GenerateSource(p Params) (string, error) { return p.GenerateSource() }

// KernelGFlops returns the modeled kernel-only performance of a
// parameter set on a device for an m×n×k problem.
func KernelGFlops(d *Device, p Params, m, n, k int) (float64, error) {
	return perfmodel.KernelGFlops(d, &p, m, n, k)
}

// TuneOptions configures a tuning run.
type TuneOptions struct {
	// Device to tune for (required).
	Device *Device
	// Precision of the kernels (Single or Double).
	Precision Precision
	// MaxCandidates caps the stage-1 sweep (0 = 25000, the paper's
	// "tens of thousands of variants" scale; negative = unlimited).
	MaxCandidates int
	// MaxSize is the largest stage-2 problem size (0 = 8192).
	MaxSize int

	// EvalTimeout bounds each kernel evaluation; hung evaluations are
	// rejected as timeouts instead of stalling the search (0 = no
	// timeout).
	EvalTimeout time.Duration
	// MaxRetries re-attempts transient evaluation failures with
	// exponential backoff (0 = no retries).
	MaxRetries int
	// Verify runs each finalist's generated kernel on the simulated
	// runtime and disqualifies any whose results disagree with the
	// reference GEMM (the paper's "passed testing" step).
	Verify bool
	// JournalPath enables checkpoint/resume: stage-1 progress appends
	// to this JSON-lines file, and an interrupted run re-launched with
	// the same path resumes instead of restarting.
	JournalPath string
	// Context cancels a running search (nil = background).
	Context context.Context
	// Metrics, when set, receives the search's measurement record:
	// per-evaluation timing (tune.eval.seconds), evaluation and failure
	// counters, and the final per-cause rejection tally.
	Metrics *Metrics
}

// CurvePoint is one (N, GFlop/s) sample of a tuned kernel.
type CurvePoint = core.SizedPerf

// TuneResult is the outcome of a tuning run.
type TuneResult struct {
	// Params is the fastest kernel's parameter set (Table II row).
	Params Params
	// GFlops is the maximum modeled performance across sizes.
	GFlops float64
	// BestN is the problem size where GFlops was observed.
	BestN int
	// Curve is performance across problem sizes (Fig. 7 line).
	Curve []CurvePoint
	// Candidates counts the valid kernel variants enumerated in the
	// (sampled) parameter space — the stage-1 sweep's input, not the
	// number actually measured (see Measured). Rejected counts variants
	// that failed generation, compilation, testing or the correctness
	// gate.
	Candidates, Rejected int
	// Measured counts the stage-1 kernel variants whose evaluation was
	// attempted (including journal replays); Measured <= Candidates.
	Measured int
	// RejectedBy breaks Rejected down by cause ("generation",
	// "compile", "timeout", "transient", "wrong-result", "panic",
	// "other").
	RejectedBy map[string]int
	// Resumed counts stage-1 measurements replayed from the
	// checkpoint journal rather than re-evaluated.
	Resumed int
	// Fallback is empty for a genuine search result; TuneOrFallback
	// sets it to a description of the degradation when the search
	// failed and a published kernel was substituted.
	Fallback string
}

// Tune runs the paper's three-stage search (§III-F) and returns the
// fastest kernel for the device and precision.
func Tune(opts TuneOptions) (*TuneResult, error) {
	tn, err := core.New(core.Options{
		Device:        opts.Device,
		Precision:     opts.Precision,
		MaxCandidates: opts.MaxCandidates,
		MaxSize:       opts.MaxSize,
		EvalTimeout:   opts.EvalTimeout,
		MaxRetries:    opts.MaxRetries,
		Verify:        opts.Verify,
		JournalPath:   opts.JournalPath,
		Context:       opts.Context,
		Obs:           opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	sel, err := tn.Search()
	if err != nil {
		return nil, err
	}
	res := &TuneResult{
		Params:     sel.Best.Params,
		GFlops:     sel.Best.Best,
		BestN:      sel.Best.BestN,
		Curve:      sel.Best.Curve,
		Candidates: sel.Stats.Enumerated,
		Measured:   sel.Stats.Measured,
		Rejected:   sel.Stats.Rejected,
		Resumed:    sel.Stats.Resumed,
	}
	if len(sel.Stats.RejectedBy) > 0 {
		res.RejectedBy = make(map[string]int, len(sel.Stats.RejectedBy))
		for c, n := range sel.Stats.RejectedBy {
			res.RejectedBy[c.String()] = n
		}
	}
	return res, nil
}

// TuneOrFallback runs Tune and degrades gracefully: if the search fails
// (interrupted, no viable kernel, invalid options with a usable
// device), it falls back to the paper's published Table II kernel for
// the device — or, for an uncatalogued device, the nearest catalogued
// device of the same kind by peak performance — and reports the
// degradation in TuneResult.Fallback. It errors only when no fallback
// kernel is valid for the device.
func TuneOrFallback(opts TuneOptions) (*TuneResult, error) {
	res, err := Tune(opts)
	if err == nil {
		return res, nil
	}
	if opts.Device == nil {
		return nil, err
	}
	rec, how, ferr := fallbackRecord(opts.Device, opts.Precision)
	if ferr != nil {
		return nil, fmt.Errorf("tuning failed (%w) and no fallback kernel: %v", err, ferr)
	}
	p, perr := rec.Params()
	if perr != nil {
		return nil, fmt.Errorf("tuning failed (%w) and fallback record invalid: %v", err, perr)
	}
	return &TuneResult{
		Params:   p,
		GFlops:   rec.GFlops,
		BestN:    rec.BestN,
		Fallback: fmt.Sprintf("search failed (%v); using %s (%s)", err, how, rec.Source),
	}, nil
}

// fallbackRecord finds the published kernel for the device, preferring
// an exact ID match and degrading to the nearest same-kind device by
// peak GFlop/s whose kernel passes the device checks. A miss on both
// paths is a typed tunedb.NotFoundError.
func fallbackRecord(d *Device, prec Precision) (TunedKernel, string, error) {
	return tunedb.LookupOrFallback(PaperKernels(), d, prec)
}
