package level3

import (
	"fmt"
	"math"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

// Cholesky factors the symmetric positive-definite n×n matrix A (lower
// triangle stored) in place into L·Lᵀ, using the blocked right-looking
// algorithm: unblocked factorization of the diagonal block on the
// host, a device TRSM for the panel, and a device SYRK/GEMM trailing
// update — the textbook LAPACK structure whose flops are almost all
// GEMM, which is why the paper's routine matters.
func Cholesky[T matrix.Scalar](e *Engine, a *matrix.Matrix[T]) error {
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("level3: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	for _, k := range blocks(n, e.NB) {
		rk := blockLen(k, n, e.NB)
		akk := a.View(k, k, rk, rk)
		if err := potf2(akk); err != nil {
			return err
		}
		rest := n - k - rk
		if rest == 0 {
			continue
		}
		panel := a.View(k+rk, k, rest, rk)
		// Panel: A_ik ← A_ik · L_kk⁻ᵀ, i.e. a right-side TRSM with the
		// transposed lower factor.
		if err := TRSM(e, Right, Lower, blas.Trans, NonUnit, T(1), akk, panel); err != nil {
			return err
		}
		// Trailing update: A₂₂ ← A₂₂ − panel·panelᵀ (lower triangle).
		trailing := a.View(k+rk, k+rk, rest, rest)
		if err := SYRK(e, Lower, blas.NoTrans, T(-1), panel, T(1), trailing); err != nil {
			return err
		}
	}
	return nil
}

// potf2 is the unblocked host Cholesky of one diagonal block.
func potf2[T matrix.Scalar](a *matrix.Matrix[T]) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := float64(a.At(j, j))
		for p := 0; p < j; p++ {
			v := float64(a.At(j, p))
			d -= v * v
		}
		if d <= 0 {
			return ErrNotSPD
		}
		d = sqrt(d)
		a.Set(j, j, T(d))
		for i := j + 1; i < n; i++ {
			v := float64(a.At(i, j))
			for p := 0; p < j; p++ {
				v -= float64(a.At(i, p)) * float64(a.At(j, p))
			}
			a.Set(i, j, T(v/d))
		}
	}
	return nil
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

// CholeskySolve solves A·X = B given the Cholesky factor L computed by
// Cholesky (in the lower triangle of a), overwriting B with X:
// forward then backward triangular solves through the engine.
func CholeskySolve[T matrix.Scalar](e *Engine, a *matrix.Matrix[T], b *matrix.Matrix[T]) error {
	if err := TRSM(e, Left, Lower, blas.NoTrans, NonUnit, T(1), a, b); err != nil {
		return err
	}
	return TRSM(e, Left, Lower, blas.Trans, NonUnit, T(1), a, b)
}

// LU factors the m×n matrix A in place into P·A = L·U with partial
// pivoting (blocked right-looking getrf): host panel factorization,
// device TRSM for the U panel, device GEMM for the trailing update.
// The returned slice is the pivot sequence (LAPACK ipiv convention:
// row i was swapped with piv[i]).
func LU[T matrix.Scalar](e *Engine, a *matrix.Matrix[T]) ([]int, error) {
	m, n := a.Rows, a.Cols
	minDim := m
	if n < minDim {
		minDim = n
	}
	piv := make([]int, minDim)
	for _, k := range blocks(minDim, e.NB) {
		rk := blockLen(k, minDim, e.NB)
		// Factor the panel A[k:m, k:k+rk] on the host with pivoting.
		panel := a.View(k, k, m-k, rk)
		if err := getf2(panel, piv[k:k+rk]); err != nil {
			return piv, err
		}
		// Globalize pivot indices and apply the swaps to the rest of
		// the matrix (columns outside the panel).
		for i := 0; i < rk; i++ {
			piv[k+i] += k
			p := piv[k+i]
			if p != k+i {
				swapRowsOutside(a, k+i, p, k, k+rk)
			}
		}
		if k+rk >= n {
			continue
		}
		// U panel: solve L₁₁·U₁₂ = A₁₂ (unit lower).
		l11 := a.View(k, k, rk, rk)
		u12 := a.View(k, k+rk, rk, n-k-rk)
		if err := TRSM(e, Left, Lower, blas.NoTrans, Unit, T(1), l11, u12); err != nil {
			return piv, err
		}
		// Trailing update: A₂₂ ← A₂₂ − L₂₁·U₁₂.
		if k+rk < m {
			l21 := a.View(k+rk, k, m-k-rk, rk)
			a22 := a.View(k+rk, k+rk, m-k-rk, n-k-rk)
			if err := gemmDev(e, blas.NoTrans, blas.NoTrans, T(-1), l21, u12, T(1), a22); err != nil {
				return piv, err
			}
		}
	}
	return piv, nil
}

// getf2 is the unblocked host LU of one panel with partial pivoting;
// piv receives panel-relative pivot rows.
func getf2[T matrix.Scalar](a *matrix.Matrix[T], piv []int) error {
	m, n := a.Rows, a.Cols
	for j := 0; j < n; j++ {
		// Pivot search in column j.
		p := j
		best := abs(float64(a.At(j, j)))
		for i := j + 1; i < m; i++ {
			if v := abs(float64(a.At(i, j))); v > best {
				best, p = v, i
			}
		}
		piv[j] = p
		if best == 0 {
			return ErrSingular
		}
		if p != j {
			for c := 0; c < n; c++ {
				vj, vp := a.At(j, c), a.At(p, c)
				a.Set(j, c, vp)
				a.Set(p, c, vj)
			}
		}
		d := float64(a.At(j, j))
		for i := j + 1; i < m; i++ {
			l := float64(a.At(i, j)) / d
			a.Set(i, j, T(l))
			for c := j + 1; c < n; c++ {
				a.Set(i, c, T(float64(a.At(i, c))-l*float64(a.At(j, c))))
			}
		}
	}
	return nil
}

// swapRowsOutside swaps rows i and p of a everywhere except columns
// [cLo, cHi) (already swapped by the panel factorization).
func swapRowsOutside[T matrix.Scalar](a *matrix.Matrix[T], i, p, cLo, cHi int) {
	for c := 0; c < a.Cols; c++ {
		if c >= cLo && c < cHi {
			continue
		}
		vi, vp := a.At(i, c), a.At(p, c)
		a.Set(i, c, vp)
		a.Set(p, c, vi)
	}
}

// LUSolve solves A·X = B using the factorization from LU (factors in a,
// pivots in piv), overwriting B with X.
func LUSolve[T matrix.Scalar](e *Engine, a *matrix.Matrix[T], piv []int, b *matrix.Matrix[T]) error {
	// Apply the pivots to B.
	for i, p := range piv {
		if p != i {
			for c := 0; c < b.Cols; c++ {
				vi, vp := b.At(i, c), b.At(p, c)
				b.Set(i, c, vp)
				b.Set(p, c, vi)
			}
		}
	}
	if err := TRSM(e, Left, Lower, blas.NoTrans, Unit, T(1), a, b); err != nil {
		return err
	}
	return TRSM(e, Left, Upper, blas.NoTrans, NonUnit, T(1), a, b)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
