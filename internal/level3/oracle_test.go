package level3

// Element-wise verification of the blocked Level-3 reductions against
// the dedicated internal/blas reference routines (not reconstructed
// GEMM identities): every element of the device-computed result is
// compared against the straightforward triple-loop/substitution
// oracle, across uplo/trans/side/diag and both precisions.

import (
	"math"
	"math/rand"
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

// maxAbsDiffTri returns the worst |got-want| over the uplo triangle
// (SYRK leaves the other triangle untouched).
func maxAbsDiffTri[T matrix.Scalar](got, want *matrix.Matrix[T], uplo Uplo) float64 {
	var worst float64
	n := got.Rows
	for i := 0; i < n; i++ {
		lo, hi := 0, i+1
		if uplo == Upper {
			lo, hi = i, n
		}
		for j := lo; j < hi; j++ {
			if d := math.Abs(float64(got.At(i, j)) - float64(want.At(i, j))); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func randMat[T matrix.Scalar](rows, cols int, seed int64) *matrix.Matrix[T] {
	m := matrix.New[T](rows, cols, matrix.RowMajor)
	m.FillRandom(rand.New(rand.NewSource(seed)))
	return m
}

// randTriDominant builds a well-conditioned triangular matrix: random
// entries with the diagonal lifted to n so substitution and the
// blocked solve stay numerically tame.
func randTriDominant[T matrix.Scalar](n int, seed int64) *matrix.Matrix[T] {
	a := randMat[T](n, n, seed)
	for i := 0; i < n; i++ {
		a.Set(i, i, T(float64(n))+a.At(i, i))
	}
	return a
}

func syrkOracleCase[T matrix.Scalar](t *testing.T, e *Engine, uplo Uplo, trans blas.Transpose, n, k int, prec matrix.Precision) {
	t.Helper()
	ar, ac := n, k
	if trans == blas.Trans {
		ar, ac = k, n
	}
	a := randMat[T](ar, ac, 11)
	c0 := randMat[T](n, n, 13)
	got := c0.Clone()
	if err := SYRK(e, uplo, trans, T(1.25), a, T(0.5), got); err != nil {
		t.Fatalf("SYRK(%v,%v,%dx%d): %v", uplo, trans, n, k, err)
	}
	want := c0.Clone()
	blas.SYRK(uplo == Upper, trans, T(1.25), a, T(0.5), want)
	tol := matrix.Tolerance(prec, k) * float64(n)
	if d := maxAbsDiffTri(got, want, uplo); d > tol {
		t.Errorf("SYRK(%v,%v,%dx%d) max |diff| = %g > %g vs blas.SYRK", uplo, trans, n, k, d, tol)
	}
	// The opposite triangle must be untouched.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inTri := (uplo == Lower && j <= i) || (uplo == Upper && j >= i)
			if !inTri && got.At(i, j) != c0.At(i, j) {
				t.Fatalf("SYRK(%v,%v) modified (%d,%d) outside the %v triangle", uplo, trans, i, j, uplo)
			}
		}
	}
}

func TestSYRKMatchesBLASOracle(t *testing.T) {
	e := testEngine(t)
	defer e.Close()
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			for _, sz := range []struct{ n, k int }{{13, 7}, {24, 16}, {17, 24}} {
				syrkOracleCase[float64](t, e, uplo, trans, sz.n, sz.k, matrix.Double)
				syrkOracleCase[float32](t, e, uplo, trans, sz.n, sz.k, matrix.Single)
			}
		}
	}
}

func trsmOracleCase[T matrix.Scalar](t *testing.T, e *Engine, side Side, uplo Uplo, trans blas.Transpose, diag Diag, m, n int, prec matrix.Precision) {
	t.Helper()
	na := m
	if side == Right {
		na = n
	}
	a := randTriDominant[T](na, 17)
	b0 := randMat[T](m, n, 19)
	got := b0.Clone()
	if err := TRSM(e, side, uplo, trans, diag, T(1.5), a, got); err != nil {
		t.Fatalf("TRSM(%v,%v,%v,%v,%dx%d): %v", side, uplo, trans, diag, m, n, err)
	}
	want := b0.Clone()
	blas.TRSM(side == Left, uplo == Upper, diag == Unit, trans, T(1.5), a, want)
	tol := matrix.Tolerance(prec, na) * float64(na)
	var worst float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(float64(got.At(i, j)) - float64(want.At(i, j))); d > worst {
				worst = d
			}
		}
	}
	if worst > tol {
		t.Errorf("TRSM(%v,%v,%v,%v,%dx%d) max |diff| = %g > %g vs blas.TRSM", side, uplo, trans, diag, m, n, worst, tol)
	}
}

func TestTRSMMatchesBLASOracle(t *testing.T) {
	e := testEngine(t)
	defer e.Close()
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					trsmOracleCase[float64](t, e, side, uplo, trans, diag, 13, 9, matrix.Double)
				}
			}
		}
	}
	// Single precision spot-checks (the full cross is float64 above).
	trsmOracleCase[float32](t, e, Left, Lower, blas.NoTrans, NonUnit, 13, 9, matrix.Single)
	trsmOracleCase[float32](t, e, Right, Upper, blas.Trans, Unit, 9, 13, matrix.Single)
}
