// Package level3 builds GEMM-based Level-3 BLAS routines and blocked
// LAPACK-style factorizations on top of the tuned GEMM implementation —
// the consumer layer the paper's introduction motivates ("GEMM … is a
// building block of LAPACK and other Level-3 BLAS routines", citing
// Kågström, Ling and Van Loan's GEMM-based Level-3 BLAS).
//
// Each routine partitions its operands into nb×nb blocks: the O(n³)
// bulk of the work is routed through the device GEMM, while the small
// diagonal-block kernels (triangular solve/multiply, symmetric rank-k
// diagonal, unblocked Cholesky/LU) run on the host.
package level3

import (
	"errors"
	"fmt"
	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
	"oclgemm/internal/sched"
)

// Uplo selects the triangle of a symmetric/triangular matrix.
type Uplo int

const (
	// Lower triangle.
	Lower Uplo = iota
	// Upper triangle.
	Upper
)

// Side selects the multiplication side for SYMM/TRMM/TRSM.
type Side int

const (
	// Left: op(A)·B.
	Left Side = iota
	// Right: B·op(A).
	Right
)

// Diag marks a triangular matrix as unit- or non-unit-diagonal.
type Diag int

const (
	// NonUnit uses the stored diagonal.
	NonUnit Diag = iota
	// Unit assumes an implicit unit diagonal.
	Unit
)

// ErrNotSPD reports a Cholesky factorization that hit a non-positive
// pivot (the matrix is not symmetric positive definite).
var ErrNotSPD = errors.New("level3: matrix is not positive definite")

// ErrSingular reports an exactly singular pivot in LU.
var ErrSingular = errors.New("level3: matrix is singular")

// Engine runs Level-3 routines with the device GEMM as the bulk
// operation. Block multiplies route through a reusable gemmimpl.Engine,
// so the factorization inner loops (SYRK/TRSM/Cholesky/LU) reuse plans
// across block shapes and skip repacking operands that are unchanged
// between consecutive calls (e.g. the fixed panel of a TRSM or SYRK
// sweep).
type Engine struct {
	eng *gemmimpl.Engine
	// pool, when set, routes every bulk multiply through the
	// multi-device scheduler instead of a single device engine.
	pool *sched.Pool
	// NB is the blocking size; diagonal blocks of NB×NB run on the
	// host, everything else through the device GEMM.
	NB int
}

// New creates an engine from a device and tuned kernel parameters. The
// block size defaults to max(Mwg, Nwg) of the kernel (so device GEMM
// calls are at least one work-group panel).
func New(d *device.Spec, p codegen.Params) (*Engine, error) {
	im, err := gemmimpl.New(d, p)
	if err != nil {
		return nil, err
	}
	nb := max(p.Mwg, p.Nwg)
	return &Engine{eng: gemmimpl.NewEngine(im), NB: nb}, nil
}

// NewWithPool creates an engine whose bulk multiplies run on a
// multi-device scheduler pool instead of one device. The block size is
// the pool's BlockSize (the largest member work-group panel), so every
// device GEMM call is at least one panel on every member. The engine
// borrows the pool; closing the engine does not close the pool.
func NewWithPool(p *sched.Pool) *Engine {
	return &Engine{pool: p, NB: p.BlockSize()}
}

// GEMMEngine exposes the underlying execution engine (plan-reuse stats
// for tests and tools); nil for a pool-backed engine.
func (e *Engine) GEMMEngine() *gemmimpl.Engine { return e.eng }

// Pool exposes the scheduler pool of a pool-backed engine (nil for a
// single-device engine).
func (e *Engine) Pool() *sched.Pool { return e.pool }

// SetWorkers bounds per-launch work-group parallelism (0 = GOMAXPROCS).
func (e *Engine) SetWorkers(n int) {
	if e.pool != nil {
		e.pool.SetWorkers(n)
		return
	}
	e.eng.Impl().SetWorkers(n)
}

// Close releases the engine's cached plans (device buffers, kernels).
// The engine remains usable; the next call rebuilds its plans. A
// borrowed pool is left open for its owner to close.
func (e *Engine) Close() {
	if e.eng != nil {
		e.eng.Close()
	}
}

// gemm routes one block multiply through the device — or across the
// whole pool when the engine is pool-backed.
func gemmDev[T matrix.Scalar](e *Engine, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	if e.pool != nil {
		return sched.Run(e.pool, ta, tb, alpha, a, b, beta, c)
	}
	return gemmimpl.EngineRun(e.eng, ta, tb, alpha, a, b, beta, c)
}

func blocks(n, nb int) []int {
	var out []int
	for s := 0; s < n; s += nb {
		out = append(out, s)
	}
	return out
}

func blockLen(start, n, nb int) int {
	if start+nb > n {
		return n - start
	}
	return nb
}

// SYRK computes C ← alpha·A·Aᵀ + beta·C (trans == NoTrans) or
// C ← alpha·Aᵀ·A + beta·C (trans == Trans), updating only the uplo
// triangle of the n×n matrix C. Off-diagonal blocks go through the
// device GEMM; diagonal blocks run on the host.
func SYRK[T matrix.Scalar](e *Engine, uplo Uplo, trans blas.Transpose, alpha T, a *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	n := c.Rows
	if c.Cols != n {
		return fmt.Errorf("level3: SYRK needs square C, got %dx%d", c.Rows, c.Cols)
	}
	an, k := a.Rows, a.Cols
	if trans == blas.Trans {
		an, k = a.Cols, a.Rows
	}
	if an != n {
		return fmt.Errorf("level3: SYRK dimension mismatch: op(A) is %dx%d, C is %dx%d", an, k, n, n)
	}
	// aBlock returns the block of op(A) covering rows [i, i+ri).
	aBlock := func(i, ri int) *matrix.Matrix[T] {
		if trans == blas.Trans {
			return a.View(0, i, k, ri)
		}
		return a.View(i, 0, ri, k)
	}
	opA, opB := blas.NoTrans, blas.Trans
	if trans == blas.Trans {
		opA, opB = blas.Trans, blas.NoTrans
	}
	for _, i := range blocks(n, e.NB) {
		ri := blockLen(i, n, e.NB)
		for _, j := range blocks(n, e.NB) {
			rj := blockLen(j, n, e.NB)
			inTriangle := (uplo == Lower && i > j) || (uplo == Upper && i < j)
			if i == j {
				syrkDiagHost(uplo, trans, alpha, aBlock(i, ri), beta, c.View(i, i, ri, ri))
				continue
			}
			if !inTriangle {
				continue
			}
			if err := gemmDev(e, opA, opB, alpha, aBlock(i, ri), aBlock(j, rj), beta, c.View(i, j, ri, rj)); err != nil {
				return err
			}
		}
	}
	return nil
}

// syrkDiagHost updates one diagonal block of C on the host (only the
// relevant triangle). For trans == NoTrans the block a is n×k rows of
// A; for Trans it is the k×n column slice of A.
func syrkDiagHost[T matrix.Scalar](uplo Uplo, trans blas.Transpose, alpha T, a *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) {
	n := c.Rows
	k := a.Cols
	if trans == blas.Trans {
		k = a.Rows
	}
	at := func(i, p int) float64 {
		if trans == blas.Trans {
			return float64(a.At(p, i))
		}
		return float64(a.At(i, p))
	}
	for i := 0; i < n; i++ {
		lo, hi := 0, i+1
		if uplo == Upper {
			lo, hi = i, n
		}
		for j := lo; j < hi; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += at(i, p) * at(j, p)
			}
			c.Set(i, j, T(float64(alpha)*acc+float64(beta)*float64(c.At(i, j))))
		}
	}
}

// SYMM computes C ← alpha·A·B + beta·C (side == Left) or
// C ← alpha·B·A + beta·C (side == Right) where A is symmetric with the
// uplo triangle stored. Block pairs reference the stored triangle with
// a transposition when needed, so every bulk multiply is a plain GEMM.
func SYMM[T matrix.Scalar](e *Engine, side Side, uplo Uplo, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	m, n := c.Rows, c.Cols
	na := m
	if side == Right {
		na = n
	}
	if a.Rows != na || a.Cols != na {
		return fmt.Errorf("level3: SYMM A must be %dx%d, got %dx%d", na, na, a.Rows, a.Cols)
	}
	if side == Left && (b.Rows != m || b.Cols != n) || side == Right && (b.Rows != m || b.Cols != n) {
		return fmt.Errorf("level3: SYMM B must be %dx%d, got %dx%d", m, n, b.Rows, b.Cols)
	}
	// symBlock returns block (i, j) of the full symmetric A as a view
	// of the stored triangle plus the op to apply. Diagonal blocks
	// straddle the triangle boundary, so they are materialized from the
	// stored half into a small symmetric copy.
	symBlock := func(i, j, ri, rj int) (*matrix.Matrix[T], blas.Transpose) {
		if i == j {
			blk := matrix.New[T](ri, ri, matrix.RowMajor)
			for r := 0; r < ri; r++ {
				for c := 0; c < ri; c++ {
					gr, gc := i+r, j+c
					if (uplo == Lower && gc > gr) || (uplo == Upper && gc < gr) {
						gr, gc = gc, gr
					}
					blk.Set(r, c, a.At(gr, gc))
				}
			}
			return blk, blas.NoTrans
		}
		stored := (uplo == Lower && i > j) || (uplo == Upper && i < j)
		if stored {
			return a.View(i, j, ri, rj), blas.NoTrans
		}
		return a.View(j, i, rj, ri), blas.Trans
	}
	for _, i := range blocks(m, e.NB) {
		ri := blockLen(i, m, e.NB)
		for _, j := range blocks(n, e.NB) {
			rj := blockLen(j, n, e.NB)
			cBlk := c.View(i, j, ri, rj)
			// Accumulate over the inner block dimension.
			first := true
			if side == Left {
				for _, p := range blocks(m, e.NB) {
					rp := blockLen(p, m, e.NB)
					aBlk, op := symBlock(i, p, ri, rp)
					bt := beta
					if !first {
						bt = 1
					}
					if err := gemmDev(e, op, blas.NoTrans, alpha, aBlk, b.View(p, j, rp, rj), bt, cBlk); err != nil {
						return err
					}
					first = false
				}
			} else {
				for _, p := range blocks(n, e.NB) {
					rp := blockLen(p, n, e.NB)
					aBlk, op := symBlock(p, j, rp, rj)
					bt := beta
					if !first {
						bt = 1
					}
					if err := gemmDev(e, blas.NoTrans, op, alpha, b.View(i, p, ri, rp), aBlk, bt, cBlk); err != nil {
						return err
					}
					first = false
				}
			}
		}
	}
	return nil
}

// TRMM computes B ← alpha·op(A)·B (side == Left) or B ← alpha·B·op(A)
// (side == Right) with A triangular. Diagonal blocks multiply on the
// host; the rest is GEMM.
func TRMM[T matrix.Scalar](e *Engine, side Side, uplo Uplo, trans blas.Transpose, diag Diag, alpha T, a *matrix.Matrix[T], b *matrix.Matrix[T]) error {
	m, n := b.Rows, b.Cols
	na := m
	if side == Right {
		na = n
	}
	if a.Rows != na || a.Cols != na {
		return fmt.Errorf("level3: TRMM A must be %dx%d, got %dx%d", na, na, a.Rows, a.Cols)
	}
	// Effective triangle of op(A).
	effLower := (uplo == Lower) == (trans == blas.NoTrans)

	// triBlock returns block (i, j) of op(A) (i, j in block starts).
	triBlock := func(i, j, ri, rj int) (*matrix.Matrix[T], blas.Transpose) {
		if trans == blas.NoTrans {
			return a.View(i, j, ri, rj), blas.NoTrans
		}
		return a.View(j, i, rj, ri), blas.Trans
	}

	if side == Left {
		// B_i ← alpha · Σ_j op(A)_ij B_j. Process rows so that
		// unmodified B_j are still available: for effLower go bottom-up
		// (dependencies j ≤ i), for effUpper top-down.
		starts := blocks(m, e.NB)
		if effLower {
			for idx := len(starts) - 1; idx >= 0; idx-- {
				if err := trmmLeftRow(e, starts, idx, effLower, diag, alpha, triBlock, b, n); err != nil {
					return err
				}
			}
		} else {
			for idx := 0; idx < len(starts); idx++ {
				if err := trmmLeftRow(e, starts, idx, effLower, diag, alpha, triBlock, b, n); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Right side: B_j ← alpha · Σ_p B_p op(A)_pj. For effLower the
	// dependencies are p ≥ j: process columns left-to-right; for
	// effUpper right-to-left.
	starts := blocks(n, e.NB)
	order := make([]int, len(starts))
	for i := range starts {
		if effLower {
			order[i] = i
		} else {
			order[i] = len(starts) - 1 - i
		}
	}
	for _, idx := range order {
		j := starts[idx]
		rj := blockLen(j, n, e.NB)
		bj := b.View(0, j, m, rj)
		// Diagonal contribution first (uses the current B_j).
		tmp := bj.Clone()
		diagBlk, op := triBlock(j, j, rj, rj)
		trmmDiagHostRight(effLower, diag, op, alpha, diagBlk, tmp, bj)
		// Off-diagonal contributions come from columns not yet
		// processed in this order, i.e. still unmodified.
		for pdx, p := range starts {
			inTri := (effLower && pdx > idx) || (!effLower && pdx < idx)
			if !inTri {
				continue
			}
			rp := blockLen(p, n, e.NB)
			aBlk, opA := triBlock(p, j, rp, rj)
			if err := gemmDev(e, blas.NoTrans, opA, alpha, b.View(0, p, m, rp), aBlk, 1, bj); err != nil {
				return err
			}
		}
	}
	return nil
}

// trmmLeftRow updates one block row of B for left-side TRMM.
func trmmLeftRow[T matrix.Scalar](e *Engine, starts []int, idx int, effLower bool, diag Diag, alpha T,
	triBlock func(i, j, ri, rj int) (*matrix.Matrix[T], blas.Transpose), b *matrix.Matrix[T], n int) error {
	m := b.Rows
	i := starts[idx]
	ri := blockLen(i, m, e.NB)
	bi := b.View(i, 0, ri, n)
	// Diagonal contribution replaces B_i.
	diagBlk, op := triBlock(i, i, ri, ri)
	tmp := bi.Clone()
	trmmDiagHostLeft(effLower, diag, op, alpha, diagBlk, tmp, bi)
	// Off-diagonal: B_i += alpha · op(A)_ij · B_j for j in the strict
	// triangle (those B_j are not yet modified given the processing
	// order).
	for jdx, j := range starts {
		inTri := (effLower && jdx < idx) || (!effLower && jdx > idx)
		if !inTri {
			continue
		}
		rj := blockLen(j, m, e.NB)
		aBlk, opA := triBlock(i, j, ri, rj)
		if err := gemmDev(e, opA, blas.NoTrans, alpha, aBlk, b.View(j, 0, rj, n), 1, bi); err != nil {
			return err
		}
	}
	return nil
}

// trmmDiagHostLeft computes dst = alpha · tri(op(A)) · src for one
// small diagonal block (host).
func trmmDiagHostLeft[T matrix.Scalar](effLower bool, diag Diag, op blas.Transpose, alpha T, a, src, dst *matrix.Matrix[T]) {
	n := src.Rows
	cols := src.Cols
	at := func(i, j int) float64 {
		if diag == Unit && i == j {
			return 1
		}
		if op == blas.Trans {
			return float64(a.At(j, i))
		}
		return float64(a.At(i, j))
	}
	for i := 0; i < n; i++ {
		lo, hi := 0, i+1
		if !effLower {
			lo, hi = i, n
		}
		for c := 0; c < cols; c++ {
			var acc float64
			for j := lo; j < hi; j++ {
				acc += at(i, j) * float64(src.At(j, c))
			}
			dst.Set(i, c, T(float64(alpha)*acc))
		}
	}
}

// trmmDiagHostRight computes dst = alpha · src · tri(op(A)) (host).
func trmmDiagHostRight[T matrix.Scalar](effLower bool, diag Diag, op blas.Transpose, alpha T, a, src, dst *matrix.Matrix[T]) {
	rows := src.Rows
	n := src.Cols
	at := func(i, j int) float64 {
		if diag == Unit && i == j {
			return 1
		}
		if op == blas.Trans {
			return float64(a.At(j, i))
		}
		return float64(a.At(i, j))
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			lo, hi := j, n
			if !effLower {
				lo, hi = 0, j+1
			}
			var acc float64
			for p := lo; p < hi; p++ {
				acc += float64(src.At(r, p)) * at(p, j)
			}
			dst.Set(r, j, T(float64(alpha)*acc))
		}
	}
}

// TRSM solves op(A)·X = alpha·B (side == Left) or X·op(A) = alpha·B
// (side == Right) for X, overwriting B, with A triangular. Diagonal
// blocks solve on the host; the panel updates are GEMM.
func TRSM[T matrix.Scalar](e *Engine, side Side, uplo Uplo, trans blas.Transpose, diag Diag, alpha T, a *matrix.Matrix[T], b *matrix.Matrix[T]) error {
	m, n := b.Rows, b.Cols
	na := m
	if side == Right {
		na = n
	}
	if a.Rows != na || a.Cols != na {
		return fmt.Errorf("level3: TRSM A must be %dx%d, got %dx%d", na, na, a.Rows, a.Cols)
	}
	if alpha != 1 {
		scale(b, alpha)
	}
	effLower := (uplo == Lower) == (trans == blas.NoTrans)
	triBlock := func(i, j, ri, rj int) (*matrix.Matrix[T], blas.Transpose) {
		if trans == blas.NoTrans {
			return a.View(i, j, ri, rj), blas.NoTrans
		}
		return a.View(j, i, rj, ri), blas.Trans
	}

	if side == Left {
		starts := blocks(m, e.NB)
		order := make([]int, len(starts))
		for i := range starts {
			if effLower {
				order[i] = i // forward substitution
			} else {
				order[i] = len(starts) - 1 - i // backward
			}
		}
		for _, idx := range order {
			i := starts[idx]
			ri := blockLen(i, m, e.NB)
			bi := b.View(i, 0, ri, n)
			diagBlk, op := triBlock(i, i, ri, ri)
			trsmDiagHostLeft(effLower, diag, op, diagBlk, bi)
			// Eliminate this block from the remaining rows:
			// B_p -= op(A)_pi · X_i.
			for pdx, p := range starts {
				pending := (effLower && pdx > idx) || (!effLower && pdx < idx)
				if !pending {
					continue
				}
				rp := blockLen(p, m, e.NB)
				aBlk, opA := triBlock(p, i, rp, ri)
				if err := gemmDev(e, opA, blas.NoTrans, T(-1), aBlk, bi, 1, b.View(p, 0, rp, n)); err != nil {
					return err
				}
			}
		}
		return nil
	}

	starts := blocks(n, e.NB)
	order := make([]int, len(starts))
	for i := range starts {
		if effLower {
			order[i] = len(starts) - 1 - i // X·L = B: solve right-to-left
		} else {
			order[i] = i
		}
	}
	for _, idx := range order {
		j := starts[idx]
		rj := blockLen(j, n, e.NB)
		bj := b.View(0, j, m, rj)
		diagBlk, op := triBlock(j, j, rj, rj)
		trsmDiagHostRight(effLower, diag, op, diagBlk, bj)
		// Eliminate from pending columns: B_p -= X_j · op(A)_jp.
		for pdx, p := range starts {
			pending := (effLower && pdx < idx) || (!effLower && pdx > idx)
			if !pending {
				continue
			}
			rp := blockLen(p, n, e.NB)
			aBlk, opA := triBlock(j, p, rj, rp)
			if err := gemmDev(e, blas.NoTrans, opA, T(-1), bj, aBlk, 1, b.View(0, p, m, rp)); err != nil {
				return err
			}
		}
	}
	return nil
}

// trsmDiagHostLeft solves tri(op(A))·X = B in place for one diagonal
// block (host forward/backward substitution).
func trsmDiagHostLeft[T matrix.Scalar](effLower bool, diag Diag, op blas.Transpose, a, b *matrix.Matrix[T]) {
	n := b.Rows
	cols := b.Cols
	at := func(i, j int) float64 {
		if op == blas.Trans {
			return float64(a.At(j, i))
		}
		return float64(a.At(i, j))
	}
	for c := 0; c < cols; c++ {
		if effLower {
			for i := 0; i < n; i++ {
				acc := float64(b.At(i, c))
				for j := 0; j < i; j++ {
					acc -= at(i, j) * float64(b.At(j, c))
				}
				if diag == NonUnit {
					acc /= at(i, i)
				}
				b.Set(i, c, T(acc))
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				acc := float64(b.At(i, c))
				for j := i + 1; j < n; j++ {
					acc -= at(i, j) * float64(b.At(j, c))
				}
				if diag == NonUnit {
					acc /= at(i, i)
				}
				b.Set(i, c, T(acc))
			}
		}
	}
}

// trsmDiagHostRight solves X·tri(op(A)) = B in place (host).
func trsmDiagHostRight[T matrix.Scalar](effLower bool, diag Diag, op blas.Transpose, a, b *matrix.Matrix[T]) {
	rows := b.Rows
	n := b.Cols
	at := func(i, j int) float64 {
		if op == blas.Trans {
			return float64(a.At(j, i))
		}
		return float64(a.At(i, j))
	}
	for r := 0; r < rows; r++ {
		if effLower {
			// x·L = b: x_j = (b_j - Σ_{p>j} x_p L_pj)/L_jj, j from high to low.
			for j := n - 1; j >= 0; j-- {
				acc := float64(b.At(r, j))
				for p := j + 1; p < n; p++ {
					acc -= float64(b.At(r, p)) * at(p, j)
				}
				if diag == NonUnit {
					acc /= at(j, j)
				}
				b.Set(r, j, T(acc))
			}
		} else {
			for j := 0; j < n; j++ {
				acc := float64(b.At(r, j))
				for p := 0; p < j; p++ {
					acc -= float64(b.At(r, p)) * at(p, j)
				}
				if diag == NonUnit {
					acc /= at(j, j)
				}
				b.Set(r, j, T(acc))
			}
		}
	}
}

func scale[T matrix.Scalar](m *matrix.Matrix[T], alpha T) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			m.Set(i, j, alpha*m.At(i, j))
		}
	}
}
