package level3

import (
	"errors"
	"math/rand"
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// testEngine uses a small kernel so blocked paths (diagonal blocks,
// panels, trailing updates) are all exercised at modest sizes.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 8, Nwg: 8, Kwg: 4,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1,
		SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	e, err := New(device.Tahiti(), p)
	if err != nil {
		t.Fatal(err)
	}
	if e.NB != 8 {
		t.Fatalf("NB = %d, want 8", e.NB)
	}
	return e
}

func randGeneral(rows, cols int, seed int64) *matrix.Matrix[float64] {
	m := matrix.New[float64](rows, cols, matrix.RowMajor)
	m.FillRandom(rand.New(rand.NewSource(seed)))
	return m
}

// randSPD builds a well-conditioned SPD matrix A = G·Gᵀ + n·I.
func randSPD(n int, seed int64) *matrix.Matrix[float64] {
	g := randGeneral(n, n, seed)
	a := matrix.New[float64](n, n, matrix.RowMajor)
	blas.GEMM(blas.NoTrans, blas.Trans, 1.0, g, g, 0.0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

// naive full symmetric/triangular helpers for references.

func symFull(a *matrix.Matrix[float64], uplo Uplo) *matrix.Matrix[float64] {
	n := a.Rows
	out := matrix.New[float64](n, n, matrix.RowMajor)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src := a.At(i, j)
			if (uplo == Lower && j > i) || (uplo == Upper && j < i) {
				src = a.At(j, i)
			}
			out.Set(i, j, src)
		}
	}
	return out
}

func triFull(a *matrix.Matrix[float64], uplo Uplo, diag Diag) *matrix.Matrix[float64] {
	n := a.Rows
	out := matrix.New[float64](n, n, matrix.RowMajor)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				if diag == Unit {
					out.Set(i, j, 1)
				} else {
					out.Set(i, j, a.At(i, j))
				}
			case (uplo == Lower && j < i) || (uplo == Upper && j > i):
				out.Set(i, j, a.At(i, j))
			}
		}
	}
	return out
}

func lowerDiff(got, want *matrix.Matrix[float64]) float64 {
	worst := 0.0
	for i := 0; i < got.Rows; i++ {
		for j := 0; j <= i; j++ {
			d := got.At(i, j) - want.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestSYRK(t *testing.T) {
	e := testEngine(t)
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			n, k := 20, 13
			var a *matrix.Matrix[float64]
			if trans == blas.Trans {
				a = randGeneral(k, n, 1)
			} else {
				a = randGeneral(n, k, 1)
			}
			c := randGeneral(n, n, 2)
			want := c.Clone()
			// Reference: full GEMM, then compare the triangle only.
			if trans == blas.Trans {
				blas.GEMM(blas.Trans, blas.NoTrans, 0.5, a, a, -1.5, want)
			} else {
				blas.GEMM(blas.NoTrans, blas.Trans, 0.5, a, a, -1.5, want)
			}
			if err := SYRK(e, uplo, trans, 0.5, a, -1.5, c); err != nil {
				t.Fatalf("uplo=%v trans=%v: %v", uplo, trans, err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					inTri := (uplo == Lower && j <= i) || (uplo == Upper && j >= i)
					if inTri {
						if d := c.At(i, j) - want.At(i, j); d > 1e-12 || d < -1e-12 {
							t.Fatalf("uplo=%v trans=%v: triangle mismatch at (%d,%d)", uplo, trans, i, j)
						}
					} else if c.At(i, j) != want.At(i, j) {
						// outside the triangle C must be untouched —
						// want still holds GEMM's full update there, so
						// compare against the original instead
						_ = j
					}
				}
			}
		}
	}
}

func TestSYRKLeavesOppositeTriangleUntouched(t *testing.T) {
	e := testEngine(t)
	n, k := 17, 9
	a := randGeneral(n, k, 3)
	c := randGeneral(n, n, 4)
	orig := c.Clone()
	if err := SYRK(e, Lower, blas.NoTrans, 1.0, a, 0.0, c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.At(i, j) != orig.At(i, j) {
				t.Fatalf("upper triangle modified at (%d,%d)", i, j)
			}
		}
	}
}

func TestSYMM(t *testing.T) {
	e := testEngine(t)
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			m, n := 19, 14
			na := m
			if side == Right {
				na = n
			}
			a := randGeneral(na, na, 5)
			b := randGeneral(m, n, 6)
			c := randGeneral(m, n, 7)
			want := c.Clone()
			full := symFull(a, uplo)
			if side == Left {
				blas.GEMM(blas.NoTrans, blas.NoTrans, 1.25, full, b, 0.5, want)
			} else {
				blas.GEMM(blas.NoTrans, blas.NoTrans, 1.25, b, full, 0.5, want)
			}
			if err := SYMM(e, side, uplo, 1.25, a, b, 0.5, c); err != nil {
				t.Fatalf("side=%v uplo=%v: %v", side, uplo, err)
			}
			if d := matrix.MaxRelDiff(c, want); d > 1e-12 {
				t.Errorf("side=%v uplo=%v: diff %g", side, uplo, d)
			}
		}
	}
}

func TestTRMM(t *testing.T) {
	e := testEngine(t)
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					m, n := 18, 11
					na := m
					if side == Right {
						na = n
					}
					a := randGeneral(na, na, 8)
					b := randGeneral(m, n, 9)
					want := matrix.New[float64](m, n, matrix.RowMajor)
					full := triFull(a, uplo, diag)
					if side == Left {
						blas.GEMM(trans, blas.NoTrans, 0.75, full, b, 0.0, want)
					} else {
						blas.GEMM(blas.NoTrans, trans, 0.75, b, full, 0.0, want)
					}
					got := b.Clone()
					if err := TRMM(e, side, uplo, trans, diag, 0.75, a, got); err != nil {
						t.Fatalf("side=%v uplo=%v trans=%v diag=%v: %v", side, uplo, trans, diag, err)
					}
					if d := matrix.MaxRelDiff(got, want); d > 1e-12 {
						t.Errorf("side=%v uplo=%v trans=%v diag=%v: diff %g", side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

func TestTRSM(t *testing.T) {
	e := testEngine(t)
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					m, n := 16, 13
					na := m
					if side == Right {
						na = n
					}
					// Well-conditioned triangular factor: dominant diagonal.
					a := randGeneral(na, na, 10)
					for i := 0; i < na; i++ {
						a.Set(i, i, 4+a.At(i, i))
					}
					b := randGeneral(m, n, 11)
					x := b.Clone()
					if err := TRSM(e, side, uplo, trans, diag, 2.0, a, x); err != nil {
						t.Fatalf("side=%v uplo=%v trans=%v diag=%v: %v", side, uplo, trans, diag, err)
					}
					// Verify op(A)·X == 2B (or X·op(A) == 2B).
					check := matrix.New[float64](m, n, matrix.RowMajor)
					full := triFull(a, uplo, diag)
					if side == Left {
						blas.GEMM(trans, blas.NoTrans, 1.0, full, x, 0.0, check)
					} else {
						blas.GEMM(blas.NoTrans, trans, 1.0, x, full, 0.0, check)
					}
					want := b.Clone()
					scale(want, 2.0)
					if d := matrix.MaxRelDiff(check, want); d > 1e-10 {
						t.Errorf("side=%v uplo=%v trans=%v diag=%v: residual %g", side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	e := testEngine(t)
	n := 29 // not a block multiple: exercises ragged blocks
	a := randSPD(n, 12)
	orig := a.Clone()
	if err := Cholesky(e, a); err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reproduce the original (lower triangle comparison).
	l := triFull(a, Lower, NonUnit)
	recon := matrix.New[float64](n, n, matrix.RowMajor)
	blas.GEMM(blas.NoTrans, blas.Trans, 1.0, l, l, 0.0, recon)
	if d := lowerDiff(recon, orig); d > 1e-9 {
		t.Errorf("L·Lᵀ differs from A by %g", d)
	}

	// Solve A·X = B through the factor and check the residual.
	bmat := randGeneral(n, 5, 13)
	x := bmat.Clone()
	if err := CholeskySolve(e, a, x); err != nil {
		t.Fatal(err)
	}
	resid := matrix.New[float64](n, 5, matrix.RowMajor)
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.0, orig, x, 0.0, resid)
	if d := matrix.MaxRelDiff(resid, bmat); d > 1e-9 {
		t.Errorf("Cholesky solve residual %g", d)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	e := testEngine(t)
	a := matrix.New[float64](6, 6, matrix.RowMajor)
	for i := 0; i < 6; i++ {
		a.Set(i, i, -1)
	}
	if err := Cholesky(e, a); !errors.Is(err, ErrNotSPD) {
		t.Errorf("want ErrNotSPD, got %v", err)
	}
}

func TestLU(t *testing.T) {
	e := testEngine(t)
	n := 27
	a := randGeneral(n, n, 14)
	orig := a.Clone()
	piv, err := LU(e, a)
	if err != nil {
		t.Fatal(err)
	}
	// P·A == L·U.
	l := triFull(a, Lower, Unit)
	u := triFull(a, Upper, NonUnit)
	lu := matrix.New[float64](n, n, matrix.RowMajor)
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.0, l, u, 0.0, lu)
	pa := orig.Clone()
	for i, p := range piv {
		if p != i {
			for c := 0; c < n; c++ {
				vi, vp := pa.At(i, c), pa.At(p, c)
				pa.Set(i, c, vp)
				pa.Set(p, c, vi)
			}
		}
	}
	if d := matrix.MaxRelDiff(lu, pa); d > 1e-9 {
		t.Errorf("L·U differs from P·A by %g", d)
	}

	// Solve.
	bmat := randGeneral(n, 4, 15)
	x := bmat.Clone()
	if err := LUSolve(e, a, piv, x); err != nil {
		t.Fatal(err)
	}
	resid := matrix.New[float64](n, 4, matrix.RowMajor)
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.0, orig, x, 0.0, resid)
	if d := matrix.MaxRelDiff(resid, bmat); d > 1e-8 {
		t.Errorf("LU solve residual %g", d)
	}
}

func TestLUSingular(t *testing.T) {
	e := testEngine(t)
	a := matrix.New[float64](5, 5, matrix.RowMajor) // all zeros
	if _, err := LU(e, a); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	e := testEngine(t)
	// Zero in the (0,0) position: fails without pivoting.
	n := 10
	a := randGeneral(n, n, 16)
	a.Set(0, 0, 0)
	orig := a.Clone()
	piv, err := LU(e, a)
	if err != nil {
		t.Fatal(err)
	}
	if piv[0] == 0 {
		t.Error("pivoting should have swapped row 0")
	}
	bmat := randGeneral(n, 1, 17)
	x := bmat.Clone()
	if err := LUSolve(e, a, piv, x); err != nil {
		t.Fatal(err)
	}
	resid := matrix.New[float64](n, 1, matrix.RowMajor)
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.0, orig, x, 0.0, resid)
	if d := matrix.MaxRelDiff(resid, bmat); d > 1e-8 {
		t.Errorf("pivoted solve residual %g", d)
	}
}

func TestDimensionErrors(t *testing.T) {
	e := testEngine(t)
	sq := randGeneral(6, 6, 18)
	rect := randGeneral(6, 4, 19)
	if err := SYRK(e, Lower, blas.NoTrans, 1.0, sq, 0.0, rect); err == nil {
		t.Error("SYRK must reject non-square C")
	}
	if err := SYMM(e, Left, Lower, 1.0, rect, sq, 0.0, sq); err == nil {
		t.Error("SYMM must reject non-square A")
	}
	if err := TRMM(e, Left, Lower, blas.NoTrans, NonUnit, 1.0, rect, sq); err == nil {
		t.Error("TRMM must reject non-square A")
	}
	if err := TRSM(e, Right, Upper, blas.NoTrans, NonUnit, 1.0, rect, sq); err == nil {
		t.Error("TRSM must reject non-square A")
	}
	if err := Cholesky(e, rect); err == nil {
		t.Error("Cholesky must reject non-square A")
	}
}
