package level3

import (
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/sched"
	"oclgemm/internal/tunedb"
)

// poolEngine builds a level-3 engine over a heterogeneous four-device
// scheduler pool with small test kernels.
func poolEngine(t *testing.T) *Engine {
	t.Helper()
	shapes := []codegen.Params{
		{Algorithm: codegen.BA, Mwg: 8, Nwg: 8, Kwg: 4,
			MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4, Kwi: 2, VectorWidth: 1,
			SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL},
		{Algorithm: codegen.BA, Mwg: 16, Nwg: 16, Kwg: 8,
			MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4, Kwi: 2, VectorWidth: 2,
			SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL},
	}
	db := &tunedb.DB{Version: tunedb.FormatVersion}
	var devs []*device.Spec
	for i, id := range []string{"tahiti", "cayman", "sandybridge", "bulldozer"} {
		d, err := device.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		for _, prec := range []matrix.Precision{matrix.Single, matrix.Double} {
			p := shapes[i%len(shapes)]
			p.Precision = prec
			db.Put(tunedb.FromParams(d.ID, p, 100, 1024, "test"))
		}
	}
	pool, err := sched.New(sched.Options{Devices: devs, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	e := NewWithPool(pool)
	if e.NB != 16 {
		t.Fatalf("pool NB = %d, want 16 (largest member work-group panel)", e.NB)
	}
	return e
}

// A pool-backed engine must produce bit-identical factorizations to a
// single-device engine with the same blocking: every bulk multiply is
// partitioned over M/N only, so each GEMM call — and therefore the
// whole blocked algorithm — keeps its accumulation order.
func TestPoolBackedEngineBitIdentical(t *testing.T) {
	pe := poolEngine(t)
	se := testEngine(t)
	se.NB = pe.NB // same level-3 blocking, so the GEMM call sequence matches

	requireSame := func(got, want *matrix.Matrix[float64], label string) {
		t.Helper()
		for i := 0; i < got.Rows; i++ {
			for j := 0; j < got.Cols; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("%s: [%d,%d] = %v, single-device %v", label, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}

	// Cholesky on a ragged-block SPD matrix.
	n := 53
	spd := randSPD(n, 31)
	ap, as := spd.Clone(), spd.Clone()
	if err := Cholesky(pe, ap); err != nil {
		t.Fatalf("pool Cholesky: %v", err)
	}
	if err := Cholesky(se, as); err != nil {
		t.Fatalf("single Cholesky: %v", err)
	}
	requireSame(ap, as, "Cholesky")

	// SYRK with beta != 0.
	a := randGeneral(n, 37, 32)
	cp, cs := randSPD(n, 33), (*matrix.Matrix[float64])(nil)
	cs = cp.Clone()
	if err := SYRK(pe, Lower, blas.NoTrans, 1.5, a, 0.5, cp); err != nil {
		t.Fatalf("pool SYRK: %v", err)
	}
	if err := SYRK(se, Lower, blas.NoTrans, 1.5, a, 0.5, cs); err != nil {
		t.Fatalf("single SYRK: %v", err)
	}
	requireSame(cp, cs, "SYRK")

	// LU with partial pivoting (pivot decisions must match exactly too).
	g := randGeneral(n, n, 34)
	gp, gs := g.Clone(), g.Clone()
	pivP, err := LU(pe, gp)
	if err != nil {
		t.Fatalf("pool LU: %v", err)
	}
	pivS, err := LU(se, gs)
	if err != nil {
		t.Fatalf("single LU: %v", err)
	}
	for i := range pivP {
		if pivP[i] != pivS[i] {
			t.Fatalf("pivot %d differs: pool %d, single %d", i, pivP[i], pivS[i])
		}
	}
	requireSame(gp, gs, "LU")

	// Per-device stats must show the pool actually did the bulk work.
	var tiles int
	for _, st := range pe.Pool().Stats() {
		tiles += st.Tiles
	}
	if tiles == 0 {
		t.Error("pool executed no tiles — bulk multiplies did not route through the scheduler")
	}
}
