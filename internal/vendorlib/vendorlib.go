// Package vendorlib models the closed-source comparison libraries of
// the paper's evaluation — AMD APPML clBLAS, NVIDIA CUBLAS, MAGMA,
// Intel MKL, AMD ACML and ATLAS — as analytic performance curves
// calibrated to the numbers the paper reports (Table III and
// Figs. 9-11). The libraries themselves are proprietary and bound to
// the paper's hardware, so their role here is what it is in the paper:
// comparison series with the right plateaus and ramp shapes.
//
// The curve is a saturation law gf(N) = plateau · N/(N + rampN): kernel
// launches dominate at small N, the plateau is the Table III maximum.
package vendorlib

import (
	"fmt"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

// TypePerf holds plateau GFlop/s per GEMM type, in the Table III
// column order NN, NT, TN, TT.
type TypePerf [4]float64

// Max returns the maximum over the four types.
func (tp TypePerf) Max() float64 {
	m := tp[0]
	for _, v := range tp[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Baseline is one library on one device.
type Baseline struct {
	// Name is the library identification as the paper cites it.
	Name string
	// DeviceID is the catalog device the numbers belong to.
	DeviceID string
	// RampN is the half-plateau problem size of the saturation curve.
	RampN float64
	// DP and SP are the plateau GFlop/s per GEMM type (Table III; for
	// libraries the paper only plots, all four types share the figure's
	// plateau).
	DP, SP TypePerf
}

// GFlops returns the modeled performance at square size n.
func (b *Baseline) GFlops(p matrix.Precision, t blas.GEMMType, n int) float64 {
	if n <= 0 {
		return 0
	}
	tp := b.SP
	if p == matrix.Double {
		tp = b.DP
	}
	idx := 0
	for i, g := range blas.GEMMTypes {
		if g == t {
			idx = i
			break
		}
	}
	return tp[idx] * float64(n) / (float64(n) + b.RampN)
}

// Curve returns the performance series over the given sizes.
func (b *Baseline) Curve(p matrix.Precision, t blas.GEMMType, sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		out[i] = b.GFlops(p, t, n)
	}
	return out
}

func uniform(v float64) TypePerf { return TypePerf{v, v, v, v} }

// All returns every catalogued baseline.
func All() []*Baseline {
	return []*Baseline{
		// Table III row "Vendor" for Tahiti: AMD APPML clBLAS 1.8.291.
		{
			Name: "AMD clBLAS 1.8.291", DeviceID: "tahiti", RampN: 350,
			DP: TypePerf{647, 731, 549, 650},
			SP: TypePerf{2468, 2489, 1476, 2281},
		},
		{
			Name: "AMD clBLAS 1.8.291", DeviceID: "cayman", RampN: 350,
			DP: TypePerf{329, 336, 302, 329},
			SP: TypePerf{1071, 1011, 662, 1021},
		},
		// NVIDIA CUBLAS in CUDA 5.0 RC on the Kepler.
		{
			Name: "NVIDIA CUBLAS 5.0 RC", DeviceID: "kepler", RampN: 250,
			DP: TypePerf{124, 122, 122, 122},
			SP: TypePerf{1371, 1417, 1227, 1361},
		},
		// NVIDIA CUBLAS in CUDA 4.1.28 on the Fermi.
		{
			Name: "NVIDIA CUBLAS 4.1.28", DeviceID: "fermi", RampN: 250,
			DP: TypePerf{405, 406, 408, 405},
			SP: TypePerf{830, 942, 920, 889},
		},
		// MAGMA 1.2.1 on the Fermi (Fig. 10: close to CUBLAS).
		{
			Name: "MAGMA 1.2.1", DeviceID: "fermi", RampN: 300,
			DP: uniform(390),
			SP: uniform(850),
		},
		// Intel MKL 2011.10.319 on the Sandy Bridge.
		{
			Name: "Intel MKL 2011.10.319", DeviceID: "sandybridge", RampN: 120,
			DP: TypePerf{138, 139, 138, 138},
			SP: TypePerf{282, 285, 281, 283},
		},
		// ATLAS 3.10.0 on the Sandy Bridge (Fig. 11: above our OpenCL
		// DGEMM, below MKL).
		{
			Name: "ATLAS 3.10.0", DeviceID: "sandybridge", RampN: 150,
			DP: uniform(105),
			SP: uniform(210),
		},
		// AMD ACML 5.1.0 on the Bulldozer.
		{
			Name: "AMD ACML 5.1.0", DeviceID: "bulldozer", RampN: 120,
			DP: TypePerf{50, 50, 50, 50},
			SP: TypePerf{103, 101, 103, 101},
		},
		// "Our previous study" [13] on the Tahiti (Fig. 9): the MCSoC-12
		// generator's best kernels, 848 GFlop/s DGEMM / 2646 SGEMM, with
		// the same copy-based implementation (slower ramp).
		{
			Name: "Our previous study (MCSoC-12)", DeviceID: "tahiti", RampN: 550,
			DP: uniform(848),
			SP: uniform(2646),
		},
		// §IV-C comparison points on the Cypress (Radeon HD 5870).
		{
			Name: "Nakasato IL kernels", DeviceID: "cypress", RampN: 300,
			DP: uniform(498),
			SP: uniform(2000),
		},
		{
			Name: "Du et al. OpenCL", DeviceID: "cypress", RampN: 400,
			DP: uniform(308),
			SP: uniform(1000),
		},
	}
}

// ForDevice returns the baselines catalogued for a device.
func ForDevice(deviceID string) []*Baseline {
	var out []*Baseline
	for _, b := range All() {
		if b.DeviceID == deviceID {
			out = append(out, b)
		}
	}
	return out
}

// Lookup finds a baseline by library name and device.
func Lookup(name, deviceID string) (*Baseline, error) {
	for _, b := range All() {
		if b.Name == name && b.DeviceID == deviceID {
			return b, nil
		}
	}
	return nil, fmt.Errorf("vendorlib: no baseline %q on %q", name, deviceID)
}

// Vendor returns the device's primary vendor library (the "Vendor" row
// of Table III).
func Vendor(deviceID string) (*Baseline, error) {
	names := map[string]string{
		"tahiti":      "AMD clBLAS 1.8.291",
		"cayman":      "AMD clBLAS 1.8.291",
		"kepler":      "NVIDIA CUBLAS 5.0 RC",
		"fermi":       "NVIDIA CUBLAS 4.1.28",
		"sandybridge": "Intel MKL 2011.10.319",
		"bulldozer":   "AMD ACML 5.1.0",
	}
	n, ok := names[deviceID]
	if !ok {
		return nil, fmt.Errorf("vendorlib: no vendor library for device %q", deviceID)
	}
	return Lookup(n, deviceID)
}
