package vendorlib

import (
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

func TestTableIIIPlateaus(t *testing.T) {
	cases := []struct {
		dev  string
		dpNN float64
		spNN float64
	}{
		{"tahiti", 647, 2468},
		{"cayman", 329, 1071},
		{"kepler", 124, 1371},
		{"fermi", 405, 830},
		{"sandybridge", 138, 282},
		{"bulldozer", 50, 103},
	}
	for _, c := range cases {
		v, err := Vendor(c.dev)
		if err != nil {
			t.Fatalf("%s: %v", c.dev, err)
		}
		if v.DP[0] != c.dpNN || v.SP[0] != c.spNN {
			t.Errorf("%s vendor NN plateaus = %.0f/%.0f, Table III says %.0f/%.0f",
				c.dev, v.DP[0], v.SP[0], c.dpNN, c.spNN)
		}
	}
}

func TestCurveShape(t *testing.T) {
	v, _ := Vendor("tahiti")
	nn := blas.GEMMTypes[0]
	small := v.GFlops(matrix.Double, nn, 256)
	mid := v.GFlops(matrix.Double, nn, 2048)
	big := v.GFlops(matrix.Double, nn, 6144)
	if !(small < mid && mid < big) {
		t.Errorf("curve must ramp: %f %f %f", small, mid, big)
	}
	if big > v.DP[0] {
		t.Errorf("curve must not exceed plateau: %f > %f", big, v.DP[0])
	}
	if big < 0.9*v.DP[0] {
		t.Errorf("curve should approach plateau at N=6144: %f vs %f", big, v.DP[0])
	}
	if v.GFlops(matrix.Double, nn, 0) != 0 {
		t.Error("N=0 must be 0")
	}
}

func TestTypeDependence(t *testing.T) {
	// clBLAS on Tahiti has a notably weak TN DGEMM (549 vs 731 NT),
	// the asymmetry our implementation does not have (Table III).
	v, _ := Lookup("AMD clBLAS 1.8.291", "tahiti")
	tn, _ := blas.ParseGEMMType("TN")
	nt, _ := blas.ParseGEMMType("NT")
	if !(v.GFlops(matrix.Double, tn, 4096) < v.GFlops(matrix.Double, nt, 4096)) {
		t.Error("clBLAS TN must be slower than NT on Tahiti")
	}
}

func TestCurveSeries(t *testing.T) {
	v, _ := Vendor("fermi")
	sizes := []int{512, 1024, 2048}
	c := v.Curve(matrix.Single, blas.GEMMTypes[0], sizes)
	if len(c) != 3 || c[0] >= c[2] {
		t.Errorf("bad series: %v", c)
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := Lookup("nonexistent", "tahiti"); err == nil {
		t.Error("unknown library must fail")
	}
	if _, err := Vendor("cypress"); err == nil {
		t.Error("Cypress has no Table III vendor row")
	}
}

func TestForDevice(t *testing.T) {
	fermi := ForDevice("fermi")
	if len(fermi) != 2 {
		t.Errorf("Fermi should have CUBLAS and MAGMA, got %d", len(fermi))
	}
	tahiti := ForDevice("tahiti")
	if len(tahiti) != 2 { // clBLAS + previous study
		t.Errorf("Tahiti should have 2 baselines, got %d", len(tahiti))
	}
}

func TestMax(t *testing.T) {
	tp := TypePerf{1, 5, 3, 2}
	if tp.Max() != 5 {
		t.Errorf("Max = %f", tp.Max())
	}
}

// The paper's headline comparisons must hold at N=4096:
// ours > clBLAS on AMD, ours ≈ CUBLAS on NVIDIA, ours < MKL on CPUs.
// (The "ours" side is checked in the experiments package; here we pin
// the baseline side of each inequality.)
func TestBaselineOrdering(t *testing.T) {
	nn := blas.GEMMTypes[0]
	clblas, _ := Vendor("tahiti")
	if clblas.GFlops(matrix.Double, nn, 4096) > 700 {
		t.Error("clBLAS Tahiti DGEMM must stay below our 852")
	}
	mkl, _ := Vendor("sandybridge")
	if mkl.GFlops(matrix.Double, nn, 4096) < 100 {
		t.Error("MKL must be far above our 60 GFlop/s")
	}
	prev, _ := Lookup("Our previous study (MCSoC-12)", "tahiti")
	if prev.SP.Max() >= 3047 {
		t.Error("previous study must be below this study's 3047 SGEMM")
	}
}
