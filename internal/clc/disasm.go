package clc

// Bytecode disassembler. Exists so optimizer regressions are
// diagnosable from the command line (clcheck -dump-bytecode) and so
// optimizer tests can assert on the shape of emitted code without
// reaching into unexported instruction fields.

import (
	"fmt"
	"strings"
)

// opNames mirrors the opcode const block in compile.go.
var opNames = [...]string{
	opConst:      "const",
	opMov:        "mov",
	opBool:       "bool",
	opBin:        "bin",
	opNeg:        "neg",
	opNot:        "not",
	opBitNot:     "bitnot",
	opConvert:    "convert",
	opConvertDyn: "convertdyn",
	opVecCtor:    "vecctor",
	opJump:       "jump",
	opJumpF:      "jumpf",
	opJumpT:      "jumpt",
	opWI:         "wi",
	opBarrier:    "barrier",
	opMad:        "mad",
	opMin:        "min",
	opMax:        "max",
	opLoad:       "load",
	opCheckIdx:   "checkidx",
	opStore:      "store",
	opVload:      "vload",
	opVstore:     "vstore",
	opAllocArr:   "allocarr",
	opErr:        "err",
	opHalt:       "halt",
	opLoadK:      "loadk",
	opStoreK:     "storek",
	opLoadBin:    "loadbin",
	opBinStore:   "binstore",
	opLoadStore:  "loadstore",
	opLoadMad:    "loadmad",
	opMadAcc:     "madacc",
	opMadAccD:    "madacc.d",
	opMadAccF:    "madacc.f",
	opLoadD:      "load.d",
	opLoadF:      "load.f",
	opStoreD:     "store.d",
	opStoreF:     "store.f",
}

func (op opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", int(op))
}

var wiNames = [...]string{
	wiGlobalID:   "global_id",
	wiLocalID:    "local_id",
	wiGroupID:    "group_id",
	wiLocalSize:  "local_size",
	wiGlobalSize: "global_size",
	wiNumGroups:  "num_groups",
}

// disassemble renders the program, one instruction per line:
//
//	12  bin        r3 = r1 * r2
//	13  jumpf      r3 -> 27
//
// Jump targets are marked with a leading ">" so loops stand out.
func (p *compiledKernel) disassemble() string {
	var sb strings.Builder
	target := make([]bool, len(p.code)+1)
	for _, in := range p.code {
		switch in.op {
		case opJump, opJumpF, opJumpT:
			if int(in.imm) <= len(p.code) {
				target[in.imm] = true
			}
		}
	}
	fmt.Fprintf(&sb, "; %d instrs, %d regs, %d array slots\n", len(p.code), p.nreg, p.narr)
	for pc, in := range p.code {
		mark := " "
		if target[pc] {
			mark = ">"
		}
		fmt.Fprintf(&sb, "%s%4d  %-10s %s\n", mark, pc, in.op.String(), p.operands(pc, &in))
	}
	return sb.String()
}

func renderConst(v *value) string {
	if v.t.IsInt() {
		return fmt.Sprintf("%s %d", v.t, v.i)
	}
	if v.t.Lanes == 1 {
		return fmt.Sprintf("%s %g", v.t, v.f[0])
	}
	lanes := make([]string, v.t.Lanes)
	for l := range lanes {
		lanes[l] = fmt.Sprintf("%g", v.f[l])
	}
	return fmt.Sprintf("%s (%s)", v.t, strings.Join(lanes, ","))
}

func arith(imm int64) string {
	if imm >= 0 && int(imm) < len(arithOps) {
		return arithOps[imm]
	}
	return "?"
}

// operands renders one instruction's operand fields symbolically.
func (p *compiledKernel) operands(pc int, in *instr) string {
	switch in.op {
	case opConst:
		return fmt.Sprintf("r%d = consts[%d] (%s)", in.dst, in.imm, renderConst(&p.consts[in.imm]))
	case opMov:
		return fmt.Sprintf("r%d = r%d", in.dst, in.a)
	case opBool:
		return fmt.Sprintf("r%d = bool(r%d)", in.dst, in.a)
	case opBin:
		return fmt.Sprintf("r%d = r%d %s r%d", in.dst, in.a, arith(in.imm), in.b)
	case opNeg:
		return fmt.Sprintf("r%d = -r%d", in.dst, in.a)
	case opNot:
		return fmt.Sprintf("r%d = !r%d", in.dst, in.a)
	case opBitNot:
		return fmt.Sprintf("r%d = ^r%d", in.dst, in.a)
	case opConvert:
		return fmt.Sprintf("r%d = (%s) r%d", in.dst, p.types[in.imm], in.a)
	case opConvertDyn:
		return fmt.Sprintf("r%d = (elem of arr%d) r%d", in.dst, in.b, in.a)
	case opVecCtor:
		return fmt.Sprintf("r%d = (%s)(r%d..r%d)", in.dst, p.types[in.imm], in.a, int(in.a)+int(in.c)-1)
	case opJump:
		return fmt.Sprintf("-> %d", in.imm)
	case opJumpF:
		return fmt.Sprintf("if !r%d -> %d", in.a, in.imm)
	case opJumpT:
		return fmt.Sprintf("if r%d -> %d", in.a, in.imm)
	case opWI:
		name := "?"
		if in.imm >= 0 && int(in.imm) < len(wiNames) {
			name = wiNames[in.imm]
		}
		return fmt.Sprintf("r%d = get_%s(r%d)", in.dst, name, in.a)
	case opBarrier:
		return ""
	case opMad:
		return fmt.Sprintf("r%d = r%d*r%d + r%d", in.dst, in.a, in.b, in.c)
	case opMin:
		return fmt.Sprintf("r%d = min(r%d, r%d)", in.dst, in.a, in.b)
	case opMax:
		return fmt.Sprintf("r%d = max(r%d, r%d)", in.dst, in.a, in.b)
	case opLoad:
		return fmt.Sprintf("r%d = arr%d[r%d]", in.dst, in.a, in.b)
	case opCheckIdx:
		return fmt.Sprintf("bounds arr%d[r%d]", in.a, in.b)
	case opStore:
		return fmt.Sprintf("arr%d[r%d] = r%d", in.a, in.b, in.c)
	case opVload:
		return fmt.Sprintf("r%d = vload%d(r%d, arr%d)", in.dst, in.imm, in.b, in.a)
	case opVstore:
		return fmt.Sprintf("vstore%d(r%d, r%d, arr%d)", in.imm, in.c, in.b, in.a)
	case opAllocArr:
		def := p.defs[in.imm]
		return fmt.Sprintf("arr%d = alloc %s[%d]", in.a, def.t, def.total)
	case opErr:
		return fmt.Sprintf("%q", p.errs[in.imm].Msg)
	case opHalt:
		return ""
	case opLoadK:
		return fmt.Sprintf("r%d = arr%d[%d]", in.dst, in.a, in.imm)
	case opStoreK:
		return fmt.Sprintf("arr%d[%d] = r%d", in.a, in.imm, in.c)
	case opLoadBin:
		op, side, slot := unpackLoadBin(in.imm)
		if side == 0 {
			return fmt.Sprintf("r%d = arr%d[r%d] %s r%d", in.dst, slot, in.b, arith(op), in.a)
		}
		return fmt.Sprintf("r%d = r%d %s arr%d[r%d]", in.dst, in.a, arith(op), slot, in.b)
	case opBinStore:
		op, slot := unpackBinStore(in.imm)
		return fmt.Sprintf("arr%d[r%d] = r%d %s r%d", slot, in.c, in.a, arith(op), in.b)
	case opLoadStore:
		src, dst := unpackLoadStore(in.imm)
		return fmt.Sprintf("arr%d[r%d] = arr%d[r%d]", dst, in.c, src, in.b)
	case opLoadMad:
		return fmt.Sprintf("r%d = r%d*r%d + arr%d[r%d]", in.dst, in.a, in.b, in.imm, in.c)
	case opMadAcc, opMadAccD, opMadAccF:
		return fmt.Sprintf("arr%d[r%d] += r%d*r%d", in.imm, in.c, in.a, in.b)
	case opLoadD, opLoadF:
		return fmt.Sprintf("r%d = arr%d[r%d]", in.dst, in.a, in.b)
	case opStoreD, opStoreF:
		return fmt.Sprintf("arr%d[r%d] = r%d", in.a, in.b, in.c)
	}
	return fmt.Sprintf("dst=%d a=%d b=%d c=%d imm=%d", in.dst, in.a, in.b, in.c, in.imm)
}

// Disassemble returns a printable listing of the kernel's bytecode. With
// optimized true it disassembles the post-optimizer program (the one Run
// executes by default); otherwise the compiler's raw output. Returns an
// error when the kernel does not compile to bytecode.
func (k *KernelDecl) Disassemble(optimized bool) (string, error) {
	if err := k.CompileBytecode(); err != nil {
		return "", err
	}
	p := k.bytecode()
	if optimized {
		p = k.bytecodeOptimized()
	}
	return p.disassemble(), nil
}
