package clc

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser for the supported subset.
type parser struct {
	toks []token
	i    int
}

// Compile lexes, parses and checks a translation unit.
func Compile(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Source: src}
	for p.cur().kind != tokEOF {
		k, err := p.kernel()
		if err != nil {
			return nil, err
		}
		prog.Kernels = append(prog.Kernels, k)
	}
	if len(prog.Kernels) == 0 {
		return nil, fmt.Errorf("clc: no kernels in program")
	}
	for _, k := range prog.Kernels {
		if err := checkKernel(k); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(text string) (token, error) {
	t := p.cur()
	if t.kind == tokPunct && t.text == text {
		return p.advance(), nil
	}
	if t.kind == tokIdent && t.text == text {
		return p.advance(), nil
	}
	return t, p.errf(t, "expected %q, found %s", text, t)
}

func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokIdent) && t.text == text {
		p.advance()
		return true
	}
	return false
}

func qualifier(name string) (AddressSpace, bool) {
	switch name {
	case "__global", "global":
		return GlobalMem, true
	case "__local", "local":
		return LocalMem, true
	case "__private", "private":
		return Private, true
	}
	return Private, false
}

func isSkippableQualifier(name string) bool {
	switch name {
	case "const", "restrict", "volatile", "__restrict":
		return true
	}
	return false
}

// kernel parses `__kernel void name(params) { ... }`.
func (p *parser) kernel() (*KernelDecl, error) {
	if !p.accept("__kernel") && !p.accept("kernel") {
		return nil, p.errf(p.cur(), "expected __kernel, found %s", p.cur())
	}
	// Optional attributes like __attribute__((...)) are not supported.
	if _, err := p.expect("void"); err != nil {
		return nil, err
	}
	nameTok := p.cur()
	if nameTok.kind != tokIdent {
		return nil, p.errf(nameTok, "expected kernel name, found %s", nameTok)
	}
	p.advance()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var params []Param
	for !p.accept(")") {
		if len(params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		prm, err := p.param()
		if err != nil {
			return nil, err
		}
		params = append(params, prm)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &KernelDecl{Name: nameTok.text, Params: params, Body: body}, nil
}

func (p *parser) param() (Param, error) {
	var prm Param
	for {
		t := p.cur()
		if t.kind != tokIdent {
			break
		}
		if sp, ok := qualifier(t.text); ok {
			prm.Space = sp
			p.advance()
			continue
		}
		if isSkippableQualifier(t.text) {
			p.advance()
			continue
		}
		break
	}
	t := p.cur()
	typ, ok := parseTypeName(t.text)
	if t.kind != tokIdent || !ok {
		return prm, p.errf(t, "expected parameter type, found %s", t)
	}
	p.advance()
	prm.Type = typ
	if p.accept("*") {
		prm.Pointer = true
	}
	for p.cur().kind == tokIdent && isSkippableQualifier(p.cur().text) {
		p.advance()
	}
	nt := p.cur()
	if nt.kind != tokIdent {
		return prm, p.errf(nt, "expected parameter name, found %s", nt)
	}
	p.advance()
	prm.Name = nt.text
	return prm, nil
}

func (p *parser) block() (*Block, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{pos: pos{open.line, open.col}}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf(p.cur(), "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// startsDecl reports whether the upcoming tokens begin a declaration.
func (p *parser) startsDecl() bool {
	t := p.cur()
	if t.kind != tokIdent {
		return false
	}
	if _, ok := qualifier(t.text); ok {
		return true
	}
	if isSkippableQualifier(t.text) {
		return true
	}
	if _, ok := parseTypeName(t.text); ok {
		// Could also be a cast at statement level, which the generator
		// never emits; a declaration needs an identifier next.
		return p.peek().kind == tokIdent
	}
	return false
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokPunct && t.text == "{":
		return p.block()
	case t.kind == tokIdent && t.text == "if":
		return p.ifStmt()
	case t.kind == tokIdent && t.text == "for":
		return p.forStmt()
	case p.startsDecl():
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return d, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) decl() (*Decl, error) {
	start := p.cur()
	d := &Decl{pos: pos{start.line, start.col}}
	for {
		t := p.cur()
		if t.kind != tokIdent {
			break
		}
		if sp, ok := qualifier(t.text); ok {
			d.Space = sp
			p.advance()
			continue
		}
		if isSkippableQualifier(t.text) {
			p.advance()
			continue
		}
		break
	}
	typ, ok := parseTypeName(p.cur().text)
	if p.cur().kind != tokIdent || !ok {
		return nil, p.errf(p.cur(), "expected type in declaration, found %s", p.cur())
	}
	p.advance()
	d.Type = typ
	nameTok := p.cur()
	if nameTok.kind != tokIdent {
		return nil, p.errf(nameTok, "expected variable name, found %s", nameTok)
	}
	p.advance()
	d.Name = nameTok.text
	if p.accept("[") {
		n, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.ArrayLen = n
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

// simpleStmt parses an assignment or expression statement (no ';').
func (p *parser) simpleStmt() (Stmt, error) {
	start := p.cur()
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "+=", "-=", "*=", "/=":
			p.advance()
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &Assign{pos: pos{start.line, start.col}, Op: t.text, LHS: lhs, RHS: rhs}, nil
		case "++", "--":
			p.advance()
			op := "+="
			if t.text == "--" {
				op = "-="
			}
			one := &IntLit{pos: pos{t.line, t.col}, Value: 1}
			return &Assign{pos: pos{start.line, start.col}, Op: op, LHS: lhs, RHS: one}, nil
		}
	}
	return &ExprStmt{pos: pos{start.line, start.col}, X: lhs}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	start, _ := p.expect("if")
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	thenBlk, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	node := &If{pos: pos{start.line, start.col}, Cond: cond, Then: thenBlk}
	if p.accept("else") {
		if p.cur().kind == tokIdent && p.cur().text == "if" {
			node.Else, err = p.ifStmt()
		} else {
			var b *Block
			b, err = p.stmtAsBlock()
			node.Else = b
		}
		if err != nil {
			return nil, err
		}
	}
	return node, nil
}

func (p *parser) stmtAsBlock() (*Block, error) {
	if p.cur().kind == tokPunct && p.cur().text == "{" {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	line, col := s.Pos()
	return &Block{pos: pos{line, col}, Stmts: []Stmt{s}}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	start, _ := p.expect("for")
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	node := &For{pos: pos{start.line, start.col}}
	if !p.accept(";") {
		if p.startsDecl() {
			d, err := p.decl()
			if err != nil {
				return nil, err
			}
			node.Init = d
		} else {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			node.Init = s
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !(p.cur().kind == tokPunct && p.cur().text == ")") {
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		node.Post = s
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

// --- Expressions (precedence climbing) --------------------------------------

var binaryLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expr() (Expr, error) { return p.ternary() }

func (p *parser) ternary() (Expr, error) {
	c, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct && p.cur().text == "?" {
		q := p.advance()
		thenE, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(":"); err != nil {
			return nil, err
		}
		elseE, err := p.ternary()
		if err != nil {
			return nil, err
		}
		return &Cond{pos: pos{q.line, q.col}, C: c, T: thenE, F: elseE}, nil
	}
	return c, nil
}

func (p *parser) binary(level int) (Expr, error) {
	if level >= len(binaryLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct || !contains(binaryLevels[level], t.text) {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{pos: pos{t.line, t.col}, Op: t.text, L: lhs, R: rhs}
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~" || t.text == "+") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &Unary{pos: pos{t.line, t.col}, Op: t.text, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return x, nil
		}
		switch t.text {
		case "[":
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{pos: pos{t.line, t.col}, X: x, Idx: idx}
		case "(":
			id, ok := x.(*Ident)
			if !ok {
				return nil, p.errf(t, "call of non-identifier")
			}
			p.advance()
			var args []Expr
			for !p.accept(")") {
				if len(args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			x = &Call{pos: pos{t.line, t.col}, Fun: id.Name, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokIntLit:
		p.advance()
		text := strings.TrimSuffix(strings.TrimSuffix(t.text, "u"), "U")
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return nil, p.errf(t, "bad integer literal %q", t.text)
		}
		return &IntLit{pos: pos{t.line, t.col}, Value: v}, nil
	case tokFloatLit:
		p.advance()
		single := false
		text := t.text
		if strings.HasSuffix(text, "f") || strings.HasSuffix(text, "F") {
			single = true
			text = text[:len(text)-1]
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errf(t, "bad float literal %q", t.text)
		}
		return &FloatLit{pos: pos{t.line, t.col}, Value: v, Single: single}, nil
	case tokIdent:
		p.advance()
		return &Ident{pos: pos{t.line, t.col}, Name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			// Cast/constructor or parenthesized expression.
			if typ, ok := parseTypeName(p.peek().text); ok && p.peek().kind == tokIdent {
				// (type)(...)
				p.advance() // (
				p.advance() // type
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
				if _, err := p.expect("("); err != nil {
					return nil, err
				}
				var args []Expr
				for !p.accept(")") {
					if len(args) > 0 {
						if _, err := p.expect(","); err != nil {
							return nil, err
						}
					}
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
				}
				if len(args) == 0 {
					return nil, p.errf(t, "empty constructor for %s", typ)
				}
				return &Cast{pos: pos{t.line, t.col}, To: typ, Args: args}, nil
			}
			p.advance()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf(t, "unexpected token %s in expression", t)
}
