package clc_test

// Differential tests pinning the tentpole property: the bytecode VM is
// bit-identical to the AST interpreter — on results and on faults —
// across the full generated-kernel space and a feature-coverage corpus
// of hand-written kernels. The interpreter is the semantic oracle; any
// divergence is a VM bug by definition.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oclgemm/internal/clc"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func newQueue() *clsim.Queue {
	return clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
}

// runBoth compiles src, binds it three times over independent copies of
// a float64 buffer of length n, runs the optimized bytecode VM, the
// unoptimized VM, and the interpreter, and requires identical faults or
// bit-identical buffers across all three engines.
func runBoth(t *testing.T, src string, n int, nd clsim.NDRange) ([]float64, error) {
	t.Helper()
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	kern, err := prog.Kernel("k")
	if err != nil {
		t.Fatal(err)
	}
	run := func(forceInterp, optimize bool) ([]float64, error) {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(i%5) * 0.375
		}
		bk, err := kern.Bind(buf)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		bk.SetInterp(forceInterp)
		bk.SetOptimize(optimize)
		bk.SetFuel(1 << 20)
		q := newQueue()
		q.Workers = 1
		return buf, q.Run(bk, nd)
	}
	vmBuf, vmErr := run(false, true)
	compare := func(name string, altBuf []float64, altErr error) {
		if (vmErr == nil) != (altErr == nil) {
			t.Fatalf("engines disagree on fault:\n vm:  %v\n %s: %v\n%s", vmErr, name, altErr, src)
		}
		if vmErr != nil {
			if vmErr.Error() != altErr.Error() {
				t.Fatalf("engines disagree on fault message:\n vm:  %v\n %s: %v\n%s", vmErr, name, altErr, src)
			}
			return
		}
		for i := range vmBuf {
			if math.Float64bits(vmBuf[i]) != math.Float64bits(altBuf[i]) {
				t.Fatalf("engines disagree at o[%d]: vm=%v %s=%v\n%s", i, vmBuf[i], name, altBuf[i], src)
			}
		}
	}
	inBuf, inErr := run(true, false)
	compare("interp", inBuf, inErr)
	rawBuf, rawErr := run(false, false)
	compare("vm-noopt", rawBuf, rawErr)
	if vmErr != nil {
		return nil, vmErr
	}
	return vmBuf, nil
}

func oneByFour() clsim.NDRange {
	return clsim.NDRange{Global: [2]int{4, 1}, Local: [2]int{1, 1}}
}

// TestVMFeatureCoverage sweeps the language subset feature by feature;
// each body runs under both engines and must agree bit-for-bit.
func TestVMFeatureCoverage(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"ternary", "o[gid] = (gid > 0 && gid < 3) ? 1.5 : -2.25;"},
		{"short_circuit_or", "o[gid] = (gid == 0 || 1 / gid > 0) ? 3.0 : 4.0;"},
		{"min_max_int", "o[gid] = (double)(min(gid, 2) + max(gid, 1));"},
		{"min_max_float_quirk", "o[gid] = min(0.5f, (float)(gid)) + max(1.5, (double)(gid));"},
		{"mad", "o[gid] = mad(o[gid], 2.0, 1.0) + fma(0.5, (double)(gid), o[gid]);"},
		{"casts", "o[gid] = (double)((int)(2.9)) + (double)((float)(1.0 / 3.0));"},
		{"uint_collapse", "uint u = 7; o[gid] = (double)(u + gid);"},
		{"vector_ctor_broadcast", "double2 v = (double2)(1.25); vstore2(v, gid, o);"},
		{"vector_ctor_components", "double4 v = (double4)(1.0, 2.0, (double)(gid), 4.0); double tmp[4]; vstore4(v, 0, tmp); o[gid] = tmp[0] + tmp[2] + tmp[3];"},
		{"vector_arith", "double2 v = vload2(gid, o); vstore2(v * (double2)(2.0) + (double2)(1.0, -1.0), gid, o);"},
		{"loop_accumulate", "double acc = 0.0; for (int i = 0; i < 5; i++) { acc += (double)(i) * 0.5; } o[gid] = acc;"},
		{"loop_shadowing", "double x = 9.0; for (int i = 0; i < 2; i++) { double x = (double)(i); o[gid] += x; } o[gid] += x;"},
		{"loop_decl_rezero", "for (int i = 0; i < 3; i++) { int z; o[gid] += (double)(z); z = 5; }"},
		{"nested_loops", "for (int i = 0; i < 3; i++) { for (int j = 0; j < 2; j++) { o[gid] += (double)(i * 2 + j); } }"},
		{"compound_array_assign", "o[gid] *= 2.0; o[gid] += 0.5; o[gid] -= 0.25; o[gid] /= 2.0;"},
		{"builtin_const_shadow", "int CLK_GLOBAL_MEM_FENCE = 9; o[gid] = (double)(CLK_GLOBAL_MEM_FENCE);"},
		{"unary_ops", "o[gid] = -o[gid] + (double)(~gid) + (double)(!gid);"},
		{"int_ops", "o[gid] = (double)(((gid << 2) | (gid & 1)) ^ ((gid % 3) + (5 / (gid + 1)) - (gid >> 1)));"},
		{"comparisons", "o[gid] = (double)((gid < 2) + (gid <= 2) + (gid > 2) + (gid >= 2) + (gid == 2) + (gid != 2));"},
		{"if_else_chain", "if (gid == 0) { o[gid] = 1.0; } else if (gid == 1) { o[gid] = 2.0; } else { o[gid] = 3.0; }"},
		{"private_array", "double acc[4]; for (int i = 0; i < 4; i++) { acc[i] = (double)(i); } o[gid] = acc[gid];"},
		{"dead_branch_error", "if (gid < 0) { o[100] = 1.0; } o[gid] = 1.0;"},
		{"const_fold_divzero_guard", "o[gid] = (gid == 0) ? 1.0 : (double)(4 / gid);"},
		{"float_literal_single", "o[gid] = (double)(0.1f) + 0.1;"},
		{"work_item_funcs", "o[gid] = (double)(get_global_id(0) + get_local_id(0) * 10 + get_group_id(0) * 100 + get_local_size(0) * 1000 + get_global_size(0) * 10000 + get_num_groups(0) * 100000);"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "__kernel void k(__global double* o)\n{\n const int gid = get_global_id(0);\n" + tc.body + "\n}"
			runBoth(t, src, 8, oneByFour())
		})
	}
}

// TestVMLocalMemoryAndBarrier exercises __local staging with real
// cross-item communication under both engines.
func TestVMLocalMemoryAndBarrier(t *testing.T) {
	src := `__kernel void k(__global double* o)
{
    const int gid = get_global_id(0);
    const int lid = get_local_id(0);
    __local double lm[2];
    lm[lid] = (double)(gid + 1);
    barrier(CLK_LOCAL_MEM_FENCE);
    o[gid] = lm[(lid + 1) % 2];
}`
	runBoth(t, src, 8, clsim.NDRange{Global: [2]int{4, 1}, Local: [2]int{2, 1}})
}

// TestVMErrorParity pins fault behaviour: both engines must fail with
// the same positioned message for every runtime-fault class.
func TestVMErrorParity(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"index_oob", "o[100] = 1.0;", "index 100 out of range [0,8)"},
		{"index_negative", "o[gid - 10] = 1.0;", "out of range"},
		{"div_zero", "int z = 0; o[gid] = (double)(1 / z);", "integer division by zero"},
		{"mod_zero", "int z = 0; o[gid] = (double)(1 % z);", "integer modulo by zero"},
		{"vload_oob", "double2 v = vload2(7, o); vstore2(v, 0, o);", "vload2 offset 7 out of range"},
		{"vstore_oob", "vstore2((double2)(1.0), 7, o);", "vstore2 offset 7 out of range"},
		{"dim_oob", "o[gid] = (double)(get_global_id(2));", "dimension 2 out of range"},
		{"compound_index_oob", "o[8] += 1.0;", "index 8 out of range [0,8)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "__kernel void k(__global double* o)\n{\n const int gid = get_global_id(0);\n" + tc.body + "\n}"
			_, err := runBoth(t, src, 8, oneByFour())
			if err == nil {
				t.Fatalf("expected a fault containing %q, got success", tc.want)
			}
			if !contains(err.Error(), tc.want) {
				t.Fatalf("fault %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestVMFuelBudget: a non-terminating loop faults identically in both
// engines once the back-edge budget runs out instead of hanging.
func TestVMFuelBudget(t *testing.T) {
	src := "__kernel void k(__global double* o)\n{\n const int gid = get_global_id(0);\nfor (int i = 0; i >= 0;) { o[gid] = 1.0; }\n}"
	_, err := runBoth(t, src, 8, oneByFour())
	if err == nil {
		t.Fatal("expected a loop-budget fault")
	}
	if !contains(err.Error(), "loop iteration budget exhausted") {
		t.Fatalf("unexpected fault: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// runGeneratedBoth packs random inputs for a codegen schedule, runs the
// generated source under all three engines (optimized VM, unoptimized
// VM, interpreter) at a multi-work-group size, and requires
// bit-identical C buffers. Returns false (instead of failing) for
// invalid parameter combinations.
func runGeneratedBoth(t *testing.T, p codegen.Params, seed int64) bool {
	t.Helper()
	if err := p.Validate(); err != nil {
		return false
	}
	m, n, k := 2*p.Mwg, 2*p.Nwg, 2*p.Kwg
	src, err := p.GenerateSource()
	if err != nil {
		t.Fatalf("%s: generate: %v", p.Name(), err)
	}
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("%s: clc compile: %v\n%s", p.Name(), err, src)
	}
	kern, err := prog.Kernel(codegen.KernelName)
	if err != nil {
		t.Fatal(err)
	}
	if err := kern.CompileBytecode(); err != nil {
		t.Fatalf("%s: bytecode compile: %v\n%s", p.Name(), err, src)
	}
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[float64](m, k, matrix.RowMajor)
	b := matrix.New[float64](k, n, matrix.RowMajor)
	c := matrix.New[float64](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
	nd := clsim.NDRange{
		Global: [2]int{m / p.Mwg * p.MdimC, n / p.Nwg * p.NdimC},
		Local:  [2]int{p.MdimC, p.NdimC},
	}
	run := func(forceInterp, optimize bool) []float64 {
		cc := c.Clone()
		bound, err := kern.Bind(m, n, k, 1.5, -0.75, at.Data, bp.Data, cc.Data)
		if err != nil {
			t.Fatalf("%s: bind: %v", p.Name(), err)
		}
		bound.SetInterp(forceInterp)
		bound.SetOptimize(optimize)
		if want := "bytecode"; !forceInterp && bound.Engine() != want {
			t.Fatalf("%s: engine = %q, want %q", p.Name(), bound.Engine(), want)
		}
		q := newQueue()
		if err := q.Run(bound, nd); err != nil {
			t.Fatalf("%s: run: %v\n%s", p.Name(), err, src)
		}
		return cc.Data
	}
	vm := run(false, true)
	raw := run(false, false)
	in := run(true, false)
	for i := range vm {
		if math.Float64bits(vm[i]) != math.Float64bits(in[i]) {
			t.Fatalf("%s: engines disagree at C[%d]: vm=%v interp=%v", p.Name(), i, vm[i], in[i])
		}
		if math.Float64bits(vm[i]) != math.Float64bits(raw[i]) {
			t.Fatalf("%s: optimizer changed C[%d]: vm=%v vm-noopt=%v", p.Name(), i, vm[i], raw[i])
		}
	}
	return true
}

// TestVMMatchesInterpreterOnGeneratedKernels sweeps every algorithm ×
// shared-memory mode × vector width with layout pairs cycling through
// all nine combinations, so each axis of the schedule space is covered
// against the interpreter oracle at multi-work-group sizes.
func TestVMMatchesInterpreterOnGeneratedKernels(t *testing.T) {
	layouts := []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}
	shared := [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}}
	vws := []int{1, 2, 4}
	idx, ran := 0, 0
	for _, alg := range codegen.Algorithms {
		for _, sh := range shared {
			for _, vw := range vws {
				if testing.Short() && vw == 4 {
					continue
				}
				p := codegen.Params{
					Precision: matrix.Double, Algorithm: alg,
					Mwg: 8, Nwg: 16, Kwg: 8,
					MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
					Kwi: 2, VectorWidth: vw,
					SharedA: sh[0], SharedB: sh[1],
					LayoutA: layouts[idx%3], LayoutB: layouts[(idx/3)%3],
				}
				idx++
				if runGeneratedBoth(t, p, int64(idx)) {
					ran++
				}
			}
		}
	}
	if ran < 12 {
		t.Fatalf("only %d valid schedule combinations ran; sweep is too narrow", ran)
	}
}

// TestVMGeneratedPropertyRandomConfigs is the randomized counterpart:
// quick.Check over the schedule space, comparing engines bit-for-bit.
func TestVMGeneratedPropertyRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("differential property test")
	}
	f := func(algSel, mwiS, nwiS, kwgS, vwS, shSel, stSel, layA, layB uint8, seed int64) bool {
		lay := []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}
		p := codegen.Params{
			Precision: matrix.Double,
			Algorithm: codegen.Algorithms[algSel%3],
			MdimC:     2, NdimC: 4,
			Kwi:     2,
			SharedA: shSel&1 != 0,
			SharedB: shSel&2 != 0,
			StrideM: stSel&1 != 0,
			StrideN: stSel&2 != 0,
			LayoutA: lay[layA%3],
			LayoutB: lay[layB%3],
		}
		p.Mwg = p.MdimC * (int(mwiS%3) + 1)
		p.Nwg = p.NdimC * []int{2, 4}[nwiS%2]
		p.Kwg = []int{4, 8}[kwgS%2]
		p.VectorWidth = []int{1, 2}[vwS%2]
		p.MdimA = p.MdimC
		p.NdimB = p.NdimC
		if p.Algorithm == codegen.DB && !p.UsesLocalMemory() {
			p.SharedB = true
		}
		runGeneratedBoth(t, p, seed)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
