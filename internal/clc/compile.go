package clc

// The bytecode compiler lowers a checked kernel AST into a compact
// register program executed by vm.go. The translation preserves the AST
// interpreter's semantics exactly — including evaluation order of
// runtime faults and their positioned error messages — so the
// interpreter can serve as a differential oracle. What it removes is
// the interpreter's per-node costs: scope-map allocation per block and
// loop iteration, name lookups through the scope chain, and recursive
// dispatch. Names resolve to register/array slots at compile time,
// integer-constant subexpressions fold to loads from a constant pool,
// and control flow becomes jumps over a flat instruction slice.

import (
	"fmt"
	"sync"
)

type opcode uint8

const (
	opConst      opcode = iota // r[dst] = consts[imm]
	opMov                      // r[dst] = r[a]
	opBool                     // r[dst] = boolVal(r[a] truthy)
	opBin                      // r[dst] = r[a] arithOps[imm] r[b]
	opNeg                      // r[dst] = -r[a]
	opNot                      // r[dst] = !r[a]
	opBitNot                   // r[dst] = ^r[a]
	opConvert                  // r[dst] = convert r[a] to types[imm]
	opConvertDyn               // r[dst] = convert r[a] to arrs[b].t
	opVecCtor                  // r[dst] = types[imm] vector from r[a..a+c-1]
	opJump                     // pc = imm
	opJumpF                    // if !r[a] truthy: pc = imm
	opJumpT                    // if r[a] truthy: pc = imm
	opWI                       // r[dst] = work-item query imm, dim r[a]
	opBarrier                  // work-group barrier
	opMad                      // r[dst] = r[a]*r[b] + r[c]
	opMin                      // r[dst] = min(r[a], r[b])
	opMax                      // r[dst] = max(r[a], r[b])
	opLoad                     // r[dst] = arrs[a][r[b]]
	opCheckIdx                 // bounds-check arrs[a][r[b]] without loading
	opStore                    // arrs[a][r[b]] = r[c]
	opVload                    // r[dst] = vload_imm(r[b], arrs[a])
	opVstore                   // vstore_imm(r[c], r[b], arrs[a])
	opAllocArr                 // arrs[a] = fresh zeroed array defs[imm]
	opErr                      // panic errs[imm]
	opHalt                     // end of kernel body

	// Optimizer-emitted opcodes (see optimize.go). The compiler never
	// produces these; they exist only in optimized programs.
	opLoadK     // r[dst] = arrs[a][imm], bounds statically proven
	opStoreK    // arrs[a][imm] = r[c], bounds statically proven
	opLoadBin   // r[dst] = arrs[slot][r[b]] <op> r[a] (imm packs op/side/slot)
	opBinStore  // arrs[slot][r[c]] = r[a] <op> r[b] (imm packs op/slot)
	opLoadStore // arrs[dslot][r[c]] = arrs[sslot][r[b]] (imm packs sslot/dslot)
	opLoadMad   // r[dst] = r[a]*r[b] + arrs[imm][r[c]]
	opMadAcc    // arrs[imm][r[c]] = r[a]*r[b] + arrs[imm][r[c]]
	opMadAccD   // opMadAcc with proven double-scalar operands and elements
	opMadAccF   // opMadAcc with proven float-scalar operands and elements
	opLoadD     // opLoad with proven double-scalar element and int index
	opLoadF     // opLoad with proven float-scalar element and int index
	opStoreD    // opStore with proven double-scalar value and element
	opStoreF    // opStore with proven float-scalar value and element
)

// Work-item query selectors (opWI.imm).
const (
	wiGlobalID int64 = iota
	wiLocalID
	wiGroupID
	wiLocalSize
	wiGlobalSize
	wiNumGroups
)

// arithOps indexes the binary operators opBin can carry in imm. The
// aXxx constants below mirror the array order; binopInto dispatches on
// them so the VM never touches operator strings.
var arithOps = [...]string{"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="}

const (
	aAdd int64 = iota
	aSub
	aMul
	aDiv
	aMod
	aShl
	aShr
	aAnd
	aOr
	aXor
	aLt
	aLe
	aGt
	aGe
	aEq
	aNe
)

var arithIdx = func() map[string]int64 {
	m := make(map[string]int64, len(arithOps))
	for i, op := range arithOps {
		m[op] = int64(i)
	}
	return m
}()

// instr is one VM instruction. dst/a/b/c are register indexes except
// where the opcode comments above say an array slot; imm selects a
// pool entry, jump target, operator, or vector width.
type instr struct {
	op      opcode
	dst     int32
	a, b, c int32
	imm     int64
}

// arrayDef describes a __private (or nested __local) array allocated by
// opAllocArr: element type plus total payload length (elements × lanes).
type arrayDef struct {
	t     Type
	total int
}

// compiledKernel is the immutable bytecode program for one kernel. It
// is shared by every Bind of the declaration and by all work-items;
// per-item state lives in pooled vmFrames.
type compiledKernel struct {
	code []instr
	ex   []Expr // per-instruction error-position context (may be nil)
	ex2  []Expr // second fault-site position for fused instructions;
	// compileKernel aliases it to ex (the two sites coincide until the
	// optimizer fuses instruction pairs with distinct source positions).
	consts []value
	types  []Type
	defs   []arrayDef
	errs   []*Error

	nreg int
	narr int

	// paramRegs[i] is the register for scalar parameter i (else -1);
	// paramArrs[i] the array slot for pointer parameter i (else -1).
	paramRegs []int32
	paramArrs []int32
	// localSlots maps the hoisting ordinal of each top-level __local
	// array (the order Bind collects them) to its array slot.
	localSlots []int32

	pool sync.Pool
}

// bytecode compiles (once) and returns the kernel's program, or nil if
// the declaration has a shape the compiler cannot lower; callers fall
// back to the interpreter in that case.
func (k *KernelDecl) bytecode() *compiledKernel {
	k.compileOnce.Do(func() { k.compiled, k.compileErr = compileKernel(k) })
	return k.compiled
}

// bytecodeOptimized runs (once) the optimizer over the compiled
// program. Nil when compilation itself failed.
func (k *KernelDecl) bytecodeOptimized() *compiledKernel {
	k.optimizeOnce.Do(func() {
		if p := k.bytecode(); p != nil {
			k.optimizedProg = optimizeKernel(k, p)
		}
	})
	return k.optimizedProg
}

// CompileBytecode forces bytecode compilation and reports its error, if
// any. A nil return guarantees BoundKernel.Run uses the VM by default.
func (k *KernelDecl) CompileBytecode() error {
	k.bytecode()
	return k.compileErr
}

// slotRef is a compile-time name binding: a register (with the
// variable's runtime value type, the conversion target of assignments)
// or an array slot.
type slotRef struct {
	reg int32
	arr int32
	t   Type
}

type compiler struct {
	p      *compiledKernel
	scopes []map[string]slotRef
	// free is the next free register; statement compilation saves and
	// restores it as a watermark so temporaries are reused while named
	// declarations keep their registers.
	free int32
}

func compileKernel(k *KernelDecl) (p *compiledKernel, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(error)
			if !ok {
				panic(r)
			}
			p, err = nil, fmt.Errorf("clc: bytecode compile of kernel %s: %w", k.Name, e)
		}
	}()
	c := &compiler{p: &compiledKernel{}}
	c.push()
	for _, prm := range k.Params {
		if prm.Pointer {
			slot := c.newArrSlot()
			c.define(prm.Name, slotRef{reg: -1, arr: slot})
			c.p.paramRegs = append(c.p.paramRegs, -1)
			c.p.paramArrs = append(c.p.paramArrs, slot)
			continue
		}
		reg := c.allocReg()
		// Bind only ever produces scalar argument values (int collapses
		// uint), so the variable's runtime type is scalar regardless of
		// the declared lane count.
		t := Type{Base: prm.Type.Base, Lanes: 1}
		if prm.Type.IsInt() {
			t = Type{Base: "int", Lanes: 1}
		}
		c.define(prm.Name, slotRef{reg: reg, arr: -1, t: t})
		c.p.paramRegs = append(c.p.paramRegs, reg)
		c.p.paramArrs = append(c.p.paramArrs, -1)
	}
	// Hoisted top-level __local arrays, in the order Bind collects them.
	for _, s := range k.Body.Stmts {
		d, ok := s.(*Decl)
		if !ok || d.Space != LocalMem {
			continue
		}
		if d.ArrayLen == nil {
			return nil, fmt.Errorf("clc: kernel %s: scalar __local variables are not supported", k.Name)
		}
		slot := c.newArrSlot()
		c.define(d.Name, slotRef{reg: -1, arr: slot})
		c.p.localSlots = append(c.p.localSlots, slot)
	}
	c.block(k.Body, true)
	c.emit(instr{op: opHalt}, nil)
	// Unoptimized programs have one fault position per instruction; the
	// second slot aliases the first (opMad's mul and add faults share
	// the mad call's position until the optimizer fuses distinct sites).
	c.p.ex2 = c.p.ex
	return c.p, nil
}

// --- Compiler bookkeeping ----------------------------------------------------

func (c *compiler) push() { c.scopes = append(c.scopes, map[string]slotRef{}) }
func (c *compiler) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) define(name string, r slotRef) { c.scopes[len(c.scopes)-1][name] = r }

func (c *compiler) lookup(name string) (slotRef, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if r, ok := c.scopes[i][name]; ok {
			return r, true
		}
	}
	return slotRef{}, false
}

func (c *compiler) allocReg() int32 {
	r := c.free
	c.free++
	if int(c.free) > c.p.nreg {
		c.p.nreg = int(c.free)
	}
	return r
}

func (c *compiler) temp() int32 { return c.allocReg() }

func (c *compiler) newArrSlot() int32 {
	s := int32(c.p.narr)
	c.p.narr++
	return s
}

func (c *compiler) emit(in instr, at Expr) int {
	c.p.code = append(c.p.code, in)
	c.p.ex = append(c.p.ex, at)
	return len(c.p.code) - 1
}

// patch points a previously emitted jump at the next instruction.
func (c *compiler) patch(pc int) { c.p.code[pc].imm = int64(len(c.p.code)) }

func (c *compiler) constIdx(v value) int64 {
	c.p.consts = append(c.p.consts, v)
	return int64(len(c.p.consts) - 1)
}

func (c *compiler) typeIdx(t Type) int64 {
	for i, u := range c.p.types {
		if u == t {
			return int64(i)
		}
	}
	c.p.types = append(c.p.types, t)
	return int64(len(c.p.types) - 1)
}

func (c *compiler) constReg(v value, at Expr) int32 {
	dst := c.temp()
	c.emit(instr{op: opConst, dst: dst, imm: c.constIdx(v)}, at)
	return dst
}

// emitErr lowers a fault the interpreter would hit at this point of
// evaluation into an instruction that panics with the identical
// positioned error. Dead code never reaches it, matching the
// interpreter's lazy failure semantics.
func (c *compiler) emitErr(e *Error) {
	c.p.errs = append(c.p.errs, e)
	c.emit(instr{op: opErr, imm: int64(len(c.p.errs) - 1)}, nil)
}

// --- Constant folding --------------------------------------------------------

// tryFold evaluates e at compile time when every leaf is a literal or
// builtin constant. Faulting expressions (division by zero, invalid
// conversions) are left to runtime so error order is preserved.
func (c *compiler) tryFold(e Expr) (v value, ok bool) {
	defer func() {
		if recover() != nil {
			v, ok = value{}, false
		}
	}()
	return c.foldExpr(e)
}

func (c *compiler) foldExpr(e Expr) (value, bool) {
	switch n := e.(type) {
	case *IntLit:
		return intVal(n.Value), true
	case *FloatLit:
		base := "double"
		if n.Single {
			base = "float"
		}
		v := floatVal(base, 1)
		v.f[0] = round32(base, n.Value)
		return v, true
	case *Ident:
		if cv, ok := builtinConsts[n.Name]; ok {
			return intVal(cv), true
		}
	case *Unary:
		x, ok := c.foldExpr(n.X)
		if !ok {
			return value{}, false
		}
		switch n.Op {
		case "-":
			if x.t.IsInt() {
				return intVal(-x.i), true
			}
			out := floatVal(x.t.Base, x.t.Lanes)
			for l := 0; l < x.t.Lanes; l++ {
				out.f[l] = -x.f[l]
			}
			return out, true
		case "!":
			return boolVal(!x.truthy()), true
		case "~":
			return intVal(^x.asInt()), true
		}
	case *Binary:
		switch n.Op {
		case "&&":
			l, ok := c.foldExpr(n.L)
			if !ok {
				return value{}, false
			}
			if !l.truthy() {
				return intVal(0), true
			}
			r, ok := c.foldExpr(n.R)
			if !ok {
				return value{}, false
			}
			return boolVal(r.truthy()), true
		case "||":
			l, ok := c.foldExpr(n.L)
			if !ok {
				return value{}, false
			}
			if l.truthy() {
				return intVal(1), true
			}
			r, ok := c.foldExpr(n.R)
			if !ok {
				return value{}, false
			}
			return boolVal(r.truthy()), true
		default:
			l, lok := c.foldExpr(n.L)
			if !lok {
				return value{}, false
			}
			r, rok := c.foldExpr(n.R)
			if !rok {
				return value{}, false
			}
			return binopVal(n.Op, l, r, e), true
		}
	case *Cond:
		cv, ok := c.foldExpr(n.C)
		if !ok {
			return value{}, false
		}
		if cv.truthy() {
			return c.foldExpr(n.T)
		}
		return c.foldExpr(n.F)
	case *Cast:
		if len(n.Args) == 1 {
			if x, ok := c.foldExpr(n.Args[0]); ok {
				return convertVal(x, n.To, e), true
			}
		}
	}
	return value{}, false
}

// --- Expressions -------------------------------------------------------------

// expr compiles e and returns the register holding its value. The
// returned register may be a named variable's home register; callers
// must not write to it.
func (c *compiler) expr(e Expr) int32 {
	if v, ok := c.tryFold(e); ok {
		return c.constReg(v, e)
	}
	switch n := e.(type) {
	case *Ident:
		// Builtin constants fold above (they shadow declarations, as in
		// the interpreter's eval).
		ref, ok := c.lookup(n.Name)
		if !ok {
			c.emitErr(errAt(e, "undeclared identifier %q", n.Name))
			return c.temp()
		}
		if ref.arr >= 0 {
			c.emitErr(errAt(e, "array %q used as a value", n.Name))
			return c.temp()
		}
		return ref.reg
	case *Binary:
		return c.binary(n)
	case *Unary:
		x := c.expr(n.X)
		dst := c.temp()
		switch n.Op {
		case "-":
			c.emit(instr{op: opNeg, dst: dst, a: x}, e)
		case "!":
			c.emit(instr{op: opNot, dst: dst, a: x}, e)
		case "~":
			c.emit(instr{op: opBitNot, dst: dst, a: x}, e)
		default:
			c.emitErr(errAt(e, "unsupported unary operator %q", n.Op))
		}
		return dst
	case *Cond:
		if cv, ok := c.tryFold(n.C); ok {
			// The interpreter never evaluates the untaken branch.
			if cv.truthy() {
				return c.expr(n.T)
			}
			return c.expr(n.F)
		}
		dst := c.temp()
		cv := c.expr(n.C)
		jf := c.emit(instr{op: opJumpF, a: cv}, nil)
		tv := c.expr(n.T)
		c.emit(instr{op: opMov, dst: dst, a: tv}, nil)
		j := c.emit(instr{op: opJump}, nil)
		c.patch(jf)
		fv := c.expr(n.F)
		c.emit(instr{op: opMov, dst: dst, a: fv}, nil)
		c.patch(j)
		return dst
	case *Call:
		return c.call(n)
	case *Index:
		slot := c.arraySlot(n.X)
		if slot < 0 {
			// The interpreter faults before evaluating the index.
			return c.temp()
		}
		idx := c.expr(n.Idx)
		dst := c.temp()
		c.emit(instr{op: opLoad, dst: dst, a: slot, b: idx}, e)
		return dst
	case *Cast:
		if len(n.Args) == 1 {
			r := c.expr(n.Args[0])
			dst := c.temp()
			c.emit(instr{op: opConvert, dst: dst, a: r, imm: c.typeIdx(n.To)}, e)
			return dst
		}
		// Vector constructor: components land in a consecutive register
		// block.
		block := make([]int32, len(n.Args))
		for i := range n.Args {
			block[i] = c.temp()
		}
		for i, a := range n.Args {
			save := c.free
			r := c.expr(a)
			c.emit(instr{op: opMov, dst: block[i], a: r}, nil)
			c.free = save
		}
		dst := c.temp()
		c.emit(instr{op: opVecCtor, dst: dst, a: block[0], c: int32(len(n.Args)), imm: c.typeIdx(n.To)}, e)
		return dst
	}
	c.emitErr(errAt(e, "unsupported expression"))
	return c.temp()
}

func (c *compiler) binary(n *Binary) int32 {
	switch n.Op {
	case "&&":
		if lv, ok := c.tryFold(n.L); ok {
			if !lv.truthy() {
				return c.constReg(intVal(0), n)
			}
			r := c.expr(n.R)
			dst := c.temp()
			c.emit(instr{op: opBool, dst: dst, a: r}, n)
			return dst
		}
		dst := c.temp()
		l := c.expr(n.L)
		jf := c.emit(instr{op: opJumpF, a: l}, nil)
		r := c.expr(n.R)
		c.emit(instr{op: opBool, dst: dst, a: r}, n)
		j := c.emit(instr{op: opJump}, nil)
		c.patch(jf)
		c.emit(instr{op: opConst, dst: dst, imm: c.constIdx(intVal(0))}, n)
		c.patch(j)
		return dst
	case "||":
		if lv, ok := c.tryFold(n.L); ok {
			if lv.truthy() {
				return c.constReg(intVal(1), n)
			}
			r := c.expr(n.R)
			dst := c.temp()
			c.emit(instr{op: opBool, dst: dst, a: r}, n)
			return dst
		}
		dst := c.temp()
		l := c.expr(n.L)
		jt := c.emit(instr{op: opJumpT, a: l}, nil)
		r := c.expr(n.R)
		c.emit(instr{op: opBool, dst: dst, a: r}, n)
		j := c.emit(instr{op: opJump}, nil)
		c.patch(jt)
		c.emit(instr{op: opConst, dst: dst, imm: c.constIdx(intVal(1))}, n)
		c.patch(j)
		return dst
	}
	l := c.expr(n.L)
	r := c.expr(n.R)
	dst := c.temp()
	idx, ok := arithIdx[n.Op]
	if !ok {
		c.emitErr(errAt(n, "unsupported operator %q", n.Op))
		return dst
	}
	c.emit(instr{op: opBin, dst: dst, a: l, b: r, imm: idx}, n)
	return dst
}

func (c *compiler) call(n *Call) int32 {
	switch n.Fun {
	case "get_global_id", "get_local_id", "get_group_id", "get_local_size", "get_global_size", "get_num_groups":
		var sel int64
		switch n.Fun {
		case "get_global_id":
			sel = wiGlobalID
		case "get_local_id":
			sel = wiLocalID
		case "get_group_id":
			sel = wiGroupID
		case "get_local_size":
			sel = wiLocalSize
		case "get_global_size":
			sel = wiGlobalSize
		default:
			sel = wiNumGroups
		}
		d := c.expr(n.Args[0])
		dst := c.temp()
		c.emit(instr{op: opWI, dst: dst, a: d, imm: sel}, n)
		return dst
	case "barrier":
		c.expr(n.Args[0])
		c.emit(instr{op: opBarrier}, n)
		return c.constReg(intVal(0), n)
	case "mad", "fma":
		a := c.expr(n.Args[0])
		b := c.expr(n.Args[1])
		cc := c.expr(n.Args[2])
		dst := c.temp()
		c.emit(instr{op: opMad, dst: dst, a: a, b: b, c: cc}, n)
		return dst
	case "min", "max":
		a := c.expr(n.Args[0])
		b := c.expr(n.Args[1])
		dst := c.temp()
		op := opMin
		if n.Fun == "max" {
			op = opMax
		}
		c.emit(instr{op: op, dst: dst, a: a, b: b}, n)
		return dst
	case "vload2", "vload4", "vload8":
		w := int64(n.Fun[5] - '0')
		off := c.expr(n.Args[0])
		slot := c.arraySlot(n.Args[1])
		if slot < 0 {
			return c.temp()
		}
		dst := c.temp()
		c.emit(instr{op: opVload, dst: dst, a: slot, b: off, imm: w}, n)
		return dst
	case "vstore2", "vstore4", "vstore8":
		w := int64(n.Fun[6] - '0')
		v := c.expr(n.Args[0])
		off := c.expr(n.Args[1])
		slot := c.arraySlot(n.Args[2])
		if slot < 0 {
			return c.temp()
		}
		c.emit(instr{op: opVstore, a: slot, b: off, c: v, imm: w}, n)
		return c.constReg(intVal(0), n)
	}
	c.emitErr(errAt(n, "unknown function %q", n.Fun))
	return c.temp()
}

// arraySlot resolves x to an array slot, or emits the interpreter's
// arrayOf fault and returns -1.
func (c *compiler) arraySlot(x Expr) int32 {
	id, ok := x.(*Ident)
	if !ok {
		c.emitErr(errAt(x, "expected array identifier"))
		return -1
	}
	ref, ok := c.lookup(id.Name)
	if !ok {
		c.emitErr(errAt(x, "undeclared identifier %q", id.Name))
		return -1
	}
	if ref.arr < 0 {
		c.emitErr(errAt(x, "%q is not an array", id.Name))
		return -1
	}
	return ref.arr
}

// --- Statements --------------------------------------------------------------

func (c *compiler) block(b *Block, skipLocals bool) {
	c.push()
	for _, s := range b.Stmts {
		if skipLocals {
			if d, ok := s.(*Decl); ok && d.Space == LocalMem {
				continue // materialized per work-group
			}
		}
		c.stmt(s)
	}
	c.pop()
}

func (c *compiler) stmt(s Stmt) {
	switch n := s.(type) {
	case *Decl:
		c.decl(n)
	case *Assign:
		save := c.free
		c.assign(n)
		c.free = save
	case *ExprStmt:
		save := c.free
		c.expr(n.X)
		c.free = save
	case *If:
		save := c.free
		cv := c.expr(n.Cond)
		jf := c.emit(instr{op: opJumpF, a: cv}, nil)
		c.free = save
		c.block(n.Then, false)
		if n.Else == nil {
			c.patch(jf)
			return
		}
		j := c.emit(instr{op: opJump}, nil)
		c.patch(jf)
		c.stmt(n.Else)
		c.patch(j)
	case *For:
		c.push()
		if n.Init != nil {
			c.stmt(n.Init)
		}
		top := len(c.p.code)
		jf := -1
		if n.Cond != nil {
			save := c.free
			cv := c.expr(n.Cond)
			jf = c.emit(instr{op: opJumpF, a: cv}, nil)
			c.free = save
		}
		c.block(n.Body, false)
		if n.Post != nil {
			c.stmt(n.Post)
		}
		c.emit(instr{op: opJump, imm: int64(top)}, nil)
		if jf >= 0 {
			c.patch(jf)
		}
		c.pop()
	case *Block:
		c.block(n, false)
	}
}

func (c *compiler) decl(d *Decl) {
	if d.ArrayLen != nil {
		n, err := constFold(d.ArrayLen)
		if err != nil {
			// The checker validated this; a failure here means the AST
			// changed under us — refuse to compile.
			panic(err)
		}
		slot := c.newArrSlot()
		if d.Type.IsInt() {
			// The interpreter rejects integer arrays when the declaration
			// executes; mirror that lazily so dead declarations stay dead.
			line, col := d.Pos()
			c.emitErr(&Error{Line: line, Col: col, Msg: "integer arrays are not supported"})
		} else {
			c.p.defs = append(c.p.defs, arrayDef{t: d.Type, total: int(n) * d.Type.Lanes})
			c.emit(instr{op: opAllocArr, a: slot, imm: int64(len(c.p.defs) - 1)}, nil)
		}
		c.define(d.Name, slotRef{reg: -1, arr: slot})
		return
	}
	var reg int32
	if d.Init != nil {
		save := c.free
		r := c.expr(d.Init)
		c.free = save
		reg = c.allocReg()
		c.emit(instr{op: opConvert, dst: reg, a: r, imm: c.typeIdx(d.Type)}, d.Init)
	} else {
		reg = c.allocReg()
		// Uninitialized declarations re-zero on every execution (the
		// interpreter rebuilds the variable per loop iteration).
		zero := intVal(0)
		if !d.Type.IsInt() {
			zero = floatVal(d.Type.Base, d.Type.Lanes)
		}
		c.emit(instr{op: opConst, dst: reg, imm: c.constIdx(zero)}, nil)
	}
	t := d.Type
	if t.IsInt() {
		t = Type{Base: "int", Lanes: 1}
	}
	c.define(d.Name, slotRef{reg: reg, arr: -1, t: t})
}

func (c *compiler) assign(a *Assign) {
	rhs := c.expr(a.RHS)
	var bin int64 = -1
	switch a.Op {
	case "=":
	case "+=":
		bin = arithIdx["+"]
	case "-=":
		bin = arithIdx["-"]
	case "*=":
		bin = arithIdx["*"]
	case "/=":
		bin = arithIdx["/"]
	default:
		c.emitErr(errAt(a.LHS, "unsupported assignment operator %q", a.Op))
		return
	}
	switch lhs := a.LHS.(type) {
	case *Ident:
		ref, ok := c.lookup(lhs.Name)
		if !ok {
			c.emitErr(errAt(lhs, "undeclared identifier %q", lhs.Name))
			return
		}
		if ref.arr >= 0 {
			c.emitErr(errAt(lhs, "cannot assign to array %q", lhs.Name))
			return
		}
		if bin < 0 {
			c.emit(instr{op: opConvert, dst: ref.reg, a: rhs, imm: c.typeIdx(ref.t)}, a.RHS)
			return
		}
		tmp := c.temp()
		c.emit(instr{op: opBin, dst: tmp, a: ref.reg, b: rhs, imm: bin}, a.RHS)
		c.emit(instr{op: opConvert, dst: ref.reg, a: tmp, imm: c.typeIdx(ref.t)}, a.RHS)
	case *Index:
		slot := c.arraySlot(lhs.X)
		if slot < 0 {
			return
		}
		idx := c.expr(lhs.Idx)
		if bin < 0 {
			// The interpreter bounds-checks (via its read-modify-write
			// load) before converting the stored value; opCheckIdx keeps
			// that fault order without paying for the load.
			c.emit(instr{op: opCheckIdx, a: slot, b: idx}, lhs)
			conv := c.temp()
			c.emit(instr{op: opConvertDyn, dst: conv, a: rhs, b: slot}, a.RHS)
			c.emit(instr{op: opStore, a: slot, b: idx, c: conv}, lhs)
			return
		}
		cur := c.temp()
		c.emit(instr{op: opLoad, dst: cur, a: slot, b: idx}, lhs)
		tmp := c.temp()
		c.emit(instr{op: opBin, dst: tmp, a: cur, b: rhs, imm: bin}, a.RHS)
		conv := c.temp()
		c.emit(instr{op: opConvertDyn, dst: conv, a: tmp, b: slot}, a.RHS)
		c.emit(instr{op: opStore, a: slot, b: idx, c: conv}, lhs)
	default:
		c.emitErr(errAt(a.LHS, "left-hand side is not assignable"))
	}
}
