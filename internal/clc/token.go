// Package clc is an OpenCL C front end for the kernel subset the GEMM
// code generator emits: a lexer, a recursive-descent parser, light
// semantic checking, and a tree-walking interpreter that executes
// kernels per work-item on the clsim runtime (so generated kernel
// *source text* is what gets validated against the reference BLAS, not
// a hand-written reimplementation).
//
// Supported subset: scalar types int/uint/float/double, vector types
// float2/4/8 and double2/4/8, address-space qualifiers (__global,
// __local, __private, const, restrict), kernel parameters, local and
// private array declarations, for/if statements, the usual C operators,
// vector constructors/broadcasts, vloadN/vstoreN, mad/fma/min/max,
// work-item ID builtins and barrier().
package clc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit
	tokPunct // operators and delimiters, in tok.text
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer turns OpenCL C source into tokens. Preprocessor lines
// (#pragma and friends) are skipped; comments likewise.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a positioned front-end error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("clc: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextByte() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// multi-character operators, longest first.
var punct2 = []string{
	"<<=", ">>=",
	"+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
}

func (l *lexer) next() (token, error) {
	for {
		// Skip whitespace.
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				l.nextByte()
				continue
			}
			break
		}
		if l.pos >= len(l.src) {
			return token{kind: tokEOF, line: l.line, col: l.col}, nil
		}
		c := l.peekByte()
		// Preprocessor directive: skip to end of line.
		if c == '#' {
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.nextByte()
			}
			continue
		}
		// Comments.
		if c == '/' && l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '/':
				for l.pos < len(l.src) && l.peekByte() != '\n' {
					l.nextByte()
				}
				continue
			case '*':
				l.nextByte()
				l.nextByte()
				closed := false
				for l.pos+1 < len(l.src) {
					if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
						l.nextByte()
						l.nextByte()
						closed = true
						break
					}
					l.nextByte()
				}
				if !closed {
					return token{}, l.errf("unterminated block comment")
				}
				continue
			}
		}
		break
	}

	line, col := l.line, l.col
	c := l.peekByte()

	// Identifier or keyword.
	if c == '_' || unicode.IsLetter(rune(c)) {
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
				l.nextByte()
				continue
			}
			break
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	}

	// Number.
	if unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))) {
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			switch {
			case unicode.IsDigit(rune(c)):
				l.nextByte()
			case c == '.':
				isFloat = true
				l.nextByte()
			case c == 'e' || c == 'E':
				isFloat = true
				l.nextByte()
				if l.pos < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
					l.nextByte()
				}
			case c == 'x' || c == 'X':
				l.nextByte()
			case c >= 'a' && c <= 'd' || c >= 'A' && c <= 'D':
				// hex digits (only valid after 0x; the parser's number
				// conversion rejects garbage)
				l.nextByte()
			case c == 'f' || c == 'F':
				isFloat = true
				l.nextByte()
			default:
				goto done
			}
		}
	done:
		text := l.src[start:l.pos]
		kind := tokIntLit
		if isFloat {
			kind = tokFloatLit
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	}

	// Punctuation.
	rest := l.src[l.pos:]
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.nextByte()
			}
			return token{kind: tokPunct, text: p, line: line, col: col}, nil
		}
	}
	single := "+-*/%=<>!&|^~?:;,.(){}[]"
	if strings.IndexByte(single, c) >= 0 {
		l.nextByte()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
