package clc

import "fmt"

// builtinArity maps supported builtin functions to their argument
// counts (-1 = variadic not used here).
var builtinArity = map[string]int{
	"get_global_id":   1,
	"get_local_id":    1,
	"get_group_id":    1,
	"get_local_size":  1,
	"get_global_size": 1,
	"get_num_groups":  1,
	"barrier":         1,
	"mad":             3,
	"fma":             3,
	"min":             2,
	"max":             2,
	"vload2":          2,
	"vload4":          2,
	"vload8":          2,
	"vstore2":         3,
	"vstore4":         3,
	"vstore8":         3,
}

// builtinConsts are predefined identifiers.
var builtinConsts = map[string]int64{
	"CLK_LOCAL_MEM_FENCE":  1,
	"CLK_GLOBAL_MEM_FENCE": 2,
}

type checker struct {
	scopes []map[string]bool
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]bool{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, line, col int) error {
	top := c.scopes[len(c.scopes)-1]
	if top[name] {
		return &Error{Line: line, Col: col, Msg: fmt.Sprintf("redeclaration of %q", name)}
	}
	top[name] = true
	return nil
}

func (c *checker) resolved(name string) bool {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if c.scopes[i][name] {
			return true
		}
	}
	_, isConst := builtinConsts[name]
	return isConst
}

// checkKernel performs the static checks: declared-before-use, no
// duplicate declarations per scope, assignable left-hand sides,
// builtin arities, and constant array lengths.
func checkKernel(k *KernelDecl) error {
	c := &checker{}
	c.push()
	for _, p := range k.Params {
		if err := c.declare(p.Name, 0, 0); err != nil {
			return fmt.Errorf("kernel %s: duplicate parameter %q", k.Name, p.Name)
		}
	}
	if err := c.block(k.Body); err != nil {
		return fmt.Errorf("kernel %s: %w", k.Name, err)
	}
	return nil
}

func (c *checker) block(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch n := s.(type) {
	case *Decl:
		if n.ArrayLen != nil {
			if _, err := constFold(n.ArrayLen); err != nil {
				return err
			}
			if n.Init != nil {
				line, col := n.Pos()
				return &Error{Line: line, Col: col, Msg: "array initializers are not supported"}
			}
		}
		if n.Init != nil {
			if err := c.expr(n.Init); err != nil {
				return err
			}
		}
		line, col := n.Pos()
		return c.declare(n.Name, line, col)
	case *Assign:
		switch n.LHS.(type) {
		case *Ident, *Index:
		default:
			line, col := n.Pos()
			return &Error{Line: line, Col: col, Msg: "left-hand side is not assignable"}
		}
		if err := c.expr(n.LHS); err != nil {
			return err
		}
		return c.expr(n.RHS)
	case *ExprStmt:
		return c.expr(n.X)
	case *If:
		if err := c.expr(n.Cond); err != nil {
			return err
		}
		if err := c.block(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return c.stmt(n.Else)
		}
		return nil
	case *For:
		c.push()
		defer c.pop()
		if n.Init != nil {
			if err := c.stmt(n.Init); err != nil {
				return err
			}
		}
		if n.Cond != nil {
			if err := c.expr(n.Cond); err != nil {
				return err
			}
		}
		if n.Post != nil {
			if err := c.stmt(n.Post); err != nil {
				return err
			}
		}
		return c.block(n.Body)
	case *Block:
		return c.block(n)
	}
	return nil
}

func (c *checker) expr(e Expr) error {
	switch n := e.(type) {
	case *IntLit, *FloatLit:
		return nil
	case *Ident:
		if !c.resolved(n.Name) {
			line, col := n.Pos()
			return &Error{Line: line, Col: col, Msg: fmt.Sprintf("undeclared identifier %q", n.Name)}
		}
		return nil
	case *Binary:
		if err := c.expr(n.L); err != nil {
			return err
		}
		return c.expr(n.R)
	case *Unary:
		return c.expr(n.X)
	case *Cond:
		for _, x := range []Expr{n.C, n.T, n.F} {
			if err := c.expr(x); err != nil {
				return err
			}
		}
		return nil
	case *Call:
		arity, ok := builtinArity[n.Fun]
		if !ok {
			line, col := n.Pos()
			return &Error{Line: line, Col: col, Msg: fmt.Sprintf("unknown function %q", n.Fun)}
		}
		if arity >= 0 && len(n.Args) != arity {
			line, col := n.Pos()
			return &Error{Line: line, Col: col,
				Msg: fmt.Sprintf("%s expects %d arguments, got %d", n.Fun, arity, len(n.Args))}
		}
		for _, a := range n.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *Index:
		if err := c.expr(n.X); err != nil {
			return err
		}
		return c.expr(n.Idx)
	case *Cast:
		if n.To.Lanes > 1 && len(n.Args) != 1 && len(n.Args) != n.To.Lanes {
			line, col := n.Pos()
			return &Error{Line: line, Col: col,
				Msg: fmt.Sprintf("constructor for %s needs 1 or %d arguments", n.To, n.To.Lanes)}
		}
		for _, a := range n.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// constFold evaluates an integer constant expression.
func constFold(e Expr) (int64, error) {
	switch n := e.(type) {
	case *IntLit:
		return n.Value, nil
	case *Unary:
		v, err := constFold(n.X)
		if err != nil {
			return 0, err
		}
		if n.Op == "-" {
			return -v, nil
		}
		return 0, errAt(e, "non-constant unary operator")
	case *Binary:
		l, err := constFold(n.L)
		if err != nil {
			return 0, err
		}
		r, err := constFold(n.R)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, errAt(e, "constant division by zero")
			}
			return l / r, nil
		}
		return 0, errAt(e, "non-constant operator %q", n.Op)
	}
	return 0, errAt(e, "array length is not a constant expression")
}

func errAt(e Expr, format string, args ...any) *Error {
	line, col := e.Pos()
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
