package clc

import (
	"testing"
	"time"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// benchKernel builds the kernel-phase workload the clcheck/verify path
// executes: a generated BA double kernel with shared __local staging at
// a multi-work-group size.
func benchKernel(tb testing.TB, forceInterp bool) (*BoundKernel, *clsim.Queue, clsim.NDRange) {
	return benchKernelOpt(tb, forceInterp, true)
}

func benchKernelOpt(tb testing.TB, forceInterp, optimize bool) (*BoundKernel, *clsim.Queue, clsim.NDRange) {
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 16, Nwg: 16, Kwg: 8, MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1, SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	src, err := p.GenerateSource()
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := Compile(src)
	if err != nil {
		tb.Fatal(err)
	}
	kern, err := prog.Kernel(codegen.KernelName)
	if err != nil {
		tb.Fatal(err)
	}
	m, n, k := 32, 32, 16
	a := make([]float64, k*m)
	bb := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
	}
	for i := range bb {
		bb[i] = float64(i%5) * 0.5
	}
	bound, err := kern.Bind(m, n, k, 1.0, 0.0, a, bb, c)
	if err != nil {
		tb.Fatal(err)
	}
	bound.SetInterp(forceInterp)
	bound.SetOptimize(optimize)
	q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
	nd := clsim.NDRange{
		Global: [2]int{m / p.Mwg * p.MdimC, n / p.Nwg * p.NdimC},
		Local:  [2]int{p.MdimC, p.NdimC},
	}
	return bound, q, nd
}

// BenchmarkInterpVsVM compares the AST interpreter against the bytecode
// VM — both the raw compiler output ("vm-noopt", the PR 9 baseline) and
// the optimized program ("vm") — on the same generated-GEMM kernel
// phase. CI smokes this trio so the VM's throughput claims stay
// continuously checked.
func BenchmarkInterpVsVM(b *testing.B) {
	for _, eng := range []struct {
		name                  string
		forceInterp, optimize bool
	}{{"interp", true, false}, {"vm-noopt", false, false}, {"vm", false, true}} {
		b.Run(eng.name, func(b *testing.B) {
			bound, q, nd := benchKernelOpt(b, eng.forceInterp, eng.optimize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := q.Run(bound, nd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestVMSpeedupOverInterpreter pins the tentpole claims: the optimized
// bytecode VM must run the kernel-phase workload at least 10× faster
// than the AST interpreter, and at least 2× faster than the raw
// (unoptimized) bytecode — the PR 9 VM. Wall-clock thresholds are
// inherently machine-sensitive, so both bars sit below the typical
// measured ratios.
func TestVMSpeedupOverInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement")
	}
	measure := func(forceInterp, optimize bool, iters int) time.Duration {
		bound, q, nd := benchKernelOpt(t, forceInterp, optimize)
		// Warm up pools and caches.
		if err := q.Run(bound, nd); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := q.Run(bound, nd); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	const iters = 3
	vm := measure(false, true, iters)
	raw := measure(false, false, iters)
	interp := measure(true, false, iters)
	ratio := float64(interp) / float64(vm)
	overRaw := float64(raw) / float64(vm)
	t.Logf("interp %v, vm-noopt %v, vm %v: %.1fx over interp, %.1fx over noopt",
		interp, raw, vm, ratio, overRaw)
	if ratio < 10 {
		t.Errorf("optimized VM speedup %.2fx over interpreter, want >= 10x (interp %v, vm %v)", ratio, interp, vm)
	}
	if overRaw < 2 {
		t.Errorf("optimized VM speedup %.2fx over unoptimized bytecode, want >= 2x (noopt %v, vm %v)", overRaw, raw, vm)
	}
}
