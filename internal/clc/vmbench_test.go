package clc

import (
	"testing"
	"time"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// benchKernel builds the kernel-phase workload the clcheck/verify path
// executes: a generated BA double kernel with shared __local staging at
// a multi-work-group size.
func benchKernel(tb testing.TB, forceInterp bool) (*BoundKernel, *clsim.Queue, clsim.NDRange) {
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 16, Nwg: 16, Kwg: 8, MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1, SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	src, err := p.GenerateSource()
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := Compile(src)
	if err != nil {
		tb.Fatal(err)
	}
	kern, err := prog.Kernel(codegen.KernelName)
	if err != nil {
		tb.Fatal(err)
	}
	m, n, k := 32, 32, 16
	a := make([]float64, k*m)
	bb := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
	}
	for i := range bb {
		bb[i] = float64(i%5) * 0.5
	}
	bound, err := kern.Bind(m, n, k, 1.0, 0.0, a, bb, c)
	if err != nil {
		tb.Fatal(err)
	}
	bound.SetInterp(forceInterp)
	q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
	nd := clsim.NDRange{
		Global: [2]int{m / p.Mwg * p.MdimC, n / p.Nwg * p.NdimC},
		Local:  [2]int{p.MdimC, p.NdimC},
	}
	return bound, q, nd
}

// BenchmarkInterpVsVM compares the AST interpreter against the bytecode
// VM on the same generated-GEMM kernel phase. CI smokes this pair so
// the VM's throughput claim stays continuously checked.
func BenchmarkInterpVsVM(b *testing.B) {
	for _, eng := range []struct {
		name        string
		forceInterp bool
	}{{"interp", true}, {"vm", false}} {
		b.Run(eng.name, func(b *testing.B) {
			bound, q, nd := benchKernel(b, eng.forceInterp)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := q.Run(bound, nd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestVMSpeedupOverInterpreter pins the tentpole claim: the bytecode VM
// must run the kernel-phase workload at least 5× faster than the AST
// interpreter. Wall-clock thresholds are inherently machine-sensitive,
// so the bar is far below the typical measured ratio.
func TestVMSpeedupOverInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement")
	}
	measure := func(forceInterp bool, iters int) time.Duration {
		bound, q, nd := benchKernel(t, forceInterp)
		// Warm up pools and caches.
		if err := q.Run(bound, nd); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := q.Run(bound, nd); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	const iters = 3
	vm := measure(false, iters)
	interp := measure(true, iters)
	ratio := float64(interp) / float64(vm)
	t.Logf("interp %v, vm %v: %.1fx", interp, vm, ratio)
	if ratio < 5 {
		t.Errorf("VM speedup %.2fx, want >= 5x (interp %v, vm %v)", ratio, interp, vm)
	}
}
