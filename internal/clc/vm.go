package clc

// The bytecode VM: a flat instruction loop over a compiledKernel. One
// frame of registers and array slots is checked out of the program's
// pool per work-item execution; parameters are copied into registers up
// front so the hot loop never touches a map. Faults panic with the same
// positioned *Error values the interpreter produces (the executor
// recovers them into launch errors), using the per-instruction ex table
// for positions at zero cost off the error path.

import (
	"math"

	"oclgemm/internal/clsim"
)

type vmFrame struct {
	regs []value
	arrs []*arrayStore
}

func (p *compiledKernel) frame() *vmFrame {
	if f, ok := p.pool.Get().(*vmFrame); ok {
		return f
	}
	return &vmFrame{regs: make([]value, p.nreg), arrs: make([]*arrayStore, p.narr)}
}

// run executes the program for one work-item. args are the bound kernel
// arguments (scalar values are copied into registers — OpenCL argument
// semantics); gs carries the work-group's __local arrays; fuel > 0
// bounds loop back-edges (see BoundKernel.SetFuel).
func (p *compiledKernel) run(it *clsim.Item, args []*variable, gs *groupState, fuel int64) {
	f := p.frame()
	regs, arrs := f.regs, f.arrs
	for i, v := range args {
		if r := p.paramRegs[i]; r >= 0 {
			copyVal(&regs[r], &v.val)
		} else {
			arrs[p.paramArrs[i]] = v.arr
		}
	}
	for ord, slot := range p.localSlots {
		arrs[slot] = gs.slots[ord]
	}
	code := p.code
	pc := 0
	for {
		in := &code[pc]
		switch in.op {
		case opConst:
			copyVal(&regs[in.dst], &p.consts[in.imm])
		case opMov:
			copyVal(&regs[in.dst], &regs[in.a])
		case opBool:
			setBool(&regs[in.dst], regs[in.a].truthy())
		case opBin:
			binopInto(&regs[in.dst], in.imm, &regs[in.a], &regs[in.b], p.ex[pc])
		case opNeg:
			x := &regs[in.a]
			dst := &regs[in.dst]
			if x.t.IsInt() {
				setInt(dst, -x.i)
			} else {
				t := x.t
				for l := 0; l < t.Lanes; l++ {
					dst.f[l] = -x.f[l]
				}
				dst.t = t
			}
		case opNot:
			setBool(&regs[in.dst], !regs[in.a].truthy())
		case opBitNot:
			setInt(&regs[in.dst], ^regs[in.a].asInt())
		case opConvert:
			convertInto(&regs[in.dst], &regs[in.a], p.types[in.imm], p.ex[pc])
		case opConvertDyn:
			convertInto(&regs[in.dst], &regs[in.a], arrs[in.b].t, p.ex[pc])
		case opVecCtor:
			to := p.types[in.imm]
			// Source registers are distinct temps, never the dst block's
			// own slot, so writing lanes in order is alias-safe.
			dst := &regs[in.dst]
			for l := 0; l < int(in.c); l++ {
				dst.f[l] = round32(to.Base, regs[int(in.a)+l].lane(0))
			}
			dst.t = to
		case opJump:
			// Loop back-edges are the only backward jumps; charge fuel
			// exactly as the interpreter does per completed iteration.
			if int(in.imm) <= pc && fuel > 0 {
				fuel--
				if fuel == 0 {
					panic(errLoopBudget)
				}
			}
			pc = int(in.imm)
			continue
		case opJumpF:
			if !regs[in.a].truthy() {
				pc = int(in.imm)
				continue
			}
		case opJumpT:
			if regs[in.a].truthy() {
				pc = int(in.imm)
				continue
			}
		case opWI:
			d := int(regs[in.a].asInt())
			if d < 0 || d > 1 {
				panic(errAt(p.ex[pc], "dimension %d out of range (2-D NDRange)", d))
			}
			var x int
			switch in.imm {
			case wiGlobalID:
				x = it.GlobalID(d)
			case wiLocalID:
				x = it.LocalID(d)
			case wiGroupID:
				x = it.GroupID(d)
			case wiLocalSize:
				x = it.LocalSize(d)
			case wiGlobalSize:
				x = it.GlobalSize(d)
			default:
				x = it.GlobalSize(d) / it.LocalSize(d)
			}
			setInt(&regs[in.dst], int64(x))
		case opBarrier:
			it.Barrier()
		case opMad:
			// Contract: mad(a,b,c)/fma(a,b,c) is NOT fused — it lowers to
			// two separate binopInto calls (multiply, then add) through a
			// temporary, each rounding to the operands' promoted precision,
			// exactly as the interpreter evaluates mad as two binopVal
			// calls. Double rounding is therefore part of the semantics
			// both engines pin bit-for-bit; no handler may replace this
			// with a hardware FMA. ex2 carries the multiply's fault
			// position (it differs from ex only when the optimizer fused a
			// separate mul+add pair into this opMad).
			var prod value
			binopInto(&prod, aMul, &regs[in.a], &regs[in.b], p.ex2[pc])
			binopInto(&regs[in.dst], aAdd, &prod, &regs[in.c], p.ex[pc])
		case opMin, opMax:
			a, b := &regs[in.a], &regs[in.b]
			if a.t.IsInt() && b.t.IsInt() {
				if in.op == opMin {
					setInt(&regs[in.dst], min(a.i, b.i))
				} else {
					setInt(&regs[in.dst], max(a.i, b.i))
				}
			} else {
				// The interpreter's float min/max returns a double scalar
				// of lane 0 regardless of operand types; keep the quirk.
				x, y := a.lane(0), b.lane(0)
				dst := &regs[in.dst]
				if in.op == opMin {
					dst.f[0] = math.Min(x, y)
				} else {
					dst.f[0] = math.Max(x, y)
				}
				dst.t = Type{Base: "double", Lanes: 1}
			}
		case opLoad:
			arrs[in.a].loadInto(&regs[in.dst], regs[in.b].asInt(), p.ex[pc])
		case opCheckIdx:
			arr := arrs[in.a]
			idx := regs[in.b].asInt()
			if n := int64(arr.length()); idx < 0 || idx >= n {
				panic(errAt(p.ex[pc], "index %d out of range [0,%d)", idx, n))
			}
		case opStore:
			arrs[in.a].store(regs[in.b].asInt(), &regs[in.c], p.ex[pc])
		case opVload:
			arrs[in.a].vloadInto(&regs[in.dst], int(in.imm), regs[in.b].asInt(), p.ex[pc])
		case opVstore:
			v := &regs[in.c]
			w := int(in.imm)
			if v.t.Lanes != w {
				panic(errAt(p.ex[pc], "vstore%d given %d lanes", w, v.t.Lanes))
			}
			arrs[in.a].vstore(w, v, regs[in.b].asInt(), p.ex[pc])
		case opAllocArr:
			def := p.defs[in.imm]
			st := &arrayStore{t: def.t}
			if def.t.Base == "double" {
				st.f64 = make([]float64, def.total)
			} else {
				st.f32 = make([]float32, def.total)
			}
			arrs[in.a] = st
		case opLoadK:
			// Bounds statically proven by the optimizer: no check.
			arrs[in.a].loadFast(&regs[in.dst], in.imm)
		case opStoreK:
			arrs[in.a].storeFast(in.imm, &regs[in.c])
		case opLoadBin:
			op, side, slot := unpackLoadBin(in.imm)
			var tmp value
			arrs[slot].loadInto(&tmp, regs[in.b].asInt(), p.ex2[pc])
			if side == 0 {
				binopInto(&regs[in.dst], op, &tmp, &regs[in.a], p.ex[pc])
			} else {
				binopInto(&regs[in.dst], op, &regs[in.a], &tmp, p.ex[pc])
			}
		case opBinStore:
			op, slot := unpackBinStore(in.imm)
			var tmp value
			binopInto(&tmp, op, &regs[in.a], &regs[in.b], p.ex2[pc])
			arrs[slot].store(regs[in.c].asInt(), &tmp, p.ex[pc])
		case opLoadStore:
			src, dst := unpackLoadStore(in.imm)
			var tmp value
			arrs[src].loadInto(&tmp, regs[in.b].asInt(), p.ex2[pc])
			arrs[dst].store(regs[in.c].asInt(), &tmp, p.ex[pc])
		case opLoadMad:
			// Original order preserved: load (its own fault site in ex2),
			// then multiply and add (sharing the mad position in ex).
			var tmp, prod value
			arrs[in.imm].loadInto(&tmp, regs[in.c].asInt(), p.ex2[pc])
			at := p.ex[pc]
			binopInto(&prod, aMul, &regs[in.a], &regs[in.b], at)
			binopInto(&regs[in.dst], aAdd, &prod, &tmp, at)
		case opMadAcc:
			// arrs[imm][r[c]] = r[a]*r[b] + arrs[imm][r[c]]. The trailing
			// store cannot fault: the load of the same element succeeded.
			arr := arrs[in.imm]
			idx := regs[in.c].asInt()
			var tmp, prod value
			arr.loadInto(&tmp, idx, p.ex2[pc])
			at := p.ex[pc]
			binopInto(&prod, aMul, &regs[in.a], &regs[in.b], at)
			binopInto(&prod, aAdd, &prod, &tmp, at)
			arr.store(idx, &prod, at)
		case opMadAccD:
			// Proven double-scalar operands and element. The explicit
			// float64 conversion pins the separate mul/add roundings the
			// generic path performs, forbidding FMA contraction.
			arr := arrs[in.imm]
			idx := regs[in.c].i
			if uint64(idx) >= uint64(len(arr.f64)) {
				panic(errAt(p.ex2[pc], "index %d out of range [0,%d)", idx, len(arr.f64)))
			}
			prod := float64(regs[in.a].f[0] * regs[in.b].f[0])
			arr.f64[idx] = prod + arr.f64[idx]
		case opMadAccF:
			// Float path: every step rounds to float32 exactly where the
			// generic binopInto/store path does.
			arr := arrs[in.imm]
			idx := regs[in.c].i
			if uint64(idx) >= uint64(len(arr.f32)) {
				panic(errAt(p.ex2[pc], "index %d out of range [0,%d)", idx, len(arr.f32)))
			}
			prod := float64(float32(regs[in.a].f[0] * regs[in.b].f[0]))
			arr.f32[idx] = float32(prod + float64(arr.f32[idx]))
		case opLoadD:
			arr := arrs[in.a]
			idx := regs[in.b].i
			if uint64(idx) >= uint64(len(arr.f64)) {
				panic(errAt(p.ex[pc], "index %d out of range [0,%d)", idx, len(arr.f64)))
			}
			dst := &regs[in.dst]
			dst.t = typeDoubleScalar
			dst.f[0] = arr.f64[idx]
		case opLoadF:
			arr := arrs[in.a]
			idx := regs[in.b].i
			if uint64(idx) >= uint64(len(arr.f32)) {
				panic(errAt(p.ex[pc], "index %d out of range [0,%d)", idx, len(arr.f32)))
			}
			dst := &regs[in.dst]
			dst.t = typeFloatScalar
			dst.f[0] = float64(arr.f32[idx])
		case opStoreD:
			arr := arrs[in.a]
			idx := regs[in.b].i
			if uint64(idx) >= uint64(len(arr.f64)) {
				panic(errAt(p.ex[pc], "index %d out of range [0,%d)", idx, len(arr.f64)))
			}
			arr.f64[idx] = regs[in.c].f[0]
		case opStoreF:
			arr := arrs[in.a]
			idx := regs[in.b].i
			if uint64(idx) >= uint64(len(arr.f32)) {
				panic(errAt(p.ex[pc], "index %d out of range [0,%d)", idx, len(arr.f32)))
			}
			arr.f32[idx] = float32(regs[in.c].f[0])
		case opErr:
			panic(p.errs[in.imm])
		case opHalt:
			// Frames are only recycled on clean exit; a panicking frame
			// is abandoned to the GC.
			p.pool.Put(f)
			return
		}
		pc++
	}
}
