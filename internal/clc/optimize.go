package clc

// The bytecode optimizer: a pass pipeline between compile.go and vm.go
// that rewrites a compiledKernel into a faster but observably identical
// program. "Observably identical" is a hard contract shared with the
// AST interpreter oracle: for every input the optimized program must
// produce bit-identical array contents, fault with the byte-identical
// positioned error whenever the original would (and never fault
// earlier, later, or differently), and charge loop fuel at exactly the
// same back-edges. Every pass below is only applied when its legality
// conditions prove those properties; anything unprovable is left
// untouched, so the optimizer degrades to a no-op on code it cannot
// reason about.
//
// Passes (see DESIGN.md §15 for the legality write-up):
//
//   - convert elision: opConvert/opConvertDyn whose source register
//     provably already has the target type become opMov.
//   - copy/const propagation: reads whose unique in-block reaching
//     definition is an opMov (or opConst) are repointed at the move
//     source (or at a dedicated constant register materialized once in
//     a prologue), which strands the move for DCE.
//   - bounds-check elision: an opCheckIdx is removed when the checked
//     index is a compile-time constant provably inside a statically
//     sized array, or when the next executed instruction is the
//     opStore of the same slot and index register — the store's own
//     internal check raises the byte-identical error, so the explicit
//     check is redundant (the instructions between must be provably
//     non-faulting or the fault order would change).
//   - LICM: provably non-faulting register-only instructions whose
//     operands are not written inside a loop are computed once in a
//     loop preheader into a fresh register; the original instruction
//     becomes an opMov so conditional execution and post-loop register
//     state are preserved exactly.
//   - DCE: provably non-faulting register writes whose destination is
//     dead are dropped. Loads, stores, jumps, barriers, opAllocArr and
//     anything that can fault are never dropped.
//   - superinstruction fusion: adjacent pairs collapse into fused
//     opcodes (opMad, opLoadBin, opBinStore, opLoadStore, opLoadMad,
//     opMadAcc) when the intermediate register is dead afterwards and
//     the fused handler replays the same semantic steps in the same
//     order. Fused instructions carry a second error-position slot
//     (ex2) so each original fault site keeps its own position.
//   - static elision + typed lowering: loads/stores with constant
//     provably in-bounds indexes become unchecked opLoadK/opStoreK;
//     accesses with statically known scalar element and index types
//     become the specialized opLoadD/F, opStoreD/F, opMadAccD/F forms
//     that skip the generic value dispatch (their arithmetic uses
//     explicit float64/float32 conversions at every step the generic
//     path rounds, so results stay bit-identical and no FMA contraction
//     can creep in).
//
// The optimizer never changes the set of opJump instructions, so fuel
// accounting (one charge per backward jump) is structurally identical
// to the unoptimized program and to the interpreter's per-iteration
// accounting.

import (
	"fmt"
	"os"
	"sync"
)

// clcDisableOpt reports whether the CLC_DISABLE_OPT environment
// variable asks for optimizer-off as the process-wide default (the CI
// differential leg). SetOptimize still overrides per kernel.
var clcDisableOpt = sync.OnceValue(func() bool {
	return os.Getenv("CLC_DISABLE_OPT") != ""
})

// optDebugPanic, when set by tests, lets optimizer panics propagate
// instead of falling back to the unoptimized program, so pass bugs
// fail loudly rather than silently costing the speedup.
var optDebugPanic bool

// optimizeKernel returns an optimized copy of p, or p itself when the
// optimizer cannot improve it (or defensively, when a pass panics —
// the unoptimized program is always a correct fallback).
func optimizeKernel(k *KernelDecl, p *compiledKernel) (out *compiledKernel) {
	defer func() {
		if r := recover(); r != nil {
			if optDebugPanic {
				panic(r)
			}
			out = p
		}
	}()
	o := newOptimizer(k, p)
	const maxRounds = 48
	for round := 0; round < maxRounds; round++ {
		o.analyze()
		changed := o.convertElim()
		if o.copyProp() {
			changed = true
		}
		if o.checkElim() {
			changed = true
		}
		if o.licm() {
			// licm rebuilt the code layout itself; restart the round so
			// every analysis is recomputed against the new pcs.
			continue
		}
		if o.dce() {
			changed = true
		}
		if o.fuse() {
			changed = true
		}
		if !changed {
			break
		}
		o.rebuild()
	}
	o.rebuild()
	o.analyze()
	o.elideBounds()
	o.lowerTyped()
	return o.finish()
}

// oinst is the optimizer's working form of one instruction: the instr
// plus both error-position slots and a deletion mark.
type oinst struct {
	in   instr
	ex   Expr
	ex2  Expr // second fault site for fused instructions (nil: same as ex)
	dead bool
}

type optimizer struct {
	decl *KernelDecl
	src  *compiledKernel

	code   []oinst
	consts []value
	types  []Type
	nreg   int

	// Static per-array-slot facts (element type and element count), from
	// the declaration: pointer parameters, hoisted __local arrays, and
	// opAllocArr definitions. Base "" / length -1 mean unknown.
	arrT   []Type
	arrLen []int

	// Recomputed by analyze.
	jt   []bool // jump targets
	regT []Type // Base "": no info; Base "?": conflicting writers

	// Dedicated constant registers, materialized as an opConst prologue
	// by finish. Allocated lazily and stable across rounds.
	constOf  map[int32]value
	constReg map[value]int32
	constOrd []int32 // allocation order, for a deterministic prologue
}

const unknownBase = "?"

func newOptimizer(k *KernelDecl, p *compiledKernel) *optimizer {
	o := &optimizer{
		decl:     k,
		src:      p,
		code:     make([]oinst, len(p.code)),
		consts:   append([]value(nil), p.consts...),
		types:    append([]Type(nil), p.types...),
		nreg:     p.nreg,
		arrT:     make([]Type, p.narr),
		arrLen:   make([]int, p.narr),
		constOf:  map[int32]value{},
		constReg: map[value]int32{},
	}
	for i := range p.code {
		o.code[i] = oinst{in: p.code[i], ex: p.ex[i]}
	}
	for i := range o.arrLen {
		o.arrLen[i] = -1
	}
	// Pointer parameters: Bind only ever attaches scalar float/double
	// stores (it type-checks the argument against the declared base), so
	// the element type is static; the buffer length is the caller's.
	for i, prm := range k.Params {
		if slot := p.paramArrs[i]; slot >= 0 && (prm.Type.Base == "float" || prm.Type.Base == "double") {
			o.arrT[slot] = Type{Base: prm.Type.Base, Lanes: 1}
		}
	}
	// Hoisted __local arrays: declared type and constant length.
	ord := 0
	for _, s := range k.Body.Stmts {
		d, ok := s.(*Decl)
		if !ok || d.Space != LocalMem {
			continue
		}
		if ord < len(p.localSlots) {
			slot := p.localSlots[ord]
			if n, err := constFold(d.ArrayLen); err == nil {
				o.arrT[slot] = d.Type
				o.arrLen[slot] = int(n)
			}
		}
		ord++
	}
	// __private arrays: opAllocArr definitions. Each slot has exactly
	// one defining declaration.
	for _, in := range p.code {
		if in.op == opAllocArr {
			def := p.defs[in.imm]
			o.arrT[in.a] = def.t
			o.arrLen[in.a] = def.total / def.t.Lanes
		}
	}
	return o
}

// --- Instruction facts -------------------------------------------------------

// instReads visits every register the instruction reads.
func instReads(in *instr, visit func(int32)) {
	switch in.op {
	case opMov, opBool, opNeg, opNot, opBitNot, opConvert, opConvertDyn, opWI:
		visit(in.a)
	case opBin, opMin, opMax:
		visit(in.a)
		visit(in.b)
	case opVecCtor:
		for l := int32(0); l < in.c; l++ {
			visit(in.a + l)
		}
	case opJumpF, opJumpT:
		visit(in.a)
	case opMad, opLoadMad, opMadAcc, opMadAccD, opMadAccF, opBinStore:
		visit(in.a)
		visit(in.b)
		visit(in.c)
	case opLoad, opCheckIdx, opVload, opLoadD, opLoadF:
		visit(in.b)
	case opStore, opVstore, opLoadStore, opStoreD, opStoreF:
		visit(in.b)
		visit(in.c)
	case opStoreK:
		visit(in.c)
	case opLoadBin:
		visit(in.a)
		visit(in.b)
	}
}

// writesReg reports the register the instruction defines, if any.
func writesReg(in *instr) (int32, bool) {
	switch in.op {
	case opConst, opMov, opBool, opBin, opNeg, opNot, opBitNot, opConvert,
		opConvertDyn, opVecCtor, opWI, opMad, opMin, opMax, opLoad, opVload,
		opLoadK, opLoadBin, opLoadMad, opLoadD, opLoadF:
		return in.dst, true
	}
	return 0, false
}

// rewriteReads applies f to every read-register slot. opVecCtor is
// excluded: its operands form a contiguous block that must not be
// repointed piecemeal.
func rewriteReads(in *instr, f func(int32) int32) {
	switch in.op {
	case opMov, opBool, opNeg, opNot, opBitNot, opConvert, opConvertDyn, opWI:
		in.a = f(in.a)
	case opBin, opMin, opMax:
		in.a = f(in.a)
		in.b = f(in.b)
	case opJumpF, opJumpT:
		in.a = f(in.a)
	case opMad, opLoadMad, opMadAcc, opMadAccD, opMadAccF, opBinStore:
		in.a = f(in.a)
		in.b = f(in.b)
		in.c = f(in.c)
	case opLoad, opCheckIdx, opVload, opLoadD, opLoadF:
		in.b = f(in.b)
	case opStore, opVstore, opLoadStore, opStoreD, opStoreF:
		in.b = f(in.b)
		in.c = f(in.c)
	case opStoreK:
		in.c = f(in.c)
	case opLoadBin:
		in.a = f(in.a)
		in.b = f(in.b)
	}
}

// --- Analysis ----------------------------------------------------------------

func (o *optimizer) analyze() {
	n := len(o.code)
	o.jt = make([]bool, n+1)
	for i := range o.code {
		oi := &o.code[i]
		if oi.dead {
			continue
		}
		switch oi.in.op {
		case opJump, opJumpF, opJumpT:
			t := int(oi.in.imm)
			if t < 0 || t > n {
				panic(fmt.Errorf("clc: optimizer: jump target %d out of range", t))
			}
			o.jt[t] = true
		}
	}
	o.inferTypes()
}

// inferTypes computes, per register, the unique static result type of
// all its writers, via a forward fixpoint. Registers whose writers
// disagree (or whose type depends on unknowable state) end as "?" and
// are excluded from every type-dependent proof.
func (o *optimizer) inferTypes() {
	o.regT = make([]Type, o.nreg)
	seed := func(r int32, t Type) {
		if r >= 0 && int(r) < o.nreg {
			o.regT[r] = t
		}
	}
	// Scalar parameters carry their Bind-checked declared types
	// (compileKernel collapses integer bases to scalar int).
	for i, prm := range o.decl.Params {
		if r := o.src.paramRegs[i]; r >= 0 {
			t := Type{Base: prm.Type.Base, Lanes: 1}
			if prm.Type.IsInt() {
				t = intType
			}
			seed(r, t)
		}
	}
	// Dedicated constant registers have the constant's type.
	for r, v := range o.constOf {
		seed(r, v.t)
	}
	merge := func(r int32, t Type) bool {
		cur := o.regT[r]
		if cur.Base == unknownBase || t.Base == "" {
			return false
		}
		if cur.Base == "" {
			o.regT[r] = t
			return true
		}
		if cur != t {
			o.regT[r] = Type{Base: unknownBase}
			return true
		}
		return false
	}
	for {
		changed := false
		for i := range o.code {
			oi := &o.code[i]
			if oi.dead {
				continue
			}
			if dst, ok := writesReg(&oi.in); ok {
				if merge(dst, o.resultType(&oi.in)) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Poison sweep: a register may only keep a known type if every
	// writer's result type is known and agrees; writers whose own
	// operands stayed unknown force "?" (cascading through moves).
	for {
		changed := false
		for i := range o.code {
			oi := &o.code[i]
			if oi.dead {
				continue
			}
			dst, ok := writesReg(&oi.in)
			if !ok {
				continue
			}
			t := o.resultType(&oi.in)
			if (t.Base == "" || t.Base == unknownBase) && o.regT[dst].Base != "" && o.regT[dst].Base != unknownBase {
				o.regT[dst] = Type{Base: unknownBase}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// known reports a usable inferred type.
func known(t Type) bool { return t.Base != "" && t.Base != unknownBase }

// resultType mirrors the VM handlers' result types exactly; Base ""
// means "not inferable (yet)".
func (o *optimizer) resultType(in *instr) Type {
	return o.resultTypeWith(in, func(r int32) Type { return o.regT[r] })
}

// typeAt resolves the type of register r as read at pc. The global
// regT is flow-insensitive, so the compiler's watermark register reuse
// poisons a register's type whenever unrelated regions assign it
// different types; when that happens, the unique in-block reaching
// definition recovers the locally precise answer.
func (o *optimizer) typeAt(pc int, r int32) Type {
	return o.typeAtDepth(pc, r, 6)
}

func (o *optimizer) typeAtDepth(pc int, r int32, depth int) Type {
	if t := o.regT[r]; known(t) {
		return t
	}
	if depth == 0 {
		return o.regT[r]
	}
	j := o.reachingDef(pc, r)
	if j < 0 {
		return o.regT[r]
	}
	return o.resultTypeWith(&o.code[j].in, func(x int32) Type {
		return o.typeAtDepth(j, x, depth-1)
	})
}

func (o *optimizer) resultTypeWith(in *instr, rt func(int32) Type) Type {
	switch in.op {
	case opConst:
		return o.consts[in.imm].t
	case opMov:
		return rt(in.a)
	case opBool, opNot, opBitNot, opWI:
		return intType
	case opBin:
		a, b := rt(in.a), rt(in.b)
		if !known(a) || !known(b) {
			return Type{}
		}
		return binResultType(in.imm, a, b)
	case opNeg:
		return rt(in.a)
	case opConvert:
		to := o.types[in.imm]
		if to.IsInt() {
			return intType
		}
		return to
	case opConvertDyn:
		et := o.arrT[in.b]
		if !known(et) {
			return Type{}
		}
		if et.IsInt() {
			return intType
		}
		return et
	case opVecCtor:
		return o.types[in.imm]
	case opMad:
		a, b, c := rt(in.a), rt(in.b), rt(in.c)
		if !known(a) || !known(b) || !known(c) {
			return Type{}
		}
		return binResultType(aAdd, binResultType(aMul, a, b), c)
	case opMin, opMax:
		a, b := rt(in.a), rt(in.b)
		if !known(a) || !known(b) {
			return Type{}
		}
		if a.IsInt() && b.IsInt() {
			return intType
		}
		return Type{Base: "double", Lanes: 1}
	case opLoad, opLoadK:
		return o.arrT[in.a]
	case opVload:
		et := o.arrT[in.a]
		if !known(et) {
			return Type{}
		}
		return Type{Base: et.Base, Lanes: int(in.imm)}
	case opLoadBin:
		op, side, slot := unpackLoadBin(in.imm)
		et, other := o.arrT[slot], rt(in.a)
		if !known(et) || !known(other) {
			return Type{}
		}
		if side == 0 {
			return binResultType(op, et, other)
		}
		return binResultType(op, other, et)
	case opLoadMad:
		a, b := rt(in.a), rt(in.b)
		et := o.arrT[int32(in.imm)]
		if !known(a) || !known(b) || !known(et) {
			return Type{}
		}
		return binResultType(aAdd, binResultType(aMul, a, b), et)
	case opLoadD:
		return Type{Base: "double", Lanes: 1}
	case opLoadF:
		return Type{Base: "float", Lanes: 1}
	}
	return Type{}
}

// binResultType mirrors binopInto's promotion rules.
func binResultType(op int64, l, r Type) Type {
	if l.IsInt() && r.IsInt() {
		return intType
	}
	if op >= aLt {
		return intType
	}
	base := "float"
	if l.Base == "double" || r.Base == "double" || l.IsInt() || r.IsInt() {
		base = "double"
		if (l.Base == "float" || r.Base == "float") && l.Base != "double" && r.Base != "double" {
			base = "float"
		}
	}
	lanes := l.Lanes
	if r.Lanes > lanes {
		lanes = r.Lanes
	}
	return Type{Base: base, Lanes: lanes}
}

// --- Purity / non-faulting proofs --------------------------------------------

// nonFaultingBin proves a binopInto call cannot panic given static
// operand types.
func nonFaultingBin(op int64, l, r Type) bool {
	if !known(l) || !known(r) {
		return false
	}
	if l.IsInt() && r.IsInt() {
		return op != aDiv && op != aMod
	}
	// Float path: bitwise/shift operators fault, vector comparisons
	// fault, mismatched vector widths fault. Float division is total.
	if op >= aLt {
		return l.Lanes == 1 && r.Lanes == 1
	}
	if op != aAdd && op != aSub && op != aMul && op != aDiv {
		return false
	}
	return l.Lanes == 1 || r.Lanes == 1 || l.Lanes == r.Lanes
}

// nonFaultingConvert proves convertInto cannot panic.
func nonFaultingConvert(from, to Type) bool {
	if !known(from) {
		return false
	}
	if from == to {
		return true
	}
	if to.IsInt() {
		return to.Lanes == 1
	}
	return from.Lanes == 1 || from.Lanes == to.Lanes
}

// pureNonFaulting proves the instruction at pc writes only its
// destination register and cannot panic — the DCE/LICM admission test.
func (o *optimizer) pureNonFaulting(pc int, in *instr) bool {
	rt := func(r int32) Type { return o.typeAt(pc, r) }
	switch in.op {
	case opConst, opMov, opBool, opNot, opBitNot, opNeg, opVecCtor, opMin, opMax:
		return true
	case opBin:
		return nonFaultingBin(in.imm, rt(in.a), rt(in.b))
	case opConvert:
		return nonFaultingConvert(rt(in.a), o.types[in.imm])
	case opWI:
		// Faults unless the dimension is a known 0/1 constant.
		v, ok := o.constOf[in.a]
		return ok && v.t.IsInt() && (v.i == 0 || v.i == 1)
	case opMad:
		return nonFaultingBin(aMul, rt(in.a), rt(in.b)) &&
			nonFaultingBin(aAdd, binResultType(aMul, rt(in.a), rt(in.b)), rt(in.c))
	case opLoadK:
		// Emitted only under a static in-bounds proof.
		return true
	}
	return false
}

// --- Liveness ----------------------------------------------------------------

// liveness returns per-pc live-out register bitsets.
func (o *optimizer) liveness() [][]uint64 {
	n := len(o.code)
	words := (o.nreg + 63) / 64
	backing := make([]uint64, (n+1)*words)
	liveIn := make([][]uint64, n+1)
	for i := range liveIn {
		liveIn[i] = backing[i*words : (i+1)*words]
	}
	liveOut := make([][]uint64, n)
	outBacking := make([]uint64, n*words)
	for i := range liveOut {
		liveOut[i] = outBacking[i*words : (i+1)*words]
	}
	succs := func(pc int) (int, int) {
		oi := &o.code[pc]
		if oi.dead {
			return pc + 1, -1
		}
		switch oi.in.op {
		case opJump:
			return int(oi.in.imm), -1
		case opJumpF, opJumpT:
			return pc + 1, int(oi.in.imm)
		case opHalt, opErr:
			return -1, -1
		}
		return pc + 1, -1
	}
	scratch := make([]uint64, words)
	for {
		changed := false
		for pc := n - 1; pc >= 0; pc-- {
			out := liveOut[pc]
			s1, s2 := succs(pc)
			for w := 0; w < words; w++ {
				var v uint64
				if s1 >= 0 && s1 <= n {
					v |= liveIn[s1][w]
				}
				if s2 >= 0 && s2 <= n {
					v |= liveIn[s2][w]
				}
				if out[w] != v {
					out[w] = v
					changed = true
				}
			}
			// Build the full new live-in (out minus def, plus reads) in
			// scratch before comparing, so the fixpoint test sees the
			// final set rather than an intermediate one.
			var def int32 = -1
			oi := &o.code[pc]
			if !oi.dead {
				if d, ok := writesReg(&oi.in); ok {
					def = d
				}
			}
			for w := 0; w < words; w++ {
				v := out[w]
				if def >= 0 && int(def)/64 == w {
					v &^= 1 << (uint(def) % 64)
				}
				scratch[w] = v
			}
			if !oi.dead {
				instReads(&oi.in, func(r int32) {
					scratch[int(r)/64] |= 1 << (uint(r) % 64)
				})
			}
			in := liveIn[pc]
			for w := 0; w < words; w++ {
				if in[w] != scratch[w] {
					in[w] = scratch[w]
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return liveOut
}

func bitHas(set []uint64, r int32) bool {
	return set[int(r)/64]&(1<<(uint(r)%64)) != 0
}

// --- Local reaching definitions ----------------------------------------------

// reachingDef finds the unique definition of r that reaches pc within
// its single-entry region, or -1. The walk stops at any point control
// can enter from elsewhere (a jump target) or where fallthrough is
// impossible.
func (o *optimizer) reachingDef(pc int, r int32) int {
	for j := pc - 1; j >= 0; j-- {
		if o.jt[j+1] {
			return -1
		}
		oi := &o.code[j]
		if oi.dead {
			continue
		}
		switch oi.in.op {
		case opJump, opHalt, opErr:
			return -1
		}
		if d, ok := writesReg(&oi.in); ok && d == r {
			return j
		}
	}
	return -1
}

// writtenBetween reports whether r is written by a live instruction at
// any pc in (from, to).
func (o *optimizer) writtenBetween(from, to int, r int32) bool {
	for j := from + 1; j < to; j++ {
		oi := &o.code[j]
		if oi.dead {
			continue
		}
		if d, ok := writesReg(&oi.in); ok && d == r {
			return true
		}
	}
	return false
}

// constRegFor returns the dedicated register holding v, allocating it
// on first use. finish materializes the opConst prologue.
func (o *optimizer) constRegFor(v value) int32 {
	if r, ok := o.constReg[v]; ok {
		return r
	}
	r := int32(o.nreg)
	o.nreg++
	o.constReg[v] = r
	o.constOf[r] = v
	o.constOrd = append(o.constOrd, r)
	// Keep regT in step: passes later in the same round (before the next
	// analyze) index it by this fresh register, whose type is exact.
	o.regT = append(o.regT, v.t)
	return r
}

// constIntOf reports the compile-time scalar integer value of r, if r
// is a dedicated constant register holding one.
func (o *optimizer) constIntOf(r int32) (int64, bool) {
	v, ok := o.constOf[r]
	if !ok || !v.t.IsInt() || v.t.Lanes != 1 {
		return 0, false
	}
	return v.i, true
}

// --- Passes ------------------------------------------------------------------

// convertElim turns provably no-op conversions into moves.
func (o *optimizer) convertElim() bool {
	changed := false
	for i := range o.code {
		oi := &o.code[i]
		if oi.dead {
			continue
		}
		switch oi.in.op {
		case opConvert:
			from, to := o.typeAt(i, oi.in.a), o.types[oi.in.imm]
			if known(from) && from == to {
				oi.in = instr{op: opMov, dst: oi.in.dst, a: oi.in.a}
				changed = true
			}
		case opConvertDyn:
			from, et := o.typeAt(i, oi.in.a), o.arrT[oi.in.b]
			if known(from) && known(et) && from == et {
				oi.in = instr{op: opMov, dst: oi.in.dst, a: oi.in.a}
				changed = true
			}
		}
	}
	return changed
}

// copyProp repoints reads through opMov chains and at dedicated
// constant registers.
func (o *optimizer) copyProp() bool {
	changed := false
	for pc := range o.code {
		oi := &o.code[pc]
		if oi.dead || oi.in.op == opVecCtor {
			continue
		}
		rewriteReads(&oi.in, func(r int32) int32 {
			j := o.reachingDef(pc, r)
			if j < 0 {
				return r
			}
			d := &o.code[j].in
			switch d.op {
			case opMov:
				if d.a != r && !o.writtenBetween(j, pc, d.a) {
					changed = true
					return d.a
				}
			case opConst:
				cr := o.constRegFor(o.consts[d.imm])
				if cr != r {
					changed = true
					return cr
				}
			}
			return r
		})
	}
	return changed
}

// checkElim removes opCheckIdx instructions proven redundant: constant
// indexes statically inside statically sized arrays, and checks whose
// fault (if any) would be raised byte-identically by the opStore of the
// same slot and index that follows with only provably non-faulting
// instructions in between.
func (o *optimizer) checkElim() bool {
	changed := false
	for i := range o.code {
		oi := &o.code[i]
		if oi.dead || oi.in.op != opCheckIdx {
			continue
		}
		slot, idxr := oi.in.a, oi.in.b
		if k, ok := o.constIntOf(idxr); ok && o.arrLen[slot] >= 0 && k >= 0 && k < int64(o.arrLen[slot]) {
			oi.dead = true
			changed = true
			continue
		}
		// Walk forward to the matching store. Every instruction between
		// must be provably non-faulting (else the fault order would
		// change), must not jump, touch the index register, or reallocate
		// any array.
		for j := i + 1; j < len(o.code); j++ {
			if o.jt[j] {
				break
			}
			nj := &o.code[j]
			if nj.dead {
				continue
			}
			if nj.in.op == opStore && nj.in.a == slot && nj.in.b == idxr {
				oi.dead = true
				changed = true
				break
			}
			if !o.pureNonFaulting(j, &nj.in) {
				break
			}
			if d, ok := writesReg(&nj.in); ok && d == idxr {
				break
			}
		}
	}
	return changed
}

// dce removes provably non-faulting register writes whose destination
// is dead.
func (o *optimizer) dce() bool {
	live := o.liveness()
	changed := false
	for pc := range o.code {
		oi := &o.code[pc]
		if oi.dead {
			continue
		}
		dst, ok := writesReg(&oi.in)
		if !ok || bitHas(live[pc], dst) {
			continue
		}
		if o.pureNonFaulting(pc, &oi.in) {
			oi.dead = true
			changed = true
		}
	}
	return changed
}

// --- Superinstruction fusion -------------------------------------------------

// Fused imm packers. opLoadBin packs operator | side<<8 | slot<<16
// (side 0: the loaded element is the left operand); opBinStore packs
// operator | slot<<16; opLoadStore packs srcSlot | dstSlot<<16.
func packLoadBin(op int64, side int64, slot int32) int64 {
	return op | side<<8 | int64(slot)<<16
}

func unpackLoadBin(imm int64) (op, side int64, slot int32) {
	return imm & 0xff, (imm >> 8) & 1, int32(imm >> 16)
}

func packBinStore(op int64, slot int32) int64 { return op | int64(slot)<<16 }

func unpackBinStore(imm int64) (op int64, slot int32) { return imm & 0xff, int32(imm >> 16) }

func packLoadStore(src, dst int32) int64 { return int64(src) | int64(dst)<<16 }

func unpackLoadStore(imm int64) (src, dst int32) { return int32(imm & 0xffff), int32(imm >> 16) }

// fuse collapses adjacent instruction pairs into superinstructions.
// Adjacency means: the second instruction is the next live one, and no
// jump target lands between them (so both always execute together).
// The intermediate register must be dead after the pair and must not be
// read by the fused form at a stale position.
func (o *optimizer) fuse() bool {
	live := o.liveness()
	changed := false
	for i := 0; i < len(o.code); i++ {
		a := &o.code[i]
		if a.dead {
			continue
		}
		// Find the next live instruction j with no entry point between.
		j := -1
		for p := i + 1; p < len(o.code); p++ {
			if o.jt[p] {
				break
			}
			if !o.code[p].dead {
				j = p
				break
			}
		}
		if j < 0 {
			continue
		}
		b := &o.code[j]
		if o.fusePair(a, b, i, j, live) {
			changed = true
			i = j // never re-fuse the rewritten second instruction this round
		}
	}
	return changed
}

func (o *optimizer) fusePair(a, b *oinst, i, j int, live [][]uint64) bool {
	ex2Of := func(oi *oinst) Expr {
		if oi.ex2 != nil {
			return oi.ex2
		}
		return oi.ex
	}
	deadAfter := func(r int32) bool { return !bitHas(live[j], r) }

	switch {
	// opBin(mul) + opBin(add) -> opMad, when the product is the add's
	// LEFT operand (the fused handler computes prod+c in that order, so
	// fusing the right operand could flip NaN-payload propagation).
	case a.in.op == opBin && a.in.imm == aMul && b.in.op == opBin && b.in.imm == aAdd &&
		b.in.a == a.in.dst && b.in.b != a.in.dst &&
		a.in.dst != a.in.a && a.in.dst != a.in.b && deadAfter(a.in.dst):
		b.in = instr{op: opMad, dst: b.in.dst, a: a.in.a, b: a.in.b, c: b.in.b}
		b.ex2 = a.ex // the mul's fault position
		a.dead = true
		return true

	// opLoad + opMad(c=loaded) -> opLoadMad. Only for an unfused opMad
	// (ex2 empty): a previously fused mul/add pair would need a third
	// error slot.
	case a.in.op == opLoad && b.in.op == opMad && b.ex2 == nil &&
		b.in.c == a.in.dst && b.in.a != a.in.dst && b.in.b != a.in.dst &&
		a.in.dst != a.in.b && deadAfter(a.in.dst):
		b.in = instr{op: opLoadMad, dst: b.in.dst, a: b.in.a, b: b.in.b, c: a.in.b, imm: int64(a.in.a)}
		b.ex2 = a.ex // the load's fault position
		a.dead = true
		return true

	// opLoadMad + opStore of the same slot and index register through
	// the mad result -> opMadAcc (the read-modify-write accumulator
	// update). The store's own bounds check cannot fire: the load of
	// the same element already succeeded.
	case a.in.op == opLoadMad && b.in.op == opStore &&
		int64(b.in.a) == a.in.imm && b.in.b == a.in.c && b.in.c == a.in.dst &&
		a.in.dst != a.in.a && a.in.dst != a.in.b && a.in.dst != a.in.c &&
		deadAfter(a.in.dst):
		b.in = instr{op: opMadAcc, a: a.in.a, b: a.in.b, c: a.in.c, imm: a.in.imm}
		b.ex = a.ex // the mad's fault position
		b.ex2 = ex2Of(a)
		a.dead = true
		return true

	// opLoad + opBin using the loaded value on exactly one side ->
	// opLoadBin.
	case a.in.op == opLoad && b.in.op == opBin &&
		(b.in.a == a.in.dst) != (b.in.b == a.in.dst) &&
		a.in.dst != a.in.b && deadAfter(a.in.dst):
		other, side := b.in.b, int64(0)
		if b.in.b == a.in.dst {
			other, side = b.in.a, 1
		}
		if other == a.in.dst {
			return false
		}
		b.in = instr{op: opLoadBin, dst: b.in.dst, a: other, b: a.in.b,
			imm: packLoadBin(b.in.imm, side, a.in.a)}
		b.ex2 = a.ex
		a.dead = true
		return true

	// opBin + opStore of the result -> opBinStore.
	case a.in.op == opBin && b.in.op == opStore && b.in.c == a.in.dst &&
		a.in.dst != a.in.a && a.in.dst != a.in.b && a.in.dst != b.in.b &&
		deadAfter(a.in.dst):
		b.in = instr{op: opBinStore, a: a.in.a, b: a.in.b, c: b.in.b,
			imm: packBinStore(a.in.imm, b.in.a)}
		b.ex2 = a.ex
		a.dead = true
		return true

	// opLoad + opStore of the loaded value -> opLoadStore (array copy).
	case a.in.op == opLoad && b.in.op == opStore && b.in.c == a.in.dst &&
		a.in.dst != a.in.b && a.in.dst != b.in.b && deadAfter(a.in.dst):
		b.in = instr{op: opLoadStore, b: a.in.b, c: b.in.b,
			imm: packLoadStore(a.in.a, b.in.a)}
		b.ex2 = a.ex
		a.dead = true
		return true
	}
	return false
}

// --- Loop-invariant code motion ----------------------------------------------

// licm hoists provably non-faulting register-only instructions whose
// operands are loop-invariant into a freshly inserted preheader. The
// hoisted computation lands in a fresh register; the original
// instruction becomes an opMov from it, so conditional execution inside
// the loop and post-loop register state are byte-identical (the
// preheader instructions cannot fault and write only fresh registers).
// One loop is transformed per call; the pipeline loop re-runs until
// nothing moves.
func (o *optimizer) licm() bool {
	type loop struct{ top, end int }
	var loops []loop
	for pc := range o.code {
		oi := &o.code[pc]
		if oi.dead || oi.in.op != opJump {
			continue
		}
		if t := int(oi.in.imm); t <= pc {
			loops = append(loops, loop{top: t, end: pc})
		}
	}
	// Innermost (smallest) loops first: their invariants often become
	// hoistable from the enclosing loop on later rounds.
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0 && loops[j].end-loops[j].top < loops[j-1].end-loops[j-1].top; j-- {
			loops[j], loops[j-1] = loops[j-1], loops[j]
		}
	}
	for _, l := range loops {
		written := make([]bool, o.nreg)
		for pc := l.top; pc <= l.end; pc++ {
			oi := &o.code[pc]
			if oi.dead {
				continue
			}
			if d, ok := writesReg(&oi.in); ok {
				written[d] = true
			}
		}
		var hoist []int
		for pc := l.top; pc <= l.end; pc++ {
			oi := &o.code[pc]
			if oi.dead || oi.in.op == opMov || oi.in.op == opConst {
				continue
			}
			if !o.pureNonFaulting(pc, &oi.in) {
				continue
			}
			invariant := true
			instReads(&oi.in, func(r int32) {
				if int(r) < len(written) && written[r] {
					invariant = false
				}
			})
			if invariant {
				hoist = append(hoist, pc)
			}
		}
		if len(hoist) > 0 {
			o.hoistInto(l.top, l.end, hoist)
			return true
		}
	}
	return false
}

// hoistInto inserts a preheader before top containing the hoisted
// instructions retargeted at fresh registers, rewrites the originals to
// moves, and remaps every jump. Jumps into the loop head from outside
// route through the preheader; back-edges from inside skip it.
func (o *optimizer) hoistInto(top, end int, hoist []int) {
	k := len(hoist)
	fresh := make(map[int]int32, k)
	for _, pc := range hoist {
		fresh[pc] = int32(o.nreg)
		o.nreg++
	}
	mapPC := func(t int64, src int) int64 {
		switch {
		case int(t) < top:
			return t
		case int(t) > top:
			return t + int64(k)
		case src >= top: // back-edge: skip the preheader
			return t + int64(k)
		default:
			return t
		}
	}
	newCode := make([]oinst, 0, len(o.code)+k)
	newCode = append(newCode, o.code[:top]...)
	for _, pc := range hoist {
		h := o.code[pc]
		h.in.dst = fresh[pc]
		h.dead = false
		newCode = append(newCode, h)
	}
	for pc := top; pc < len(o.code); pc++ {
		oi := o.code[pc]
		if r, ok := fresh[pc]; ok {
			oi = oinst{in: instr{op: opMov, dst: oi.in.dst, a: r}, ex: oi.ex}
		}
		newCode = append(newCode, oi)
	}
	for pc := range newCode {
		oi := &newCode[pc]
		if oi.dead {
			continue
		}
		switch oi.in.op {
		case opJump, opJumpF, opJumpT:
			// Recover the source's old pc to classify back-edges.
			src := pc
			if pc >= top+k {
				src = pc - k
			} else if pc >= top {
				src = -1 // preheader instructions never jump
			}
			oi.in.imm = mapPC(oi.in.imm, src)
		}
	}
	o.code = newCode
}

// --- Static bounds elision and typed lowering --------------------------------

// elideBounds rewrites loads/stores whose index is a compile-time
// constant provably inside a statically sized array into the unchecked
// opLoadK/opStoreK forms.
func (o *optimizer) elideBounds() {
	for i := range o.code {
		oi := &o.code[i]
		if oi.dead {
			continue
		}
		switch oi.in.op {
		case opLoad:
			if k, ok := o.constIntOf(oi.in.b); ok && o.arrLen[oi.in.a] >= 0 && k >= 0 && k < int64(o.arrLen[oi.in.a]) {
				oi.in = instr{op: opLoadK, dst: oi.in.dst, a: oi.in.a, imm: k}
			}
		case opStore:
			if k, ok := o.constIntOf(oi.in.b); ok && o.arrLen[oi.in.a] >= 0 && k >= 0 && k < int64(o.arrLen[oi.in.a]) {
				oi.in = instr{op: opStoreK, a: oi.in.a, c: oi.in.c, imm: k}
			}
		}
	}
}

// lowerTyped specializes generic array accesses to the scalar
// double/float fast forms when every type involved is statically
// proven. The specialized handlers keep bounds checks (same message)
// but skip the generic value dispatch.
func (o *optimizer) lowerTyped() {
	scalar := func(t Type, base string) bool { return t.Base == base && t.Lanes == 1 }
	for i := range o.code {
		oi := &o.code[i]
		if oi.dead {
			continue
		}
		switch oi.in.op {
		case opLoad:
			et := o.arrT[oi.in.a]
			if o.typeAt(i, oi.in.b) == intType {
				if scalar(et, "double") {
					oi.in.op = opLoadD
				} else if scalar(et, "float") {
					oi.in.op = opLoadF
				}
			}
		case opStore:
			et := o.arrT[oi.in.a]
			if o.typeAt(i, oi.in.b) == intType && o.typeAt(i, oi.in.c) == et {
				if scalar(et, "double") {
					oi.in.op = opStoreD
				} else if scalar(et, "float") {
					oi.in.op = opStoreF
				}
			}
		case opMadAcc:
			et := o.arrT[int32(oi.in.imm)]
			if o.typeAt(i, oi.in.c) == intType &&
				scalar(o.typeAt(i, oi.in.a), et.Base) && scalar(o.typeAt(i, oi.in.b), et.Base) {
				if scalar(et, "double") {
					oi.in.op = opMadAccD
				} else if scalar(et, "float") {
					oi.in.op = opMadAccF
				}
			}
		}
	}
}

// --- Rebuild and finish ------------------------------------------------------

// rebuild compacts away dead instructions and remaps jump targets. A
// target that was itself removed maps to the next surviving pc, which
// is exactly where control resumes.
func (o *optimizer) rebuild() {
	n := len(o.code)
	mapping := make([]int64, n+1)
	kept := 0
	for pc := 0; pc < n; pc++ {
		mapping[pc] = int64(kept)
		if !o.code[pc].dead {
			kept++
		}
	}
	mapping[n] = int64(kept)
	if kept == n {
		return
	}
	newCode := make([]oinst, 0, kept)
	for pc := 0; pc < n; pc++ {
		oi := o.code[pc]
		if oi.dead {
			continue
		}
		switch oi.in.op {
		case opJump, opJumpF, opJumpT:
			oi.in.imm = mapping[oi.in.imm]
		}
		newCode = append(newCode, oi)
	}
	o.code = newCode
}

// finish materializes the constant prologue and emits the final
// compiledKernel. Every jump shifts past the prologue; the prologue
// itself is pure loads of the constant pool, so fuel accounting and
// fault behavior are untouched.
func (o *optimizer) finish() *compiledKernel {
	o.rebuild()
	k := len(o.constOrd)
	np := &compiledKernel{
		consts:     o.consts,
		types:      o.types,
		defs:       o.src.defs,
		errs:       o.src.errs,
		nreg:       o.nreg,
		narr:       o.src.narr,
		paramRegs:  o.src.paramRegs,
		paramArrs:  o.src.paramArrs,
		localSlots: o.src.localSlots,
	}
	np.code = make([]instr, 0, len(o.code)+k)
	np.ex = make([]Expr, 0, len(o.code)+k)
	np.ex2 = make([]Expr, 0, len(o.code)+k)
	for _, r := range o.constOrd {
		v := o.constOf[r]
		o.consts = append(o.consts, v)
		np.code = append(np.code, instr{op: opConst, dst: r, imm: int64(len(o.consts) - 1)})
		np.ex = append(np.ex, nil)
		np.ex2 = append(np.ex2, nil)
	}
	np.consts = o.consts
	for _, oi := range o.code {
		in := oi.in
		switch in.op {
		case opJump, opJumpF, opJumpT:
			in.imm += int64(k)
		}
		np.code = append(np.code, in)
		np.ex = append(np.ex, oi.ex)
		if oi.ex2 != nil {
			np.ex2 = append(np.ex2, oi.ex2)
		} else {
			np.ex2 = append(np.ex2, oi.ex)
		}
	}
	return np
}
