package clc

import (
	"strings"
	"testing"

	"oclgemm/internal/clsim"
	"oclgemm/internal/device"
)

func run(t *testing.T, src, kernel string, nd clsim.NDRange, args ...any) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k, err := prog.Kernel(kernel)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := k.Bind(args...)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
	q := clsim.NewQueue(ctx)
	if err := q.Run(bk, nd); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestVectorAdd(t *testing.T) {
	src := `
// simple element-wise add
__kernel void add(const int n, __global const double* restrict a,
                  __global const double* restrict b, __global double* c)
{
    const int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}`
	n := 16
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = 100
	}
	run(t, src, "add", clsim.NDRange{Global: [2]int{n, 1}, Local: [2]int{4, 1}}, n, a, b, c)
	for i := range c {
		if c[i] != float64(i)+100 {
			t.Fatalf("c[%d] = %v", i, c[i])
		}
	}
}

func TestForLoopAndCompoundAssign(t *testing.T) {
	src := `
__kernel void sums(__global double* out)
{
    int acc = 0;
    for (int i = 0; i < 10; i++) {
        acc += i * i;
    }
    out[get_global_id(0)] = (double)(acc);
}`
	out := make([]float64, 2)
	run(t, src, "sums", clsim.NDRange{Global: [2]int{2, 1}, Local: [2]int{2, 1}}, out)
	if out[0] != 285 || out[1] != 285 {
		t.Errorf("out = %v, want 285", out)
	}
}

func TestLocalMemoryReverseWithBarrier(t *testing.T) {
	src := `
__kernel void rev(__global double* data)
{
    __local double lm[8];
    const int lx = get_local_id(0);
    const int base = get_group_id(0) * 8;
    lm[lx] = data[base + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    data[base + lx] = lm[7 - lx];
}`
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i)
	}
	run(t, src, "rev", clsim.NDRange{Global: [2]int{16, 1}, Local: [2]int{8, 1}}, data)
	want := []float64{7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("data[%d] = %v, want %v", i, data[i], want[i])
		}
	}
}

func TestVectorTypesAndVload(t *testing.T) {
	src := `
__kernel void scale(__global float* data, const float s)
{
    const int i = get_global_id(0);
    float4 v = vload4(i, data);
    v = v * (float4)(s) + (float4)(1.0f, 2.0f, 3.0f, 4.0f);
    vstore4(v, i, data);
}`
	data := make([]float32, 8)
	for i := range data {
		data[i] = float32(i)
	}
	run(t, src, "scale", clsim.NDRange{Global: [2]int{2, 1}, Local: [2]int{2, 1}}, data, float32(2))
	want := []float32{1, 4, 7, 10, 9, 12, 15, 18}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("data[%d] = %v, want %v", i, data[i], want[i])
		}
	}
}

func TestMadAndVectorArrays(t *testing.T) {
	src := `
__kernel void k(__global double* out)
{
    double2 acc[2];
    acc[0] = (double2)(0.0);
    acc[1] = (double2)(0.0);
    for (int i = 1; i <= 3; i++) {
        acc[0] = mad((double2)(i), (double2)(2.0, 3.0), acc[0]);
        acc[1] += (double2)(i);
    }
    vstore2(acc[0], 0, out);
    vstore2(acc[1], 1, out);
}`
	out := make([]float64, 4)
	run(t, src, "k", clsim.NDRange{Global: [2]int{1, 1}, Local: [2]int{1, 1}}, out)
	// acc0 = (1+2+3)*(2,3) = (12, 18); acc1 = (6, 6).
	want := []float64{12, 18, 6, 6}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestFloat32Rounding(t *testing.T) {
	src := `
__kernel void k(__global float* out)
{
    float x = 16777216.0f; // 2^24: adding 1.0f is lost in float
    x = x + 1.0f;
    out[0] = x;
}`
	out := make([]float32, 1)
	run(t, src, "k", clsim.NDRange{Global: [2]int{1, 1}, Local: [2]int{1, 1}}, out)
	if out[0] != 16777216.0 {
		t.Errorf("float arithmetic must round to 32-bit: got %v", out[0])
	}
}

func TestTernaryMinMaxShifts(t *testing.T) {
	src := `
__kernel void k(__global double* out)
{
    int a = 13;
    int b = a % 5;      // 3
    int c = a >> 1;     // 6
    int d = (b < c) ? (b << 2) : 0; // 12
    out[0] = (double)(min(d, 10));  // 10
    out[1] = (double)(max(d, 20));  // 20
    out[2] = (c >= 6 && b != 0) ? 1.0 : 0.0;
}`
	out := make([]float64, 3)
	run(t, src, "k", clsim.NDRange{Global: [2]int{1, 1}, Local: [2]int{1, 1}}, out)
	if out[0] != 10 || out[1] != 20 || out[2] != 1 {
		t.Errorf("out = %v", out)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no kernels":        `int x;`,
		"undeclared":        `__kernel void k(__global double* o){ o[0] = y; }`,
		"redeclared":        `__kernel void k(__global double* o){ int x = 0; double x = 1.0; }`,
		"unknown func":      `__kernel void k(__global double* o){ o[0] = sin(1.0); }`,
		"bad arity":         `__kernel void k(__global double* o){ o[0] = mad(1.0, 2.0); }`,
		"array initializer": `__kernel void k(__global double* o){ double a[2] = 0.0; }`,
		"variable length":   `__kernel void k(const int n, __global double* o){ double a[n]; }`,
		"unterminated":      `__kernel void k(__global double* o){ o[0] = 1.0;`,
		"bad char":          `__kernel void k(__global double* o){ o[0] = $1; }`,
		"assign to call":    `__kernel void k(__global double* o){ get_global_id(0) = 1; }`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
	q := clsim.NewQueue(ctx)
	nd := clsim.NDRange{Global: [2]int{1, 1}, Local: [2]int{1, 1}}

	cases := map[string]string{
		"oob index": `__kernel void k(__global double* o){ o[99] = 1.0; }`,
		"div zero":  `__kernel void k(__global double* o){ int z = 0; o[0] = (double)(1 / z); }`,
		"oob vload": `__kernel void k(__global double* o){ double2 v = vload2(50, o); o[0] = 1.0; }`,
	}
	for name, src := range cases {
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		k, _ := prog.Kernel("k")
		bk, err := k.Bind(make([]float64, 4))
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Run(bk, nd); err == nil {
			t.Errorf("%s: expected runtime error", name)
		}
	}
}

func TestBindErrors(t *testing.T) {
	prog, err := Compile(`__kernel void k(const int n, __global double* o){ o[0] = (double)(n); }`)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := prog.Kernel("k")
	if _, err := k.Bind(1); err == nil {
		t.Error("wrong arg count must fail")
	}
	if _, err := k.Bind(1.5, make([]float64, 1)); err == nil {
		t.Error("float for int param must fail")
	}
	if _, err := k.Bind(1, make([]float32, 1)); err == nil {
		t.Error("float32 buffer for double param must fail")
	}
	if _, err := k.Bind(1, "nope"); err == nil {
		t.Error("string arg must fail")
	}
	if _, err := prog.Kernel("missing"); err == nil {
		t.Error("unknown kernel must fail")
	}
}

func TestCommentsAndPragmasSkipped(t *testing.T) {
	src := `
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
/* header
   comment */
__kernel void k(__global double* o)
{
    // line comment
    o[get_global_id(0)] = 42.0; /* trailing */
}`
	out := make([]float64, 2)
	run(t, src, "k", clsim.NDRange{Global: [2]int{2, 1}, Local: [2]int{1, 1}}, out)
	if out[0] != 42 || out[1] != 42 {
		t.Errorf("out = %v", out)
	}
}

func TestTwoDimensionalIDs(t *testing.T) {
	src := `
__kernel void ids(__global double* o)
{
    const int gx = get_global_id(0);
    const int gy = get_global_id(1);
    const int w = get_global_size(0);
    o[gy * w + gx] = (double)(get_group_id(0) + 10 * get_group_id(1)
        + 100 * get_local_id(0) + 1000 * get_local_id(1)
        + 10000 * get_num_groups(0));
}`
	out := make([]float64, 4*4)
	run(t, src, "ids", clsim.NDRange{Global: [2]int{4, 4}, Local: [2]int{2, 2}}, out)
	// Item at global (3, 2): group (1, 1), local (1, 0), num groups 2.
	if got := out[2*4+3]; got != float64(1+10+100+0+20000) {
		t.Errorf("ids wrong: %v", got)
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Compile("__kernel void k(__global double* o)\n{\n    o[0] = bad;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should carry position: %v", err)
	}
}
