package clc

import (
	"fmt"
	"math"

	"oclgemm/internal/clsim"
)

// value is a runtime scalar or vector.
type value struct {
	t Type
	i int64       // scalar integer payload (t.IsInt() && Lanes == 1)
	f [16]float64 // float lanes
}

func intVal(v int64) value { return value{t: Type{Base: "int", Lanes: 1}, i: v} }

func floatVal(base string, lanes int) value { return value{t: Type{Base: base, Lanes: lanes}} }

// lane returns lane l as float64, broadcasting scalars. Pointer
// receiver: value is 160 bytes and these accessors sit on the hot path.
func (v *value) lane(l int) float64 {
	if v.t.IsInt() {
		return float64(v.i)
	}
	if v.t.Lanes == 1 {
		return v.f[0]
	}
	return v.f[l]
}

func (v *value) truthy() bool {
	if v.t.IsInt() {
		return v.i != 0
	}
	return v.f[0] != 0
}

// asInt coerces a scalar value to an integer.
func (v *value) asInt() int64 {
	if v.t.IsInt() {
		return v.i
	}
	return int64(v.f[0])
}

func round32(base string, x float64) float64 {
	if base == "float" {
		return float64(float32(x))
	}
	return x
}

// arrayStore backs an array variable: a __local or __private array, or
// a __global kernel buffer. Exactly one of f32/f64 is set.
type arrayStore struct {
	t   Type // element type
	f32 []float32
	f64 []float64
}

func (a *arrayStore) length() int {
	if a.f64 != nil {
		return len(a.f64) / a.t.Lanes
	}
	return len(a.f32) / a.t.Lanes
}

// loadInto reads element idx into dst (which must not alias the store).
func (a *arrayStore) loadInto(dst *value, idx int64, e Expr) {
	n := int64(a.length())
	if idx < 0 || idx >= n {
		panic(errAt(e, "index %d out of range [0,%d)", idx, n))
	}
	base := idx * int64(a.t.Lanes)
	if a.t.Lanes == 1 {
		dst.t = a.t
		if a.f64 != nil {
			dst.f[0] = a.f64[base]
		} else {
			dst.f[0] = float64(a.f32[base])
		}
		return
	}
	for l := 0; l < a.t.Lanes; l++ {
		if a.f64 != nil {
			dst.f[l] = a.f64[base+int64(l)]
		} else {
			dst.f[l] = float64(a.f32[base+int64(l)])
		}
	}
	dst.t = a.t
}

func (a *arrayStore) load(idx int64, e Expr) value {
	var v value
	a.loadInto(&v, idx, e)
	return v
}

func (a *arrayStore) store(idx int64, v *value, e Expr) {
	n := int64(a.length())
	if idx < 0 || idx >= n {
		panic(errAt(e, "index %d out of range [0,%d)", idx, n))
	}
	base := idx * int64(a.t.Lanes)
	for l := 0; l < a.t.Lanes; l++ {
		x := v.lane(l)
		if a.f64 != nil {
			a.f64[base+int64(l)] = x
		} else {
			a.f32[base+int64(l)] = float32(x)
		}
	}
}

// loadFast is loadInto without the bounds check, for accesses the
// optimizer proved in range (opLoadK). Same lane/conversion semantics.
func (a *arrayStore) loadFast(dst *value, idx int64) {
	base := idx * int64(a.t.Lanes)
	if a.t.Lanes == 1 {
		dst.t = a.t
		if a.f64 != nil {
			dst.f[0] = a.f64[base]
		} else {
			dst.f[0] = float64(a.f32[base])
		}
		return
	}
	for l := 0; l < a.t.Lanes; l++ {
		if a.f64 != nil {
			dst.f[l] = a.f64[base+int64(l)]
		} else {
			dst.f[l] = float64(a.f32[base+int64(l)])
		}
	}
	dst.t = a.t
}

// storeFast is store without the bounds check (opStoreK).
func (a *arrayStore) storeFast(idx int64, v *value) {
	base := idx * int64(a.t.Lanes)
	for l := 0; l < a.t.Lanes; l++ {
		x := v.lane(l)
		if a.f64 != nil {
			a.f64[base+int64(l)] = x
		} else {
			a.f32[base+int64(l)] = float32(x)
		}
	}
}

// vloadInto reads w consecutive elements starting at elementOffset*w
// into dst (which must not alias the store).
func (a *arrayStore) vloadInto(dst *value, w int, off int64, e Expr) {
	if a.t.Lanes != 1 {
		panic(errAt(e, "vload from a vector array"))
	}
	start := off * int64(w)
	if start < 0 || start+int64(w) > int64(a.length()) {
		panic(errAt(e, "vload%d offset %d out of range", w, off))
	}
	for l := 0; l < w; l++ {
		if a.f64 != nil {
			dst.f[l] = a.f64[start+int64(l)]
		} else {
			dst.f[l] = float64(a.f32[start+int64(l)])
		}
	}
	dst.t = Type{Base: a.t.Base, Lanes: w}
}

func (a *arrayStore) vload(w int, off int64, e Expr) value {
	var v value
	a.vloadInto(&v, w, off, e)
	return v
}

func (a *arrayStore) vstore(w int, v *value, off int64, e Expr) {
	if a.t.Lanes != 1 {
		panic(errAt(e, "vstore to a vector array"))
	}
	start := off * int64(w)
	if start < 0 || start+int64(w) > int64(a.length()) {
		panic(errAt(e, "vstore%d offset %d out of range", w, off))
	}
	for l := 0; l < w; l++ {
		if a.f64 != nil {
			a.f64[start+int64(l)] = v.lane(l)
		} else {
			a.f32[start+int64(l)] = float32(v.lane(l))
		}
	}
}

// variable is a scope slot: either a value or an array.
type variable struct {
	val value
	arr *arrayStore
}

// env is the interpreter scope stack.
type env struct {
	scopes []map[string]*variable
}

func (e *env) push() { e.scopes = append(e.scopes, map[string]*variable{}) }
func (e *env) pop()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *env) define(name string, v *variable) { e.scopes[len(e.scopes)-1][name] = v }

func (e *env) lookup(name string) (*variable, bool) {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if v, ok := e.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Bind attaches argument values to a kernel, producing a
// clsim.WorkItemKernel. Supported argument kinds: int, float32,
// float64 for scalar parameters; []float32 and []float64 for __global
// pointer parameters.
func (k *KernelDecl) Bind(args ...any) (*BoundKernel, error) {
	if len(args) != len(k.Params) {
		return nil, fmt.Errorf("clc: kernel %s takes %d arguments, got %d", k.Name, len(k.Params), len(args))
	}
	b := &BoundKernel{decl: k}
	for i, p := range k.Params {
		v := &variable{}
		switch a := args[i].(type) {
		case int:
			if p.Pointer || !p.Type.IsInt() {
				return nil, fmt.Errorf("clc: argument %d: int given for parameter %q (%s)", i, p.Name, p.Type)
			}
			v.val = intVal(int64(a))
		case float32:
			if p.Pointer || p.Type.Base != "float" {
				return nil, fmt.Errorf("clc: argument %d: float32 given for parameter %q (%s)", i, p.Name, p.Type)
			}
			v.val = floatVal("float", 1)
			v.val.f[0] = float64(a)
		case float64:
			if p.Pointer || p.Type.Base != "double" {
				return nil, fmt.Errorf("clc: argument %d: float64 given for parameter %q (%s)", i, p.Name, p.Type)
			}
			v.val = floatVal("double", 1)
			v.val.f[0] = a
		case []float32:
			if !p.Pointer || p.Type.Base != "float" {
				return nil, fmt.Errorf("clc: argument %d: []float32 given for parameter %q", i, p.Name)
			}
			v.arr = &arrayStore{t: Type{Base: "float", Lanes: 1}, f32: a}
		case []float64:
			if !p.Pointer || p.Type.Base != "double" {
				return nil, fmt.Errorf("clc: argument %d: []float64 given for parameter %q", i, p.Name)
			}
			v.arr = &arrayStore{t: Type{Base: "double", Lanes: 1}, f64: a}
		default:
			return nil, fmt.Errorf("clc: argument %d: unsupported type %T", i, args[i])
		}
		b.args = append(b.args, v)
	}
	// Hoist top-level __local declarations: they are work-group state.
	for _, s := range k.Body.Stmts {
		if d, ok := s.(*Decl); ok && d.Space == LocalMem {
			if d.ArrayLen == nil {
				return nil, fmt.Errorf("clc: kernel %s: scalar __local variables are not supported", k.Name)
			}
			b.locals = append(b.locals, d)
		}
	}
	b.prog = k.bytecode()
	b.progOpt = k.bytecodeOptimized()
	b.noOpt = clcDisableOpt()
	return b, nil
}

// BoundKernel is a kernel with bound arguments, runnable on clsim.
type BoundKernel struct {
	decl   *KernelDecl
	args   []*variable
	locals []*Decl

	// prog is the compiled bytecode (nil when compilation failed, in
	// which case Run falls back to the AST interpreter); progOpt is the
	// optimized program (== prog when the optimizer made no changes).
	prog        *compiledKernel
	progOpt     *compiledKernel
	forceInterp bool
	noOpt       bool
	fuel        int64
}

// Name implements clsim.WorkItemKernel.
func (b *BoundKernel) Name() string { return b.decl.Name }

// SetInterp forces the AST-interpreter path — the differential oracle —
// when on. The default runs compiled bytecode.
func (b *BoundKernel) SetInterp(on bool) { b.forceInterp = on }

// SetOptimize selects between the optimized and the straight-from-the-
// compiler bytecode (the differential escape hatch mirroring SetInterp).
// The default is optimized unless CLC_DISABLE_OPT is set in the
// environment. Both programs are observationally identical: bit-equal
// outputs, byte-equal fault strings, identical fuel accounting.
func (b *BoundKernel) SetOptimize(on bool) { b.noOpt = !on }

// Optimized reports whether Run would execute the optimized program.
func (b *BoundKernel) Optimized() bool {
	return b.prog != nil && !b.forceInterp && !b.noOpt && b.progOpt != nil
}

// SetFuel bounds loop back-edges per work-item: once a work-item
// completes n loop iterations (summed across all loops) the run faults
// with a budget error instead of spinning forever. Zero or negative
// disables the bound. Both engines count identically, so a fuel fault
// is deterministic and engine-independent.
func (b *BoundKernel) SetFuel(n int64) { b.fuel = n }

// errLoopBudget is the fault raised when SetFuel's budget runs out. It
// is a shared sentinel so both engines produce byte-identical errors.
var errLoopBudget = &Error{Msg: "loop iteration budget exhausted"}

// Engine reports which execution engine Run will use: "bytecode" or
// "interp".
func (b *BoundKernel) Engine() string {
	if b.prog != nil && !b.forceInterp {
		return "bytecode"
	}
	return "interp"
}

// groupState carries a work-group's __local arrays in both engine
// representations: by name for the interpreter's scopes, by hoisting
// ordinal for the VM's array slots.
type groupState struct {
	byName map[string]*arrayStore
	slots  []*arrayStore
}

// SetupGroup allocates the kernel's __local arrays through the
// work-group's accounting (so capacity overruns surface exactly as on
// a real device).
func (b *BoundKernel) SetupGroup(g *clsim.Group) any {
	gs := &groupState{byName: make(map[string]*arrayStore, len(b.locals))}
	for _, d := range b.locals {
		n, err := constFold(d.ArrayLen)
		if err != nil {
			panic(err)
		}
		total := int(n) * d.Type.Lanes
		st := &arrayStore{t: d.Type}
		if d.Type.Base == "double" {
			st.f64 = g.AllocLocalFloat64(total)
		} else {
			st.f32 = g.AllocLocalFloat32(total)
		}
		gs.byName[d.Name] = st
		gs.slots = append(gs.slots, st)
	}
	return gs
}

// Run implements clsim.WorkItemKernel: execute the body for one
// work-item, on the bytecode VM by default and on the AST interpreter
// when forced (or when bytecode compilation failed).
func (b *BoundKernel) Run(it *clsim.Item, sharedAny any) {
	gs := sharedAny.(*groupState)
	if b.prog != nil && !b.forceInterp {
		if p := b.progOpt; p != nil && !b.noOpt {
			p.run(it, b.args, gs, b.fuel)
		} else {
			b.prog.run(it, b.args, gs, b.fuel)
		}
		return
	}
	in := &interp{item: it, fuel: b.fuel}
	in.env.push()
	for i, p := range b.decl.Params {
		in.env.define(p.Name, b.args[i])
	}
	for name, st := range gs.byName {
		in.env.define(name, &variable{arr: st})
	}
	in.execBlockInCurrentScope(b.decl.Body, true)
}

// interp executes statements for one work-item.
type interp struct {
	item *clsim.Item
	env  env
	fuel int64 // remaining loop back-edges; <= 0 disables the bound
}

func (in *interp) execBlockInCurrentScope(b *Block, skipLocals bool) {
	in.env.push()
	defer in.env.pop()
	for _, s := range b.Stmts {
		if skipLocals {
			if d, ok := s.(*Decl); ok && d.Space == LocalMem {
				continue // already materialized per group
			}
		}
		in.exec(s)
	}
}

func (in *interp) exec(s Stmt) {
	switch n := s.(type) {
	case *Decl:
		in.execDecl(n)
	case *Assign:
		in.execAssign(n)
	case *ExprStmt:
		in.eval(n.X)
	case *If:
		c := in.eval(n.Cond)
		if c.truthy() {
			in.execBlockInCurrentScope(n.Then, false)
		} else if n.Else != nil {
			in.exec(n.Else)
		}
	case *For:
		in.env.push()
		if n.Init != nil {
			in.exec(n.Init)
		}
		for {
			if n.Cond != nil {
				c := in.eval(n.Cond)
				if !c.truthy() {
					break
				}
			}
			in.execBlockInCurrentScope(n.Body, false)
			if n.Post != nil {
				in.exec(n.Post)
			}
			// Mirrors the VM's backward-jump accounting exactly: one
			// unit per completed loop iteration.
			if in.fuel > 0 {
				in.fuel--
				if in.fuel == 0 {
					panic(errLoopBudget)
				}
			}
		}
		in.env.pop()
	case *Block:
		in.execBlockInCurrentScope(n, false)
	}
}

func (in *interp) execDecl(d *Decl) {
	v := &variable{}
	if d.ArrayLen != nil {
		n, err := constFold(d.ArrayLen)
		if err != nil {
			panic(err)
		}
		if d.Type.IsInt() {
			line, col := d.Pos()
			panic(&Error{Line: line, Col: col, Msg: "integer arrays are not supported"})
		}
		st := &arrayStore{t: d.Type}
		total := int(n) * d.Type.Lanes
		if d.Type.Base == "double" {
			st.f64 = make([]float64, total)
		} else {
			st.f32 = make([]float32, total)
		}
		v.arr = st
	} else {
		if d.Init != nil {
			v.val = convertVal(in.eval(d.Init), d.Type, d.Init)
		} else {
			if d.Type.IsInt() {
				v.val = intVal(0)
			} else {
				v.val = floatVal(d.Type.Base, d.Type.Lanes)
			}
		}
	}
	in.env.define(d.Name, v)
}

var (
	intType          = Type{Base: "int", Lanes: 1}
	typeDoubleScalar = Type{Base: "double", Lanes: 1}
	typeFloatScalar  = Type{Base: "float", Lanes: 1}
)

func setInt(dst *value, x int64) {
	dst.t = intType
	dst.i = x
}

func setBool(dst *value, b bool) {
	dst.t = intType
	if b {
		dst.i = 1
	} else {
		dst.i = 0
	}
}

// copyVal copies src into dst, touching only the active lanes (lanes
// past src.t.Lanes are never read, so stale data there is harmless).
func copyVal(dst, src *value) {
	if dst == src {
		return
	}
	dst.t = src.t
	if src.t.IsInt() {
		dst.i = src.i
		return
	}
	for l := 0; l < src.t.Lanes; l++ {
		dst.f[l] = src.f[l]
	}
}

// convertInto coerces v to a declared type (scalar conversions and
// scalar→vector broadcast) into dst; dst may alias v. It is the single
// conversion semantics shared by the AST interpreter and the bytecode
// VM (convertVal is its value wrapper).
func convertInto(dst, v *value, to Type, at Expr) {
	if v.t == to {
		copyVal(dst, v)
		return
	}
	if to.IsInt() {
		if to.Lanes != 1 {
			panic(errAt(at, "integer vectors are not supported"))
		}
		setInt(dst, v.asInt())
		return
	}
	if v.t.Lanes == 1 {
		x := round32(to.Base, v.lane(0))
		for l := 0; l < to.Lanes; l++ {
			dst.f[l] = x
		}
		dst.t = to
		return
	}
	if v.t.Lanes != to.Lanes {
		panic(errAt(at, "cannot convert %s to %s", v.t, to))
	}
	for l := 0; l < to.Lanes; l++ {
		dst.f[l] = round32(to.Base, v.f[l])
	}
	dst.t = to
}

func convertVal(v value, to Type, at Expr) value {
	var out value
	convertInto(&out, &v, to, at)
	return out
}

func (in *interp) execAssign(a *Assign) {
	rhs := in.eval(a.RHS)
	apply := func(cur value) value {
		switch a.Op {
		case "=":
			return rhs
		case "+=":
			return binopVal("+", cur, rhs, a.RHS)
		case "-=":
			return binopVal("-", cur, rhs, a.RHS)
		case "*=":
			return binopVal("*", cur, rhs, a.RHS)
		case "/=":
			return binopVal("/", cur, rhs, a.RHS)
		}
		panic(errAt(a.LHS, "unsupported assignment operator %q", a.Op))
	}
	switch lhs := a.LHS.(type) {
	case *Ident:
		v, ok := in.env.lookup(lhs.Name)
		if !ok {
			panic(errAt(lhs, "undeclared identifier %q", lhs.Name))
		}
		if v.arr != nil {
			panic(errAt(lhs, "cannot assign to array %q", lhs.Name))
		}
		nv := apply(v.val)
		v.val = convertVal(nv, v.val.t, a.RHS)
	case *Index:
		arr := in.arrayOf(lhs.X)
		iv := in.eval(lhs.Idx)
		idx := iv.asInt()
		cur := arr.load(idx, lhs)
		nv := convertVal(apply(cur), arr.t, a.RHS)
		arr.store(idx, &nv, lhs)
	default:
		panic(errAt(a.LHS, "left-hand side is not assignable"))
	}
}

func (in *interp) arrayOf(e Expr) *arrayStore {
	id, ok := e.(*Ident)
	if !ok {
		panic(errAt(e, "expected array identifier"))
	}
	v, ok := in.env.lookup(id.Name)
	if !ok {
		panic(errAt(e, "undeclared identifier %q", id.Name))
	}
	if v.arr == nil {
		panic(errAt(e, "%q is not an array", id.Name))
	}
	return v.arr
}

func (in *interp) eval(e Expr) value {
	switch n := e.(type) {
	case *IntLit:
		return intVal(n.Value)
	case *FloatLit:
		base := "double"
		if n.Single {
			base = "float"
		}
		v := floatVal(base, 1)
		v.f[0] = round32(base, n.Value)
		return v
	case *Ident:
		if c, ok := builtinConsts[n.Name]; ok {
			return intVal(c)
		}
		v, ok := in.env.lookup(n.Name)
		if !ok {
			panic(errAt(e, "undeclared identifier %q", n.Name))
		}
		if v.arr != nil {
			panic(errAt(e, "array %q used as a value", n.Name))
		}
		return v.val
	case *Binary:
		if n.Op == "&&" {
			l := in.eval(n.L)
			if !l.truthy() {
				return intVal(0)
			}
			r := in.eval(n.R)
			return boolVal(r.truthy())
		}
		if n.Op == "||" {
			l := in.eval(n.L)
			if l.truthy() {
				return intVal(1)
			}
			r := in.eval(n.R)
			return boolVal(r.truthy())
		}
		return binopVal(n.Op, in.eval(n.L), in.eval(n.R), e)
	case *Unary:
		x := in.eval(n.X)
		switch n.Op {
		case "-":
			if x.t.IsInt() {
				return intVal(-x.i)
			}
			out := floatVal(x.t.Base, x.t.Lanes)
			for l := 0; l < x.t.Lanes; l++ {
				out.f[l] = -x.f[l]
			}
			return out
		case "!":
			return boolVal(!x.truthy())
		case "~":
			return intVal(^x.asInt())
		}
		panic(errAt(e, "unsupported unary operator %q", n.Op))
	case *Cond:
		c := in.eval(n.C)
		if c.truthy() {
			return in.eval(n.T)
		}
		return in.eval(n.F)
	case *Call:
		return in.call(n)
	case *Index:
		arr := in.arrayOf(n.X)
		iv := in.eval(n.Idx)
		return arr.load(iv.asInt(), e)
	case *Cast:
		if len(n.Args) == 1 {
			return convertVal(in.eval(n.Args[0]), n.To, e)
		}
		// Vector constructor with Lanes components.
		out := floatVal(n.To.Base, n.To.Lanes)
		for l, a := range n.Args {
			av := in.eval(a)
			out.f[l] = round32(n.To.Base, av.lane(0))
		}
		return out
	}
	panic(errAt(e, "unsupported expression"))
}

func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

// binopInto evaluates l op r into dst (dst may alias l or r) with C
// numeric promotion and lane broadcasting; float results round per the
// wider base's precision. op is an arithOps index. It is the single
// arithmetic semantics shared by the AST interpreter and the bytecode
// VM (binopVal is its string-keyed value wrapper).
func binopInto(dst *value, op int64, l, r *value, at Expr) {
	if l.t.IsInt() && r.t.IsInt() {
		a, b := l.i, r.i
		switch op {
		case aAdd:
			setInt(dst, a+b)
		case aSub:
			setInt(dst, a-b)
		case aMul:
			setInt(dst, a*b)
		case aDiv:
			if b == 0 {
				panic(errAt(at, "integer division by zero"))
			}
			setInt(dst, a/b)
		case aMod:
			if b == 0 {
				panic(errAt(at, "integer modulo by zero"))
			}
			setInt(dst, a%b)
		case aShl:
			setInt(dst, a<<uint(b))
		case aShr:
			setInt(dst, a>>uint(b))
		case aAnd:
			setInt(dst, a&b)
		case aOr:
			setInt(dst, a|b)
		case aXor:
			setInt(dst, a^b)
		case aLt:
			setBool(dst, a < b)
		case aLe:
			setBool(dst, a <= b)
		case aGt:
			setBool(dst, a > b)
		case aGe:
			setBool(dst, a >= b)
		case aEq:
			setBool(dst, a == b)
		case aNe:
			setBool(dst, a != b)
		default:
			panic(errAt(at, "unsupported integer operator %q", arithOps[op]))
		}
		return
	}
	// Float path with promotion.
	base := "float"
	if l.t.Base == "double" || r.t.Base == "double" || l.t.IsInt() || r.t.IsInt() {
		// int op float promotes to the float operand's base; when one
		// side is double the result is double. An int operand adopts
		// the float side's base.
		base = "double"
		if l.t.Base == "float" || r.t.Base == "float" {
			if l.t.Base != "double" && r.t.Base != "double" {
				base = "float"
			}
		}
	}
	lanes := l.t.Lanes
	if r.t.Lanes > lanes {
		lanes = r.t.Lanes
	}
	if l.t.Lanes > 1 && r.t.Lanes > 1 && l.t.Lanes != r.t.Lanes {
		panic(errAt(at, "vector width mismatch %s vs %s", l.t, r.t))
	}
	if op >= aLt {
		if lanes != 1 {
			panic(errAt(at, "vector comparisons are not supported"))
		}
		a, b := l.lane(0), r.lane(0)
		switch op {
		case aLt:
			setBool(dst, a < b)
		case aLe:
			setBool(dst, a <= b)
		case aGt:
			setBool(dst, a > b)
		case aGe:
			setBool(dst, a >= b)
		case aEq:
			setBool(dst, a == b)
		default:
			setBool(dst, a != b)
		}
		return
	}
	if lanes == 1 {
		a, b := l.lane(0), r.lane(0)
		dst.f[0] = round32(base, floatArith(op, a, b, base, at))
		dst.t = Type{Base: base, Lanes: 1}
		return
	}
	// A broadcast operand's lane(i) rereads lane 0, so when dst aliases
	// an operand the result must be staged before writing.
	var f [16]float64
	for i := 0; i < lanes; i++ {
		f[i] = round32(base, floatArith(op, l.lane(i), r.lane(i), base, at))
	}
	dst.t = Type{Base: base, Lanes: lanes}
	dst.f = f
}

func floatArith(op int64, a, b float64, base string, at Expr) float64 {
	switch op {
	case aAdd:
		return a + b
	case aSub:
		return a - b
	case aMul:
		return a * b
	case aDiv:
		return a / b
	}
	panic(errAt(at, "unsupported float operator %q", arithOps[op]))
}

func binopVal(op string, l, r value, at Expr) value {
	idx, ok := arithIdx[op]
	if !ok {
		panic(errAt(at, "unsupported operator %q", op))
	}
	var out value
	binopInto(&out, idx, &l, &r, at)
	return out
}

func (in *interp) call(c *Call) value {
	switch c.Fun {
	case "get_global_id", "get_local_id", "get_group_id", "get_local_size", "get_global_size", "get_num_groups":
		dv := in.eval(c.Args[0])
		d := int(dv.asInt())
		if d < 0 || d > 1 {
			panic(errAt(c, "dimension %d out of range (2-D NDRange)", d))
		}
		switch c.Fun {
		case "get_global_id":
			return intVal(int64(in.item.GlobalID(d)))
		case "get_local_id":
			return intVal(int64(in.item.LocalID(d)))
		case "get_group_id":
			return intVal(int64(in.item.GroupID(d)))
		case "get_local_size":
			return intVal(int64(in.item.LocalSize(d)))
		case "get_global_size":
			return intVal(int64(in.item.GlobalSize(d)))
		default:
			return intVal(int64(in.item.GlobalSize(d) / in.item.LocalSize(d)))
		}
	case "barrier":
		in.eval(c.Args[0])
		in.item.Barrier()
		return intVal(0)
	case "mad", "fma":
		a := in.eval(c.Args[0])
		b := in.eval(c.Args[1])
		cc := in.eval(c.Args[2])
		prod := binopVal("*", a, b, c)
		return binopVal("+", prod, cc, c)
	case "min", "max":
		a := in.eval(c.Args[0])
		b := in.eval(c.Args[1])
		if a.t.IsInt() && b.t.IsInt() {
			if c.Fun == "min" {
				return intVal(min(a.i, b.i))
			}
			return intVal(max(a.i, b.i))
		}
		x, y := a.lane(0), b.lane(0)
		v := floatVal("double", 1)
		if c.Fun == "min" {
			v.f[0] = math.Min(x, y)
		} else {
			v.f[0] = math.Max(x, y)
		}
		return v
	case "vload2", "vload4", "vload8":
		w := int(c.Fun[5] - '0')
		offv := in.eval(c.Args[0])
		off := offv.asInt()
		arr := in.arrayOf(c.Args[1])
		return arr.vload(w, off, c)
	case "vstore2", "vstore4", "vstore8":
		w := int(c.Fun[6] - '0')
		v := in.eval(c.Args[0])
		offv := in.eval(c.Args[1])
		off := offv.asInt()
		arr := in.arrayOf(c.Args[2])
		if v.t.Lanes != w {
			panic(errAt(c, "vstore%d given %d lanes", w, v.t.Lanes))
		}
		arr.vstore(w, &v, off, c)
		return intVal(0)
	}
	panic(errAt(c, "unknown function %q", c.Fun))
}
