package clc

import (
	"fmt"
	"math"

	"oclgemm/internal/clsim"
)

// value is a runtime scalar or vector.
type value struct {
	t Type
	i int64       // scalar integer payload (t.IsInt() && Lanes == 1)
	f [16]float64 // float lanes
}

func intVal(v int64) value { return value{t: Type{Base: "int", Lanes: 1}, i: v} }

func floatVal(base string, lanes int) value { return value{t: Type{Base: base, Lanes: lanes}} }

// asFloat returns lane l as float64, broadcasting scalars.
func (v value) lane(l int) float64 {
	if v.t.IsInt() {
		return float64(v.i)
	}
	if v.t.Lanes == 1 {
		return v.f[0]
	}
	return v.f[l]
}

func (v value) truthy() bool {
	if v.t.IsInt() {
		return v.i != 0
	}
	return v.f[0] != 0
}

// asInt coerces a scalar value to an integer.
func (v value) asInt() int64 {
	if v.t.IsInt() {
		return v.i
	}
	return int64(v.f[0])
}

func round32(base string, x float64) float64 {
	if base == "float" {
		return float64(float32(x))
	}
	return x
}

// arrayStore backs an array variable: a __local or __private array, or
// a __global kernel buffer. Exactly one of f32/f64 is set.
type arrayStore struct {
	t   Type // element type
	f32 []float32
	f64 []float64
}

func (a *arrayStore) length() int {
	if a.f64 != nil {
		return len(a.f64) / a.t.Lanes
	}
	return len(a.f32) / a.t.Lanes
}

func (a *arrayStore) load(idx int64, e Expr) value {
	n := int64(a.length())
	if idx < 0 || idx >= n {
		panic(errAt(e, "index %d out of range [0,%d)", idx, n))
	}
	v := floatVal(a.t.Base, a.t.Lanes)
	base := idx * int64(a.t.Lanes)
	for l := 0; l < a.t.Lanes; l++ {
		if a.f64 != nil {
			v.f[l] = a.f64[base+int64(l)]
		} else {
			v.f[l] = float64(a.f32[base+int64(l)])
		}
	}
	return v
}

func (a *arrayStore) store(idx int64, v value, e Expr) {
	n := int64(a.length())
	if idx < 0 || idx >= n {
		panic(errAt(e, "index %d out of range [0,%d)", idx, n))
	}
	base := idx * int64(a.t.Lanes)
	for l := 0; l < a.t.Lanes; l++ {
		x := v.lane(l)
		if a.f64 != nil {
			a.f64[base+int64(l)] = x
		} else {
			a.f32[base+int64(l)] = float32(x)
		}
	}
}

// vload reads w consecutive elements starting at elementOffset*w.
func (a *arrayStore) vload(w int, off int64, e Expr) value {
	if a.t.Lanes != 1 {
		panic(errAt(e, "vload from a vector array"))
	}
	start := off * int64(w)
	if start < 0 || start+int64(w) > int64(a.length()) {
		panic(errAt(e, "vload%d offset %d out of range", w, off))
	}
	v := floatVal(a.t.Base, w)
	for l := 0; l < w; l++ {
		if a.f64 != nil {
			v.f[l] = a.f64[start+int64(l)]
		} else {
			v.f[l] = float64(a.f32[start+int64(l)])
		}
	}
	return v
}

func (a *arrayStore) vstore(w int, v value, off int64, e Expr) {
	if a.t.Lanes != 1 {
		panic(errAt(e, "vstore to a vector array"))
	}
	start := off * int64(w)
	if start < 0 || start+int64(w) > int64(a.length()) {
		panic(errAt(e, "vstore%d offset %d out of range", w, off))
	}
	for l := 0; l < w; l++ {
		if a.f64 != nil {
			a.f64[start+int64(l)] = v.lane(l)
		} else {
			a.f32[start+int64(l)] = float32(v.lane(l))
		}
	}
}

// variable is a scope slot: either a value or an array.
type variable struct {
	val value
	arr *arrayStore
}

// env is the interpreter scope stack.
type env struct {
	scopes []map[string]*variable
}

func (e *env) push() { e.scopes = append(e.scopes, map[string]*variable{}) }
func (e *env) pop()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *env) define(name string, v *variable) { e.scopes[len(e.scopes)-1][name] = v }

func (e *env) lookup(name string) (*variable, bool) {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if v, ok := e.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Bind attaches argument values to a kernel, producing a
// clsim.WorkItemKernel. Supported argument kinds: int, float32,
// float64 for scalar parameters; []float32 and []float64 for __global
// pointer parameters.
func (k *KernelDecl) Bind(args ...any) (*BoundKernel, error) {
	if len(args) != len(k.Params) {
		return nil, fmt.Errorf("clc: kernel %s takes %d arguments, got %d", k.Name, len(k.Params), len(args))
	}
	b := &BoundKernel{decl: k}
	for i, p := range k.Params {
		v := &variable{}
		switch a := args[i].(type) {
		case int:
			if p.Pointer || !p.Type.IsInt() {
				return nil, fmt.Errorf("clc: argument %d: int given for parameter %q (%s)", i, p.Name, p.Type)
			}
			v.val = intVal(int64(a))
		case float32:
			if p.Pointer || p.Type.Base != "float" {
				return nil, fmt.Errorf("clc: argument %d: float32 given for parameter %q (%s)", i, p.Name, p.Type)
			}
			v.val = floatVal("float", 1)
			v.val.f[0] = float64(a)
		case float64:
			if p.Pointer || p.Type.Base != "double" {
				return nil, fmt.Errorf("clc: argument %d: float64 given for parameter %q (%s)", i, p.Name, p.Type)
			}
			v.val = floatVal("double", 1)
			v.val.f[0] = a
		case []float32:
			if !p.Pointer || p.Type.Base != "float" {
				return nil, fmt.Errorf("clc: argument %d: []float32 given for parameter %q", i, p.Name)
			}
			v.arr = &arrayStore{t: Type{Base: "float", Lanes: 1}, f32: a}
		case []float64:
			if !p.Pointer || p.Type.Base != "double" {
				return nil, fmt.Errorf("clc: argument %d: []float64 given for parameter %q", i, p.Name)
			}
			v.arr = &arrayStore{t: Type{Base: "double", Lanes: 1}, f64: a}
		default:
			return nil, fmt.Errorf("clc: argument %d: unsupported type %T", i, args[i])
		}
		b.args = append(b.args, v)
	}
	// Hoist top-level __local declarations: they are work-group state.
	for _, s := range k.Body.Stmts {
		if d, ok := s.(*Decl); ok && d.Space == LocalMem {
			if d.ArrayLen == nil {
				return nil, fmt.Errorf("clc: kernel %s: scalar __local variables are not supported", k.Name)
			}
			b.locals = append(b.locals, d)
		}
	}
	return b, nil
}

// BoundKernel is a kernel with bound arguments, runnable on clsim.
type BoundKernel struct {
	decl   *KernelDecl
	args   []*variable
	locals []*Decl
}

// Name implements clsim.WorkItemKernel.
func (b *BoundKernel) Name() string { return b.decl.Name }

// SetupGroup allocates the kernel's __local arrays through the
// work-group's accounting (so capacity overruns surface exactly as on
// a real device).
func (b *BoundKernel) SetupGroup(g *clsim.Group) any {
	shared := make(map[string]*arrayStore, len(b.locals))
	for _, d := range b.locals {
		n, err := constFold(d.ArrayLen)
		if err != nil {
			panic(err)
		}
		total := int(n) * d.Type.Lanes
		st := &arrayStore{t: d.Type}
		if d.Type.Base == "double" {
			st.f64 = g.AllocLocalFloat64(total)
		} else {
			st.f32 = g.AllocLocalFloat32(total)
		}
		shared[d.Name] = st
	}
	return shared
}

// Run implements clsim.WorkItemKernel: interpret the body for one
// work-item.
func (b *BoundKernel) Run(it *clsim.Item, sharedAny any) {
	shared := sharedAny.(map[string]*arrayStore)
	in := &interp{item: it}
	in.env.push()
	for i, p := range b.decl.Params {
		in.env.define(p.Name, b.args[i])
	}
	for name, st := range shared {
		in.env.define(name, &variable{arr: st})
	}
	in.execBlockInCurrentScope(b.decl.Body, true)
}

// interp executes statements for one work-item.
type interp struct {
	item *clsim.Item
	env  env
}

func (in *interp) execBlockInCurrentScope(b *Block, skipLocals bool) {
	in.env.push()
	defer in.env.pop()
	for _, s := range b.Stmts {
		if skipLocals {
			if d, ok := s.(*Decl); ok && d.Space == LocalMem {
				continue // already materialized per group
			}
		}
		in.exec(s)
	}
}

func (in *interp) exec(s Stmt) {
	switch n := s.(type) {
	case *Decl:
		in.execDecl(n)
	case *Assign:
		in.execAssign(n)
	case *ExprStmt:
		in.eval(n.X)
	case *If:
		c := in.eval(n.Cond)
		if c.truthy() {
			in.execBlockInCurrentScope(n.Then, false)
		} else if n.Else != nil {
			in.exec(n.Else)
		}
	case *For:
		in.env.push()
		if n.Init != nil {
			in.exec(n.Init)
		}
		for {
			if n.Cond != nil {
				c := in.eval(n.Cond)
				if !c.truthy() {
					break
				}
			}
			in.execBlockInCurrentScope(n.Body, false)
			if n.Post != nil {
				in.exec(n.Post)
			}
		}
		in.env.pop()
	case *Block:
		in.execBlockInCurrentScope(n, false)
	}
}

func (in *interp) execDecl(d *Decl) {
	v := &variable{}
	if d.ArrayLen != nil {
		n, err := constFold(d.ArrayLen)
		if err != nil {
			panic(err)
		}
		if d.Type.IsInt() {
			line, col := d.Pos()
			panic(&Error{Line: line, Col: col, Msg: "integer arrays are not supported"})
		}
		st := &arrayStore{t: d.Type}
		total := int(n) * d.Type.Lanes
		if d.Type.Base == "double" {
			st.f64 = make([]float64, total)
		} else {
			st.f32 = make([]float32, total)
		}
		v.arr = st
	} else {
		if d.Init != nil {
			v.val = in.convert(in.eval(d.Init), d.Type, d.Init)
		} else {
			if d.Type.IsInt() {
				v.val = intVal(0)
			} else {
				v.val = floatVal(d.Type.Base, d.Type.Lanes)
			}
		}
	}
	in.env.define(d.Name, v)
}

// convert coerces a value to a declared type (scalar conversions and
// scalar→vector broadcast).
func (in *interp) convert(v value, to Type, at Expr) value {
	if v.t == to {
		return v
	}
	if to.IsInt() {
		if to.Lanes != 1 {
			panic(errAt(at, "integer vectors are not supported"))
		}
		return intVal(v.asInt())
	}
	out := floatVal(to.Base, to.Lanes)
	if v.t.Lanes == 1 {
		x := round32(to.Base, v.lane(0))
		for l := 0; l < to.Lanes; l++ {
			out.f[l] = x
		}
		return out
	}
	if v.t.Lanes != to.Lanes {
		panic(errAt(at, "cannot convert %s to %s", v.t, to))
	}
	for l := 0; l < to.Lanes; l++ {
		out.f[l] = round32(to.Base, v.f[l])
	}
	return out
}

func (in *interp) execAssign(a *Assign) {
	rhs := in.eval(a.RHS)
	apply := func(cur value) value {
		switch a.Op {
		case "=":
			return rhs
		case "+=":
			return in.binop("+", cur, rhs, a.RHS)
		case "-=":
			return in.binop("-", cur, rhs, a.RHS)
		case "*=":
			return in.binop("*", cur, rhs, a.RHS)
		case "/=":
			return in.binop("/", cur, rhs, a.RHS)
		}
		panic(errAt(a.LHS, "unsupported assignment operator %q", a.Op))
	}
	switch lhs := a.LHS.(type) {
	case *Ident:
		v, ok := in.env.lookup(lhs.Name)
		if !ok {
			panic(errAt(lhs, "undeclared identifier %q", lhs.Name))
		}
		if v.arr != nil {
			panic(errAt(lhs, "cannot assign to array %q", lhs.Name))
		}
		nv := apply(v.val)
		v.val = in.convert(nv, v.val.t, a.RHS)
	case *Index:
		arr := in.arrayOf(lhs.X)
		idx := in.eval(lhs.Idx).asInt()
		cur := arr.load(idx, lhs)
		arr.store(idx, in.convert(apply(cur), arr.t, a.RHS), lhs)
	default:
		panic(errAt(a.LHS, "left-hand side is not assignable"))
	}
}

func (in *interp) arrayOf(e Expr) *arrayStore {
	id, ok := e.(*Ident)
	if !ok {
		panic(errAt(e, "expected array identifier"))
	}
	v, ok := in.env.lookup(id.Name)
	if !ok {
		panic(errAt(e, "undeclared identifier %q", id.Name))
	}
	if v.arr == nil {
		panic(errAt(e, "%q is not an array", id.Name))
	}
	return v.arr
}

func (in *interp) eval(e Expr) value {
	switch n := e.(type) {
	case *IntLit:
		return intVal(n.Value)
	case *FloatLit:
		base := "double"
		if n.Single {
			base = "float"
		}
		v := floatVal(base, 1)
		v.f[0] = round32(base, n.Value)
		return v
	case *Ident:
		if c, ok := builtinConsts[n.Name]; ok {
			return intVal(c)
		}
		v, ok := in.env.lookup(n.Name)
		if !ok {
			panic(errAt(e, "undeclared identifier %q", n.Name))
		}
		if v.arr != nil {
			panic(errAt(e, "array %q used as a value", n.Name))
		}
		return v.val
	case *Binary:
		if n.Op == "&&" {
			l := in.eval(n.L)
			if !l.truthy() {
				return intVal(0)
			}
			return boolVal(in.eval(n.R).truthy())
		}
		if n.Op == "||" {
			l := in.eval(n.L)
			if l.truthy() {
				return intVal(1)
			}
			return boolVal(in.eval(n.R).truthy())
		}
		return in.binop(n.Op, in.eval(n.L), in.eval(n.R), e)
	case *Unary:
		x := in.eval(n.X)
		switch n.Op {
		case "-":
			if x.t.IsInt() {
				return intVal(-x.i)
			}
			out := floatVal(x.t.Base, x.t.Lanes)
			for l := 0; l < x.t.Lanes; l++ {
				out.f[l] = -x.f[l]
			}
			return out
		case "!":
			return boolVal(!x.truthy())
		case "~":
			return intVal(^x.asInt())
		}
		panic(errAt(e, "unsupported unary operator %q", n.Op))
	case *Cond:
		if in.eval(n.C).truthy() {
			return in.eval(n.T)
		}
		return in.eval(n.F)
	case *Call:
		return in.call(n)
	case *Index:
		arr := in.arrayOf(n.X)
		idx := in.eval(n.Idx).asInt()
		return arr.load(idx, e)
	case *Cast:
		if len(n.Args) == 1 {
			return in.convert(in.eval(n.Args[0]), n.To, e)
		}
		// Vector constructor with Lanes components.
		out := floatVal(n.To.Base, n.To.Lanes)
		for l, a := range n.Args {
			out.f[l] = round32(n.To.Base, in.eval(a).lane(0))
		}
		return out
	}
	panic(errAt(e, "unsupported expression"))
}

func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

// binop evaluates l op r with C numeric promotion and lane
// broadcasting; float results round per the wider base's precision.
func (in *interp) binop(op string, l, r value, at Expr) value {
	if l.t.IsInt() && r.t.IsInt() {
		a, b := l.i, r.i
		switch op {
		case "+":
			return intVal(a + b)
		case "-":
			return intVal(a - b)
		case "*":
			return intVal(a * b)
		case "/":
			if b == 0 {
				panic(errAt(at, "integer division by zero"))
			}
			return intVal(a / b)
		case "%":
			if b == 0 {
				panic(errAt(at, "integer modulo by zero"))
			}
			return intVal(a % b)
		case "<<":
			return intVal(a << uint(b))
		case ">>":
			return intVal(a >> uint(b))
		case "&":
			return intVal(a & b)
		case "|":
			return intVal(a | b)
		case "^":
			return intVal(a ^ b)
		case "<":
			return boolVal(a < b)
		case "<=":
			return boolVal(a <= b)
		case ">":
			return boolVal(a > b)
		case ">=":
			return boolVal(a >= b)
		case "==":
			return boolVal(a == b)
		case "!=":
			return boolVal(a != b)
		}
		panic(errAt(at, "unsupported integer operator %q", op))
	}
	// Float path with promotion.
	base := "float"
	if l.t.Base == "double" || r.t.Base == "double" || l.t.IsInt() || r.t.IsInt() {
		// int op float promotes to the float operand's base; when one
		// side is double the result is double. An int operand adopts
		// the float side's base.
		base = "double"
		if l.t.Base == "float" || r.t.Base == "float" {
			if l.t.Base != "double" && r.t.Base != "double" {
				base = "float"
			}
		}
	}
	lanes := l.t.Lanes
	if r.t.Lanes > lanes {
		lanes = r.t.Lanes
	}
	if l.t.Lanes > 1 && r.t.Lanes > 1 && l.t.Lanes != r.t.Lanes {
		panic(errAt(at, "vector width mismatch %s vs %s", l.t, r.t))
	}
	switch op {
	case "<", "<=", ">", ">=", "==", "!=":
		if lanes != 1 {
			panic(errAt(at, "vector comparisons are not supported"))
		}
		a, b := l.lane(0), r.lane(0)
		switch op {
		case "<":
			return boolVal(a < b)
		case "<=":
			return boolVal(a <= b)
		case ">":
			return boolVal(a > b)
		case ">=":
			return boolVal(a >= b)
		case "==":
			return boolVal(a == b)
		case "!=":
			return boolVal(a != b)
		}
	}
	out := floatVal(base, lanes)
	for i := 0; i < lanes; i++ {
		a, b := l.lane(i), r.lane(i)
		var x float64
		switch op {
		case "+":
			x = a + b
		case "-":
			x = a - b
		case "*":
			x = a * b
		case "/":
			x = a / b
		default:
			panic(errAt(at, "unsupported float operator %q", op))
		}
		out.f[i] = round32(base, x)
	}
	return out
}

func (in *interp) call(c *Call) value {
	switch c.Fun {
	case "get_global_id", "get_local_id", "get_group_id", "get_local_size", "get_global_size", "get_num_groups":
		d := int(in.eval(c.Args[0]).asInt())
		if d < 0 || d > 1 {
			panic(errAt(c, "dimension %d out of range (2-D NDRange)", d))
		}
		switch c.Fun {
		case "get_global_id":
			return intVal(int64(in.item.GlobalID(d)))
		case "get_local_id":
			return intVal(int64(in.item.LocalID(d)))
		case "get_group_id":
			return intVal(int64(in.item.GroupID(d)))
		case "get_local_size":
			return intVal(int64(in.item.LocalSize(d)))
		case "get_global_size":
			return intVal(int64(in.item.GlobalSize(d)))
		default:
			return intVal(int64(in.item.GlobalSize(d) / in.item.LocalSize(d)))
		}
	case "barrier":
		in.eval(c.Args[0])
		in.item.Barrier()
		return intVal(0)
	case "mad", "fma":
		a := in.eval(c.Args[0])
		b := in.eval(c.Args[1])
		cc := in.eval(c.Args[2])
		prod := in.binop("*", a, b, c)
		return in.binop("+", prod, cc, c)
	case "min", "max":
		a := in.eval(c.Args[0])
		b := in.eval(c.Args[1])
		if a.t.IsInt() && b.t.IsInt() {
			if c.Fun == "min" {
				return intVal(min(a.i, b.i))
			}
			return intVal(max(a.i, b.i))
		}
		x, y := a.lane(0), b.lane(0)
		v := floatVal("double", 1)
		if c.Fun == "min" {
			v.f[0] = math.Min(x, y)
		} else {
			v.f[0] = math.Max(x, y)
		}
		return v
	case "vload2", "vload4", "vload8":
		w := int(c.Fun[5] - '0')
		off := in.eval(c.Args[0]).asInt()
		arr := in.arrayOf(c.Args[1])
		return arr.vload(w, off, c)
	case "vstore2", "vstore4", "vstore8":
		w := int(c.Fun[6] - '0')
		v := in.eval(c.Args[0])
		off := in.eval(c.Args[1]).asInt()
		arr := in.arrayOf(c.Args[2])
		if v.t.Lanes != w {
			panic(errAt(c, "vstore%d given %d lanes", w, v.t.Lanes))
		}
		arr.vstore(w, v, off, c)
		return intVal(0)
	}
	panic(errAt(c, "unknown function %q", c.Fun))
}

