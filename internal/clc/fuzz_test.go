package clc

import (
	"math"
	"testing"

	"oclgemm/internal/clsim"
	"oclgemm/internal/device"
)

// FuzzCompile asserts the front end never panics on arbitrary input —
// it either produces a program or a positioned error.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"__kernel void k() {}",
		"__kernel void k(__global double* o){ o[0] = 1.0; }",
		"__kernel void k(__global float* o){ float4 v = vload4(0, o); vstore4(v * (float4)(2.0f), 0, o); }",
		"__kernel void k(const int n, __global double* o){ for (int i = 0; i < n; i++) { o[i] += (double)(i); } }",
		"__kernel void k(__global double* o){ __local double lm[16]; lm[get_local_id(0)] = 0.0; barrier(CLK_LOCAL_MEM_FENCE); }",
		"#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n__kernel void k(__global double* o){ /* c */ o[0] = mad(1.0, 2.0, 3.0); }",
		"__kernel void k(__global double* o){ o[0] = (1 < 2) ? 3.0 : 4.0; }",
		"kernel void k(global double* o){ o[0] = 0x10 + 07; }",
		"__kernel void broken(",
		"__kernel void k(__global double* o){ o[0] = ; }",
		"int x = 5;",
		"/* unterminated",
		"__kernel void k(__global double* o){ o[0 = 1.0; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
		if err != nil && prog != nil {
			t.Fatal("program returned alongside error")
		}
	})
}

// FuzzInterpretTinyKernel mutates the body of a small kernel and checks
// the whole pipeline (compile → bind → run) never panics outside the
// executor's error channel — and that the bytecode VM and the AST
// interpreter agree bit-for-bit on every surviving input, including on
// whether the run faults. The VM leg runs with the optimizer both on
// and off, so every fuzz input is also an optimizer differential test.
func FuzzInterpretTinyKernel(f *testing.F) {
	bodies := []string{
		"o[gid] = 1.0;",
		"o[gid] = o[gid] + 2.0;",
		"for (int i = 0; i < 4; i++) { o[gid] += (double)(i); }",
		"double2 v = vload2(0, o); vstore2(v, 0, o);",
		"o[gid] = (double)(gid % 3);",
		"o[100] = 1.0;",                        // out of bounds: must error, not crash
		"int z = 0; o[gid] = (double)(1 / z);", // div by zero: must error
	}
	for _, b := range bodies {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "__kernel void k(__global double* o)\n{\n const int gid = get_global_id(0);\n" + body + "\n}"
		prog, err := Compile(src)
		if err != nil {
			return // rejected input is fine
		}
		k, err := prog.Kernel("k")
		if err != nil {
			return
		}
		run := func(forceInterp, optimize bool) ([]float64, error) {
			buf := make([]float64, 8)
			for i := range buf {
				buf[i] = float64(i) * 0.125
			}
			bk, err := k.Bind(buf)
			if err != nil {
				return nil, err
			}
			bk.SetInterp(forceInterp)
			bk.SetOptimize(optimize)
			// Fuzzed bodies can contain non-terminating loops; the fuel
			// budget turns those into deterministic faults that both
			// engines report identically.
			bk.SetFuel(200000)
			ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
			q := clsim.NewQueue(ctx)
			// Fuzzed kernels may write the same global location from every
			// work-item (undefined behaviour in OpenCL); single-item groups
			// dispatched serially keep such inputs deterministic instead of
			// racing.
			q.Workers = 1
			// Run may return an error (runtime faults); it must not panic
			// or deadlock.
			return buf, q.Run(bk, clsim.NDRange{Global: [2]int{4, 1}, Local: [2]int{1, 1}})
		}
		vmBuf, vmErr := run(false, true)
		check := func(name string, altBuf []float64, altErr error) {
			if (vmErr == nil) != (altErr == nil) {
				t.Fatalf("engines disagree on fault: vm=%v %s=%v", vmErr, name, altErr)
			}
			if vmErr != nil {
				if vmErr.Error() != altErr.Error() {
					t.Fatalf("engines disagree on fault message:\n vm: %v\n %s: %v", vmErr, name, altErr)
				}
				return
			}
			for i := range vmBuf {
				if math.Float64bits(vmBuf[i]) != math.Float64bits(altBuf[i]) {
					t.Fatalf("engines disagree at o[%d]: vm=%v %s=%v", i, vmBuf[i], name, altBuf[i])
				}
			}
		}
		inBuf, inErr := run(true, false)
		check("interp", inBuf, inErr)
		rawBuf, rawErr := run(false, false)
		check("vm-noopt", rawBuf, rawErr)
	})
}
