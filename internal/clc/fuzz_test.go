package clc

import (
	"testing"

	"oclgemm/internal/clsim"
	"oclgemm/internal/device"
)

// FuzzCompile asserts the front end never panics on arbitrary input —
// it either produces a program or a positioned error.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"__kernel void k() {}",
		"__kernel void k(__global double* o){ o[0] = 1.0; }",
		"__kernel void k(__global float* o){ float4 v = vload4(0, o); vstore4(v * (float4)(2.0f), 0, o); }",
		"__kernel void k(const int n, __global double* o){ for (int i = 0; i < n; i++) { o[i] += (double)(i); } }",
		"__kernel void k(__global double* o){ __local double lm[16]; lm[get_local_id(0)] = 0.0; barrier(CLK_LOCAL_MEM_FENCE); }",
		"#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n__kernel void k(__global double* o){ /* c */ o[0] = mad(1.0, 2.0, 3.0); }",
		"__kernel void k(__global double* o){ o[0] = (1 < 2) ? 3.0 : 4.0; }",
		"kernel void k(global double* o){ o[0] = 0x10 + 07; }",
		"__kernel void broken(",
		"__kernel void k(__global double* o){ o[0] = ; }",
		"int x = 5;",
		"/* unterminated",
		"__kernel void k(__global double* o){ o[0 = 1.0; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
		if err != nil && prog != nil {
			t.Fatal("program returned alongside error")
		}
	})
}

// FuzzInterpretTinyKernel mutates the body of a small kernel and checks
// the whole pipeline (compile → bind → run) never panics outside the
// executor's error channel.
func FuzzInterpretTinyKernel(f *testing.F) {
	bodies := []string{
		"o[gid] = 1.0;",
		"o[gid] = o[gid] + 2.0;",
		"for (int i = 0; i < 4; i++) { o[gid] += (double)(i); }",
		"double2 v = vload2(0, o); vstore2(v, 0, o);",
		"o[gid] = (double)(gid % 3);",
		"o[100] = 1.0;",                        // out of bounds: must error, not crash
		"int z = 0; o[gid] = (double)(1 / z);", // div by zero: must error
	}
	for _, b := range bodies {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "__kernel void k(__global double* o)\n{\n const int gid = get_global_id(0);\n" + body + "\n}"
		prog, err := Compile(src)
		if err != nil {
			return // rejected input is fine
		}
		k, err := prog.Kernel("k")
		if err != nil {
			return
		}
		bk, err := k.Bind(make([]float64, 8))
		if err != nil {
			return
		}
		ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
		q := clsim.NewQueue(ctx)
		// Fuzzed kernels may write the same global location from every
		// work-item (undefined behaviour in OpenCL); single-item groups
		// dispatched serially keep such inputs deterministic instead of
		// racing.
		q.Workers = 1
		// Run may return an error (runtime faults); it must not panic
		// or deadlock.
		_ = q.Run(bk, clsim.NDRange{Global: [2]int{4, 1}, Local: [2]int{1, 1}})
	})
}
