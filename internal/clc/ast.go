package clc

import (
	"fmt"
	"sync"
)

// Type describes an OpenCL C value type in the supported subset.
type Type struct {
	// Base is one of "int", "uint", "float", "double", "void".
	Base string
	// Lanes is the vector width (1 for scalars).
	Lanes int
}

func (t Type) String() string {
	if t.Lanes > 1 {
		return fmt.Sprintf("%s%d", t.Base, t.Lanes)
	}
	return t.Base
}

// IsFloat reports float/double bases.
func (t Type) IsFloat() bool { return t.Base == "float" || t.Base == "double" }

// IsInt reports int/uint bases.
func (t Type) IsInt() bool { return t.Base == "int" || t.Base == "uint" }

// parseTypeName recognizes a type name like "double2".
func parseTypeName(s string) (Type, bool) {
	for _, base := range []string{"double", "float", "uint", "int", "void"} {
		if s == base {
			return Type{Base: base, Lanes: 1}, true
		}
		if len(s) > len(base) && s[:len(base)] == base {
			switch s[len(base):] {
			case "2":
				return Type{Base: base, Lanes: 2}, true
			case "4":
				return Type{Base: base, Lanes: 4}, true
			case "8":
				return Type{Base: base, Lanes: 8}, true
			case "16":
				return Type{Base: base, Lanes: 16}, true
			}
		}
	}
	return Type{}, false
}

// AddressSpace of a declaration or parameter.
type AddressSpace int

const (
	// Private is default work-item storage.
	Private AddressSpace = iota
	// LocalMem is __local (work-group shared).
	LocalMem
	// GlobalMem is __global (kernel buffer arguments).
	GlobalMem
)

// --- Expressions -----------------------------------------------------------

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// IntLit is an integer literal.
type IntLit struct {
	pos
	Value int64
}

// FloatLit is a floating literal; Single marks an 'f' suffix.
type FloatLit struct {
	pos
	Value  float64
	Single bool
}

// Ident is a name reference.
type Ident struct {
	pos
	Name string
}

// Binary is a binary operation.
type Binary struct {
	pos
	Op   string
	L, R Expr
}

// Unary is a prefix operation (-, !, ~).
type Unary struct {
	pos
	Op string
	X  Expr
}

// Cond is the ternary operator.
type Cond struct {
	pos
	C, T, F Expr
}

// Call is a function invocation.
type Call struct {
	pos
	Fun  string
	Args []Expr
}

// Index is arr[i].
type Index struct {
	pos
	X   Expr
	Idx Expr
}

// Cast is (type)(args...): a scalar conversion, a vector broadcast
// (one argument), or a vector constructor (Lanes arguments).
type Cast struct {
	pos
	To   Type
	Args []Expr
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ident) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}
func (*Cond) exprNode()     {}
func (*Call) exprNode()     {}
func (*Index) exprNode()    {}
func (*Cast) exprNode()     {}

// --- Statements ------------------------------------------------------------

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Pos() (line, col int)
}

// Decl declares a scalar/vector variable or an array.
type Decl struct {
	pos
	Space    AddressSpace
	Type     Type
	Name     string
	ArrayLen Expr // nil for scalars; constant expression
	Init     Expr // nil when absent
}

// Assign is lhs op rhs where op ∈ {=, +=, -=, *=, /=}.
type Assign struct {
	pos
	Op  string
	LHS Expr // Ident or Index
	RHS Expr
}

// ExprStmt is a bare call (barrier, vstore).
type ExprStmt struct {
	pos
	X Expr
}

// If is a conditional.
type If struct {
	pos
	Cond Expr
	Then *Block
	Else Stmt // *Block, *If or nil
}

// For is for(init; cond; post) body. Init is *Decl or *Assign or nil;
// Post is *Assign or nil.
type For struct {
	pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *Block
}

// Block is { stmts }.
type Block struct {
	pos
	Stmts []Stmt
}

func (*Decl) stmtNode()     {}
func (*Assign) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*Block) stmtNode()    {}

// --- Top level ---------------------------------------------------------------

// Param is one kernel parameter.
type Param struct {
	Space   AddressSpace
	Type    Type
	Pointer bool
	Name    string
}

// KernelDecl is a __kernel void f(params) { body }.
type KernelDecl struct {
	Name   string
	Params []Param
	Body   *Block

	// Bytecode compilation is cached per declaration: the program
	// depends only on the AST, so every Bind shares one compile. The
	// optimized program is cached the same way (see optimize.go).
	compileOnce sync.Once
	compiled    *compiledKernel
	compileErr  error

	optimizeOnce  sync.Once
	optimizedProg *compiledKernel
}

// Program is a parsed translation unit.
type Program struct {
	Kernels []*KernelDecl
	Source  string
}

// Kernel finds a kernel by name.
func (p *Program) Kernel(name string) (*KernelDecl, error) {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("clc: no kernel %q in program", name)
}
