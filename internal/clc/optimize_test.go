package clc

// Pass-level and differential tests for the bytecode optimizer
// (optimize.go). Every test here runs with optDebugPanic enabled, so a
// panicking pass fails the test loudly instead of silently falling back
// to the unoptimized program — the production recover must never be the
// reason an optimizer test goes green.

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func withOptDebugPanic(t *testing.T) {
	t.Helper()
	old := optDebugPanic
	optDebugPanic = true
	t.Cleanup(func() { optDebugPanic = old })
}

func optQueue() *clsim.Queue {
	return clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
}

// disInstrs parses the instruction count from a disassembly header
// ("; N instrs, R regs, A array slots").
func disInstrs(t *testing.T, dis string) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscanf(dis, "; %d instrs", &n); err != nil {
		t.Fatalf("cannot parse disassembly header %q: %v", strings.SplitN(dis, "\n", 2)[0], err)
	}
	return n
}

// benchParams is the committed BenchmarkInterpVsVM kernel schedule.
func benchParams() codegen.Params {
	return codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 16, Nwg: 16, Kwg: 8, MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1, SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
}

// TestOptimizerTransformsGeneratedGEMM asserts the individual passes
// actually fire on the canonical generated-GEMM kernel: the inner
// accumulator loop fuses to a typed multiply-accumulate
// superinstruction, typed loads appear, bounds checks are elided, and
// the instruction stream shrinks substantially.
func TestOptimizerTransformsGeneratedGEMM(t *testing.T) {
	withOptDebugPanic(t)
	p := benchParams()
	src, err := p.GenerateSource()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := prog.Kernel(codegen.KernelName)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := kern.Disassemble(false)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := kern.Disassemble(true)
	if err != nil {
		t.Fatal(err)
	}
	// No standalone "load.d" requirement: on this kernel every typed
	// load fuses into a superinstruction, which is the stronger result.
	for _, want := range []string{"madacc.d", "loadbin", "const"} {
		if !strings.Contains(opt, want) {
			t.Errorf("optimized stream lacks %q:\n%s", want, opt)
		}
	}
	rawN, optN := disInstrs(t, raw), disInstrs(t, opt)
	if optN*4 >= rawN*3 {
		t.Errorf("optimizer shrank %d instrs only to %d; want at least 25%% reduction", rawN, optN)
	}
	rawChecks, optChecks := strings.Count(raw, "checkidx"), strings.Count(opt, "checkidx")
	if rawChecks == 0 {
		t.Fatalf("raw stream has no checkidx instructions; test is vacuous")
	}
	if optChecks >= rawChecks {
		t.Errorf("bounds-check elision did not fire: raw %d checkidx, optimized %d", rawChecks, optChecks)
	}
	t.Logf("instrs %d -> %d, checkidx %d -> %d", rawN, optN, rawChecks, optChecks)
}

// threeWayDouble runs src under the optimized VM, the unoptimized VM,
// and the interpreter over identical (a, b, o) float64 buffers, requires
// bit-identical o across engines, and returns the optimized result.
func threeWayDouble(t *testing.T, src string, a, b, o []float64) []float64 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	kern, err := prog.Kernel("k")
	if err != nil {
		t.Fatal(err)
	}
	nd := clsim.NDRange{Global: [2]int{4, 1}, Local: [2]int{1, 1}}
	run := func(forceInterp, optimize bool) []float64 {
		ac, bc, oc := append([]float64(nil), a...), append([]float64(nil), b...), append([]float64(nil), o...)
		bk, err := kern.Bind(ac, bc, oc)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		bk.SetInterp(forceInterp)
		bk.SetOptimize(optimize)
		q := optQueue()
		q.Workers = 1
		if err := q.Run(bk, nd); err != nil {
			t.Fatalf("run: %v\n%s", err, src)
		}
		return oc
	}
	vm := run(false, true)
	for name, alt := range map[string][]float64{"vm-noopt": run(false, false), "interp": run(true, false)} {
		for i := range vm {
			if math.Float64bits(vm[i]) != math.Float64bits(alt[i]) {
				t.Fatalf("engines disagree at o[%d]: vm=%v %s=%v\n%s", i, vm[i], name, alt[i], src)
			}
		}
	}
	return vm
}

// threeWayFloat is threeWayDouble for float32 buffers.
func threeWayFloat(t *testing.T, src string, a, b, o []float32) []float32 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	kern, err := prog.Kernel("k")
	if err != nil {
		t.Fatal(err)
	}
	nd := clsim.NDRange{Global: [2]int{4, 1}, Local: [2]int{1, 1}}
	run := func(forceInterp, optimize bool) []float32 {
		ac, bc, oc := append([]float32(nil), a...), append([]float32(nil), b...), append([]float32(nil), o...)
		bk, err := kern.Bind(ac, bc, oc)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		bk.SetInterp(forceInterp)
		bk.SetOptimize(optimize)
		q := optQueue()
		q.Workers = 1
		if err := q.Run(bk, nd); err != nil {
			t.Fatalf("run: %v\n%s", err, src)
		}
		return oc
	}
	vm := run(false, true)
	for name, alt := range map[string][]float32{"vm-noopt": run(false, false), "interp": run(true, false)} {
		for i := range vm {
			if math.Float32bits(vm[i]) != math.Float32bits(alt[i]) {
				t.Fatalf("engines disagree at o[%d]: vm=%v %s=%v\n%s", i, vm[i], name, alt[i], src)
			}
		}
	}
	return vm
}

// TestMadFmaUnfusedContract pins the mad/fma double-rounding contract
// (see the opMad handler comment in vm.go): mad and fma evaluate as a
// rounded multiply followed by a rounded add — never a hardware fused
// multiply-add — in every engine and at every optimization level,
// across both precisions and vector widths. The operands are chosen so
// a fused evaluation produces different bits, which the test asserts as
// a precondition; the madacc.d/madacc.f superinstructions (the only
// handlers where Go's compiler could legally contract the expression)
// are explicitly exercised via the accumulate pattern.
func TestMadFmaUnfusedContract(t *testing.T) {
	withOptDebugPanic(t)
	const eps29 = 1.0 / (1 << 29)
	x, y, z := 1+eps29, 1-eps29, -1.0
	prod := float64(x * y)
	want := prod + z // x*y rounds to exactly 1.0 in double, so want == 0
	if fused := math.FMA(x, y, z); math.Float64bits(fused) == math.Float64bits(want) {
		t.Fatal("double operands do not distinguish fused from unfused evaluation")
	}
	lit := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	const eps14 = float32(1.0 / (1 << 14))
	x32, y32, z32 := 1+eps14, 1-eps14, float32(-1)
	prod32 := float32(x32 * y32)
	want32 := prod32 + z32 // x*y rounds to exactly 1.0f, so want32 == 0
	if fused := float32(math.FMA(float64(x32), float64(y32), float64(z32))); math.Float32bits(fused) == math.Float32bits(want32) {
		t.Fatal("float operands do not distinguish fused from unfused evaluation")
	}

	header := " const int gid = get_global_id(0);\n"
	// Buffer length n is chosen so the 4 work-items cover every element:
	// scalar bodies write o[gid] (n=4), vector bodies write lanes
	// 2*gid/4*gid onward (n=8/n=16).
	dcases := []struct {
		name, body string
		n          int
	}{
		// The accumulate shape lowers to madacc.d under the optimizer.
		{"double_madacc", "o[gid] = mad(a[gid], b[gid], o[gid]);", 4},
		{"double_fma", "o[gid] = fma(a[gid], b[gid], o[gid]);", 4},
		{"double_literals", "o[gid] = mad(" + lit(x) + ", " + lit(y) + ", " + lit(z) + ");", 4},
		{"double2_vector", "double2 av = vload2(gid, a); double2 bv = vload2(gid, b); double2 cv = vload2(gid, o); vstore2(mad(av, bv, cv), gid, o);", 8},
	}
	for _, tc := range dcases {
		t.Run(tc.name, func(t *testing.T) {
			src := "__kernel void k(__global double* a, __global double* b, __global double* o)\n{\n" + header + tc.body + "\n}"
			a, b, o := fill64(tc.n, x), fill64(tc.n, y), fill64(tc.n, z)
			got := threeWayDouble(t, src, a, b, o)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("o[%d] = %v (bits %#x), want unfused %v", i, got[i], math.Float64bits(got[i]), want)
				}
			}
		})
	}
	fcases := []struct {
		name, body string
		n          int
	}{
		{"float_madacc", "o[gid] = mad(a[gid], b[gid], o[gid]);", 4},
		{"float_fma", "o[gid] = fma(a[gid], b[gid], o[gid]);", 4},
		{"float4_vector", "float4 av = vload4(gid, a); float4 bv = vload4(gid, b); float4 cv = vload4(gid, o); vstore4(mad(av, bv, cv), gid, o);", 16},
	}
	for _, tc := range fcases {
		t.Run(tc.name, func(t *testing.T) {
			src := "__kernel void k(__global float* a, __global float* b, __global float* o)\n{\n" + header + tc.body + "\n}"
			a, b, o := fill32(tc.n, x32), fill32(tc.n, y32), fill32(tc.n, z32)
			got := threeWayFloat(t, src, a, b, o)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want32) {
					t.Fatalf("o[%d] = %v (bits %#x), want unfused %v", i, got[i], math.Float32bits(got[i]), want32)
				}
			}
		})
	}

	// The accumulate kernels must actually reach the typed
	// superinstructions, or the contract above tests the generic
	// handler only.
	for _, tc := range []struct{ elem, mnemonic string }{{"double", "madacc.d"}, {"float", "madacc.f"}} {
		src := "__kernel void k(__global " + tc.elem + "* a, __global " + tc.elem + "* b, __global " + tc.elem + "* o)\n{\n" +
			header + "o[gid] = mad(a[gid], b[gid], o[gid]);\n}"
		prog, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		kern, err := prog.Kernel("k")
		if err != nil {
			t.Fatal(err)
		}
		dis, err := kern.Disassemble(true)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(dis, tc.mnemonic) {
			t.Errorf("%s accumulate kernel does not lower to %s:\n%s", tc.elem, tc.mnemonic, dis)
		}
	}
}

func fill64(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func fill32(n int, v float32) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// generatedRunner compiles a generated schedule once and returns a
// closure that executes it with a chosen engine and fuel budget over
// deterministic packed inputs, returning the C buffer and run error.
func generatedRunner(t *testing.T, p codegen.Params, seed int64) func(forceInterp, optimize bool, fuel int64) ([]float64, error) {
	t.Helper()
	m, n, k := 2*p.Mwg, 2*p.Nwg, 2*p.Kwg
	src, err := p.GenerateSource()
	if err != nil {
		t.Fatalf("%s: generate: %v", p.Name(), err)
	}
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("%s: compile: %v\n%s", p.Name(), err, src)
	}
	kern, err := prog.Kernel(codegen.KernelName)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[float64](m, k, matrix.RowMajor)
	b := matrix.New[float64](k, n, matrix.RowMajor)
	c := matrix.New[float64](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
	nd := clsim.NDRange{
		Global: [2]int{m / p.Mwg * p.MdimC, n / p.Nwg * p.NdimC},
		Local:  [2]int{p.MdimC, p.NdimC},
	}
	return func(forceInterp, optimize bool, fuel int64) ([]float64, error) {
		cc := c.Clone()
		bound, err := kern.Bind(m, n, k, 1.5, -0.75, at.Data, bp.Data, cc.Data)
		if err != nil {
			t.Fatalf("%s: bind: %v", p.Name(), err)
		}
		bound.SetInterp(forceInterp)
		bound.SetOptimize(optimize)
		bound.SetFuel(fuel)
		q := optQueue()
		q.Workers = 1
		return cc.Data, q.Run(bound, nd)
	}
}

// TestOptimizerFuelParity pins structural fuel accounting: the minimal
// back-edge budget at which a generated kernel completes is identical
// with the optimizer on, off, and under the interpreter — and one unit
// below that budget all three engines fault with the same positioned
// message. The optimizer never adds or removes opJump instructions, so
// this must hold exactly, not approximately.
func TestOptimizerFuelParity(t *testing.T) {
	if testing.Short() {
		t.Skip("fuel threshold search")
	}
	withOptDebugPanic(t)
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 8, Nwg: 8, Kwg: 4, MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1, SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	run := generatedRunner(t, p, 97)
	const ceiling = int64(1 << 20)
	minFuel := func(forceInterp, optimize bool) int64 {
		if _, err := run(forceInterp, optimize, ceiling); err != nil {
			t.Fatalf("kernel faults even at fuel ceiling: %v", err)
		}
		lo, hi := int64(1), ceiling // run succeeds at hi
		for lo < hi {
			mid := lo + (hi-lo)/2
			if _, err := run(forceInterp, optimize, mid); err != nil {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	opt := minFuel(false, true)
	raw := minFuel(false, false)
	interp := minFuel(true, false)
	if opt != raw || opt != interp {
		t.Fatalf("fuel thresholds diverge: optimized %d, unoptimized %d, interp %d", opt, raw, interp)
	}
	t.Logf("minimal fuel %d in all three engines", opt)
	_, errOpt := run(false, true, opt-1)
	_, errRaw := run(false, false, opt-1)
	_, errInterp := run(true, false, opt-1)
	if errOpt == nil || errRaw == nil || errInterp == nil {
		t.Fatalf("expected faults one below threshold: opt=%v raw=%v interp=%v", errOpt, errRaw, errInterp)
	}
	if errOpt.Error() != errRaw.Error() || errOpt.Error() != errInterp.Error() {
		t.Fatalf("fault messages diverge one below threshold:\n opt:    %v\n raw:    %v\n interp: %v", errOpt, errRaw, errInterp)
	}
}

// TestOptimizerDifferentialRandomConfigs is the satellite quick.Check
// property: over random generated-kernel schedules, SetOptimize(false)
// and the optimized program produce Float64bits-identical outputs with
// ample fuel, and byte-identical positioned fault strings when starved.
func TestOptimizerDifferentialRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("differential property test")
	}
	withOptDebugPanic(t)
	f := func(algSel, mwgS, nwgS, kwgS, vwS, shSel, layA, layB uint8, seed int64) bool {
		lay := []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}
		p := codegen.Params{
			Precision: matrix.Double,
			Algorithm: codegen.Algorithms[algSel%3],
			MdimC:     4, NdimC: 4,
			Kwi:     2,
			SharedA: shSel&1 != 0,
			SharedB: shSel&2 != 0,
			LayoutA: lay[layA%3],
			LayoutB: lay[layB%3],
		}
		p.Mwg = []int{8, 16}[mwgS%2]
		p.Nwg = []int{8, 16}[nwgS%2]
		p.Kwg = []int{4, 8}[kwgS%2]
		p.VectorWidth = []int{1, 2}[vwS%2]
		p.MdimA = p.MdimC
		p.NdimB = p.NdimC
		if p.Algorithm == codegen.DB && !p.UsesLocalMemory() {
			p.SharedB = true
		}
		if p.Validate() != nil {
			return true
		}
		run := generatedRunner(t, p, seed)
		opt, errOpt := run(false, true, 1<<22)
		raw, errRaw := run(false, false, 1<<22)
		if errOpt != nil || errRaw != nil {
			t.Errorf("%s: unexpected fault with ample fuel: opt=%v raw=%v", p.Name(), errOpt, errRaw)
			return false
		}
		for i := range opt {
			if math.Float64bits(opt[i]) != math.Float64bits(raw[i]) {
				t.Errorf("%s: optimizer changed C[%d]: opt=%v raw=%v", p.Name(), i, opt[i], raw[i])
				return false
			}
		}
		_, starvedOpt := run(false, true, 8)
		_, starvedRaw := run(false, false, 8)
		if starvedOpt == nil || starvedRaw == nil {
			t.Errorf("%s: expected fuel faults at budget 8: opt=%v raw=%v", p.Name(), starvedOpt, starvedRaw)
			return false
		}
		if starvedOpt.Error() != starvedRaw.Error() {
			t.Errorf("%s: starved fault strings diverge:\n opt: %v\n raw: %v", p.Name(), starvedOpt, starvedRaw)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
