// Serve-path fault injection: a deterministic launch-hook injector for
// the multi-device scheduler's resilience machinery. Where Injector
// attacks the tuning engine per candidate, ServeInjector attacks the
// execution path per kernel launch — transient flakes, timeouts, and
// scripted per-device death/recovery windows — so chaos tests can drive
// the pool's retry/backoff, quarantine/probe, and degradation ladder
// with reproducible schedules.
package faultinject

import (
	"fmt"
	"sync"

	"oclgemm/internal/core"
)

// Death is the serve-path fault class for launches refused inside a
// device's scripted death window (reported by ServeInjector.Counts; the
// tuner-side ClassOf never returns it).
const Death Class = -1

// ServeConfig scripts a ServeInjector. Rates are probabilities (0..1)
// that one kernel launch draws that fault; rates must sum to at most 1.
// Decisions are pure functions of (seed, device, launch index), so a
// chaos run is reproducible regardless of worker scheduling.
type ServeConfig struct {
	Seed int64

	// TransientRate injects recoverable launch failures wrapping
	// core.ErrTransient — the scheduler should retry these in place
	// with backoff.
	TransientRate float64
	// TimeoutRate injects launch failures wrapping core.ErrTimeout —
	// modeled hung kernels reclaimed by the runtime's own watchdog, so
	// they fail fast instead of blocking a worker.
	TimeoutRate float64

	// DeadAt scripts a mid-run death: from the device's Nth launch
	// (1-based) onward, every launch on it fails with an unclassified
	// hard error, driving the consecutive-failure quarantine. ReviveAt
	// (optional, per device) ends the window: from that launch count on,
	// the device works again — launches inside the window still count.
	DeadAt   map[string]int
	ReviveAt map[string]int
}

// ServeInjector injects deterministic faults into scheduler kernel
// launches via its Hook. Safe for concurrent use.
type ServeInjector struct {
	cfg ServeConfig

	mu       sync.Mutex
	launches map[string]int // per-device launch counter
	counts   map[Class]int  // faults actually injected
	perDev   map[string]int // faults per device
}

// NewServe builds a serve-path injector; rates are validated against
// the unit interval.
func NewServe(cfg ServeConfig) (*ServeInjector, error) {
	total := cfg.TransientRate + cfg.TimeoutRate
	if total > 1 || cfg.TransientRate < 0 || cfg.TimeoutRate < 0 {
		return nil, fmt.Errorf("faultinject: serve rates must be non-negative and sum to <= 1, got %g", total)
	}
	return &ServeInjector{
		cfg:      cfg,
		launches: make(map[string]int),
		counts:   make(map[Class]int),
		perDev:   make(map[string]int),
	}, nil
}

// unit reuses the tuner injector's seeded hash (FNV-1a + murmur-style
// finalizer) over the serve labels.
func (si *ServeInjector) unit(labels ...string) float64 {
	in := Injector{cfg: Config{Seed: si.cfg.Seed}}
	return in.unit(labels...)
}

// Hook is the scheduler LaunchHook: it advances the device's launch
// clock and returns the scripted fault, if any. Errors wrap the core
// taxonomy so the scheduler can classify them (core.ErrTransient →
// retry with backoff; anything else → requeue and count toward
// quarantine).
func (si *ServeInjector) Hook(deviceID, kernelName string) error {
	si.mu.Lock()
	si.launches[deviceID]++
	n := si.launches[deviceID]
	si.mu.Unlock()

	if at, ok := si.cfg.DeadAt[deviceID]; ok && n >= at {
		if rev, ok := si.cfg.ReviveAt[deviceID]; !ok || n < rev {
			si.record(Death, deviceID)
			return fmt.Errorf("faultinject: device %s in scripted death window (launch %d)", deviceID, n)
		}
	}

	u := si.unit("serve", deviceID, fmt.Sprint(n))
	switch {
	case u < si.cfg.TransientRate:
		si.record(Transient, deviceID)
		return fmt.Errorf("%w: injected serve flake on %s (launch %d)", core.ErrTransient, deviceID, n)
	case u < si.cfg.TransientRate+si.cfg.TimeoutRate:
		si.record(Hang, deviceID)
		return fmt.Errorf("%w: injected launch timeout on %s (launch %d)", core.ErrTimeout, deviceID, n)
	}
	return nil
}

func (si *ServeInjector) record(c Class, deviceID string) {
	si.mu.Lock()
	si.counts[c]++
	si.perDev[deviceID]++
	si.mu.Unlock()
}

// Counts returns how many faults of each class were actually injected.
func (si *ServeInjector) Counts() map[Class]int {
	si.mu.Lock()
	defer si.mu.Unlock()
	out := make(map[Class]int, len(si.counts))
	for c, n := range si.counts {
		out[c] = n
	}
	return out
}

// Launches returns the per-device launch totals the hook has seen.
func (si *ServeInjector) Launches() map[string]int {
	si.mu.Lock()
	defer si.mu.Unlock()
	out := make(map[string]int, len(si.launches))
	for d, n := range si.launches {
		out[d] = n
	}
	return out
}
