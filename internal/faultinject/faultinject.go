// Package faultinject is a deterministic, seeded fault injector for the
// tuning engine: it wraps a core.CtxEvaluator (and offers a clsim launch
// hook) to inject compile failures, hung kernels, transient errors,
// measurement noise, panics, and wrong-result kernels at configurable
// rates. Every decision is a pure function of (seed, candidate name), so
// a chaos run is reproducible regardless of worker scheduling — the test
// harness for the engine's retry, timeout, panic-isolation, correctness
// gate and checkpoint/resume machinery.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"

	"context"

	"oclgemm/internal/codegen"
	"oclgemm/internal/core"
	"oclgemm/internal/device"
)

// Class is the fault injected for one candidate. Classes are mutually
// exclusive: the configured rates partition the unit interval, and the
// candidate's hash picks the bucket.
type Class int

// Fault classes.
const (
	None Class = iota
	Compile
	Hang
	Transient
	Panic
	Wrong
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Compile:
		return "compile"
	case Hang:
		return "hang"
	case Transient:
		return "transient"
	case Panic:
		return "panic"
	case Wrong:
		return "wrong"
	case Death:
		return "death"
	default:
		return "none"
	}
}

// Config sets the injection rates; each is the probability (0..1) that
// a candidate falls into that class. Rates must sum to at most 1.
type Config struct {
	Seed int64

	CompileRate     float64 // fail with core.ErrCompile
	HangRate        float64 // block until the evaluation context is cancelled
	TransientRate   float64 // fail with core.ErrTransient, then recover
	PanicRate       float64 // panic inside the evaluation
	WrongResultRate float64 // compute fast-but-wrong kernels

	// TransientFails is how many attempts of a transient-marked
	// candidate fail before it succeeds (default 1 — one retry
	// recovers it).
	TransientFails int
	// NoiseFrac perturbs successful measurements multiplicatively by
	// up to ±NoiseFrac (deterministic per candidate and size).
	NoiseFrac float64
	// WrongBoost inflates wrong-result kernels' scores so they tempt
	// the ranking and the correctness gate must catch them
	// (default 1.25).
	WrongBoost float64
}

// Injector wraps evaluators and verifiers with deterministic faults and
// records what it actually injected for the chaos tests' accounting.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[string]int   // transient attempt counter per candidate
	injected map[string]Class // faults observed during evaluation
	gated    map[string]bool  // wrong-result kernels the verifier caught
}

// New creates an injector; rates are validated against the unit
// interval.
func New(cfg Config) (*Injector, error) {
	total := cfg.CompileRate + cfg.HangRate + cfg.TransientRate + cfg.PanicRate + cfg.WrongResultRate
	if total > 1 || cfg.CompileRate < 0 || cfg.HangRate < 0 || cfg.TransientRate < 0 ||
		cfg.PanicRate < 0 || cfg.WrongResultRate < 0 {
		return nil, fmt.Errorf("faultinject: rates must be non-negative and sum to <= 1, got %g", total)
	}
	if cfg.TransientFails <= 0 {
		cfg.TransientFails = 1
	}
	if cfg.WrongBoost <= 0 {
		cfg.WrongBoost = 1.25
	}
	return &Injector{
		cfg:      cfg,
		attempts: make(map[string]int),
		injected: make(map[string]Class),
		gated:    make(map[string]bool),
	}, nil
}

// unit hashes the labels with the seed into [0,1). FNV-1a alone
// under-mixes trailing-byte differences into the top bits, so a
// murmur3-style finalizer spreads the state before the 53 bits are
// taken.
func (in *Injector) unit(labels ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", in.cfg.Seed)
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	s := h.Sum64()
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	s *= 0xc4ceb9fe1a85ec53
	s ^= s >> 33
	return float64(s>>11) / float64(1<<53)
}

// ClassOf returns the fault class assigned to a candidate name.
func (in *Injector) ClassOf(name string) Class {
	u := in.unit("class", name)
	for _, b := range []struct {
		rate float64
		c    Class
	}{
		{in.cfg.CompileRate, Compile},
		{in.cfg.HangRate, Hang},
		{in.cfg.TransientRate, Transient},
		{in.cfg.PanicRate, Panic},
		{in.cfg.WrongResultRate, Wrong},
	} {
		if u < b.rate {
			return b.c
		}
		u -= b.rate
	}
	return None
}

// IsWrong reports whether the candidate is an injected wrong-result
// kernel (the selection must never be one).
func (in *Injector) IsWrong(p *codegen.Params) bool { return in.ClassOf(p.Name()) == Wrong }

func (in *Injector) record(name string, c Class) {
	in.mu.Lock()
	in.injected[name] = c
	in.mu.Unlock()
}

// noisy perturbs a successful measurement deterministically.
func (in *Injector) noisy(name string, n int, gf float64) float64 {
	if in.cfg.NoiseFrac <= 0 {
		return gf
	}
	u := in.unit("noise", name, fmt.Sprint(n))
	return gf * (1 + in.cfg.NoiseFrac*(2*u-1))
}

// Evaluator wraps base with the configured faults.
func (in *Injector) Evaluator(base core.CtxEvaluator) core.CtxEvaluator {
	return func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		name := p.Name()
		switch in.ClassOf(name) {
		case Compile:
			in.record(name, Compile)
			return 0, fmt.Errorf("%w: injected compile failure", core.ErrCompile)
		case Hang:
			in.record(name, Hang)
			<-ctx.Done() // hung kernel: only the timeout reclaims it
			return 0, ctx.Err()
		case Panic:
			in.record(name, Panic)
			panic("faultinject: injected panic in evaluator")
		case Transient:
			in.mu.Lock()
			in.attempts[name]++
			a := in.attempts[name]
			in.mu.Unlock()
			if a <= in.cfg.TransientFails {
				in.record(name, Transient)
				return 0, fmt.Errorf("%w: injected flake (attempt %d)", core.ErrTransient, a)
			}
			gf, err := base(ctx, d, p, n)
			return in.noisy(name, n, gf), err
		case Wrong:
			in.record(name, Wrong)
			gf, err := base(ctx, d, p, n)
			if err != nil {
				return gf, err
			}
			// Fast but wrong: the score tempts the ranking, the gate
			// must disqualify it.
			return in.noisy(name, n, gf) * in.cfg.WrongBoost, nil
		default:
			gf, err := base(ctx, d, p, n)
			if err != nil {
				return gf, err
			}
			return in.noisy(name, n, gf), nil
		}
	}
}

// Verifier wraps base (nil allowed) so the correctness gate catches
// exactly the injected wrong-result kernels.
func (in *Injector) Verifier(base core.Verifier) core.Verifier {
	return func(d *device.Spec, p *codegen.Params) error {
		name := p.Name()
		if in.ClassOf(name) == Wrong {
			in.mu.Lock()
			in.gated[name] = true
			in.mu.Unlock()
			return fmt.Errorf("%w: injected wrong-result kernel", core.ErrWrongResult)
		}
		if base != nil {
			return base(d, p)
		}
		return nil
	}
}

// LaunchHook returns a clsim Queue hook failing kernel launches at
// CompileRate (keyed by kernel name, independent of the evaluator
// faults).
func (in *Injector) LaunchHook() func(kernelName string) error {
	return func(kernelName string) error {
		if in.unit("launch", kernelName) < in.cfg.CompileRate {
			return fmt.Errorf("faultinject: injected launch failure for kernel %s", kernelName)
		}
		return nil
	}
}

// InjectedCounts returns the number of distinct candidates per fault
// class actually injected during evaluation (deterministic for a given
// seed and candidate set).
func (in *Injector) InjectedCounts() map[Class]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Class]int)
	for _, c := range in.injected {
		out[c]++
	}
	return out
}

// GatedWrongResults returns how many injected wrong-result kernels the
// correctness gate disqualified.
func (in *Injector) GatedWrongResults() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.gated)
}
