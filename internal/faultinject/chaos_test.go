package faultinject

import (
	"reflect"
	"testing"
	"time"

	"oclgemm/internal/core"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// chaosConfig injects ~35% mixed faults: the acceptance bar for the
// fault-tolerant engine.
var chaosConfig = Config{
	Seed:            1,
	CompileRate:     0.10,
	HangRate:        0.05,
	TransientRate:   0.08,
	PanicRate:       0.04,
	WrongResultRate: 0.08,
	NoiseFrac:       0.02,
}

// chaosSearch runs a full three-stage search with the injector wired
// into every layer: evaluator faults, timeout + retry middleware, and
// the correctness gate.
func chaosSearch(t *testing.T, cfg Config, retries int) (*core.Selection, *Injector) {
	t.Helper()
	in := mustNew(t, cfg)
	tn, err := core.New(core.Options{
		Device:        device.Tahiti(),
		Precision:     matrix.Single,
		MaxCandidates: 600,
		Finalists:     10,
		CtxEvaluator:  in.Evaluator(core.AdaptEvaluator(core.ModelEvaluator)),
		EvalTimeout:   5 * time.Millisecond,
		MaxRetries:    retries,
		RetryBackoff:  time.Microsecond,
		Verify:        true,
		Verifier:      in.Verifier(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	return sel, in
}

// The search must complete under ≥25% mixed faults, never select an
// injected-fault kernel, and account every injected fault in the
// per-cause reject tally.
func TestChaosSearchSurvivesMixedFaults(t *testing.T) {
	sel, in := chaosSearch(t, chaosConfig, 2)

	// The selection must be a clean kernel: wrong-result kernels are
	// disqualified by the gate, failed kernels never reach the ranking.
	if in.IsWrong(&sel.Best.Params) {
		t.Fatalf("selected an injected wrong-result kernel: %s", sel.Best.Params.Name())
	}
	switch c := in.ClassOf(sel.Best.Params.Name()); c {
	case None, Transient: // transient recovered via retry: acceptable
	default:
		t.Fatalf("selected a kernel with injected fault %s", c)
	}
	for _, f := range sel.Finalists {
		if in.IsWrong(&f.Params) {
			t.Errorf("wrong-result kernel survived the gate: %s", f.Params.Name())
		}
	}
	if sel.Best.Best <= 0 || len(sel.Best.Curve) == 0 {
		t.Error("winner must carry a real stage-2 curve")
	}

	// Reject counts must equal the injected fault tally, cause by
	// cause.
	counts := in.InjectedCounts()
	by := sel.Stats.RejectedBy
	if by[core.RejectCompile] != counts[Compile] {
		t.Errorf("compile rejects %d != injected %d", by[core.RejectCompile], counts[Compile])
	}
	if by[core.RejectTimeout] != counts[Hang] {
		t.Errorf("timeout rejects %d != injected hangs %d", by[core.RejectTimeout], counts[Hang])
	}
	if by[core.RejectPanic] != counts[Panic] {
		t.Errorf("panic rejects %d != injected panics %d", by[core.RejectPanic], counts[Panic])
	}
	if by[core.RejectTransient] != 0 {
		t.Errorf("transient faults must be recovered by retry, %d rejected", by[core.RejectTransient])
	}
	if counts[Transient] == 0 {
		t.Error("chaos run injected no transient faults; rates too low to prove retry")
	}
	if by[core.RejectWrongResult] != in.GatedWrongResults() {
		t.Errorf("wrong-result rejects %d != gated %d", by[core.RejectWrongResult], in.GatedWrongResults())
	}

	// Ledger: every measured candidate is either tested or rejected
	// for an evaluation-level cause.
	evalRejects := by[core.RejectCompile] + by[core.RejectTimeout] + by[core.RejectPanic] + by[core.RejectTransient]
	if sel.Stats.Tested+evalRejects != sel.Stats.Measured {
		t.Errorf("tested %d + eval rejects %d != measured %d",
			sel.Stats.Tested, evalRejects, sel.Stats.Measured)
	}
	injectedTotal := counts[Compile] + counts[Hang] + counts[Panic]
	if injectedTotal == 0 || evalRejects != injectedTotal {
		t.Errorf("eval rejects %d != injected fatal faults %d", evalRejects, injectedTotal)
	}
	if sel.Stats.Verified != len(sel.Finalists) {
		t.Errorf("verified %d != finalists %d", sel.Stats.Verified, len(sel.Finalists))
	}
}

// The same seed must reproduce the identical selection and statistics
// regardless of goroutine scheduling.
func TestChaosSearchDeterministic(t *testing.T) {
	a, _ := chaosSearch(t, chaosConfig, 2)
	b, _ := chaosSearch(t, chaosConfig, 2)
	if a.Best.Params != b.Best.Params {
		t.Errorf("chaos selection must be deterministic:\n%s\n%s",
			a.Best.Params.Name(), b.Best.Params.Name())
	}
	if a.Best.Best != b.Best.Best {
		t.Errorf("best performance differs: %v vs %v", a.Best.Best, b.Best.Best)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// Without retries, the injected transient faults must surface in the
// reject tally instead (the engine degrades predictably).
func TestChaosTransientsRejectedWithoutRetry(t *testing.T) {
	sel, in := chaosSearch(t, chaosConfig, 0)
	counts := in.InjectedCounts()
	if counts[Transient] == 0 {
		t.Fatal("no transient faults injected")
	}
	if got := sel.Stats.RejectedBy[core.RejectTransient]; got != counts[Transient] {
		t.Errorf("without retry, transient rejects %d != injected %d", got, counts[Transient])
	}
}
