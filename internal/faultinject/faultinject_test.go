package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"oclgemm/internal/codegen"
	"oclgemm/internal/core"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewRejectsBadRates(t *testing.T) {
	if _, err := New(Config{CompileRate: 0.8, HangRate: 0.3}); err == nil {
		t.Error("rates summing past 1 must be rejected")
	}
	if _, err := New(Config{CompileRate: -0.1}); err == nil {
		t.Error("negative rates must be rejected")
	}
}

func TestClassOfDeterministicAndDistributed(t *testing.T) {
	cfg := Config{Seed: 7, CompileRate: 0.1, HangRate: 0.1, TransientRate: 0.1,
		PanicRate: 0.05, WrongResultRate: 0.1}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	counts := map[Class]int{}
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("candidate-%d", i)
		if a.ClassOf(name) != b.ClassOf(name) {
			t.Fatalf("same seed must classify %q identically", name)
		}
		counts[a.ClassOf(name)]++
	}
	// Each 10% class should land in a loose band around 200/2000.
	for _, c := range []Class{Compile, Hang, Transient, Wrong} {
		if n := counts[c]; n < 100 || n > 320 {
			t.Errorf("class %s hit %d of 2000, want ~200", c, n)
		}
	}
	other := mustNew(t, Config{Seed: 8, CompileRate: 0.1, HangRate: 0.1,
		TransientRate: 0.1, PanicRate: 0.05, WrongResultRate: 0.1})
	diff := 0
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("candidate-%d", i)
		if a.ClassOf(name) != other.ClassOf(name) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("a different seed must reshuffle fault assignments")
	}
}

func TestEvaluatorInjectsEachClass(t *testing.T) {
	// Rate 1.0 per run isolates one class at a time.
	base := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		return 100, nil
	}
	dev := device.Tahiti()
	p := codegen.Params{Precision: matrix.Single, Mwg: 32, Nwg: 32, Kwg: 32,
		MdimC: 8, NdimC: 8, MdimA: 8, NdimB: 8, Kwi: 2, VectorWidth: 1}

	in := mustNew(t, Config{CompileRate: 1})
	if _, err := in.Evaluator(base)(context.Background(), dev, &p, 64); !errors.Is(err, core.ErrCompile) {
		t.Errorf("compile class: got %v", err)
	}

	in = mustNew(t, Config{HangRate: 1})
	ev := core.WithTimeout(in.Evaluator(base), 5*time.Millisecond)
	if _, err := ev(context.Background(), dev, &p, 64); !errors.Is(err, core.ErrTimeout) {
		t.Errorf("hang class under timeout middleware: got %v", err)
	}

	in = mustNew(t, Config{TransientRate: 1, TransientFails: 2})
	flaky := in.Evaluator(base)
	for i := 0; i < 2; i++ {
		if _, err := flaky(context.Background(), dev, &p, 64); !errors.Is(err, core.ErrTransient) {
			t.Fatalf("transient attempt %d: got %v", i, err)
		}
	}
	if gf, err := flaky(context.Background(), dev, &p, 64); err != nil || gf != 100 {
		t.Errorf("transient must recover after TransientFails: (%v, %v)", gf, err)
	}

	in = mustNew(t, Config{PanicRate: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic class must panic")
			}
		}()
		in.Evaluator(base)(context.Background(), dev, &p, 64)
	}()

	in = mustNew(t, Config{WrongResultRate: 1, WrongBoost: 2})
	if gf, err := in.Evaluator(base)(context.Background(), dev, &p, 64); err != nil || gf != 200 {
		t.Errorf("wrong class must boost the score: (%v, %v)", gf, err)
	}
	if err := in.Verifier(nil)(dev, &p); !errors.Is(err, core.ErrWrongResult) {
		t.Errorf("verifier must reject wrong-result kernels: %v", err)
	}
	if in.GatedWrongResults() != 1 {
		t.Errorf("gated count = %d, want 1", in.GatedWrongResults())
	}
}

func TestNoiseIsDeterministicAndBounded(t *testing.T) {
	base := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		return 100, nil
	}
	in := mustNew(t, Config{Seed: 3, NoiseFrac: 0.05})
	p := codegen.Params{Mwg: 32, Nwg: 32, Kwg: 32,
		MdimC: 8, NdimC: 8, MdimA: 8, NdimB: 8, Kwi: 2, VectorWidth: 1}
	ev := in.Evaluator(base)
	a, _ := ev(context.Background(), device.Tahiti(), &p, 64)
	b, _ := ev(context.Background(), device.Tahiti(), &p, 64)
	if a != b {
		t.Errorf("noise must be deterministic per (candidate, size): %v vs %v", a, b)
	}
	if a < 95 || a > 105 {
		t.Errorf("noise must stay within ±5%%: %v", a)
	}
	c, _ := ev(context.Background(), device.Tahiti(), &p, 128)
	if c == a {
		t.Logf("note: different sizes coincided (possible but unlikely)")
	}
}
