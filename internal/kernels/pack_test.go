package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func runPack(t *testing.T, pp codegen.PackParams, src *matrix.Matrix[float64], r, c int) []float64 {
	t.Helper()
	dst := make([]float64, r*c)
	pk, err := NewPack(pp, src.Rows, src.Cols, src.Stride, r, c, src.Data, dst)
	if err != nil {
		t.Fatalf("NewPack: %v", err)
	}
	q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
	if err := q.RunLockstep(pk, pk.NDRange()); err != nil {
		t.Fatalf("pack run: %v", err)
	}
	return dst
}

func TestPackMatchesHostPack(t *testing.T) {
	for _, layout := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
		for _, transpose := range []bool{false, true} {
			src := matrix.New[float64](13, 9, matrix.RowMajor)
			src.FillRandom(rand.New(rand.NewSource(1)))
			dr, dc := 13, 9
			if transpose {
				dr, dc = 9, 13
			}
			r := matrix.PadDim(dr, 4)
			c := matrix.PadDim(dc, 8)
			pp := codegen.PackParams{
				Precision: matrix.Double, Layout: layout,
				Rb: 4, Cb: 8, Transpose: transpose,
			}
			got := runPack(t, pp, src, r, c)
			want := matrix.Pack(src, transpose, r, c, 4, 8, layout)
			for i, v := range want.Data {
				if got[i] != v {
					t.Fatalf("layout=%v transpose=%v: element %d differs: %v vs %v",
						layout, transpose, i, got[i], v)
				}
			}
		}
	}
}

func TestPackStridedSource(t *testing.T) {
	// A view with stride > cols must pack correctly.
	parent := matrix.New[float64](16, 16, matrix.RowMajor)
	parent.FillSequential()
	v := parent.View(3, 2, 7, 6)
	pp := codegen.PackParams{Precision: matrix.Double, Layout: matrix.LayoutCBL, Rb: 4, Cb: 4}
	got := runPack(t, pp, v, 8, 8)
	want := matrix.Pack(v, false, 8, 8, 4, 4, matrix.LayoutCBL)
	for i := range want.Data {
		if got[i] != want.Data[i] {
			t.Fatalf("strided pack differs at %d", i)
		}
	}
}

func TestPackErrors(t *testing.T) {
	pp := codegen.PackParams{Precision: matrix.Double, Layout: matrix.LayoutCBL, Rb: 4, Cb: 4}
	s := make([]float64, 16)
	d := make([]float64, 64)
	if _, err := NewPack(pp, 4, 4, 4, 7, 8, s, d); err == nil {
		t.Error("unpadded destination must fail")
	}
	if _, err := NewPack(pp, 4, 4, 2, 8, 8, s, d); err == nil {
		t.Error("LD below SC must fail")
	}
	if _, err := NewPack(pp, 4, 4, 4, 8, 8, s[:3], d); err == nil {
		t.Error("short source must fail")
	}
	if _, err := NewPack(pp, 4, 4, 4, 8, 8, s, d[:3]); err == nil {
		t.Error("short destination must fail")
	}
	bad := pp
	bad.Rb = 0
	if _, err := NewPack(bad, 4, 4, 4, 8, 8, s, d); err == nil {
		t.Error("invalid params must fail")
	}
}

// Property: device pack agrees with host pack over random shapes.
func TestPackProperty(t *testing.T) {
	f := func(rs, cs, rbS, cbS, layS uint8, transpose bool, seed int64) bool {
		rows := int(rs%12) + 1
		cols := int(cs%12) + 1
		rb := int(rbS%4) + 1
		cb := int(cbS%4) + 1
		layout := []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layS%3]
		src := matrix.New[float64](rows, cols, matrix.RowMajor)
		src.FillRandom(rand.New(rand.NewSource(seed)))
		dr, dc := rows, cols
		if transpose {
			dr, dc = cols, rows
		}
		r := matrix.PadDim(dr, rb)
		c := matrix.PadDim(dc, cb)
		pp := codegen.PackParams{Precision: matrix.Double, Layout: layout, Rb: rb, Cb: cb, Transpose: transpose}
		dst := make([]float64, r*c)
		pk, err := NewPack(pp, src.Rows, src.Cols, src.Stride, r, c, src.Data, dst)
		if err != nil {
			return false
		}
		q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
		if err := q.RunLockstep(pk, pk.NDRange()); err != nil {
			return false
		}
		want := matrix.Pack(src, transpose, r, c, rb, cb, layout)
		for i := range want.Data {
			if dst[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
