package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// runKernelPath packs the operands, runs the GEMM kernel with the fast
// path toggled as requested, and returns the raw result buffer plus the
// queue statistics of the launch.
func runKernelPath[T matrix.Scalar](t *testing.T, p codegen.Params, m, n, k int,
	alpha, beta T, a, b, c *matrix.Matrix[T], fast bool) ([]T, clsim.QueueStats) {
	t.Helper()
	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
	cc := c.Clone()
	kern, err := NewGEMM(p, m, n, k, alpha, at.Data, bp.Data, beta, cc.Data)
	if err != nil {
		t.Fatalf("NewGEMM: %v", err)
	}
	kern.SetFastPath(fast)
	q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
	if err := q.RunLockstep(kern, kern.NDRange()); err != nil {
		t.Fatalf("RunLockstep (fast=%v): %v", fast, err)
	}
	return cc.Data, q.Stats()
}

// compareFastGeneric runs one parameter point down both paths and
// demands bit-identical output and identical barrier statistics.
func compareFastGeneric[T matrix.Scalar](t *testing.T, p codegen.Params, m, n, k int, alpha, beta T, seed int64) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid test params %s: %v", p.Name(), err)
	}
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[T](m, k, matrix.RowMajor)
	b := matrix.New[T](k, n, matrix.RowMajor)
	c := matrix.New[T](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)

	got, statsFast := runKernelPath(t, p, m, n, k, alpha, beta, a, b, c, true)
	want, statsGen := runKernelPath(t, p, m, n, k, alpha, beta, a, b, c, false)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d not bit-identical: fast %v, generic %v", p.Name(), i, got[i], want[i])
		}
	}
	if statsFast.BarriersHit != statsGen.BarriersHit {
		t.Errorf("%s: barrier count diverged: fast %d, generic %d",
			p.Name(), statsFast.BarriersHit, statsGen.BarriersHit)
	}
	if statsFast.WorkGroupsRun != statsGen.WorkGroupsRun || statsFast.WorkItemsRun != statsGen.WorkItemsRun {
		t.Errorf("%s: launch stats diverged: fast %+v, generic %+v", p.Name(), statsFast, statsGen)
	}
}

// The dispatch table: unit-stride parameter points select the unit
// micro-kernel, strided ones fall back to generic, and SetFastPath
// overrides in both directions.
func TestMicroDispatch(t *testing.T) {
	buf := make([]float64, 16*16)
	mk := func(p codegen.Params) *GEMM[float64] {
		kern, err := NewGEMM(p, 16, 16, 16, 1.0, buf, buf, 0.0, buf)
		if err != nil {
			t.Fatal(err)
		}
		return kern
	}
	if got := mk(base()).Micro(); got != "unit" {
		t.Errorf("unit-stride config dispatched to %q, want unit", got)
	}
	for _, st := range [][2]bool{{true, false}, {false, true}, {true, true}} {
		p := base()
		p.StrideM, p.StrideN = st[0], st[1]
		if got := mk(p).Micro(); got != "generic" {
			t.Errorf("strided config %v dispatched to %q, want generic", st, got)
		}
	}
	kern := mk(base())
	kern.SetFastPath(false)
	if kern.Micro() != "generic" {
		t.Error("SetFastPath(false) must force the generic micro-kernel")
	}
	kern.SetFastPath(true)
	if kern.Micro() != "unit" {
		t.Error("SetFastPath(true) must re-run dispatch")
	}
}

// Bit-identity of the unit micro-kernel against the generic reference
// across every schedule, shared-memory mode, layout pair and vector
// width the fast path claims to cover.
func TestFastMatchesGenericAllSchedules(t *testing.T) {
	for _, alg := range []codegen.Algorithm{codegen.BA, codegen.PL, codegen.DB} {
		for _, sh := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			p := base()
			p.Algorithm = alg
			p.SharedA, p.SharedB = sh[0], sh[1]
			if alg == codegen.DB {
				p.Kwg = 8 // even halves
				if !p.UsesLocalMemory() {
					continue // DB requires local memory
				}
			}
			m, n, k := 16, 24, 32
			compareFastGeneric(t, p, m, n, k, 1.25, -0.5, 21)
			compareFastGeneric(t, p, m, n, k, 2.0, 0.0, 22) // beta == 0 branch
		}
	}
}

func TestFastMatchesGenericLayouts(t *testing.T) {
	for _, la := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
		for _, lb := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
			p := base()
			p.LayoutA, p.LayoutB = la, lb
			p.SharedB = false // exercise direct global reads through panelGeom
			compareFastGeneric(t, p, 24, 16, 12, 1.0, 1.0, 23)
		}
	}
}

func TestFastMatchesGenericVectorWidths(t *testing.T) {
	for _, vw := range []int{1, 2, 4} {
		p := base()
		p.Nwg = 16 // Nwi = 4
		p.VectorWidth = vw
		compareFastGeneric(t, p, 16, 32, 12, -1.5, 0.75, 24)
	}
}

func TestFastMatchesGenericFloat32(t *testing.T) {
	for _, alg := range []codegen.Algorithm{codegen.BA, codegen.PL} {
		p := base()
		p.Precision = matrix.Single
		p.Algorithm = alg
		compareFastGeneric[float32](t, p, 16, 16, 16, 1.5, -0.25, 25)
	}
}

// Strided parameter points run the generic path through the dispatch;
// the combined kernel must still match the plain reference (covered by
// TestBAStrideModes) and, trivially, itself — here we pin that the
// dispatch really selected generic so the fast-path coverage claims in
// the other tests are meaningful.
func TestStridedDispatchStaysGeneric(t *testing.T) {
	p := base()
	p.StrideM, p.StrideN = true, true
	a, b, c := randMats(16, 16, 12, 26)
	got := runKernel(t, p, 16, 16, 12, 1.25, a, b, c, -0.5)
	want := refGEMM(1.25, a, b, c, -0.5)
	if d := matrix.MaxRelDiff(got, want); d > 1e-12 {
		t.Errorf("strided config diff %g vs reference", d)
	}
}

// Property: a random walk over the valid parameter grid (all three
// algorithms, both precisions' worth of shapes, layouts, shared modes,
// vector widths) never separates the two paths by a single bit.
func TestFastGenericPropertyBitIdentical(t *testing.T) {
	f := func(algSel, mdim, ndim, mwiS, nwiS, kwgS, kwiS, vwS, shSel, layA, layB uint8, seed int64) bool {
		p := codegen.Params{
			Precision: matrix.Double,
			Algorithm: codegen.Algorithms[algSel%3],
			MdimC:     []int{2, 4}[mdim%2],
			NdimC:     []int{2, 4}[ndim%2],
			Kwi:       []int{1, 2}[kwiS%2],
			SharedA:   shSel&1 != 0,
			SharedB:   shSel&2 != 0,
			LayoutA:   []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layA%3],
			LayoutB:   []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layB%3],
		}
		p.Mwg = p.MdimC * (int(mwiS%3) + 1)
		p.Nwg = p.NdimC * []int{2, 4}[nwiS%2]
		p.Kwg = 4 * (int(kwgS%2) + 1)
		p.VectorWidth = []int{1, 2}[vwS%2]
		p.MdimA = p.MdimC
		p.NdimB = p.NdimC
		if p.Algorithm == codegen.DB && !p.UsesLocalMemory() {
			p.SharedB = true
		}
		if err := p.Validate(); err != nil {
			return true // not a valid draw; skip
		}
		m, n, k := p.Mwg*2, p.Nwg, p.Kwg*2
		rng := rand.New(rand.NewSource(seed))
		a := matrix.New[float64](m, k, matrix.RowMajor)
		b := matrix.New[float64](k, n, matrix.RowMajor)
		c := matrix.New[float64](m, n, matrix.RowMajor)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c.FillRandom(rng)
		got, sf := runKernelPath(t, p, m, n, k, 1.25, -0.5, a, b, c, true)
		want, sg := runKernelPath(t, p, m, n, k, 1.25, -0.5, a, b, c, false)
		if sf.BarriersHit != sg.BarriersHit {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Pack: the row-run copy fast path must be bit-identical to the
// per-element generic path for every layout, transpose flag and
// partial-tile geometry (source smaller than the padded destination).
func TestPackFastMatchesGeneric(t *testing.T) {
	for _, layout := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
		for _, transpose := range []bool{false, true} {
			for _, dims := range [][2]int{{13, 9}, {16, 8}, {3, 17}} {
				src := matrix.New[float64](dims[0], dims[1], matrix.RowMajor)
				src.FillRandom(rand.New(rand.NewSource(27)))
				dr, dc := dims[0], dims[1]
				if transpose {
					dr, dc = dc, dr
				}
				r := matrix.PadDim(dr, 4)
				c := matrix.PadDim(dc, 8)
				pp := codegen.PackParams{
					Precision: matrix.Double, Layout: layout,
					Rb: 4, Cb: 8, Transpose: transpose,
				}
				run := func(fast bool) ([]float64, clsim.QueueStats) {
					dst := make([]float64, r*c)
					pk, err := NewPack(pp, src.Rows, src.Cols, src.Stride, r, c, src.Data, dst)
					if err != nil {
						t.Fatal(err)
					}
					pk.SetFastPath(fast)
					q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
					if err := q.RunLockstep(pk, pk.NDRange()); err != nil {
						t.Fatal(err)
					}
					return dst, q.Stats()
				}
				got, sf := run(true)
				want, sg := run(false)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("layout=%v transpose=%v %dx%d: element %d differs: fast %v, generic %v",
							layout, transpose, dims[0], dims[1], i, got[i], want[i])
					}
				}
				if sf.BarriersHit != sg.BarriersHit {
					t.Errorf("layout=%v transpose=%v: pack barrier count diverged: fast %d, generic %d",
						layout, transpose, sf.BarriersHit, sg.BarriersHit)
				}
			}
		}
	}
}

// Pack with a strided source view down both paths.
func TestPackFastStridedSource(t *testing.T) {
	parent := matrix.New[float64](16, 16, matrix.RowMajor)
	parent.FillSequential()
	v := parent.View(3, 2, 7, 6)
	pp := codegen.PackParams{Precision: matrix.Double, Layout: matrix.LayoutRBL, Rb: 4, Cb: 4}
	got := runPack(t, pp, v, 8, 8)
	want := matrix.Pack(v, false, 8, 8, 4, 4, matrix.LayoutRBL)
	for i := range want.Data {
		if got[i] != want.Data[i] {
			t.Fatalf("strided fast pack differs at %d", i)
		}
	}
}

// Selection counters: every executed work-group increments the
// micro-kernel counter of the path that served it.
func TestMicroSelectionCounters(t *testing.T) {
	reg := obs.NewRegistry()
	a, b, c := randMats(16, 16, 12, 28)
	run := func(p codegen.Params) {
		at := matrix.Pack(a, true, 12, 16, p.Kwg, p.Mwg, p.LayoutA)
		bp := matrix.Pack(b, false, 12, 16, p.Kwg, p.Nwg, p.LayoutB)
		cc := c.Clone()
		kern, err := NewGEMM(p, 16, 16, 12, 1.0, at.Data, bp.Data, 0.0, cc.Data)
		if err != nil {
			t.Fatal(err)
		}
		kern.SetObserver(reg)
		q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
		if err := q.RunLockstep(kern, kern.NDRange()); err != nil {
			t.Fatal(err)
		}
	}
	run(base()) // 2×2 groups on the unit path
	strided := base()
	strided.StrideM = true
	run(strided) // 2×2 groups on the generic fallback

	s := reg.Snapshot()
	if got := s.Counters["kernels.gemm.groups{micro=unit}"]; got != 4 {
		t.Errorf("unit group counter = %d, want 4", got)
	}
	if got := s.Counters["kernels.gemm.groups{micro=generic}"]; got != 4 {
		t.Errorf("generic group counter = %d, want 4", got)
	}
}
