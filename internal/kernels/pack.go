package kernels

import (
	"fmt"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// Pack is the native executable form of the §III-D copy kernel: it
// reads a row-major source (leading dimension LD, logical SR×SC,
// optionally transposed) and writes the R×C zero-padded destination in
// a block-major layout. It mirrors codegen.GeneratePackSource exactly;
// the integration tests diff the two.
type Pack[T matrix.Scalar] struct {
	P          codegen.PackParams
	SR, SC, LD int
	R, C       int
	S          []T
	D          []T

	idx   index
	geo   panelGeom
	micro microKind
	o     kernObs
}

// NewPack validates shapes and builds the kernel.
func NewPack[T matrix.Scalar](p codegen.PackParams, sr, sc, ld, r, c int, s, d []T) (*Pack[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r%p.Rb != 0 || c%p.Cb != 0 {
		return nil, fmt.Errorf("kernels: pack destination %dx%d not padded to %dx%d", r, c, p.Rb, p.Cb)
	}
	if ld < sc {
		return nil, fmt.Errorf("kernels: pack LD %d below SC %d", ld, sc)
	}
	if len(s) < (sr-1)*ld+sc && sr > 0 {
		return nil, fmt.Errorf("kernels: pack source buffer too small")
	}
	if len(d) < r*c {
		return nil, fmt.Errorf("kernels: pack destination buffer too small")
	}
	return &Pack[T]{
		P: p, SR: sr, SC: sc, LD: ld, R: r, C: c, S: s, D: d,
		idx:   indexer(p.Layout, r, c, p.Rb, p.Cb),
		geo:   panelGeom{layout: p.Layout, rows: r, cols: c, rb: p.Rb, cb: p.Cb},
		micro: microUnit,
	}, nil
}

// SetObserver resolves the pack kernel's micro-kernel selection
// counters (kernels.pack.groups{micro=...}). A nil registry detaches.
func (k *Pack[T]) SetObserver(r *obs.Registry) { k.o = resolveKernObs(r, "pack") }

// SetFastPath toggles between the row-run copy fast path (the default —
// valid for every pack geometry, since the destination is contiguous
// within each Cb-wide block run under all three layouts) and the
// per-element generic reference path.
func (k *Pack[T]) SetFastPath(enabled bool) {
	if enabled {
		k.micro = microUnit
	} else {
		k.micro = microGeneric
	}
}

// Micro reports which micro-kernel the dispatch selected.
func (k *Pack[T]) Micro() string { return k.micro.String() }

// Name implements clsim.GroupKernel.
func (k *Pack[T]) Name() string {
	return fmt.Sprintf("pack_%s_%dx%d", k.P.Layout, k.P.Rb, k.P.Cb)
}

// Rebind points a prebuilt pack kernel at a new source (geometry,
// transpose flag and buffer) keeping the destination shape and layout.
// The execution engine uses it to relaunch one kernel instance per
// operand instead of rebuilding kernels every call.
func (k *Pack[T]) Rebind(sr, sc, ld int, transpose bool, s []T) error {
	if ld < sc {
		return fmt.Errorf("kernels: pack LD %d below SC %d", ld, sc)
	}
	if sr > 0 && len(s) < (sr-1)*ld+sc {
		return fmt.Errorf("kernels: pack source buffer too small")
	}
	k.SR, k.SC, k.LD, k.S = sr, sc, ld, s
	k.P.Transpose = transpose
	return nil
}

// NDRange returns the launch geometry.
func (k *Pack[T]) NDRange() clsim.NDRange {
	g, l := k.P.PackNDRange(k.R, k.C)
	return clsim.NDRange{Global: g, Local: l}
}

// RunGroup implements clsim.GroupKernel.
func (k *Pack[T]) RunGroup(run *clsim.GroupRun) {
	k.o.group(k.micro)
	if k.micro != microUnit {
		k.runGeneric(run)
		return
	}
	k.runFast(run)
}

// runGeneric is the element-by-element reference path, mirroring the
// generated OpenCL source one work-item at a time.
func (k *Pack[T]) runGeneric(run *clsim.GroupRun) {
	run.ForAll(func(lx, ly int) {
		c := run.GlobalID0(lx)
		r := run.GlobalID1(ly)
		if r >= k.R || c >= k.C {
			return
		}
		var v T
		if k.P.Transpose {
			if c < k.SR && r < k.SC {
				v = k.S[c*k.LD+r]
			}
		} else {
			if r < k.SR && c < k.SC {
				v = k.S[r*k.LD+c]
			}
		}
		k.D[k.idx(r, c)] = v
	})
}

// runFast processes the group's destination tile row by row, splitting
// each row at Cb block boundaries so every segment is contiguous in the
// destination. Untransposed sources are row-major and unit-stride along
// c, so valid segments reduce to copy(); the transposed read is a
// column gather (LD-strided) but still closure-free. Out-of-source
// elements are zero-filled with clear(), matching the generic path's
// zero default. One PhaseBarrier mirrors the generic ForAll barrier.
func (k *Pack[T]) runFast(run *clsim.GroupRun) {
	c0 := run.GlobalID0(0)
	r0 := run.GlobalID1(0)
	c1 := min(c0+run.LocalSize(0), k.C)
	r1 := min(r0+run.LocalSize(1), k.R)
	cb := k.P.Cb
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; {
			blk := c / cb
			segEnd := min((blk+1)*cb, c1)
			start := k.geo.rowStart(r, blk) + c%cb
			dst := k.D[start : start+segEnd-c]
			switch {
			case k.P.Transpose && r < k.SC:
				valid := min(segEnd, k.SR)
				i := 0
				for cc := c; cc < valid; cc++ {
					dst[i] = k.S[cc*k.LD+r]
					i++
				}
				clear(dst[i:])
			case !k.P.Transpose && r < k.SR:
				valid := min(segEnd, k.SC)
				n := 0
				if valid > c {
					n = copy(dst[:valid-c], k.S[r*k.LD+c:r*k.LD+valid])
				}
				clear(dst[n:])
			default:
				clear(dst)
			}
			c = segEnd
		}
	}
	run.PhaseBarrier()
}
