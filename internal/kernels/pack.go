package kernels

import (
	"fmt"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/matrix"
)

// Pack is the native executable form of the §III-D copy kernel: it
// reads a row-major source (leading dimension LD, logical SR×SC,
// optionally transposed) and writes the R×C zero-padded destination in
// a block-major layout. It mirrors codegen.GeneratePackSource exactly;
// the integration tests diff the two.
type Pack[T matrix.Scalar] struct {
	P          codegen.PackParams
	SR, SC, LD int
	R, C       int
	S          []T
	D          []T

	idx index
}

// NewPack validates shapes and builds the kernel.
func NewPack[T matrix.Scalar](p codegen.PackParams, sr, sc, ld, r, c int, s, d []T) (*Pack[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r%p.Rb != 0 || c%p.Cb != 0 {
		return nil, fmt.Errorf("kernels: pack destination %dx%d not padded to %dx%d", r, c, p.Rb, p.Cb)
	}
	if ld < sc {
		return nil, fmt.Errorf("kernels: pack LD %d below SC %d", ld, sc)
	}
	if len(s) < (sr-1)*ld+sc && sr > 0 {
		return nil, fmt.Errorf("kernels: pack source buffer too small")
	}
	if len(d) < r*c {
		return nil, fmt.Errorf("kernels: pack destination buffer too small")
	}
	return &Pack[T]{
		P: p, SR: sr, SC: sc, LD: ld, R: r, C: c, S: s, D: d,
		idx: indexer(p.Layout, r, c, p.Rb, p.Cb),
	}, nil
}

// Name implements clsim.GroupKernel.
func (k *Pack[T]) Name() string {
	return fmt.Sprintf("pack_%s_%dx%d", k.P.Layout, k.P.Rb, k.P.Cb)
}

// Rebind points a prebuilt pack kernel at a new source (geometry,
// transpose flag and buffer) keeping the destination shape and layout.
// The execution engine uses it to relaunch one kernel instance per
// operand instead of rebuilding kernels every call.
func (k *Pack[T]) Rebind(sr, sc, ld int, transpose bool, s []T) error {
	if ld < sc {
		return fmt.Errorf("kernels: pack LD %d below SC %d", ld, sc)
	}
	if sr > 0 && len(s) < (sr-1)*ld+sc {
		return fmt.Errorf("kernels: pack source buffer too small")
	}
	k.SR, k.SC, k.LD, k.S = sr, sc, ld, s
	k.P.Transpose = transpose
	return nil
}

// NDRange returns the launch geometry.
func (k *Pack[T]) NDRange() clsim.NDRange {
	g, l := k.P.PackNDRange(k.R, k.C)
	return clsim.NDRange{Global: g, Local: l}
}

// RunGroup implements clsim.GroupKernel.
func (k *Pack[T]) RunGroup(run *clsim.GroupRun) {
	run.ForAll(func(lx, ly int) {
		c := run.GlobalID0(lx)
		r := run.GlobalID1(ly)
		if r >= k.R || c >= k.C {
			return
		}
		var v T
		if k.P.Transpose {
			if c < k.SR && r < k.SC {
				v = k.S[c*k.LD+r]
			}
		} else {
			if r < k.SR && c < k.SC {
				v = k.S[r*k.LD+c]
			}
		}
		k.D[k.idx(r, c)] = v
	})
}
