// Package kernels provides executable Go implementations of the GEMM
// kernels the code generator produces: the BA, PL and DB schedules of
// §III-E, parameterized by the full codegen.Params space (blocking,
// work-group shape, stride modes, local-memory staging with reshaped
// cooperative loads, and block-major layouts).
//
// These kernels run on the clsim lockstep executor and compute real
// results; they are the functional counterpart of the performance
// model, and they cross-check the OpenCL C sources emitted by the
// generator (interpreted by the clc package) against the reference
// BLAS.
package kernels

import (
	"fmt"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// index maps matrix coordinates (r, c) of an R×C operand to a flat
// offset under one of the generator's layouts with (rb, cb) blocking.
type index func(r, c int) int

func indexer(layout matrix.Layout, rows, cols, rb, cb int) index {
	switch layout {
	case matrix.LayoutCBL:
		return func(r, c int) int {
			return (c/cb)*(rows*cb) + r*cb + c%cb
		}
	case matrix.LayoutRBL:
		return func(r, c int) int {
			return (r/rb)*(rb*cols) + (c/cb)*(rb*cb) + (r%rb)*cb + c%cb
		}
	default:
		return func(r, c int) int { return r*cols + c }
	}
}

// GEMM is one launchable C ← α·Aᵀ·B + β·C kernel instance. A is the
// K×M transposed operand in layout P.LayoutA with (Kwg, Mwg) blocking,
// B the K×N operand in layout P.LayoutB with (Kwg, Nwg) blocking, and
// C the M×N row-major output. M, N, K must be multiples of the
// blocking factors (the planner pads first).
type GEMM[T matrix.Scalar] struct {
	P           codegen.Params
	M, N, K     int
	Alpha, Beta T
	A, B, C     []T

	idxA, idxB index
	geoA, geoB panelGeom
	micro      microKind
	esize      int
	pool       statePool[T]
	o          kernObs
}

// NewGEMM validates shapes and builds the kernel.
func NewGEMM[T matrix.Scalar](p codegen.Params, m, n, k int, alpha T, a []T, b []T, beta T, c []T) (*GEMM[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m%p.Mwg != 0 || n%p.Nwg != 0 || k%p.Kwg != 0 {
		return nil, fmt.Errorf("kernels: %dx%dx%d not padded to blocking %dx%dx%d", m, n, k, p.Mwg, p.Nwg, p.Kwg)
	}
	if k < p.MinK() {
		return nil, fmt.Errorf("kernels: K=%d below algorithm minimum %d", k, p.MinK())
	}
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		return nil, fmt.Errorf("kernels: buffer sizes %d/%d/%d too small for %dx%dx%d", len(a), len(b), len(c), m, n, k)
	}
	return &GEMM[T]{
		P: p, M: m, N: n, K: k,
		Alpha: alpha, Beta: beta,
		A: a, B: b, C: c,
		idxA:  indexer(p.LayoutA, k, m, p.Kwg, p.Mwg),
		idxB:  indexer(p.LayoutB, k, n, p.Kwg, p.Nwg),
		geoA:  panelGeom{layout: p.LayoutA, rows: k, cols: m, rb: p.Kwg, cb: p.Mwg},
		geoB:  panelGeom{layout: p.LayoutB, rows: k, cols: n, rb: p.Kwg, cb: p.Nwg},
		micro: selectMicro(p),
		esize: elemBytes[T](),
	}, nil
}

// SetObserver resolves the kernel's micro-kernel selection counters
// from the registry (kernels.gemm.groups{micro=unit|generic}, one
// increment per executed work-group). A nil registry detaches.
func (g *GEMM[T]) SetObserver(r *obs.Registry) { g.o = resolveKernObs(r, "gemm") }

// SetFastPath re-runs (enabled) or overrides (disabled) the
// micro-kernel dispatch. Disabling forces every phase through the
// generic closure path — the semantic reference the fast paths are
// tested bit-identical against.
func (g *GEMM[T]) SetFastPath(enabled bool) {
	if enabled {
		g.micro = selectMicro(g.P)
	} else {
		g.micro = microGeneric
	}
}

// Micro reports which micro-kernel the dispatch selected.
func (g *GEMM[T]) Micro() string { return g.micro.String() }

// Name implements clsim.GroupKernel.
func (g *GEMM[T]) Name() string { return g.P.Name() }

// SetScalars updates α and β for the next launch, letting a prebuilt
// kernel instance be relaunched with different scalars (the execution
// engine reuses one instance across repeated calls).
func (g *GEMM[T]) SetScalars(alpha, beta T) {
	g.Alpha, g.Beta = alpha, beta
}

// NDRange returns the launch geometry: one work-item per (MdimC, NdimC)
// cell of each (M/Mwg)×(N/Nwg) work-group grid.
func (g *GEMM[T]) NDRange() clsim.NDRange {
	return clsim.NDRange{
		Global: [2]int{g.M / g.P.Mwg * g.P.MdimC, g.N / g.P.Nwg * g.P.NdimC},
		Local:  [2]int{g.P.MdimC, g.P.NdimC},
	}
}

// rowOf returns the global M index of element i of the work-item at
// local x-coordinate lx (unit or MdimC-strided mapping, Fig. 2).
func (g *GEMM[T]) rowOf(gx, lx, i int) int {
	if g.P.StrideM {
		return gx*g.P.Mwg + lx + i*g.P.MdimC
	}
	return gx*g.P.Mwg + lx*g.P.Mwi() + i
}

// colOf returns the global N index of element j of the work-item at
// local y-coordinate ly. With vector width vw, the Nwi elements are
// grouped into vw-wide vectors; the strided mapping interleaves the
// vectors at vw·NdimC pitch (§III-B: "stride sizes are multiplied by
// the vector width").
func (g *GEMM[T]) colOf(gy, ly, j int) int {
	vw := g.P.VectorWidth
	if g.P.StrideN {
		jv, je := j/vw, j%vw
		return gy*g.P.Nwg + jv*(vw*g.P.NdimC) + ly*vw + je
	}
	return gy*g.P.Nwg + ly*g.P.Nwi() + j
}

// state is the per-work-group execution state shared by the three
// schedules: local memory panels and per-work-item private memory.
// Instances are recycled through the kernel's statePool (micro.go), so
// a warm launch allocates nothing.
type state[T matrix.Scalar] struct {
	alm, blm []T // local panels (Kwg×Mwg / Kwg×Nwg), nil if not shared
	acc      []T // per-WI accumulators, wi*Mwi*Nwi
	mwi, nwi int

	// stageA/stageB are the PL schedule's private staging registers,
	// allocated lazily by the generic path and kept across reuse.
	stageA, stageB []T
}

// loadPanelA cooperatively stages rows [pwg+k0, pwg+k0+kLen) of the A
// panel into alm (local layout: row-major Kwg×Mwg with row origin k0).
// Each work-item covers an MwiA×KwiA' slice under the reshaped
// (MdimA × KdimA) assignment of §III-C. The unit-stride micro-kernel
// fuses the scatter into whole-row copies (micro.go).
func (g *GEMM[T]) loadPanelA(s *state[T], run *clsim.GroupRun, gx, pwg, k0, kLen int) {
	if g.micro == microUnit {
		g.loadPanelAFast(s, run, gx, pwg, k0, kLen)
		return
	}
	p := &g.P
	mdimA := p.MdimA
	kdim := p.WGSize() / mdimA
	kPer := kLen / kdim
	run.ForAll(func(lx, ly int) {
		t := ly*p.MdimC + lx
		am := t % mdimA
		ak := t / mdimA
		for kk := 0; kk < kPer; kk++ {
			k := ak + kk*kdim
			for mm := 0; mm < p.Mwg/mdimA; mm++ {
				m := am + mm*mdimA
				s.alm[(k0+k)*p.Mwg+m] = g.A[g.idxA(pwg+k0+k, gx*p.Mwg+m)]
			}
		}
	})
}

// loadPanelB is the B counterpart of loadPanelA (NdimB × KdimB grid).
func (g *GEMM[T]) loadPanelB(s *state[T], run *clsim.GroupRun, gy, pwg, k0, kLen int) {
	if g.micro == microUnit {
		g.loadPanelBFast(s, run, gy, pwg, k0, kLen)
		return
	}
	p := &g.P
	ndimB := p.NdimB
	kdim := p.WGSize() / ndimB
	kPer := kLen / kdim
	run.ForAll(func(lx, ly int) {
		t := ly*p.MdimC + lx
		bn := t % ndimB
		bk := t / ndimB
		for kk := 0; kk < kPer; kk++ {
			k := bk + kk*kdim
			for nn := 0; nn < p.Nwg/ndimB; nn++ {
				n := bn + nn*ndimB
				s.blm[(k0+k)*p.Nwg+n] = g.B[g.idxB(pwg+k0+k, gy*p.Nwg+n)]
			}
		}
	})
}

// compute performs the inner multiply-accumulate for local k range
// [k0, k0+kLen) of the panel at pwg. Operands come from local memory
// when staged, directly from global memory otherwise. The unit-stride
// micro-kernel register-tiles the same loop nest (micro.go).
func (g *GEMM[T]) compute(s *state[T], run *clsim.GroupRun, gx, gy, pwg, k0, kLen int) {
	if g.micro == microUnit {
		g.computeUnit(s, run, gx, gy, pwg, k0, kLen)
		return
	}
	p := &g.P
	run.ForAll(func(lx, ly int) {
		wi := ly*p.MdimC + lx
		acc := s.acc[wi*s.mwi*s.nwi : (wi+1)*s.mwi*s.nwi]
		for kk := k0; kk < k0+kLen; kk++ {
			for i := 0; i < s.mwi; i++ {
				var av T
				if p.SharedA {
					// Local A panel is row-major Kwg×Mwg; the local M
					// coordinate mirrors the compute mapping.
					av = s.alm[kk*p.Mwg+g.rowOf(0, lx, i)]
				} else {
					av = g.A[g.idxA(pwg+kk, g.rowOf(gx, lx, i))]
				}
				if av == 0 {
					continue
				}
				for j := 0; j < s.nwi; j++ {
					var bv T
					if p.SharedB {
						bv = s.blm[kk*p.Nwg+g.colOf(0, ly, j)]
					} else {
						bv = g.B[g.idxB(pwg+kk, g.colOf(gy, ly, j))]
					}
					acc[i*s.nwi+j] += av * bv
				}
			}
		}
	})
}

// merge writes α·acc + β·C back to global C (line 13 of Fig. 4). Per
// BLAS semantics C is not read when β == 0, so NaN/Inf-poisoned or
// uninitialized output buffers cannot corrupt the result (0·NaN = NaN
// would otherwise leak through).
func (g *GEMM[T]) merge(s *state[T], run *clsim.GroupRun, gx, gy int) {
	if g.micro == microUnit {
		g.mergeUnit(s, run, gx, gy)
		return
	}
	p := &g.P
	run.ForAll(func(lx, ly int) {
		wi := ly*p.MdimC + lx
		acc := s.acc[wi*s.mwi*s.nwi : (wi+1)*s.mwi*s.nwi]
		for i := 0; i < s.mwi; i++ {
			m := g.rowOf(gx, lx, i)
			for j := 0; j < s.nwi; j++ {
				n := g.colOf(gy, ly, j)
				idx := m*g.N + n
				v := g.Alpha * acc[i*s.nwi+j]
				if g.Beta != 0 {
					v += g.Beta * g.C[idx]
				}
				g.C[idx] = v
			}
		}
	})
}

// RunGroup implements clsim.GroupKernel, dispatching on the schedule.
// Work-group state comes from the kernel's free list and goes back when
// the group finishes, so warm launches allocate nothing.
func (g *GEMM[T]) RunGroup(run *clsim.GroupRun) {
	g.o.group(g.micro)
	s := g.getState(run)
	defer g.putState(s)
	switch g.P.Algorithm {
	case codegen.PL:
		g.runPL(s, run)
	case codegen.DB:
		g.runDB(s, run)
	default:
		g.runBA(s, run)
	}
}

// runBA is the basic algorithm (Fig. 4): stage panel, barrier, compute,
// barrier, next panel.
func (g *GEMM[T]) runBA(s *state[T], run *clsim.GroupRun) {
	p := &g.P
	gx, gy := run.ID(0), run.ID(1)
	for pwg := 0; pwg < g.K; pwg += p.Kwg {
		if p.SharedA {
			g.loadPanelA(s, run, gx, pwg, 0, p.Kwg)
		}
		if p.SharedB {
			g.loadPanelB(s, run, gy, pwg, 0, p.Kwg)
		}
		// ForAll ends with an implicit barrier (Fig. 4 line 5).
		g.compute(s, run, gx, gy, pwg, 0, p.Kwg)
		// Implicit barrier again (line 11).
	}
	g.merge(s, run, gx, gy)
}

// runPL is the software-pipelined algorithm (Fig. 5): the panel for
// iteration i+1 is fetched into private registers while iteration i
// computes from local memory, then stored to local memory behind a
// barrier. Functionally the staging is equivalent to BA; the schedule
// (prologue, pipelined body, epilogue) is followed faithfully so the
// barrier structure matches the generated source. Operands not staged
// through local memory are read directly, as in BA.
func (g *GEMM[T]) runPL(s *state[T], run *clsim.GroupRun) {
	p := &g.P
	gx, gy := run.ID(0), run.ID(1)
	if g.micro == microUnit {
		g.runPLFast(s, run, gx, gy)
		return
	}

	// Prologue (Fig. 5 lines 2-4): first panel into local memory.
	if p.SharedA {
		g.loadPanelA(s, run, gx, 0, 0, p.Kwg)
	}
	if p.SharedB {
		g.loadPanelB(s, run, gy, 0, 0, p.Kwg)
	}

	// Per-work-item staging registers for the next panel, kept in the
	// pooled state across groups and launches.
	if p.SharedA && s.stageA == nil {
		s.stageA = make([]T, run.Size()*p.MwiA()*p.KwiA())
	}
	if p.SharedB && s.stageB == nil {
		s.stageB = make([]T, run.Size()*p.KwiB()*p.NwiB())
	}
	stageA, stageB := s.stageA, s.stageB

	pwg := 0
	for ; pwg <= g.K-2*p.Kwg; pwg += p.Kwg {
		next := pwg + p.Kwg
		// Lines 6-7: fetch next panel into private staging.
		if p.SharedA {
			g.stageLoadA(s, run, stageA, gx, next)
		}
		if p.SharedB {
			g.stageLoadB(s, run, stageB, gy, next)
		}
		// Lines 9-13: compute current panel from local memory.
		g.compute(s, run, gx, gy, pwg, 0, p.Kwg)
		// Lines 15-16: store staging into local memory (barrier before
		// and after, lines 14/17 — ForAll provides the phase barrier).
		if p.SharedA {
			g.stageStoreA(s, run, stageA)
		}
		if p.SharedB {
			g.stageStoreB(s, run, stageB)
		}
	}
	// Epilogue (lines 19-23): last panel.
	g.compute(s, run, gx, gy, pwg, 0, p.Kwg)
	g.merge(s, run, gx, gy)
}

func (g *GEMM[T]) stageLoadA(s *state[T], run *clsim.GroupRun, stage []T, gx, pwg int) {
	p := &g.P
	mdimA := p.MdimA
	kdim := p.WGSize() / mdimA
	per := p.MwiA() * p.KwiA()
	run.ForAll(func(lx, ly int) {
		t := ly*p.MdimC + lx
		am, ak := t%mdimA, t/mdimA
		buf := stage[t*per : (t+1)*per]
		idx := 0
		for kk := 0; kk < p.KwiA(); kk++ {
			for mm := 0; mm < p.MwiA(); mm++ {
				buf[idx] = g.A[g.idxA(pwg+ak+kk*kdim, gx*p.Mwg+am+mm*mdimA)]
				idx++
			}
		}
	})
}

func (g *GEMM[T]) stageStoreA(s *state[T], run *clsim.GroupRun, stage []T) {
	p := &g.P
	mdimA := p.MdimA
	kdim := p.WGSize() / mdimA
	per := p.MwiA() * p.KwiA()
	run.ForAll(func(lx, ly int) {
		t := ly*p.MdimC + lx
		am, ak := t%mdimA, t/mdimA
		buf := stage[t*per : (t+1)*per]
		idx := 0
		for kk := 0; kk < p.KwiA(); kk++ {
			for mm := 0; mm < p.MwiA(); mm++ {
				s.alm[(ak+kk*kdim)*p.Mwg+am+mm*mdimA] = buf[idx]
				idx++
			}
		}
	})
}

func (g *GEMM[T]) stageLoadB(s *state[T], run *clsim.GroupRun, stage []T, gy, pwg int) {
	p := &g.P
	ndimB := p.NdimB
	kdim := p.WGSize() / ndimB
	per := p.KwiB() * p.NwiB()
	run.ForAll(func(lx, ly int) {
		t := ly*p.MdimC + lx
		bn, bk := t%ndimB, t/ndimB
		buf := stage[t*per : (t+1)*per]
		idx := 0
		for kk := 0; kk < p.KwiB(); kk++ {
			for nn := 0; nn < p.NwiB(); nn++ {
				buf[idx] = g.B[g.idxB(pwg+bk+kk*kdim, gy*p.Nwg+bn+nn*ndimB)]
				idx++
			}
		}
	})
}

func (g *GEMM[T]) stageStoreB(s *state[T], run *clsim.GroupRun, stage []T) {
	p := &g.P
	ndimB := p.NdimB
	kdim := p.WGSize() / ndimB
	per := p.KwiB() * p.NwiB()
	run.ForAll(func(lx, ly int) {
		t := ly*p.MdimC + lx
		bn, bk := t%ndimB, t/ndimB
		buf := stage[t*per : (t+1)*per]
		idx := 0
		for kk := 0; kk < p.KwiB(); kk++ {
			for nn := 0; nn < p.NwiB(); nn++ {
				s.blm[(bk+kk*kdim)*p.Nwg+bn+nn*ndimB] = buf[idx]
				idx++
			}
		}
	})
}

// runDB is the double-buffered algorithm (Fig. 6): the Kwg panel is
// split into two half-panels staged in alternating local-memory
// buffers, so loads of one half overlap compute on the other. The two
// halves live in the same local allocation (first and second Kwg/2
// rows), matching the total local-memory budget of BA.
func (g *GEMM[T]) runDB(s *state[T], run *clsim.GroupRun) {
	p := &g.P
	gx, gy := run.ID(0), run.ID(1)
	half := p.Kwg / 2

	// Lines 2-3: first half of the first panel into buffer 0.
	if p.SharedA {
		g.loadPanelA(s, run, gx, 0, 0, half)
	}
	if p.SharedB {
		g.loadPanelB(s, run, gy, 0, 0, half)
	}

	pwg := 0
	for ; pwg <= g.K-2*p.Kwg; pwg += p.Kwg {
		// Lines 6-7: second half into buffer 1.
		if p.SharedA {
			g.loadPanelA(s, run, gx, pwg, half, half)
		}
		if p.SharedB {
			g.loadPanelB(s, run, gy, pwg, half, half)
		}
		// Lines 8-12: compute on buffer 0.
		g.compute(s, run, gx, gy, pwg, 0, half)
		// Lines 14-15: next panel's first half into buffer 0.
		if p.SharedA {
			g.loadPanelA(s, run, gx, pwg+p.Kwg, 0, half)
		}
		if p.SharedB {
			g.loadPanelB(s, run, gy, pwg+p.Kwg, 0, half)
		}
		// Lines 16-20: compute on buffer 1 (previous panel's k range).
		g.computeDBHigh(s, run, gx, gy, pwg, half)
	}
	// Epilogue (lines 22-35): finish the last panel.
	if p.SharedA {
		g.loadPanelA(s, run, gx, pwg, half, half)
	}
	if p.SharedB {
		g.loadPanelB(s, run, gy, pwg, half, half)
	}
	g.compute(s, run, gx, gy, pwg, 0, half)
	g.computeDBHigh(s, run, gx, gy, pwg, half)
	g.merge(s, run, gx, gy)
}

// computeDBHigh computes the upper half-panel [half, Kwg) of the panel
// at pwg; direct (non-staged) operands read global memory at the true
// k offset.
func (g *GEMM[T]) computeDBHigh(s *state[T], run *clsim.GroupRun, gx, gy, pwg, half int) {
	g.compute(s, run, gx, gy, pwg, half, half)
}
