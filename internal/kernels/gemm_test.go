package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oclgemm/internal/blas"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// runKernel packs row-major A (M×K) and B (K×N) into the kernel's
// layouts, runs the kernel on the simulator, and returns the result
// matrix.
func runKernel(t *testing.T, p codegen.Params, m, n, k int, alpha float64,
	a, b, c *matrix.Matrix[float64], beta float64) *matrix.Matrix[float64] {
	t.Helper()
	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
	cc := c.Clone()

	kern, err := NewGEMM(p, m, n, k, alpha, at.Data, bp.Data, beta, cc.Data)
	if err != nil {
		t.Fatalf("NewGEMM: %v", err)
	}
	ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
	q := clsim.NewQueue(ctx)
	if err := q.RunLockstep(kern, kern.NDRange()); err != nil {
		t.Fatalf("RunLockstep: %v", err)
	}
	return cc
}

func refGEMM(alpha float64, a, b, c *matrix.Matrix[float64], beta float64) *matrix.Matrix[float64] {
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, alpha, a, b, beta, want)
	return want
}

func randMats(m, n, k int, seed int64) (a, b, c *matrix.Matrix[float64]) {
	rng := rand.New(rand.NewSource(seed))
	a = matrix.New[float64](m, k, matrix.RowMajor)
	b = matrix.New[float64](k, n, matrix.RowMajor)
	c = matrix.New[float64](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	return
}

// base returns a small valid parameter set to mutate in tests.
func base() codegen.Params {
	return codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 8, Nwg: 8, Kwg: 4,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1,
		SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
}

func checkKernel(t *testing.T, p codegen.Params, m, n, k int, seed int64) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid test params: %v", err)
	}
	a, b, c := randMats(m, n, k, seed)
	got := runKernel(t, p, m, n, k, 1.25, a, b, c, -0.5)
	want := refGEMM(1.25, a, b, c, -0.5)
	if d := matrix.MaxRelDiff(got, want); d > 1e-12 {
		t.Errorf("%s: max rel diff %g vs reference", p.Name(), d)
	}
}

func TestBAAllLayoutCombos(t *testing.T) {
	for _, la := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
		for _, lb := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
			p := base()
			p.LayoutA, p.LayoutB = la, lb
			checkKernel(t, p, 16, 16, 16, 1)
		}
	}
}

func TestBASharedModes(t *testing.T) {
	for _, sh := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		p := base()
		p.SharedA, p.SharedB = sh[0], sh[1]
		checkKernel(t, p, 16, 24, 20, 2)
	}
}

func TestBAStrideModes(t *testing.T) {
	for _, st := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		p := base()
		p.StrideM, p.StrideN = st[0], st[1]
		checkKernel(t, p, 16, 16, 12, 3)
	}
}

func TestBAVectorWidths(t *testing.T) {
	for _, vw := range []int{1, 2, 4} {
		p := base()
		p.Nwg = 16 // Nwi = 4
		p.VectorWidth = vw
		p.StrideN = true // vw interacts with the strided mapping
		checkKernel(t, p, 16, 32, 12, 4)
	}
}

func TestBAReshapedLoads(t *testing.T) {
	// MdimA=8 (KdimA=2), NdimB=2 (KdimB=8): reshaped cooperative loads.
	p := base()
	p.Mwg, p.Nwg, p.Kwg = 16, 16, 8
	p.MdimA, p.NdimB = 8, 2
	p.Kwi = 2
	checkKernel(t, p, 32, 32, 16, 5)
}

func TestPLMatchesReference(t *testing.T) {
	for _, sh := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
		p := base()
		p.Algorithm = codegen.PL
		p.SharedA, p.SharedB = sh[0], sh[1]
		checkKernel(t, p, 16, 16, 16, 6) // K = 4·Kwg: prologue, 2 pipelined, epilogue
	}
}

func TestPLMinimumK(t *testing.T) {
	p := base()
	p.Algorithm = codegen.PL
	checkKernel(t, p, 8, 8, 8, 7) // K = 2·Kwg: one pipelined iteration
}

func TestDBMatchesReference(t *testing.T) {
	for _, sh := range [][2]bool{{true, true}, {true, false}, {false, true}} {
		p := base()
		p.Algorithm = codegen.DB
		p.Kwg = 8 // KwiA = KwiB = 2 (even halves for the double buffers)
		p.SharedA, p.SharedB = sh[0], sh[1]
		checkKernel(t, p, 16, 16, 32, 8)
	}
}

func TestDBMinimumK(t *testing.T) {
	p := base()
	p.Algorithm = codegen.DB
	p.Kwg = 8
	checkKernel(t, p, 8, 8, 16, 9)
}

func TestPaperTahitiConfigsFunctional(t *testing.T) {
	// The paper's Tahiti SGEMM config (scaled problem), double precision
	// for a tight tolerance.
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 96, Nwg: 96, Kwg: 16,
		MdimC: 16, NdimC: 16, MdimA: 16, NdimB: 16,
		Kwi: 2, VectorWidth: 1,
		SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	checkKernel(t, p, 96, 96, 32, 10)
}

func TestRectangularProblem(t *testing.T) {
	p := base()
	checkKernel(t, p, 24, 40, 28, 11)
}

func TestFloat32Kernel(t *testing.T) {
	p := base()
	p.Precision = matrix.Single
	m, n, k := 16, 16, 12
	rng := rand.New(rand.NewSource(12))
	a := matrix.New[float32](m, k, matrix.RowMajor)
	b := matrix.New[float32](k, n, matrix.RowMajor)
	c := matrix.New[float32](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)

	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
	cc := c.Clone()
	kern, err := NewGEMM(p, m, n, k, float32(2), at.Data, bp.Data, float32(0.5), cc.Data)
	if err != nil {
		t.Fatal(err)
	}
	ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
	q := clsim.NewQueue(ctx)
	if err := q.RunLockstep(kern, kern.NDRange()); err != nil {
		t.Fatal(err)
	}
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, float32(2), a, b, float32(0.5), want)
	if d := matrix.MaxRelDiff(cc, want); d > float64(matrix.Tolerance(matrix.Single, k)) {
		t.Errorf("float32 kernel diff %g", d)
	}
}

func TestNewGEMMErrors(t *testing.T) {
	p := base()
	a := make([]float64, 16*16)
	c := make([]float64, 16*16)
	if _, err := NewGEMM(p, 15, 16, 16, 1.0, a, a, 0.0, c); err == nil {
		t.Error("unpadded M must fail")
	}
	if _, err := NewGEMM(p, 16, 16, 16, 1.0, a[:10], a, 0.0, c); err == nil {
		t.Error("short buffer must fail")
	}
	bad := p
	bad.Kwi = 3
	if _, err := NewGEMM(bad, 16, 16, 16, 1.0, a, a, 0.0, c); err == nil {
		t.Error("invalid params must fail")
	}
	pl := p
	pl.Algorithm = codegen.PL
	if _, err := NewGEMM(pl, 16, 16, 4, 1.0, a, a, 0.0, c); err == nil {
		t.Error("K below PL minimum must fail")
	}
}

// Property: random valid small configurations across all three
// algorithms agree with the reference.
func TestKernelPropertyRandomConfigs(t *testing.T) {
	f := func(algSel, mdim, ndim, mwiS, nwiS, kwgS, kwiS, vwS, shSel, stSel, layA, layB uint8, seed int64) bool {
		p := codegen.Params{
			Precision: matrix.Double,
			Algorithm: codegen.Algorithms[algSel%3],
			MdimC:     []int{2, 4}[mdim%2],
			NdimC:     []int{2, 4}[ndim%2],
			Kwi:       []int{1, 2}[kwiS%2],
			SharedA:   shSel&1 != 0,
			SharedB:   shSel&2 != 0,
			StrideM:   stSel&1 != 0,
			StrideN:   stSel&2 != 0,
			LayoutA:   []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layA%3],
			LayoutB:   []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layB%3],
		}
		p.Mwg = p.MdimC * (int(mwiS%3) + 1)
		p.Nwg = p.NdimC * []int{2, 4}[nwiS%2] // keep Nwi even for vw=2
		p.Kwg = 4 * (int(kwgS%2) + 1)
		p.VectorWidth = []int{1, 2}[vwS%2]
		p.MdimA = p.MdimC
		p.NdimB = p.NdimC
		if p.Algorithm == codegen.DB && !p.UsesLocalMemory() {
			p.SharedB = true
		}
		if err := p.Validate(); err != nil {
			return true // not a valid draw; skip
		}
		m := p.Mwg * 2
		n := p.Nwg
		k := p.Kwg * 2
		a, b, c := randMats(m, n, k, seed)
		got := runKernel(t, p, m, n, k, 1.0, a, b, c, 1.0)
		want := refGEMM(1.0, a, b, c, 1.0)
		return matrix.MaxRelDiff(got, want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
