// Micro-kernel specialization layer.
//
// The generic GEMM and pack kernels interpret codegen.Params at run
// time: every A/B element load goes through an index closure and every
// work-group reallocates its scratch state. This file compiles the
// parameter space down at kernel-build time instead, the way the
// paper's generated OpenCL sources bake the blocking into the kernel
// text: NewGEMM/NewPack select a micro-kernel (selectMicro), panel
// geometry is precomputed into closure-free panelGeom offsets, panel
// loads degrade to whole-row copy(), the inner product register-tiles C
// over reslice-narrowed panel rows, and per-group state is recycled
// through a free list so a warm launch allocates nothing. Parameter
// combinations outside the specialized space (strided work-item
// mappings, §III-B) fall back to the generic closure path, which stays
// the semantic reference: every fast path must produce bit-identical
// results and identical barrier statistics.
package kernels

import (
	"sync"

	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// microKind names the micro-kernel a kernel instance dispatched to.
type microKind uint8

const (
	// microGeneric is the interpreter-style reference path: index
	// closures per element, ForAll per phase.
	microGeneric microKind = iota
	// microUnit is the unit-stride fast path (StrideM and StrideN both
	// false): contiguous panel rows, bulk copies, register-tiled inner
	// loops. Valid for every layout pair, vector width and schedule,
	// because the unit-stride work-item mapping makes each work-item's
	// Mwi×Nwi tile contiguous within the panel row.
	microUnit
)

// String returns the dispatch-table name of the micro-kernel.
func (m microKind) String() string {
	if m == microUnit {
		return "unit"
	}
	return "generic"
}

// selectMicro is the dispatch table: it maps a full parameter point to
// the micro-kernel that can execute it. Strided work-item mappings
// (Fig. 2 right) scatter each work-item's elements at MdimC/vw·NdimC
// pitch, so their loads cannot be expressed as contiguous runs and they
// take the generic path.
func selectMicro(p codegen.Params) microKind {
	if p.StrideM || p.StrideN {
		return microGeneric
	}
	return microUnit
}

// panelGeom is the closure-free form of indexer for one packed operand:
// it resolves the flat offset of a whole row-run instead of one
// element. The enabling invariant is that the planner packs with
// blocking equal to the kernel's work-group tiling (A: Kwg×Mwg, B:
// Kwg×Nwg), so the cb columns of block-column blk in row r are
// contiguous under all three layouts.
type panelGeom struct {
	layout     matrix.Layout
	rows, cols int
	rb, cb     int
}

// rowStart returns the flat offset of element (r, blk*cb): the start of
// the contiguous cb-wide run of row r inside block-column blk.
func (pg *panelGeom) rowStart(r, blk int) int {
	switch pg.layout {
	case matrix.LayoutCBL:
		return blk*(pg.rows*pg.cb) + r*pg.cb
	case matrix.LayoutRBL:
		return (r/pg.rb)*(pg.rb*pg.cols) + blk*(pg.rb*pg.cb) + (r%pg.rb)*pg.cb
	default:
		return r*pg.cols + blk*pg.cb
	}
}

// statePool recycles per-work-group state across groups and launches.
// It is a mutex-guarded stack rather than a sync.Pool: the GC may drop
// sync.Pool items at any point, which would break the warm-launch
// zero-allocation guarantee the execution engine tests enforce.
type statePool[T matrix.Scalar] struct {
	mu   sync.Mutex
	free []*state[T]
	// allocs counts states built fresh (free list empty); a warm launch
	// must not move it — the batched zero-alloc tests assert on it.
	allocs int64
}

// StateAllocs returns how many work-group states the kernel has
// allocated across its lifetime. Warm launches recycle states through
// the free list, so the count stays flat once the kernel has run at
// its steady-state parallelism — the observable half of the
// zero-allocation warm-path guarantee.
func (g *GEMM[T]) StateAllocs() int64 {
	g.pool.mu.Lock()
	defer g.pool.mu.Unlock()
	return g.pool.allocs
}

// getState returns a ready work-group state: local-memory capacity is
// charged against the device budget exactly as the allocating path
// would (so ErrLocalMemExceeded fires identically), the accumulator is
// zeroed, and backing slabs are reused when the pool has them.
func (g *GEMM[T]) getState(run *clsim.GroupRun) *state[T] {
	p := &g.P
	if p.SharedA {
		run.TakeLocal(g.esize * p.Kwg * p.Mwg)
	}
	if p.SharedB {
		run.TakeLocal(g.esize * p.Kwg * p.Nwg)
	}
	g.pool.mu.Lock()
	var s *state[T]
	if n := len(g.pool.free); n > 0 {
		s = g.pool.free[n-1]
		g.pool.free = g.pool.free[:n-1]
	} else {
		g.pool.allocs++
	}
	g.pool.mu.Unlock()
	if s == nil {
		s = &state[T]{mwi: p.Mwi(), nwi: p.Nwi()}
		s.acc = make([]T, run.Size()*s.mwi*s.nwi)
		if p.SharedA {
			s.alm = make([]T, p.Kwg*p.Mwg)
		}
		if p.SharedB {
			s.blm = make([]T, p.Kwg*p.Nwg)
		}
		return s
	}
	// The local panels need no clearing: every schedule stages a panel
	// row range before any compute phase reads it.
	clear(s.acc)
	return s
}

func (g *GEMM[T]) putState(s *state[T]) {
	g.pool.mu.Lock()
	g.pool.free = append(g.pool.free, s)
	g.pool.mu.Unlock()
}

// kernObs holds a kernel's resolved selection counters
// ("kernels.<kernel>.groups{micro=unit|generic}"). Nil-safe like every
// obs instrument.
type kernObs struct {
	unit, generic *obs.Counter
}

func resolveKernObs(r *obs.Registry, kernel string) kernObs {
	if r == nil {
		return kernObs{}
	}
	return kernObs{
		unit:    r.Counter(obs.Label("kernels."+kernel+".groups", "micro", "unit")),
		generic: r.Counter(obs.Label("kernels."+kernel+".groups", "micro", "generic")),
	}
}

// group records which micro-kernel served one work-group.
func (o *kernObs) group(m microKind) {
	if m == microUnit {
		o.unit.Inc()
	} else {
		o.generic.Inc()
	}
}

// elemBytes returns the element size of T for local-memory accounting.
func elemBytes[T matrix.Scalar]() int {
	var zero T
	if _, ok := any(zero).(float64); ok {
		return 8
	}
	return 4
}

// loadPanelAFast stages rows [pwg+k0, pwg+k0+kLen) of the A panel with
// one copy per row: the cooperative (MdimA × KdimA) element scatter of
// the generic load writes exactly these elements, so a bulk row copy is
// bit-identical. PhaseBarrier keeps the barrier count equal to the
// generic ForAll phase.
func (g *GEMM[T]) loadPanelAFast(s *state[T], run *clsim.GroupRun, gx, pwg, k0, kLen int) {
	mwg := g.P.Mwg
	for k := k0; k < k0+kLen; k++ {
		src := g.geoA.rowStart(pwg+k, gx)
		copy(s.alm[k*mwg:(k+1)*mwg], g.A[src:src+mwg])
	}
	run.PhaseBarrier()
}

// loadPanelBFast is the B counterpart of loadPanelAFast.
func (g *GEMM[T]) loadPanelBFast(s *state[T], run *clsim.GroupRun, gy, pwg, k0, kLen int) {
	nwg := g.P.Nwg
	for k := k0; k < k0+kLen; k++ {
		src := g.geoB.rowStart(pwg+k, gy)
		copy(s.blm[k*nwg:(k+1)*nwg], g.B[src:src+nwg])
	}
	run.PhaseBarrier()
}

// computeUnit is the unit-stride inner product: for each panel row kk
// it reslices the Mwg-wide A run and Nwg-wide B run once (from local
// memory when staged, straight out of the packed global operand
// otherwise — the pack blocking makes both contiguous), then walks the
// work-items register-tiling C into each one's Mwi×Nwi accumulator
// block. Per accumulator element the kk-ascending accumulation order
// and the zero-skip match the generic loop exactly, so results are
// bit-identical.
func (g *GEMM[T]) computeUnit(s *state[T], run *clsim.GroupRun, gx, gy, pwg, k0, kLen int) {
	p := &g.P
	mwi, nwi := s.mwi, s.nwi
	per := mwi * nwi
	for kk := k0; kk < k0+kLen; kk++ {
		var arow, brow []T
		if p.SharedA {
			arow = s.alm[kk*p.Mwg : (kk+1)*p.Mwg]
		} else {
			base := g.geoA.rowStart(pwg+kk, gx)
			arow = g.A[base : base+p.Mwg]
		}
		if p.SharedB {
			brow = s.blm[kk*p.Nwg : (kk+1)*p.Nwg]
		} else {
			base := g.geoB.rowStart(pwg+kk, gy)
			brow = g.B[base : base+p.Nwg]
		}
		for ly := 0; ly < p.NdimC; ly++ {
			bseg := brow[ly*nwi : ly*nwi+nwi]
			for lx := 0; lx < p.MdimC; lx++ {
				aseg := arow[lx*mwi : lx*mwi+mwi]
				wi := ly*p.MdimC + lx
				acc := s.acc[wi*per : (wi+1)*per]
				for i, av := range aseg {
					if av == 0 {
						continue
					}
					ai := acc[i*nwi : i*nwi+nwi]
					for j, bv := range bseg {
						ai[j] += av * bv
					}
				}
			}
		}
	}
	run.PhaseBarrier()
}

// mergeUnit writes α·acc + β·C row-run by row-run: under the
// unit-stride mapping each work-item's j-run of Nwi elements is
// contiguous in row-major C. The merge arithmetic (α·acc first, then
// +β·C only when β ≠ 0) matches the generic path bit for bit.
func (g *GEMM[T]) mergeUnit(s *state[T], run *clsim.GroupRun, gx, gy int) {
	p := &g.P
	mwi, nwi := s.mwi, s.nwi
	per := mwi * nwi
	alpha, beta := g.Alpha, g.Beta
	for ly := 0; ly < p.NdimC; ly++ {
		n0 := gy*p.Nwg + ly*nwi
		for lx := 0; lx < p.MdimC; lx++ {
			wi := ly*p.MdimC + lx
			acc := s.acc[wi*per : (wi+1)*per]
			m0 := gx*p.Mwg + lx*mwi
			for i := 0; i < mwi; i++ {
				crow := g.C[(m0+i)*g.N+n0 : (m0+i)*g.N+n0+nwi]
				ai := acc[i*nwi : i*nwi+nwi]
				if beta == 0 {
					for j, av := range ai {
						crow[j] = alpha * av
					}
				} else {
					for j, av := range ai {
						crow[j] = alpha*av + beta*crow[j]
					}
				}
			}
		}
	}
	run.PhaseBarrier()
}

// runPLFast is the unit-stride form of the pipelined schedule. The
// private-register staging of Fig. 5 has no observable effect until the
// store barrier lands its contents in local memory, so the fast path
// skips the intermediate copy and loads the local panel directly at the
// store point; one PhaseBarrier per skipped stage phase keeps the
// barrier schedule identical to the generic form.
func (g *GEMM[T]) runPLFast(s *state[T], run *clsim.GroupRun, gx, gy int) {
	p := &g.P
	if p.SharedA {
		g.loadPanelAFast(s, run, gx, 0, 0, p.Kwg)
	}
	if p.SharedB {
		g.loadPanelBFast(s, run, gy, 0, 0, p.Kwg)
	}
	pwg := 0
	for ; pwg <= g.K-2*p.Kwg; pwg += p.Kwg {
		next := pwg + p.Kwg
		// Stage-fetch phases (Fig. 5 lines 6-7), fused away.
		if p.SharedA {
			run.PhaseBarrier()
		}
		if p.SharedB {
			run.PhaseBarrier()
		}
		g.computeUnit(s, run, gx, gy, pwg, 0, p.Kwg)
		// Stage-store phases (lines 15-16): load local memory directly.
		if p.SharedA {
			g.loadPanelAFast(s, run, gx, next, 0, p.Kwg)
		}
		if p.SharedB {
			g.loadPanelBFast(s, run, gy, next, 0, p.Kwg)
		}
	}
	g.computeUnit(s, run, gx, gy, pwg, 0, p.Kwg)
	g.mergeUnit(s, run, gx, gy)
}
