// Package matrix provides the dense-matrix substrate used throughout the
// GEMM auto-tuning system: row/column-major matrices in single and double
// precision, the block-major data layouts from the paper (CBL and RBL),
// and the copy / transpose / re-layout / zero-padding transforms the full
// GEMM routines perform before kernel execution.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Scalar is the element-type constraint for all matrix containers.
type Scalar interface {
	~float32 | ~float64
}

// Precision identifies the floating-point width of a GEMM problem.
type Precision int

const (
	// Single is 32-bit IEEE-754 (SGEMM).
	Single Precision = iota
	// Double is 64-bit IEEE-754 (DGEMM).
	Double
)

// Size returns the element size in bytes.
func (p Precision) Size() int {
	if p == Double {
		return 8
	}
	return 4
}

// String returns "single" or "double".
func (p Precision) String() string {
	if p == Double {
		return "double"
	}
	return "single"
}

// GEMMName returns the BLAS routine name for the precision.
func (p Precision) GEMMName() string {
	if p == Double {
		return "DGEMM"
	}
	return "SGEMM"
}

// Order enumerates storage orders for plain (non-blocked) matrices.
type Order int

const (
	// RowMajor stores rows contiguously.
	RowMajor Order = iota
	// ColMajor stores columns contiguously (Fortran/BLAS convention).
	ColMajor
)

// String returns a short order name.
func (o Order) String() string {
	if o == ColMajor {
		return "col-major"
	}
	return "row-major"
}

// Matrix is a dense rows×cols matrix of T with an explicit leading
// dimension. For RowMajor order, Stride is the distance between rows and
// must satisfy Stride >= Cols; for ColMajor it is the distance between
// columns and must satisfy Stride >= Rows.
type Matrix[T Scalar] struct {
	Rows, Cols int
	Stride     int
	Order      Order
	Data       []T
}

// New allocates a zeroed rows×cols matrix in the given order with the
// minimal stride.
func New[T Scalar](rows, cols int, order Order) *Matrix[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	stride := cols
	if order == ColMajor {
		stride = rows
	}
	return &Matrix[T]{
		Rows:   rows,
		Cols:   cols,
		Stride: stride,
		Order:  order,
		Data:   make([]T, rows*cols),
	}
}

// FromSlice wraps data as a rows×cols matrix with minimal stride. The
// slice is used directly (not copied) and must have length rows*cols.
func FromSlice[T Scalar](rows, cols int, order Order, data []T) *Matrix[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	stride := cols
	if order == ColMajor {
		stride = rows
	}
	return &Matrix[T]{Rows: rows, Cols: cols, Stride: stride, Order: order, Data: data}
}

// Index returns the flat offset of element (r, c).
func (m *Matrix[T]) Index(r, c int) int {
	if m.Order == RowMajor {
		return r*m.Stride + c
	}
	return c*m.Stride + r
}

// At returns element (r, c).
func (m *Matrix[T]) At(r, c int) T { return m.Data[m.Index(r, c)] }

// Set assigns element (r, c).
func (m *Matrix[T]) Set(r, c int, v T) { m.Data[m.Index(r, c)] = v }

// View returns a rows×cols submatrix starting at (r, c) that shares
// storage with m (writes through). The view keeps m's order and stride.
func (m *Matrix[T]) View(r, c, rows, cols int) *Matrix[T] {
	if r < 0 || c < 0 || rows < 0 || cols < 0 || r+rows > m.Rows || c+cols > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d)+%dx%d exceeds %dx%d", r, c, rows, cols, m.Rows, m.Cols))
	}
	if rows == 0 || cols == 0 {
		return &Matrix[T]{Rows: rows, Cols: cols, Stride: m.Stride, Order: m.Order}
	}
	return &Matrix[T]{
		Rows:   rows,
		Cols:   cols,
		Stride: m.Stride,
		Order:  m.Order,
		Data:   m.Data[m.Index(r, c):],
	}
}

// Clone returns a deep copy of m.
func (m *Matrix[T]) Clone() *Matrix[T] {
	out := &Matrix[T]{Rows: m.Rows, Cols: m.Cols, Stride: m.Stride, Order: m.Order}
	out.Data = make([]T, len(m.Data))
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element to v.
func (m *Matrix[T]) Fill(v T) {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.Set(r, c, v)
		}
	}
}

// FillRandom fills the matrix with uniform values in [-1, 1) from rng.
func (m *Matrix[T]) FillRandom(rng *rand.Rand) {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.Set(r, c, T(2*rng.Float64()-1))
		}
	}
}

// FillSequential fills element (r, c) with a small deterministic value
// derived from its coordinates; useful for layout round-trip tests where
// every element must be distinguishable.
func (m *Matrix[T]) FillSequential() {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.Set(r, c, T(r*m.Cols+c+1))
		}
	}
}

// Transpose returns a newly allocated transpose of m in the same order.
func (m *Matrix[T]) Transpose() *Matrix[T] {
	out := New[T](m.Cols, m.Rows, m.Order)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

// EqualApprox reports whether a and b have identical shape and all
// elements within tol relative tolerance (absolute for tiny magnitudes).
func EqualApprox[T Scalar](a, b *Matrix[T], tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxRelDiff(a, b) <= tol
}

// MaxRelDiff returns the maximum elementwise relative difference between
// a and b, where the denominator is max(1, |a|, |b|). Panics on shape
// mismatch.
func MaxRelDiff[T Scalar](a, b *Matrix[T]) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var worst float64
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			x := float64(a.At(r, c))
			y := float64(b.At(r, c))
			den := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
			d := math.Abs(x-y) / den
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Tolerance returns a sensible verification tolerance for an accumulation
// of depth k in the given precision: eps * sqrt(k) * safety.
func Tolerance(p Precision, k int) float64 {
	eps := 1.1920929e-07 // 2^-23
	if p == Double {
		eps = 2.220446049250313e-16 // 2^-52
	}
	if k < 1 {
		k = 1
	}
	return eps * math.Sqrt(float64(k)) * 32
}
