package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLayoutString(t *testing.T) {
	cases := map[Layout]string{LayoutRowMajor: "RM", LayoutCBL: "CBL", LayoutRBL: "RBL"}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
		back, err := ParseLayout(want)
		if err != nil || back != l {
			t.Errorf("ParseLayout(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseLayout("bogus"); err == nil {
		t.Errorf("ParseLayout should reject unknown names")
	}
}

// Every layout must be a bijection: all indices distinct and in range.
func TestBlockedIndexBijection(t *testing.T) {
	for _, layout := range []Layout{LayoutRowMajor, LayoutCBL, LayoutRBL} {
		b := NewBlocked[float64](12, 8, 3, 4, layout)
		seen := make(map[int]bool)
		for r := 0; r < b.Rows; r++ {
			for c := 0; c < b.Cols; c++ {
				idx := b.Index(r, c)
				if idx < 0 || idx >= len(b.Data) {
					t.Fatalf("%v: index (%d,%d)=%d out of range", layout, r, c, idx)
				}
				if seen[idx] {
					t.Fatalf("%v: index %d assigned twice", layout, idx)
				}
				seen[idx] = true
			}
		}
	}
}

// CBL: the data of each full-height column block is contiguous, stored
// row-major inside the block (Fig. 3(b)).
func TestCBLContiguity(t *testing.T) {
	b := NewBlocked[float64](6, 8, 2, 4, LayoutCBL)
	// Column block 1 covers columns 4..7; its first element (0,4) must
	// start right after the 6*4 elements of block 0.
	if got := b.Index(0, 4); got != 24 {
		t.Errorf("CBL block 1 start = %d, want 24", got)
	}
	// Inside a block, (r, c) and (r, c+1) are adjacent.
	if b.Index(3, 5)-b.Index(3, 4) != 1 {
		t.Errorf("CBL not unit stride within block row")
	}
	// Consecutive rows within a block are Cb apart.
	if b.Index(4, 4)-b.Index(3, 4) != 4 {
		t.Errorf("CBL row stride within block != Cb")
	}
}

// RBL: each Rb×Cb sub-block is contiguous row-major (Fig. 3(c)).
func TestRBLContiguity(t *testing.T) {
	b := NewBlocked[float64](6, 8, 2, 4, LayoutRBL)
	// Sub-block (0,0) occupies offsets [0,8); its element (1,3) is 7.
	if got := b.Index(1, 3); got != 7 {
		t.Errorf("RBL (1,3) = %d, want 7", got)
	}
	// Sub-block (0,1) starts at 8.
	if got := b.Index(0, 4); got != 8 {
		t.Errorf("RBL sub-block (0,1) start = %d, want 8", got)
	}
	// Row block 1 (rows 2..3) starts after the 2*8 elements of row block 0.
	if got := b.Index(2, 0); got != 16 {
		t.Errorf("RBL row block 1 start = %d, want 16", got)
	}
}

func TestBlockStart(t *testing.T) {
	b := NewBlocked[float64](8, 8, 2, 4, LayoutRBL)
	if b.BlockStart(1, 1) != b.Index(2, 4) {
		t.Errorf("BlockStart(1,1) mismatch")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, layout := range []Layout{LayoutRowMajor, LayoutCBL, LayoutRBL} {
		src := New[float64](5, 7, RowMajor)
		src.FillSequential()
		// Pad 5x7 to 6x8 with blocks 3x4.
		packed := Pack(src, false, 6, 8, 3, 4, layout)
		back := packed.Unpack(5, 7)
		if MaxRelDiff(src, back) != 0 {
			t.Errorf("%v: pack/unpack round trip differs", layout)
		}
		// Padding must be zero.
		for c := 0; c < 8; c++ {
			if packed.At(5, c) != 0 {
				t.Errorf("%v: padding row not zero at col %d", layout, c)
			}
		}
		for r := 0; r < 6; r++ {
			if packed.At(r, 7) != 0 {
				t.Errorf("%v: padding col not zero at row %d", layout, r)
			}
		}
	}
}

func TestPackTranspose(t *testing.T) {
	src := New[float64](4, 6, RowMajor)
	src.FillSequential()
	// Packing the transpose: destination is 6x4 padded to 6x4 exactly.
	packed := Pack(src, true, 6, 4, 3, 2, LayoutCBL)
	for r := 0; r < 6; r++ {
		for c := 0; c < 4; c++ {
			if packed.At(r, c) != src.At(c, r) {
				t.Fatalf("transposed pack mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestPackFromColMajorSource(t *testing.T) {
	src := New[float64](4, 4, ColMajor)
	src.FillSequential()
	packed := Pack(src, false, 4, 4, 2, 2, LayoutRBL)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if packed.At(r, c) != src.At(r, c) {
				t.Fatalf("col-major pack mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestPadDim(t *testing.T) {
	cases := []struct{ n, b, want int }{
		{0, 4, 0}, {1, 4, 4}, {4, 4, 4}, {5, 4, 8}, {100, 48, 144},
	}
	for _, c := range cases {
		if got := PadDim(c.n, c.b); got != c.want {
			t.Errorf("PadDim(%d,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
}

func TestCopyPad(t *testing.T) {
	src := New[float64](3, 3, RowMajor)
	src.FillSequential()
	out := CopyPad(src, false, 4, 5)
	if out.At(2, 2) != src.At(2, 2) || out.At(3, 4) != 0 {
		t.Errorf("CopyPad content wrong")
	}
	tr := CopyPad(src, true, 3, 3)
	if tr.At(0, 2) != src.At(2, 0) {
		t.Errorf("CopyPad transpose wrong")
	}
}

func TestFlatRowMajor(t *testing.T) {
	src := New[float64](4, 6, RowMajor)
	src.FillSequential()
	for _, layout := range []Layout{LayoutRowMajor, LayoutCBL, LayoutRBL} {
		packed := Pack(src, false, 4, 6, 2, 3, layout)
		flat := packed.FlatRowMajor()
		for r := 0; r < 4; r++ {
			for c := 0; c < 6; c++ {
				if flat[r*6+c] != src.At(r, c) {
					t.Fatalf("%v: FlatRowMajor mismatch at (%d,%d)", layout, r, c)
				}
			}
		}
	}
	// Row-major must return the backing slice, not a copy.
	rm := Pack(src, false, 4, 6, 2, 3, LayoutRowMajor)
	if &rm.FlatRowMajor()[0] != &rm.Data[0] {
		t.Errorf("FlatRowMajor should alias Data for row-major")
	}
}

// Property: for random shapes and block factors, packing then unpacking
// recovers the source exactly, for every layout.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(rows, cols, rb, cb uint8, transpose bool, which uint8, seed int64) bool {
		r := int(rows%20) + 1
		c := int(cols%20) + 1
		br := int(rb%6) + 1
		bc := int(cb%6) + 1
		layout := []Layout{LayoutRowMajor, LayoutCBL, LayoutRBL}[which%3]
		src := New[float32](r, c, RowMajor)
		src.FillRandom(rand.New(rand.NewSource(seed)))
		dr, dc := r, c
		if transpose {
			dr, dc = c, r
		}
		pr := PadDim(dr, br)
		pc := PadDim(dc, bc)
		packed := Pack(src, transpose, pr, pc, br, bc, layout)
		back := packed.Unpack(dr, dc)
		want := src
		if transpose {
			want = src.Transpose()
		}
		return MaxRelDiff(want, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
