package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrecisionSize(t *testing.T) {
	if Single.Size() != 4 {
		t.Errorf("Single.Size() = %d, want 4", Single.Size())
	}
	if Double.Size() != 8 {
		t.Errorf("Double.Size() = %d, want 8", Double.Size())
	}
	if Single.GEMMName() != "SGEMM" || Double.GEMMName() != "DGEMM" {
		t.Errorf("GEMMName wrong: %s %s", Single.GEMMName(), Double.GEMMName())
	}
	if Single.String() != "single" || Double.String() != "double" {
		t.Errorf("String wrong: %s %s", Single, Double)
	}
}

func TestNewShapes(t *testing.T) {
	m := New[float64](3, 5, RowMajor)
	if m.Stride != 5 {
		t.Errorf("row-major stride = %d, want 5", m.Stride)
	}
	c := New[float64](3, 5, ColMajor)
	if c.Stride != 3 {
		t.Errorf("col-major stride = %d, want 3", c.Stride)
	}
	if len(m.Data) != 15 || len(c.Data) != 15 {
		t.Errorf("data lengths %d %d, want 15", len(m.Data), len(c.Data))
	}
}

func TestIndexingOrders(t *testing.T) {
	rm := New[float32](4, 3, RowMajor)
	cm := New[float32](4, 3, ColMajor)
	v := float32(1)
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			rm.Set(r, c, v)
			cm.Set(r, c, v)
			v++
		}
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			if rm.At(r, c) != cm.At(r, c) {
				t.Fatalf("order mismatch at (%d,%d): %v vs %v", r, c, rm.At(r, c), cm.At(r, c))
			}
		}
	}
	// Row-major flat layout: element (1,2) is at 1*3+2.
	if rm.Data[5] != rm.At(1, 2) {
		t.Errorf("row-major flat mismatch")
	}
	// Col-major flat layout: element (1,2) is at 2*4+1.
	if cm.Data[9] != cm.At(1, 2) {
		t.Errorf("col-major flat mismatch")
	}
}

func TestTranspose(t *testing.T) {
	m := New[float64](3, 4, RowMajor)
	m.FillSequential()
	tr := m.Transpose()
	if tr.Rows != 4 || tr.Cols != 3 {
		t.Fatalf("transpose shape %dx%d, want 4x3", tr.Rows, tr.Cols)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if m.At(r, c) != tr.At(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
	back := tr.Transpose()
	if MaxRelDiff(m, back) != 0 {
		t.Errorf("double transpose differs")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New[float64](2, 2, RowMajor)
	m.Fill(3)
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) != 3 {
		t.Errorf("clone aliases original")
	}
}

func TestFillRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New[float32](16, 16, RowMajor)
	m.FillRandom(rng)
	for _, v := range m.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("random value %v out of [-1,1)", v)
		}
	}
}

func TestMaxRelDiff(t *testing.T) {
	a := New[float64](2, 2, RowMajor)
	b := New[float64](2, 2, RowMajor)
	a.Fill(1)
	b.Fill(1)
	b.Set(1, 1, 1+1e-7)
	d := MaxRelDiff(a, b)
	if d < 9e-8 || d > 2e-7 {
		t.Errorf("MaxRelDiff = %g, want ~1e-7", d)
	}
	if !EqualApprox(a, b, 1e-6) {
		t.Errorf("EqualApprox should pass at 1e-6")
	}
	if EqualApprox(a, b, 1e-9) {
		t.Errorf("EqualApprox should fail at 1e-9")
	}
}

func TestMaxRelDiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on shape mismatch")
		}
	}()
	MaxRelDiff(New[float64](2, 2, RowMajor), New[float64](2, 3, RowMajor))
}

func TestTolerance(t *testing.T) {
	if Tolerance(Single, 1024) <= Tolerance(Single, 16) {
		t.Errorf("tolerance should grow with depth")
	}
	if Tolerance(Double, 1024) >= Tolerance(Single, 1024) {
		t.Errorf("double tolerance should be below single")
	}
	if Tolerance(Single, 0) <= 0 {
		t.Errorf("tolerance must be positive for k=0")
	}
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, RowMajor, data)
	if m.At(1, 2) != 6 {
		t.Errorf("FromSlice At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 42)
	if data[0] != 42 {
		t.Errorf("FromSlice must alias the input slice")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on bad length")
		}
	}()
	FromSlice(2, 2, RowMajor, data)
}

func TestView(t *testing.T) {
	m := New[float64](6, 8, RowMajor)
	m.FillSequential()
	v := m.View(2, 3, 3, 4)
	if v.Rows != 3 || v.Cols != 4 || v.Stride != 8 {
		t.Fatalf("view shape wrong: %dx%d stride %d", v.Rows, v.Cols, v.Stride)
	}
	if v.At(0, 0) != m.At(2, 3) || v.At(2, 3) != m.At(4, 6) {
		t.Error("view indexing wrong")
	}
	v.Set(1, 1, -99)
	if m.At(3, 4) != -99 {
		t.Error("view must write through")
	}
	// Column-major views.
	cm := New[float64](6, 8, ColMajor)
	cm.FillSequential()
	vc := cm.View(1, 2, 4, 3)
	if vc.At(3, 2) != cm.At(4, 4) {
		t.Error("col-major view indexing wrong")
	}
	// Corner and empty views.
	last := m.View(5, 7, 1, 1)
	if last.At(0, 0) != m.At(5, 7) {
		t.Error("corner view wrong")
	}
	empty := m.View(6, 8, 0, 0)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Error("empty view wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range view must panic")
		}
	}()
	m.View(4, 4, 3, 4)
}

// Property: transpose is an involution for arbitrary small shapes.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(rows, cols uint8, seed int64) bool {
		r := int(rows%16) + 1
		c := int(cols%16) + 1
		m := New[float64](r, c, RowMajor)
		m.FillRandom(rand.New(rand.NewSource(seed)))
		return MaxRelDiff(m, m.Transpose().Transpose()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
