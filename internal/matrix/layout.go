package matrix

import "fmt"

// Layout enumerates the data layouts the code generator supports for the
// A and B kernel inputs (paper §III-D, Fig. 3).
type Layout int

const (
	// LayoutRowMajor is the plain row-major layout of Fig. 3(a).
	LayoutRowMajor Layout = iota
	// LayoutCBL is the column-block-row-major layout of Fig. 3(b): the
	// matrix is split into full-height column blocks, and the data of
	// each column block is stored in row-major order, blocks
	// left-to-right.
	LayoutCBL
	// LayoutRBL is the row-block-row-major layout of Fig. 3(c): the
	// matrix is split into Rb×Cb sub-blocks; each sub-block is stored in
	// row-major order; sub-blocks are ordered row-block by row-block,
	// left-to-right within a row block.
	LayoutRBL
)

// String returns the paper's abbreviation for the layout.
func (l Layout) String() string {
	switch l {
	case LayoutCBL:
		return "CBL"
	case LayoutRBL:
		return "RBL"
	default:
		return "RM"
	}
}

// ParseLayout converts a string produced by Layout.String back to a
// Layout value.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "RM", "row-major":
		return LayoutRowMajor, nil
	case "CBL":
		return LayoutCBL, nil
	case "RBL":
		return LayoutRBL, nil
	}
	return 0, fmt.Errorf("matrix: unknown layout %q", s)
}

// Blocked is a rows×cols matrix stored in one of the generator's layouts
// with blocking factors Rb (row-block height) and Cb (column-block
// width). Rows must be divisible by Rb and Cols by Cb; the GEMM planner
// zero-pads before packing to guarantee this.
//
// For the AᵀB kernel the A operand is a K×M transposed matrix blocked
// with (Rb, Cb) = (Kwg, Mwg) and the B operand a K×N matrix blocked with
// (Kwg, Nwg).
type Blocked[T Scalar] struct {
	Rows, Cols int
	Rb, Cb     int
	Layout     Layout
	Data       []T
}

// NewBlocked allocates a zeroed blocked matrix. It panics if the blocking
// factors do not evenly divide the dimensions (callers pad first).
func NewBlocked[T Scalar](rows, cols, rb, cb int, layout Layout) *Blocked[T] {
	if rb <= 0 || cb <= 0 {
		panic(fmt.Sprintf("matrix: non-positive block %dx%d", rb, cb))
	}
	if rows%rb != 0 || cols%cb != 0 {
		panic(fmt.Sprintf("matrix: %dx%d not divisible by block %dx%d", rows, cols, rb, cb))
	}
	return &Blocked[T]{
		Rows: rows, Cols: cols,
		Rb: rb, Cb: cb,
		Layout: layout,
		Data:   make([]T, rows*cols),
	}
}

// Index returns the flat offset of element (r, c) under the layout.
func (b *Blocked[T]) Index(r, c int) int {
	switch b.Layout {
	case LayoutCBL:
		// Full-height column block of width Cb, row-major inside.
		blk := c / b.Cb
		return blk*b.Rows*b.Cb + r*b.Cb + c%b.Cb
	case LayoutRBL:
		// Rb×Cb sub-blocks, row-major inside, ordered by row block
		// then column block.
		rb := r / b.Rb
		cb := c / b.Cb
		return rb*b.Rb*b.Cols + cb*b.Rb*b.Cb + (r%b.Rb)*b.Cb + c%b.Cb
	default:
		return r*b.Cols + c
	}
}

// At returns element (r, c).
func (b *Blocked[T]) At(r, c int) T { return b.Data[b.Index(r, c)] }

// Set assigns element (r, c).
func (b *Blocked[T]) Set(r, c int, v T) { b.Data[b.Index(r, c)] = v }

// BlockStart returns the flat offset at which the (brow, bcol) sub-block
// begins. For CBL, brow indexes Rb-tall slices within the column block
// bcol (the sub-block is contiguous only in RBL; in CBL consecutive rows
// of a sub-block are Cb apart, which is still unit-stride within a row).
func (b *Blocked[T]) BlockStart(brow, bcol int) int {
	return b.Index(brow*b.Rb, bcol*b.Cb)
}

// Pack copies src (with optional transposition) into a freshly allocated
// blocked matrix of size rows×cols (zero-padding any excess), where
// rows×cols must cover the (possibly transposed) source.
//
// If transpose is true, element (r, c) of the destination is src(c, r).
func Pack[T Scalar](src *Matrix[T], transpose bool, rows, cols, rb, cb int, layout Layout) *Blocked[T] {
	srcRows, srcCols := src.Rows, src.Cols
	if transpose {
		srcRows, srcCols = srcCols, srcRows
	}
	if rows < srcRows || cols < srcCols {
		panic(fmt.Sprintf("matrix: pack target %dx%d smaller than source %dx%d", rows, cols, srcRows, srcCols))
	}
	dst := NewBlocked[T](rows, cols, rb, cb, layout)
	for r := 0; r < srcRows; r++ {
		for c := 0; c < srcCols; c++ {
			var v T
			if transpose {
				v = src.At(c, r)
			} else {
				v = src.At(r, c)
			}
			dst.Set(r, c, v)
		}
	}
	return dst
}

// Unpack copies the top-left dstRows×dstCols corner of b into a new
// row-major matrix (dropping padding).
func (b *Blocked[T]) Unpack(dstRows, dstCols int) *Matrix[T] {
	if dstRows > b.Rows || dstCols > b.Cols {
		panic(fmt.Sprintf("matrix: unpack %dx%d exceeds blocked %dx%d", dstRows, dstCols, b.Rows, b.Cols))
	}
	out := New[T](dstRows, dstCols, RowMajor)
	for r := 0; r < dstRows; r++ {
		for c := 0; c < dstCols; c++ {
			out.Set(r, c, b.At(r, c))
		}
	}
	return out
}

// PadDim rounds n up to the next multiple of block (the paper's
// zero-padding for sizes not divisible by the blocking factors).
func PadDim(n, block int) int {
	if block <= 0 {
		panic("matrix: non-positive block in PadDim")
	}
	if r := n % block; r != 0 {
		return n + block - r
	}
	return n
}

// CopyPad returns a rows×cols row-major copy of src with zero padding,
// with optional transposition (dst(r,c) = src(c,r) when transpose).
func CopyPad[T Scalar](src *Matrix[T], transpose bool, rows, cols int) *Matrix[T] {
	srcRows, srcCols := src.Rows, src.Cols
	if transpose {
		srcRows, srcCols = srcCols, srcRows
	}
	if rows < srcRows || cols < srcCols {
		panic(fmt.Sprintf("matrix: CopyPad target %dx%d smaller than source %dx%d", rows, cols, srcRows, srcCols))
	}
	out := New[T](rows, cols, RowMajor)
	for r := 0; r < srcRows; r++ {
		for c := 0; c < srcCols; c++ {
			if transpose {
				out.Set(r, c, src.At(c, r))
			} else {
				out.Set(r, c, src.At(r, c))
			}
		}
	}
	return out
}

// FlatRowMajor returns b's logical contents as a flat row-major slice
// (rows*cols elements). Used when handing buffers to kernels that expect
// a specific layout to have been applied already — for LayoutRowMajor
// this is b.Data itself.
func (b *Blocked[T]) FlatRowMajor() []T {
	if b.Layout == LayoutRowMajor {
		return b.Data
	}
	out := make([]T, b.Rows*b.Cols)
	for r := 0; r < b.Rows; r++ {
		for c := 0; c < b.Cols; c++ {
			out[r*b.Cols+c] = b.At(r, c)
		}
	}
	return out
}
