package batch

import (
	"math"
	"testing"
	"testing/quick"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

func validBatch(count int) *Strided[float64] {
	const m, n, k = 3, 4, 2
	return &Strided[float64]{
		M: m, N: n, K: k, Count: count, Alpha: 1,
		Order: matrix.RowMajor,
		A:     make([]float64, m*k*count), StrideA: m * k,
		B: make([]float64, k*n*count), StrideB: k * n,
		C: make([]float64, m*n*count), StrideC: m * n,
	}
}

func TestValidate(t *testing.T) {
	if err := validBatch(4).Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Strided[float64])
	}{
		{"zero count", func(sb *Strided[float64]) { sb.Count = 0 }},
		{"negative dim", func(sb *Strided[float64]) { sb.K = -1 }},
		{"negative stride", func(sb *Strided[float64]) { sb.StrideA = -2 }},
		{"short A stride", func(sb *Strided[float64]) { sb.StrideA = sb.M*sb.K - 1 }},
		{"short A slab", func(sb *Strided[float64]) { sb.A = sb.A[:len(sb.A)-1] }},
		{"short B slab", func(sb *Strided[float64]) { sb.B = sb.B[:1] }},
		{"short C slab", func(sb *Strided[float64]) { sb.C = sb.C[:len(sb.C)-1] }},
		{"zero C stride overlaps", func(sb *Strided[float64]) { sb.StrideC = 0 }},
	}
	for _, tc := range cases {
		sb := validBatch(4)
		tc.mut(sb)
		if err := sb.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the batch", tc.name)
		}
	}
	// Zero A/B strides broadcast and are legal; a zero C stride is fine
	// for a single-item batch.
	sb := validBatch(4)
	sb.StrideA, sb.StrideB = 0, 0
	sb.A, sb.B = sb.A[:sb.M*sb.K], sb.B[:sb.K*sb.N]
	if err := sb.Validate(); err != nil {
		t.Errorf("broadcast batch rejected: %v", err)
	}
	one := validBatch(1)
	one.StrideC = 0
	if err := one.Validate(); err != nil {
		t.Errorf("single-item zero C stride rejected: %v", err)
	}
}

func TestItemsShapesAndSharing(t *testing.T) {
	sb := validBatch(3)
	sb.TransA = blas.Trans
	for i := range sb.A {
		sb.A[i] = float64(i)
	}
	items, err := sb.Items()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	// op(A) is M×K, stored K×M under Trans.
	if items[0].A.Rows != sb.K || items[0].A.Cols != sb.M {
		t.Errorf("transposed A item is %dx%d, want %dx%d", items[0].A.Rows, items[0].A.Cols, sb.K, sb.M)
	}
	// Item headers wrap the slab (no copies): writing through the item
	// must land in the slab.
	items[1].C.Set(0, 0, 42)
	if sb.C[1*sb.StrideC] != 42 {
		t.Error("item C header does not alias the slab")
	}
	// Items are cached: a second call returns the same headers.
	again, _ := sb.Items()
	if &again[0] != &items[0] {
		t.Error("Items rebuilt headers on a warm call")
	}
}

func TestItemsBroadcast(t *testing.T) {
	sb := validBatch(5)
	sb.StrideA = 0
	sb.A = sb.A[:sb.M*sb.K]
	items, err := sb.Items()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(items); i++ {
		if &items[i].A.Data[0] != &items[0].A.Data[0] {
			t.Fatalf("item %d does not share the broadcast A", i)
		}
	}
}

func TestFlopCount(t *testing.T) {
	sb := validBatch(6)
	want := blas.FlopCount(sb.M, sb.N, sb.K) * 6
	if got := sb.FlopCount(); got != want {
		t.Errorf("FlopCount = %g, want %g", got, want)
	}
}

// TestPartitionCoversExactly property-checks the apportionment: spans
// are contiguous, in order, and cover [0, count) exactly once for any
// weights (including non-finite and non-positive ones).
func TestPartitionCoversExactly(t *testing.T) {
	f := func(countRaw uint16, weightsRaw []int8) bool {
		count := int(countRaw % 500)
		n := len(weightsRaw)
		if n == 0 {
			return Partition(count, nil) == nil
		}
		weights := make([]float64, n)
		for i, w := range weightsRaw {
			switch {
			case w%7 == 0:
				weights[i] = math.NaN()
			case w%5 == 0:
				weights[i] = math.Inf(1)
			default:
				weights[i] = float64(w)
			}
		}
		spans := Partition(count, weights)
		if len(spans) != n {
			return false
		}
		lo := 0
		for _, sp := range spans {
			if sp.Lo != lo || sp.Hi < sp.Lo {
				return false
			}
			lo = sp.Hi
		}
		return lo == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionProportional(t *testing.T) {
	spans := Partition(100, []float64{3, 1})
	if spans[0].Len() != 75 || spans[1].Len() != 25 {
		t.Errorf("3:1 split of 100 = %d/%d, want 75/25", spans[0].Len(), spans[1].Len())
	}
	// All-invalid weights fall back to equal shares.
	eq := Partition(9, []float64{0, -1, math.NaN()})
	for i, sp := range eq {
		if sp.Len() != 3 {
			t.Errorf("equal-share span %d has %d items, want 3", i, sp.Len())
		}
	}
}
