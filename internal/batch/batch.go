// Package batch describes strided-batched GEMM workloads: count
// same-shape multiplications C_i ← α·op(A_i)·op(B_i) + β·C_i whose
// operands live at fixed element strides inside three contiguous
// slabs, the cuBLAS gemmStridedBatched convention. The descriptor is
// pure data — validation, per-item matrix headers and flop accounting
// — so the execution layers (gemmimpl plans, the sched pool, the serve
// wire protocol) can all share one shape of truth without import
// cycles.
//
// The ML-serving traffic shape this models is millions of small
// matrices: one plan and one set of packed-operand fingerprints are
// amortized across the whole batch, and a zero A or B stride
// broadcasts that operand (one weight matrix against a stream of
// inputs) so its pack is skipped for every item after the first.
package batch

import (
	"fmt"
	"sync"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

// Strided describes count same-shape GEMMs over three strided slabs:
//
//	C_i ← Alpha·op(A_i)·op(B_i) + Beta·C_i,  i = 0..Count-1
//	A_i = A[i*StrideA : i*StrideA + |A|]      (|A| = op-source elements)
//
// Every item has the same M, N, K, transposes, scalars and storage
// Order; only the operand data differ. StrideA or StrideB may be 0 to
// share (broadcast) that operand across the batch; StrideC must give
// every item a disjoint result region.
//
// A Strided must not be copied after first use: the cached item
// headers ride a sync.Once (go vet's copylocks check flags the copy).
// Build a fresh descriptor to point the same slabs elsewhere.
type Strided[T matrix.Scalar] struct {
	TransA, TransB blas.Transpose
	Alpha, Beta    T
	// M, N, K are the per-item problem dimensions of op(A)·op(B).
	M, N, K int
	// Order is the storage order of every operand matrix.
	Order matrix.Order
	// A, B, C are the operand slabs; StrideA/StrideB/StrideC are the
	// element offsets between consecutive items (≥ the item's element
	// count, or 0 for A/B to broadcast one operand to every item).
	A, B, C                   []T
	StrideA, StrideB, StrideC int
	// Count is the number of GEMMs in the batch.
	Count int

	// items caches the per-item matrix headers so warm batched calls
	// rebuild nothing (the zero-alloc guarantee covers the whole warm
	// call, headers included).
	itemsOnce sync.Once
	items     []Item[T]
	itemsErr  error
}

// Item is one batch member's operand views into the slabs.
type Item[T matrix.Scalar] struct {
	A, B, C *matrix.Matrix[T]
}

// OperandElems returns the per-item element counts |A|, |B|, |C| for
// the descriptor's shape: op(A) is M×K so its source holds M·K
// elements regardless of transpose, likewise B with K·N and C with
// M·N.
func (sb *Strided[T]) OperandElems() (na, nb, nc int) {
	return sb.M * sb.K, sb.K * sb.N, sb.M * sb.N
}

// Validate checks the descriptor: positive shape and count, strides
// that cover each item, non-overlapping C regions, and slabs long
// enough for the last item.
func (sb *Strided[T]) Validate() error {
	if sb.Count <= 0 {
		return fmt.Errorf("batch: non-positive count %d", sb.Count)
	}
	if sb.M <= 0 || sb.N <= 0 || sb.K <= 0 {
		return fmt.Errorf("batch: non-positive dimensions %dx%dx%d", sb.M, sb.N, sb.K)
	}
	na, nb, nc := sb.OperandElems()
	check := func(name string, slab []T, stride, elems int, allowShared bool) error {
		if stride < 0 {
			return fmt.Errorf("batch: negative %s stride %d", name, stride)
		}
		if stride == 0 {
			if !allowShared && sb.Count > 1 {
				return fmt.Errorf("batch: %s stride 0 would overlap %d results", name, sb.Count)
			}
		} else if stride < elems {
			return fmt.Errorf("batch: %s stride %d < item size %d", name, stride, elems)
		}
		need := (sb.Count-1)*stride + elems
		if len(slab) < need {
			return fmt.Errorf("batch: %s slab holds %d elements, needs %d for %d items", name, len(slab), need, sb.Count)
		}
		return nil
	}
	if err := check("A", sb.A, sb.StrideA, na, true); err != nil {
		return err
	}
	if err := check("B", sb.B, sb.StrideB, nb, true); err != nil {
		return err
	}
	return check("C", sb.C, sb.StrideC, nc, false)
}

// Items returns the cached per-item matrix headers, building them on
// first use. The A_i header is the stored shape of op(A) — M×K when
// TransA is NoTrans, K×M when Trans — wrapping exactly the item's
// elements of the slab, so downstream layers read and write nothing
// outside the item.
func (sb *Strided[T]) Items() ([]Item[T], error) {
	sb.itemsOnce.Do(func() {
		if err := sb.Validate(); err != nil {
			sb.itemsErr = err
			return
		}
		na, nb, nc := sb.OperandElems()
		ar, ac := sb.M, sb.K
		if sb.TransA == blas.Trans {
			ar, ac = ac, ar
		}
		br, bc := sb.K, sb.N
		if sb.TransB == blas.Trans {
			br, bc = bc, br
		}
		sb.items = make([]Item[T], sb.Count)
		for i := range sb.items {
			sb.items[i] = Item[T]{
				A: matrix.FromSlice(ar, ac, sb.Order, sb.A[i*sb.StrideA:i*sb.StrideA+na]),
				B: matrix.FromSlice(br, bc, sb.Order, sb.B[i*sb.StrideB:i*sb.StrideB+nb]),
				C: matrix.FromSlice(sb.M, sb.N, sb.Order, sb.C[i*sb.StrideC:i*sb.StrideC+nc]),
			}
		}
	})
	return sb.items, sb.itemsErr
}

// FlopCount returns the arithmetic volume of the whole batch
// (2·m·n·k per item).
func (sb *Strided[T]) FlopCount() float64 {
	return blas.FlopCount(sb.M, sb.N, sb.K) * float64(sb.Count)
}

// Span is a contiguous range [Lo, Hi) of batch indices assigned to one
// executor.
type Span struct{ Lo, Hi int }

// Len returns the number of items in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Partition splits [0, count) into contiguous spans proportional to
// weights (higher weight → more items), one span per weight, by
// largest-remainder apportionment. Non-finite or non-positive weights
// count as equal shares. Spans may be empty; they always cover every
// index exactly once, in order — the contiguity is what keeps a
// partitioned batch bit-identical to the loop-of-GEMMs oracle (each
// item is computed whole by one executor, never split).
func Partition(count int, weights []float64) []Span {
	n := len(weights)
	if n == 0 {
		return nil
	}
	w := make([]float64, n)
	var total float64
	for i, x := range weights {
		if x > 0 && x < 1e300 {
			w[i] = x
		}
	}
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		for i := range w {
			w[i] = 1
		}
		total = float64(n)
	}
	sizes := make([]int, n)
	rem := make([]float64, n)
	assigned := 0
	for i, x := range w {
		exact := float64(count) * x / total
		sizes[i] = int(exact)
		rem[i] = exact - float64(sizes[i])
		assigned += sizes[i]
	}
	for assigned < count {
		best := 0
		for i := 1; i < n; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		sizes[best]++
		rem[best] = -1
		assigned++
	}
	out := make([]Span, n)
	lo := 0
	for i, sz := range sizes {
		out[i] = Span{Lo: lo, Hi: lo + sz}
		lo += sz
	}
	return out
}
