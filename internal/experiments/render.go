// Package experiments regenerates every table and figure of the
// paper's evaluation section (Table I-III, Figs. 7-11) plus the
// ablations its analysis calls out, on top of the auto-tuner, the
// performance model, the full GEMM implementation and the vendor
// baselines. Results render as aligned text tables (the form the paper
// prints) and as CSV for plotting.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells are blank-filled.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV returns the table in CSV form (title as a comment line).
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Line is one curve of a figure.
type Line struct {
	Name string
	X    []int
	Y    []float64
}

// Series is a figure: several lines over a common x meaning.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
}

// grid collects the union of x values in ascending order.
func (s *Series) grid() []int {
	seen := map[int]bool{}
	var xs []int
	for _, l := range s.Lines {
		for _, x := range l.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

func (l *Line) at(x int) (float64, bool) {
	for i, xv := range l.X {
		if xv == x {
			return l.Y[i], true
		}
	}
	return 0, false
}

// Render returns the figure as a text table: one row per x value, one
// column per line.
func (s *Series) Render() string {
	t := Table{Title: s.Title, Columns: append([]string{s.XLabel}, names(s.Lines)...)}
	for _, x := range s.grid() {
		cells := []string{fmt.Sprintf("%d", x)}
		for i := range s.Lines {
			if y, ok := s.Lines[i].at(x); ok {
				cells = append(cells, fmt.Sprintf("%.1f", y))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// CSV returns the figure as CSV with the same layout as Render.
func (s *Series) CSV() string {
	t := Table{Title: fmt.Sprintf("%s (%s)", s.Title, s.YLabel), Columns: append([]string{s.XLabel}, names(s.Lines)...)}
	for _, x := range s.grid() {
		cells := []string{fmt.Sprintf("%d", x)}
		for i := range s.Lines {
			if y, ok := s.Lines[i].at(x); ok {
				cells = append(cells, fmt.Sprintf("%.2f", y))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t.CSV()
}

func names(lines []Line) []string {
	out := make([]string, len(lines))
	for i := range lines {
		out[i] = lines[i].Name
	}
	return out
}
