package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"oclgemm/internal/matrix"
)

// One shared session across the package's tests: experiments share
// tuning runs exactly as the harness does.
var (
	sessOnce sync.Once
	sess     *Session
)

func session(t *testing.T) *Session {
	t.Helper()
	sessOnce.Do(func() {
		sess = NewSession(Config{MaxCandidates: 4000, MaxSize: 6144})
	})
	return sess
}

func cell(t *testing.T, tb *Table, rowKey func([]string) bool, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", col, tb.Columns)
	}
	for _, r := range tb.Rows {
		if rowKey(r) {
			return r[ci]
		}
	}
	t.Fatalf("no matching row for column %q", col)
	return ""
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestTable1(t *testing.T) {
	tb := session(t).Table1()
	if len(tb.Columns) != 7 {
		t.Fatalf("Table I needs 6 device columns, got %v", tb.Columns)
	}
	out := tb.Render()
	for _, frag := range []string{"Tahiti", "Bulldozer", "947.2", "3788.8", "158.4", "Scratchpad", "Global"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table I missing %q", frag)
		}
	}
}

func TestTable2(t *testing.T) {
	tb, err := session(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	// 12 parameter rows per precision block.
	if len(tb.Rows) != 24 {
		t.Fatalf("Table II rows = %d, want 24", len(tb.Rows))
	}
	// Efficiencies must be in the plausible band on every device.
	for _, r := range tb.Rows {
		if r[1] != "Efficiency" {
			continue
		}
		for _, c := range r[2:] {
			v := num(t, c)
			if v < 20 || v > 112 {
				t.Errorf("efficiency %s%% out of range in row %v", c, r)
			}
		}
	}
	out := tb.Render()
	for _, frag := range []string{"Mwg,Nwg,Kwg", "Algorithm", "GFlop/s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table II missing %q", frag)
		}
	}
}

func TestTable3HeadlineComparisons(t *testing.T) {
	tb, err := session(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	get := func(dev, impl, col string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == dev && r[1] == impl }, col))
	}
	// Headline shape (paper abstract): our implementations beat the
	// vendor library on the AMD GPUs...
	for _, dev := range []string{"Tahiti", "Cayman"} {
		for _, col := range []string{"DGEMM NN", "SGEMM NN", "DGEMM TN", "SGEMM TN"} {
			if get(dev, "Ours", col) <= get(dev, "Vendor", col) {
				t.Errorf("%s %s: ours (%.0f) must beat clBLAS (%.0f)",
					dev, col, get(dev, "Ours", col), get(dev, "Vendor", col))
			}
		}
	}
	// ...are comparable on the NVIDIA GPUs...
	for _, dev := range []string{"Kepler", "Fermi"} {
		ratio := get(dev, "Ours", "DGEMM NN") / get(dev, "Vendor", "DGEMM NN")
		if ratio < 0.75 || ratio > 1.45 {
			t.Errorf("%s DGEMM: ours/vendor = %.2f, want comparable", dev, ratio)
		}
	}
	// ...and lose clearly to the vendor libraries on the CPUs.
	for _, dev := range []string{"Sandy Bridge", "Bulldozer"} {
		if get(dev, "Ours", "DGEMM NN") >= get(dev, "Vendor", "DGEMM NN") {
			t.Errorf("%s: ours must stay below the CPU vendor library", dev)
		}
	}
}

func TestFig7(t *testing.T) {
	for _, prec := range precisions {
		fig, err := session(t).Fig7(prec)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Lines) != 6 {
			t.Fatalf("Fig 7 needs 6 lines, got %d", len(fig.Lines))
		}
		for _, l := range fig.Lines {
			if len(l.X) < 4 {
				t.Errorf("%s: too few points (%d)", l.Name, len(l.X))
				continue
			}
			if l.Y[0] >= l.Y[len(l.Y)-1] {
				t.Errorf("%s: curve must ramp up (%.0f .. %.0f)", l.Name, l.Y[0], l.Y[len(l.Y)-1])
			}
			if l.X[len(l.X)-1] > 6144 {
				t.Errorf("%s: Fig 7 x range exceeds 6144", l.Name)
			}
		}
		// Tahiti must be the fastest device at large N (paper Fig. 7).
		best := ""
		var bestY float64
		for _, l := range fig.Lines {
			if y := l.Y[len(l.Y)-1]; y > bestY {
				bestY, best = y, l.Name
			}
		}
		if best != "Tahiti" {
			t.Errorf("%s: fastest device should be Tahiti, got %s", prec.GEMMName(), best)
		}
	}
}

func TestFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("36 tuning runs")
	}
	tb, err := session(t).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig 8 needs 6 device rows")
	}
	for _, r := range tb.Rows {
		for i, c := range r[1:] {
			if c == "fail" {
				// Only PL (DGEMM) on the Bulldozer may fail.
				if r[0] != "Bulldozer" || tb.Columns[i+1] != "PL (DGEMM)" {
					t.Errorf("unexpected failure at %s / %s", r[0], tb.Columns[i+1])
				}
				continue
			}
			v := num(t, c)
			if v <= 0 || v > 1.0001 {
				t.Errorf("relative performance %v out of (0,1] at %s / %s", v, r[0], tb.Columns[i+1])
			}
		}
	}
	// Bulldozer PL DGEMM must fail (paper §IV-A).
	if got := cell(t, tb, func(r []string) bool { return r[0] == "Bulldozer" }, "PL (DGEMM)"); got != "fail" {
		t.Errorf("Bulldozer PL DGEMM = %q, want fail", got)
	}
	// CPU variation is relatively small (paper): every non-failing CPU
	// algorithm reaches at least half of the best.
	for _, dev := range []string{"Sandy Bridge", "Bulldozer"} {
		for i, col := range tb.Columns[1:] {
			c := cell(t, tb, func(r []string) bool { return r[0] == dev }, tb.Columns[i+1])
			if c == "fail" {
				continue
			}
			if v := num(t, c); v < 0.5 {
				t.Errorf("%s %s: CPU algorithm variation too large (%.2f)", dev, col, v)
			}
		}
	}
}

func TestFig9(t *testing.T) {
	for _, prec := range precisions {
		fig, err := session(t).Fig9(prec)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Lines) != 3 {
			t.Fatalf("Fig 9 needs 3 lines, got %d", len(fig.Lines))
		}
		ours, clblas, prev := fig.Lines[0], fig.Lines[1], fig.Lines[2]
		lastY := func(l Line) float64 { return l.Y[len(l.Y)-1] }
		if lastY(ours) <= lastY(clblas) {
			t.Errorf("%s: this study (%.0f) must beat clBLAS (%.0f) at large N",
				prec.GEMMName(), lastY(ours), lastY(clblas))
		}
		if lastY(ours) <= lastY(prev)*0.98 {
			t.Errorf("%s: this study (%.0f) must not lose to the previous study (%.0f)",
				prec.GEMMName(), lastY(ours), lastY(prev))
		}
		// Small sizes: copying makes our implementation slow (paper).
		if ours.Y[0] > 0.6*lastY(ours) {
			t.Errorf("%s: our implementation should ramp slowly (copy overhead): %.0f vs %.0f",
				prec.GEMMName(), ours.Y[0], lastY(ours))
		}
	}
}

func TestFig10(t *testing.T) {
	fig, err := session(t).Fig10(matrix.Single)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines) != 5 { // ours×2, CUBLAS×2, MAGMA
		t.Fatalf("Fig 10 needs 5 lines, got %d", len(fig.Lines))
	}
	var oursFermi, cublasFermi float64
	for _, l := range fig.Lines {
		switch {
		case strings.HasPrefix(l.Name, "This study (Fermi"):
			oursFermi = l.Y[len(l.Y)-1]
		case strings.HasPrefix(l.Name, "NVIDIA CUBLAS 4.1.28"):
			cublasFermi = l.Y[len(l.Y)-1]
		}
	}
	if oursFermi == 0 || cublasFermi == 0 {
		t.Fatal("missing Fermi lines")
	}
	if r := oursFermi / cublasFermi; r < 0.7 || r > 1.4 {
		t.Errorf("Fermi SGEMM ours/CUBLAS = %.2f, paper says comparable", r)
	}
}

func TestFig11(t *testing.T) {
	fig, err := session(t).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines) != 4 {
		t.Fatalf("Fig 11 needs 4 lines, got %d", len(fig.Lines))
	}
	last := map[string]float64{}
	for _, l := range fig.Lines {
		last[l.Name] = l.Y[len(l.Y)-1]
	}
	mkl := last["Intel MKL 2011.10.319"]
	atlas := last["ATLAS 3.10.0"]
	ours13 := last["This study (Intel SDK 2013 beta)"]
	ours12 := last["This study (Intel SDK 2012)"]
	if !(mkl > atlas && atlas > ours13 && ours13 > ours12) {
		t.Errorf("Fig 11 ordering wrong: MKL=%.0f ATLAS=%.0f ours13=%.0f ours12=%.0f",
			mkl, atlas, ours13, ours12)
	}
	// The SDK upgrade is worth around 20% (paper).
	if r := ours13 / ours12; r < 1.1 || r > 1.35 {
		t.Errorf("SDK 2013/2012 ratio = %.2f, paper says ~1.2", r)
	}
}

func TestAblationLocalMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("12 extra tuning runs")
	}
	tb, err := session(t).AblationLocalMemory()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("ablation rows = %d, want 12", len(tb.Rows))
	}
	ratio := func(dev, prec string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == dev && r[1] == prec }, "Ratio"))
	}
	// No-LDS is a subspace of the full space, but both searches sample
	// their spaces at this test's reduced budget, so a few percent of
	// sampling wobble is possible.
	for _, r := range tb.Rows {
		if v := num(t, r[4]); v > 1.06 {
			t.Errorf("no-LDS must not beat full space: %v", r)
		}
	}
	// Kepler SGEMM: clear loss without LDS (paper: 1440 → 1150).
	if v := ratio("Kepler", "SGEMM"); v > 0.92 {
		t.Errorf("Kepler SGEMM no-LDS ratio %.2f, want clear loss", v)
	}
	// Cayman winner avoids local memory, so the ratio is ~1.
	if v := ratio("Cayman", "SGEMM"); v < 0.97 {
		t.Errorf("Cayman SGEMM no-LDS ratio %.2f, want ~1 (LDS hurts there)", v)
	}
	// CPUs: no prominent difference.
	for _, dev := range []string{"Sandy Bridge", "Bulldozer"} {
		if v := ratio(dev, "DGEMM"); v < 0.9 {
			t.Errorf("%s DGEMM no-LDS ratio %.2f, want mild", dev, v)
		}
	}
}

func TestAblationLayoutAndBankConflicts(t *testing.T) {
	if testing.Short() {
		t.Skip("12 extra tuning runs")
	}
	tb, err := session(t).AblationLayout()
	if err != nil {
		t.Fatal(err)
	}
	// Row-major must never win; the effect is big on AMD GPUs.
	for _, r := range tb.Rows {
		v := num(t, r[4])
		if v > 1.0 {
			t.Errorf("row-major must not beat block-major: %v", r)
		}
		if (r[0] == "Tahiti" || r[0] == "Cayman") && v > 0.995 {
			t.Errorf("%s %s: layout effect should be visible on AMD GPUs (%.3f)", r[0], r[1], v)
		}
	}

	fig, err := session(t).BankConflictSeries()
	if err != nil {
		t.Fatal(err)
	}
	rm := fig.Lines[0]
	at := func(l Line, n int) float64 {
		for i, x := range l.X {
			if x == n {
				return l.Y[i]
			}
		}
		t.Fatalf("no point at N=%d", n)
		return 0
	}
	if at(rm, 2048) > 0.75*at(rm, 1920) {
		t.Errorf("row-major kernel must dip at N=2048: %.0f vs %.0f at 1920", at(rm, 2048), at(rm, 1920))
	}
	bm := fig.Lines[1]
	if at(bm, 2048) < 0.9*at(bm, 1920) {
		t.Errorf("block-major kernel must be immune at N=2048: %.0f vs %.0f", at(bm, 2048), at(bm, 1920))
	}
}

func TestCypressComparison(t *testing.T) {
	tb, err := session(t).CypressComparison()
	if err != nil {
		t.Fatal(err)
	}
	ours := num(t, cell(t, tb, func(r []string) bool { return strings.HasPrefix(r[0], "This study") }, "GFlop/s"))
	il := num(t, cell(t, tb, func(r []string) bool { return strings.HasPrefix(r[0], "Nakasato") }, "GFlop/s"))
	du := num(t, cell(t, tb, func(r []string) bool { return strings.HasPrefix(r[0], "Du et al.") }, "GFlop/s"))
	// Paper §IV-C: ours 495 vs IL 498 (within a hair), both far above
	// Du et al.'s 308.
	if r := ours / il; r < 0.85 || r > 1.15 {
		t.Errorf("ours/IL = %.2f, paper says ~0.99", r)
	}
	if ours <= du*1.3 {
		t.Errorf("ours (%.0f) must be far above Du et al. (%.0f)", ours, du)
	}
}

func TestSessionCache(t *testing.T) {
	s := session(t)
	before := s.CachedSearches()
	if _, err := s.Selection("tahiti", matrix.Double, Full); err != nil {
		t.Fatal(err)
	}
	mid := s.CachedSearches()
	if _, err := s.Selection("tahiti", matrix.Double, Full); err != nil {
		t.Fatal(err)
	}
	if s.CachedSearches() != mid {
		t.Error("repeated selection must hit the cache")
	}
	if mid < before {
		t.Error("cache shrank")
	}
}

func TestDeviceResolution(t *testing.T) {
	for _, id := range append(append([]string{}, mainDevices...), "cypress", "sandybridge-sdk2012") {
		if _, err := Device(id); err != nil {
			t.Errorf("Device(%q): %v", id, err)
		}
	}
	if _, err := Device("nope"); err == nil {
		t.Error("unknown device must fail")
	}
}

func TestPortabilityTable(t *testing.T) {
	tb, err := session(t).PortabilityTable(matrix.Single)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 || len(tb.Columns) != 7 {
		t.Fatalf("portability matrix shape wrong: %dx%d", len(tb.Rows), len(tb.Columns))
	}
	offDiagBelow := 0
	offDiagTotal := 0
	for i, r := range tb.Rows {
		for j, c := range r[1:] {
			if i == j {
				if c != "1.00" {
					t.Errorf("diagonal must be 1.00, got %q", c)
				}
				continue
			}
			offDiagTotal++
			if c == "fail" {
				offDiagBelow++ // strongest form of non-portability
				continue
			}
			if v := num(t, c); v < 0.9 {
				offDiagBelow++
			}
			if v := num(t, c); v > 1.05 {
				t.Errorf("foreign kernel must not beat the native tuning: %s at (%d,%d)", c, i, j)
			}
		}
	}
	// The paper's motivation: most foreign kernels fall well short (or
	// fail outright) on other devices.
	if offDiagBelow < offDiagTotal/2 {
		t.Errorf("performance looks too portable: only %d of %d off-diagonal entries below 0.9",
			offDiagBelow, offDiagTotal)
	}
}

func TestStrategyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("18 searches")
	}
	tb, err := session(t).StrategyComparison(matrix.Double, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("strategy table rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		ex := num(t, r[1])
		rnd := num(t, r[2])
		ann := num(t, r[3])
		if ex <= 0 || rnd <= 0 || ann <= 0 {
			t.Errorf("%s: non-positive strategy results %v", r[0], r)
		}
		// With equal budgets no strategy should be out of band.
		if ann < 0.7*ex || rnd < 0.5*ex {
			t.Errorf("%s: strategies diverge too much: %v", r[0], r)
		}
	}
}
