package experiments

import (
	"fmt"

	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/perfmodel"
)

// PortabilityTable makes the paper's motivation explicit (§I:
// "performance is not always portable across different processors in
// OpenCL"): it takes the kernel tuned for each device and evaluates it
// on every other device, reporting the fraction of the target device's
// own tuned performance it reaches. Auto-tuning is worthwhile exactly
// because the off-diagonal entries fall well below 1.
func (s *Session) PortabilityTable(prec matrix.Precision) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Performance portability: %s kernel tuned for row-device, run on column-device (fraction of the column device's own tuned performance)", prec.GEMMName()),
		Columns: []string{"Tuned for \\ Run on"},
	}
	var ids []string
	for _, id := range mainDevices {
		d, _ := device.ByID(id)
		t.Columns = append(t.Columns, d.CodeName)
		ids = append(ids, id)
	}

	for _, rowID := range ids {
		rowSel, err := s.Selection(rowID, prec, Full)
		if err != nil {
			return nil, err
		}
		rowDev, _ := device.ByID(rowID)
		cells := []string{rowDev.CodeName}
		for _, colID := range ids {
			colSel, err := s.Selection(colID, prec, Full)
			if err != nil {
				return nil, err
			}
			colDev, _ := device.ByID(colID)
			if rowID == colID {
				cells = append(cells, "1.00")
				continue
			}
			p := rowSel.Best.Params
			n := probeFor(colDev, p.LCM())
			gf, err := perfmodel.KernelGFlops(colDev, &p, n, n, n)
			if err != nil {
				// The foreign kernel does not even run here (e.g. the
				// work-group exceeds the device limit, local memory
				// overflows, or a device quirk rejects it) — the
				// strongest form of non-portability.
				cells = append(cells, "fail")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.2f", gf/colSel.Best.Best))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// probeFor picks an evaluation size appropriate to the device class,
// aligned to the kernel's LCM.
func probeFor(d *device.Spec, lcm int) int {
	base := 4096
	if d.Kind == device.CPU {
		base = 1536
	}
	n := base / lcm * lcm
	if n < lcm {
		n = lcm
	}
	return n
}
