package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"A", "Blong"}}
	tb.AddRow("1", "2")
	tb.AddRow("333") // short row: blank-filled
	out := tb.Render()
	if !strings.HasPrefix(out, "T\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "A    Blong") {
		t.Errorf("columns not aligned:\n%s", out)
	}
	if !strings.Contains(out, "333") {
		t.Errorf("missing row:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "# T\nA,Blong\n1,2\n333,\n") {
		t.Errorf("CSV wrong:\n%s", csv)
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{Title: "Fig", XLabel: "N", YLabel: "GF",
		Lines: []Line{
			{Name: "a", X: []int{128, 256}, Y: []float64{1, 2}},
			{Name: "b", X: []int{256, 512}, Y: []float64{3, 4}},
		}}
	out := s.Render()
	for _, frag := range []string{"Fig", "N", "a", "b", "128", "256", "512", "3.0"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// The union grid must be sorted and lines sparse-filled.
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // comment, header, 3 x-values
		t.Errorf("CSV rows = %d:\n%s", len(lines), csv)
	}
	if !strings.Contains(csv, "128,1.00,") {
		t.Errorf("sparse fill wrong:\n%s", csv)
	}
}

func TestSeriesGridSorted(t *testing.T) {
	s := &Series{Lines: []Line{{Name: "x", X: []int{512, 128, 256}, Y: []float64{1, 2, 3}}}}
	g := s.grid()
	for i := 1; i < len(g); i++ {
		if g[i] < g[i-1] {
			t.Fatalf("grid not sorted: %v", g)
		}
	}
}
