package experiments

import (
	"fmt"

	"oclgemm/internal/core"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// StrategyComparison compares search strategies at equal evaluation
// budgets: the paper's sampled-exhaustive three-stage search against
// uniform random sampling and simulated annealing (an extension the
// paper leaves open — its §III-F engine is the first column). Values
// are best-found GFlop/s at the probe size.
func (s *Session) StrategyComparison(prec matrix.Precision, budget int) (*Table, error) {
	if budget <= 0 {
		budget = 2000
	}
	t := &Table{
		Title: fmt.Sprintf("Search strategies at %d evaluations (%s, best probe GFlop/s)",
			budget, prec.GEMMName()),
		Columns: []string{"Processor", "Sampled exhaustive", "Random sampling", "Simulated annealing",
			"Anneal/Exhaustive"},
	}
	for _, id := range mainDevices {
		d, _ := device.ByID(id)
		tn, err := core.New(core.Options{
			Device: d, Precision: prec,
			MaxCandidates: budget,
			MaxSize:       s.cfg.MaxSize,
		})
		if err != nil {
			return nil, err
		}
		sel, err := tn.Search()
		if err != nil {
			return nil, err
		}
		rnd, err := tn.RandomSearch(budget, 1)
		if err != nil {
			return nil, err
		}
		ann, err := tn.Anneal(budget, 1)
		if err != nil {
			return nil, err
		}
		exBest := sel.Best.Probe
		t.AddRow(d.CodeName,
			fmt.Sprintf("%.0f", exBest),
			fmt.Sprintf("%.0f", rnd.Best.Probe),
			fmt.Sprintf("%.0f", ann.Best.Probe),
			fmt.Sprintf("%.2f", ann.Best.Probe/exBest))
	}
	return t, nil
}
