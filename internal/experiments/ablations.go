package experiments

import (
	"fmt"

	"oclgemm/internal/codegen"
	"oclgemm/internal/core"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/perfmodel"
	"oclgemm/internal/vendorlib"
)

// AblationLocalMemory reproduces the paper's §IV-A local-memory
// discussion: the best kernel with and without local-memory staging on
// every processor. On Kepler the paper reports 1440 → 1150 SGEMM; on
// the Cayman local memory never wins; on the CPUs the difference is
// small.
func (s *Session) AblationLocalMemory() (*Table, error) {
	t := &Table{
		Title: "Ablation: local memory usage (best kernel GFlop/s)",
		Columns: []string{"Processor", "Precision", "With LDS search", "No-LDS search",
			"Ratio", "Winner uses LDS"},
	}
	for _, id := range mainDevices {
		d, _ := device.ByID(id)
		for _, prec := range precisions {
			full, err := s.Selection(id, prec, Full)
			if err != nil {
				return nil, err
			}
			no, err := s.Selection(id, prec, NoLocalMemory)
			if err != nil {
				return nil, err
			}
			t.AddRow(d.CodeName, prec.GEMMName(),
				fmt.Sprintf("%.0f", full.Best.Best),
				fmt.Sprintf("%.0f", no.Best.Best),
				fmt.Sprintf("%.2f", no.Best.Best/full.Best.Best),
				fmt.Sprintf("%v", full.Best.Params.UsesLocalMemory()))
		}
	}
	return t, nil
}

// AblationLayout reproduces the layout discussion of §IV-A: the best
// row-major-only kernel against the block-major winner on every
// processor ("Influence of block-major layouts to the performance is
// big on the two AMD GPUs while it is relatively small on the other
// processors").
func (s *Session) AblationLayout() (*Table, error) {
	t := &Table{
		Title:   "Ablation: block-major vs row-major layouts (best kernel GFlop/s)",
		Columns: []string{"Processor", "Precision", "Block-major", "Row-major", "Ratio"},
	}
	for _, id := range mainDevices {
		d, _ := device.ByID(id)
		for _, prec := range precisions {
			full, err := s.Selection(id, prec, Full)
			if err != nil {
				return nil, err
			}
			rm, err := s.Selection(id, prec, RowMajorOnly)
			if err != nil {
				return nil, err
			}
			t.AddRow(d.CodeName, prec.GEMMName(),
				fmt.Sprintf("%.0f", full.Best.Best),
				fmt.Sprintf("%.0f", rm.Best.Best),
				fmt.Sprintf("%.2f", rm.Best.Best/full.Best.Best))
		}
	}
	return t, nil
}

// BankConflictSeries reproduces the power-of-two cliff of §IV-A: the
// fastest Tahiti row-major DGEMM kernel (power-of-two blocking, so
// padding cannot break the stride) across sizes around multiples of
// 2048, against the block-major winner which is immune.
func (s *Session) BankConflictSeries() (*Series, error) {
	fig := &Series{
		Title:  "Ablation: Tahiti DGEMM row-major bank-conflict cliff at power-of-two sizes",
		XLabel: "N", YLabel: "GFlop/s",
	}
	rm, err := s.Selection("tahiti", matrix.Double, RowMajorOnly)
	if err != nil {
		return nil, err
	}
	// The cliff belongs to kernels whose blocking divides 2048, so the
	// padded buffer stride stays a power of two; tuned winners with
	// e.g. Mwg=96 dodge the conflicts via padding (and a search may
	// also find compute-bound kernels that barely notice their memory
	// streams). Pin the row-major line to the canonical power-of-two
	// configuration on the row-major winner's algorithm so the series
	// is deterministic and exhibits the stream behaviour the paper
	// describes.
	p := rm.Best.Params
	p.Mwg, p.Nwg, p.Kwg = 64, 64, 32
	p.MdimC, p.NdimC = 16, 16
	p.MdimA, p.NdimB = 16, 16
	p.Kwi = 2
	p.VectorWidth = 1
	p.Algorithm = codegen.BA
	p.SharedA, p.SharedB = false, true
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: power-of-two row-major config invalid: %w", err)
	}
	pick := core.Result{Params: p}
	full, err := s.Selection("tahiti", matrix.Double, Full)
	if err != nil {
		return nil, err
	}
	d, _ := device.ByID("tahiti")
	sizes := []int{1536, 1792, 1920, 2048, 2176, 2304, 3072, 3584, 3840, 4096, 4224}
	lines := []struct {
		name   string
		params codegen.Params
	}{
		{"Row-major kernel", pick.Params},
		{"Block-major kernel", full.Best.Params},
	}
	for _, l := range lines {
		var xs []int
		var ys []float64
		for _, n := range sizes {
			gf, err := perfmodel.KernelGFlops(d, &l.params, n, n, n)
			if err != nil {
				continue
			}
			xs = append(xs, n)
			ys = append(ys, gf)
		}
		fig.Lines = append(fig.Lines, Line{Name: l.name, X: xs, Y: ys})
	}
	return fig, nil
}

// CypressComparison reproduces the §IV-C comparison on the Radeon HD
// 5870: our tuner applied to the Cypress against Nakasato's IL kernels
// (498 GFlop/s) and Du et al.'s OpenCL tuner (308 GFlop/s).
func (s *Session) CypressComparison() (*Table, error) {
	t := &Table{
		Title:   "Comparison on the Cypress GPU (Radeon HD 5870), DGEMM",
		Columns: []string{"Implementation", "GFlop/s", "Efficiency"},
	}
	d, err := Device("cypress")
	if err != nil {
		return nil, err
	}
	sel, err := s.Selection("cypress", matrix.Double, Full)
	if err != nil {
		return nil, err
	}
	peak := d.PeakGFlops(matrix.Double)
	t.AddRow("This study (auto-tuned OpenCL)", fmt.Sprintf("%.0f", sel.Best.Best),
		fmt.Sprintf("%.0f%%", 100*sel.Best.Best/peak))
	for _, name := range []string{"Nakasato IL kernels", "Du et al. OpenCL"} {
		b, err := vendorlib.Lookup(name, "cypress")
		if err != nil {
			return nil, err
		}
		t.AddRow(name, fmt.Sprintf("%.0f", b.DP.Max()), fmt.Sprintf("%.0f%%", 100*b.DP.Max()/peak))
	}
	return t, nil
}
