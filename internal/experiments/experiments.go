package experiments

import (
	"fmt"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/core"
	"oclgemm/internal/device"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
	"oclgemm/internal/vendorlib"
)

// mainDevices is Table I's column order.
var mainDevices = []string{"tahiti", "cayman", "kepler", "fermi", "sandybridge", "bulldozer"}

// Precisions in the paper's DGEMM-first order.
var precisions = []matrix.Precision{matrix.Double, matrix.Single}

// Table1 reproduces Table I (processor specifications).
func (s *Session) Table1() *Table {
	devs := device.All()
	t := &Table{Title: "Table I: Processor specification", Columns: []string{"Row"}}
	for _, d := range devs {
		t.Columns = append(t.Columns, d.CodeName)
	}
	row := func(name string, f func(d *device.Spec) string) {
		cells := []string{name}
		for _, d := range devs {
			cells = append(cells, f(d))
		}
		t.AddRow(cells...)
	}
	row("Product name", func(d *device.Spec) string { return d.Product })
	row("Core clock speed [GHz]", func(d *device.Spec) string { return fmt.Sprintf("%.3g", d.ClockGHz) })
	row("Number of compute units", func(d *device.Spec) string { return fmt.Sprintf("%d", d.ComputeUnits) })
	row("Max DP operations / clock", func(d *device.Spec) string { return fmt.Sprintf("%d", d.DPOpsPerClock) })
	row("Max SP operations / clock", func(d *device.Spec) string { return fmt.Sprintf("%d", d.SPOpsPerClock) })
	row("Peak DP performance [GFlop/s]", func(d *device.Spec) string { return trimFloat(d.PeakGFlops(matrix.Double)) })
	row("Peak SP performance [GFlop/s]", func(d *device.Spec) string { return trimFloat(d.PeakGFlops(matrix.Single)) })
	row("Global memory size [GB]", func(d *device.Spec) string { return fmt.Sprintf("%g", d.GlobalMemGB) })
	row("Peak memory bandwidth [GB/s]", func(d *device.Spec) string { return fmt.Sprintf("%g", d.BandwidthGBs) })
	row("L3 cache size [MB]", func(d *device.Spec) string {
		if d.L3KB == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", d.L3KB/1024)
	})
	row("L2 cache size [kB]", func(d *device.Spec) string { return fmt.Sprintf("%d", d.L2KB) })
	row("L1 cache size [kB]", func(d *device.Spec) string { return fmt.Sprintf("%d", d.L1KB) })
	row("Local memory size [kB]", func(d *device.Spec) string { return fmt.Sprintf("%d", d.LocalMemKB) })
	row("Local memory type", func(d *device.Spec) string { return d.LocalMem.String() })
	row("OpenCL SDK", func(d *device.Spec) string { return d.OpenCLSDK })
	return t
}

// trimFloat renders near-integers without a decimal part (Table I
// prints 3789 but 158.4).
func trimFloat(v float64) string {
	r := fmt.Sprintf("%.1f", v)
	if len(r) > 2 && r[len(r)-2:] == ".0" {
		return r[:len(r)-2]
	}
	return r
}

func strideString(p codegen.Params) string {
	out := ""
	if p.StrideM {
		out += "M"
	}
	if p.StrideN {
		if out != "" {
			out += ","
		}
		out += "N"
	}
	if out == "" {
		return "-"
	}
	return out
}

func sharedString(p codegen.Params) string {
	out := ""
	if p.SharedA {
		out += "A"
	}
	if p.SharedB {
		if out != "" {
			out += ","
		}
		out += "B"
	}
	if out == "" {
		return "-"
	}
	return out
}

// Table2 reproduces Table II: the parameters of the fastest
// C ← α·AᵀB + β·C kernel per device and precision, with the maximum
// performance and efficiency.
func (s *Session) Table2() (*Table, error) {
	t := &Table{
		Title:   "Table II: Parameters for the fastest ATB kernels and maximum performance",
		Columns: []string{"Precision", "Parameter"},
	}
	for _, id := range mainDevices {
		d, _ := device.ByID(id)
		t.Columns = append(t.Columns, d.CodeName)
	}
	for _, prec := range precisions {
		sels := make([]*core.Selection, len(mainDevices))
		for i, id := range mainDevices {
			sel, err := s.Selection(id, prec, Full)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", id, prec, err)
			}
			sels[i] = sel
		}
		row := func(name string, f func(sel *core.Selection) string) {
			cells := []string{prec.GEMMName(), name}
			for _, sel := range sels {
				cells = append(cells, f(sel))
			}
			t.AddRow(cells...)
		}
		row("Mwg,Nwg,Kwg", func(sel *core.Selection) string {
			p := sel.Best.Params
			return fmt.Sprintf("%d,%d,%d", p.Mwg, p.Nwg, p.Kwg)
		})
		row("Mwi,Nwi,Kwi", func(sel *core.Selection) string {
			p := sel.Best.Params
			return fmt.Sprintf("%d,%d,%d", p.Mwi(), p.Nwi(), p.Kwi)
		})
		row("MdimC,NdimC", func(sel *core.Selection) string {
			p := sel.Best.Params
			return fmt.Sprintf("%d,%d", p.MdimC, p.NdimC)
		})
		row("MdimA,KdimA", func(sel *core.Selection) string {
			p := sel.Best.Params
			if !p.SharedA {
				return "-"
			}
			return fmt.Sprintf("%d,%d", p.MdimA, p.KdimA())
		})
		row("KdimB,NdimB", func(sel *core.Selection) string {
			p := sel.Best.Params
			if !p.SharedB {
				return "-"
			}
			return fmt.Sprintf("%d,%d", p.KdimB(), p.NdimB)
		})
		row("Vector", func(sel *core.Selection) string {
			return fmt.Sprintf("%d", sel.Best.Params.VectorWidth)
		})
		row("Stride", func(sel *core.Selection) string { return strideString(sel.Best.Params) })
		row("Shared", func(sel *core.Selection) string { return sharedString(sel.Best.Params) })
		row("Layout", func(sel *core.Selection) string {
			p := sel.Best.Params
			return fmt.Sprintf("%s,%s", p.LayoutA, p.LayoutB)
		})
		row("Algorithm", func(sel *core.Selection) string { return sel.Best.Params.Algorithm.String() })
		row("GFlop/s", func(sel *core.Selection) string { return fmt.Sprintf("%.0f", sel.Best.Best) })
		cells := []string{prec.GEMMName(), "Efficiency"}
		for i, id := range mainDevices {
			d, _ := device.ByID(id)
			cells = append(cells, fmt.Sprintf("%.0f%%", 100*sels[i].Best.Best/d.PeakGFlops(prec)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// implBest returns the full-GEMM (copy-inclusive) maximum performance
// for the tuned kernel on the device.
func (s *Session) implBest(devID string, prec matrix.Precision) (float64, *gemmimpl.Impl, error) {
	sel, err := s.Selection(devID, prec, Full)
	if err != nil {
		return 0, nil, err
	}
	d, err := Device(devID)
	if err != nil {
		return 0, nil, err
	}
	im, err := gemmimpl.New(d, sel.Best.Params)
	if err != nil {
		return 0, nil, err
	}
	maxSize := s.cfg.MaxSize
	if maxSize <= 0 {
		maxSize = 8192
	}
	best := 0.0
	for _, n := range core.Sizes(sel.Best.Params.LCM(), maxSize) {
		gf, err := im.GFlops(n, n, n)
		if err != nil {
			continue
		}
		if gf > best {
			best = gf
		}
	}
	return best, im, nil
}

// Table3 reproduces Table III: maximum GFlop/s of the full GEMM
// implementations (all four types, column-major data) against the
// vendor libraries.
func (s *Session) Table3() (*Table, error) {
	t := &Table{
		Title: "Table III: Maximum performance [GFlop/s] of our GEMM implementations and vendor libraries (column-major)",
		Columns: []string{"Processor", "Impl",
			"DGEMM NN", "DGEMM NT", "DGEMM TN", "DGEMM TT",
			"SGEMM NN", "SGEMM NT", "SGEMM TN", "SGEMM TT"},
	}
	for _, id := range mainDevices {
		d, _ := device.ByID(id)
		ours := []string{d.CodeName, "Ours"}
		for _, prec := range precisions {
			best, _, err := s.implBest(id, prec)
			if err != nil {
				return nil, err
			}
			// The copy-based implementation is type-independent
			// (§IV-B): the copy pass absorbs the transpositions.
			for range blas.GEMMTypes {
				ours = append(ours, fmt.Sprintf("%.0f", best))
			}
		}
		t.AddRow(ours...)

		v, err := vendorlib.Vendor(id)
		if err != nil {
			return nil, err
		}
		vend := []string{d.CodeName, "Vendor"}
		for _, tp := range []vendorlib.TypePerf{v.DP, v.SP} {
			for i := range blas.GEMMTypes {
				vend = append(vend, fmt.Sprintf("%.0f", tp[i]))
			}
		}
		t.AddRow(vend...)
	}
	return t, nil
}

// figSizes filters a kernel's stage-2 sizes to the figure's x range.
func figSizes(lcm, maxN int) []int {
	var out []int
	for _, n := range core.Sizes(lcm, maxN) {
		out = append(out, n)
	}
	return out
}

// Fig7 reproduces Fig. 7: performance of the fastest kernels as a
// function of problem size, one line per processor.
func (s *Session) Fig7(prec matrix.Precision) (*Series, error) {
	fig := &Series{
		Title:  fmt.Sprintf("Fig. 7: %s kernel performance vs matrix size", prec.GEMMName()),
		XLabel: "N", YLabel: "GFlop/s",
	}
	for _, id := range mainDevices {
		sel, err := s.Selection(id, prec, Full)
		if err != nil {
			return nil, err
		}
		d, _ := device.ByID(id)
		var xs []int
		var ys []float64
		for _, pt := range sel.Best.Curve {
			if pt.N > 6144 {
				continue
			}
			xs = append(xs, pt.N)
			ys = append(ys, pt.GFlops)
		}
		fig.Lines = append(fig.Lines, Line{Name: d.CodeName, X: xs, Y: ys})
	}
	return fig, nil
}

// Fig8 reproduces Fig. 8: relative performance of the three GEMM
// algorithms per processor, against the device's overall best.
func (s *Session) Fig8() (*Table, error) {
	t := &Table{
		Title: "Fig. 8: Relative performance of the GEMM algorithms (vs Table II maximum)",
		Columns: []string{"Processor",
			"BA (DGEMM)", "PL (DGEMM)", "DB (DGEMM)",
			"BA (SGEMM)", "PL (SGEMM)", "DB (SGEMM)"},
	}
	variants := []Variant{OnlyBA, OnlyPL, OnlyDB}
	for _, id := range mainDevices {
		d, _ := device.ByID(id)
		cells := []string{d.CodeName}
		for _, prec := range precisions {
			full, err := s.Selection(id, prec, Full)
			if err != nil {
				return nil, err
			}
			denom := full.Best.Best
			bests := make([]float64, len(variants))
			for i, v := range variants {
				sel, err := s.Selection(id, prec, v)
				if err != nil {
					// PL DGEMM on the Bulldozer yields no valid
					// kernels at all: the paper plots it as absent.
					bests[i] = 0
					continue
				}
				bests[i] = sel.Best.Best
				if bests[i] > denom {
					denom = bests[i]
				}
			}
			for _, b := range bests {
				if b == 0 {
					cells = append(cells, "fail")
				} else {
					cells = append(cells, fmt.Sprintf("%.2f", b/denom))
				}
			}
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig9 reproduces Fig. 9: full-GEMM performance on the Tahiti against
// AMD clBLAS and the authors' previous study.
func (s *Session) Fig9(prec matrix.Precision) (*Series, error) {
	fig := &Series{
		Title:  fmt.Sprintf("Fig. 9: %s C<-aAB+bC implementations on the Tahiti GPU", prec.GEMMName()),
		XLabel: "N", YLabel: "GFlop/s",
	}
	_, im, err := s.implBest("tahiti", prec)
	if err != nil {
		return nil, err
	}
	sizes := figSizes(im.Params.LCM(), 6144)
	var ys []float64
	for _, n := range sizes {
		gf, err := im.GFlops(n, n, n)
		if err != nil {
			return nil, err
		}
		ys = append(ys, gf)
	}
	fig.Lines = append(fig.Lines, Line{Name: "This study", X: sizes, Y: ys})

	nn := blas.GEMMTypes[0]
	for _, name := range []string{"AMD clBLAS 1.8.291", "Our previous study (MCSoC-12)"} {
		b, err := vendorlib.Lookup(name, "tahiti")
		if err != nil {
			return nil, err
		}
		fig.Lines = append(fig.Lines, Line{Name: name, X: sizes, Y: b.Curve(prec, nn, sizes)})
	}
	return fig, nil
}

// Fig10 reproduces Fig. 10: full-GEMM performance on the Fermi and
// Kepler against CUBLAS and MAGMA.
func (s *Session) Fig10(prec matrix.Precision) (*Series, error) {
	fig := &Series{
		Title:  fmt.Sprintf("Fig. 10: %s C<-aAB+bC implementations on the Fermi and Kepler GPUs", prec.GEMMName()),
		XLabel: "N", YLabel: "GFlop/s",
	}
	nn := blas.GEMMTypes[0]
	for _, devID := range []string{"fermi", "kepler"} {
		_, im, err := s.implBest(devID, prec)
		if err != nil {
			return nil, err
		}
		d, _ := device.ByID(devID)
		sizes := figSizes(im.Params.LCM(), 6144)
		var ys []float64
		for _, n := range sizes {
			gf, err := im.GFlops(n, n, n)
			if err != nil {
				return nil, err
			}
			ys = append(ys, gf)
		}
		fig.Lines = append(fig.Lines, Line{Name: "This study (" + d.CodeName + ")", X: sizes, Y: ys})
		for _, b := range vendorlib.ForDevice(devID) {
			fig.Lines = append(fig.Lines, Line{Name: b.Name + " (" + d.CodeName + ")", X: sizes, Y: b.Curve(prec, nn, sizes)})
		}
	}
	return fig, nil
}

// Fig11 reproduces Fig. 11: DGEMM implementations on the Sandy Bridge —
// ours under the Intel SDK 2013 beta and SDK 2012, against Intel MKL
// and ATLAS.
func (s *Session) Fig11() (*Series, error) {
	fig := &Series{
		Title:  "Fig. 11: DGEMM C<-aAB+bC implementations on the Sandy Bridge CPU",
		XLabel: "N", YLabel: "GFlop/s",
	}
	nn := blas.GEMMTypes[0]
	for _, b := range []string{"Intel MKL 2011.10.319", "ATLAS 3.10.0"} {
		base, err := vendorlib.Lookup(b, "sandybridge")
		if err != nil {
			return nil, err
		}
		sizes := figSizes(256, 5120)
		fig.Lines = append(fig.Lines, Line{Name: b, X: sizes, Y: base.Curve(matrix.Double, nn, sizes)})
	}
	for _, devID := range []string{"sandybridge", "sandybridge-sdk2012"} {
		_, im, err := s.implBest(devID, matrix.Double)
		if err != nil {
			return nil, err
		}
		d, _ := Device(devID)
		sizes := figSizes(im.Params.LCM(), 5120)
		var ys []float64
		for _, n := range sizes {
			gf, err := im.GFlops(n, n, n)
			if err != nil {
				return nil, err
			}
			ys = append(ys, gf)
		}
		fig.Lines = append(fig.Lines, Line{Name: "This study (" + d.OpenCLSDK + ")", X: sizes, Y: ys})
	}
	return fig, nil
}
