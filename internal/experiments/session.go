package experiments

import (
	"fmt"
	"sync"

	"oclgemm/internal/codegen"
	"oclgemm/internal/core"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// Variant selects a search-space restriction for a tuning run.
type Variant int

const (
	// Full is the complete improved-generator space.
	Full Variant = iota
	// NoLocalMemory disables local-memory staging (§IV-A ablation).
	NoLocalMemory
	// OnlyBA / OnlyPL / OnlyDB restrict the algorithm (Fig. 8).
	OnlyBA
	OnlyPL
	OnlyDB
	// PreviousStudy is the MCSoC-12 generator's restricted space.
	PreviousStudy
	// RowMajorOnly forbids block-major layouts (§IV-A layout ablation).
	RowMajorOnly
)

func (v Variant) String() string {
	switch v {
	case NoLocalMemory:
		return "no-local-memory"
	case OnlyBA:
		return "BA"
	case OnlyPL:
		return "PL"
	case OnlyDB:
		return "DB"
	case PreviousStudy:
		return "previous-study"
	case RowMajorOnly:
		return "row-major"
	default:
		return "full"
	}
}

// Config bounds the cost of a session's tuning runs.
type Config struct {
	// MaxCandidates is the per-search stage-1 budget (0 = tuner
	// default of 25000; tests and quick runs use less).
	MaxCandidates int
	// MaxSize is the largest stage-2 problem size (0 = 8192).
	MaxSize int
}

// Session caches tuning runs so that the tables and figures sharing a
// selection (e.g. Table II and Fig. 7) pay for each search once.
type Session struct {
	cfg Config

	mu   sync.Mutex
	sels map[string]*core.Selection
}

// NewSession creates a session.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg, sels: make(map[string]*core.Selection)}
}

// Device resolves a device ID, including the SDK and Cypress variants
// that are not part of Table I's main list.
func Device(id string) (*device.Spec, error) {
	switch id {
	case "sandybridge-sdk2012":
		return device.SandyBridgeSDK2012(), nil
	case "cypress":
		return device.Cypress(), nil
	}
	return device.ByID(id)
}

func space(d *device.Spec, v Variant) *core.Space {
	var s core.Space
	switch v {
	case NoLocalMemory:
		s = core.NoLocalMemorySpace(d)
	case OnlyBA:
		s = core.AlgorithmSpace(d, codegen.BA)
	case OnlyPL:
		s = core.AlgorithmSpace(d, codegen.PL)
	case OnlyDB:
		s = core.AlgorithmSpace(d, codegen.DB)
	case PreviousStudy:
		s = core.PreviousStudySpace(d)
	case RowMajorOnly:
		s = core.LayoutRestrictedSpace(d, core.LayoutPair{A: matrix.LayoutRowMajor, B: matrix.LayoutRowMajor})
	default:
		s = core.DefaultSpace(d)
	}
	return &s
}

// Selection returns (and caches) the tuning result for a device,
// precision and space variant.
func (s *Session) Selection(devID string, prec matrix.Precision, v Variant) (*core.Selection, error) {
	key := fmt.Sprintf("%s/%s/%s", devID, prec, v)
	s.mu.Lock()
	if sel, ok := s.sels[key]; ok {
		s.mu.Unlock()
		return sel, nil
	}
	s.mu.Unlock()

	d, err := Device(devID)
	if err != nil {
		return nil, err
	}
	tn, err := core.New(core.Options{
		Device:        d,
		Precision:     prec,
		Space:         space(d, v),
		MaxCandidates: s.cfg.MaxCandidates,
		MaxSize:       s.cfg.MaxSize,
	})
	if err != nil {
		return nil, err
	}
	sel, err := tn.Search()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.sels[key] = sel
	s.mu.Unlock()
	return sel, nil
}

// CachedSearches reports how many distinct tuning runs the session has
// performed.
func (s *Session) CachedSearches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sels)
}
