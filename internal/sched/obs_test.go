package sched

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// brokenDevice is a catalog device whose modeled clock is degenerate,
// so every perfmodel estimate on it is NaN — the corruption the
// estimator guards must absorb.
func brokenDevice(t testing.TB, id string) *device.Spec {
	t.Helper()
	d, err := device.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	bad := *d
	bad.ClockGHz = math.NaN()
	return &bad
}

// tileSeconds must translate degenerate model output (NaN routine
// time from a broken device model) into +Inf, not propagate the NaN:
// NaN compares false against everything, so it would silently win or
// lose every greedy-assignment comparison at random.
func TestTileSecondsDegenerateModelIsInf(t *testing.T) {
	devs := []*device.Spec{brokenDevice(t, "tahiti")}
	p := testPool(t, Options{Devices: devs})
	got := tileSeconds(p.members[0], matrix.Single, 64, 64, 64)
	if !math.IsInf(got, 1) {
		t.Fatalf("tileSeconds on NaN-clock device = %v, want +Inf", got)
	}
}

// When no member can be priced, assign must still deal tiles to every
// member. The old fallback indexed by a queue length that stopped
// changing after the first tile, starving all members but one.
func TestAssignRoundRobinFallbackRotates(t *testing.T) {
	devs := []*device.Spec{brokenDevice(t, "tahiti"), brokenDevice(t, "cayman")}
	p := testPool(t, Options{Devices: devs})
	tiles := tilesFor(128, 128, 32, 32) // 16 tiles
	queues := assign(tiles, p.members, matrix.Single, 64)
	if len(queues) != 2 {
		t.Fatalf("got %d queues, want 2", len(queues))
	}
	for i, q := range queues {
		if len(q) != len(tiles)/2 {
			t.Errorf("queue %d got %d of %d tiles, want an even split", i, len(q), len(tiles))
		}
	}
}

// Estimate must refuse a problem the model cannot price on any member
// instead of returning an infinite makespan and zero throughput.
func TestEstimateUnpriceable(t *testing.T) {
	devs := []*device.Spec{brokenDevice(t, "tahiti")}
	p := testPool(t, Options{Devices: devs})
	_, err := p.Estimate(matrix.Single, 256, 256, 256)
	if !errors.Is(err, ErrUnpriceable) {
		t.Fatalf("Estimate on unpriceable pool: err = %v, want ErrUnpriceable", err)
	}
}

// A healthy pool must keep estimating as before.
func TestEstimateStillPriceable(t *testing.T) {
	p := testPool(t, Options{})
	est, err := p.Estimate(matrix.Double, 512, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !(est.GFlops > 0) || !(est.Seconds > 0) {
		t.Fatalf("estimate degenerate: %+v", est)
	}
}

// sumCounters totals every counter whose name starts with prefix.
func sumCounters(s obs.Snapshot, prefix string) int64 {
	var total int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// An instrumented pool run must account for every tile exactly once
// across the per-member counters, record one run, and emit one
// sched.tile span per executed tile.
func TestPoolMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	p := testPool(t, Options{Obs: reg, Trace: tr, Workers: 1})

	const m, n, k = 96, 96, 48
	a := randMat[float64](m, k, 1)
	b := randMat[float64](k, n, 2)
	c := randMat[float64](m, n, 3)
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
		t.Fatal(err)
	}

	tm, tn := p.tileDims(m, n, len(p.members))
	wantTiles := int64(len(tilesFor(m, n, tm, tn)))

	s := reg.Snapshot()
	if got := sumCounters(s, "sched.tiles{"); got != wantTiles {
		t.Errorf("sched.tiles total = %d, want %d", got, wantTiles)
	}
	if got := s.Counters["sched.runs"]; got != 1 {
		t.Errorf("sched.runs = %d, want 1", got)
	}
	if h, ok := s.Histograms["sched.run.seconds"]; !ok || h.Count != 1 {
		t.Errorf("sched.run.seconds count = %+v, want 1 observation", h)
	}
	// The members' engines flow into the same registry.
	if got := s.Counters["gemm.plan.miss"]; got <= 0 {
		t.Errorf("gemm.plan.miss = %d, want > 0 (cold plans were built)", got)
	}
	if got := sumCounters(s, "gemm.calls"); got != wantTiles {
		t.Errorf("gemm.calls = %d, want %d (one engine call per tile)", got, wantTiles)
	}
	// So does the clsim layer underneath them.
	if got := s.Counters["clsim.kernel.launches"]; got <= 0 {
		t.Errorf("clsim.kernel.launches = %d, want > 0", got)
	}

	var tileSpans int64
	for _, rec := range tr.Snapshot() {
		if rec.Name == "sched.tile" {
			tileSpans++
			if rec.Attrs["device"] == "" {
				t.Errorf("sched.tile span missing device attr: %+v", rec)
			}
		}
	}
	if tileSpans != wantTiles {
		t.Errorf("sched.tile spans = %d, want %d", tileSpans, wantTiles)
	}
}

// DeviceStats accounting must stay consistent under concurrent Runs:
// with the race detector on, this doubles as the torn-snapshot check,
// and the totals must add up exactly — every tile counted once, steals
// a subset of tiles, no member left with a mid-update snapshot.
func TestPoolStatsConcurrentRuns(t *testing.T) {
	reg := obs.NewRegistry()
	p := testPool(t, Options{Obs: reg, Workers: 1})

	const runs = 6
	const m, n, k = 64, 64, 32
	var wantTiles int64
	{
		tm, tn := p.tileDims(m, n, len(p.members))
		wantTiles = int64(runs * len(tilesFor(m, n, tm, tn)))
	}

	var wg sync.WaitGroup
	errs := make([]error, runs)
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a := randMat[float32](m, k, int64(10*r+1))
			b := randMat[float32](k, n, int64(10*r+2))
			c := randMat[float32](m, n, int64(10*r+3))
			errs[r] = Run(p, blas.NoTrans, blas.NoTrans, float32(1), a, b, float32(0), c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
	}

	var tiles, stolen int64
	for _, st := range p.Stats() {
		tiles += int64(st.Tiles)
		stolen += int64(st.Stolen)
		if st.Stolen > st.Tiles {
			t.Errorf("%s: stolen %d > tiles %d (torn counters)", st.Device, st.Stolen, st.Tiles)
		}
		if st.Tiles > 0 && st.BusySeconds < 0 {
			t.Errorf("%s: negative busy time %v", st.Device, st.BusySeconds)
		}
		if st.Dead {
			t.Errorf("%s: died without faults", st.Device)
		}
	}
	if tiles != wantTiles {
		t.Errorf("total tiles = %d, want %d (lost or double-counted updates)", tiles, wantTiles)
	}
	if got := sumCounters(reg.Snapshot(), "sched.tiles{"); got != wantTiles {
		t.Errorf("registry sched.tiles total = %d, want %d", got, wantTiles)
	}
}
