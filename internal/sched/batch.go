// Strided-batched execution across the pool: the batch INDEX is the
// only partitioned dimension. Each item i is one whole GEMM executed
// on exactly one member (through that member's warm engine plan), so
// every element of every C_i keeps the accumulation order of a
// single-device run and the pool result is bit-identical to the
// loop-of-GEMMs oracle. Contiguous index spans are dealt to members by
// modeled per-item throughput, then rebalanced by the same
// steal/retry/requeue machinery single-GEMM tiles use — a batch item
// is simply a "tile" whose coordinates are (index, 0) and whose shape
// is the item's full m×n. The degradation ladder matches RunCtx: pool
// → healthiest single member (running the whole batch on one plan via
// the engine's strided path) → opt-in pure-Go BLAS.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"oclgemm/internal/batch"
	"oclgemm/internal/blas"
	"oclgemm/internal/core"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
)

// RunStridedBatched executes a strided batch across the pool's live
// members with no deadline. See RunStridedBatchedCtx.
func RunStridedBatched[T matrix.Scalar](p *Pool, sb *batch.Strided[T]) error {
	return RunStridedBatchedCtx(context.Background(), p, sb)
}

// RunStridedBatchedCtx executes C_i ← alpha·op(A_i)·op(B_i) + beta·C_i
// for every item of the batch across the pool, honoring the context.
// Items are assigned whole — the batch index is partitioned, never the
// problem — so results are bit-identical to looping single GEMMs. A
// failed pool run degrades to the single healthiest member executing
// the whole batch on one warm plan, then (when Options.Fallback is
// set) to the pure-Go BLAS reference.
func RunStridedBatchedCtx[T matrix.Scalar](ctx context.Context, p *Pool, sb *batch.Strided[T]) error {
	if ctx == nil {
		ctx = context.Background()
	}
	items, err := sb.Items()
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return p.finish(p.ctxError(err))
	}
	p.admitQuarantined(ctx)
	prec := precisionOf[T]()

	// Ladder restarts need the original C slab: completed items of a
	// failed rung have already consumed the beta·C addend.
	var snap []T
	if sb.Beta != 0 {
		snap = append([]T(nil), sb.C...)
	}
	restore := func() {
		if snap != nil {
			copy(sb.C, snap)
		}
	}

	var poolErr error
	if live := p.alive(); len(live) > 0 {
		poolErr = runBatchItems(ctx, p, live, prec, sb, items)
		if poolErr == nil {
			return nil
		}
	} else {
		poolErr = p.noDevicesError(0, nil)
	}
	if errors.Is(poolErr, ErrDeadlineExceeded) || ctx.Err() != nil {
		return p.finish(poolErr)
	}

	// Rung 2: the single healthiest member runs the whole batch on one
	// warm plan (bit-identical: same kernels, items whole).
	if mb := p.healthiest(prec, sb.M, sb.N, sb.K); mb != nil {
		p.o.degradeSingle.Inc()
		sp := mb.tr.Start("sched.degrade")
		sp.SetAttr("rung", "single").SetAttr("device", mb.dev.ID)
		restore()
		err := gemmimpl.EngineRunStridedCtx(ctx, engineFor[T](mb), sb)
		if err == nil {
			sp.End()
			return nil
		}
		sp.SetAttr("error", err.Error()).End()
		p.noteFailure(mb, err)
		poolErr = fmt.Errorf("%w; single-device batch retry on %s: %w", poolErr, mb.dev.ID, err)
		if err := ctx.Err(); err != nil {
			restore()
			return p.finish(p.ctxError(err))
		}
	}

	// Rung 3 (opt-in): the pure-Go reference, item by item.
	if p.opts.Fallback {
		p.o.degradeBlas.Inc()
		sp := p.opts.Trace.Start("sched.degrade")
		sp.SetAttr("rung", "blas")
		restore()
		for i := range items {
			it := &items[i]
			blas.GEMM(sb.TransA, sb.TransB, sb.Alpha, it.A, it.B, sb.Beta, it.C)
		}
		sp.End()
		return nil
	}
	restore()
	return p.finish(poolErr)
}

// runBatchItems drives one pool pass over the batch: contiguous index
// spans dealt by modeled throughput, then the shared worker machinery
// (steal, transient backoff, requeue, quarantine drain) at item
// granularity. It reuses runState and the tile queues verbatim — an
// item is a tile at (index, 0) of shape m×n, which also prices its
// model time and failure accounting correctly.
func runBatchItems[T matrix.Scalar](ctx context.Context, p *Pool, live []*member, prec matrix.Precision, sb *batch.Strided[T], items []batch.Item[T]) error {
	rs := &runState{
		live:    live,
		queues:  assignBatch(sb, live, prec),
		pending: sb.Count,
		staged:  ctx.Done() != nil,
	}
	rs.cond = sync.NewCond(&rs.mu)

	runStart := time.Now()
	var wg sync.WaitGroup
	for i, mb := range live {
		wg.Add(1)
		go func(me int, mb *member) {
			defer wg.Done()
			batchWorker(ctx, p, rs, me, mb, sb, items)
		}(i, mb)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		p.o.runs.Inc()
		p.o.runSec.Observe(time.Since(runStart).Seconds())
		close(done)
	}()

	select {
	case <-done:
	case <-ctx.Done():
		rs.abort(p.ctxError(ctx.Err()))
	}

	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.fatal != nil {
		return rs.fatal
	}
	if rs.pending > 0 {
		return p.noDevicesError(rs.pending, rs.lastErr)
	}
	return nil
}

// assignBatch deals contiguous index spans to the live members,
// proportional to each member's modeled per-item throughput (the
// engine-facing analogue of the single-GEMM static partitioner).
// Stealing rebalances whatever the model got wrong.
func assignBatch[T matrix.Scalar](sb *batch.Strided[T], live []*member, prec matrix.Precision) [][]*tile {
	weights := make([]float64, len(live))
	for i, mb := range live {
		if bd, err := mb.impl(prec).Time(sb.M, sb.N, sb.K); err == nil && bd.TotalSeconds > 0 {
			weights[i] = 1 / bd.TotalSeconds
		}
	}
	spans := batch.Partition(sb.Count, weights)
	queues := make([][]*tile, len(live))
	for i, sp := range spans {
		q := make([]*tile, 0, sp.Len())
		for idx := sp.Lo; idx < sp.Hi; idx++ {
			q = append(q, &tile{i0: idx, j0: 0, th: sb.M, tw: sb.N})
		}
		queues[i] = q
	}
	return queues
}

// batchWorker drains batch items for one member until the run
// completes, a fatal error is raised, or the member is quarantined —
// the item-granular mirror of the single-GEMM worker, sharing its
// retry/backoff/requeue policy.
func batchWorker[T matrix.Scalar](ctx context.Context, p *Pool, rs *runState, me int, mb *member, sb *batch.Strided[T], items []batch.Item[T]) {
	prec := precisionOf[T]()
	for {
		t, stolen, ok := rs.next(me, mb)
		if !ok {
			return
		}
	attempts:
		for {
			sp := mb.tr.Start("sched.batch.item")
			sp.SetFlops(int64(blas.FlopCount(sb.M, sb.N, sb.K))).
				SetAttr("device", mb.dev.ID).
				SetAttr("item", fmt.Sprintf("%d/%d", t.i0, sb.Count))
			if stolen {
				sp.SetAttr("stolen", "true")
			}
			start := time.Now()
			commit, err := execItem(ctx, rs, mb, sb, &items[t.i0])
			busy := time.Since(start).Seconds()
			if err == nil {
				sp.End()
				rs.commit(commit)
				p.tileDone(rs, mb, prec, t, stolen, busy, sb.K, sb.Beta == 0)
				break attempts
			}
			sp.SetAttr("error", err.Error()).End()
			t.attempts++
			rs.noteErr(fmt.Errorf("batch item %d: %w", t.i0, err))
			quarantined := p.noteFailure(mb, err)
			if !quarantined && t.attempts < p.maxAttempts &&
				errors.Is(err, core.ErrTransient) && !rs.aborted() {
				if !p.backoff(ctx, mb.dev.ID, t) {
					rs.abort(p.ctxError(ctx.Err()))
					return
				}
				continue attempts
			}
			p.tileFailed(rs, me, mb, t, err)
			break attempts
		}
		if mb.isDead() || rs.aborted() {
			return
		}
	}
}

// execItem runs one whole batch item on a member through its engine.
// The item's C header wraps exactly its own slab elements, so direct
// execution touches nothing outside the item even when beta != 0; a
// cancellable run stages the result in a private copy so a straggler's
// write can be discarded after a deadline return (mirroring execTile).
func execItem[T matrix.Scalar](ctx context.Context, rs *runState, mb *member, sb *batch.Strided[T], it *batch.Item[T]) (commit func(), err error) {
	if !rs.staged {
		return nil, gemmimpl.EngineRunCtx(ctx, engineFor[T](mb), sb.TransA, sb.TransB, sb.Alpha, it.A, it.B, sb.Beta, it.C)
	}
	cw := it.C.Clone()
	if err := gemmimpl.EngineRunCtx(ctx, engineFor[T](mb), sb.TransA, sb.TransB, sb.Alpha, it.A, it.B, sb.Beta, cw); err != nil {
		return nil, err
	}
	return func() { copy(it.C.Data, cw.Data) }, nil
}
