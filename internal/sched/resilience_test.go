// Serve-path resilience tests: the chaos gate (mixed injected faults,
// mid-run deaths, probed recoveries), deadline behavior with the
// goroutine-leak guard, transient retry with backoff, the degradation
// ladder, and the health state machine's transitions.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/core"
	"oclgemm/internal/faultinject"
	"oclgemm/internal/obs"
)

// TestChaosGateTwentySeeds is the acceptance gate: with ≥30% injected
// mixed faults (transient + timeout) plus a scripted mid-run death and
// later recovery window on one member, RunCtx must — for each of 20
// seeds — either produce C bit-identical to the single-device reference
// or return a typed error before the deadline. With the BLAS fallback
// rung enabled and float64 elements, every non-deadline outcome is
// bit-identical: zero hangs, zero silent wrong results.
func TestChaosGateTwentySeeds(t *testing.T) {
	const m, n, k = 96, 96, 48
	const alpha, beta = 1.25, -0.5
	a := randMat[float64](m, k, 101)
	b := randMat[float64](k, n, 102)
	c0 := randMat[float64](m, n, 103)
	want := c0.Clone()
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, alpha, a, b, beta, want)

	recoveries := 0
	for seed := int64(1); seed <= 20; seed++ {
		si, err := faultinject.NewServe(faultinject.ServeConfig{
			Seed:          seed,
			TransientRate: 0.20,
			TimeoutRate:   0.12, // 32% total injected fault rate
			DeadAt:        map[string]int{"cayman": 5},
			ReviveAt:      map[string]int{"cayman": 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		p := testPool(t, Options{
			TileM: 32, TileN: 32,
			Fallback:   true,
			LaunchHook: si.Hook,
		})
		for run := 0; run < 4; run++ {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			c := c0.Clone()
			err := RunCtx(ctx, p, blas.NoTrans, blas.NoTrans, alpha, a, b, beta, c)
			cancel()
			switch {
			case err == nil:
				requireBitIdentical(t, c, want, fmt.Sprintf("seed %d run %d", seed, run))
			case errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrNoDevices) ||
				errors.Is(err, core.ErrTransient) || errors.Is(err, core.ErrTimeout):
				// Typed failure: acceptable, but must not have corrupted C
				// relative to a clean snapshot boundary — a failed ladder
				// leaves either the restored original or committed correct
				// tiles, never garbage from a half-written straggler. The
				// fallback rung makes this branch unreachable in practice.
			default:
				t.Fatalf("seed %d run %d: untyped error: %v", seed, run, err)
			}
		}
		for _, h := range p.Health() {
			recoveries += h.Recoveries
		}
		if counts := si.Counts(); counts[faultinject.Transient]+counts[faultinject.Hang]+counts[faultinject.Death] == 0 {
			t.Errorf("seed %d: injector reports no faults injected", seed)
		}
	}
	// The scripted death + revival window must produce probed
	// re-admissions somewhere across the seeds.
	if recoveries == 0 {
		t.Errorf("no member recovered across 20 chaos seeds; probe re-admission never exercised")
	}
}

// TestChaosKillReviveRerun kills a member mid-run, verifies the run
// survives bit-identically, then revives the member and verifies it is
// probed back in, serves tiles again, and the pool's Alive count is
// restored.
func TestChaosKillReviveRerun(t *testing.T) {
	const victim = "cayman"
	var launches int64
	var once sync.Once
	died := make(chan struct{})
	// Scheduling-independent mid-run death (same pattern as
	// TestPoolSurvivesDeviceDeathMidRun): every other member's first
	// launch blocks until the victim has died, so the victim is
	// guaranteed to execute — and die — while tiles are still in
	// flight, whatever the goroutine interleaving.
	p := testPool(t, Options{
		TileM: 32, TileN: 32, Workers: 1,
		LaunchHook: func(deviceID, kernelName string) error {
			if deviceID != victim {
				<-died
				return nil
			}
			if atomic.AddInt64(&launches, 1) == 4 {
				once.Do(func() { close(died) })
				return fmt.Errorf("%w: %s", ErrDeviceDead, victim)
			}
			return nil
		},
	})
	const m, n, k = 160, 160, 48
	a := randMat[float64](m, k, 61)
	b := randMat[float64](k, n, 62)
	c0 := randMat[float64](m, n, 63)
	want := c0.Clone()
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.5, want)

	c := c0.Clone()
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.5, c); err != nil {
		t.Fatalf("run with mid-run kill: %v", err)
	}
	requireBitIdentical(t, c, want, "with mid-run kill")
	if p.Alive() != 3 {
		t.Fatalf("alive = %d, want 3 after %s died mid-run", p.Alive(), victim)
	}

	// An ErrDeviceDead launch quarantines like a kill; pin it down so
	// the auto-probe cannot race the explicit Revive below.
	if !p.Kill(victim) {
		t.Fatalf("Kill(%s) matched no member", victim)
	}
	if !p.Revive(victim) {
		t.Fatalf("Revive(%s) failed: probe did not verify", victim)
	}
	if p.Alive() != 4 {
		t.Fatalf("alive = %d, want 4 after revive", p.Alive())
	}
	for _, h := range p.Health() {
		if h.Device == victim {
			if h.State != Probation {
				t.Errorf("%s state = %v after revive, want probation", victim, h.State)
			}
			if h.Recoveries != 1 {
				t.Errorf("%s recoveries = %d, want 1", victim, h.Recoveries)
			}
		}
	}

	c = c0.Clone()
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.5, c); err != nil {
		t.Fatalf("re-run after revive: %v", err)
	}
	requireBitIdentical(t, c, want, "re-run after revive")
	for _, st := range p.Stats() {
		if st.Device == victim && st.Dead {
			t.Errorf("%s still marked dead after revive + clean run", victim)
		}
	}
}

// TestResilienceDeadlineReturnsWithinBudget starves a run with slow
// launches and a short deadline: RunCtx must return the typed deadline
// error promptly, leak no worker goroutines, and never let a straggling
// tile write C after the call returned.
func TestResilienceDeadlineReturnsWithinBudget(t *testing.T) {
	p := testPool(t, Options{
		TileM: 32, TileN: 32,
		LaunchHook: func(deviceID, kernelName string) error {
			time.Sleep(20 * time.Millisecond)
			return nil
		},
	})
	const m, n, k = 192, 192, 48
	a := randMat[float64](m, k, 71)
	b := randMat[float64](k, n, 72)
	c := randMat[float64](m, n, 73)

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := RunCtx(ctx, p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("RunCtx finished under the deadline; slow-launch hook ineffective")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded in chain", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("RunCtx took %v to honor a 150ms deadline", elapsed)
	}

	// No straggler may touch C after the call returned: staged commits
	// are discarded once the run is abandoned.
	snap := c.Clone()
	time.Sleep(300 * time.Millisecond)
	requireBitIdentical(t, c, snap, "C mutated after deadline return")

	// Goroutine-leak guard: the detached workers must wind down once
	// their in-flight launches finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d: workers leaked after deadline return",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestResilienceTransientBackoff: a transient launch fault is retried
// in place on the same member — with a recorded backoff — instead of
// requeueing, and a recovered member ends the run healthy.
func TestResilienceTransientBackoff(t *testing.T) {
	reg := obs.NewRegistry()
	var fails int64
	dev := fourDevices(t)[:1]
	p := testPool(t, Options{
		Devices: dev,
		TileM:   96, TileN: 96, // one tile: the failures hit one attempt chain
		Obs: reg,
		LaunchHook: func(deviceID, kernelName string) error {
			if atomic.AddInt64(&fails, 1) <= 2 {
				return fmt.Errorf("%w: injected flake", core.ErrTransient)
			}
			return nil
		},
	})
	const m, n, k = 96, 96, 32
	a := randMat[float64](m, k, 81)
	b := randMat[float64](k, n, 82)
	c := randMat[float64](m, n, 83)
	want := c.Clone()
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, want)

	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
		t.Fatalf("run with transient flakes: %v", err)
	}
	requireBitIdentical(t, c, want, "after transient retries")

	s := reg.Snapshot()
	if got := s.Counters["sched.retry.backoffs"]; got != 2 {
		t.Errorf("sched.retry.backoffs = %d, want 2", got)
	}
	h := p.Health()[0]
	if h.State != Healthy {
		t.Errorf("member state = %v after recovered flakes, want healthy", h.State)
	}
	if st := p.Stats()[0]; st.Retries != 2 || st.Dead {
		t.Errorf("stats = %+v, want 2 retries and not dead", st)
	}
}

// TestResilienceDegradeSingleDevice: when the tiled pool run exhausts a
// tile's attempts, the ladder retries the whole call on the healthiest
// member and succeeds bit-identically.
func TestResilienceDegradeSingleDevice(t *testing.T) {
	reg := obs.NewRegistry()
	var launches int64
	dev := fourDevices(t)[:1]
	p := testPool(t, Options{
		Devices: dev,
		TileM:   32, TileN: 32,
		MaxAttempts: 1,
		Obs:         reg,
		LaunchHook: func(deviceID, kernelName string) error {
			if atomic.AddInt64(&launches, 1) == 1 {
				return fmt.Errorf("%w: first launch refused", core.ErrTimeout)
			}
			return nil
		},
	})
	const m, n, k = 96, 96, 32
	a := randMat[float64](m, k, 91)
	b := randMat[float64](k, n, 92)
	c := randMat[float64](m, n, 93)
	want := c.Clone()
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, 1.25, a, b, -0.5, want)

	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.25, a, b, -0.5, c); err != nil {
		t.Fatalf("run with degraded ladder: %v", err)
	}
	requireBitIdentical(t, c, want, "single-device rung")
	if got := reg.Snapshot().Counters["sched.degraded.single"]; got != 1 {
		t.Errorf("sched.degraded.single = %d, want 1", got)
	}
}

// TestResilienceDegradeBlasFallback: with every launch refused, the
// opt-in BLAS rung still returns the correct result (bit-exact for
// float64); without the opt-in, the call returns the typed failure.
func TestResilienceDegradeBlasFallback(t *testing.T) {
	refuse := func(deviceID, kernelName string) error {
		return fmt.Errorf("%w: launches disabled", core.ErrTimeout)
	}
	const m, n, k = 96, 96, 32
	a := randMat[float64](m, k, 94)
	b := randMat[float64](k, n, 95)
	c0 := randMat[float64](m, n, 96)
	want := c0.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.25, a, b, -0.5, want)

	reg := obs.NewRegistry()
	p := testPool(t, Options{
		Devices: fourDevices(t)[:1], TileM: 32, TileN: 32,
		MaxAttempts: 1, Fallback: true, Obs: reg,
		LaunchHook: refuse,
	})
	c := c0.Clone()
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.25, a, b, -0.5, c); err != nil {
		t.Fatalf("run with BLAS fallback: %v", err)
	}
	requireBitIdentical(t, c, want, "BLAS rung")
	if got := reg.Snapshot().Counters["sched.degraded.blas"]; got != 1 {
		t.Errorf("sched.degraded.blas = %d, want 1", got)
	}

	p2 := testPool(t, Options{
		Devices: fourDevices(t)[:1], TileM: 32, TileN: 32,
		MaxAttempts: 1,
		LaunchHook:  refuse,
	})
	c = c0.Clone()
	err := Run(p2, blas.NoTrans, blas.NoTrans, 1.25, a, b, -0.5, c)
	if err == nil {
		t.Fatal("run without fallback succeeded with every launch refused")
	}
	if !errors.Is(err, core.ErrTimeout) {
		t.Errorf("err = %v, want core.ErrTimeout in chain", err)
	}
	requireBitIdentical(t, c, c0, "C must be restored when the ladder fails")
}

// TestResilienceNoDevicesNamesDead: the all-dead error names the dead
// members' device IDs in its chain.
func TestResilienceNoDevicesNamesDead(t *testing.T) {
	p := testPool(t, Options{})
	for _, d := range p.Devices() {
		p.Kill(d.ID)
	}
	a := randMat[float64](32, 32, 1)
	b := randMat[float64](32, 32, 2)
	c := randMat[float64](32, 32, 3)
	err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c)
	if !errors.Is(err, ErrNoDevices) {
		t.Fatalf("err = %v, want ErrNoDevices", err)
	}
	for _, d := range p.Devices() {
		if !strings.Contains(err.Error(), d.ID) {
			t.Errorf("error %q does not name dead member %s", err, d.ID)
		}
	}
}

// TestResilienceAutoProbeRecovery: a member quarantined by consecutive
// failures (not killed) is probed back in on a later Run once its
// cooldown elapses and the fault clears, then graduates from probation
// to healthy after enough clean tiles.
func TestResilienceAutoProbeRecovery(t *testing.T) {
	const victim = "tahiti"
	var failing atomic.Bool
	failing.Store(true)
	p := testPool(t, Options{
		TileM: 32, TileN: 32,
		LaunchHook: func(deviceID, kernelName string) error {
			if deviceID == victim && failing.Load() {
				return errors.New("injected: persistent hard fault")
			}
			return nil
		},
	})
	const m, n, k = 160, 160, 48
	a := randMat[float64](m, k, 31)
	b := randMat[float64](k, n, 32)
	run := func(label string) {
		t.Helper()
		c := randMat[float64](m, n, 33)
		if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}

	run("run 1 (faulting)")
	if p.Alive() != 3 {
		t.Fatalf("alive = %d, want 3 after %s drained", p.Alive(), victim)
	}
	healthOf := func(id string) MemberHealth {
		for _, h := range p.Health() {
			if h.Device == id {
				return h
			}
		}
		t.Fatalf("no health snapshot for %s", id)
		return MemberHealth{}
	}
	if h := healthOf(victim); h.State != Quarantined || h.Killed {
		t.Fatalf("%s health = %+v, want quarantined and not killed", victim, h)
	}

	// Fault cleared: the next Run's admission probe re-admits it.
	failing.Store(false)
	run("run 2 (recovered)")
	if p.Alive() != 4 {
		t.Fatalf("alive = %d, want 4 after auto-probe", p.Alive())
	}
	h := healthOf(victim)
	if h.Recoveries != 1 || h.Probes < 1 {
		t.Errorf("%s health = %+v, want 1 recovery from >= 1 probe", victim, h)
	}
	if h.State != Healthy && h.State != Probation {
		t.Errorf("%s state = %v, want healthy or probation", victim, h.State)
	}
	run("run 3 (graduation)")
	if got := healthOf(victim).State; got != Healthy {
		t.Errorf("%s state = %v after two clean runs, want healthy", victim, got)
	}
}
