// Per-member health: the healthy → suspect → quarantined → probation
// state machine that replaced the permanent dead flag, and the
// correctness-gated recovery probe. A quarantined member re-enters the
// pool only after a small probe GEMM on its own engine verifies
// bit-exact against the pure-Go BLAS reference (internal/blas
// accumulates float64 in k-order, exactly like the simulated kernel in
// double precision), so re-admission decisions are gated on proven
// correctness, not on time served.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"oclgemm/internal/blas"
	"oclgemm/internal/core"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
)

// HealthState is a member's position in the serve-path health state
// machine.
type HealthState int

// Health states. Healthy and Suspect members take tiles normally;
// Probation members take tiles but one failure re-quarantines them;
// Quarantined members take none.
const (
	// Healthy: no recent failures.
	Healthy HealthState = iota
	// Suspect: at least one recent failure, below the quarantine
	// threshold. The next success clears it.
	Suspect
	// Probation: re-admitted by a successful probe; graduates to
	// Healthy after ProbationTiles consecutive successes, drops back to
	// Quarantined on a single failure.
	Probation
	// Quarantined: drained out of the pool (threshold, ErrDeviceDead,
	// failed probe, or Kill).
	Quarantined
)

// String names the state.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Probation:
		return "probation"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// MemberHealth is one member's health snapshot.
type MemberHealth struct {
	// Device is the member's device ID.
	Device string
	// State is the member's current health state.
	State HealthState
	// Killed reports an explicit Kill: the member stays quarantined
	// until Revive, exempt from automatic probing.
	Killed bool
	// ConsecFails is the current consecutive-failure count.
	ConsecFails int
	// Probes, ProbeFailures and Recoveries count recovery probes run,
	// probes failed, and successful re-admissions over the pool's life.
	Probes, ProbeFailures, Recoveries int
}

// Health returns every member's health snapshot, in pool order.
func (p *Pool) Health() []MemberHealth {
	out := make([]MemberHealth, len(p.members))
	for i, mb := range p.members {
		mb.mu.Lock()
		out[i] = MemberHealth{
			Device:        mb.dev.ID,
			State:         mb.state,
			Killed:        mb.killed,
			ConsecFails:   mb.consecFails,
			Probes:        mb.probes,
			ProbeFailures: mb.probeFails,
			Recoveries:    mb.recoveries,
		}
		mb.mu.Unlock()
	}
	return out
}

// quarantineLocked moves the member to Quarantined under mb.mu,
// counting the event only on the first transition and scheduling the
// next auto-probe.
func (p *Pool) quarantineLocked(mb *member) {
	if mb.state == Quarantined {
		return
	}
	mb.state = Quarantined
	mb.stats.Dead = true
	mb.probeWait = p.probeCooldown
	mb.nextProbe = p.runSeq.Load() + mb.probeWait
	mb.o.deaths.Inc()
}

// noteFailure advances the member's health after a failed tile attempt
// and reports whether it is (now) quarantined.
func (p *Pool) noteFailure(mb *member, err error) bool {
	mb.mu.Lock()
	mb.stats.Retries++
	mb.consecFails++
	mb.consecOK = 0
	switch {
	case errors.Is(err, ErrDeviceDead):
		p.quarantineLocked(mb)
	case mb.state == Probation:
		// One strike on probation sends the member straight back.
		p.quarantineLocked(mb)
	case mb.consecFails >= p.failThreshold:
		p.quarantineLocked(mb)
	case mb.state == Healthy:
		mb.state = Suspect
	}
	q := mb.state == Quarantined
	mb.mu.Unlock()
	mb.o.failures.Inc()
	return q
}

// noteSuccessLocked advances health after a completed tile: suspicion
// clears immediately, probation graduates after enough consecutive
// successes. Called with mb.mu held (merged into tileDone's stats
// critical section).
func (p *Pool) noteSuccessLocked(mb *member) {
	mb.consecFails = 0
	switch mb.state {
	case Suspect:
		mb.state = Healthy
	case Probation:
		mb.consecOK++
		if mb.consecOK >= p.probationTiles {
			mb.state = Healthy
		}
	}
}

// admitQuarantined advances the pool's run clock and probes every
// quarantined member whose cooldown has elapsed (killed members wait
// for an explicit Revive). Called at the top of each RunCtx.
func (p *Pool) admitQuarantined(ctx context.Context) {
	seq := p.runSeq.Add(1)
	for _, mb := range p.members {
		mb.mu.Lock()
		due := mb.state == Quarantined && !mb.killed && !mb.probing && seq >= mb.nextProbe
		mb.mu.Unlock()
		if due {
			p.probeMember(ctx, mb)
		}
	}
}

// Revive lifts an explicit Kill: the member is probed immediately and
// re-admitted on probation when the probe verifies bit-exact. It
// reports whether any matching member is schedulable again.
func (p *Pool) Revive(deviceID string) bool {
	ok := false
	for _, mb := range p.members {
		if mb.dev.ID != deviceID {
			continue
		}
		mb.mu.Lock()
		mb.killed = false
		quarantined := mb.state == Quarantined
		mb.mu.Unlock()
		if !quarantined || p.probeMember(context.Background(), mb) {
			ok = true
		}
	}
	return ok
}

// probeMember runs the re-admission probe on a quarantined member: a
// small DGEMM through the member's own engine, verified element-wise
// bit-exact against internal/blas. Success moves the member to
// Probation; failure doubles its probe cooldown. Returns whether the
// member is schedulable afterwards.
func (p *Pool) probeMember(ctx context.Context, mb *member) bool {
	mb.mu.Lock()
	if mb.state != Quarantined || mb.probing {
		st, probing := mb.state, mb.probing
		mb.mu.Unlock()
		return st != Quarantined && !probing
	}
	mb.probing = true
	mb.probes++
	mb.mu.Unlock()
	mb.o.probes.Inc()

	sp := mb.tr.Start("sched.probe")
	sp.SetAttr("device", mb.dev.ID)
	err := runProbe(ctx, mb)
	if err == nil {
		sp.SetAttr("result", "readmitted")
	} else {
		sp.SetAttr("result", "failed").SetAttr("error", err.Error())
	}
	sp.End()

	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.probing = false
	if err != nil {
		mb.probeFails++
		if mb.probeWait < 8*p.probeCooldown {
			mb.probeWait *= 2
		}
		mb.nextProbe = p.runSeq.Load() + mb.probeWait
		mb.o.probeFails.Inc()
		return false
	}
	mb.state = Probation
	mb.stats.Dead = false
	mb.consecFails, mb.consecOK = 0, 0
	mb.probeWait = p.probeCooldown
	mb.recoveries++
	mb.o.recoveries.Inc()
	return true
}

// probeDims sizes the probe problem to cross the member's work-group
// blocking on every axis, so padding and all kernel phases are
// exercised without costing a real call's worth of time.
func probeDims(im *gemmimpl.Impl) (m, n, k int) {
	pp := im.Params
	return pp.Mwg + 3, pp.Nwg + 1, pp.Kwg + 2
}

// runProbe executes the probe DGEMM and compares it element-wise
// bit-exact against the pure-Go reference. Double precision is the
// discriminating case: blas.GEMM accumulates float64 in k-order exactly
// like the simulated kernel, so any mismatch is a real fault, not
// rounding.
func runProbe(ctx context.Context, mb *member) error {
	m, n, k := probeDims(mb.im64)
	rng := rand.New(rand.NewSource(1009))
	a := matrix.New[float64](m, k, matrix.ColMajor)
	b := matrix.New[float64](k, n, matrix.ColMajor)
	c := matrix.New[float64](m, n, matrix.ColMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	const alpha, beta = 1.25, -0.5
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, alpha, a, b, beta, want)
	if err := gemmimpl.EngineRunCtx(ctx, mb.eng64, blas.NoTrans, blas.NoTrans, alpha, a, b, beta, c); err != nil {
		return fmt.Errorf("sched: probe GEMM on %s failed: %w", mb.dev.ID, err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if c.At(i, j) != want.At(i, j) {
				return fmt.Errorf("%w: probe C[%d,%d] = %v, reference %v (not bit-exact)",
					core.ErrWrongResult, i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
	return nil
}

// healthiest returns the most trustworthy non-quarantined member for a
// whole-call fallback: best health state (healthy before probation
// before suspect), then fewest consecutive failures, then highest
// modeled throughput for the problem.
func (p *Pool) healthiest(prec matrix.Precision, m, n, k int) *member {
	rank := func(s HealthState) int {
		switch s {
		case Healthy:
			return 0
		case Probation:
			return 1
		default: // Suspect
			return 2
		}
	}
	var best *member
	var bestRank, bestFails int
	var bestGF float64
	for _, mb := range p.members {
		mb.mu.Lock()
		st, fails := mb.state, mb.consecFails
		mb.mu.Unlock()
		if st == Quarantined {
			continue
		}
		gf, err := mb.impl(prec).GFlops(m, n, k)
		if err != nil {
			gf = 0
		}
		r := rank(st)
		if best == nil || r < bestRank ||
			(r == bestRank && (fails < bestFails || (fails == bestFails && gf > bestGF))) {
			best, bestRank, bestFails, bestGF = mb, r, fails, gf
		}
	}
	return best
}
