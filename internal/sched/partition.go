// Static partitioning: C is cut into a grid of row/column tiles (K is
// never split — see the package comment on bit-identical accumulation),
// and the tiles are dealt to members by earliest-completion-time list
// scheduling over modeled per-tile device times. Work stealing then
// corrects whatever the model got wrong at run time.
package sched

import (
	"fmt"
	"math"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

// tile is one C panel: rows [i0, i0+th) × cols [j0, j0+tw).
type tile struct {
	i0, j0, th, tw int
	attempts       int
}

// tileQuantum rounds auto-chosen tile edges so most tiles pad cleanly
// against the members' work-group blockings.
const tileQuantum = 32

// tileDims picks the tile edge sizes for an m×n C over live members.
func (p *Pool) tileDims(m, n, live int) (tm, tn int) {
	tm, tn = p.opts.TileM, p.opts.TileN
	if tm > 0 && tn > 0 {
		return min(tm, m), min(tn, n)
	}
	per := p.opts.TilesPerMember
	if per <= 0 {
		per = DefaultTilesPerMember
	}
	target := float64(per * live)
	// Aspect-proportional grid: gm/gn ≈ m/n, gm·gn ≈ target.
	gm := int(math.Ceil(math.Sqrt(target * float64(m) / float64(n))))
	gm = max(1, min(gm, m))
	gn := max(1, min(int(math.Ceil(target/float64(gm))), n))
	tm = roundTile((m+gm-1)/gm, m)
	tn = roundTile((n+gn-1)/gn, n)
	return tm, tn
}

func roundTile(t, dim int) int {
	if t >= dim {
		return dim
	}
	if r := t % tileQuantum; r != 0 {
		t += tileQuantum - r
	}
	return min(t, dim)
}

// tiles cuts C row-major into the grid.
func tilesFor(m, n, tm, tn int) []*tile {
	var out []*tile
	for i0 := 0; i0 < m; i0 += tm {
		th := min(tm, m-i0)
		for j0 := 0; j0 < n; j0 += tn {
			out = append(out, &tile{i0: i0, j0: j0, th: th, tw: min(tn, n-j0)})
		}
	}
	return out
}

// tileSeconds models one tile's full-routine time on a member; a member
// the model cannot price gets an effectively infinite cost so the
// greedy assigner avoids it unless it is the only choice. "Cannot
// price" includes degenerate model output — zero, negative, NaN or
// infinite seconds — which would otherwise corrupt every downstream
// load comparison (NaN in particular poisons the greedy argmin, since
// it compares false against everything).
func tileSeconds(mb *member, prec matrix.Precision, th, tw, k int) float64 {
	bd, err := mb.impl(prec).Time(th, tw, k)
	if err != nil || math.IsNaN(bd.TotalSeconds) || bd.TotalSeconds <= 0 {
		return math.Inf(1)
	}
	return bd.TotalSeconds
}

// assign deals tiles to live members greedily: each tile (in row-major
// order, so member queues stay spatially contiguous) goes to the member
// whose modeled completion time grows least. Heterogeneity falls out
// naturally — a member whose tile cost exceeds the makespan it would
// join simply never gets picked.
func assign(tiles []*tile, live []*member, prec matrix.Precision, k int) [][]*tile {
	queues := make([][]*tile, len(live))
	loads := make([]float64, len(live))
	// Per-member cost cache keyed by tile shape (edge tiles differ).
	type shape struct{ th, tw int }
	costs := make([]map[shape]float64, len(live))
	for i := range costs {
		costs[i] = make(map[shape]float64)
	}
	for ti, t := range tiles {
		best, bestDone := -1, math.Inf(1)
		for i, mb := range live {
			c, ok := costs[i][shape{t.th, t.tw}]
			if !ok {
				c = tileSeconds(mb, prec, t.th, t.tw, k)
				costs[i][shape{t.th, t.tw}] = c
			}
			if done := loads[i] + c; done < bestDone {
				best, bestDone = i, done
			}
		}
		if best < 0 {
			// No member can be priced (every cost is +Inf, so the argmin
			// never fires); deal by tile index so the round-robin actually
			// rotates — keying on a queue length stops rotating the moment
			// that queue grows.
			queues[ti%len(live)] = append(queues[ti%len(live)], t)
			continue
		}
		queues[best] = append(queues[best], t)
		loads[best] = bestDone
	}
	return queues
}

// MemberEstimate is one member's share of an Estimate.
type MemberEstimate struct {
	// Device is the member's device ID; Kernel describes the parameter
	// provenance for the estimated precision.
	Device, Kernel string
	// SoloGFlops is the member's modeled full-problem throughput were
	// it to run the whole GEMM alone (copy overhead included).
	SoloGFlops float64
	// Tiles and Share are the statically assigned tile count and flop
	// fraction; Seconds the modeled time to finish them.
	Tiles   int
	Share   float64
	Seconds float64
}

// Estimate is the modeled outcome of partitioning one GEMM across the
// pool: the static schedule's makespan against the best single member.
type Estimate struct {
	M, N, K   int
	Precision matrix.Precision
	// TileM, TileN and Tiles describe the partition grid.
	TileM, TileN, Tiles int
	Members             []MemberEstimate
	// Seconds is the modeled makespan (slowest member's finish time);
	// GFlops the aggregate throughput it implies.
	Seconds float64
	GFlops  float64
	// BestSingleDevice and BestSingleGFlops identify the fastest
	// member running the whole problem alone; Speedup is the pool's
	// aggregate over it.
	BestSingleDevice string
	BestSingleGFlops float64
	Speedup          float64
}

// Estimate models a pool execution of an m×n×k GEMM without running
// anything: the same partition and static assignment Run would use,
// priced by the performance model.
func (p *Pool) Estimate(prec matrix.Precision, m, n, k int) (*Estimate, error) {
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, fmt.Errorf("sched: non-positive problem %dx%dx%d", m, n, k)
	}
	live := p.alive()
	if len(live) == 0 {
		return nil, ErrNoDevices
	}
	tm, tn := p.tileDims(m, n, len(live))
	tiles := tilesFor(m, n, tm, tn)
	queues := assign(tiles, live, prec, k)

	est := &Estimate{
		M: m, N: n, K: k, Precision: prec,
		TileM: tm, TileN: tn, Tiles: len(tiles),
	}
	flops := blas.FlopCount(m, n, k)
	for i, mb := range live {
		me := MemberEstimate{Device: mb.dev.ID, Kernel: mb.how(prec), Tiles: len(queues[i])}
		if gf, err := mb.impl(prec).GFlops(m, n, k); err == nil {
			me.SoloGFlops = gf
		}
		var tileFlops float64
		for _, t := range queues[i] {
			me.Seconds += tileSeconds(mb, prec, t.th, t.tw, k)
			tileFlops += blas.FlopCount(t.th, t.tw, k)
		}
		me.Share = tileFlops / flops
		est.Seconds = math.Max(est.Seconds, me.Seconds)
		if me.SoloGFlops > est.BestSingleGFlops {
			est.BestSingleGFlops = me.SoloGFlops
			est.BestSingleDevice = mb.dev.ID
		}
		est.Members = append(est.Members, me)
	}
	if !isFinitePositive(est.Seconds) {
		return nil, fmt.Errorf("%w: %s %dx%dx%d (modeled makespan %v)",
			ErrUnpriceable, prec.GEMMName(), m, n, k, est.Seconds)
	}
	est.GFlops = flops / est.Seconds / 1e9
	if est.BestSingleGFlops > 0 {
		est.Speedup = est.GFlops / est.BestSingleGFlops
	}
	return est, nil
}

// isFinitePositive reports a usable modeled duration: > 0, not NaN,
// not infinite.
func isFinitePositive(s float64) bool {
	return s > 0 && !math.IsInf(s, 1)
}

// how returns the parameter provenance for a precision.
func (mb *member) how(prec matrix.Precision) string {
	if prec == matrix.Double {
		return mb.how64
	}
	return mb.how32
}
