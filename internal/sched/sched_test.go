package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/faultinject"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
	"oclgemm/internal/tunedb"
)

// testShapes are small known-valid kernel parameter sets (work-group
// sizes far below Table II) so the functional simulation stays fast;
// rotating them across pool members makes every pool heterogeneous in
// both device model and kernel blocking.
var testShapes = []codegen.Params{
	{Algorithm: codegen.BA, Mwg: 8, Nwg: 8, Kwg: 4,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4, Kwi: 2, VectorWidth: 1,
		SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL},
	{Algorithm: codegen.BA, Mwg: 16, Nwg: 16, Kwg: 8,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4, Kwi: 2, VectorWidth: 2,
		SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL},
	{Algorithm: codegen.BA, Mwg: 32, Nwg: 32, Kwg: 16,
		MdimC: 8, NdimC: 8, MdimA: 8, NdimB: 8, Kwi: 2, VectorWidth: 1,
		LayoutA: matrix.LayoutRBL, LayoutB: matrix.LayoutRBL},
}

// testDB builds a tuning database assigning each device a small kernel,
// rotating through testShapes for heterogeneity.
func testDB(t testing.TB, devs []*device.Spec) *tunedb.DB {
	t.Helper()
	db := &tunedb.DB{Version: tunedb.FormatVersion}
	for i, d := range devs {
		for _, prec := range []matrix.Precision{matrix.Single, matrix.Double} {
			p := testShapes[i%len(testShapes)]
			p.Precision = prec
			if err := p.CheckDevice(d); err != nil {
				t.Fatalf("test params invalid for %s: %v", d.ID, err)
			}
			db.Put(tunedb.FromParams(d.ID, p, 100, 1024, "test"))
		}
	}
	return db
}

// fourDevices is a heterogeneous pool: two GPUs and two CPUs.
func fourDevices(t testing.TB) []*device.Spec {
	t.Helper()
	var out []*device.Spec
	for _, id := range []string{"tahiti", "cayman", "sandybridge", "bulldozer"} {
		d, err := device.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func testPool(t testing.TB, opts Options) *Pool {
	t.Helper()
	if opts.Devices == nil {
		opts.Devices = fourDevices(t)
	}
	if opts.DB == nil {
		opts.DB = testDB(t, opts.Devices)
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func randMat[T matrix.Scalar](rows, cols int, seed int64) *matrix.Matrix[T] {
	m := matrix.New[T](rows, cols, matrix.ColMajor)
	m.FillRandom(rand.New(rand.NewSource(seed)))
	return m
}

// singleDeviceRef computes the same GEMM on one device NOT in the test
// pool, with yet another kernel blocking — the bit-identical oracle.
func singleDeviceRef[T matrix.Scalar](t testing.TB, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) {
	t.Helper()
	p := testShapes[2]
	p.Precision = precisionOf[T]()
	im, err := gemmimpl.New(device.Kepler(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := gemmimpl.Run(im, ta, tb, alpha, a, b, beta, c); err != nil {
		t.Fatal(err)
	}
}

// requireBitIdentical fails unless every element of got equals want
// exactly (bit-for-bit for the values the kernels produce).
func requireBitIdentical[T matrix.Scalar](t testing.TB, got, want *matrix.Matrix[T], label string) {
	t.Helper()
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: C[%d,%d] = %v, single-device %v (not bit-identical)",
					label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// Pool results must be bit-identical to a single-device run for all
// four multiplication types, both precisions, odd sizes crossing the
// blocking boundaries, and nontrivial alpha/beta including beta == 0.
func TestPoolBitIdenticalToSingleDevice(t *testing.T) {
	t.Run("double", func(t *testing.T) { runBitIdentical[float64](t) })
	t.Run("single", func(t *testing.T) { runBitIdentical[float32](t) })
}

func runBitIdentical[T matrix.Scalar](t *testing.T) {
	p := testPool(t, Options{})
	transposes := []blas.Transpose{blas.NoTrans, blas.Trans}
	scalars := []struct{ alpha, beta T }{{1, 0}, {1.5, 0.5}, {-1, 2}, {2, 1}}
	si := 0
	for _, size := range []int{1, 7, 33, 129, 257} {
		for _, ta := range transposes {
			for _, tb := range transposes {
				sc := scalars[si%len(scalars)]
				si++
				m, n, k := size, size, size
				dims := func(rows, cols int, tr blas.Transpose) (int, int) {
					if tr == blas.Trans {
						return cols, rows
					}
					return rows, cols
				}
				ar, ac := dims(m, k, ta)
				br, bc := dims(k, n, tb)
				a := randMat[T](ar, ac, int64(7*size+1))
				b := randMat[T](br, bc, int64(7*size+2))
				c := randMat[T](m, n, int64(7*size+3))
				want := c.Clone()
				singleDeviceRef(t, ta, tb, sc.alpha, a, b, sc.beta, want)
				if err := Run(p, ta, tb, sc.alpha, a, b, sc.beta, c); err != nil {
					t.Fatalf("size %d %v/%v: %v", size, ta, tb, err)
				}
				requireBitIdentical(t, c, want,
					fmt.Sprintf("size %d %v/%v alpha=%v beta=%v", size, ta, tb, sc.alpha, sc.beta))
			}
		}
	}
}

// Every pool size from one to the full eight-device catalog must agree
// with the single-device run.
func TestPoolSizesOneToEight(t *testing.T) {
	catalog := device.Catalog()
	if len(catalog) != 8 {
		t.Fatalf("catalog has %d devices, want 8", len(catalog))
	}
	db := testDB(t, catalog)
	m, n, k := 100, 90, 70
	a := randMat[float64](m, k, 1)
	b := randMat[float64](k, n, 2)
	cRef := randMat[float64](m, n, 3)
	want := cRef.Clone()
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, 1.25, a, b, 0.75, want)
	for size := 1; size <= len(catalog); size++ {
		p := testPool(t, Options{Devices: catalog[:size], DB: db})
		c := cRef.Clone()
		if err := Run(p, blas.NoTrans, blas.NoTrans, 1.25, a, b, 0.75, c); err != nil {
			t.Fatalf("pool of %d: %v", size, err)
		}
		requireBitIdentical(t, c, want, fmt.Sprintf("pool of %d", size))
		var tiles int
		for _, st := range p.Stats() {
			tiles += st.Tiles
			if st.Retries != 0 {
				t.Errorf("pool of %d: %s has %d retries on a fault-free run", size, st.Device, st.Retries)
			}
		}
		if tiles == 0 {
			t.Fatalf("pool of %d executed no tiles", size)
		}
	}
}

// A device that starts failing mid-run must be declared dead, its tiles
// must migrate to the survivors, and the result must stay bit-identical.
func TestPoolSurvivesDeviceDeathMidRun(t *testing.T) {
	const victim = "cayman"
	var launches int64
	var once sync.Once
	died := make(chan struct{})
	// Scheduling-independent mid-run death: every other member's first
	// launch blocks until the victim has started failing, so the victim
	// is guaranteed to execute — and die — while tiles are still in
	// flight, whatever the goroutine interleaving (even GOMAXPROCS=1).
	opts := Options{
		TileM: 32, TileN: 32, Workers: 1,
		LaunchHook: func(deviceID, kernelName string) error {
			if deviceID != victim {
				<-died
				return nil
			}
			if atomic.AddInt64(&launches, 1) > 4 {
				once.Do(func() { close(died) })
				return errors.New("injected: device fell off the bus")
			}
			return nil
		},
	}
	p := testPool(t, opts)
	m, n, k := 192, 192, 48
	a := randMat[float64](m, k, 11)
	b := randMat[float64](k, n, 12)
	c := randMat[float64](m, n, 13)
	want := c.Clone()
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.5, want)
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.5, c); err != nil {
		t.Fatalf("run with injected death: %v", err)
	}
	requireBitIdentical(t, c, want, "with mid-run device death")

	if p.Alive() != 3 {
		t.Errorf("alive = %d, want 3 after %s died", p.Alive(), victim)
	}
	var dead DeviceStats
	var survivorsTiles, retries int
	for _, st := range p.Stats() {
		if st.Device == victim {
			dead = st
			continue
		}
		survivorsTiles += st.Tiles
		if st.Dead {
			t.Errorf("%s is marked dead but was not injected", st.Device)
		}
	}
	for _, st := range p.Stats() {
		retries += st.Retries
	}
	if !dead.Dead {
		t.Errorf("%s not marked dead: %+v", victim, dead)
	}
	if retries == 0 {
		t.Error("no retries recorded despite injected failures")
	}
	if survivorsTiles == 0 {
		t.Error("survivors executed no tiles")
	}

	// The dead member stays out of later runs, which must still work.
	c2 := randMat[float64](64, 64, 14)
	want2 := c2.Clone()
	a2, b2 := randMat[float64](64, 32, 15), randMat[float64](32, 64, 16)
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, 1.0, a2, b2, 0.0, want2)
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a2, b2, 0.0, c2); err != nil {
		t.Fatalf("run after death: %v", err)
	}
	requireBitIdentical(t, c2, want2, "run after device death")
	for _, st := range p.Stats() {
		if st.Device == victim && st.Tiles != dead.Tiles {
			t.Errorf("dead %s executed more tiles after death", victim)
		}
	}
}

// Kill removes a member between runs; results stay identical and the
// member gets no further tiles.
func TestPoolKill(t *testing.T) {
	p := testPool(t, Options{})
	if !p.Kill("bulldozer") {
		t.Fatal("Kill did not match bulldozer")
	}
	if p.Kill("no-such-device") {
		t.Fatal("Kill matched a nonexistent device")
	}
	if p.Alive() != 3 {
		t.Fatalf("alive = %d after Kill, want 3", p.Alive())
	}
	m, n, k := 96, 96, 40
	a := randMat[float32](m, k, 21)
	b := randMat[float32](k, n, 22)
	c := randMat[float32](m, n, 23)
	want := c.Clone()
	singleDeviceRef(t, blas.Trans, blas.NoTrans, float32(2), a.Transpose(), b, float32(1), want)
	if err := Run(p, blas.Trans, blas.NoTrans, float32(2), a.Transpose(), b, float32(1), c); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, c, want, "after Kill")
	for _, st := range p.Stats() {
		if st.Device == "bulldozer" && st.Tiles != 0 {
			t.Errorf("killed member executed %d tiles", st.Tiles)
		}
	}
}

// When every member dies, Run must return an error rather than silently
// dropping tiles.
func TestPoolAllDevicesDead(t *testing.T) {
	boom := errors.New("injected: total failure")
	p := testPool(t, Options{
		Devices:    fourDevices(t)[:2],
		LaunchHook: func(deviceID, kernelName string) error { return boom },
	})
	a := randMat[float64](64, 32, 31)
	b := randMat[float64](32, 64, 32)
	c := randMat[float64](64, 64, 33)
	err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c)
	if err == nil {
		t.Fatal("Run succeeded with every launch failing")
	}
	if p.Alive() != 0 {
		t.Errorf("alive = %d, want 0", p.Alive())
	}
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); !errors.Is(err, ErrNoDevices) {
		t.Errorf("run on dead pool: %v, want ErrNoDevices", err)
	}
}

// Deterministic chaos via the fault injector: launches fail per
// (device, kernel); tiles must reroute and the result must stay
// bit-identical whenever at least one member survives.
func TestPoolUnderInjectedFaults(t *testing.T) {
	inj, err := faultinject.New(faultinject.Config{Seed: 7, CompileRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	hk := inj.LaunchHook()
	p := testPool(t, Options{
		TileM: 32, TileN: 32,
		LaunchHook: func(deviceID, kernelName string) error {
			return hk(deviceID + "/" + kernelName)
		},
	})
	m, n, k := 160, 160, 48
	a := randMat[float64](m, k, 41)
	b := randMat[float64](k, n, 42)
	c := randMat[float64](m, n, 43)
	want := c.Clone()
	singleDeviceRef(t, blas.NoTrans, blas.NoTrans, 1.25, a, b, 0.5, want)
	runErr := Run(p, blas.NoTrans, blas.NoTrans, 1.25, a, b, 0.5, c)
	if p.Alive() == 0 {
		t.Skipf("seed killed every member (err=%v); pick a tamer seed", runErr)
	}
	if runErr != nil {
		t.Fatalf("run under faults with %d survivors: %v", p.Alive(), runErr)
	}
	requireBitIdentical(t, c, want, "under injected faults")
}

// Stats must account for every tile exactly once and record data
// movement and modeled time.
func TestPoolStatsAccounting(t *testing.T) {
	p := testPool(t, Options{TileM: 64, TileN: 64})
	m, n, k := 256, 192, 64
	a := randMat[float64](m, k, 51)
	b := randMat[float64](k, n, 52)
	c := randMat[float64](m, n, 53)
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
		t.Fatal(err)
	}
	wantTiles := ((m + 63) / 64) * ((n + 63) / 64)
	var tiles int
	var bytes int64
	var model float64
	for _, st := range p.Stats() {
		tiles += st.Tiles
		bytes += st.BytesMoved
		model += st.ModelSeconds
		if st.Tiles > 0 && st.BusySeconds <= 0 {
			t.Errorf("%s: %d tiles but BusySeconds = %v", st.Device, st.Tiles, st.BusySeconds)
		}
	}
	if tiles != wantTiles {
		t.Errorf("tiles executed = %d, want %d", tiles, wantTiles)
	}
	// beta == 0: every tile moves its A panel, B panel and one C write.
	wantBytes := int64(0)
	esz := int64(8)
	for i0 := 0; i0 < m; i0 += 64 {
		th := min(64, m-i0)
		for j0 := 0; j0 < n; j0 += 64 {
			tw := min(64, n-j0)
			wantBytes += int64(th*k+k*tw+th*tw) * esz
		}
	}
	if bytes != wantBytes {
		t.Errorf("bytes moved = %d, want %d", bytes, wantBytes)
	}
	if model <= 0 {
		t.Error("no modeled time recorded")
	}
}

// The static estimate for a Table I pool on the paper's largest problem
// must beat the fastest single member in both precisions — the headline
// aggregate-throughput claim.
func TestPoolEstimateSpeedup8192(t *testing.T) {
	p, err := New(Options{Devices: device.All()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, prec := range []matrix.Precision{matrix.Single, matrix.Double} {
		est, err := p.Estimate(prec, 8192, 8192, 8192)
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		if est.BestSingleGFlops <= 0 || est.BestSingleDevice == "" {
			t.Fatalf("%v: no best single member: %+v", prec, est)
		}
		if est.GFlops <= est.BestSingleGFlops {
			t.Errorf("%v: pool %.0f GFlop/s not above best single %s %.0f",
				prec, est.GFlops, est.BestSingleDevice, est.BestSingleGFlops)
		}
		if est.Speedup <= 1 {
			t.Errorf("%v: speedup %.3f, want > 1", prec, est.Speedup)
		}
		var share float64
		for _, me := range est.Members {
			share += me.Share
			if me.Seconds > est.Seconds+1e-12 {
				t.Errorf("%v: member %s finishes after the makespan", prec, me.Device)
			}
		}
		if share < 0.999 || share > 1.001 {
			t.Errorf("%v: member shares sum to %v, want 1", prec, share)
		}
	}
}

// Degenerate and invalid problems.
func TestPoolEdgeCases(t *testing.T) {
	p := testPool(t, Options{Devices: fourDevices(t)[:2]})
	// Zero-size C: nothing to do.
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0,
		matrix.New[float64](0, 4, matrix.ColMajor), matrix.New[float64](4, 0, matrix.ColMajor),
		0.0, matrix.New[float64](0, 0, matrix.ColMajor)); err != nil {
		t.Errorf("empty C: %v", err)
	}
	// Mismatched operands.
	if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0,
		randMat[float64](4, 5, 1), randMat[float64](6, 4, 2),
		0.0, randMat[float64](4, 4, 3)); err == nil {
		t.Error("dimension mismatch not reported")
	}
	// Estimate rejects nonsense.
	if _, err := p.Estimate(matrix.Double, 0, 8, 8); err == nil {
		t.Error("Estimate accepted zero M")
	}
}

// BenchmarkPoolGEMM runs one functional pool GEMM per iteration and
// reports the modeled 8192-class aggregate throughput of the full
// Table I pool against its fastest single member.
func BenchmarkPoolGEMM(b *testing.B) {
	p := testPool(b, Options{})
	m, n, k := 128, 128, 32
	a := randMat[float64](m, k, 61)
	bm := randMat[float64](k, n, 62)
	c := randMat[float64](m, n, 63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(p, blas.NoTrans, blas.NoTrans, 1.0, a, bm, 0.0, c); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tab, err := New(Options{Devices: device.All()})
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	est, err := tab.Estimate(matrix.Double, 8192, 8192, 8192)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(est.GFlops, "pool-gflops-8192")
	b.ReportMetric(est.BestSingleGFlops, "best-single-gflops-8192")
	b.ReportMetric(est.Speedup, "speedup-8192")
}
