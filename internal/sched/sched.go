// Package sched is the multi-device GEMM scheduler: it executes one
// logical C ← α·op(A)·op(B) + β·C across a pool of simulated devices
// drawn from the Table I catalog, each member running the tuned kernel
// the tuning database holds for it.
//
// C is partitioned into row/column tile panels (K is never split, so
// every element's accumulation order — and therefore its bit pattern —
// is identical to a single-device run). Tiles are statically assigned
// by modeled per-device throughput (earliest-completion-time list
// scheduling over perfmodel tile estimates), then rebalanced at run
// time by a work-stealing queue so a slow or faulted member cannot
// stall the join. A transient tile failure is retried on the same
// member after a jittered exponential backoff; other failures requeue
// the tile onto the survivors.
//
// Member health is a per-device state machine rather than a permanent
// flag: healthy → suspect (a recent failure) → quarantined (the
// consecutive-failure threshold, an ErrDeviceDead launch, or Kill) →
// probation (a probe GEMM verified bit-exact against the pure-Go BLAS
// reference) → healthy. Quarantined members take no tiles; they are
// re-probed on later Runs after a cooldown that doubles per failed
// probe, except explicitly Killed members, which wait for Revive.
//
// RunCtx threads a context through every tile so a deadline or cancel
// returns a typed error instead of hanging; when the pool cannot finish
// a call, it degrades to the single healthiest member and — opt-in —
// to the pure-Go BLAS fallback, so a call returns a correct result or a
// typed error, never a silent wrong answer.
//
// Per-member statistics (tiles executed and stolen, bytes moved,
// retries, busy and modeled device time) make the load balance and the
// aggregate speedup observable; Estimate previews both for a problem
// size without executing anything.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"oclgemm/internal/device"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
	"oclgemm/internal/tunedb"
)

// ErrDeviceDead marks kernel launches refused because the member was
// killed or quarantined; the scheduler reroutes the tile and drains the
// member until a probe (or Revive) re-admits it.
var ErrDeviceDead = errors.New("sched: device removed from pool")

// ErrNoDevices reports a Run on a pool whose members are all dead.
var ErrNoDevices = errors.New("sched: no live devices in pool")

// ErrDeadlineExceeded reports a RunCtx abandoned because its context's
// deadline expired before the call completed. It wraps the context
// error, so errors.Is(err, context.DeadlineExceeded) also holds.
var ErrDeadlineExceeded = errors.New("sched: run deadline exceeded")

// ErrUnpriceable reports that the performance model produced no usable
// (finite, positive) time on any live member, so an Estimate would be
// meaningless rather than merely pessimistic.
var ErrUnpriceable = errors.New("sched: performance model cannot price the problem on any member")

// DefaultFailThreshold is the number of consecutive tile failures after
// which a member is quarantined and drained.
const DefaultFailThreshold = 3

// DefaultTilesPerMember sets the auto-partitioner's target tile count
// per live member: enough grain for stealing to rebalance without
// drowning the modeled time in per-tile copy overhead.
const DefaultTilesPerMember = 4

// Retry/backoff and recovery defaults (see Options).
const (
	// DefaultRetryBackoff is the base delay before retrying a transient
	// tile failure on the same member; the delay doubles per attempt.
	DefaultRetryBackoff = time.Millisecond
	// DefaultRetryBackoffMax caps the exponential growth.
	DefaultRetryBackoffMax = 32 * time.Millisecond
	// DefaultProbationTiles is how many consecutive tiles a re-admitted
	// member must complete before it counts as fully healthy again.
	DefaultProbationTiles = 3
)

// Options configures a pool.
type Options struct {
	// Devices are the pool members (any subset of device.Catalog, one
	// member per entry). Required, at least one.
	Devices []*device.Spec
	// DB supplies tuned kernels per (device, precision); nil selects
	// the paper's Table II database. Members without a record use the
	// tunedb nearest-device fallback.
	DB *tunedb.DB
	// TileM, TileN force the C tile size (0 = auto: a grid of about
	// TilesPerMember tiles per live member, aspect-proportional).
	TileM, TileN int
	// TilesPerMember tunes the auto partitioner (0 = default).
	TilesPerMember int
	// MaxAttempts bounds how often one tile may fail across the whole
	// pool before the call errors out (0 = 2·len(Devices)+2).
	MaxAttempts int
	// FailThreshold is the consecutive-failure count that quarantines a
	// member (0 = DefaultFailThreshold).
	FailThreshold int
	// RetryBackoff is the base delay of the jittered exponential backoff
	// applied before retrying a transient tile failure on the same
	// member (0 = DefaultRetryBackoff); RetryBackoffMax caps the growth
	// (0 = DefaultRetryBackoffMax). Jitter is deterministic per
	// (device, tile, attempt).
	RetryBackoff, RetryBackoffMax time.Duration
	// ProbeCooldown is how many Runs a quarantined member sits out
	// before its first re-admission probe (0 = 1); every failed probe
	// doubles the wait, capped at 8×. Members removed by Kill are exempt
	// from auto-probing until Revive.
	ProbeCooldown int
	// ProbationTiles is how many consecutive tiles a re-admitted member
	// must complete before it is fully healthy again (0 =
	// DefaultProbationTiles). One failure on probation re-quarantines.
	ProbationTiles int
	// Fallback enables the final rung of the degradation ladder: when
	// the pool and the single-device retry both fail, compute the call
	// with the pure-Go BLAS reference instead of returning the error.
	Fallback bool
	// Workers bounds per-launch work-group parallelism on every member
	// (0 = GOMAXPROCS, 1 = serial); members always run concurrently
	// with each other regardless.
	Workers int
	// LaunchHook, when set, is consulted before every kernel launch of
	// every member (fault injection: return an error to fail the
	// launch). It receives the member's device ID and the kernel name.
	LaunchHook func(deviceID, kernelName string) error
	// Obs, when set, receives the pool's execution record: per-member
	// sched.tiles / sched.steals / sched.tile.failures /
	// sched.member.deaths / sched.member.probes /
	// sched.member.probe.failures / sched.member.recoveries counters and
	// sched.tile.seconds histograms (device-labeled), pool-wide
	// sched.runs / sched.run.seconds / sched.requeues /
	// sched.retry.backoffs / sched.deadline.exceeded /
	// sched.degraded.single / sched.degraded.blas, and each member's
	// engine and clsim metrics.
	Obs *obs.Registry
	// Trace, when set, records one span per executed tile (plus each
	// member's engine phase spans) into its ring buffer.
	Trace *obs.Tracer
}

// DeviceStats is one member's cumulative execution record.
type DeviceStats struct {
	// Device is the member's device ID.
	Device string
	// Kernel32 and Kernel64 describe where each precision's parameters
	// came from ("published kernel for X", "nearest-device kernel from Y").
	Kernel32, Kernel64 string
	// Tiles counts tiles this member completed; Stolen counts how many
	// of those it took from another member's queue.
	Tiles, Stolen int
	// Retries counts tile attempts that failed on this member.
	Retries int
	// BytesMoved totals the host bytes the member's tiles touched
	// (operand panels in, result tiles out).
	BytesMoved int64
	// BusySeconds is wall-clock time spent executing tiles (simulator
	// cost); ModelSeconds is the modeled device time of the same tiles
	// (the paper-world cost the load balance aims to equalize).
	BusySeconds  float64
	ModelSeconds float64
	// Dead reports the member is currently quarantined (killed or
	// drained); a successful probe or Revive clears it.
	Dead bool
	// Health is the member's serve-path health state at snapshot time.
	Health HealthState
}

// memberObs holds one member's pre-resolved, device-labeled
// instruments; the zero value (no registry) no-ops on every call.
type memberObs struct {
	tiles      *obs.Counter
	steals     *obs.Counter
	failures   *obs.Counter
	deaths     *obs.Counter
	probes     *obs.Counter
	probeFails *obs.Counter
	recoveries *obs.Counter
	tileSec    *obs.Histogram
}

func resolveMemberObs(r *obs.Registry, id string) memberObs {
	return memberObs{
		tiles:      r.Counter(obs.Label("sched.tiles", "device", id)),
		steals:     r.Counter(obs.Label("sched.steals", "device", id)),
		failures:   r.Counter(obs.Label("sched.tile.failures", "device", id)),
		deaths:     r.Counter(obs.Label("sched.member.deaths", "device", id)),
		probes:     r.Counter(obs.Label("sched.member.probes", "device", id)),
		probeFails: r.Counter(obs.Label("sched.member.probe.failures", "device", id)),
		recoveries: r.Counter(obs.Label("sched.member.recoveries", "device", id)),
		tileSec:    r.Histogram(obs.Label("sched.tile.seconds", "device", id)),
	}
}

// member is one pool slot: a device plus a persistent execution engine
// (plan cache) per precision, built from the tuning database.
type member struct {
	idx int
	dev *device.Spec

	im32, im64   *gemmimpl.Impl
	eng32, eng64 *gemmimpl.Engine
	how32, how64 string

	o  memberObs
	tr *obs.Tracer

	mu          sync.Mutex
	state       HealthState
	killed      bool // explicit Kill: no auto-probe until Revive
	probing     bool // a probe launch is in flight (hook admits it)
	consecFails int
	consecOK    int   // successful tiles since entering probation
	nextProbe   int64 // run sequence when the next auto-probe is due
	probeWait   int64 // current probe cooldown in runs
	probes      int
	probeFails  int
	recoveries  int
	stats       DeviceStats
}

// isDead reports the member is quarantined and must take no tiles.
func (mb *member) isDead() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.state == Quarantined
}

// refusesLaunch reports whether the member's launch hook must refuse:
// quarantined, unless the launch is the member's own recovery probe.
func (mb *member) refusesLaunch() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.state == Quarantined && !mb.probing
}

// Pool is a set of devices that jointly execute GEMM calls. Engines,
// statistics and member health persist across calls; Run partitions and
// executes one call. Safe for concurrent use, but concurrent Runs share
// the members (each member serializes its own tiles).
type Pool struct {
	opts    Options
	members []*member

	maxAttempts     int
	failThreshold   int
	retryBackoff    time.Duration
	retryBackoffMax time.Duration
	probeCooldown   int64
	probationTiles  int

	runSeq atomic.Int64 // Run calls issued; clocks the probe cooldowns

	o poolObs
}

// poolObs holds the pool-wide instruments (zero value no-ops).
type poolObs struct {
	runs          *obs.Counter
	runSec        *obs.Histogram
	requeues      *obs.Counter
	backoffs      *obs.Counter
	backoffSec    *obs.Histogram
	deadlines     *obs.Counter
	degradeSingle *obs.Counter
	degradeBlas   *obs.Counter
}

// New builds a pool: every device resolves its tuned kernel for both
// precisions from the database (with the Table II nearest-device
// fallback) and gets a persistent execution engine.
func New(opts Options) (*Pool, error) {
	if len(opts.Devices) == 0 {
		return nil, errors.New("sched: pool needs at least one device")
	}
	db := opts.DB
	if db == nil {
		db = tunedb.PaperTableII()
	}
	p := &Pool{
		opts:          opts,
		maxAttempts:   opts.MaxAttempts,
		failThreshold: opts.FailThreshold,
	}
	if p.maxAttempts <= 0 {
		p.maxAttempts = 2*len(opts.Devices) + 2
	}
	if p.failThreshold <= 0 {
		p.failThreshold = DefaultFailThreshold
	}
	p.retryBackoff = opts.RetryBackoff
	if p.retryBackoff <= 0 {
		p.retryBackoff = DefaultRetryBackoff
	}
	p.retryBackoffMax = opts.RetryBackoffMax
	if p.retryBackoffMax <= 0 {
		p.retryBackoffMax = DefaultRetryBackoffMax
	}
	p.probeCooldown = int64(opts.ProbeCooldown)
	if p.probeCooldown <= 0 {
		p.probeCooldown = 1
	}
	p.probationTiles = opts.ProbationTiles
	if p.probationTiles <= 0 {
		p.probationTiles = DefaultProbationTiles
	}
	p.o = poolObs{
		runs:          opts.Obs.Counter("sched.runs"),
		runSec:        opts.Obs.Histogram("sched.run.seconds"),
		requeues:      opts.Obs.Counter("sched.requeues"),
		backoffs:      opts.Obs.Counter("sched.retry.backoffs"),
		backoffSec:    opts.Obs.Histogram("sched.retry.backoff.seconds"),
		deadlines:     opts.Obs.Counter("sched.deadline.exceeded"),
		degradeSingle: opts.Obs.Counter("sched.degraded.single"),
		degradeBlas:   opts.Obs.Counter("sched.degraded.blas"),
	}
	for i, d := range opts.Devices {
		mb, err := p.newMember(i, d, db)
		if err != nil {
			return nil, fmt.Errorf("sched: device %s: %w", d.ID, err)
		}
		p.members = append(p.members, mb)
	}
	return p, nil
}

func (p *Pool) newMember(idx int, d *device.Spec, db *tunedb.DB) (*member, error) {
	mb := &member{idx: idx, dev: d}
	mb.stats.Device = d.ID
	mb.o = resolveMemberObs(p.opts.Obs, d.ID)
	mb.tr = p.opts.Trace
	hook := func(kernelName string) error {
		if mb.refusesLaunch() {
			return fmt.Errorf("%w: %s", ErrDeviceDead, d.ID)
		}
		if p.opts.LaunchHook != nil {
			return p.opts.LaunchHook(d.ID, kernelName)
		}
		return nil
	}
	build := func(prec matrix.Precision) (*gemmimpl.Impl, *gemmimpl.Engine, string, error) {
		rec, how, err := tunedb.LookupOrFallback(db, d, prec)
		if err != nil {
			return nil, nil, "", err
		}
		params, err := rec.Params()
		if err != nil {
			return nil, nil, "", err
		}
		im, err := gemmimpl.New(d, params)
		if err != nil {
			return nil, nil, "", err
		}
		im.SetWorkers(p.opts.Workers)
		im.SetLaunchHook(hook)
		im.SetObservability(p.opts.Obs, p.opts.Trace)
		return im, gemmimpl.NewEngine(im), how, nil
	}
	var err error
	if mb.im32, mb.eng32, mb.how32, err = build(matrix.Single); err != nil {
		return nil, err
	}
	if mb.im64, mb.eng64, mb.how64, err = build(matrix.Double); err != nil {
		mb.eng32.Close()
		return nil, err
	}
	mb.stats.Kernel32, mb.stats.Kernel64 = mb.how32, mb.how64
	return mb, nil
}

// impl returns the member's implementation for a precision.
func (mb *member) impl(prec matrix.Precision) *gemmimpl.Impl {
	if prec == matrix.Double {
		return mb.im64
	}
	return mb.im32
}

// engineFor returns the member's execution engine for the element type.
func engineFor[T matrix.Scalar](mb *member) *gemmimpl.Engine {
	var zero T
	if _, ok := any(zero).(float64); ok {
		return mb.eng64
	}
	return mb.eng32
}

// precisionOf maps the element type to its precision.
func precisionOf[T matrix.Scalar]() matrix.Precision {
	var zero T
	if _, ok := any(zero).(float64); ok {
		return matrix.Double
	}
	return matrix.Single
}

// alive returns the live members.
func (p *Pool) alive() []*member {
	var out []*member
	for _, mb := range p.members {
		if !mb.isDead() {
			out = append(out, mb)
		}
	}
	return out
}

// Size returns the number of pool members, dead ones included.
func (p *Pool) Size() int { return len(p.members) }

// Alive returns the number of live members.
func (p *Pool) Alive() int { return len(p.alive()) }

// Devices returns the member devices in pool order.
func (p *Pool) Devices() []*device.Spec {
	out := make([]*device.Spec, len(p.members))
	for i, mb := range p.members {
		out[i] = mb.dev
	}
	return out
}

// Kill quarantines every member with the device ID: in-flight launches
// fail with ErrDeviceDead, queued tiles are stolen by the survivors,
// and later Runs exclude the member. A killed member is never
// auto-probed; Revive lifts the kill. It reports whether any member
// matched.
func (p *Pool) Kill(deviceID string) bool {
	hit := false
	for _, mb := range p.members {
		if mb.dev.ID == deviceID {
			mb.mu.Lock()
			mb.killed = true
			p.quarantineLocked(mb)
			mb.mu.Unlock()
			hit = true
		}
	}
	return hit
}

// SetWorkers rebounds per-launch work-group parallelism on every
// member (0 = GOMAXPROCS, 1 = serial).
func (p *Pool) SetWorkers(n int) {
	for _, mb := range p.members {
		mb.im32.SetWorkers(n)
		mb.im64.SetWorkers(n)
	}
}

// BlockSize returns a blocking size that keeps a level-3 consumer's
// device GEMM calls at least one work-group panel on every member: the
// maximum Mwg/Nwg across members and precisions.
func (p *Pool) BlockSize() int {
	nb := 1
	for _, mb := range p.members {
		for _, im := range []*gemmimpl.Impl{mb.im32, mb.im64} {
			nb = max(nb, max(im.Params.Mwg, im.Params.Nwg))
		}
	}
	return nb
}

// Stats returns a snapshot of every member's cumulative statistics, in
// pool order.
func (p *Pool) Stats() []DeviceStats {
	out := make([]DeviceStats, len(p.members))
	for i, mb := range p.members {
		mb.mu.Lock()
		out[i] = mb.stats
		out[i].Health = mb.state
		mb.mu.Unlock()
	}
	return out
}

// Close releases every member's cached plans (device buffers, kernels).
// The pool remains usable; the next Run rebuilds plans on demand.
func (p *Pool) Close() {
	for _, mb := range p.members {
		mb.eng32.Close()
		mb.eng64.Close()
	}
}
