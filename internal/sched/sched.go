// Package sched is the multi-device GEMM scheduler: it executes one
// logical C ← α·op(A)·op(B) + β·C across a pool of simulated devices
// drawn from the Table I catalog, each member running the tuned kernel
// the tuning database holds for it.
//
// C is partitioned into row/column tile panels (K is never split, so
// every element's accumulation order — and therefore its bit pattern —
// is identical to a single-device run). Tiles are statically assigned
// by modeled per-device throughput (earliest-completion-time list
// scheduling over perfmodel tile estimates), then rebalanced at run
// time by a work-stealing queue so a slow or faulted member cannot
// stall the join. A tile that fails on one device is requeued onto the
// survivors; a member that keeps failing (or whose launches report
// ErrDeviceDead after Kill) is declared dead, its queue is picked clean
// by the survivors, and it takes no further part in this or later runs.
//
// Per-member statistics (tiles executed and stolen, bytes moved,
// retries, busy and modeled device time) make the load balance and the
// aggregate speedup observable; Estimate previews both for a problem
// size without executing anything.
package sched

import (
	"errors"
	"fmt"
	"sync"

	"oclgemm/internal/device"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
	"oclgemm/internal/tunedb"
)

// ErrDeviceDead marks kernel launches refused because the member was
// killed or declared dead; the scheduler reroutes the tile and removes
// the member from the pool.
var ErrDeviceDead = errors.New("sched: device removed from pool")

// ErrNoDevices reports a Run on a pool whose members are all dead.
var ErrNoDevices = errors.New("sched: no live devices in pool")

// ErrUnpriceable reports that the performance model produced no usable
// (finite, positive) time on any live member, so an Estimate would be
// meaningless rather than merely pessimistic.
var ErrUnpriceable = errors.New("sched: performance model cannot price the problem on any member")

// DefaultFailThreshold is the number of consecutive tile failures after
// which a member is declared dead and drained.
const DefaultFailThreshold = 3

// DefaultTilesPerMember sets the auto-partitioner's target tile count
// per live member: enough grain for stealing to rebalance without
// drowning the modeled time in per-tile copy overhead.
const DefaultTilesPerMember = 4

// Options configures a pool.
type Options struct {
	// Devices are the pool members (any subset of device.Catalog, one
	// member per entry). Required, at least one.
	Devices []*device.Spec
	// DB supplies tuned kernels per (device, precision); nil selects
	// the paper's Table II database. Members without a record use the
	// tunedb nearest-device fallback.
	DB *tunedb.DB
	// TileM, TileN force the C tile size (0 = auto: a grid of about
	// TilesPerMember tiles per live member, aspect-proportional).
	TileM, TileN int
	// TilesPerMember tunes the auto partitioner (0 = default).
	TilesPerMember int
	// MaxAttempts bounds how often one tile may fail across the whole
	// pool before the call errors out (0 = 2·len(Devices)+2).
	MaxAttempts int
	// FailThreshold is the consecutive-failure count that declares a
	// member dead (0 = DefaultFailThreshold).
	FailThreshold int
	// Workers bounds per-launch work-group parallelism on every member
	// (0 = GOMAXPROCS, 1 = serial); members always run concurrently
	// with each other regardless.
	Workers int
	// LaunchHook, when set, is consulted before every kernel launch of
	// every member (fault injection: return an error to fail the
	// launch). It receives the member's device ID and the kernel name.
	LaunchHook func(deviceID, kernelName string) error
	// Obs, when set, receives the pool's execution record: per-member
	// sched.tiles / sched.steals / sched.tile.failures /
	// sched.member.deaths counters and sched.tile.seconds histograms
	// (device-labeled), pool-wide sched.runs / sched.run.seconds /
	// sched.requeues, and each member's engine and clsim metrics.
	Obs *obs.Registry
	// Trace, when set, records one span per executed tile (plus each
	// member's engine phase spans) into its ring buffer.
	Trace *obs.Tracer
}

// DeviceStats is one member's cumulative execution record.
type DeviceStats struct {
	// Device is the member's device ID.
	Device string
	// Kernel32 and Kernel64 describe where each precision's parameters
	// came from ("published kernel for X", "nearest-device kernel from Y").
	Kernel32, Kernel64 string
	// Tiles counts tiles this member completed; Stolen counts how many
	// of those it took from another member's queue.
	Tiles, Stolen int
	// Retries counts tile attempts that failed on this member.
	Retries int
	// BytesMoved totals the host bytes the member's tiles touched
	// (operand panels in, result tiles out).
	BytesMoved int64
	// BusySeconds is wall-clock time spent executing tiles (simulator
	// cost); ModelSeconds is the modeled device time of the same tiles
	// (the paper-world cost the load balance aims to equalize).
	BusySeconds  float64
	ModelSeconds float64
	// Dead reports the member was killed or drained out of the pool.
	Dead bool
}

// memberObs holds one member's pre-resolved, device-labeled
// instruments; the zero value (no registry) no-ops on every call.
type memberObs struct {
	tiles    *obs.Counter
	steals   *obs.Counter
	failures *obs.Counter
	deaths   *obs.Counter
	tileSec  *obs.Histogram
}

func resolveMemberObs(r *obs.Registry, id string) memberObs {
	return memberObs{
		tiles:    r.Counter(obs.Label("sched.tiles", "device", id)),
		steals:   r.Counter(obs.Label("sched.steals", "device", id)),
		failures: r.Counter(obs.Label("sched.tile.failures", "device", id)),
		deaths:   r.Counter(obs.Label("sched.member.deaths", "device", id)),
		tileSec:  r.Histogram(obs.Label("sched.tile.seconds", "device", id)),
	}
}

// member is one pool slot: a device plus a persistent execution engine
// (plan cache) per precision, built from the tuning database.
type member struct {
	idx int
	dev *device.Spec

	im32, im64   *gemmimpl.Impl
	eng32, eng64 *gemmimpl.Engine
	how32, how64 string

	o  memberObs
	tr *obs.Tracer

	mu          sync.Mutex
	dead        bool
	consecFails int
	stats       DeviceStats
}

func (mb *member) isDead() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.dead
}

func (mb *member) markDead() {
	mb.mu.Lock()
	mb.markDeadLocked()
	mb.mu.Unlock()
}

// markDeadLocked declares the member dead under mb.mu, counting the
// death event only on the first transition.
func (mb *member) markDeadLocked() {
	if mb.dead {
		return
	}
	mb.dead = true
	mb.stats.Dead = true
	mb.o.deaths.Inc()
}

// Pool is a set of devices that jointly execute GEMM calls. Engines,
// statistics and member health persist across calls; Run partitions and
// executes one call. Safe for concurrent use, but concurrent Runs share
// the members (each member serializes its own tiles).
type Pool struct {
	opts    Options
	members []*member

	maxAttempts   int
	failThreshold int

	o poolObs
}

// poolObs holds the pool-wide instruments (zero value no-ops).
type poolObs struct {
	runs     *obs.Counter
	runSec   *obs.Histogram
	requeues *obs.Counter
}

// New builds a pool: every device resolves its tuned kernel for both
// precisions from the database (with the Table II nearest-device
// fallback) and gets a persistent execution engine.
func New(opts Options) (*Pool, error) {
	if len(opts.Devices) == 0 {
		return nil, errors.New("sched: pool needs at least one device")
	}
	db := opts.DB
	if db == nil {
		db = tunedb.PaperTableII()
	}
	p := &Pool{
		opts:          opts,
		maxAttempts:   opts.MaxAttempts,
		failThreshold: opts.FailThreshold,
	}
	if p.maxAttempts <= 0 {
		p.maxAttempts = 2*len(opts.Devices) + 2
	}
	if p.failThreshold <= 0 {
		p.failThreshold = DefaultFailThreshold
	}
	p.o = poolObs{
		runs:     opts.Obs.Counter("sched.runs"),
		runSec:   opts.Obs.Histogram("sched.run.seconds"),
		requeues: opts.Obs.Counter("sched.requeues"),
	}
	for i, d := range opts.Devices {
		mb, err := p.newMember(i, d, db)
		if err != nil {
			return nil, fmt.Errorf("sched: device %s: %w", d.ID, err)
		}
		p.members = append(p.members, mb)
	}
	return p, nil
}

func (p *Pool) newMember(idx int, d *device.Spec, db *tunedb.DB) (*member, error) {
	mb := &member{idx: idx, dev: d}
	mb.stats.Device = d.ID
	mb.o = resolveMemberObs(p.opts.Obs, d.ID)
	mb.tr = p.opts.Trace
	hook := func(kernelName string) error {
		if mb.isDead() {
			return fmt.Errorf("%w: %s", ErrDeviceDead, d.ID)
		}
		if p.opts.LaunchHook != nil {
			return p.opts.LaunchHook(d.ID, kernelName)
		}
		return nil
	}
	build := func(prec matrix.Precision) (*gemmimpl.Impl, *gemmimpl.Engine, string, error) {
		rec, how, err := tunedb.LookupOrFallback(db, d, prec)
		if err != nil {
			return nil, nil, "", err
		}
		params, err := rec.Params()
		if err != nil {
			return nil, nil, "", err
		}
		im, err := gemmimpl.New(d, params)
		if err != nil {
			return nil, nil, "", err
		}
		im.Workers = p.opts.Workers
		im.LaunchHook = hook
		im.Obs = p.opts.Obs
		im.Trace = p.opts.Trace
		return im, gemmimpl.NewEngine(im), how, nil
	}
	var err error
	if mb.im32, mb.eng32, mb.how32, err = build(matrix.Single); err != nil {
		return nil, err
	}
	if mb.im64, mb.eng64, mb.how64, err = build(matrix.Double); err != nil {
		mb.eng32.Close()
		return nil, err
	}
	mb.stats.Kernel32, mb.stats.Kernel64 = mb.how32, mb.how64
	return mb, nil
}

// impl returns the member's implementation for a precision.
func (mb *member) impl(prec matrix.Precision) *gemmimpl.Impl {
	if prec == matrix.Double {
		return mb.im64
	}
	return mb.im32
}

// engineFor returns the member's execution engine for the element type.
func engineFor[T matrix.Scalar](mb *member) *gemmimpl.Engine {
	var zero T
	if _, ok := any(zero).(float64); ok {
		return mb.eng64
	}
	return mb.eng32
}

// precisionOf maps the element type to its precision.
func precisionOf[T matrix.Scalar]() matrix.Precision {
	var zero T
	if _, ok := any(zero).(float64); ok {
		return matrix.Double
	}
	return matrix.Single
}

// alive returns the live members.
func (p *Pool) alive() []*member {
	var out []*member
	for _, mb := range p.members {
		if !mb.isDead() {
			out = append(out, mb)
		}
	}
	return out
}

// Size returns the number of pool members, dead ones included.
func (p *Pool) Size() int { return len(p.members) }

// Alive returns the number of live members.
func (p *Pool) Alive() int { return len(p.alive()) }

// Devices returns the member devices in pool order.
func (p *Pool) Devices() []*device.Spec {
	out := make([]*device.Spec, len(p.members))
	for i, mb := range p.members {
		out[i] = mb.dev
	}
	return out
}

// Kill marks every member with the device ID dead: in-flight launches
// fail with ErrDeviceDead, queued tiles are stolen by the survivors,
// and later Runs exclude the member. It reports whether any member
// matched.
func (p *Pool) Kill(deviceID string) bool {
	hit := false
	for _, mb := range p.members {
		if mb.dev.ID == deviceID {
			mb.markDead()
			hit = true
		}
	}
	return hit
}

// SetWorkers rebounds per-launch work-group parallelism on every
// member (0 = GOMAXPROCS, 1 = serial).
func (p *Pool) SetWorkers(n int) {
	for _, mb := range p.members {
		mb.im32.Workers = n
		mb.im64.Workers = n
	}
}

// BlockSize returns a blocking size that keeps a level-3 consumer's
// device GEMM calls at least one work-group panel on every member: the
// maximum Mwg/Nwg across members and precisions.
func (p *Pool) BlockSize() int {
	nb := 1
	for _, mb := range p.members {
		for _, im := range []*gemmimpl.Impl{mb.im32, mb.im64} {
			nb = max(nb, max(im.Params.Mwg, im.Params.Nwg))
		}
	}
	return nb
}

// Stats returns a snapshot of every member's cumulative statistics, in
// pool order.
func (p *Pool) Stats() []DeviceStats {
	out := make([]DeviceStats, len(p.members))
	for i, mb := range p.members {
		mb.mu.Lock()
		out[i] = mb.stats
		mb.mu.Unlock()
	}
	return out
}

// Close releases every member's cached plans (device buffers, kernels).
// The pool remains usable; the next Run rebuilds plans on demand.
func (p *Pool) Close() {
	for _, mb := range p.members {
		mb.eng32.Close()
		mb.eng64.Close()
	}
}
