// Run-time execution: per-member tile queues, work stealing, fault
// handling. Each live member gets one worker goroutine that drains its
// own queue head-first and steals from the largest other queue
// tail-first when idle. A transiently-failed tile is retried on the
// same member after a jittered exponential backoff; other failures
// requeue it onto the least-loaded surviving member, and a member that
// keeps failing is quarantined and its queue picked clean by the
// others. RunCtx adds a deadline watchdog (detached return: stragglers
// stage their C writes and discard them once the run is abandoned) and
// the degradation ladder — surviving members → single healthiest
// member → opt-in pure-Go BLAS.
package sched

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/core"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
)

// runState is the shared state of one Run call: the per-member tile
// queues and the completion accounting, all under one mutex + cond.
type runState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	live    []*member
	queues  [][]*tile
	pending int   // tiles not yet completed (queued or in flight)
	fatal   error // set once; stops every worker
	lastErr error // most recent tile failure (context for the fatal)

	// staged forces every C write through a private tile copy committed
	// under mu only while the run is still owned (fatal == nil). Set for
	// cancellable contexts: RunCtx may return on deadline while a tile
	// is in flight, and the caller owns C from that moment.
	staged bool
}

// abort raises a fatal error (first writer wins) and wakes every
// worker.
func (rs *runState) abort(err error) {
	rs.mu.Lock()
	if rs.fatal == nil {
		rs.fatal = err
	}
	rs.cond.Broadcast()
	rs.mu.Unlock()
}

// aborted reports whether the run already failed.
func (rs *runState) aborted() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.fatal != nil
}

// noteErr records the most recent tile failure for error context.
func (rs *runState) noteErr(err error) {
	rs.mu.Lock()
	rs.lastErr = err
	rs.mu.Unlock()
}

// commit applies a staged tile write unless the run has been abandoned:
// after RunCtx returns, the caller owns C again, so stragglers must not
// touch it. Direct (unstaged) writes pass fn == nil.
func (rs *runState) commit(fn func()) {
	if fn == nil {
		return
	}
	if !rs.staged {
		fn()
		return
	}
	rs.mu.Lock()
	if rs.fatal == nil {
		fn()
	}
	rs.mu.Unlock()
}

// Run executes C ← alpha·op(A)·op(B) + beta·C across the pool's live
// members with no deadline. See RunCtx.
func Run[T matrix.Scalar](p *Pool, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	return RunCtx(context.Background(), p, ta, tb, alpha, a, b, beta, c)
}

// RunCtx executes C ← alpha·op(A)·op(B) + beta·C across the pool's live
// members, honoring the context's deadline and cancellation. The result
// is bit-identical to a single-device run: C is partitioned only over
// rows and columns, never over K, so every element keeps its
// accumulation order.
//
// The call returns a correct result or a typed error, never a hang:
// quarantined members due for a probe are re-admitted first; a failed
// pool run degrades to the single healthiest member, then (when
// Options.Fallback is set) to the pure-Go BLAS reference. On deadline
// it returns an ErrDeadlineExceeded-wrapped error without waiting for
// straggling launches — their C writes are staged and discarded.
func RunCtx[T matrix.Scalar](ctx context.Context, p *Pool, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	if ctx == nil {
		ctx = context.Background()
	}
	m, n, k, err := gemmimpl.Dims(ta, tb, a, b, c)
	if err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	if k <= 0 {
		return fmt.Errorf("sched: non-positive k %d", k)
	}
	if err := ctx.Err(); err != nil {
		return p.finish(p.ctxError(err))
	}
	p.admitQuarantined(ctx)
	prec := precisionOf[T]()

	// Ladder restarts need the original C: completed tiles of a failed
	// rung have already consumed the beta·C addend. beta == 0 rungs
	// overwrite C fully, so no snapshot is needed.
	var snap *matrix.Matrix[T]
	if beta != 0 {
		snap = c.Clone()
	}
	restore := func() {
		if snap == nil {
			return
		}
		copy(c.Data, snap.Data)
	}

	var poolErr error
	if live := p.alive(); len(live) > 0 {
		poolErr = runTiles(ctx, p, live, prec, ta, tb, alpha, a, b, beta, c, m, n, k)
		if poolErr == nil {
			return nil
		}
	} else {
		poolErr = p.noDevicesError(0, nil)
	}
	if errors.Is(poolErr, ErrDeadlineExceeded) || ctx.Err() != nil {
		return p.finish(poolErr)
	}

	// Rung 2: the single healthiest member retries the whole call
	// (bit-identical: same kernels, K unsplit).
	if mb := p.healthiest(prec, m, n, k); mb != nil {
		p.o.degradeSingle.Inc()
		sp := mb.tr.Start("sched.degrade")
		sp.SetAttr("rung", "single").SetAttr("device", mb.dev.ID)
		restore()
		err := gemmimpl.EngineRunCtx(ctx, engineFor[T](mb), ta, tb, alpha, a, b, beta, c)
		if err == nil {
			sp.End()
			return nil
		}
		sp.SetAttr("error", err.Error()).End()
		p.noteFailure(mb, err)
		poolErr = fmt.Errorf("%w; single-device retry on %s: %w", poolErr, mb.dev.ID, err)
		if err := ctx.Err(); err != nil {
			restore()
			return p.finish(p.ctxError(err))
		}
	}

	// Rung 3 (opt-in): the pure-Go reference — in-order accumulation,
	// same result up to float32 rounding (bit-exact for float64).
	if p.opts.Fallback {
		p.o.degradeBlas.Inc()
		sp := p.opts.Trace.Start("sched.degrade")
		sp.SetAttr("rung", "blas")
		restore()
		blas.GEMM(ta, tb, alpha, a, b, beta, c)
		sp.End()
		return nil
	}
	// Ladder exhausted: hand back the original C (beta != 0) rather
	// than a torn mix of committed tiles and untouched regions. The
	// workers have joined on every non-deadline path, so no straggler
	// races this write. (On a deadline return above, C keeps whatever
	// tiles committed before the cutoff — stragglers stage and discard.)
	restore()
	return p.finish(poolErr)
}

// ctxError wraps a context error in the pool's typed sentinel.
func (p *Pool) ctxError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	}
	return fmt.Errorf("sched: run canceled: %w", err)
}

// finish counts a deadline outcome exactly once per call on the way
// out.
func (p *Pool) finish(err error) error {
	if errors.Is(err, ErrDeadlineExceeded) {
		p.o.deadlines.Inc()
	}
	return err
}

// noDevicesError builds the all-members-dead error, naming the dead
// devices so the caller can see which members drained away.
func (p *Pool) noDevicesError(pending int, lastErr error) error {
	err := error(ErrNoDevices)
	var dead []string
	for _, mb := range p.members {
		if mb.isDead() {
			dead = append(dead, mb.dev.ID)
		}
	}
	if len(dead) > 0 {
		err = fmt.Errorf("%w (dead members: %s)", err, strings.Join(dead, ", "))
	}
	if pending > 0 {
		err = fmt.Errorf("%w: %d tiles pending", err, pending)
	}
	if lastErr != nil {
		err = fmt.Errorf("%w (last failure: %w)", err, lastErr)
	}
	return err
}

// runTiles partitions the problem and drives the worker pool once,
// returning when every tile committed, a fatal error was raised, or the
// context expired. On expiry it returns immediately (detached return):
// a reaper goroutine joins the workers, whose staged writes are
// discarded, so no goroutine leaks and C is never touched after return.
func runTiles[T matrix.Scalar](ctx context.Context, p *Pool, live []*member, prec matrix.Precision, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T], m, n, k int) error {
	tm, tn := p.tileDims(m, n, len(live))
	tiles := tilesFor(m, n, tm, tn)

	rs := &runState{
		live:    live,
		queues:  assign(tiles, live, prec, k),
		pending: len(tiles),
		staged:  ctx.Done() != nil,
	}
	rs.cond = sync.NewCond(&rs.mu)

	runStart := time.Now()
	var wg sync.WaitGroup
	for i, mb := range live {
		wg.Add(1)
		go func(me int, mb *member) {
			defer wg.Done()
			worker(ctx, p, rs, me, mb, ta, tb, alpha, a, b, beta, c, k)
		}(i, mb)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		p.o.runs.Inc()
		p.o.runSec.Observe(time.Since(runStart).Seconds())
		close(done)
	}()

	select {
	case <-done:
	case <-ctx.Done():
		rs.abort(p.ctxError(ctx.Err()))
		// Workers exit at their next queue visit or staged commit; the
		// reaper above settles the run accounting.
	}

	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.fatal != nil {
		return rs.fatal
	}
	if rs.pending > 0 {
		// Every worker exited (all members dead) with tiles abandoned.
		return p.noDevicesError(rs.pending, rs.lastErr)
	}
	return nil
}

// worker drains tiles for one member until the run completes, a fatal
// error is raised, or the member is quarantined. A transient failure is
// retried here on the same member after a backoff; anything else hands
// the tile to tileFailed for requeueing.
func worker[T matrix.Scalar](ctx context.Context, p *Pool, rs *runState, me int, mb *member, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T], k int) {
	prec := precisionOf[T]()
	for {
		t, stolen, ok := rs.next(me, mb)
		if !ok {
			return
		}
	attempts:
		for {
			sp := mb.tr.Start("sched.tile")
			sp.SetFlops(int64(blas.FlopCount(t.th, t.tw, k))).
				SetAttr("device", mb.dev.ID).
				SetAttr("tile", fmt.Sprintf("%d,%d %dx%d", t.i0, t.j0, t.th, t.tw))
			if stolen {
				sp.SetAttr("stolen", "true")
			}
			start := time.Now()
			commit, err := execTile(ctx, rs, mb, t, ta, tb, alpha, a, b, beta, c, k)
			busy := time.Since(start).Seconds()
			if err == nil {
				sp.End()
				rs.commit(commit)
				p.tileDone(rs, mb, prec, t, stolen, busy, k, beta == 0)
				break attempts
			}
			sp.SetAttr("error", err.Error()).End()
			t.attempts++
			rs.noteErr(err)
			quarantined := p.noteFailure(mb, err)
			if !quarantined && t.attempts < p.maxAttempts &&
				errors.Is(err, core.ErrTransient) && !rs.aborted() {
				if !p.backoff(ctx, mb.dev.ID, t) {
					// Context expired mid-backoff; the watchdog (or this
					// abort) surfaces the typed error.
					rs.abort(p.ctxError(ctx.Err()))
					return
				}
				continue attempts
			}
			p.tileFailed(rs, me, mb, t, err)
			break attempts
		}
		if mb.isDead() || rs.aborted() {
			return
		}
	}
}

// backoff sleeps the jittered exponential delay for the tile's attempt
// count; false means the context expired while sleeping.
func (p *Pool) backoff(ctx context.Context, deviceID string, t *tile) bool {
	d := p.backoffDelay(deviceID, t)
	p.o.backoffs.Inc()
	p.o.backoffSec.Observe(d.Seconds())
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// backoffDelay is base·2^(attempt-1) capped at the configured maximum,
// scaled by a deterministic jitter in [0.5, 1.5) keyed on (device,
// tile, attempt) — reproducible runs, no synchronized retry herds.
func (p *Pool) backoffDelay(deviceID string, t *tile) time.Duration {
	d := p.retryBackoff
	for a := 1; a < t.attempts && d < p.retryBackoffMax; a++ {
		d *= 2
	}
	if d > p.retryBackoffMax {
		d = p.retryBackoffMax
	}
	return time.Duration(float64(d) * (0.5 + hashUnit(deviceID, t.i0, t.j0, t.attempts)))
}

// hashUnit maps the labels to [0,1) deterministically (FNV-1a with a
// murmur-style finalizer, as in faultinject).
func hashUnit(dev string, i0, j0, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", dev, i0, j0, attempt)
	s := h.Sum64()
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	s *= 0xc4ceb9fe1a85ec53
	s ^= s >> 33
	return float64(s>>11) / float64(1<<53)
}

// next returns the member's next tile: its own queue's head, else the
// largest other queue's tail (a steal), else it waits for in-flight
// work to finish or fail. ok=false means the worker should exit (run
// complete, fatal error, or member quarantined).
func (rs *runState) next(me int, mb *member) (t *tile, stolen, ok bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for {
		if rs.fatal != nil || rs.pending == 0 || mb.isDead() {
			return nil, false, false
		}
		if q := rs.queues[me]; len(q) > 0 {
			t, rs.queues[me] = q[0], q[1:]
			return t, false, true
		}
		victim, most := -1, 0
		for i, q := range rs.queues {
			if i != me && len(q) > most {
				victim, most = i, len(q)
			}
		}
		if victim >= 0 {
			q := rs.queues[victim]
			t, rs.queues[victim] = q[len(q)-1], q[:len(q)-1]
			return t, true, true
		}
		// All queues empty but tiles are in flight elsewhere: a failure
		// may still requeue one onto us. Completion, requeue and fatal
		// all broadcast.
		rs.cond.Wait()
	}
}

// execTile runs one C tile on a member: operand panels are views into
// the caller's matrices (the full K extent — never split — of the
// tile's rows of op(A) and columns of op(B)). When beta == 0 and the
// run is not cancellable the C view writes straight through (the engine
// never reads C then, and write-back touches only the tile's own
// elements). Otherwise the tile is staged through a compact private
// copy — for beta != 0 because the engine's C upload copies the
// operand's whole backing slice (a shared view would read neighboring
// tiles while their owners write them), and for cancellable runs so a
// straggler's write can be discarded after a deadline return — and the
// returned commit closure publishes it.
func execTile[T matrix.Scalar](ctx context.Context, rs *runState, mb *member, t *tile, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T], k int) (commit func(), err error) {
	var av, bv *matrix.Matrix[T]
	if ta == blas.NoTrans {
		av = a.View(t.i0, 0, t.th, k)
	} else {
		av = a.View(0, t.i0, k, t.th)
	}
	if tb == blas.NoTrans {
		bv = b.View(0, t.j0, k, t.tw)
	} else {
		bv = b.View(t.j0, 0, t.tw, k)
	}
	cv := c.View(t.i0, t.j0, t.th, t.tw)
	if beta == 0 && !rs.staged {
		return nil, gemmimpl.EngineRunCtx(ctx, engineFor[T](mb), ta, tb, alpha, av, bv, beta, cv)
	}
	cw := matrix.New[T](t.th, t.tw, c.Order)
	if beta != 0 {
		for i := 0; i < t.th; i++ {
			for j := 0; j < t.tw; j++ {
				cw.Set(i, j, cv.At(i, j))
			}
		}
	}
	if err := gemmimpl.EngineRunCtx(ctx, engineFor[T](mb), ta, tb, alpha, av, bv, beta, cw); err != nil {
		return nil, err
	}
	return func() {
		for i := 0; i < t.th; i++ {
			for j := 0; j < t.tw; j++ {
				cv.Set(i, j, cw.At(i, j))
			}
		}
	}, nil
}

// tileDone records a completed tile and signals waiters when the run
// finishes.
func (p *Pool) tileDone(rs *runState, mb *member, prec matrix.Precision, t *tile, stolen bool, busy float64, k int, skipC bool) {
	// Modeled device time of the tile (pure model, no execution).
	var model float64
	if bd, err := mb.impl(prec).Time(t.th, t.tw, k); err == nil {
		model = bd.TotalSeconds
	}
	cmul := 2 // C read + written
	if skipC {
		cmul = 1
	}
	mb.mu.Lock()
	p.noteSuccessLocked(mb)
	mb.stats.Tiles++
	if stolen {
		mb.stats.Stolen++
	}
	mb.stats.BusySeconds += busy
	mb.stats.ModelSeconds += model
	mb.stats.BytesMoved += int64(t.th*k+k*t.tw+t.th*t.tw*cmul) * int64(prec.Size())
	mb.mu.Unlock()
	mb.o.tiles.Inc()
	if stolen {
		mb.o.steals.Inc()
	}
	mb.o.tileSec.Observe(busy)

	rs.mu.Lock()
	rs.pending--
	if rs.pending == 0 {
		rs.cond.Broadcast()
	}
	rs.mu.Unlock()
}

// tileFailed routes a non-retryable (on this member) failed attempt:
// the tile is requeued onto the least-loaded other surviving member —
// or the call turns fatal when the tile is out of attempts or no
// survivor remains. Member health was already advanced by noteFailure.
func (p *Pool) tileFailed(rs *runState, me int, mb *member, t *tile, err error) {
	rs.mu.Lock()
	switch {
	case rs.fatal != nil:
		// Another worker already failed the run; drop the tile.
	case t.attempts >= p.maxAttempts:
		rs.fatal = fmt.Errorf("sched: tile (%d,%d) %dx%d failed %d times across the pool: %w",
			t.i0, t.j0, t.th, t.tw, t.attempts, err)
	case rs.requeue(t, me):
		p.o.requeues.Inc()
	default:
		rs.fatal = p.noDevicesError(rs.pending, err)
	}
	rs.cond.Broadcast()
	rs.mu.Unlock()
}

// requeue places a failed tile on the least-loaded surviving member,
// preferring a member other than the one it just failed on. Called with
// rs.mu held; reports false when no live member can take it.
func (rs *runState) requeue(t *tile, failedOn int) bool {
	best, bestLen := -1, 0
	for i, mb := range rs.live {
		if i == failedOn || mb.isDead() {
			continue
		}
		if best < 0 || len(rs.queues[i]) < bestLen {
			best, bestLen = i, len(rs.queues[i])
		}
	}
	if best < 0 {
		if rs.live[failedOn].isDead() {
			return false
		}
		best = failedOn // sole survivor retries its own tile
	}
	rs.queues[best] = append(rs.queues[best], t)
	return true
}
