// Run-time execution: per-member tile queues, work stealing, fault
// handling. Each live member gets one worker goroutine that drains its
// own queue head-first and steals from the largest other queue
// tail-first when idle; a failed tile is requeued onto the least-loaded
// surviving member, and a member that keeps failing is declared dead
// and its queue picked clean by the others.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
)

// runState is the shared state of one Run call: the per-member tile
// queues and the completion accounting, all under one mutex + cond.
type runState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	live    []*member
	queues  [][]*tile
	pending int   // tiles not yet completed (queued or in flight)
	fatal   error // set once; stops every worker
	lastErr error // most recent tile failure (context for the fatal)
}

// Run executes C ← alpha·op(A)·op(B) + beta·C across the pool's live
// members. The result is bit-identical to a single-device run: C is
// partitioned only over rows and columns, never over K, so every
// element keeps its accumulation order. Run returns after the last tile
// completes, or with an error when a tile exhausts its attempts or the
// whole pool dies mid-call.
func Run[T matrix.Scalar](p *Pool, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	m, n, k, err := gemmimpl.Dims(ta, tb, a, b, c)
	if err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	if k <= 0 {
		return fmt.Errorf("sched: non-positive k %d", k)
	}
	live := p.alive()
	if len(live) == 0 {
		return ErrNoDevices
	}
	prec := precisionOf[T]()
	tm, tn := p.tileDims(m, n, len(live))
	tiles := tilesFor(m, n, tm, tn)

	rs := &runState{
		live:    live,
		queues:  assign(tiles, live, prec, k),
		pending: len(tiles),
	}
	rs.cond = sync.NewCond(&rs.mu)

	runStart := time.Now()
	var wg sync.WaitGroup
	for i, mb := range live {
		wg.Add(1)
		go func(me int, mb *member) {
			defer wg.Done()
			worker(p, rs, me, mb, ta, tb, alpha, a, b, beta, c, k)
		}(i, mb)
	}
	wg.Wait()
	p.o.runs.Inc()
	p.o.runSec.Observe(time.Since(runStart).Seconds())

	if rs.fatal != nil {
		return rs.fatal
	}
	if rs.pending > 0 {
		// Every worker exited (all members dead) with tiles abandoned.
		err := fmt.Errorf("%w: %d tiles pending", ErrNoDevices, rs.pending)
		if rs.lastErr != nil {
			err = fmt.Errorf("%w (last failure: %v)", err, rs.lastErr)
		}
		return err
	}
	return nil
}

// worker drains tiles for one member until the run completes, a fatal
// error is raised, or the member dies.
func worker[T matrix.Scalar](p *Pool, rs *runState, me int, mb *member, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T], k int) {
	prec := precisionOf[T]()
	for {
		t, stolen, ok := rs.next(me, mb)
		if !ok {
			return
		}
		sp := mb.tr.Start("sched.tile")
		sp.SetFlops(int64(blas.FlopCount(t.th, t.tw, k))).
			SetAttr("device", mb.dev.ID).
			SetAttr("tile", fmt.Sprintf("%d,%d %dx%d", t.i0, t.j0, t.th, t.tw))
		if stolen {
			sp.SetAttr("stolen", "true")
		}
		start := time.Now()
		err := execTile(mb, t, ta, tb, alpha, a, b, beta, c, k)
		busy := time.Since(start).Seconds()
		if err != nil {
			sp.SetAttr("error", err.Error()).End()
			p.tileFailed(rs, me, mb, t, err)
			if mb.isDead() {
				return
			}
			continue
		}
		sp.End()
		p.tileDone(rs, mb, prec, t, stolen, busy, k, beta == 0)
	}
}

// next returns the member's next tile: its own queue's head, else the
// largest other queue's tail (a steal), else it waits for in-flight
// work to finish or fail. ok=false means the worker should exit (run
// complete, fatal error, or member dead).
func (rs *runState) next(me int, mb *member) (t *tile, stolen, ok bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for {
		if rs.fatal != nil || rs.pending == 0 || mb.isDead() {
			return nil, false, false
		}
		if q := rs.queues[me]; len(q) > 0 {
			t, rs.queues[me] = q[0], q[1:]
			return t, false, true
		}
		victim, most := -1, 0
		for i, q := range rs.queues {
			if i != me && len(q) > most {
				victim, most = i, len(q)
			}
		}
		if victim >= 0 {
			q := rs.queues[victim]
			t, rs.queues[victim] = q[len(q)-1], q[:len(q)-1]
			return t, true, true
		}
		// All queues empty but tiles are in flight elsewhere: a failure
		// may still requeue one onto us. Completion, requeue and fatal
		// all broadcast.
		rs.cond.Wait()
	}
}

// execTile runs one C tile on a member: operand panels are views into
// the caller's matrices (the full K extent — never split — of the
// tile's rows of op(A) and columns of op(B)). When beta == 0 the C view
// writes straight through (the engine never reads C then, and write-
// back touches only the tile's own elements). When beta != 0 the tile
// is staged through a compact private copy: the engine's C upload
// copies the operand's whole backing slice, which for a shared view
// would read neighboring tiles while their owners write them.
func execTile[T matrix.Scalar](mb *member, t *tile, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T], k int) error {
	var av, bv *matrix.Matrix[T]
	if ta == blas.NoTrans {
		av = a.View(t.i0, 0, t.th, k)
	} else {
		av = a.View(0, t.i0, k, t.th)
	}
	if tb == blas.NoTrans {
		bv = b.View(0, t.j0, k, t.tw)
	} else {
		bv = b.View(t.j0, 0, t.tw, k)
	}
	cv := c.View(t.i0, t.j0, t.th, t.tw)
	if beta == 0 {
		return gemmimpl.EngineRun(engineFor[T](mb), ta, tb, alpha, av, bv, beta, cv)
	}
	cw := matrix.New[T](t.th, t.tw, c.Order)
	for i := 0; i < t.th; i++ {
		for j := 0; j < t.tw; j++ {
			cw.Set(i, j, cv.At(i, j))
		}
	}
	if err := gemmimpl.EngineRun(engineFor[T](mb), ta, tb, alpha, av, bv, beta, cw); err != nil {
		return err
	}
	for i := 0; i < t.th; i++ {
		for j := 0; j < t.tw; j++ {
			cv.Set(i, j, cw.At(i, j))
		}
	}
	return nil
}

// tileDone records a completed tile and signals waiters when the run
// finishes.
func (p *Pool) tileDone(rs *runState, mb *member, prec matrix.Precision, t *tile, stolen bool, busy float64, k int, skipC bool) {
	// Modeled device time of the tile (pure model, no execution).
	var model float64
	if bd, err := mb.impl(prec).Time(t.th, t.tw, k); err == nil {
		model = bd.TotalSeconds
	}
	cmul := 2 // C read + written
	if skipC {
		cmul = 1
	}
	mb.mu.Lock()
	mb.consecFails = 0
	mb.stats.Tiles++
	if stolen {
		mb.stats.Stolen++
	}
	mb.stats.BusySeconds += busy
	mb.stats.ModelSeconds += model
	mb.stats.BytesMoved += int64(t.th*k+k*t.tw+t.th*t.tw*cmul) * int64(prec.Size())
	mb.mu.Unlock()
	mb.o.tiles.Inc()
	if stolen {
		mb.o.steals.Inc()
	}
	mb.o.tileSec.Observe(busy)

	rs.mu.Lock()
	rs.pending--
	if rs.pending == 0 {
		rs.cond.Broadcast()
	}
	rs.mu.Unlock()
}

// tileFailed handles one failed attempt: the member's failure counters
// advance (declaring it dead at the threshold, or immediately on
// ErrDeviceDead), and the tile is requeued onto the least-loaded other
// surviving member — or the call turns fatal when the tile is out of
// attempts or no survivor remains.
func (p *Pool) tileFailed(rs *runState, me int, mb *member, t *tile, err error) {
	mb.mu.Lock()
	mb.stats.Retries++
	mb.consecFails++
	if errors.Is(err, ErrDeviceDead) || mb.consecFails >= p.failThreshold {
		mb.markDeadLocked()
	}
	mb.mu.Unlock()
	mb.o.failures.Inc()

	t.attempts++
	rs.mu.Lock()
	rs.lastErr = err
	switch {
	case rs.fatal != nil:
		// Another worker already failed the run; drop the tile.
	case t.attempts >= p.maxAttempts:
		rs.fatal = fmt.Errorf("sched: tile (%d,%d) %dx%d failed %d times across the pool: %w",
			t.i0, t.j0, t.th, t.tw, t.attempts, err)
	case rs.requeue(t, me):
		p.o.requeues.Inc()
	default:
		rs.fatal = fmt.Errorf("%w: %d tiles pending (last failure: %v)", ErrNoDevices, rs.pending, err)
	}
	rs.cond.Broadcast()
	rs.mu.Unlock()
}

// requeue places a failed tile on the least-loaded surviving member,
// preferring a member other than the one it just failed on. Called with
// rs.mu held; reports false when no live member can take it.
func (rs *runState) requeue(t *tile, failedOn int) bool {
	best, bestLen := -1, 0
	for i, mb := range rs.live {
		if i == failedOn || mb.isDead() {
			continue
		}
		if best < 0 || len(rs.queues[i]) < bestLen {
			best, bestLen = i, len(rs.queues[i])
		}
	}
	if best < 0 {
		if rs.live[failedOn].isDead() {
			return false
		}
		best = failedOn // sole survivor retries its own tile
	}
	rs.queues[best] = append(rs.queues[best], t)
	return true
}
