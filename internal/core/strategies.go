package core

import (
	"fmt"
	"math"
	"math/rand"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// The paper's engine measures a heuristically sampled slice of the full
// cross product (Search). This file adds two classic alternatives from
// the autotuning literature — uniform random sampling and simulated
// annealing over the parameter lattice — so the repository can compare
// search strategies at equal evaluation budgets (an extension the paper
// leaves open).

// Sampler draws random valid parameter sets from a space.
type Sampler struct {
	space *Space
	dev   *device.Spec
	prec  matrix.Precision
	rng   *rand.Rand
}

// NewSampler creates a sampler with a deterministic seed.
func NewSampler(s *Space, d *device.Spec, prec matrix.Precision, seed int64) *Sampler {
	return &Sampler{space: s, dev: d, prec: prec, rng: rand.New(rand.NewSource(seed))}
}

func pickOne[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// Draw returns a random valid parameter set, or ok=false if none was
// found within the attempt budget (space too constrained).
func (sm *Sampler) Draw() (codegen.Params, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		s := sm.space
		sh := pickOne(sm.rng, s.Shared)
		st := pickOne(sm.rng, s.Strides)
		lp := pickOne(sm.rng, s.Layouts)
		mdimC := pickOne(sm.rng, s.MdimC)
		ndimC := pickOne(sm.rng, s.NdimC)
		p := codegen.Params{
			Precision:   sm.prec,
			Algorithm:   pickOne(sm.rng, s.Algorithms),
			Mwg:         pickOne(sm.rng, s.Mwg),
			Nwg:         pickOne(sm.rng, s.Nwg),
			Kwg:         pickOne(sm.rng, s.Kwg),
			MdimC:       mdimC,
			NdimC:       ndimC,
			MdimA:       mdimC,
			NdimB:       ndimC,
			Kwi:         pickOne(sm.rng, s.Kwi),
			VectorWidth: pickOne(sm.rng, s.VectorWidths),
			StrideM:     st.M, StrideN: st.N,
			SharedA: sh.A, SharedB: sh.B,
			LayoutA: lp.A, LayoutB: lp.B,
		}
		if len(s.ReshapeDivisors) > 0 {
			if sh.A {
				p.MdimA = pickOne(sm.rng, s.ReshapeDivisors)
			}
			if sh.B {
				p.NdimB = pickOne(sm.rng, s.ReshapeDivisors)
			}
		}
		wg := p.MdimC * p.NdimC
		if wg < s.MinWorkGroup || wg > s.MaxWorkGroup {
			continue
		}
		if tile := p.Mwi() * p.Nwi(); tile > s.MaxWorkItemTile {
			continue
		}
		if p.ValidFor(sm.dev) {
			return p, true
		}
	}
	return codegen.Params{}, false
}

// Mutate returns a neighbor of p: one randomly chosen dimension is
// re-drawn from the space. Invalid neighbors are retried; if none is
// found, p itself is returned.
func (sm *Sampler) Mutate(p codegen.Params) codegen.Params {
	s := sm.space
	for attempt := 0; attempt < 200; attempt++ {
		q := p
		switch sm.rng.Intn(9) {
		case 0:
			q.Mwg = pickOne(sm.rng, s.Mwg)
		case 1:
			q.Nwg = pickOne(sm.rng, s.Nwg)
		case 2:
			q.Kwg = pickOne(sm.rng, s.Kwg)
		case 3:
			q.MdimC = pickOne(sm.rng, s.MdimC)
			if !q.SharedA || len(s.ReshapeDivisors) == 0 {
				q.MdimA = q.MdimC
			}
		case 4:
			q.NdimC = pickOne(sm.rng, s.NdimC)
			if !q.SharedB || len(s.ReshapeDivisors) == 0 {
				q.NdimB = q.NdimC
			}
		case 5:
			q.Kwi = pickOne(sm.rng, s.Kwi)
		case 6:
			q.VectorWidth = pickOne(sm.rng, s.VectorWidths)
		case 7:
			sh := pickOne(sm.rng, s.Shared)
			q.SharedA, q.SharedB = sh.A, sh.B
			if !sh.A {
				q.MdimA = q.MdimC
			}
			if !sh.B {
				q.NdimB = q.NdimC
			}
		default:
			q.Algorithm = pickOne(sm.rng, s.Algorithms)
			st := pickOne(sm.rng, s.Strides)
			q.StrideM, q.StrideN = st.M, st.N
			lp := pickOne(sm.rng, s.Layouts)
			q.LayoutA, q.LayoutB = lp.A, lp.B
		}
		wg := q.MdimC * q.NdimC
		if wg < s.MinWorkGroup || wg > s.MaxWorkGroup {
			continue
		}
		if tile := q.Mwi() * q.Nwi(); tile > s.MaxWorkItemTile {
			continue
		}
		if q.ValidFor(sm.dev) {
			return q
		}
	}
	return p
}

// StrategyResult is the outcome of a budgeted search strategy.
type StrategyResult struct {
	Best  Result
	Evals int
	// Trace records the best-so-far after each evaluation (for
	// convergence plots).
	Trace []float64
}

// RandomSearch evaluates `budget` uniformly drawn candidates at the
// probe size and returns the best (with its stage-2 curve filled in).
func (t *Tuner) RandomSearch(budget int, seed int64) (*StrategyResult, error) {
	o := t.opts
	sm := NewSampler(o.Space, o.Device, o.Precision, seed)
	res := &StrategyResult{}
	for i := 0; i < budget; i++ {
		p, ok := sm.Draw()
		if !ok {
			return nil, fmt.Errorf("core: random search found no valid candidates")
		}
		n := ProbeSize(o.Device, &p)
		gf, err := o.Evaluator(o.Device, &p, n)
		if err != nil {
			gf = 0
		}
		res.Evals++
		if gf > res.Best.Probe {
			res.Best = Result{Params: p, Probe: gf}
		}
		res.Trace = append(res.Trace, res.Best.Probe)
	}
	t.fillCurve(&res.Best)
	return res, nil
}

// Anneal runs simulated annealing over the parameter lattice for
// `budget` evaluations with a geometric temperature schedule, starting
// from a random valid configuration.
func (t *Tuner) Anneal(budget int, seed int64) (*StrategyResult, error) {
	o := t.opts
	sm := NewSampler(o.Space, o.Device, o.Precision, seed)
	cur, ok := sm.Draw()
	if !ok {
		return nil, fmt.Errorf("core: annealing found no valid starting point")
	}
	eval := func(p *codegen.Params) float64 {
		gf, err := o.Evaluator(o.Device, p, ProbeSize(o.Device, p))
		if err != nil {
			return 0
		}
		return gf
	}
	curGF := eval(&cur)
	res := &StrategyResult{Best: Result{Params: cur, Probe: curGF}, Evals: 1,
		Trace: []float64{curGF}}

	peak := o.Device.PeakGFlops(o.Precision)
	// Temperature in GFlop/s: start accepting ~10%-of-peak regressions,
	// end near hill climbing.
	t0, t1 := 0.10*peak, 0.002*peak
	for i := 1; i < budget; i++ {
		frac := float64(i) / float64(budget)
		temp := t0 * math.Pow(t1/t0, frac)
		cand := sm.Mutate(cur)
		gf := eval(&cand)
		res.Evals++
		if gf >= curGF || sm.rng.Float64() < math.Exp((gf-curGF)/temp) {
			cur, curGF = cand, gf
		}
		if gf > res.Best.Probe {
			res.Best = Result{Params: cand, Probe: gf}
		}
		res.Trace = append(res.Trace, res.Best.Probe)
	}
	t.fillCurve(&res.Best)
	return res, nil
}

// fillCurve computes the stage-2 curve for a strategy's winner.
func (t *Tuner) fillCurve(r *Result) {
	o := t.opts
	for _, n := range Sizes(r.Params.LCM(), o.MaxSize) {
		gf, err := o.Evaluator(o.Device, &r.Params, n)
		if err != nil {
			continue
		}
		r.Curve = append(r.Curve, SizedPerf{N: n, GFlops: gf})
		if gf > r.Best {
			r.Best = gf
			r.BestN = n
		}
	}
}
