package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// The paper's engine measures a heuristically sampled slice of the full
// cross product (Search). This file adds two classic alternatives from
// the autotuning literature — uniform random sampling and simulated
// annealing over the parameter lattice — so the repository can compare
// search strategies at equal evaluation budgets (an extension the paper
// leaves open).

// Sampler draws random valid parameter sets from a space.
type Sampler struct {
	space *Space
	dev   *device.Spec
	prec  matrix.Precision
	rng   *rand.Rand
}

// NewSampler creates a sampler with a deterministic seed.
func NewSampler(s *Space, d *device.Spec, prec matrix.Precision, seed int64) *Sampler {
	return &Sampler{space: s, dev: d, prec: prec, rng: rand.New(rand.NewSource(seed))}
}

func pickOne[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// Draw returns a random valid parameter set, or ok=false if none was
// found within the attempt budget (space too constrained).
func (sm *Sampler) Draw() (codegen.Params, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		s := sm.space
		sh := pickOne(sm.rng, s.Shared)
		st := pickOne(sm.rng, s.Strides)
		lp := pickOne(sm.rng, s.Layouts)
		mdimC := pickOne(sm.rng, s.MdimC)
		ndimC := pickOne(sm.rng, s.NdimC)
		p := codegen.Params{
			Precision:   sm.prec,
			Algorithm:   pickOne(sm.rng, s.Algorithms),
			Mwg:         pickOne(sm.rng, s.Mwg),
			Nwg:         pickOne(sm.rng, s.Nwg),
			Kwg:         pickOne(sm.rng, s.Kwg),
			MdimC:       mdimC,
			NdimC:       ndimC,
			MdimA:       mdimC,
			NdimB:       ndimC,
			Kwi:         pickOne(sm.rng, s.Kwi),
			VectorWidth: pickOne(sm.rng, s.VectorWidths),
			StrideM:     st.M, StrideN: st.N,
			SharedA: sh.A, SharedB: sh.B,
			LayoutA: lp.A, LayoutB: lp.B,
		}
		if len(s.ReshapeDivisors) > 0 {
			if sh.A {
				p.MdimA = pickOne(sm.rng, s.ReshapeDivisors)
			}
			if sh.B {
				p.NdimB = pickOne(sm.rng, s.ReshapeDivisors)
			}
		}
		wg := p.MdimC * p.NdimC
		if wg < s.MinWorkGroup || wg > s.MaxWorkGroup {
			continue
		}
		if tile := p.Mwi() * p.Nwi(); tile > s.MaxWorkItemTile {
			continue
		}
		if p.ValidFor(sm.dev) {
			return p, true
		}
	}
	return codegen.Params{}, false
}

// Mutate returns a neighbor of p: one randomly chosen dimension is
// re-drawn from the space. Invalid neighbors are retried; if none is
// found, p itself is returned.
func (sm *Sampler) Mutate(p codegen.Params) codegen.Params {
	s := sm.space
	for attempt := 0; attempt < 200; attempt++ {
		q := p
		switch sm.rng.Intn(9) {
		case 0:
			q.Mwg = pickOne(sm.rng, s.Mwg)
		case 1:
			q.Nwg = pickOne(sm.rng, s.Nwg)
		case 2:
			q.Kwg = pickOne(sm.rng, s.Kwg)
		case 3:
			q.MdimC = pickOne(sm.rng, s.MdimC)
			if !q.SharedA || len(s.ReshapeDivisors) == 0 {
				q.MdimA = q.MdimC
			}
		case 4:
			q.NdimC = pickOne(sm.rng, s.NdimC)
			if !q.SharedB || len(s.ReshapeDivisors) == 0 {
				q.NdimB = q.NdimC
			}
		case 5:
			q.Kwi = pickOne(sm.rng, s.Kwi)
		case 6:
			q.VectorWidth = pickOne(sm.rng, s.VectorWidths)
		case 7:
			sh := pickOne(sm.rng, s.Shared)
			q.SharedA, q.SharedB = sh.A, sh.B
			if !sh.A {
				q.MdimA = q.MdimC
			}
			if !sh.B {
				q.NdimB = q.NdimC
			}
		default:
			q.Algorithm = pickOne(sm.rng, s.Algorithms)
			st := pickOne(sm.rng, s.Strides)
			q.StrideM, q.StrideN = st.M, st.N
			lp := pickOne(sm.rng, s.Layouts)
			q.LayoutA, q.LayoutB = lp.A, lp.B
		}
		wg := q.MdimC * q.NdimC
		if wg < s.MinWorkGroup || wg > s.MaxWorkGroup {
			continue
		}
		if tile := q.Mwi() * q.Nwi(); tile > s.MaxWorkItemTile {
			continue
		}
		if q.ValidFor(sm.dev) {
			return q
		}
	}
	return p
}

// StrategyResult is the outcome of a budgeted search strategy.
type StrategyResult struct {
	// Best is the winning kernel: the highest-probe candidate that
	// survived the correctness gate, with its stage-2 curve filled in.
	Best Result
	// Finalists are the gate-surviving candidates ranked by probe
	// performance (Best is Finalists[0]).
	Finalists []Result
	Evals     int
	// Trace records the best-so-far after each evaluation (for
	// convergence plots).
	Trace []float64
	// Stats tallies the run with the same accounting as Search:
	// errored evaluations are rejected per cause, never scored as
	// 0 GFlop/s measurements.
	Stats Stats
}

// RandomSearch evaluates `budget` uniformly drawn candidates at the
// probe size and returns the best gate-surviving one (with its stage-2
// curve filled in). Errored evaluations are rejected per cause; if
// every draw fails, the error wraps ErrNoViableKernel.
func (t *Tuner) RandomSearch(budget int, seed int64) (*StrategyResult, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("%w: random-search budget %d", ErrInvalidBudget, budget)
	}
	o := t.opts
	sm := NewSampler(o.Space, o.Device, o.Precision, seed)
	res := &StrategyResult{}
	var tested []Result
	bestSoFar := 0.0
	for i := 0; i < budget; i++ {
		p, ok := sm.Draw()
		if !ok {
			return nil, fmt.Errorf("core: random search found no valid candidates")
		}
		n := ProbeSize(o.Device, &p)
		gf, err := o.Evaluator(o.Device, &p, n)
		res.Evals++
		res.Stats.Measured++
		if err != nil {
			res.Stats.addReject(CauseOf(err), 1)
		} else {
			res.Stats.Tested++
			tested = append(tested, Result{Params: p, Probe: gf})
			if gf > bestSoFar {
				bestSoFar = gf
			}
		}
		res.Trace = append(res.Trace, bestSoFar)
	}
	if err := t.finishStrategy(res, tested); err != nil {
		return nil, err
	}
	return res, nil
}

// Anneal runs simulated annealing over the parameter lattice for
// `budget` evaluations with a geometric temperature schedule, starting
// from a random valid configuration. Candidates whose evaluation errors
// are rejected outright (tallied per cause in Stats) — they never
// become the current state, so a failing kernel cannot masquerade as a
// 0 GFlop/s measurement and absorb the walk.
func (t *Tuner) Anneal(budget int, seed int64) (*StrategyResult, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("%w: annealing budget %d", ErrInvalidBudget, budget)
	}
	o := t.opts
	sm := NewSampler(o.Space, o.Device, o.Precision, seed)
	cur, ok := sm.Draw()
	if !ok {
		return nil, fmt.Errorf("core: annealing found no valid starting point")
	}
	res := &StrategyResult{}
	var tested []Result
	bestSoFar := 0.0
	evalOne := func(p codegen.Params) (float64, bool) {
		gf, err := o.Evaluator(o.Device, &p, ProbeSize(o.Device, &p))
		res.Evals++
		res.Stats.Measured++
		if err != nil {
			res.Stats.addReject(CauseOf(err), 1)
			return 0, false
		}
		res.Stats.Tested++
		tested = append(tested, Result{Params: p, Probe: gf})
		if gf > bestSoFar {
			bestSoFar = gf
		}
		return gf, true
	}
	curGF, curOK := evalOne(cur)
	res.Trace = append(res.Trace, bestSoFar)

	peak := o.Device.PeakGFlops(o.Precision)
	// Temperature in GFlop/s: start accepting ~10%-of-peak regressions,
	// end near hill climbing.
	t0, t1 := 0.10*peak, 0.002*peak
	for i := 1; i < budget; i++ {
		frac := float64(i) / float64(budget)
		temp := t0 * math.Pow(t1/t0, frac)
		cand := sm.Mutate(cur)
		gf, evalOK := evalOne(cand)
		if evalOK && (!curOK || gf >= curGF || sm.rng.Float64() < math.Exp((gf-curGF)/temp)) {
			cur, curGF, curOK = cand, gf, true
		}
		res.Trace = append(res.Trace, bestSoFar)
	}
	if err := t.finishStrategy(res, tested); err != nil {
		return nil, err
	}
	return res, nil
}

// finishStrategy turns a strategy's raw measurements into a gated
// selection: rank by probe performance, collapse repeated parameter
// sets, run the correctness gate over the top candidates (when
// Options.Verify is on — exactly the gate Search applies), and fill the
// stage-2 curve of the surviving winner.
func (t *Tuner) finishStrategy(res *StrategyResult, tested []Result) error {
	if len(tested) == 0 {
		return fmt.Errorf("%w: all %d strategy evaluations failed (%s)",
			ErrNoViableKernel, res.Evals, rejectSummary(res.Stats.RejectedBy))
	}
	sort.SliceStable(tested, func(i, j int) bool { return tested[i].Probe > tested[j].Probe })
	seen := make(map[codegen.Params]struct{}, len(tested))
	ranked := make([]Result, 0, len(tested))
	for _, r := range tested {
		if _, dup := seen[r.Params]; dup {
			continue
		}
		seen[r.Params] = struct{}{}
		ranked = append(ranked, r)
	}
	finalists, verified := t.gateFinalists(t.opts.Context, ranked, t.opts.Finalists, &res.Stats)
	res.Stats.Verified = verified
	if len(finalists) == 0 {
		return fmt.Errorf("%w: every strategy candidate failed the correctness gate",
			ErrNoViableKernel)
	}
	res.Finalists = finalists
	res.Best = finalists[0]
	t.fillCurve(&res.Best)
	return nil
}

// fillCurve computes the stage-2 curve for a strategy's winner.
func (t *Tuner) fillCurve(r *Result) {
	o := t.opts
	for _, n := range Sizes(r.Params.LCM(), o.MaxSize) {
		gf, err := o.Evaluator(o.Device, &r.Params, n)
		if err != nil {
			continue
		}
		r.Curve = append(r.Curve, SizedPerf{N: n, GFlops: gf})
		if gf > r.Best {
			r.Best = gf
			r.BestN = n
		}
	}
}
