package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

var probeParams = codegen.Params{Mwg: 32, Nwg: 32, Kwg: 32}

func TestCauseOf(t *testing.T) {
	cases := []struct {
		err  error
		want RejectCause
	}{
		{fmt.Errorf("x: %w", ErrCompile), RejectCompile},
		{fmt.Errorf("x: %w", ErrTimeout), RejectTimeout},
		{context.DeadlineExceeded, RejectTimeout},
		{fmt.Errorf("x: %w", ErrTransient), RejectTransient},
		{fmt.Errorf("x: %w", ErrWrongResult), RejectWrongResult},
		{fmt.Errorf("x: %w", ErrPanic), RejectPanic},
		{errors.New("mystery"), RejectOther},
	}
	for _, c := range cases {
		if got := CauseOf(c.err); got != c.want {
			t.Errorf("CauseOf(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

func TestRejectCauseStringRoundTrip(t *testing.T) {
	for c := RejectGeneration; c < numRejectCauses; c++ {
		if got := parseRejectCause(c.String()); got != c {
			t.Errorf("parse(%q) = %s", c.String(), got)
		}
	}
	if parseRejectCause("garbage") != RejectOther {
		t.Error("unknown cause must parse as other")
	}
}

func TestWithTimeoutReclaimsHungEvaluation(t *testing.T) {
	hung := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}
	ev := WithTimeout(hung, 5*time.Millisecond)
	_, err := ev(context.Background(), device.Tahiti(), &probeParams, 64)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if CauseOf(err) != RejectTimeout {
		t.Errorf("timeout must classify as RejectTimeout")
	}
}

func TestWithTimeoutPassesFastEvaluations(t *testing.T) {
	fast := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		return 7, nil
	}
	gf, err := WithTimeout(fast, time.Second)(context.Background(), device.Tahiti(), &probeParams, 64)
	if err != nil || gf != 7 {
		t.Fatalf("got (%v, %v), want (7, nil)", gf, err)
	}
}

func TestWithTimeoutOuterCancellationIsNotATimeout(t *testing.T) {
	hung := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := WithTimeout(hung, time.Minute)(ctx, device.Tahiti(), &probeParams, 64)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("outer cancellation must surface as Canceled, got %v", err)
	}
}

func TestWithRetryRecoversTransientFailures(t *testing.T) {
	var calls atomic.Int64
	flaky := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		if calls.Add(1) <= 2 {
			return 0, fmt.Errorf("%w: flake", ErrTransient)
		}
		return 42, nil
	}
	gf, err := WithRetry(flaky, 3, time.Microsecond)(context.Background(), device.Tahiti(), &probeParams, 64)
	if err != nil || gf != 42 {
		t.Fatalf("retry must recover: got (%v, %v)", gf, err)
	}
	if calls.Load() != 3 {
		t.Errorf("want 3 attempts, got %d", calls.Load())
	}
}

func TestWithRetryExhaustsAndClassifies(t *testing.T) {
	var calls atomic.Int64
	alwaysFlaky := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		calls.Add(1)
		return 0, fmt.Errorf("%w: persistent flake", ErrTransient)
	}
	_, err := WithRetry(alwaysFlaky, 2, time.Microsecond)(context.Background(), device.Tahiti(), &probeParams, 64)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retries must stay transient, got %v", err)
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Errorf("want 3 attempts, got %d", calls.Load())
	}
}

func TestWithRetryDoesNotRetryNonTransient(t *testing.T) {
	var calls atomic.Int64
	compileFail := func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		calls.Add(1)
		return 0, fmt.Errorf("%w: bad kernel", ErrCompile)
	}
	_, err := WithRetry(compileFail, 5, time.Microsecond)(context.Background(), device.Tahiti(), &probeParams, 64)
	if !errors.Is(err, ErrCompile) || calls.Load() != 1 {
		t.Fatalf("compile errors must not retry: err=%v calls=%d", err, calls.Load())
	}
}

// Panics inside evaluations must become per-candidate rejects, not
// crash the search (exercised with -race over the worker pool).
func TestSearchIsolatesEvaluatorPanics(t *testing.T) {
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		if p.Kwi == 8 {
			panic("boom")
		}
		return 100, nil
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Evaluator: eval, MaxCandidates: 1500})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Params.Kwi == 8 {
		t.Error("a panicking kernel must not be selected")
	}
	if sel.Stats.RejectedBy[RejectPanic] == 0 {
		t.Error("panics must be tallied under RejectPanic")
	}
	if sel.Stats.Tested+sel.Stats.RejectedBy[RejectPanic] != sel.Stats.Measured {
		t.Errorf("accounting broken: tested %d + panics %d != measured %d",
			sel.Stats.Tested, sel.Stats.RejectedBy[RejectPanic], sel.Stats.Measured)
	}
}

// When every candidate fails, Search must return the typed error
// instead of selecting a zero-GFlop/s failed kernel.
func TestSearchAllFailuresReturnsNoViableKernel(t *testing.T) {
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		return 0, fmt.Errorf("%w: everything is broken", ErrCompile)
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Evaluator: eval, MaxCandidates: 500})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tn.Search()
	if !errors.Is(err, ErrNoViableKernel) {
		t.Fatalf("want ErrNoViableKernel, got %v", err)
	}
}

// Evaluation failures move into the per-cause reject tally instead of
// being scored 0 and counted as tested (the paper's Table III
// accounting).
func TestStatsRejectBreakdown(t *testing.T) {
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		switch {
		case p.Algorithm == codegen.DB:
			return 0, fmt.Errorf("%w: DB broken", ErrCompile)
		case p.Kwi == 16:
			return 0, fmt.Errorf("%w: flaky", ErrTransient)
		}
		return 100, nil
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Evaluator: eval, MaxCandidates: 2000})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	by := sel.Stats.RejectedBy
	if by[RejectCompile] == 0 || by[RejectTransient] == 0 {
		t.Fatalf("want compile and transient rejects, got %v", by)
	}
	evalRejects := by[RejectCompile] + by[RejectTransient]
	if sel.Stats.Tested+evalRejects != sel.Stats.Measured {
		t.Errorf("tested %d + eval rejects %d != measured %d",
			sel.Stats.Tested, evalRejects, sel.Stats.Measured)
	}
	total := 0
	for _, n := range by {
		total += n
	}
	if total != sel.Stats.Rejected {
		t.Errorf("per-cause sum %d != Rejected %d", total, sel.Stats.Rejected)
	}
}

// TestWithVerifyTimeout mirrors the evaluator timeout tests for the
// Verifier side of the pipeline: fast verifiers pass through, hung
// verifiers classify as RejectTimeout, and a panic escaping into the
// timeout goroutine converts to ErrPanic instead of crashing.
func TestWithVerifyTimeout(t *testing.T) {
	dev := device.Tahiti()
	p := probeParams
	fast := WithVerifyTimeout(func(d *device.Spec, p *codegen.Params) error { return nil }, 50*time.Millisecond)
	if err := fast(dev, &p); err != nil {
		t.Errorf("fast verifier: %v", err)
	}
	failing := WithVerifyTimeout(func(d *device.Spec, p *codegen.Params) error {
		return fmt.Errorf("x: %w", ErrWrongResult)
	}, 50*time.Millisecond)
	if err := failing(dev, &p); CauseOf(err) != RejectWrongResult {
		t.Errorf("failing verifier cause = %v, want wrong-result", CauseOf(err))
	}
	hung := WithVerifyTimeout(func(d *device.Spec, p *codegen.Params) error {
		time.Sleep(5 * time.Second)
		return nil
	}, 20*time.Millisecond)
	start := time.Now()
	err := hung(dev, &p)
	if !errors.Is(err, ErrTimeout) || CauseOf(err) != RejectTimeout {
		t.Errorf("hung verifier: err=%v cause=%v, want timeout", err, CauseOf(err))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout wrap waited %v for a hung verifier", elapsed)
	}
	panicking := WithVerifyTimeout(func(d *device.Spec, p *codegen.Params) error {
		panic("synthetic verifier crash")
	}, 50*time.Millisecond)
	if err := panicking(dev, &p); !errors.Is(err, ErrPanic) {
		t.Errorf("panicking verifier: err=%v, want ErrPanic", err)
	}
	// Zero duration disables the wrap entirely.
	base := func(d *device.Spec, p *codegen.Params) error { return nil }
	if got := WithVerifyTimeout(base, 0); fmt.Sprintf("%p", got) != fmt.Sprintf("%p", base) {
		t.Error("zero timeout must return the verifier unchanged")
	}
}
