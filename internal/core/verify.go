package core

import (
	"fmt"
	"math/rand"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
)

// Verifier checks that a parameter set's generated kernel computes a
// correct product on its device; nil means the kernel passed testing.
// The default (VerifyParams) executes the kernel on the simulated
// runtime; fault-injection harnesses substitute their own.
type Verifier func(d *device.Spec, p *codegen.Params) error

// VerifyParams is the paper's "passed testing" step: run the generated
// kernel through the clsim runtime on a small problem whose dimensions
// are not multiples of the blocking factors (exercising padding), and
// compare against the internal/blas reference. A mismatch returns an
// error wrapping ErrWrongResult; a failure to build or launch wraps
// ErrCompile.
func VerifyParams(d *device.Spec, p *codegen.Params) error {
	im, err := gemmimpl.New(d, *p)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCompile, err)
	}
	if p.Precision == matrix.Double {
		return verifyImpl[float64](im, p)
	}
	return verifyImpl[float32](im, p)
}

func verifyImpl[T matrix.Scalar](im *gemmimpl.Impl, p *codegen.Params) error {
	// Odd sizes force the pad/unpad path; the fixed seed keeps the gate
	// deterministic.
	m, n, k := 7, 9, 5
	rng := rand.New(rand.NewSource(42))
	a := matrix.New[T](m, k, matrix.ColMajor)
	b := matrix.New[T](k, n, matrix.ColMajor)
	c := matrix.New[T](m, n, matrix.ColMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, T(1.5), a, b, T(-0.25), want)

	if err := gemmimpl.Run(im, blas.NoTrans, blas.NoTrans, T(1.5), a, b, T(-0.25), c); err != nil {
		return fmt.Errorf("%w: verification run: %v", ErrCompile, err)
	}
	// The padded K can exceed k by a whole Kwg block, so widen the
	// usual k-scaled tolerance accordingly.
	tol := matrix.Tolerance(p.Precision, k+p.Kwg)
	if diff := matrix.MaxRelDiff(c, want); diff > tol {
		return fmt.Errorf("%w: max rel diff %g (tol %g) vs reference on %dx%dx%d", ErrWrongResult, diff, tol, m, n, k)
	}
	return nil
}
