package core

import (
	"fmt"
	"math/rand"

	"oclgemm/internal/blas"
	"oclgemm/internal/clc"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
)

// Verifier checks that a parameter set's generated kernel computes a
// correct product on its device; nil means the kernel passed testing.
// The default (VerifyParams) executes the kernel on the simulated
// runtime; fault-injection harnesses substitute their own.
type Verifier func(d *device.Spec, p *codegen.Params) error

// VerifyParams is the paper's "passed testing" step, at full strength:
// first the native Go kernel runs on a small problem whose dimensions
// are not multiples of the blocking factors (exercising padding), then
// the generated OpenCL C source itself runs through the clc bytecode VM
// at a realistic multi-work-group size (VerifySource). Both are
// compared against the internal/blas reference. A mismatch returns an
// error wrapping ErrWrongResult; a failure to build or launch wraps
// ErrCompile.
func VerifyParams(d *device.Spec, p *codegen.Params) error {
	im, err := gemmimpl.New(d, *p)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCompile, err)
	}
	if p.Precision == matrix.Double {
		err = verifyImpl[float64](im, p)
	} else {
		err = verifyImpl[float32](im, p)
	}
	if err != nil {
		return err
	}
	return VerifySource(d, p)
}

// VerifySource checks the generated OpenCL C text end to end: generate,
// compile with clc, and execute on the simulated runtime's bytecode VM
// at multi-work-group sizes so the schedule's staging, barriers and
// unrolled loops all execute as they would on a device. Two grid shapes
// run: the historical 2×2 work-groups with two full k-blocks, plus a
// non-square 3×2 grid with three k-blocks that catches bugs the square
// shape aliases away (group-id mixups, k-loop trip-count errors). The
// second shape is paid for by the bytecode optimizer: both runs
// together cost less wall-clock than the single shape did on the
// unoptimized VM. A loop-fuel bound turns pathological non-terminating
// kernels into ErrCompile faults instead of hangs.
func VerifySource(d *device.Spec, p *codegen.Params) error {
	for _, g := range [][3]int{{2, 2, 2}, {3, 2, 3}} {
		var err error
		if p.Precision == matrix.Double {
			err = verifySource[float64](d, p, g)
		} else {
			err = verifySource[float32](d, p, g)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func verifySource[T matrix.Scalar](d *device.Spec, p *codegen.Params, grid [3]int) error {
	m, n, k := grid[0]*p.Mwg, grid[1]*p.Nwg, grid[2]*p.Kwg
	src, err := p.GenerateSource()
	if err != nil {
		return fmt.Errorf("%w: generate: %v", ErrCompile, err)
	}
	prog, err := clc.Compile(src)
	if err != nil {
		return fmt.Errorf("%w: clc: %v", ErrCompile, err)
	}
	kern, err := prog.Kernel(codegen.KernelName)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCompile, err)
	}
	// A distinct seed from verifyImpl so the two stages never mask the
	// same data-dependent bug.
	rng := rand.New(rand.NewSource(43))
	a := matrix.New[T](m, k, matrix.RowMajor)
	b := matrix.New[T](k, n, matrix.RowMajor)
	c := matrix.New[T](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, T(1.5), a, b, T(-0.25), want)

	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
	bound, err := kern.Bind(m, n, k, T(1.5), T(-0.25), at.Data, bp.Data, c.Data)
	if err != nil {
		return fmt.Errorf("%w: bind: %v", ErrCompile, err)
	}
	bound.SetFuel(1 << 26)
	q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: d}))
	nd := clsim.NDRange{
		Global: [2]int{m / p.Mwg * p.MdimC, n / p.Nwg * p.NdimC},
		Local:  [2]int{p.MdimC, p.NdimC},
	}
	if err := q.Run(bound, nd); err != nil {
		return fmt.Errorf("%w: source run: %v", ErrCompile, err)
	}
	tol := matrix.Tolerance(p.Precision, k)
	if diff := matrix.MaxRelDiff(c, want); diff > tol {
		return fmt.Errorf("%w: generated source max rel diff %g (tol %g) vs reference on %dx%dx%d",
			ErrWrongResult, diff, tol, m, n, k)
	}
	return nil
}

func verifyImpl[T matrix.Scalar](im *gemmimpl.Impl, p *codegen.Params) error {
	// Odd sizes force the pad/unpad path; the fixed seed keeps the gate
	// deterministic.
	m, n, k := 7, 9, 5
	rng := rand.New(rand.NewSource(42))
	a := matrix.New[T](m, k, matrix.ColMajor)
	b := matrix.New[T](k, n, matrix.ColMajor)
	c := matrix.New[T](m, n, matrix.ColMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, T(1.5), a, b, T(-0.25), want)

	if err := gemmimpl.Run(im, blas.NoTrans, blas.NoTrans, T(1.5), a, b, T(-0.25), c); err != nil {
		return fmt.Errorf("%w: verification run: %v", ErrCompile, err)
	}
	// The padded K can exceed k by a whole Kwg block, so widen the
	// usual k-scaled tolerance accordingly.
	tol := matrix.Tolerance(p.Precision, k+p.Kwg)
	if diff := matrix.MaxRelDiff(c, want); diff > tol {
		return fmt.Errorf("%w: max rel diff %g (tol %g) vs reference on %dx%dx%d", ErrWrongResult, diff, tol, m, n, k)
	}
	return nil
}
