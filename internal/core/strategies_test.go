package core

import (
	"testing"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func strategyTuner(t *testing.T, devID string) *Tuner {
	t.Helper()
	d, err := device.ByID(devID)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := New(Options{Device: d, Precision: matrix.Single, MaxSize: 6144})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestSamplerDrawValid(t *testing.T) {
	d := device.Tahiti()
	s := DefaultSpace(d)
	sm := NewSampler(&s, d, matrix.Double, 1)
	for i := 0; i < 200; i++ {
		p, ok := sm.Draw()
		if !ok {
			t.Fatal("sampler could not draw")
		}
		if !p.ValidFor(d) {
			t.Fatalf("invalid draw: %s", p.Name())
		}
		if p.MdimC*p.NdimC > s.MaxWorkGroup || p.Mwi()*p.Nwi() > s.MaxWorkItemTile {
			t.Fatalf("draw violates space bounds: %s", p.Name())
		}
	}
}

func TestSamplerMutateValid(t *testing.T) {
	d := device.Fermi()
	s := DefaultSpace(d)
	sm := NewSampler(&s, d, matrix.Single, 2)
	p, ok := sm.Draw()
	if !ok {
		t.Fatal("no starting point")
	}
	changed := 0
	for i := 0; i < 300; i++ {
		q := sm.Mutate(p)
		if !q.ValidFor(d) {
			t.Fatalf("invalid mutation: %s", q.Name())
		}
		if q != p {
			changed++
		}
		p = q
	}
	if changed < 100 {
		t.Errorf("mutations barely move: %d/300", changed)
	}
}

func TestRandomSearchFindsGoodKernel(t *testing.T) {
	tn := strategyTuner(t, "tahiti")
	res, err := tn.RandomSearch(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 400 || len(res.Trace) != 400 {
		t.Fatalf("budget accounting wrong: %d evals, %d trace", res.Evals, len(res.Trace))
	}
	// Trace must be non-decreasing (best-so-far).
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] < res.Trace[i-1] {
			t.Fatal("best-so-far trace decreased")
		}
	}
	// 400 random draws should already find a decent SGEMM kernel.
	if res.Best.Best < 2000 {
		t.Errorf("random search best %f too low", res.Best.Best)
	}
	if len(res.Best.Curve) == 0 {
		t.Error("winner must carry a curve")
	}
}

func TestAnnealConvergesAtLeastAsWellAsRandom(t *testing.T) {
	tn := strategyTuner(t, "fermi")
	budget := 400
	rnd, err := tn.RandomSearch(budget, 11)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := tn.Anneal(budget, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Evals != budget {
		t.Fatalf("anneal evals = %d", ann.Evals)
	}
	// Annealing exploits structure; with equal budgets it should not
	// lose badly to uniform sampling (allow 10% stochastic slack).
	if ann.Best.Probe < 0.9*rnd.Best.Probe {
		t.Errorf("anneal (%.0f) lost badly to random (%.0f)", ann.Best.Probe, rnd.Best.Probe)
	}
}

// All three strategies agree on the neighborhood of the optimum: their
// winners are within a reasonable band of the sampled-exhaustive best.
func TestStrategiesReachExhaustiveBand(t *testing.T) {
	if testing.Short() {
		t.Skip("three searches")
	}
	tn := strategyTuner(t, "cayman")
	ex, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	ann, err := tn.Anneal(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Best.Best < 0.85*ex.Best.Best {
		t.Errorf("anneal best %.0f below 85%% of exhaustive %.0f", ann.Best.Best, ex.Best.Best)
	}
	if ann.Best.Best > 1.02*ex.Best.Best {
		t.Errorf("anneal best %.0f implausibly above exhaustive %.0f", ann.Best.Best, ex.Best.Best)
	}
}

// Strategies respect restricted spaces (e.g. Bulldozer never draws a
// PL double kernel).
func TestStrategiesRespectDeviceQuirks(t *testing.T) {
	d := device.Bulldozer()
	tn, err := New(Options{Device: d, Precision: matrix.Double, MaxSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.RandomSearch(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Params.Algorithm == codegen.PL {
		t.Error("random search returned a PL DGEMM kernel on Bulldozer")
	}
}
