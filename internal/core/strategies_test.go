package core

import (
	"errors"
	"fmt"
	"testing"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func strategyTuner(t *testing.T, devID string) *Tuner {
	t.Helper()
	d, err := device.ByID(devID)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := New(Options{Device: d, Precision: matrix.Single, MaxSize: 6144})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestSamplerDrawValid(t *testing.T) {
	d := device.Tahiti()
	s := DefaultSpace(d)
	sm := NewSampler(&s, d, matrix.Double, 1)
	for i := 0; i < 200; i++ {
		p, ok := sm.Draw()
		if !ok {
			t.Fatal("sampler could not draw")
		}
		if !p.ValidFor(d) {
			t.Fatalf("invalid draw: %s", p.Name())
		}
		if p.MdimC*p.NdimC > s.MaxWorkGroup || p.Mwi()*p.Nwi() > s.MaxWorkItemTile {
			t.Fatalf("draw violates space bounds: %s", p.Name())
		}
	}
}

func TestSamplerMutateValid(t *testing.T) {
	d := device.Fermi()
	s := DefaultSpace(d)
	sm := NewSampler(&s, d, matrix.Single, 2)
	p, ok := sm.Draw()
	if !ok {
		t.Fatal("no starting point")
	}
	changed := 0
	for i := 0; i < 300; i++ {
		q := sm.Mutate(p)
		if !q.ValidFor(d) {
			t.Fatalf("invalid mutation: %s", q.Name())
		}
		if q != p {
			changed++
		}
		p = q
	}
	if changed < 100 {
		t.Errorf("mutations barely move: %d/300", changed)
	}
}

func TestRandomSearchFindsGoodKernel(t *testing.T) {
	tn := strategyTuner(t, "tahiti")
	res, err := tn.RandomSearch(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 400 || len(res.Trace) != 400 {
		t.Fatalf("budget accounting wrong: %d evals, %d trace", res.Evals, len(res.Trace))
	}
	// Trace must be non-decreasing (best-so-far).
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] < res.Trace[i-1] {
			t.Fatal("best-so-far trace decreased")
		}
	}
	// 400 random draws should already find a decent SGEMM kernel.
	if res.Best.Best < 2000 {
		t.Errorf("random search best %f too low", res.Best.Best)
	}
	if len(res.Best.Curve) == 0 {
		t.Error("winner must carry a curve")
	}
}

func TestAnnealConvergesAtLeastAsWellAsRandom(t *testing.T) {
	tn := strategyTuner(t, "fermi")
	budget := 400
	rnd, err := tn.RandomSearch(budget, 11)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := tn.Anneal(budget, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Evals != budget {
		t.Fatalf("anneal evals = %d", ann.Evals)
	}
	// Annealing exploits structure; with equal budgets it should not
	// lose badly to uniform sampling (allow 10% stochastic slack).
	if ann.Best.Probe < 0.9*rnd.Best.Probe {
		t.Errorf("anneal (%.0f) lost badly to random (%.0f)", ann.Best.Probe, rnd.Best.Probe)
	}
}

// All three strategies agree on the neighborhood of the optimum: their
// winners are within a reasonable band of the sampled-exhaustive best.
func TestStrategiesReachExhaustiveBand(t *testing.T) {
	if testing.Short() {
		t.Skip("three searches")
	}
	tn := strategyTuner(t, "cayman")
	ex, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	ann, err := tn.Anneal(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Best.Best < 0.85*ex.Best.Best {
		t.Errorf("anneal best %.0f below 85%% of exhaustive %.0f", ann.Best.Best, ex.Best.Best)
	}
	if ann.Best.Best > 1.02*ex.Best.Best {
		t.Errorf("anneal best %.0f implausibly above exhaustive %.0f", ann.Best.Best, ex.Best.Best)
	}
}

// A strategy whose every evaluation errors must return the typed
// no-viable-kernel error — never a winner with zero-value Params.
func TestStrategiesAllFailingEvaluatorReturnsTypedError(t *testing.T) {
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		return 0, fmt.Errorf("%w: broken driver", ErrCompile)
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single, Evaluator: eval})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*StrategyResult, error){
		"random": func() (*StrategyResult, error) { return tn.RandomSearch(50, 1) },
		"anneal": func() (*StrategyResult, error) { return tn.Anneal(50, 1) },
	} {
		res, err := run()
		if !errors.Is(err, ErrNoViableKernel) {
			t.Errorf("%s: want ErrNoViableKernel, got %v", name, err)
		}
		if res != nil {
			t.Errorf("%s: want nil result alongside error, got Best=%s", name, res.Best.Params.Name())
		}
	}
}

// A non-positive budget is a caller bug: both strategies must reject it
// up front with the typed error rather than burning evaluations or
// dividing by zero in the cooling schedule.
func TestStrategiesInvalidBudget(t *testing.T) {
	evals := 0
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		evals++
		return 1, nil
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single, Evaluator: eval})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, -3} {
		if _, err := tn.RandomSearch(budget, 1); !errors.Is(err, ErrInvalidBudget) {
			t.Errorf("RandomSearch(%d): want ErrInvalidBudget, got %v", budget, err)
		}
		if _, err := tn.Anneal(budget, 1); !errors.Is(err, ErrInvalidBudget) {
			t.Errorf("Anneal(%d): want ErrInvalidBudget, got %v", budget, err)
		}
	}
	if evals != 0 {
		t.Errorf("invalid budgets burned %d evaluations", evals)
	}
}

// Errored evaluations land in the per-cause reject tally — the paper's
// failed-in-compilation/testing accounting — instead of being scored as
// 0 GFlop/s, and an annealing walk never adopts an errored candidate.
func TestStrategyStatsRejectTally(t *testing.T) {
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		if p.Algorithm == codegen.DB {
			return 0, fmt.Errorf("%w: DB broken", ErrCompile)
		}
		return float64(p.Mwg), nil
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single, Evaluator: eval})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*StrategyResult, error){
		"random": func() (*StrategyResult, error) { return tn.RandomSearch(200, 9) },
		"anneal": func() (*StrategyResult, error) { return tn.Anneal(200, 9) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Best.Params.Algorithm == codegen.DB {
			t.Errorf("%s: winner uses the always-failing algorithm", name)
		}
		if res.Stats.RejectedBy[RejectCompile] == 0 {
			t.Errorf("%s: compile failures not tallied: %v", name, res.Stats.RejectedBy)
		}
		if res.Stats.Tested+res.Stats.RejectedBy[RejectCompile] != res.Stats.Measured {
			t.Errorf("%s: tested %d + rejects %d != measured %d", name,
				res.Stats.Tested, res.Stats.RejectedBy[RejectCompile], res.Stats.Measured)
		}
		if res.Stats.Measured != res.Evals {
			t.Errorf("%s: measured %d != evals %d", name, res.Stats.Measured, res.Evals)
		}
	}
}

// With Verify on, strategy winners pass through the same correctness
// gate as Search: disqualified kernels are skipped (and tallied) and
// the best surviving candidate wins.
func TestStrategyWinnersAreGated(t *testing.T) {
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Verify:    true,
		Finalists: 3,
		Verifier: func(d *device.Spec, p *codegen.Params) error {
			if p.VectorWidth != 1 {
				return fmt.Errorf("%w: synthetic disqualification", ErrWrongResult)
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.RandomSearch(200, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Params.VectorWidth != 1 {
		t.Errorf("winner %s did not pass the gate", res.Best.Params.Name())
	}
	if len(res.Finalists) == 0 || res.Finalists[0].Params != res.Best.Params {
		t.Error("Best must be the top-ranked finalist")
	}
	for _, f := range res.Finalists {
		if f.Params.VectorWidth != 1 {
			t.Errorf("finalist %s did not pass the gate", f.Params.Name())
		}
	}
	if res.Stats.Verified != len(res.Finalists) {
		t.Errorf("Verified = %d, want %d", res.Stats.Verified, len(res.Finalists))
	}

	// A gate that rejects everything surfaces the typed error.
	tn2, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Verify:   true,
		Verifier: func(d *device.Spec, p *codegen.Params) error { return ErrWrongResult }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.RandomSearch(50, 13); !errors.Is(err, ErrNoViableKernel) {
		t.Errorf("all-rejecting gate: want ErrNoViableKernel, got %v", err)
	}
}

// Strategies respect restricted spaces (e.g. Bulldozer never draws a
// PL double kernel).
func TestStrategiesRespectDeviceQuirks(t *testing.T) {
	d := device.Bulldozer()
	tn, err := New(Options{Device: d, Precision: matrix.Double, MaxSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.RandomSearch(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Params.Algorithm == codegen.PL {
		t.Error("random search returned a PL DGEMM kernel on Bulldozer")
	}
}
