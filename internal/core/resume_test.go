package core

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// countingEvaluator wraps the model evaluator and counts fresh calls,
// optionally cancelling the search after a fixed number of them.
func countingEvaluator(calls *atomic.Int64, cancelAfter int64, cancel context.CancelFunc) CtxEvaluator {
	return func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		c := calls.Add(1)
		if cancel != nil && c == cancelAfter {
			cancel()
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return ModelEvaluator(d, p, n)
	}
}

// Killing a journaled search mid-stage-1 and re-running it with the
// same journal must resume (skipping completed evaluations) and select
// the same kernel an uninterrupted run selects.
func TestSearchResumesFromJournal(t *testing.T) {
	opts := Options{
		Device:        device.Tahiti(),
		Precision:     matrix.Single,
		MaxCandidates: 600,
		Finalists:     10,
	}

	// Baseline: uninterrupted, no journal.
	base, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Search()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel the context from inside the evaluator
	// partway through stage 1, as a kill signal would.
	path := filepath.Join(t.TempDir(), "stage1.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var killed atomic.Int64
	iopts := opts
	iopts.JournalPath = path
	iopts.Context = ctx
	iopts.CtxEvaluator = countingEvaluator(&killed, 150, cancel)
	interrupted, err := New(iopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interrupted.Search(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled search must return ErrInterrupted, got %v", err)
	}

	// Resume: same journal, fresh tuner. Completed evaluations must be
	// replayed, not re-measured.
	var fresh atomic.Int64
	ropts := opts
	ropts.JournalPath = path
	ropts.CtxEvaluator = countingEvaluator(&fresh, 0, nil)
	resumer, err := New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := resumer.Search()
	if err != nil {
		t.Fatal(err)
	}

	if sel.Stats.Resumed == 0 {
		t.Error("resumed run must replay journaled evaluations (Stats.Resumed == 0)")
	}
	freshStage1 := sel.Stats.Measured - sel.Stats.Resumed
	if freshStage1 >= sel.Stats.Measured {
		t.Errorf("resume must skip completed candidates: %d fresh of %d measured",
			freshStage1, sel.Stats.Measured)
	}
	// Fresh evaluator calls = remaining stage-1 candidates + stage-2
	// curve sweeps; the journal must have absorbed the rest.
	if int(fresh.Load()) >= sel.Stats.Measured+sel.Stats.Stage2Evals {
		t.Errorf("resumed run made %d evaluator calls, journal saved nothing", fresh.Load())
	}

	if sel.Best.Params != want.Best.Params {
		t.Errorf("resumed selection differs from uninterrupted run:\n%s\n%s",
			sel.Best.Params.Name(), want.Best.Params.Name())
	}
	if sel.Best.Best != want.Best.Best {
		t.Errorf("resumed best perf %v != uninterrupted %v", sel.Best.Best, want.Best.Best)
	}
	if sel.Stats.Tested != want.Stats.Tested {
		t.Errorf("resumed Tested %d != uninterrupted %d", sel.Stats.Tested, want.Stats.Tested)
	}

	// A second resume over the now-complete journal replays everything.
	var again atomic.Int64
	aopts := opts
	aopts.JournalPath = path
	aopts.CtxEvaluator = countingEvaluator(&again, 0, nil)
	rerun, err := New(aopts)
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := rerun.Search()
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Stats.Resumed != sel2.Stats.Measured {
		t.Errorf("complete journal must replay all of stage 1: resumed %d of %d",
			sel2.Stats.Resumed, sel2.Stats.Measured)
	}
	if int(again.Load()) != sel2.Stats.Stage2Evals {
		t.Errorf("fully-journaled rerun must only evaluate stage 2: %d calls, %d stage-2 evals",
			again.Load(), sel2.Stats.Stage2Evals)
	}
	if sel2.Best.Params != want.Best.Params {
		t.Error("second resume changed the selection")
	}
}
