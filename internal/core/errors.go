package core

import (
	"context"
	"errors"
)

// The typed error taxonomy of the search engine. The paper's statistics
// distinguish kernels that "failed in generation, compilation, or
// testing" from tested ones (§III-F); these sentinels let the tuner
// classify every evaluation failure the same way. Evaluators (and the
// fault-injection harness) wrap them with %w so errors.Is works through
// any amount of context.
var (
	// ErrCompile marks a kernel that failed code generation or
	// compilation on the device.
	ErrCompile = errors.New("core: kernel failed compilation")
	// ErrTimeout marks an evaluation that exceeded Options.EvalTimeout
	// (a hung kernel).
	ErrTimeout = errors.New("core: evaluation timed out")
	// ErrWrongResult marks a kernel whose output disagrees with the
	// reference GEMM (the paper's "failed testing").
	ErrWrongResult = errors.New("core: kernel produced wrong results")
	// ErrTransient marks a flaky, retryable measurement failure; the
	// retry middleware re-attempts only errors wrapping this.
	ErrTransient = errors.New("core: transient evaluation failure")
	// ErrPanic marks an evaluation that panicked; parallelFor converts
	// the panic into this per-candidate error instead of crashing the
	// whole search.
	ErrPanic = errors.New("core: evaluation panicked")
	// ErrNoViableKernel reports a search in which every candidate
	// failed evaluation or the correctness gate.
	ErrNoViableKernel = errors.New("core: no viable kernel variant survived the search")
	// ErrInvalidBudget reports a search strategy invoked with a
	// non-positive evaluation budget.
	ErrInvalidBudget = errors.New("core: search budget must be positive")
	// ErrInterrupted reports a search cancelled via Options.Context;
	// completed stage-1 work is preserved in the journal (if enabled)
	// so a re-run resumes instead of restarting.
	ErrInterrupted = errors.New("core: search interrupted")
)

// RejectCause classifies why a candidate was excluded from the tested
// set, mirroring the paper's failed-in-generation/compilation/testing
// accounting.
type RejectCause int

// Reject causes, from space validation through the correctness gate.
const (
	// RejectGeneration: failed parameter validation or device checks
	// during enumeration (never evaluated).
	RejectGeneration RejectCause = iota
	// RejectCompile: the evaluator reported a compilation failure.
	RejectCompile
	// RejectTimeout: the evaluation hung past the per-eval timeout.
	RejectTimeout
	// RejectTransient: a transient failure persisted through all
	// retries.
	RejectTransient
	// RejectWrongResult: the correctness gate disqualified the kernel.
	RejectWrongResult
	// RejectPanic: the evaluation panicked.
	RejectPanic
	// RejectOther: any unclassified evaluation failure.
	RejectOther

	numRejectCauses
)

// String names the cause for reports and journals.
func (c RejectCause) String() string {
	switch c {
	case RejectGeneration:
		return "generation"
	case RejectCompile:
		return "compile"
	case RejectTimeout:
		return "timeout"
	case RejectTransient:
		return "transient"
	case RejectWrongResult:
		return "wrong-result"
	case RejectPanic:
		return "panic"
	default:
		return "other"
	}
}

// parseRejectCause inverts String (journal round trip).
func parseRejectCause(s string) RejectCause {
	for c := RejectGeneration; c < numRejectCauses; c++ {
		if c.String() == s {
			return c
		}
	}
	return RejectOther
}

// CauseOf classifies an evaluation error into a RejectCause.
func CauseOf(err error) RejectCause {
	switch {
	case errors.Is(err, ErrCompile):
		return RejectCompile
	case errors.Is(err, ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
		return RejectTimeout
	case errors.Is(err, ErrTransient):
		return RejectTransient
	case errors.Is(err, ErrWrongResult):
		return RejectWrongResult
	case errors.Is(err, ErrPanic):
		return RejectPanic
	default:
		return RejectOther
	}
}

// causeError reconstructs a sentinel-wrapped error from a journaled
// cause name, so resumed failures classify identically.
func causeError(c RejectCause) error {
	switch c {
	case RejectCompile:
		return ErrCompile
	case RejectTimeout:
		return ErrTimeout
	case RejectTransient:
		return ErrTransient
	case RejectWrongResult:
		return ErrWrongResult
	case RejectPanic:
		return ErrPanic
	default:
		return errors.New("core: evaluation failed (journaled)")
	}
}
