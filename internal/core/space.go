// Package core implements the paper's auto-tuning system (§III-F): a
// heuristic search engine that enumerates tens of thousands of kernel
// variants from the code generator's parameter space, discards those
// that fail generation or device checks (exactly as the paper discards
// kernels failing code generation, compilation or testing), and selects
// the fastest through the paper's three-stage procedure:
//
//  1. measure every candidate at one probe size
//     (⌊4096/LCM⌋·LCM on GPUs, ⌊1536/LCM⌋·LCM on CPUs);
//  2. re-measure the fastest 50 candidates over all sizes
//     N ≤ 8192 in multiples of LCM;
//  3. pick the kernel with the best performance among those.
package core

import (
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// SharedMode is one local-memory configuration.
type SharedMode struct{ A, B bool }

// StrideMode is one stride configuration (§III-B).
type StrideMode struct{ M, N bool }

// LayoutPair couples the layouts of the two copied operands.
type LayoutPair struct{ A, B matrix.Layout }

// Space describes the candidate values the search engine crosses. The
// defaults are the "heuristically chosen" variants of the paper.
type Space struct {
	Mwg, Nwg, Kwg []int
	MdimC, NdimC  []int
	// ReshapeDivisors are candidate MdimA/NdimB values; only those
	// dividing the work-group size survive validation.
	ReshapeDivisors []int
	Kwi             []int
	VectorWidths    []int
	Algorithms      []codegen.Algorithm
	Shared          []SharedMode
	Strides         []StrideMode
	Layouts         []LayoutPair

	// MaxWorkItemTile bounds Mwi·Nwi (register pressure heuristic).
	MaxWorkItemTile int
	// MinWorkGroup/MaxWorkGroup bound MdimC·NdimC.
	MinWorkGroup, MaxWorkGroup int
}

// DefaultSpace returns the full search space of the improved generator,
// adapted to the device class (CPUs prefer flatter work-groups and
// wider vectors; the work-group ceiling comes from the device).
func DefaultSpace(d *device.Spec) Space {
	s := Space{
		Mwg:             []int{16, 32, 48, 64, 96, 128},
		Nwg:             []int{16, 32, 48, 64, 96, 128},
		Kwg:             []int{8, 16, 32, 48, 64, 96, 192},
		MdimC:           []int{4, 8, 16, 24, 32},
		NdimC:           []int{4, 8, 16, 32},
		ReshapeDivisors: []int{4, 8, 16, 24, 32, 64},
		Kwi:             []int{1, 2, 4, 8, 16},
		VectorWidths:    []int{1, 2, 4, 8},
		Algorithms:      []codegen.Algorithm{codegen.BA, codegen.PL, codegen.DB},
		Shared: []SharedMode{
			{false, false}, {true, false}, {false, true}, {true, true},
		},
		Strides: []StrideMode{
			{false, false}, {true, false}, {false, true}, {true, true},
		},
		Layouts: []LayoutPair{
			{matrix.LayoutCBL, matrix.LayoutCBL},
			{matrix.LayoutCBL, matrix.LayoutRBL},
			{matrix.LayoutRBL, matrix.LayoutRBL},
			{matrix.LayoutRowMajor, matrix.LayoutRowMajor},
		},
		MaxWorkItemTile: 144,
		MinWorkGroup:    16,
		MaxWorkGroup:    d.MaxWGSize,
	}
	return s
}

// PreviousStudySpace returns the restricted space of the authors'
// previous generator ([13], MCSoC-12), used as the "Our previous study"
// series in Fig. 9: six blocking parameters limited to powers of two,
// only the BA algorithm, local memory for at most one matrix, and no
// non-unit stride mode.
func PreviousStudySpace(d *device.Spec) Space {
	s := DefaultSpace(d)
	s.Mwg = []int{16, 32, 64, 128}
	s.Nwg = []int{16, 32, 64, 128}
	s.Kwg = []int{8, 16, 32, 64}
	s.MdimC = []int{4, 8, 16, 32}
	s.NdimC = []int{4, 8, 16, 32}
	s.ReshapeDivisors = nil // previous generator: loads are not reshaped
	s.Kwi = []int{1, 2, 4, 8, 16}
	s.Algorithms = []codegen.Algorithm{codegen.BA}
	s.Shared = []SharedMode{{false, false}, {true, false}, {false, true}}
	s.Strides = []StrideMode{{false, false}}
	return s
}

// LayoutRestrictedSpace returns the default space restricted to one
// layout pair; used for the paper's row-major-only ablation ("fastest
// DGEMM kernel without using block-major data layouts").
func LayoutRestrictedSpace(d *device.Spec, lp LayoutPair) Space {
	s := DefaultSpace(d)
	s.Layouts = []LayoutPair{lp}
	return s
}

// NoLocalMemorySpace returns the default space with local memory
// disabled (the paper's local-memory ablation, §IV-A).
func NoLocalMemorySpace(d *device.Spec) Space {
	s := DefaultSpace(d)
	s.Shared = []SharedMode{{false, false}}
	s.Algorithms = []codegen.Algorithm{codegen.BA, codegen.PL}
	return s
}

// AlgorithmSpace restricts the default space to a single algorithm
// (Fig. 8: relative performance of BA/PL/DB per device).
func AlgorithmSpace(d *device.Spec, a codegen.Algorithm) Space {
	s := DefaultSpace(d)
	s.Algorithms = []codegen.Algorithm{a}
	if a == codegen.DB {
		// DB requires local memory by construction.
		s.Shared = []SharedMode{{true, false}, {false, true}, {true, true}}
	}
	return s
}

// Enumerate crosses the space and yields every *valid* parameter set
// for the device and precision, invoking fn for each. Candidates that
// fail validation or the device check are tallied but not yielded,
// mirroring the paper's accounting of kernels that fail generation,
// compilation or testing. Enumeration stops early if fn returns false.
func (s Space) Enumerate(d *device.Spec, prec matrix.Precision, fn func(codegen.Params) bool) (valid, rejected int) {
	reshapeA := s.ReshapeDivisors
	reshapeB := s.ReshapeDivisors
	for _, mdimC := range s.MdimC {
		for _, ndimC := range s.NdimC {
			wg := mdimC * ndimC
			if wg < s.MinWorkGroup || wg > s.MaxWorkGroup {
				continue
			}
			for _, mwg := range s.Mwg {
				if mwg%mdimC != 0 {
					continue
				}
				for _, nwg := range s.Nwg {
					if nwg%ndimC != 0 {
						continue
					}
					if tile := (mwg / mdimC) * (nwg / ndimC); tile > s.MaxWorkItemTile {
						continue
					}
					for _, kwg := range s.Kwg {
						for _, kwi := range s.Kwi {
							if kwg%kwi != 0 {
								continue
							}
							for _, vw := range s.VectorWidths {
								if (nwg/ndimC)%vw != 0 {
									continue
								}
								for _, alg := range s.Algorithms {
									for _, sh := range s.Shared {
										ra := pick(reshapeA, sh.A, mdimC)
										rb := pick(reshapeB, sh.B, ndimC)
										for _, mdimA := range ra {
											for _, ndimB := range rb {
												// Validity does not depend on
												// stride or layout; check once.
												p := codegen.Params{
													Precision: prec, Algorithm: alg,
													Mwg: mwg, Nwg: nwg, Kwg: kwg,
													MdimC: mdimC, NdimC: ndimC,
													MdimA: mdimA, NdimB: ndimB,
													Kwi: kwi, VectorWidth: vw,
													SharedA: sh.A, SharedB: sh.B,
													LayoutA: s.Layouts[0].A, LayoutB: s.Layouts[0].B,
												}
												combos := len(s.Strides) * len(s.Layouts)
												if !p.ValidFor(d) {
													rejected += combos
													continue
												}
												valid += combos
												for _, st := range s.Strides {
													for _, lp := range s.Layouts {
														p.StrideM, p.StrideN = st.M, st.N
														p.LayoutA, p.LayoutB = lp.A, lp.B
														if !fn(p) {
															return valid, rejected
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return valid, rejected
}

// pick returns the reshape-divisor candidates for one operand: the
// space's divisors when the operand is shared (falling back to the
// work-group dimension), or just the work-group dimension when not
// shared (the value is ignored by the generator then).
func pick(divisors []int, shared bool, dflt int) []int {
	if !shared || len(divisors) == 0 {
		return []int{dflt}
	}
	return divisors
}
