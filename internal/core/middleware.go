package core

import (
	"context"
	"fmt"
	"time"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/obs"
)

// CtxEvaluator is a context-aware Evaluator: implementations must
// return promptly once ctx is cancelled (the timeout middleware relies
// on it to reclaim hung evaluations).
type CtxEvaluator func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error)

// AdaptEvaluator lifts a plain Evaluator into a CtxEvaluator. The
// wrapped function cannot be interrupted mid-call, so cancellation is
// only checked on entry; model-based evaluators return in microseconds
// and never hang.
func AdaptEvaluator(ev Evaluator) CtxEvaluator {
	return func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return ev(d, p, n)
	}
}

// WithTimeout bounds each evaluation to d. A hung evaluation yields
// ErrTimeout; the underlying call keeps running in its goroutine until
// it honors the cancelled context, which well-behaved CtxEvaluators do.
func WithTimeout(ev CtxEvaluator, d time.Duration) CtxEvaluator {
	if d <= 0 {
		return ev
	}
	return func(ctx context.Context, dev *device.Spec, p *codegen.Params, n int) (float64, error) {
		tctx, cancel := context.WithTimeout(ctx, d)
		defer cancel()
		type out struct {
			gf  float64
			err error
		}
		done := make(chan out, 1)
		go func() {
			// The evaluation leaves the caller's goroutine here, so a
			// panic must be converted to an error in place — the
			// search's parallelFor recovery cannot see it.
			defer func() {
				if r := recover(); r != nil {
					done <- out{0, fmt.Errorf("%w: %v", ErrPanic, r)}
				}
			}()
			gf, err := ev(tctx, dev, p, n)
			done <- out{gf, err}
		}()
		select {
		case o := <-done:
			if o.err != nil && tctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
				return 0, fmt.Errorf("%w after %v", ErrTimeout, d)
			}
			return o.gf, o.err
		case <-tctx.Done():
			if ctx.Err() != nil {
				return 0, ctx.Err() // outer cancellation, not a hang
			}
			return 0, fmt.Errorf("%w after %v", ErrTimeout, d)
		}
	}
}

// WithVerifyTimeout bounds each correctness-gate verification to d,
// mirroring WithTimeout for the Verifier side of the pipeline. A
// verification past the deadline yields ErrTimeout (tallied as
// RejectTimeout for that finalist only); the underlying run keeps
// executing in its goroutine until the simulated kernel's fuel budget
// stops it. A panic inside the verifier is converted to ErrPanic here
// because it escapes the caller's goroutine, out of reach of the
// search's parallelFor recovery.
func WithVerifyTimeout(v Verifier, d time.Duration) Verifier {
	if d <= 0 {
		return v
	}
	return func(dev *device.Spec, p *codegen.Params) error {
		done := make(chan error, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- fmt.Errorf("%w: %v", ErrPanic, r)
				}
			}()
			done <- v(dev, p)
		}()
		select {
		case err := <-done:
			return err
		case <-time.After(d):
			return fmt.Errorf("%w: verification exceeded %v", ErrTimeout, d)
		}
	}
}

// WithObserver times every evaluation into the registry — histogram
// tune.eval.seconds, counters tune.evals and tune.eval.failures — the
// per-candidate measurement record CLTune argues a tuner needs to be
// trusted. A nil registry passes ev through unchanged.
func WithObserver(ev CtxEvaluator, r *obs.Registry) CtxEvaluator {
	if r == nil {
		return ev
	}
	evals := r.Counter("tune.evals")
	failures := r.Counter("tune.eval.failures")
	seconds := r.Histogram("tune.eval.seconds")
	return func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		start := time.Now()
		gf, err := ev(ctx, d, p, n)
		seconds.Observe(time.Since(start).Seconds())
		evals.Inc()
		if err != nil {
			failures.Inc()
		}
		return gf, err
	}
}

// WithRetry re-attempts evaluations that fail with an error wrapping
// ErrTransient, up to retries extra attempts with exponential backoff
// starting at backoff. Non-transient errors and successes pass through
// unchanged; exhausted retries return the last transient error.
func WithRetry(ev CtxEvaluator, retries int, backoff time.Duration) CtxEvaluator {
	if retries <= 0 {
		return ev
	}
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	return func(ctx context.Context, d *device.Spec, p *codegen.Params, n int) (float64, error) {
		var gf float64
		var err error
		wait := backoff
		for attempt := 0; ; attempt++ {
			gf, err = ev(ctx, d, p, n)
			if err == nil || CauseOf(err) != RejectTransient || attempt >= retries {
				break
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(wait):
			}
			wait *= 2
		}
		if err != nil && CauseOf(err) == RejectTransient {
			err = fmt.Errorf("after %d attempts: %w", retries+1, err)
		}
		return gf, err
	}
}
