package core

import (
	"fmt"
	"testing"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// search runs a tuner search with a reduced candidate budget (tests
// trade a little argmax precision for speed).
func search(t *testing.T, d *device.Spec, prec matrix.Precision, space *Space, budget int) *Selection {
	t.Helper()
	tn, err := New(Options{Device: d, Precision: prec, Space: space, MaxCandidates: budget})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestProbeSize(t *testing.T) {
	p := codegen.Params{Mwg: 96, Nwg: 32, Kwg: 48}
	if got := ProbeSize(device.Tahiti(), &p); got != 4032 {
		t.Errorf("GPU probe size = %d, want 4032 (⌊4096/96⌋·96... LCM=96? no)", got)
	}
	// LCM(96,32,48) = 96; ⌊4096/96⌋·96 = 42·96 = 4032.
	if got := ProbeSize(device.SandyBridge(), &p); got != 1536 {
		t.Errorf("CPU probe size = %d, want 1536 (16·96)", got)
	}
	// LCM larger than the base still yields one block.
	big := codegen.Params{Mwg: 128, Nwg: 96, Kwg: 96}
	if got := ProbeSize(device.SandyBridge(), &big); got < big.LCM() {
		t.Errorf("probe size must be at least one LCM, got %d", got)
	}
}

func TestSizes(t *testing.T) {
	s := Sizes(96, 8192)
	if len(s) == 0 || len(s) > 64 || s[len(s)-1] > 8192 {
		t.Fatalf("Sizes(96, 8192) wrong: %v", s)
	}
	for i, n := range s {
		if n%96 != 0 {
			t.Errorf("size %d not multiple of LCM", n)
		}
		if i > 0 && n <= s[i-1] {
			t.Errorf("sizes must increase")
		}
	}
	// Tiny LCM must be thinned to a bounded number of points.
	if got := len(Sizes(8, 8192)); got > 64 {
		t.Errorf("Sizes(8, 8192) returned %d points, want <= 64", got)
	}
	if Sizes(0, 100) != nil || Sizes(128, 64) != nil {
		t.Error("degenerate inputs must return nil")
	}
}

func TestNewDefaults(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New without device must fail")
	}
	tn, err := New(Options{Device: device.Tahiti()})
	if err != nil {
		t.Fatal(err)
	}
	if tn.opts.Finalists != 50 || tn.opts.MaxSize != 8192 || tn.opts.MaxCandidates != 25000 {
		t.Errorf("defaults wrong: %+v", tn.opts)
	}
}

func TestSearchTahitiSGEMM(t *testing.T) {
	sel := search(t, device.Tahiti(), matrix.Single, nil, 8000)
	b := sel.Best
	// The paper's best is 3047 GFlop/s (80% of 3789 peak); the model's
	// argmax should land in the same band.
	if b.Best < 2600 || b.Best > 3600 {
		t.Errorf("Tahiti SGEMM best = %.0f, want in [2600, 3600] (paper 3047)", b.Best)
	}
	if len(b.Curve) == 0 || b.BestN == 0 {
		t.Error("winner must carry its stage-2 curve")
	}
	if sel.Stats.Enumerated < 10000 {
		t.Errorf("space too small: %d", sel.Stats.Enumerated)
	}
	if sel.Stats.Rejected == 0 {
		t.Error("some candidates must fail generation (paper counts them)")
	}
	if sel.Stats.Stage2 != 50 {
		t.Errorf("stage 2 must re-measure 50 kernels, got %d", sel.Stats.Stage2)
	}
	// Block-major layouts win on all processors (paper §IV-A).
	if b.Params.LayoutA == matrix.LayoutRowMajor || b.Params.LayoutB == matrix.LayoutRowMajor {
		t.Errorf("winner should use block-major layouts, got %s/%s", b.Params.LayoutA, b.Params.LayoutB)
	}
}

func TestSearchDeterministic(t *testing.T) {
	a := search(t, device.Fermi(), matrix.Double, nil, 4000)
	b := search(t, device.Fermi(), matrix.Double, nil, 4000)
	if a.Best.Params != b.Best.Params {
		t.Errorf("search must be deterministic:\n%s\n%s", a.Best.Params.Name(), b.Best.Params.Name())
	}
	if a.Best.Best != b.Best.Best {
		t.Errorf("best performance differs: %f vs %f", a.Best.Best, b.Best.Best)
	}
}

// Winners across all devices must stay within the physical envelope and
// the paper's efficiency band.
func TestSearchEfficiencyBands(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-device search")
	}
	// Paper Table II efficiencies, with modeling slack.
	bands := map[string][2][2]float64{ // id -> {DP{lo,hi}, SP{lo,hi}}
		"tahiti":      {{0.80, 1.01}, {0.70, 0.95}},
		"cayman":      {{0.75, 1.01}, {0.70, 0.95}},
		"kepler":      {{0.90, 1.12}, {0.40, 0.75}},
		"fermi":       {{0.45, 0.70}, {0.55, 0.80}},
		"sandybridge": {{0.30, 0.52}, {0.35, 0.55}},
		"bulldozer":   {{0.25, 0.42}, {0.30, 0.50}},
	}
	for _, d := range device.All() {
		for pi, prec := range []matrix.Precision{matrix.Double, matrix.Single} {
			sel := search(t, d, prec, nil, 6000)
			eff := sel.Best.Best / d.PeakGFlops(prec)
			band := bands[d.ID][pi]
			if eff < band[0] || eff > band[1] {
				t.Errorf("%s %s: efficiency %.2f outside band [%.2f, %.2f] (best %.0f GFlop/s)",
					d.ID, prec.GEMMName(), eff, band[0], band[1], sel.Best.Best)
			}
		}
	}
}

// Paper §IV-A ablations, reproduced as searches over restricted spaces.
func TestLocalMemoryAblationSearches(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-search ablation")
	}
	// Cayman's overall winner must avoid local memory entirely.
	cay := search(t, device.Cayman(), matrix.Single, nil, 6000)
	if cay.Best.Params.UsesLocalMemory() {
		t.Errorf("Cayman winner should avoid local memory (barrier cost), got %s", cay.Best.Params.Name())
	}

	// Kepler and Fermi winners must use local memory, and a no-LDS
	// search must land clearly below (paper: 1440 → 1150 on Kepler).
	for _, id := range []string{"kepler", "fermi"} {
		d, _ := device.ByID(id)
		full := search(t, d, matrix.Single, nil, 6000)
		if !full.Best.Params.UsesLocalMemory() {
			t.Errorf("%s winner should use local memory, got %s", id, full.Best.Params.Name())
		}
		sp := NoLocalMemorySpace(d)
		no := search(t, d, matrix.Single, &sp, 6000)
		ratio := no.Best.Best / full.Best.Best
		if ratio > 0.92 || ratio < 0.30 {
			t.Errorf("%s no-LDS/full ratio %.2f outside plausible band (paper ~0.80 on Kepler)", id, ratio)
		}
	}

	// CPUs: local memory usage must not matter much.
	snb := device.SandyBridge()
	full := search(t, snb, matrix.Single, nil, 6000)
	sp := NoLocalMemorySpace(snb)
	no := search(t, snb, matrix.Single, &sp, 6000)
	if r := no.Best.Best / full.Best.Best; r < 0.85 || r > 1.1 {
		t.Errorf("CPU local-memory effect should be small, ratio %.2f", r)
	}
}

// Bulldozer: no PL kernel may appear in the DGEMM finalists (they fail
// to execute, paper §IV-A).
func TestBulldozerFinalistsExcludePL(t *testing.T) {
	sel := search(t, device.Bulldozer(), matrix.Double, nil, 5000)
	for _, f := range sel.Finalists {
		if f.Params.Algorithm == codegen.PL {
			t.Fatalf("PL DGEMM kernel survived on Bulldozer: %s", f.Params.Name())
		}
	}
}

func TestPreviousStudySpaceRestrictions(t *testing.T) {
	d := device.Tahiti()
	s := PreviousStudySpace(d)
	checked := 0
	s.Enumerate(d, matrix.Single, func(p codegen.Params) bool {
		checked++
		if p.Algorithm != codegen.BA {
			t.Fatalf("previous-study space must be BA only, got %s", p.Algorithm)
		}
		if p.SharedA && p.SharedB {
			t.Fatal("previous-study generator could not share both matrices")
		}
		if p.StrideM || p.StrideN {
			t.Fatal("previous-study generator had no non-unit stride")
		}
		for _, v := range []int{p.Mwg, p.Nwg, p.Kwg} {
			if v&(v-1) != 0 {
				t.Fatalf("previous-study blocking must be powers of two, got %d", v)
			}
		}
		return checked < 5000
	})
	if checked == 0 {
		t.Fatal("previous-study space is empty")
	}
}

// The previous-study space must not beat the full space (Fig. 9:
// "This study" ≥ "Our previous study").
func TestPreviousStudyNotFaster(t *testing.T) {
	d := device.Tahiti()
	full := search(t, d, matrix.Single, nil, 6000)
	prev := PreviousStudySpace(d)
	old := search(t, d, matrix.Single, &prev, 6000)
	// Both searches subsample their spaces, so a small sampling wobble
	// is possible; the restricted space must never win by more than 2%.
	if old.Best.Best > full.Best.Best*1.02 {
		t.Errorf("previous-study space (%.0f) must not beat the full space (%.0f)",
			old.Best.Best, full.Best.Best)
	}
}

func TestAlgorithmSpace(t *testing.T) {
	d := device.Fermi()
	for _, a := range codegen.Algorithms {
		s := AlgorithmSpace(d, a)
		n := 0
		s.Enumerate(d, matrix.Single, func(p codegen.Params) bool {
			n++
			if p.Algorithm != a {
				t.Fatalf("AlgorithmSpace(%s) yielded %s", a, p.Algorithm)
			}
			return n < 1000
		})
		if n == 0 {
			t.Errorf("AlgorithmSpace(%s) is empty", a)
		}
	}
}

func TestCustomEvaluator(t *testing.T) {
	// An evaluator that loves Kwi == 8 must make the tuner select it.
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		if p.Kwi == 8 {
			return 1000 + float64(n)/100, nil
		}
		return 10, nil
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Evaluator: eval, MaxCandidates: 2000})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Params.Kwi != 8 {
		t.Errorf("tuner ignored the evaluator: picked Kwi=%d", sel.Best.Params.Kwi)
	}
	// Stage 2 prefers larger sizes with this evaluator.
	if sel.Best.BestN != sel.Best.Curve[len(sel.Best.Curve)-1].N {
		t.Errorf("BestN should be the largest size, got %d", sel.Best.BestN)
	}
}

func TestEvaluatorErrorsNotCounted(t *testing.T) {
	// Evaluator failing for DB kernels: they sink to the bottom.
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		if p.Algorithm == codegen.DB {
			return 0, fmt.Errorf("fails in testing")
		}
		return 100, nil
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Evaluator: eval, MaxCandidates: 3000})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Params.Algorithm == codegen.DB {
		t.Error("a kernel that fails testing must not be selected")
	}
}

func TestCurve(t *testing.T) {
	tn, _ := New(Options{Device: device.Tahiti(), Precision: matrix.Double})
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 96, Nwg: 32, Kwg: 48, MdimC: 16, NdimC: 16, MdimA: 16, NdimB: 16,
		Kwi: 2, VectorWidth: 2, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	curve := tn.Curve(p, 6144)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	for _, pt := range curve {
		if pt.N%p.LCM() != 0 || pt.GFlops <= 0 {
			t.Errorf("bad curve point %+v", pt)
		}
	}
}
