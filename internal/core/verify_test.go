package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// paperTahitiSGEMM is the paper's published Tahiti SGEMM kernel — a
// known-good configuration the gate must pass.
var paperTahitiSGEMM = codegen.Params{
	Precision: matrix.Single, Algorithm: codegen.BA,
	Mwg: 96, Nwg: 96, Kwg: 16, MdimC: 16, NdimC: 16, MdimA: 16, NdimB: 16,
	Kwi: 2, VectorWidth: 1, SharedA: true, SharedB: true,
	LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
}

func TestVerifyParamsPassesGoodKernel(t *testing.T) {
	p := paperTahitiSGEMM
	if err := VerifyParams(device.Tahiti(), &p); err != nil {
		t.Fatalf("published kernel must pass the correctness gate: %v", err)
	}
}

func TestVerifyParamsRejectsInvalidParams(t *testing.T) {
	p := paperTahitiSGEMM
	p.Mwg = 7 // not divisible by MdimC: fails generation checks
	err := VerifyParams(device.Tahiti(), &p)
	if !errors.Is(err, ErrCompile) {
		t.Fatalf("invalid params must classify as compile failure, got %v", err)
	}
}

// With the gate on and a verifier that rejects a property of the
// ranking's top kernels, the search must disqualify them, refill the
// finalist set, and never select a rejected kernel.
func TestCorrectnessGateDisqualifiesAndRefills(t *testing.T) {
	// Kwi==2 kernels score best; the verifier declares them all wrong.
	eval := func(d *device.Spec, p *codegen.Params, n int) (float64, error) {
		if p.Kwi == 2 {
			return 1000, nil
		}
		return 100, nil
	}
	verifier := func(d *device.Spec, p *codegen.Params) error {
		if p.Kwi == 2 {
			return ErrWrongResult
		}
		return nil
	}
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Evaluator: eval, Verify: true, Verifier: verifier,
		MaxCandidates: 1500, Finalists: 10})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tn.Search()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Params.Kwi == 2 {
		t.Error("a wrong-result kernel must never be selected")
	}
	for _, f := range sel.Finalists {
		if f.Params.Kwi == 2 {
			t.Errorf("wrong-result kernel survived the gate: %s", f.Params.Name())
		}
	}
	if len(sel.Finalists) != 10 {
		t.Errorf("gate must refill finalists from the ranking, got %d", len(sel.Finalists))
	}
	if sel.Stats.RejectedBy[RejectWrongResult] == 0 {
		t.Error("disqualified kernels must be tallied under RejectWrongResult")
	}
	if sel.Stats.Verified != len(sel.Finalists) {
		t.Errorf("Verified = %d, want %d", sel.Stats.Verified, len(sel.Finalists))
	}
}

// A verifier that rejects everything must surface ErrNoViableKernel,
// not select an unverified kernel.
func TestCorrectnessGateAllWrongFails(t *testing.T) {
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Evaluator:     func(d *device.Spec, p *codegen.Params, n int) (float64, error) { return 1, nil },
		Verify:        true,
		Verifier:      func(d *device.Spec, p *codegen.Params) error { return ErrWrongResult },
		MaxCandidates: 300, Finalists: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Search(); !errors.Is(err, ErrNoViableKernel) {
		t.Fatalf("want ErrNoViableKernel, got %v", err)
	}
}

// A verifier that panics on one specific finalist must disqualify only
// that finalist — tallied under RejectPanic — while the rest of the
// batch verifies in parallel and the strategy still returns a winner.
// This pins the panic-isolation contract of the gate's parallelFor.
func TestPanickingVerifierRejectsOnlyThatFinalist(t *testing.T) {
	var panics atomic.Int32
	tn, err := New(Options{Device: device.Tahiti(), Precision: matrix.Single,
		Verify:    true,
		Finalists: 4,
		Verifier: func(d *device.Spec, p *codegen.Params) error {
			if p.VectorWidth != 1 {
				panics.Add(1)
				panic("synthetic VerifySource crash")
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.RandomSearch(60, 7)
	if err != nil {
		t.Fatalf("RandomSearch must survive a panicking verifier: %v", err)
	}
	if panics.Load() == 0 {
		t.Skip("no vectorized candidate reached the gate; widen the budget")
	}
	if got := res.Stats.RejectedBy[RejectPanic]; got == 0 {
		t.Errorf("RejectedBy[RejectPanic] = %d, want > 0 (panics seen: %d)", got, panics.Load())
	}
	if len(res.Finalists) == 0 {
		t.Fatal("no finalists survived alongside the panicking one")
	}
	for _, f := range res.Finalists {
		if f.Params.VectorWidth != 1 {
			t.Errorf("finalist %s passed the gate despite its verifier panicking", f.Params.Name())
		}
	}
	if res.Stats.Verified != len(res.Finalists) {
		t.Errorf("Verified = %d, want %d", res.Stats.Verified, len(res.Finalists))
	}
}
