package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func mustDevice(t *testing.T, id string) *device.Spec {
	t.Helper()
	d, err := device.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, done, err := openJournal(path, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh journal must be empty, got %d", len(done))
	}
	j.append("a", 12.5, "")
	j.append("b", 0, "compile")
	j.close()

	_, done, err = openJournal(path, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || done["a"].GFlops != 12.5 || done["b"].Cause != "compile" {
		t.Fatalf("round trip lost entries: %+v", done)
	}

	// A different search key must see none of them.
	_, other, err := openJournal(path, "k2")
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != 0 {
		t.Fatalf("key mismatch must skip entries, got %d", len(other))
	}
}

// A truncated final line (killed process mid-write) is discarded;
// corruption earlier in the file is an error.
func TestJournalTruncationAndCorruption(t *testing.T) {
	dir := t.TempDir()

	trunc := filepath.Join(dir, "trunc.jsonl")
	content := `{"key":"k","name":"a","gflops":1}` + "\n" + `{"key":"k","name":"b","gf`
	if err := os.WriteFile(trunc, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, done, err := openJournal(trunc, "k")
	if err != nil {
		t.Fatalf("truncated tail must be tolerated: %v", err)
	}
	j.close()
	if len(done) != 1 || done["a"].GFlops != 1 {
		t.Fatalf("complete entries must survive truncation: %+v", done)
	}

	corrupt := filepath.Join(dir, "corrupt.jsonl")
	content = `{"key":"k","name":"a","gf` + "\n" + `{"key":"k","name":"b","gflops":2}` + "\n"
	if err := os.WriteFile(corrupt, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(corrupt, "k"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("mid-file corruption must fail with the line number, got %v", err)
	}
}

func TestSearchKeyDistinguishesConfigs(t *testing.T) {
	a, err := New(Options{Device: mustDevice(t, "tahiti"), Precision: matrix.Single})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Device: mustDevice(t, "fermi"), Precision: matrix.Single})
	if err != nil {
		t.Fatal(err)
	}
	if searchKey(&a.opts) == searchKey(&b.opts) {
		t.Error("different devices must produce different journal keys")
	}
	a2, _ := New(Options{Device: mustDevice(t, "tahiti"), Precision: matrix.Single})
	if searchKey(&a.opts) != searchKey(&a2.opts) {
		t.Error("identical configs must produce identical journal keys")
	}
}
