package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The stage-1 checkpoint journal: one JSON line per completed
// evaluation, keyed by a hash of the search identity so a journal file
// can be shared across devices and precisions. An interrupted Tune
// re-run with the same journal path replays completed measurements
// instead of re-evaluating them (Stats.Resumed counts the hits).
//
// The journal records outcomes, not evaluator internals: resuming with
// a different evaluator configuration silently reuses the old
// measurements, so callers should key journal files to their setup.

// journalEntry is one persisted stage-1 outcome.
type journalEntry struct {
	Key    string  `json:"key"`
	Name   string  `json:"name"`
	GFlops float64 `json:"gflops"`
	Cause  string  `json:"cause,omitempty"` // empty = success
}

// journal appends entries to an open file under a mutex (stage-1
// workers write concurrently).
type journal struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	key string
}

// searchKey fingerprints the search identity: device, precision, and
// the candidate space. Entries from other searches in the same file are
// skipped on load.
func searchKey(o *Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%+v", o.Device.ID, o.Precision, *o.Space)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// openJournal opens (creating if needed) the journal at path and
// returns it along with the already-completed entries for key. A
// truncated final line — the signature of a killed process — is
// discarded; any other malformed line fails the load so corruption is
// surfaced rather than silently resumed over.
func openJournal(path, key string) (*journal, map[string]journalEntry, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	done := make(map[string]journalEntry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Peek: is this the final line? A partial trailing write is
			// expected after a kill; anything earlier is corruption.
			if sc.Scan() {
				f.Close()
				return nil, nil, fmt.Errorf("core: journal %s: malformed line %d: %w", path, lineno, err)
			}
			break
		}
		if e.Key == key {
			done[e.Name] = e
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("core: journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil { // append after what we read
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f, w: bufio.NewWriter(f), key: key}, done, nil
}

// append records one completed evaluation and flushes it, so a kill
// loses at most the in-flight line.
func (j *journal) append(name string, gf float64, cause string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := json.Marshal(journalEntry{Key: j.key, Name: name, GFlops: gf, Cause: cause})
	if err != nil {
		return
	}
	j.w.Write(data)
	j.w.WriteByte('\n')
	j.w.Flush()
}

// close flushes and closes the file.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w.Flush()
	j.f.Close()
}
