package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/perfmodel"
)

// Evaluator measures one kernel variant at one problem size, returning
// GFlop/s. The production evaluator is the performance model; tests may
// substitute their own.
type Evaluator func(d *device.Spec, p *codegen.Params, n int) (float64, error)

// ModelEvaluator evaluates square problems through the performance
// model (the paper's wall-clock measurement step).
func ModelEvaluator(d *device.Spec, p *codegen.Params, n int) (float64, error) {
	return perfmodel.KernelGFlops(d, p, n, n, n)
}

// Options configures a tuning run.
type Options struct {
	Device    *device.Spec
	Precision matrix.Precision

	// Space is the candidate space; zero value means DefaultSpace.
	Space *Space

	// Finalists is the number of stage-2 kernels (paper: 50).
	Finalists int
	// MaxSize is the largest stage-2 problem size (paper: 8192).
	MaxSize int
	// MaxCandidates caps stage-1 evaluations by deterministic
	// decimation of the enumeration; this is the engine's heuristic
	// sampling (the paper likewise measures "tens of thousands" of
	// heuristically chosen variants, not the full cross product).
	// 0 means the default of 25000; negative means no cap.
	MaxCandidates int
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
	// Evaluator overrides the measurement function (nil = model).
	Evaluator Evaluator
}

// SizedPerf is one point of a performance curve.
type SizedPerf struct {
	N      int
	GFlops float64
}

// Result describes one tuned kernel variant.
type Result struct {
	Params codegen.Params
	// Probe is the stage-1 performance at the probe size.
	Probe float64
	// Curve is the stage-2 performance over sizes (finalists only).
	Curve []SizedPerf
	// Best is the maximum GFlop/s over the curve.
	Best float64
	// BestN is the size at which Best was observed.
	BestN int
}

// Stats tallies a search run the way the paper reports it: variants
// that failed generation/compilation/testing are not counted among the
// tested kernels.
type Stats struct {
	Enumerated  int // valid candidates measured in stage 1
	Rejected    int // failed generation or device checks
	ProbeSize   int
	Stage2      int // finalists re-measured across sizes
	Stage2Evals int
}

// Selection is the outcome of a search.
type Selection struct {
	Best      Result
	Finalists []Result
	Stats     Stats
}

// Tuner is the auto-tuning system: code generator parameter space plus
// heuristic search engine.
type Tuner struct {
	opts Options
}

// New creates a tuner. Device and a valid precision are required.
func New(opts Options) (*Tuner, error) {
	if opts.Device == nil {
		return nil, errors.New("core: Options.Device is required")
	}
	if opts.Finalists <= 0 {
		opts.Finalists = 50
	}
	if opts.MaxSize <= 0 {
		opts.MaxSize = 8192
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 25000
	}
	if opts.Evaluator == nil {
		opts.Evaluator = ModelEvaluator
	}
	if opts.Space == nil {
		s := DefaultSpace(opts.Device)
		opts.Space = &s
	}
	return &Tuner{opts: opts}, nil
}

// ProbeSize returns the paper's stage-1 problem size for the given
// kernel: ⌊4096/LCM⌋·LCM on GPUs and ⌊1536/LCM⌋·LCM on CPUs, where LCM
// is the least common multiple of the work-group blocking factors.
func ProbeSize(d *device.Spec, p *codegen.Params) int {
	base := 4096
	if d.Kind == device.CPU {
		base = 1536
	}
	l := p.LCM()
	n := base / l * l
	if n < l {
		n = l
	}
	return n
}

// Sizes returns the stage-2 sweep: multiples of lcm up to max,
// thinned to at most 64 points to bound work for tiny LCMs.
func Sizes(lcm, max int) []int {
	if lcm <= 0 || max < lcm {
		return nil
	}
	count := max / lcm
	step := 1
	if count > 64 {
		step = (count + 63) / 64
	}
	var out []int
	for i := step; i*lcm <= max; i += step {
		out = append(out, i*lcm)
	}
	return out
}

// Search runs the three-stage selection and returns the fastest kernel.
func (t *Tuner) Search() (*Selection, error) {
	o := t.opts

	// Stage 0: count the valid candidates, then sample the space with a
	// deterministic stride so the measured set stays representative.
	valid, rejected := o.Space.Enumerate(o.Device, o.Precision, func(codegen.Params) bool { return true })
	if valid == 0 {
		return nil, fmt.Errorf("core: no valid kernel variants for %s %s",
			o.Device.CodeName, o.Precision.GEMMName())
	}
	step := 1
	if o.MaxCandidates > 0 && valid > o.MaxCandidates {
		step = valid / o.MaxCandidates
		if valid%o.MaxCandidates != 0 {
			step++
		}
	}
	candidates := make([]codegen.Params, 0, valid/step+1)
	idx := 0
	o.Space.Enumerate(o.Device, o.Precision, func(p codegen.Params) bool {
		if idx%step == 0 {
			candidates = append(candidates, p)
		}
		idx++
		return true
	})

	// Stage 1: measure every candidate at its probe size.
	results := make([]Result, len(candidates))
	t.parallelFor(len(candidates), func(i int) {
		p := candidates[i]
		n := ProbeSize(o.Device, &p)
		gf, err := o.Evaluator(o.Device, &p, n)
		if err != nil {
			gf = 0 // failed in testing: not counted (sorted to the bottom)
		}
		results[i] = Result{Params: p, Probe: gf}
	})
	sort.SliceStable(results, func(i, j int) bool { return results[i].Probe > results[j].Probe })

	nFinal := o.Finalists
	if nFinal > len(results) {
		nFinal = len(results)
	}
	finalists := results[:nFinal]

	// Stage 2: re-measure finalists across sizes.
	stage2Evals := 0
	t.parallelFor(len(finalists), func(i int) {
		r := &finalists[i]
		sizes := Sizes(r.Params.LCM(), o.MaxSize)
		for _, n := range sizes {
			gf, err := o.Evaluator(o.Device, &r.Params, n)
			if err != nil {
				continue
			}
			r.Curve = append(r.Curve, SizedPerf{N: n, GFlops: gf})
			if gf > r.Best {
				r.Best = gf
				r.BestN = n
			}
		}
	})
	for i := range finalists {
		stage2Evals += len(finalists[i].Curve)
	}

	// Stage 3: select the fastest kernel.
	best := 0
	for i := 1; i < len(finalists); i++ {
		if finalists[i].Best > finalists[best].Best {
			best = i
		}
	}

	sel := &Selection{
		Best:      finalists[best],
		Finalists: append([]Result(nil), finalists...),
		Stats: Stats{
			Enumerated:  valid,
			Rejected:    rejected,
			Stage2:      len(finalists),
			Stage2Evals: stage2Evals,
		},
	}
	if len(finalists) > 0 {
		sel.Stats.ProbeSize = ProbeSize(o.Device, &finalists[0].Params)
	}
	return sel, nil
}

// Curve evaluates one kernel across the stage-2 sizes (used by the
// figure harness to plot the selected kernel).
func (t *Tuner) Curve(p codegen.Params, maxSize int) []SizedPerf {
	sizes := Sizes(p.LCM(), maxSize)
	out := make([]SizedPerf, 0, len(sizes))
	for _, n := range sizes {
		gf, err := t.opts.Evaluator(t.opts.Device, &p, n)
		if err != nil {
			continue
		}
		out = append(out, SizedPerf{N: n, GFlops: gf})
	}
	return out
}

func (t *Tuner) parallelFor(n int, fn func(i int)) {
	workers := t.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
