package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
	"oclgemm/internal/perfmodel"
)

// Evaluator measures one kernel variant at one problem size, returning
// GFlop/s. The production evaluator is the performance model; tests may
// substitute their own.
type Evaluator func(d *device.Spec, p *codegen.Params, n int) (float64, error)

// ModelEvaluator evaluates square problems through the performance
// model (the paper's wall-clock measurement step).
func ModelEvaluator(d *device.Spec, p *codegen.Params, n int) (float64, error) {
	return perfmodel.KernelGFlops(d, p, n, n, n)
}

// Options configures a tuning run.
type Options struct {
	Device    *device.Spec
	Precision matrix.Precision

	// Space is the candidate space; zero value means DefaultSpace.
	Space *Space

	// Finalists is the number of stage-2 kernels (paper: 50).
	Finalists int
	// MaxSize is the largest stage-2 problem size (paper: 8192).
	MaxSize int
	// MaxCandidates caps stage-1 evaluations by deterministic
	// decimation of the enumeration; this is the engine's heuristic
	// sampling (the paper likewise measures "tens of thousands" of
	// heuristically chosen variants, not the full cross product).
	// 0 means the default of 25000; negative means no cap.
	MaxCandidates int
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
	// Evaluator overrides the measurement function (nil = model).
	Evaluator Evaluator
	// CtxEvaluator overrides Evaluator with a context-aware
	// measurement function; required for the per-evaluation timeout to
	// reclaim hung evaluations.
	CtxEvaluator CtxEvaluator

	// EvalTimeout bounds each stage-1/2 evaluation; 0 disables the
	// timeout middleware. Evaluations past the deadline count as
	// RejectTimeout (the paper's hung kernels).
	EvalTimeout time.Duration
	// MaxRetries re-attempts evaluations failing with ErrTransient up
	// to this many extra times (0 disables the retry middleware).
	MaxRetries int
	// RetryBackoff is the initial exponential backoff between retries
	// (0 = 1ms).
	RetryBackoff time.Duration

	// Verify enables the correctness gate: each finalist's generated
	// kernel runs on the simulated runtime and is compared against the
	// blas reference before it may reach stage 2; wrong-result kernels
	// are disqualified and replaced from the stage-1 ranking.
	Verify bool
	// Verifier overrides the gate's check (nil = VerifyParams).
	Verifier Verifier
	// VerifyTimeout bounds each finalist verification; 0 disables the
	// wrap. A hung or pathological verifier run counts as
	// RejectTimeout for that finalist only — the next-ranked candidate
	// takes its place.
	VerifyTimeout time.Duration

	// JournalPath enables stage-1 checkpointing: completed evaluations
	// append to this JSON-lines file, and a re-run with the same path
	// (and search configuration) resumes instead of re-measuring.
	JournalPath string

	// Obs, when set, receives the search's measurement record: a
	// tune.eval.seconds histogram timing every stage-1/2 evaluation,
	// tune.evals / tune.eval.failures counters, and — when the search
	// returns — the Stats fold (tune.reject.<cause> per rejection
	// cause, tested/resumed/verified/stage-2 counters).
	Obs *obs.Registry

	// Context cancels a running search; Search then returns an error
	// wrapping ErrInterrupted. nil means Background.
	Context context.Context
}

// SizedPerf is one point of a performance curve.
type SizedPerf struct {
	N      int
	GFlops float64
}

// Result describes one tuned kernel variant.
type Result struct {
	Params codegen.Params
	// Probe is the stage-1 performance at the probe size.
	Probe float64
	// Curve is the stage-2 performance over sizes (finalists only).
	Curve []SizedPerf
	// Best is the maximum GFlop/s over the curve.
	Best float64
	// BestN is the size at which Best was observed.
	BestN int
}

// Stats tallies a search run the way the paper reports it: variants
// that failed generation, compilation or testing are counted under
// Rejected (split by cause), not among the tested kernels.
type Stats struct {
	// Enumerated is the number of valid candidate variants in the
	// (sampled) space.
	Enumerated int
	// Measured is the number of stage-1 evaluations attempted,
	// including journal replays.
	Measured int
	// Tested is the number of stage-1 evaluations that produced a
	// measurement (Measured minus evaluation failures).
	Tested int
	// Resumed counts stage-1 results restored from the checkpoint
	// journal instead of re-evaluated.
	Resumed int
	// Rejected totals candidates excluded for any cause: generation or
	// device checks, evaluation failures, and correctness-gate
	// disqualifications.
	Rejected int
	// RejectedBy breaks Rejected down per cause.
	RejectedBy map[RejectCause]int
	// Verified counts finalists that passed the correctness gate
	// (0 when the gate is disabled).
	Verified    int
	ProbeSize   int
	Stage2      int // finalists re-measured across sizes
	Stage2Evals int
}

// addReject tallies one rejection.
func (s *Stats) addReject(c RejectCause, n int) {
	if n == 0 {
		return
	}
	if s.RejectedBy == nil {
		s.RejectedBy = make(map[RejectCause]int)
	}
	s.RejectedBy[c] += n
	s.Rejected += n
}

// publish folds the search tally into the registry: one
// tune.reject.<cause> counter per rejection cause plus the headline
// enumerated/measured/tested/resumed/verified and stage-2 counters.
func (s *Stats) publish(r *obs.Registry) {
	if r == nil {
		return
	}
	for c, n := range s.RejectedBy {
		r.Counter("tune.reject." + c.String()).Add(int64(n))
	}
	r.Counter("tune.candidates.enumerated").Add(int64(s.Enumerated))
	r.Counter("tune.candidates.measured").Add(int64(s.Measured))
	r.Counter("tune.candidates.tested").Add(int64(s.Tested))
	r.Counter("tune.candidates.resumed").Add(int64(s.Resumed))
	r.Counter("tune.finalists.verified").Add(int64(s.Verified))
	r.Counter("tune.stage2.kernels").Add(int64(s.Stage2))
	r.Counter("tune.stage2.evals").Add(int64(s.Stage2Evals))
}

// Selection is the outcome of a search.
type Selection struct {
	Best      Result
	Finalists []Result
	Stats     Stats
}

// Tuner is the auto-tuning system: code generator parameter space plus
// heuristic search engine.
type Tuner struct {
	opts Options
	eval CtxEvaluator // Evaluator wrapped in the middleware stack
}

// New creates a tuner. Device and a valid precision are required.
func New(opts Options) (*Tuner, error) {
	if opts.Device == nil {
		return nil, errors.New("core: Options.Device is required")
	}
	if opts.Finalists <= 0 {
		opts.Finalists = 50
	}
	if opts.MaxSize <= 0 {
		opts.MaxSize = 8192
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 25000
	}
	if opts.Evaluator == nil {
		opts.Evaluator = ModelEvaluator
	}
	if opts.Space == nil {
		s := DefaultSpace(opts.Device)
		opts.Space = &s
	}
	if opts.Verifier == nil {
		opts.Verifier = VerifyParams
	}
	opts.Verifier = WithVerifyTimeout(opts.Verifier, opts.VerifyTimeout)
	if opts.Context == nil {
		opts.Context = context.Background()
	}
	ev := opts.CtxEvaluator
	if ev == nil {
		ev = AdaptEvaluator(opts.Evaluator)
	}
	ev = WithTimeout(ev, opts.EvalTimeout)
	ev = WithRetry(ev, opts.MaxRetries, opts.RetryBackoff)
	ev = WithObserver(ev, opts.Obs)
	return &Tuner{opts: opts, eval: ev}, nil
}

// ProbeSize returns the paper's stage-1 problem size for the given
// kernel: ⌊4096/LCM⌋·LCM on GPUs and ⌊1536/LCM⌋·LCM on CPUs, where LCM
// is the least common multiple of the work-group blocking factors.
func ProbeSize(d *device.Spec, p *codegen.Params) int {
	base := 4096
	if d.Kind == device.CPU {
		base = 1536
	}
	l := p.LCM()
	n := base / l * l
	if n < l {
		n = l
	}
	return n
}

// Sizes returns the stage-2 sweep: multiples of lcm up to max,
// thinned to at most 64 points to bound work for tiny LCMs.
func Sizes(lcm, max int) []int {
	if lcm <= 0 || max < lcm {
		return nil
	}
	count := max / lcm
	step := 1
	if count > 64 {
		step = (count + 63) / 64
	}
	var out []int
	for i := step; i*lcm <= max; i += step {
		out = append(out, i*lcm)
	}
	return out
}

// Search runs the three-stage selection and returns the fastest kernel.
// Candidates that fail evaluation (compile, hang, persistent transient
// error, panic) are rejected per cause rather than scored; if every
// candidate fails, the error wraps ErrNoViableKernel.
func (t *Tuner) Search() (*Selection, error) {
	o := t.opts
	ctx := o.Context
	var stats Stats
	// Publish on every exit so aborted searches still leave their
	// partial tally (rejects, resumed counts) in the registry.
	defer func() { stats.publish(o.Obs) }()

	// Stage 0: count the valid candidates, then sample the space with a
	// deterministic stride so the measured set stays representative.
	valid, genRejected := o.Space.Enumerate(o.Device, o.Precision, func(codegen.Params) bool { return true })
	if valid == 0 {
		return nil, fmt.Errorf("core: no valid kernel variants for %s %s",
			o.Device.CodeName, o.Precision.GEMMName())
	}
	stats.Enumerated = valid
	stats.addReject(RejectGeneration, genRejected)
	step := 1
	if o.MaxCandidates > 0 && valid > o.MaxCandidates {
		step = valid / o.MaxCandidates
		if valid%o.MaxCandidates != 0 {
			step++
		}
	}
	candidates := make([]codegen.Params, 0, valid/step+1)
	idx := 0
	o.Space.Enumerate(o.Device, o.Precision, func(p codegen.Params) bool {
		if idx%step == 0 {
			candidates = append(candidates, p)
		}
		idx++
		return true
	})

	// Checkpoint journal: replay completed stage-1 evaluations.
	var jr *journal
	replay := map[string]journalEntry{}
	if o.JournalPath != "" {
		var err error
		jr, replay, err = openJournal(o.JournalPath, searchKey(&o))
		if err != nil {
			return nil, err
		}
		defer jr.close()
	}

	// Stage 1: measure every candidate at its probe size. Outcomes are
	// recorded per candidate; panics in workers become per-candidate
	// errors via parallelFor.
	type outcome struct {
		gf      float64
		err     error
		resumed bool
	}
	outs := make([]outcome, len(candidates))
	var resumed int64
	var mu sync.Mutex
	panics := t.parallelFor(ctx, len(candidates), func(i int) error {
		p := candidates[i]
		name := p.Name()
		if e, ok := replay[name]; ok {
			out := outcome{gf: e.GFlops, resumed: true}
			if e.Cause != "" {
				out.err = causeError(parseRejectCause(e.Cause))
			}
			outs[i] = out
			mu.Lock()
			resumed++
			mu.Unlock()
			return nil
		}
		if err := ctx.Err(); err != nil {
			outs[i] = outcome{err: err}
			return nil
		}
		n := ProbeSize(o.Device, &p)
		gf, err := t.eval(ctx, o.Device, &p, n)
		outs[i] = outcome{gf: gf, err: err}
		if err == nil {
			jr.append(name, gf, "")
		} else if !errors.Is(err, context.Canceled) {
			// Interruption is a property of the run, not the candidate:
			// only journal candidate-attributable failures.
			jr.append(name, 0, CauseOf(err).String())
		}
		return nil
	})
	for i, perr := range panics {
		if perr != nil {
			outs[i].err = perr
			jr.append(candidates[i].Name(), 0, CauseOf(perr).String())
		}
	}
	if err := ctx.Err(); err != nil {
		if jr != nil {
			return nil, fmt.Errorf("%w: %v (stage-1 progress journaled)", ErrInterrupted, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrInterrupted, err)
	}

	stats.Measured = len(candidates)
	stats.Resumed = int(resumed)
	results := make([]Result, 0, len(candidates))
	for i, out := range outs {
		if out.err != nil {
			stats.addReject(CauseOf(out.err), 1)
			continue
		}
		results = append(results, Result{Params: candidates[i], Probe: out.gf})
	}
	stats.Tested = len(results)
	if len(results) == 0 {
		return nil, fmt.Errorf("%w: all %d stage-1 candidates failed (%s)",
			ErrNoViableKernel, len(candidates), rejectSummary(stats.RejectedBy))
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Probe > results[j].Probe })

	// Correctness gate (paper's "passed testing"): walk the ranking,
	// admitting only kernels whose simulated execution matches the
	// reference, until Finalists survive or the ranking is exhausted.
	finalists, verified := t.gateFinalists(ctx, results, o.Finalists, &stats)
	stats.Verified = verified
	if len(finalists) == 0 {
		return nil, fmt.Errorf("%w: every tested kernel failed the correctness gate",
			ErrNoViableKernel)
	}

	// Stage 2: re-measure finalists across sizes.
	stage2Evals := 0
	t.parallelFor(ctx, len(finalists), func(i int) error {
		r := &finalists[i]
		sizes := Sizes(r.Params.LCM(), o.MaxSize)
		for _, n := range sizes {
			gf, err := t.eval(ctx, o.Device, &r.Params, n)
			if err != nil {
				continue
			}
			r.Curve = append(r.Curve, SizedPerf{N: n, GFlops: gf})
			if gf > r.Best {
				r.Best = gf
				r.BestN = n
			}
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInterrupted, err)
	}
	for i := range finalists {
		stage2Evals += len(finalists[i].Curve)
	}

	// Stage 3: select the fastest kernel.
	best := 0
	for i := 1; i < len(finalists); i++ {
		if finalists[i].Best > finalists[best].Best {
			best = i
		}
	}

	stats.Stage2 = len(finalists)
	stats.Stage2Evals = stage2Evals
	stats.ProbeSize = ProbeSize(o.Device, &finalists[0].Params)
	return &Selection{
		Best:      finalists[best],
		Finalists: append([]Result(nil), finalists...),
		Stats:     stats,
	}, nil
}

// gateFinalists selects up to want finalists from the ranked results,
// applying the correctness gate when enabled. Disqualified kernels are
// tallied under RejectWrongResult (or the verifier's cause) and the
// next-ranked candidates take their place.
func (t *Tuner) gateFinalists(ctx context.Context, ranked []Result, want int, stats *Stats) (finalists []Result, verified int) {
	if !t.opts.Verify {
		if want > len(ranked) {
			want = len(ranked)
		}
		return ranked[:want:want], 0
	}
	next := 0
	for len(finalists) < want && next < len(ranked) {
		n := want - len(finalists)
		if n > len(ranked)-next {
			n = len(ranked) - next
		}
		batch := ranked[next : next+n]
		next += n
		verrs := make([]error, len(batch))
		panics := t.parallelFor(ctx, len(batch), func(i int) error {
			verrs[i] = t.opts.Verifier(t.opts.Device, &batch[i].Params)
			return nil
		})
		if ctx.Err() != nil {
			break
		}
		for i := range batch {
			err := verrs[i]
			if err == nil {
				err = panics[i]
			}
			if err != nil {
				stats.addReject(CauseOf(err), 1)
				continue
			}
			verified++
			finalists = append(finalists, batch[i])
		}
	}
	return finalists, verified
}

// rejectSummary formats a per-cause breakdown for error messages.
func rejectSummary(by map[RejectCause]int) string {
	s := ""
	for c := RejectGeneration; c < numRejectCauses; c++ {
		if n := by[c]; n > 0 {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%s: %d", c, n)
		}
	}
	if s == "" {
		return "no rejects"
	}
	return s
}

// Curve evaluates one kernel across the stage-2 sizes (used by the
// figure harness to plot the selected kernel).
func (t *Tuner) Curve(p codegen.Params, maxSize int) []SizedPerf {
	sizes := Sizes(p.LCM(), maxSize)
	out := make([]SizedPerf, 0, len(sizes))
	for _, n := range sizes {
		gf, err := t.opts.Evaluator(t.opts.Device, &p, n)
		if err != nil {
			continue
		}
		out = append(out, SizedPerf{N: n, GFlops: gf})
	}
	return out
}

// parallelFor runs fn(0..n-1) over the tuner's worker pool and returns
// per-index errors. A panic inside fn is recovered in the worker and
// converted into an ErrPanic-wrapped error for that index instead of
// crashing the whole search; cancelling ctx stops dispatching further
// indices (in-flight ones finish).
func (t *Tuner) parallelFor(ctx context.Context, n int, fn func(i int) error) []error {
	errs := make([]error, n)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("%w: %v", ErrPanic, r)
			}
		}()
		errs[i] = fn(i)
	}
	workers := t.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			run(i)
		}
		return errs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return errs
}
