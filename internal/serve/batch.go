package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"oclgemm/internal/batch"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// errDraining rejects submissions after the batcher began draining.
var errDraining = errors.New("serve: draining")

// groupKey identifies the plan a request will execute on: precision
// plus the padded problem shape (the plan-cache key). Requests with
// one groupKey coalesce into one batch on one warm plan.
type groupKey struct {
	prec       matrix.Precision
	mp, np, kp int
}

// batchResult is what a coalesced request hears back: its own error
// and how many requests shared its batch.
type batchResult struct {
	err  error
	size int
}

// pending is one request waiting in a coalescing group: a single call
// (c64/c32) or a whole strided batch (sb64/sb32). Exactly one of the
// four is set, matching the group's precision.
type pending struct {
	ctx  context.Context
	done chan batchResult
	c64  *gemmimpl.Call[float64]
	c32  *gemmimpl.Call[float32]
	sb64 *batch.Strided[float64]
	sb32 *batch.Strided[float32]
}

// group is the open coalescing window for one key.
type group struct {
	reqs  []*pending
	timer *time.Timer
}

// batcher coalesces concurrent same-shape requests into batches
// executed back-to-back on the shared engine's warm plan for that
// shape. The first request of a shape opens a window; requests
// arriving within it join the batch; the window closing (or the batch
// filling) fires one executor that runs every member with per-request
// deadline isolation (gemmimpl.RunBatchEachCtx). Coalescing turns N
// concurrent small requests into one plan claim + N back-to-back runs
// — the steady-state serving shape CLTune/GEMMbench identify as where
// tuned-kernel reuse pays.
type batcher struct {
	eng32, eng64 *gemmimpl.Engine
	window       time.Duration
	maxBatch     int

	mu     sync.Mutex
	closed bool
	groups map[groupKey]*group
	wg     sync.WaitGroup

	batches   *obs.Counter
	coalesced *obs.Counter // requests that shared a batch with >=1 other
	batchSize *obs.Histogram
}

func newBatcher(eng32, eng64 *gemmimpl.Engine, window time.Duration, maxBatch int, reg *obs.Registry) *batcher {
	return &batcher{
		eng32: eng32, eng64: eng64,
		window: window, maxBatch: maxBatch,
		groups:    make(map[groupKey]*group),
		batches:   reg.Counter("serve.batch.count"),
		coalesced: reg.Counter("serve.batch.coalesced"),
		batchSize: reg.Histogram("serve.batch.size", 1, 2, 4, 8, 16, 32, 64),
	}
}

// submit enqueues a request into its shape's coalescing group and
// returns the channel its result will arrive on.
func (b *batcher) submit(key groupKey, p *pending) (<-chan batchResult, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errDraining
	}
	g := b.groups[key]
	if g == nil {
		g = &group{}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.window, func() { b.fire(key, g) })
	}
	g.reqs = append(g.reqs, p)
	if len(g.reqs) >= b.maxBatch {
		// Full batch: detach and execute now.
		delete(b.groups, key)
		g.timer.Stop()
		reqs := g.reqs
		b.wg.Add(1)
		go b.exec(key, reqs)
	}
	b.mu.Unlock()
	return p.done, nil
}

// fire closes a window: detach the group (if still open) and execute.
func (b *batcher) fire(key groupKey, g *group) {
	b.mu.Lock()
	if b.groups[key] != g {
		// Already detached by a full batch or by drain.
		b.mu.Unlock()
		return
	}
	delete(b.groups, key)
	reqs := g.reqs
	b.wg.Add(1)
	b.mu.Unlock()
	b.exec(key, reqs)
}

// exec runs one coalesced batch on the engine for its precision:
// single calls back-to-back with per-request deadline isolation, then
// any strided-batch pendings that coalesced into the same window (each
// is one engine call over its whole batch). Everything shares the
// window's warm plan.
func (b *batcher) exec(key groupKey, reqs []*pending) {
	defer b.wg.Done()
	b.batches.Inc()
	b.batchSize.Observe(float64(len(reqs)))
	if len(reqs) > 1 {
		b.coalesced.Add(int64(len(reqs)))
	}
	var singles, strided []*pending
	for _, p := range reqs {
		if p.sb64 != nil || p.sb32 != nil {
			strided = append(strided, p)
		} else {
			singles = append(singles, p)
		}
	}
	size := len(reqs)
	if len(singles) > 0 {
		ctxs := make([]context.Context, len(singles))
		for i, p := range singles {
			ctxs[i] = p.ctx
		}
		var errs []error
		if key.prec == matrix.Double {
			calls := make([]gemmimpl.Call[float64], len(singles))
			for i, p := range singles {
				calls[i] = *p.c64
			}
			errs = gemmimpl.RunBatchEachCtx(b.eng64, ctxs, calls)
		} else {
			calls := make([]gemmimpl.Call[float32], len(singles))
			for i, p := range singles {
				calls[i] = *p.c32
			}
			errs = gemmimpl.RunBatchEachCtx(b.eng32, ctxs, calls)
		}
		for i, p := range singles {
			p.done <- batchResult{err: errs[i], size: size}
		}
	}
	for _, p := range strided {
		var err error
		if p.sb64 != nil {
			err = gemmimpl.EngineRunStridedCtx(p.ctx, b.eng64, p.sb64)
		} else {
			err = gemmimpl.EngineRunStridedCtx(p.ctx, b.eng32, p.sb32)
		}
		p.done <- batchResult{err: err, size: size}
	}
}

// drain flushes every open window immediately and waits for all
// executors. Later submits fail with errDraining.
func (b *batcher) drain() {
	b.mu.Lock()
	b.closed = true
	for key, g := range b.groups {
		delete(b.groups, key)
		g.timer.Stop()
		reqs := g.reqs
		b.wg.Add(1)
		go b.exec(key, reqs)
	}
	b.mu.Unlock()
	b.wg.Wait()
}
