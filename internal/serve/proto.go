// Package serve is the GEMM-as-a-service front-end: an HTTP server
// that turns the execution engine (warm plans, batch API, pool
// scheduler) into a multi-tenant daemon. It coalesces concurrent
// same-shape small requests onto shared warm plans, enforces
// per-tenant token quotas and queue-depth backpressure with
// load-shedding (429 + Retry-After), routes large problems across the
// device pool, and exposes /metrics and /healthz from the obs layer.
// See DESIGN.md §12 and cmd/gemmserve.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"oclgemm/internal/matrix"
)

// Wire format of POST /v1/gemm (request and response bodies share it):
//
//	uint32 big-endian: JSON header length
//	JSON header (Header on the way in, RespHeader on the way out)
//	binary operand payloads, row-major, little-endian IEEE 754
//
// Request payloads, in order: A (opA source shape), B, and — only when
// beta != 0 — C (m×n). A successful response carries one payload, the
// m×n result C. Operand element width follows Header.Precision.

// Header is the JSON control block of one GEMM request:
// C ← alpha·op(A)·op(B) + beta·C.
type Header struct {
	// Precision is "double" (float64) or "single" (float32).
	Precision string `json:"precision"`
	// TransA/TransB select op(X) = Xᵀ. The binary payload always holds
	// the matrix as stored: A is m×k when transA is false, k×m when
	// true (B likewise k×n / n×k).
	TransA bool `json:"transA,omitempty"`
	TransB bool `json:"transB,omitempty"`
	// M, N, K are the problem dimensions of op(A)·op(B).
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`
	// Alpha and Beta are the GEMM scalars. When Beta == 0 the request
	// body carries no C payload (BLAS semantics: C is not read).
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta,omitempty"`
	// DeadlineMS is the per-request execution deadline in milliseconds
	// (0 = the server default). Expired requests return 504.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Count, on POST /v1/gemm/batched, is the number of same-shape
	// multiplications in the strided batch: the payloads become
	// contiguous slabs of Count operands each (A slab, B slab, and a C
	// slab when beta != 0), and the response carries the Count·m·n
	// result slab. POST /v1/gemm ignores it.
	Count int `json:"count,omitempty"`
}

// RespHeader is the JSON control block of a response.
type RespHeader struct {
	OK bool `json:"ok"`
	// Error is the failure detail when OK is false.
	Error string `json:"error,omitempty"`
	// Path reports how the request executed: "engine" (coalesced onto
	// the shared single-device engine) or "pool" (partitioned across
	// the device pool).
	Path string `json:"path,omitempty"`
	// BatchSize is how many requests shared the coalesced batch this
	// one executed in (1 = alone; engine path only).
	BatchSize int `json:"batch_size,omitempty"`
	// Count echoes the strided-batch item count of a /v1/gemm/batched
	// response (the result payload holds Count·m·n elements).
	Count int `json:"count,omitempty"`
	// ElapsedMS is the server-side execution time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// errPayload marks malformed-payload errors (mapped to 400).
var errPayload = errors.New("serve: bad payload")

// elemSize is the wire width of T in bytes.
func elemSize[T matrix.Scalar]() int {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return 4
	}
	return 8
}

// precisionOf parses Header.Precision.
func precisionOf(s string) (matrix.Precision, error) {
	switch s {
	case "double", "float64", "":
		return matrix.Double, nil
	case "single", "float32":
		return matrix.Single, nil
	}
	return 0, fmt.Errorf("unknown precision %q (want \"double\" or \"single\")", s)
}

// opShape returns the stored shape of an operand given its logical op
// dimensions and transpose flag.
func opShape(rows, cols int, trans bool) (r, c int) {
	if trans {
		return cols, rows
	}
	return rows, cols
}

// payloadSizes returns the expected request payload element counts.
func payloadSizes(h *Header) (na, nb, nc int) {
	ar, ac := opShape(h.M, h.K, h.TransA)
	br, bc := opShape(h.K, h.N, h.TransB)
	na, nb = ar*ac, br*bc
	if h.Beta != 0 {
		nc = h.M * h.N
	}
	return
}

// floatsToBytes encodes vals row-major little-endian.
func floatsToBytes[T matrix.Scalar](vals []T) []byte {
	switch v := any(vals).(type) {
	case []float64:
		out := make([]byte, 8*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
		}
		return out
	case []float32:
		out := make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
		}
		return out
	}
	return nil
}

// bytesToFloats decodes exactly n little-endian elements from raw.
func bytesToFloats[T matrix.Scalar](raw []byte, n int) ([]T, error) {
	var zero T
	esz := 8
	if _, ok := any(zero).(float32); ok {
		esz = 4
	}
	if len(raw) != n*esz {
		return nil, fmt.Errorf("payload holds %d bytes, want %d (%d elements)", len(raw), n*esz, n)
	}
	out := make([]T, n)
	switch o := any(out).(type) {
	case []float64:
		for i := range o {
			o[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	case []float32:
		for i := range o {
			o[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	}
	return out, nil
}

// writeFrame writes one length-prefixed JSON header followed by the
// payloads.
func writeFrame(w io.Writer, hdr any, payloads ...[]byte) error {
	js, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(js)))
	if _, err := w.Write(lb[:]); err != nil {
		return err
	}
	if _, err := w.Write(js); err != nil {
		return err
	}
	for _, p := range payloads {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// maxHeaderBytes bounds the JSON control block of a frame.
const maxHeaderBytes = 1 << 16

// readFrameHeader reads the length-prefixed JSON header into hdr.
func readFrameHeader(r io.Reader, hdr any) error {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return fmt.Errorf("reading header length: %w", err)
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n == 0 || n > maxHeaderBytes {
		return fmt.Errorf("header length %d out of range (1..%d)", n, maxHeaderBytes)
	}
	js := make([]byte, n)
	if _, err := io.ReadFull(r, js); err != nil {
		return fmt.Errorf("reading %d-byte header: %w", n, err)
	}
	if err := json.Unmarshal(js, hdr); err != nil {
		return fmt.Errorf("decoding header: %w", err)
	}
	return nil
}

// EncodeRequest frames one GEMM request for POST /v1/gemm: a, b (and c
// when h.Beta != 0) are the operand elements, row-major in their
// stored shapes. The client half of the protocol — the load harness
// and examples use it; servers use readRequest.
func EncodeRequest[T matrix.Scalar](w io.Writer, h *Header, a, b, c []T) error {
	na, nb, nc := payloadSizes(h)
	if len(a) != na || len(b) != nb {
		return fmt.Errorf("operand sizes %d/%d, want %d/%d", len(a), len(b), na, nb)
	}
	if len(c) != nc {
		return fmt.Errorf("C payload %d elements, want %d (beta=%v)", len(c), nc, h.Beta)
	}
	payloads := [][]byte{floatsToBytes(a), floatsToBytes(b)}
	if nc > 0 {
		payloads = append(payloads, floatsToBytes(c))
	}
	return writeFrame(w, h, payloads...)
}

// EncodeBatchedRequest frames one strided-batched request for POST
// /v1/gemm/batched: a and b are contiguous slabs of h.Count operands
// each (and c likewise when h.Beta != 0), row-major in their stored
// per-item shapes.
func EncodeBatchedRequest[T matrix.Scalar](w io.Writer, h *Header, a, b, c []T) error {
	if h.Count <= 0 {
		return fmt.Errorf("batched request needs a positive count, got %d", h.Count)
	}
	na, nb, nc := payloadSizes(h)
	na, nb, nc = na*h.Count, nb*h.Count, nc*h.Count
	if len(a) != na || len(b) != nb {
		return fmt.Errorf("operand slab sizes %d/%d, want %d/%d", len(a), len(b), na, nb)
	}
	if len(c) != nc {
		return fmt.Errorf("C slab %d elements, want %d (beta=%v, count=%d)", len(c), nc, h.Beta, h.Count)
	}
	payloads := [][]byte{floatsToBytes(a), floatsToBytes(b)}
	if nc > 0 {
		payloads = append(payloads, floatsToBytes(c))
	}
	return writeFrame(w, h, payloads...)
}

// DecodeBatchedResponse reads a framed /v1/gemm/batched response: the
// header plus the count·m·n result slab when it reports success.
func DecodeBatchedResponse[T matrix.Scalar](r io.Reader, m, n, count int) (*RespHeader, []T, error) {
	return DecodeResponse[T](r, m*count, n)
}

// DecodeResponse reads a framed response: the header, plus the m×n
// result payload when the header reports success.
func DecodeResponse[T matrix.Scalar](r io.Reader, m, n int) (*RespHeader, []T, error) {
	var rh RespHeader
	if err := readFrameHeader(r, &rh); err != nil {
		return nil, nil, err
	}
	if !rh.OK {
		return &rh, nil, nil
	}
	var zero T
	esz := 8
	if _, ok := any(zero).(float32); ok {
		esz = 4
	}
	raw := make([]byte, m*n*esz)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, nil, fmt.Errorf("reading %d-byte result: %w", len(raw), err)
	}
	cv, err := bytesToFloats[T](raw, m*n)
	if err != nil {
		return nil, nil, err
	}
	return &rh, cv, nil
}
