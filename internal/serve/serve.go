package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/device"
	"oclgemm/internal/gemmimpl"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
	"oclgemm/internal/sched"
	"oclgemm/internal/tunedb"
)

// Config parameterizes a Server. The zero value of every field selects
// a sensible default.
type Config struct {
	// Device is the single-device engine's processor ID (default
	// "tahiti", the paper's fastest).
	Device string
	// DB supplies tuned kernels per (device, precision); nil selects
	// the paper's Table II database with the nearest-device fallback.
	DB *tunedb.DB
	// Pool enables the multi-device path: requests of at least
	// LargeFlops flops are partitioned across PoolDevices (nil = the
	// paper's full Table I set) instead of coalescing onto the
	// single-device engine.
	Pool        bool
	PoolDevices []*device.Spec
	// LargeFlops is the pool-routing threshold in flops
	// (0 = DefaultLargeFlops). Ignored without Pool.
	LargeFlops float64
	// Window is the coalescing window: how long the first small
	// request of a shape waits for same-shape company before its batch
	// fires (0 = DefaultWindow).
	Window time.Duration
	// MaxBatch fires a batch early once it holds this many requests
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxQueue is the queue-depth shed bound: more than this many
	// requests in the building sheds new arrivals with 429
	// (0 = DefaultMaxQueue).
	MaxQueue int
	// QuotaMflopRate and QuotaMflopBurst set every tenant's token
	// bucket: capacity accrues at Rate Mflop/s up to Burst Mflop, and
	// each request costs its 2·m·n·k arithmetic volume in Mflop. Zero
	// selects DefaultQuotaRate/DefaultQuotaBurst; a negative Rate
	// disables quotas.
	QuotaMflopRate  float64
	QuotaMflopBurst float64
	// DefaultDeadline bounds requests that carry no deadline_ms
	// (0 = DefaultDeadline).
	DefaultDeadline time.Duration
	// MaxDim rejects requests with any dimension above it with 413
	// (0 = DefaultMaxDim).
	MaxDim int
	// Workers bounds per-launch work-group parallelism on the engines
	// (0 = GOMAXPROCS).
	Workers int
	// Metrics and Trace instrument the server and everything under it
	// (engines, pool, clsim). Nil Metrics allocates a private registry
	// so /metrics always works.
	Metrics *obs.Registry
	Trace   *obs.Tracer
}

// Defaults for Config's zero fields.
const (
	DefaultWindow     = 500 * time.Microsecond
	DefaultMaxBatch   = 16
	DefaultMaxQueue   = 256
	DefaultQuotaRate  = 2000.0 // Mflop/s per tenant
	DefaultQuotaBurst = 8000.0 // Mflop
	DefaultDeadline   = 30 * time.Second
	DefaultMaxDim     = 4096
	// DefaultLargeFlops routes problems of 256³ and up to the pool.
	DefaultLargeFlops = 2 * 256.0 * 256 * 256
)

// Server is the GEMM service: one concurrency-safe shared Engine per
// precision behind a coalescing batcher, admission control in front,
// and an optional device pool for large problems.
type Server struct {
	cfg  Config
	reg  *obs.Registry
	im32 *gemmimpl.Impl
	im64 *gemmimpl.Impl
	e32  *gemmimpl.Engine
	e64  *gemmimpl.Engine
	pool *sched.Pool
	adm  *admission
	bat  *batcher
	mux  *http.ServeMux

	draining atomic.Bool
	inflight sync.WaitGroup

	requests *obs.Counter
	pathEng  *obs.Counter
	pathPool *obs.Counter
}

// New builds a server: the shared engines resolve their tuned kernels
// from the database (Table II by default, nearest-device fallback) for
// both precisions; the pool, when enabled, gets one engine pair per
// member.
func New(cfg Config) (*Server, error) {
	if cfg.Device == "" {
		cfg.Device = "tahiti"
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.QuotaMflopRate == 0 {
		cfg.QuotaMflopRate = DefaultQuotaRate
	}
	if cfg.QuotaMflopBurst <= 0 {
		cfg.QuotaMflopBurst = DefaultQuotaBurst
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = DefaultDeadline
	}
	if cfg.MaxDim <= 0 {
		cfg.MaxDim = DefaultMaxDim
	}
	if cfg.LargeFlops <= 0 {
		cfg.LargeFlops = DefaultLargeFlops
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	db := cfg.DB
	if db == nil {
		db = tunedb.PaperTableII()
	}
	dev, err := device.ByID(cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}

	s := &Server{cfg: cfg, reg: cfg.Metrics}
	build := func(prec matrix.Precision) (*gemmimpl.Impl, *gemmimpl.Engine, error) {
		rec, _, err := tunedb.LookupOrFallback(db, dev, prec)
		if err != nil {
			return nil, nil, err
		}
		params, err := rec.Params()
		if err != nil {
			return nil, nil, err
		}
		im, err := gemmimpl.New(dev, params)
		if err != nil {
			return nil, nil, err
		}
		im.SetWorkers(cfg.Workers)
		im.SetObservability(cfg.Metrics, cfg.Trace)
		return im, gemmimpl.NewEngine(im), nil
	}
	if s.im32, s.e32, err = build(matrix.Single); err != nil {
		return nil, fmt.Errorf("serve: building single-precision engine for %s: %w", cfg.Device, err)
	}
	if s.im64, s.e64, err = build(matrix.Double); err != nil {
		s.e32.Close()
		return nil, fmt.Errorf("serve: building double-precision engine for %s: %w", cfg.Device, err)
	}
	if cfg.Pool {
		devs := cfg.PoolDevices
		if len(devs) == 0 {
			devs = device.All()
		}
		s.pool, err = sched.New(sched.Options{
			Devices: devs, DB: db, Workers: cfg.Workers,
			Obs: cfg.Metrics, Trace: cfg.Trace,
		})
		if err != nil {
			s.e32.Close()
			s.e64.Close()
			return nil, fmt.Errorf("serve: building pool: %w", err)
		}
	}

	s.adm = newAdmission(cfg.QuotaMflopRate, cfg.QuotaMflopBurst, cfg.MaxQueue, cfg.Metrics)
	s.bat = newBatcher(s.e32, s.e64, cfg.Window, cfg.MaxBatch, cfg.Metrics)
	s.requests = cfg.Metrics.Counter("serve.requests")
	s.pathEng = cfg.Metrics.Counter("serve.path.engine")
	s.pathPool = cfg.Metrics.Counter("serve.path.pool")

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/gemm", s.handleGEMM)
	s.mux.HandleFunc("POST /v1/gemm/batched", s.handleBatched)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry (the /metrics source).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Drain gracefully stops the server: new requests are rejected with
// 503, in-flight requests (including open coalescing windows) run to
// completion, bounded by ctx. Call before Close.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.bat.drain()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain abandoned: %w", ctx.Err())
	}
}

// Close releases the engines and the pool. Callers should Drain first.
func (s *Server) Close() {
	s.e32.Close()
	s.e64.Close()
	if s.pool != nil {
		s.pool.Close()
	}
}

// tenantOf extracts the request's tenant (X-Tenant header).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// countResponse tallies serve.responses{code=...}.
func (s *Server) countResponse(code int) {
	s.reg.Counter(obs.Label("serve.responses", "code", strconv.Itoa(code))).Inc()
}

// fail writes a plain-JSON error response (no binary frame; clients
// detect it by the HTTP status).
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.countResponse(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": false, "error": fmt.Sprintf(format, args...)})
}

// shed writes a 429 with the Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, retry time.Duration, reason string) {
	w.Header().Set("Retry-After", strconv.FormatFloat(retry.Seconds(), 'f', 3, 64))
	s.fail(w, http.StatusTooManyRequests, "overloaded: %s (retry after %v)", reason, retry)
}

// handleGEMM is POST /v1/gemm: admission, decode, execute (coalesced
// engine batch or pool), respond with the framed result.
func (s *Server) handleGEMM(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.requests.Inc()
	tenant := tenantOf(r)
	s.reg.Counter(obs.Label("serve.requests", "tenant", tenant)).Inc()

	if !s.adm.enter() {
		s.shed(w, 50*time.Millisecond, "queue full")
		return
	}
	defer s.adm.leave()

	var h Header
	if err := readFrameHeader(r.Body, &h); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.M <= 0 || h.N <= 0 || h.K <= 0 {
		s.fail(w, http.StatusBadRequest, "non-positive dimensions %dx%dx%d", h.M, h.N, h.K)
		return
	}
	if h.M > s.cfg.MaxDim || h.N > s.cfg.MaxDim || h.K > s.cfg.MaxDim {
		s.fail(w, http.StatusRequestEntityTooLarge, "dimensions %dx%dx%d exceed max %d", h.M, h.N, h.K, s.cfg.MaxDim)
		return
	}
	prec, err := precisionOf(h.Precision)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	if s.cfg.QuotaMflopRate > 0 {
		mflop := blas.FlopCount(h.M, h.N, h.K) / 1e6
		if ok, retry := s.adm.admit(tenant, mflop, time.Now()); !ok {
			s.shed(w, retry, fmt.Sprintf("tenant %q over quota", tenant))
			return
		}
	}

	deadline := s.cfg.DefaultDeadline
	if h.DeadlineMS > 0 {
		deadline = time.Duration(h.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	start := time.Now()
	var resp *RespHeader
	var payload []byte
	if prec == matrix.Double {
		resp, payload, err = runRequest[float64](s, ctx, &h, r.Body)
	} else {
		resp, payload, err = runRequest[float32](s, ctx, &h, r.Body)
	}
	if err != nil {
		s.fail(w, statusOf(err), "%v", err)
		return
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	s.reg.Histogram(obs.Label("serve.request.seconds", "tenant", tenant), obs.TimeBuckets...).Observe(elapsed.Seconds())
	s.countResponse(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	// A write error here means the client went away mid-response;
	// nothing more to do.
	_ = writeFrame(w, resp, payload)
}

// statusOf maps an execution error to its HTTP status.
func statusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, sched.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the logs only.
		return http.StatusServiceUnavailable
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errPayload):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// runRequest decodes the typed operand payloads and executes the call
// on the engine (coalesced) or the pool (large problems), returning
// the response header and the encoded m×n result. A free function
// because methods cannot be generic.
func runRequest[T matrix.Scalar](s *Server, ctx context.Context, h *Header, body io.Reader) (*RespHeader, []byte, error) {
	na, nb, nc := payloadSizes(h)
	esz := elemSize[T]()
	raw := make([]byte, (na+nb+nc)*esz)
	if _, err := io.ReadFull(body, raw); err != nil {
		return nil, nil, fmt.Errorf("%w: body holds fewer than the %d payload bytes the header promises: %v", errPayload, len(raw), err)
	}
	av, _ := bytesToFloats[T](raw[:na*esz], na)
	bv, _ := bytesToFloats[T](raw[na*esz:(na+nb)*esz], nb)
	ar, ac := opShape(h.M, h.K, h.TransA)
	br, bc := opShape(h.K, h.N, h.TransB)
	a := matrix.FromSlice(ar, ac, matrix.RowMajor, av)
	b := matrix.FromSlice(br, bc, matrix.RowMajor, bv)
	var c *matrix.Matrix[T]
	if nc > 0 {
		cv, _ := bytesToFloats[T](raw[(na+nb)*esz:], nc)
		c = matrix.FromSlice(h.M, h.N, matrix.RowMajor, cv)
	} else {
		c = matrix.New[T](h.M, h.N, matrix.RowMajor)
	}
	ta, tb := blas.NoTrans, blas.NoTrans
	if h.TransA {
		ta = blas.Trans
	}
	if h.TransB {
		tb = blas.Trans
	}
	alpha, beta := T(h.Alpha), T(h.Beta)

	resp := &RespHeader{OK: true}
	if s.pool != nil && blas.FlopCount(h.M, h.N, h.K) >= s.cfg.LargeFlops {
		s.pathPool.Inc()
		resp.Path = "pool"
		if err := sched.RunCtx(ctx, s.pool, ta, tb, alpha, a, b, beta, c); err != nil {
			return nil, nil, err
		}
	} else {
		s.pathEng.Inc()
		resp.Path = "engine"
		im, prec := s.im64, matrix.Double
		if esz == 4 {
			im, prec = s.im32, matrix.Single
		}
		mp, np, kp := im.PaddedDims(h.M, h.N, h.K)
		p := &pending{ctx: ctx, done: make(chan batchResult, 1)}
		switch cl := any(gemmimpl.Call[T]{TransA: ta, TransB: tb, Alpha: alpha, A: a, B: b, Beta: beta, C: c}).(type) {
		case gemmimpl.Call[float64]:
			p.c64 = &cl
		case gemmimpl.Call[float32]:
			p.c32 = &cl
		}
		done, err := s.bat.submit(groupKey{prec: prec, mp: mp, np: np, kp: kp}, p)
		if err != nil {
			return nil, nil, err
		}
		res := <-done
		if res.err != nil {
			return nil, nil, res.err
		}
		resp.BatchSize = res.size
	}

	out := make([]T, h.M*h.N)
	for i := 0; i < h.M; i++ {
		for j := 0; j < h.N; j++ {
			out[i*h.N+j] = c.At(i, j)
		}
	}
	return resp, floatsToBytes(out), nil
}

// handleMetrics is GET /metrics: the registry snapshot as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.Snapshot().WriteJSON(w)
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Status string         `json:"status"` // "ok" or "draining"
	Device string         `json:"device"`
	Pool   []memberHealth `json:"pool,omitempty"`
}

type memberHealth struct {
	Device      string `json:"device"`
	State       string `json:"state"`
	Killed      bool   `json:"killed,omitempty"`
	ConsecFails int    `json:"consecutive_failures,omitempty"`
	Recoveries  int    `json:"recoveries,omitempty"`
}

// handleHealthz is GET /healthz: 200 while serving (with the pool's
// health state machine when a pool is attached), 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthResponse{Status: "ok", Device: s.cfg.Device}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	if s.pool != nil {
		for _, mh := range s.pool.Health() {
			h.Pool = append(h.Pool, memberHealth{
				Device: mh.Device, State: mh.State.String(), Killed: mh.Killed,
				ConsecFails: mh.ConsecFails, Recoveries: mh.Recoveries,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(h)
}
