package serve

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

// LoadShape is one problem size in a load run's shape mix.
type LoadShape struct {
	M, N, K int
	// Single selects float32 (default float64).
	Single bool
	// Beta selects C ← αAB + βC with a client-supplied C (0 = no C
	// payload).
	Beta float64
	// Count > 1 sends the shape as one strided batch of Count items to
	// /v1/gemm/batched (0 or 1 = a single /v1/gemm request).
	Count int
}

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent client goroutines (0 = 64).
	Clients int
	// RequestsPerClient is each client's request count (0 = 8).
	RequestsPerClient int
	// Tenants cycles client i onto Tenants[i % len] (nil = three
	// tenants "alpha"/"bravo"/"charlie").
	Tenants []string
	// HogTenant, when set, makes every client of that tenant send
	// oversized-volume requests back-to-back so the quota sheds it.
	HogTenant string
	// HogDim is the hog's cubic problem dimension (0 = 48).
	HogDim int
	// Shapes is the honest clients' shape mix (nil = a default mix of
	// four shapes across both precisions).
	Shapes []LoadShape
	// Seed makes the run reproducible.
	Seed int64
}

// LoadResult aggregates a load run.
type LoadResult struct {
	Requests  int64 // requests sent
	OK        int64 // 200s
	Shed      int64 // 429s
	Errors    int64 // transport failures or unexpected statuses
	Wrong     int64 // 200s whose result did not verify
	Coalesced int64 // 200s that shared a batch with another request
	BatchedOK int64 // verified 200s that were strided-batched requests
	// ShedByTenant counts 429s per tenant.
	ShedByTenant map[string]int64
	// OKByTenant counts 200s per tenant.
	OKByTenant map[string]int64
	// MaxHonestLatency is the slowest verified-OK request of any
	// non-hog tenant.
	MaxHonestLatency time.Duration
}

func (r *LoadResult) String() string {
	return fmt.Sprintf("requests=%d ok=%d shed=%d errors=%d wrong=%d coalesced=%d batched=%d max_honest_latency=%v",
		r.Requests, r.OK, r.Shed, r.Errors, r.Wrong, r.Coalesced, r.BatchedOK, r.MaxHonestLatency)
}

// defaultShapes is the honest mix: four shapes, both precisions.
func defaultShapes() []LoadShape {
	return []LoadShape{
		{M: 8, N: 8, K: 4},
		{M: 16, N: 8, K: 8, Beta: 0.5},
		{M: 8, N: 24, K: 4, Single: true},
		{M: 13, N: 19, K: 11},
	}
}

// RunLoad drives a serve.Server with concurrent multi-tenant clients
// and verifies every successful response against the pure-Go BLAS
// reference: bit-exact for float64 (the simulated kernel accumulates
// in k-order exactly like blas.GEMM), within matrix.Tolerance for
// float32. It is the acceptance harness behind the serve tests and
// `gemmserve -selfcheck`.
func RunLoad(opts LoadOptions) (*LoadResult, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("serve: RunLoad needs a BaseURL")
	}
	if opts.Clients <= 0 {
		opts.Clients = 64
	}
	if opts.RequestsPerClient <= 0 {
		opts.RequestsPerClient = 8
	}
	if len(opts.Tenants) == 0 {
		opts.Tenants = []string{"alpha", "bravo", "charlie"}
	}
	if opts.HogDim <= 0 {
		opts.HogDim = 48
	}
	shapes := opts.Shapes
	if len(shapes) == 0 {
		shapes = defaultShapes()
	}
	url := strings.TrimRight(opts.BaseURL, "/") + "/v1/gemm"
	urlBatched := url + "/batched"
	client := &http.Client{Timeout: 60 * time.Second}

	res := &LoadResult{
		ShedByTenant: make(map[string]int64),
		OKByTenant:   make(map[string]int64),
	}
	var mu sync.Mutex // guards the maps and MaxHonestLatency
	var wg sync.WaitGroup
	var firstErr atomic.Value

	for ci := 0; ci < opts.Clients; ci++ {
		tenant := opts.Tenants[ci%len(opts.Tenants)]
		wg.Add(1)
		go func(ci int, tenant string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(ci)*7919))
			hog := tenant == opts.HogTenant
			for ri := 0; ri < opts.RequestsPerClient; ri++ {
				sh := shapes[(ci+ri)%len(shapes)]
				if hog {
					sh = LoadShape{M: opts.HogDim, N: opts.HogDim, K: opts.HogDim}
				}
				start := time.Now()
				var ok, shed, wrong, coalesced bool
				var err error
				switch {
				case sh.Count > 1 && sh.Single:
					ok, shed, wrong, coalesced, err = doBatchedRequest[float32](client, urlBatched, tenant, sh, rng)
				case sh.Count > 1:
					ok, shed, wrong, coalesced, err = doBatchedRequest[float64](client, urlBatched, tenant, sh, rng)
				case sh.Single:
					ok, shed, wrong, coalesced, err = doRequest[float32](client, url, tenant, sh, rng)
				default:
					ok, shed, wrong, coalesced, err = doRequest[float64](client, url, tenant, sh, rng)
				}
				atomic.AddInt64(&res.Requests, 1)
				switch {
				case err != nil:
					atomic.AddInt64(&res.Errors, 1)
					firstErr.CompareAndSwap(nil, err)
				case shed:
					atomic.AddInt64(&res.Shed, 1)
					mu.Lock()
					res.ShedByTenant[tenant]++
					mu.Unlock()
				case ok:
					atomic.AddInt64(&res.OK, 1)
					if coalesced {
						atomic.AddInt64(&res.Coalesced, 1)
					}
					if wrong {
						atomic.AddInt64(&res.Wrong, 1)
					} else if sh.Count > 1 {
						atomic.AddInt64(&res.BatchedOK, 1)
					}
					mu.Lock()
					res.OKByTenant[tenant]++
					if !hog {
						if l := time.Since(start); l > res.MaxHonestLatency {
							res.MaxHonestLatency = l
						}
					}
					mu.Unlock()
				}
			}
		}(ci, tenant)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return res, fmt.Errorf("serve: load run saw transport errors (first: %w)", e.(error))
	}
	return res, nil
}

// doRequest sends one request and verifies the result. Returns
// (ok200, shed429, wrong, coalesced, transportErr).
func doRequest[T matrix.Scalar](client *http.Client, url, tenant string, sh LoadShape, rng *rand.Rand) (ok, shed, wrong, coalesced bool, err error) {
	h := &Header{M: sh.M, N: sh.N, K: sh.K, Alpha: 1.25, Beta: sh.Beta}
	if elemSize[T]() == 4 {
		h.Precision = "single"
	} else {
		h.Precision = "double"
	}
	na, nb, nc := payloadSizes(h)
	a := randSlice[T](na, rng)
	b := randSlice[T](nb, rng)
	c := randSlice[T](nc, rng)

	var body bytes.Buffer
	if err := EncodeRequest(&body, h, a, b, c); err != nil {
		return false, false, false, false, err
	}
	req, err := http.NewRequest(http.MethodPost, url, &body)
	if err != nil {
		return false, false, false, false, err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return false, false, false, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		_, _ = io.Copy(io.Discard, resp.Body)
		return false, true, false, false, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, false, false, false, fmt.Errorf("unexpected status %d: %s", resp.StatusCode, msg)
	}
	rh, got, err := DecodeResponse[T](resp.Body, sh.M, sh.N)
	if err != nil {
		return false, false, false, false, err
	}
	if !rh.OK {
		return false, false, false, false, fmt.Errorf("200 with ok=false: %s", rh.Error)
	}

	// Reference: the same call through the pure-Go oracle.
	am := matrix.FromSlice(sh.M, sh.K, matrix.RowMajor, a)
	bm := matrix.FromSlice(sh.K, sh.N, matrix.RowMajor, b)
	var cm *matrix.Matrix[T]
	if nc > 0 {
		cm = matrix.FromSlice(sh.M, sh.N, matrix.RowMajor, append([]T(nil), c...))
	} else {
		cm = matrix.New[T](sh.M, sh.N, matrix.RowMajor)
	}
	blas.GEMM(blas.NoTrans, blas.NoTrans, T(h.Alpha), am, bm, T(h.Beta), cm)
	wrong = !verify(got, cm, sh.K)
	return true, false, wrong, rh.BatchSize > 1, nil
}

// doBatchedRequest sends one strided-batched request to
// /v1/gemm/batched and verifies every item of the result slab against
// the pure-Go reference. Returns (ok200, shed429, wrong, coalesced,
// transportErr) like doRequest.
func doBatchedRequest[T matrix.Scalar](client *http.Client, url, tenant string, sh LoadShape, rng *rand.Rand) (ok, shed, wrong, coalesced bool, err error) {
	h := &Header{M: sh.M, N: sh.N, K: sh.K, Alpha: 1.25, Beta: sh.Beta, Count: sh.Count}
	if elemSize[T]() == 4 {
		h.Precision = "single"
	} else {
		h.Precision = "double"
	}
	na, nb, nc := payloadSizes(h)
	a := randSlice[T](na*sh.Count, rng)
	b := randSlice[T](nb*sh.Count, rng)
	c := randSlice[T](nc*sh.Count, rng)

	var body bytes.Buffer
	if err := EncodeBatchedRequest(&body, h, a, b, c); err != nil {
		return false, false, false, false, err
	}
	req, err := http.NewRequest(http.MethodPost, url, &body)
	if err != nil {
		return false, false, false, false, err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return false, false, false, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		_, _ = io.Copy(io.Discard, resp.Body)
		return false, true, false, false, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, false, false, false, fmt.Errorf("unexpected status %d: %s", resp.StatusCode, msg)
	}
	rh, got, err := DecodeBatchedResponse[T](resp.Body, sh.M, sh.N, sh.Count)
	if err != nil {
		return false, false, false, false, err
	}
	if !rh.OK {
		return false, false, false, false, fmt.Errorf("200 with ok=false: %s", rh.Error)
	}
	if rh.Count != sh.Count {
		return false, false, false, false, fmt.Errorf("response count %d, want %d", rh.Count, sh.Count)
	}

	// Reference: every item through the pure-Go oracle.
	for i := 0; i < sh.Count; i++ {
		am := matrix.FromSlice(sh.M, sh.K, matrix.RowMajor, a[i*na:(i+1)*na])
		bm := matrix.FromSlice(sh.K, sh.N, matrix.RowMajor, b[i*nb:(i+1)*nb])
		var cm *matrix.Matrix[T]
		if nc > 0 {
			cm = matrix.FromSlice(sh.M, sh.N, matrix.RowMajor, append([]T(nil), c[i*nc:(i+1)*nc]...))
		} else {
			cm = matrix.New[T](sh.M, sh.N, matrix.RowMajor)
		}
		blas.GEMM(blas.NoTrans, blas.NoTrans, T(h.Alpha), am, bm, T(h.Beta), cm)
		if !verify(got[i*sh.M*sh.N:(i+1)*sh.M*sh.N], cm, sh.K) {
			wrong = true
			break
		}
	}
	return true, false, wrong, rh.BatchSize > 1, nil
}

// verify compares the wire result against the reference: bit-exact for
// float64, within tolerance for float32 (its kernels reorder
// accumulation).
func verify[T matrix.Scalar](got []T, want *matrix.Matrix[T], k int) bool {
	m, n := want.Rows, want.Cols
	if len(got) != m*n {
		return false
	}
	tol := 0.0
	if elemSize[T]() == 4 {
		tol = matrix.Tolerance(matrix.Single, k)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g, w := float64(got[i*n+j]), float64(want.At(i, j))
			if tol == 0 {
				if g != w {
					return false
				}
				continue
			}
			den := math.Max(math.Abs(w), 1)
			if math.Abs(g-w)/den > tol {
				return false
			}
		}
	}
	return true
}

func randSlice[T matrix.Scalar](n int, rng *rand.Rand) []T {
	out := make([]T, n)
	for i := range out {
		out[i] = T(rng.Float64()*2 - 1)
	}
	return out
}
