package serve

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// postBatched sends one framed strided-batch request and returns the
// raw response.
func postBatched[T matrix.Scalar](t *testing.T, url, tenant string, h *Header, a, b, c []T) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := EncodeBatchedRequest(&body, h, a, b, c); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/gemm/batched", &body)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// batchedRoundTrip posts one batch and verifies every item against the
// pure-Go oracle, returning the response header.
func batchedRoundTrip[T matrix.Scalar](t *testing.T, url string, h *Header, rng *rand.Rand) *RespHeader {
	t.Helper()
	na, nb, nc := payloadSizes(h)
	a := randSlice[T](na*h.Count, rng)
	b := randSlice[T](nb*h.Count, rng)
	c := randSlice[T](nc*h.Count, rng)
	resp := postBatched(t, url, "", h, a, b, c)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	rh, got, err := DecodeBatchedResponse[T](resp.Body, h.M, h.N, h.Count)
	if err != nil {
		t.Fatal(err)
	}
	if !rh.OK {
		t.Fatalf("ok=false: %s", rh.Error)
	}
	if rh.Count != h.Count {
		t.Fatalf("response count %d, want %d", rh.Count, h.Count)
	}
	for i := 0; i < h.Count; i++ {
		am := matrix.FromSlice(h.M, h.K, matrix.RowMajor, a[i*na:(i+1)*na])
		bm := matrix.FromSlice(h.K, h.N, matrix.RowMajor, b[i*nb:(i+1)*nb])
		var cm *matrix.Matrix[T]
		if nc > 0 {
			cm = matrix.FromSlice(h.M, h.N, matrix.RowMajor, append([]T(nil), c[i*nc:(i+1)*nc]...))
		} else {
			cm = matrix.New[T](h.M, h.N, matrix.RowMajor)
		}
		blas.GEMM(blas.NoTrans, blas.NoTrans, T(h.Alpha), am, bm, T(h.Beta), cm)
		if !verify(got[i*h.M*h.N:(i+1)*h.M*h.N], cm, h.K) {
			t.Fatalf("item %d of %d did not verify", i, h.Count)
		}
	}
	return rh
}

func TestBatchedEndpointVerifies(t *testing.T) {
	_, ts := newTestServer(t, Config{QuotaMflopRate: -1})
	rng := rand.New(rand.NewSource(42))
	// Double with beta (C slab on the wire), single without.
	rh := batchedRoundTrip[float64](t, ts.URL, &Header{Precision: "double", M: 8, N: 8, K: 4, Alpha: 1.25, Beta: 0.5, Count: 6}, rng)
	if rh.Path != "engine" {
		t.Errorf("path %q, want engine", rh.Path)
	}
	batchedRoundTrip[float32](t, ts.URL, &Header{Precision: "single", M: 5, N: 7, K: 3, Alpha: 2, Count: 9}, rng)
}

func TestBatchedPoolRouting(t *testing.T) {
	// A tiny LargeFlops threshold sends even a small batch's total
	// volume to the pool (one member — the testDB only tunes tahiti).
	_, ts := newTestServer(t, Config{
		Pool: true, PoolDevices: []*device.Spec{device.Tahiti()},
		LargeFlops: 1, QuotaMflopRate: -1,
	})
	rng := rand.New(rand.NewSource(7))
	rh := batchedRoundTrip[float64](t, ts.URL, &Header{Precision: "double", M: 8, N: 8, K: 4, Alpha: 1, Beta: 0.25, Count: 8}, rng)
	if rh.Path != "pool" {
		t.Errorf("path %q, want pool", rh.Path)
	}
}

func TestBatchedRejectsBadCounts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(1))
	// Count 0 (encoder refuses it, so frame by hand via /v1/gemm header
	// with count=0 posted to the batched endpoint).
	var body bytes.Buffer
	h := &Header{Precision: "double", M: 4, N: 4, K: 4, Alpha: 1}
	if err := EncodeRequest(&body, h, randSlice[float64](16, rng), randSlice[float64](16, rng), nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/gemm/batched", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("count=0: status %d, want 400", resp.StatusCode)
	}
	// Count over the wire bound.
	body.Reset()
	h.Count = maxWireCount + 1
	if err := writeFrame(&body, h); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/gemm/batched", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized count: status %d, want 413", resp.StatusCode)
	}
}

func TestBatchedQuotaChargesFullBatch(t *testing.T) {
	// Burst covers ~40 single 8x8x4 items (0.0005 Mflop each) but the
	// batch charges all of them at once: a 4096-item... use a burst that
	// one item clears and 64 items do not.
	item := blas.FlopCount(8, 8, 4) / 1e6
	_, ts := newTestServer(t, Config{QuotaMflopRate: 0.001, QuotaMflopBurst: item * 8})
	rng := rand.New(rand.NewSource(3))
	h := &Header{Precision: "double", M: 8, N: 8, K: 4, Alpha: 1, Count: 64}
	na, nb, _ := payloadSizes(h)
	resp := postBatched(t, ts.URL, "greedy", h, randSlice[float64](na*64, rng), randSlice[float64](nb*64, rng), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("64-item batch against an 8-item burst: status %d, want 429", resp.StatusCode)
	}
	// The same shape as a small batch fits.
	h.Count = 4
	resp = postBatched(t, ts.URL, "modest", h, randSlice[float64](na*4, rng), randSlice[float64](nb*4, rng), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("4-item batch within burst: status %d, want 200", resp.StatusCode)
	}
}

// TestBatchedAcceptanceLoad is the acceptance gate for the batched
// serve path: a concurrent multi-tenant load with strided batches in
// the mix must verify every result (0 wrong) and the plan cache must
// serve warm (hits ≫ misses — one build per shape, everything after a
// hit).
func TestBatchedAcceptanceLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{QuotaMflopRate: -1})
	res, err := RunLoad(LoadOptions{
		BaseURL: ts.URL, Clients: 12, RequestsPerClient: 6, Seed: 99,
		Shapes: []LoadShape{
			{M: 8, N: 8, K: 4, Count: 16},
			{M: 8, N: 8, K: 4, Beta: 0.5},
			{M: 5, N: 7, K: 3, Single: true, Count: 8},
			{M: 13, N: 9, K: 6, Beta: 1.5, Count: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %v", res)
	if res.Wrong != 0 {
		t.Errorf("%d wrong results, want 0", res.Wrong)
	}
	if res.BatchedOK == 0 {
		t.Error("no verified batched responses")
	}
	if res.OK == 0 {
		t.Error("no successful responses at all")
	}
	snap := s.Metrics().Snapshot()
	hits := snap.Counters["gemm.plan.hit"]
	misses := snap.Counters["gemm.plan.miss"]
	if misses == 0 || hits < 4*misses {
		t.Errorf("plan cache hits=%d misses=%d, want hits >= 4x misses", hits, misses)
	}
}
