package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"oclgemm/internal/obs"
)

// admission is the server's two-layer load shedder.
//
// Layer 1 is a global queue-depth bound: when more requests are in the
// building than maxQueue, new arrivals are shed immediately (429) —
// queueing theory's answer to metastable overload: past the knee,
// queueing helps nobody, so shed early and let clients back off.
//
// Layer 2 is a per-tenant token bucket denominated in Mflop: a tenant
// accrues rate Mflop/s of capacity up to a burst ceiling, and each
// request costs its arithmetic volume (2·m·n·k). A tenant that
// overdrives its quota is shed with a Retry-After telling it exactly
// when the bucket covers the rejected request, while other tenants'
// buckets — and the shared engine behind them — stay unaffected.
type admission struct {
	rate, burst float64 // Mflop/s accrual, Mflop ceiling
	maxQueue    int64

	depth atomic.Int64

	mu      sync.Mutex
	tenants map[string]*bucket

	shedQueue, shedQuota *obs.Counter
	queueDepth           *obs.Gauge
	reg                  *obs.Registry
}

type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	shed   *obs.Counter // serve.shed.quota{tenant=...}
}

func newAdmission(rate, burst float64, maxQueue int, reg *obs.Registry) *admission {
	return &admission{
		rate: rate, burst: burst, maxQueue: int64(maxQueue),
		tenants:    make(map[string]*bucket),
		shedQueue:  reg.Counter("serve.shed.queue"),
		shedQuota:  reg.Counter("serve.shed.quota"),
		queueDepth: reg.Gauge("serve.queue.depth"),
		reg:        reg,
	}
}

// enter reserves a queue slot, reporting false (shed) when the
// building is full. Every successful enter must be paired with leave.
func (ad *admission) enter() bool {
	if d := ad.depth.Add(1); d > ad.maxQueue {
		ad.depth.Add(-1)
		ad.shedQueue.Inc()
		return false
	}
	ad.queueDepth.Set(ad.depth.Load())
	return true
}

func (ad *admission) leave() {
	ad.queueDepth.Set(ad.depth.Add(-1))
}

// tenantBucket returns (creating on first use) the tenant's bucket.
func (ad *admission) tenantBucket(tenant string) *bucket {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	b := ad.tenants[tenant]
	if b == nil {
		b = &bucket{
			tokens: ad.burst,
			shed:   ad.reg.Counter(obs.Label("serve.shed.quota", "tenant", tenant)),
		}
		ad.tenants[tenant] = b
	}
	return b
}

// admit charges mflop against the tenant's bucket. When the bucket
// cannot cover the request, it reports false plus how long the tenant
// must wait for the bucket to refill enough — the 429 Retry-After.
func (ad *admission) admit(tenant string, mflop float64, now time.Time) (bool, time.Duration) {
	b := ad.tenantBucket(tenant)
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens = min(ad.burst, b.tokens+now.Sub(b.last).Seconds()*ad.rate)
	}
	b.last = now
	if b.tokens >= mflop {
		b.tokens -= mflop
		return true, 0
	}
	b.shed.Inc()
	ad.shedQuota.Inc()
	need := mflop
	if need > ad.burst {
		need = ad.burst // a request bigger than the burst can at best wait for a full bucket
	}
	wait := time.Duration((need - b.tokens) / ad.rate * float64(time.Second))
	if wait < 10*time.Millisecond {
		wait = 10 * time.Millisecond
	}
	return false, wait
}
