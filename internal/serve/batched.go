package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"oclgemm/internal/batch"
	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
	"oclgemm/internal/sched"
)

// maxWireCount bounds a /v1/gemm/batched item count (with MaxDim it
// also bounds the slab bytes one request may make the server buffer).
const maxWireCount = 4096

// handleBatched is POST /v1/gemm/batched: one request carries a whole
// strided batch of same-shape multiplications. Admission charges the
// tenant the full batch's Mflop volume up front; one coalescing-window
// submission (or one pool call, for large total volume) then executes
// every item on a single warm plan claim.
func (s *Server) handleBatched(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.requests.Inc()
	tenant := tenantOf(r)
	s.reg.Counter(obs.Label("serve.requests", "tenant", tenant)).Inc()

	if !s.adm.enter() {
		s.shed(w, 50*time.Millisecond, "queue full")
		return
	}
	defer s.adm.leave()

	var h Header
	if err := readFrameHeader(r.Body, &h); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.Count <= 0 {
		s.fail(w, http.StatusBadRequest, "batched request needs a positive count, got %d", h.Count)
		return
	}
	if h.Count > maxWireCount {
		s.fail(w, http.StatusRequestEntityTooLarge, "count %d exceeds max %d", h.Count, maxWireCount)
		return
	}
	if h.M <= 0 || h.N <= 0 || h.K <= 0 {
		s.fail(w, http.StatusBadRequest, "non-positive dimensions %dx%dx%d", h.M, h.N, h.K)
		return
	}
	if h.M > s.cfg.MaxDim || h.N > s.cfg.MaxDim || h.K > s.cfg.MaxDim {
		s.fail(w, http.StatusRequestEntityTooLarge, "dimensions %dx%dx%d exceed max %d", h.M, h.N, h.K, s.cfg.MaxDim)
		return
	}
	prec, err := precisionOf(h.Precision)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Quota: the whole batch's arithmetic volume, not one item's — a
	// tenant cannot smuggle count× the work past its token bucket by
	// folding requests into batches.
	if s.cfg.QuotaMflopRate > 0 {
		mflop := blas.FlopCount(h.M, h.N, h.K) * float64(h.Count) / 1e6
		if ok, retry := s.adm.admit(tenant, mflop, time.Now()); !ok {
			s.shed(w, retry, fmt.Sprintf("tenant %q over quota", tenant))
			return
		}
	}

	deadline := s.cfg.DefaultDeadline
	if h.DeadlineMS > 0 {
		deadline = time.Duration(h.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	start := time.Now()
	var resp *RespHeader
	var payload []byte
	if prec == matrix.Double {
		resp, payload, err = runBatchedRequest[float64](s, ctx, &h, r.Body)
	} else {
		resp, payload, err = runBatchedRequest[float32](s, ctx, &h, r.Body)
	}
	if err != nil {
		s.fail(w, statusOf(err), "%v", err)
		return
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	s.reg.Histogram(obs.Label("serve.request.seconds", "tenant", tenant), obs.TimeBuckets...).Observe(elapsed.Seconds())
	s.countResponse(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = writeFrame(w, resp, payload)
}

// runBatchedRequest reads the operand slabs, builds the strided
// descriptor, and executes it: across the pool when the batch's total
// volume clears the large-problem threshold, otherwise as ONE pending
// in the shape's coalescing window — the whole batch rides a single
// plan claim, alongside whatever single requests share the window.
func runBatchedRequest[T matrix.Scalar](s *Server, ctx context.Context, h *Header, body io.Reader) (*RespHeader, []byte, error) {
	na, nb, nc := payloadSizes(h)
	esz := elemSize[T]()
	raw := make([]byte, (na+nb+nc)*h.Count*esz)
	if _, err := io.ReadFull(body, raw); err != nil {
		return nil, nil, fmt.Errorf("%w: body holds fewer than the %d payload bytes the header promises: %v", errPayload, len(raw), err)
	}
	an, bn := na*h.Count, nb*h.Count
	av, _ := bytesToFloats[T](raw[:an*esz], an)
	bv, _ := bytesToFloats[T](raw[an*esz:(an+bn)*esz], bn)
	var cv []T
	if nc > 0 {
		cv, _ = bytesToFloats[T](raw[(an+bn)*esz:], nc*h.Count)
	} else {
		cv = make([]T, h.M*h.N*h.Count)
	}
	ta, tb := blas.NoTrans, blas.NoTrans
	if h.TransA {
		ta = blas.Trans
	}
	if h.TransB {
		tb = blas.Trans
	}
	sb := &batch.Strided[T]{
		TransA: ta, TransB: tb,
		Alpha: T(h.Alpha), Beta: T(h.Beta),
		M: h.M, N: h.N, K: h.K,
		Order: matrix.RowMajor,
		A:     av, StrideA: na,
		B: bv, StrideB: nb,
		C: cv, StrideC: h.M * h.N,
		Count: h.Count,
	}

	resp := &RespHeader{OK: true, Count: h.Count}
	if s.pool != nil && sb.FlopCount() >= s.cfg.LargeFlops {
		s.pathPool.Inc()
		resp.Path = "pool"
		if err := sched.RunStridedBatchedCtx(ctx, s.pool, sb); err != nil {
			return nil, nil, err
		}
	} else {
		s.pathEng.Inc()
		resp.Path = "engine"
		im := s.im64
		if esz == 4 {
			im = s.im32
		}
		mp, np, kp := im.PaddedDims(h.M, h.N, h.K)
		p := &pending{ctx: ctx, done: make(chan batchResult, 1)}
		switch v := any(sb).(type) {
		case *batch.Strided[float64]:
			p.sb64 = v
		case *batch.Strided[float32]:
			p.sb32 = v
		}
		done, err := s.bat.submit(groupKey{prec: precOf[T](), mp: mp, np: np, kp: kp}, p)
		if err != nil {
			return nil, nil, err
		}
		res := <-done
		if res.err != nil {
			return nil, nil, res.err
		}
		resp.BatchSize = res.size
	}
	return resp, floatsToBytes(cv), nil
}

// precOf maps T to its matrix.Precision.
func precOf[T matrix.Scalar]() matrix.Precision {
	if elemSize[T]() == 4 {
		return matrix.Single
	}
	return matrix.Double
}
