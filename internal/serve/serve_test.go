package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/matrix"
	"oclgemm/internal/tunedb"
)

// testDB builds a tuning database with deliberately small work-group
// parameters for both precisions so simulated GEMMs stay fast under
// -race.
func testDB() *tunedb.DB {
	db := &tunedb.DB{Version: tunedb.FormatVersion}
	for _, prec := range []matrix.Precision{matrix.Single, matrix.Double} {
		p := codegen.Params{
			Precision: prec, Algorithm: codegen.BA,
			Mwg: 8, Nwg: 8, Kwg: 4,
			MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
			Kwi: 2, VectorWidth: 1,
			SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
		}
		db.Put(tunedb.FromParams("tahiti", p, 0, 0, "test"))
	}
	return db
}

// newTestServer starts a serve.Server on an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = testDB()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postGEMM sends one framed request and returns the raw response.
func postGEMM[T matrix.Scalar](t *testing.T, url, tenant string, h *Header, a, b, c []T) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := EncodeRequest(&body, h, a, b, c); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/gemm", &body)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestProtoRoundTrip(t *testing.T) {
	h := &Header{Precision: "double", M: 3, N: 2, K: 4, Alpha: 1.5, Beta: 0.25, TransB: true}
	na, nb, nc := payloadSizes(h)
	if na != 12 || nb != 8 || nc != 6 {
		t.Fatalf("payloadSizes = %d/%d/%d, want 12/8/6", na, nb, nc)
	}
	rng := rand.New(rand.NewSource(1))
	a, b, c := randSlice[float64](na, rng), randSlice[float64](nb, rng), randSlice[float64](nc, rng)

	var buf bytes.Buffer
	if err := EncodeRequest(&buf, h, a, b, c); err != nil {
		t.Fatal(err)
	}
	var got Header
	if err := readFrameHeader(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != *h {
		t.Fatalf("header round-trip: got %+v, want %+v", got, *h)
	}
	raw := buf.Bytes()
	av, err := bytesToFloats[float64](raw[:na*8], na)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if av[i] != a[i] {
			t.Fatalf("payload A[%d] = %v, want %v", i, av[i], a[i])
		}
	}

	// Response side.
	buf.Reset()
	rh := &RespHeader{OK: true, Path: "engine", BatchSize: 3}
	if err := writeFrame(&buf, rh, floatsToBytes(c)); err != nil {
		t.Fatal(err)
	}
	gotRH, cv, err := DecodeResponse[float64](&buf, h.M, h.N)
	if err != nil {
		t.Fatal(err)
	}
	if *gotRH != *rh {
		t.Fatalf("resp header round-trip: got %+v, want %+v", gotRH, rh)
	}
	for i := range c {
		if cv[i] != c[i] {
			t.Fatalf("result[%d] = %v, want %v", i, cv[i], c[i])
		}
	}
}

func TestProtoRejectsBadFrames(t *testing.T) {
	var h Header
	if err := readFrameHeader(strings.NewReader("xy"), &h); err == nil {
		t.Fatal("short length prefix accepted")
	}
	// A length prefix beyond maxHeaderBytes.
	if err := readFrameHeader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), &h); err == nil {
		t.Fatal("oversized header length accepted")
	}
	if _, err := precisionOf("half"); err == nil {
		t.Fatal("unknown precision accepted")
	}
}

func TestAdmissionQueueDepth(t *testing.T) {
	ad := newAdmission(1, 1, 2, nil)
	if !ad.enter() || !ad.enter() {
		t.Fatal("admission rejected within bound")
	}
	if ad.enter() {
		t.Fatal("admission accepted past maxQueue")
	}
	ad.leave()
	if !ad.enter() {
		t.Fatal("admission rejected after leave freed a slot")
	}
}

func TestAdmissionQuota(t *testing.T) {
	ad := newAdmission(100, 50, 10, nil) // 100 Mflop/s, 50 Mflop burst
	now := time.Unix(1000, 0)
	if ok, _ := ad.admit("t", 40, now); !ok {
		t.Fatal("burst-covered request shed")
	}
	ok, retry := ad.admit("t", 40, now)
	if ok {
		t.Fatal("over-quota request admitted")
	}
	// 10 tokens remain; 30 more needed at 100/s = 300ms.
	if retry < 250*time.Millisecond || retry > 350*time.Millisecond {
		t.Fatalf("Retry-After = %v, want ~300ms", retry)
	}
	// After the advertised wait the same request is admitted.
	if ok, _ := ad.admit("t", 40, now.Add(retry)); !ok {
		t.Fatal("request shed after waiting out Retry-After")
	}
	// Other tenants are unaffected throughout.
	if ok, _ := ad.admit("u", 40, now); !ok {
		t.Fatal("independent tenant shed by another tenant's quota")
	}
}

func TestServeBasicCorrectness(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m, n, k := 13, 9, 7
	h := &Header{Precision: "double", M: m, N: n, K: k, Alpha: 1.5, Beta: 0.5}
	rng := rand.New(rand.NewSource(7))
	na, nb, nc := payloadSizes(h)
	a, b, c := randSlice[float64](na, rng), randSlice[float64](nb, rng), randSlice[float64](nc, rng)

	resp := postGEMM(t, ts.URL, "tenant-a", h, a, b, c)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	rh, got, err := DecodeResponse[float64](resp.Body, m, n)
	if err != nil {
		t.Fatal(err)
	}
	if !rh.OK || rh.Path != "engine" {
		t.Fatalf("resp header %+v, want ok engine", rh)
	}

	am := matrix.FromSlice(m, k, matrix.RowMajor, a)
	bm := matrix.FromSlice(k, n, matrix.RowMajor, b)
	cm := matrix.FromSlice(m, n, matrix.RowMajor, append([]float64(nil), c...))
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.5, am, bm, 0.5, cm)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if got[i*n+j] != cm.At(i, j) {
				t.Fatalf("C[%d,%d] = %v, want %v (bit-exact)", i, j, got[i*n+j], cm.At(i, j))
			}
		}
	}
}

func TestServeTransposedSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m, n, k := 10, 6, 9
	h := &Header{Precision: "single", M: m, N: n, K: k, Alpha: 2, TransA: true}
	rng := rand.New(rand.NewSource(11))
	na, nb, _ := payloadSizes(h)
	a, b := randSlice[float32](na, rng), randSlice[float32](nb, rng)

	resp := postGEMM(t, ts.URL, "", h, a, b, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	_, got, err := DecodeResponse[float32](resp.Body, m, n)
	if err != nil {
		t.Fatal(err)
	}

	am := matrix.FromSlice(k, m, matrix.RowMajor, a) // stored kxm, op = transpose
	bm := matrix.FromSlice(k, n, matrix.RowMajor, b)
	cm := matrix.New[float32](m, n, matrix.RowMajor)
	blas.GEMM(blas.Trans, blas.NoTrans, 2, am, bm, 0, cm)
	if !verify(got, cm, k) {
		t.Fatal("transposed single-precision result out of tolerance")
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDim: 64})
	post := func(body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/gemm", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	frame := func(h *Header) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, h); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	if code := post([]byte("not a frame")); code != http.StatusBadRequest {
		t.Fatalf("garbage frame: status %d, want 400", code)
	}
	if code := post(frame(&Header{M: 0, N: 4, K: 4})); code != http.StatusBadRequest {
		t.Fatalf("zero dimension: status %d, want 400", code)
	}
	if code := post(frame(&Header{M: 65, N: 4, K: 4, Alpha: 1})); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized dimension: status %d, want 413", code)
	}
	if code := post(frame(&Header{Precision: "half", M: 4, N: 4, K: 4, Alpha: 1})); code != http.StatusBadRequest {
		t.Fatalf("unknown precision: status %d, want 400", code)
	}
	// Header promises payloads the body does not carry.
	if code := post(frame(&Header{M: 4, N: 4, K: 4, Alpha: 1})); code != http.StatusBadRequest {
		t.Fatalf("truncated payload: status %d, want 400", code)
	}
}

func TestServeDeadline(t *testing.T) {
	// A long coalescing window guarantees the 1ms deadline expires
	// while the request waits in its batch group.
	_, ts := newTestServer(t, Config{Window: 150 * time.Millisecond})
	h := &Header{M: 8, N: 8, K: 4, Alpha: 1, DeadlineMS: 1}
	rng := rand.New(rand.NewSource(3))
	na, nb, _ := payloadSizes(h)
	resp := postGEMM(t, ts.URL, "", h, randSlice[float64](na, rng), randSlice[float64](nb, rng), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, msg)
	}
}

func TestServeCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Window: 40 * time.Millisecond, MaxBatch: 64})
	const clients = 8
	m, n, k := 8, 8, 4
	var wg sync.WaitGroup
	sizes := make([]int, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci)))
			h := &Header{M: m, N: n, K: k, Alpha: 1}
			na, nb, _ := payloadSizes(h)
			resp := postGEMM(t, ts.URL, fmt.Sprintf("t%d", ci%3), h,
				randSlice[float64](na, rng), randSlice[float64](nb, rng), nil)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", ci, resp.StatusCode)
				return
			}
			rh, _, err := DecodeResponse[float64](resp.Body, m, n)
			if err != nil {
				t.Error(err)
				return
			}
			sizes[ci] = rh.BatchSize
		}(ci)
	}
	wg.Wait()
	maxSize := 0
	for _, sz := range sizes {
		if sz > maxSize {
			maxSize = sz
		}
	}
	if maxSize < 2 {
		t.Fatalf("no coalescing across %d concurrent same-shape requests (batch sizes %v)", clients, sizes)
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["serve.batch.coalesced"] == 0 {
		t.Fatal("serve.batch.coalesced stayed 0")
	}
	// One shape: exactly one plan build, the rest hits.
	if hits, misses := snap.Counters["gemm.plan.hit"], snap.Counters["gemm.plan.miss"]; misses != 1 || hits < int64(clients-1) {
		t.Fatalf("plan cache hit/miss = %d/%d, want %d+/1", hits, misses, clients-1)
	}
}

func TestServeHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Device != "tahiti" {
		t.Fatalf("healthz %+v", h)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
}

func TestServeDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	h := &Header{M: 8, N: 8, K: 4, Alpha: 1}
	rng := rand.New(rand.NewSource(5))
	na, nb, _ := payloadSizes(h)
	resp := postGEMM(t, ts.URL, "", h, randSlice[float64](na, rng), randSlice[float64](nb, rng), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain /healthz status %d, want 503", hr.StatusCode)
	}
}

// TestServeLoadAcceptance is the issue's acceptance scenario: 64
// concurrent clients across four tenants (one a quota hog), four
// shapes in both precisions, zero wrong results, plan reuse, the hog
// shed with 429s while honest tenants stay unshed and bounded.
func TestServeLoadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	s, ts := newTestServer(t, Config{
		Window:   2 * time.Millisecond,
		MaxBatch: 16,
		// Honest shapes cost ~0.005 Mflop each; the hog's 48^3 costs
		// ~0.22 Mflop. Burst 4 Mflop covers a whole honest tenant's run
		// but only ~18 hog requests.
		QuotaMflopRate:  1,
		QuotaMflopBurst: 4,
	})
	res, err := RunLoad(LoadOptions{
		BaseURL:           ts.URL,
		Clients:           64,
		RequestsPerClient: 8,
		Tenants:           []string{"alpha", "bravo", "charlie", "hog"},
		HogTenant:         "hog",
		HogDim:            48,
		Seed:              42,
	})
	if err != nil {
		t.Fatalf("%v (result: %v)", err, res)
	}
	t.Logf("load: %v", res)
	if res.Wrong != 0 {
		t.Fatalf("%d wrong results", res.Wrong)
	}
	if res.OK == 0 {
		t.Fatal("no successful requests")
	}
	if res.ShedByTenant["hog"] == 0 {
		t.Fatal("quota hog was never shed")
	}
	for _, tn := range []string{"alpha", "bravo", "charlie"} {
		if res.ShedByTenant[tn] != 0 {
			t.Fatalf("honest tenant %s shed %d times", tn, res.ShedByTenant[tn])
		}
		if res.OKByTenant[tn] != 16*8 {
			t.Fatalf("honest tenant %s completed %d/%d requests", tn, res.OKByTenant[tn], 16*8)
		}
	}
	if res.MaxHonestLatency > 10*time.Second {
		t.Fatalf("honest latency ballooned to %v", res.MaxHonestLatency)
	}

	snap := s.Metrics().Snapshot()
	hits, misses := snap.Counters["gemm.plan.hit"], snap.Counters["gemm.plan.miss"]
	if hits < 10*misses {
		t.Fatalf("plan reuse too low: hit=%d miss=%d", hits, misses)
	}
	if snap.Counters["serve.shed.quota"] == 0 {
		t.Fatal("serve.shed.quota stayed 0")
	}

	// Clean drain with nothing in flight.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
