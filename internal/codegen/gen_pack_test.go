package codegen

import (
	"strings"
	"testing"

	"oclgemm/internal/matrix"
)

func TestGeneratePackSourceStructure(t *testing.T) {
	pp := PackParams{Precision: matrix.Double, Layout: matrix.LayoutCBL, Rb: 48, Cb: 96, Transpose: true}
	src, err := pp.GeneratePackSource()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"__kernel void pack_block(",
		"#pragma OPENCL EXTENSION cl_khr_fp64",
		"get_global_id(0)",
		"S[c * LD + r]",       // transposed read
		"(c / 96) * (R * 96)", // CBL indexing
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("pack source missing %q\n%s", frag, src)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces")
	}
}

func TestGeneratePackSourceVariants(t *testing.T) {
	rm := PackParams{Precision: matrix.Single, Layout: matrix.LayoutRowMajor, Rb: 8, Cb: 8}
	src, err := rm.GeneratePackSource()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "#pragma") {
		t.Error("float pack must not need fp64")
	}
	if !strings.Contains(src, "D[r * C + c]") {
		t.Error("row-major destination indexing missing")
	}
	if !strings.Contains(src, "S[r * LD + c]") {
		t.Error("non-transposed read missing")
	}

	rbl := PackParams{Precision: matrix.Single, Layout: matrix.LayoutRBL, Rb: 4, Cb: 8}
	src, err = rbl.GeneratePackSource()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "(r / 4) * (4 * C)") {
		t.Errorf("RBL destination indexing missing:\n%s", src)
	}
}

func TestGeneratePackRejectsInvalid(t *testing.T) {
	bad := PackParams{Precision: matrix.Single, Layout: matrix.Layout(9), Rb: 4, Cb: 4}
	if _, err := bad.GeneratePackSource(); err == nil {
		t.Error("unknown layout must fail")
	}
	bad2 := PackParams{Precision: matrix.Single, Layout: matrix.LayoutCBL, Rb: 0, Cb: 4}
	if _, err := bad2.GeneratePackSource(); err == nil {
		t.Error("zero blocking must fail")
	}
}

func TestPackNDRange(t *testing.T) {
	pp := PackParams{Precision: matrix.Single, Layout: matrix.LayoutCBL, Rb: 4, Cb: 4}
	g, l := pp.PackNDRange(33, 50)
	if l != [2]int{16, 16} {
		t.Errorf("default local = %v", l)
	}
	if g[0]%l[0] != 0 || g[1]%l[1] != 0 || g[0] < 50 || g[1] < 33 {
		t.Errorf("global %v must cover and divide", g)
	}
	pp.WGX, pp.WGY = 8, 4
	g, l = pp.PackNDRange(33, 50)
	if l != [2]int{8, 4} || g[0]%8 != 0 || g[1]%4 != 0 {
		t.Errorf("custom WG wrong: %v %v", g, l)
	}
}
