package codegen

import (
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// ValidFor reports whether the parameter set passes both Validate and
// CheckDevice, without allocating errors. The search engine enumerates
// tens of millions of raw combinations; this is its hot path. A
// property test (TestValidForMatchesCheckDevice) keeps it in exact
// agreement with the error-reporting path.
func (p *Params) ValidFor(d *device.Spec) bool {
	if p.Mwg <= 0 || p.Nwg <= 0 || p.Kwg <= 0 || p.MdimC <= 0 || p.NdimC <= 0 || p.Kwi <= 0 {
		return false
	}
	if p.Mwg%p.MdimC != 0 || p.Nwg%p.NdimC != 0 {
		return false
	}
	kwgSpan := p.Kwg
	if p.Algorithm == DB {
		if p.Kwg%2 != 0 {
			return false
		}
		kwgSpan = p.Kwg / 2
	}
	if kwgSpan%p.Kwi != 0 {
		return false
	}
	switch p.VectorWidth {
	case 1, 2, 4, 8:
	default:
		return false
	}
	if (p.Nwg/p.NdimC)%p.VectorWidth != 0 {
		return false
	}
	wg := p.MdimC * p.NdimC
	if p.SharedA {
		if p.MdimA <= 0 || wg%p.MdimA != 0 || p.Mwg%p.MdimA != 0 {
			return false
		}
		kdimA := wg / p.MdimA
		if p.Kwg%kdimA != 0 {
			return false
		}
		if p.Algorithm == DB && (p.Kwg/kdimA)%2 != 0 {
			return false
		}
	}
	if p.SharedB {
		if p.NdimB <= 0 || wg%p.NdimB != 0 || p.Nwg%p.NdimB != 0 {
			return false
		}
		kdimB := wg / p.NdimB
		if p.Kwg%kdimB != 0 {
			return false
		}
		if p.Algorithm == DB && (p.Kwg/kdimB)%2 != 0 {
			return false
		}
	}
	if p.Algorithm == DB && !p.SharedA && !p.SharedB {
		return false
	}
	for _, l := range []matrix.Layout{p.LayoutA, p.LayoutB} {
		switch l {
		case matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL:
		default:
			return false
		}
	}
	// Device checks.
	if wg > d.MaxWGSize {
		return false
	}
	lds := 0
	if p.SharedA {
		lds += p.Mwg * p.Kwg * p.Precision.Size()
	}
	if p.SharedB {
		lds += p.Kwg * p.Nwg * p.Precision.Size()
	}
	if lds > d.LocalMemBytes() {
		return false
	}
	if d.PLDoubleFails && p.Algorithm == PL && p.Precision == matrix.Double {
		return false
	}
	return true
}
