package codegen

import (
	"strings"
	"testing"

	"oclgemm/internal/matrix"
)

func genSource(t *testing.T, p Params) string {
	t.Helper()
	src, err := p.GenerateSource()
	if err != nil {
		t.Fatalf("GenerateSource: %v", err)
	}
	return src
}

func TestGenerateStructure(t *testing.T) {
	p := tahitiSGEMM()
	src := genSource(t, p)
	for _, frag := range []string{
		"__kernel void gemm_atb(",
		"__local float Alm[1536]", // 16*96
		"__local float Blm[1536]",
		"barrier(CLK_LOCAL_MEM_FENCE);",
		"get_group_id(0)",
		"mad(",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("source missing %q\n%s", frag, src)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces")
	}
}

func TestGenerateDoublePragma(t *testing.T) {
	d := tahitiDGEMM()
	src := genSource(t, d)
	if !strings.Contains(src, "#pragma OPENCL EXTENSION cl_khr_fp64 : enable") {
		t.Error("double kernels need the fp64 pragma")
	}
	if !strings.Contains(src, "__kernel void gemm_atb(const int M, const int N, const int K, const double alpha") {
		t.Error("double kernel signature wrong")
	}
	s := tahitiSGEMM()
	if strings.Contains(genSource(t, s), "#pragma") {
		t.Error("float kernels must not carry the fp64 pragma")
	}
}

func TestGenerateNoLocalMemoryVariant(t *testing.T) {
	p := tahitiSGEMM()
	p.SharedA, p.SharedB = false, false
	src := genSource(t, p)
	if strings.Contains(src, "__local") || strings.Contains(src, "barrier(") {
		t.Error("non-shared kernel must not declare local memory or barriers")
	}
}

func TestGenerateVectorWidths(t *testing.T) {
	p := tahitiSGEMM()
	p.VectorWidth = 2
	src := genSource(t, p)
	for _, frag := range []string{"float2 acc[", "vload2(", "vstore2(", "(float2)(alpha)"} {
		if !strings.Contains(src, frag) {
			t.Errorf("vw=2 source missing %q", frag)
		}
	}
	p.VectorWidth = 1
	src = genSource(t, p)
	if strings.Contains(src, "vload") || strings.Contains(src, "float2") {
		t.Error("vw=1 source must be scalar")
	}
}

func TestGenerateAlgorithmShapes(t *testing.T) {
	base := tahitiSGEMM()

	ba := genSource(t, base)
	if strings.Count(ba, "barrier(") != 2 {
		t.Errorf("BA must have 2 barriers, got %d", strings.Count(ba, "barrier("))
	}

	pl := base
	pl.Algorithm = PL
	plSrc := genSource(t, pl)
	if !strings.Contains(plSrc, "apm[") || !strings.Contains(plSrc, "bpm[") {
		t.Error("PL must stage panels in private arrays")
	}
	if strings.Count(plSrc, "barrier(") != 3 {
		t.Errorf("PL must have 3 barriers, got %d", strings.Count(plSrc, "barrier("))
	}

	db := base
	db.Algorithm = DB
	db.Kwg = 32 // KwiA must be even for the half-panel buffers
	dbSrc := genSource(t, db)
	if strings.Contains(dbSrc, "apm[") {
		t.Error("DB must not stage in private arrays")
	}
	// DB local memory equals BA's at the same Kwg (half panels
	// double-buffered inside one full-panel allocation).
	if !strings.Contains(dbSrc, "__local float Alm[3072]") {
		t.Error("DB local allocation must equal BA's")
	}
}

func TestGenerateUnrollDegree(t *testing.T) {
	p := tahitiSGEMM() // Kwi = 2, Mwi = Nwi = 6, vw = 1
	src := genSource(t, p)
	// mads per pwi iteration: Kwi * Mwi * Nwi = 72 in the main loop.
	if got := strings.Count(src, "mad("); got != 72 {
		t.Errorf("BA mad count = %d, want 72", got)
	}
	p.Kwi = 4
	src = genSource(t, p)
	if got := strings.Count(src, "mad("); got != 144 {
		t.Errorf("Kwi=4 mad count = %d, want 144", got)
	}
}

func TestGenerateLayoutIndexing(t *testing.T) {
	p := tahitiSGEMM()
	p.LayoutA, p.LayoutB = matrix.LayoutRowMajor, matrix.LayoutRBL
	src := genSource(t, p)
	if !strings.Contains(src, "* M + gx *") {
		t.Error("row-major A indexing missing")
	}
	if !strings.Contains(src, "% 16) * 96") { // RBL: (k % Kwg) * Nwg
		t.Error("RBL B indexing missing")
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	p := tahitiSGEMM()
	p.Kwi = 3
	if _, err := p.GenerateSource(); err == nil {
		t.Error("invalid params must not generate")
	}
}

func TestGenerateStrideModes(t *testing.T) {
	p := tahitiSGEMM()
	p.StrideM, p.StrideN = true, true
	src := genSource(t, p)
	// Strided row mapping: lx + i * MdimC.
	if !strings.Contains(src, "lx + (0) * 16") {
		t.Errorf("strided M mapping missing:\n%s", src)
	}
}
