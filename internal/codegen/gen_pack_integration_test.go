package codegen_test

import (
	"math/rand"
	"testing"

	"oclgemm/internal/clc"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// The generated §III-D copy kernel, interpreted from its OpenCL C
// source, must agree with the host pack for every layout and transpose
// mode.
func TestGeneratedPackSourceMatchesHost(t *testing.T) {
	for _, layout := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
		for _, transpose := range []bool{false, true} {
			pp := codegen.PackParams{
				Precision: matrix.Double, Layout: layout,
				Rb: 4, Cb: 8, Transpose: transpose,
				WGX: 8, WGY: 4,
			}
			src, err := pp.GeneratePackSource()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := clc.Compile(src)
			if err != nil {
				t.Fatalf("clc compile: %v\n%s", err, src)
			}
			kern, err := prog.Kernel(codegen.PackKernelName)
			if err != nil {
				t.Fatal(err)
			}

			m := matrix.New[float64](11, 7, matrix.RowMajor)
			m.FillRandom(rand.New(rand.NewSource(3)))
			dr, dc := 11, 7
			if transpose {
				dr, dc = 7, 11
			}
			r := matrix.PadDim(dr, pp.Rb)
			c := matrix.PadDim(dc, pp.Cb)
			dst := make([]float64, r*c)
			bound, err := kern.Bind(m.Rows, m.Cols, m.Stride, r, c, m.Data, dst)
			if err != nil {
				t.Fatal(err)
			}
			g, l := pp.PackNDRange(r, c)
			q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
			if err := q.Run(bound, clsim.NDRange{Global: g, Local: l}); err != nil {
				t.Fatalf("run: %v\n%s", err, src)
			}
			want := matrix.Pack(m, transpose, r, c, pp.Rb, pp.Cb, layout)
			for i := range want.Data {
				if dst[i] != want.Data[i] {
					t.Fatalf("layout=%v transpose=%v: element %d: %v vs %v",
						layout, transpose, i, dst[i], want.Data[i])
				}
			}
		}
	}
}

// Float32 pack through the interpreter.
func TestGeneratedPackSourceFloat32(t *testing.T) {
	pp := codegen.PackParams{Precision: matrix.Single, Layout: matrix.LayoutCBL, Rb: 4, Cb: 4}
	src, err := pp.GeneratePackSource()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	kern, _ := prog.Kernel(codegen.PackKernelName)
	m := matrix.New[float32](6, 6, matrix.RowMajor)
	m.FillRandom(rand.New(rand.NewSource(4)))
	dst := make([]float32, 8*8)
	bound, err := kern.Bind(6, 6, 6, 8, 8, m.Data, dst)
	if err != nil {
		t.Fatal(err)
	}
	g, l := pp.PackNDRange(8, 8)
	q := clsim.NewQueue(clsim.NewContext(&clsim.Device{Spec: device.Tahiti()}))
	if err := q.Run(bound, clsim.NDRange{Global: g, Local: l}); err != nil {
		t.Fatal(err)
	}
	want := matrix.Pack(m, false, 8, 8, 4, 4, matrix.LayoutCBL)
	for i := range want.Data {
		if dst[i] != want.Data[i] {
			t.Fatalf("float32 pack differs at %d", i)
		}
	}
}
