package codegen_test

// Integration of the full code-generation pipeline: the OpenCL C text
// emitted by codegen is compiled by the clc front end, interpreted on
// the clsim runtime with true per-work-item execution and barriers, and
// compared against both the reference BLAS and the native Go kernels —
// which must agree exactly in double precision, since both execute the
// same schedule in the same accumulation order.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oclgemm/internal/blas"
	"oclgemm/internal/clc"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/kernels"
	"oclgemm/internal/matrix"
)

// runGenerated executes the generated source under BOTH clc engines —
// the bytecode VM (whose result lands in c) and the AST-interpreter
// oracle — and fails on any bitwise divergence between them. Every
// integration test below therefore doubles as a differential check of
// the VM.
func runGenerated(t *testing.T, p codegen.Params, m, n, k int,
	alpha float64, at, bp []float64, beta float64, c []float64) {
	t.Helper()
	src, err := p.GenerateSource()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("clc compile: %v\n%s", err, src)
	}
	kern, err := prog.Kernel(codegen.KernelName)
	if err != nil {
		t.Fatal(err)
	}
	if err := kern.CompileBytecode(); err != nil {
		t.Fatalf("bytecode compile: %v\n%s", err, src)
	}
	nd := clsim.NDRange{
		Global: [2]int{m / p.Mwg * p.MdimC, n / p.Nwg * p.NdimC},
		Local:  [2]int{p.MdimC, p.NdimC},
	}
	cInterp := append([]float64(nil), c...)
	run := func(out []float64, forceInterp bool) {
		bound, err := kern.Bind(m, n, k, alpha, beta, at, bp, out)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		bound.SetInterp(forceInterp)
		ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
		q := clsim.NewQueue(ctx)
		if err := q.Run(bound, nd); err != nil {
			t.Fatalf("run: %v\n%s", err, src)
		}
	}
	run(c, false)
	run(cInterp, true)
	for i := range c {
		if math.Float64bits(c[i]) != math.Float64bits(cInterp[i]) {
			t.Fatalf("%s: bytecode VM diverges from interpreter at C[%d]: vm=%v interp=%v",
				p.Name(), i, c[i], cInterp[i])
		}
	}
}

// checkGenerated packs inputs, runs the generated source through clc,
// runs the native kernel, and compares both against the reference.
func checkGenerated(t *testing.T, p codegen.Params, m, n, k int, seed int64) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid params: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[float64](m, k, matrix.RowMajor)
	b := matrix.New[float64](k, n, matrix.RowMajor)
	c := matrix.New[float64](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	alpha, beta := 1.5, -0.75

	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)

	// Generated source through the interpreter.
	cGen := c.Clone()
	runGenerated(t, p, m, n, k, alpha, at.Data, bp.Data, beta, cGen.Data)

	// Native kernel.
	cNat := c.Clone()
	kern, err := kernels.NewGEMM(p, m, n, k, alpha, at.Data, bp.Data, beta, cNat.Data)
	if err != nil {
		t.Fatal(err)
	}
	ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
	q := clsim.NewQueue(ctx)
	if err := q.RunLockstep(kern, kern.NDRange()); err != nil {
		t.Fatal(err)
	}

	// Reference.
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, alpha, a, b, beta, want)

	if d := matrix.MaxRelDiff(cGen, want); d > 1e-12 {
		t.Errorf("%s: generated source differs from reference by %g", p.Name(), d)
	}
	// Same schedule, same accumulation order: interpreter and native
	// kernel must agree exactly in double precision.
	if d := matrix.MaxRelDiff(cGen, cNat); d != 0 {
		t.Errorf("%s: generated source differs from native kernel by %g (want exact)", p.Name(), d)
	}
}

func smallParams() codegen.Params {
	return codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 8, Nwg: 8, Kwg: 4,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1,
		SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
}

func TestGeneratedBAAllLayouts(t *testing.T) {
	for _, la := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
		for _, lb := range []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL} {
			p := smallParams()
			p.LayoutA, p.LayoutB = la, lb
			checkGenerated(t, p, 16, 16, 12, 1)
		}
	}
}

func TestGeneratedSharedModes(t *testing.T) {
	for _, sh := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		p := smallParams()
		p.SharedA, p.SharedB = sh[0], sh[1]
		checkGenerated(t, p, 16, 24, 8, 2)
	}
}

func TestGeneratedStrideAndVector(t *testing.T) {
	for _, st := range [][2]bool{{false, false}, {true, true}} {
		for _, vw := range []int{1, 2, 4} {
			p := smallParams()
			p.Nwg = 16 // Nwi = 4
			p.StrideM, p.StrideN = st[0], st[1]
			p.VectorWidth = vw
			checkGenerated(t, p, 16, 32, 8, 3)
		}
	}
}

func TestGeneratedPL(t *testing.T) {
	for _, sh := range [][2]bool{{true, true}, {true, false}, {false, false}} {
		p := smallParams()
		p.Algorithm = codegen.PL
		p.SharedA, p.SharedB = sh[0], sh[1]
		checkGenerated(t, p, 16, 16, 16, 4)
	}
}

func TestGeneratedDB(t *testing.T) {
	for _, sh := range [][2]bool{{true, true}, {false, true}} {
		p := smallParams()
		p.Algorithm = codegen.DB
		p.Kwg = 8
		p.SharedA, p.SharedB = sh[0], sh[1]
		checkGenerated(t, p, 16, 16, 32, 5)
	}
}

func TestGeneratedReshapedLoads(t *testing.T) {
	p := smallParams()
	p.Mwg, p.Nwg, p.Kwg = 16, 16, 8
	p.MdimA, p.NdimB = 8, 2
	checkGenerated(t, p, 32, 32, 16, 6)
}

func TestGeneratedFloat32(t *testing.T) {
	p := smallParams()
	p.Precision = matrix.Single
	p.VectorWidth = 2
	src, err := p.GenerateSource()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	kern, _ := prog.Kernel(codegen.KernelName)

	m, n, k := 16, 16, 8
	rng := rand.New(rand.NewSource(7))
	a := matrix.New[float32](m, k, matrix.RowMajor)
	b := matrix.New[float32](k, n, matrix.RowMajor)
	c := matrix.New[float32](m, n, matrix.RowMajor)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
	bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
	cGen := c.Clone()
	bound, err := kern.Bind(m, n, k, float32(1), float32(0.5), at.Data, bp.Data, cGen.Data)
	if err != nil {
		t.Fatal(err)
	}
	ctx := clsim.NewContext(&clsim.Device{Spec: device.Tahiti()})
	q := clsim.NewQueue(ctx)
	nd := clsim.NDRange{
		Global: [2]int{m / p.Mwg * p.MdimC, n / p.Nwg * p.NdimC},
		Local:  [2]int{p.MdimC, p.NdimC},
	}
	if err := q.Run(bound, nd); err != nil {
		t.Fatal(err)
	}
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, float32(1), a, b, float32(0.5), want)
	if d := matrix.MaxRelDiff(cGen, want); d > float64(matrix.Tolerance(matrix.Single, k)) {
		t.Errorf("float32 generated kernel differs by %g", d)
	}
}

// The paper's Table II Tahiti configs, functionally, at reduced size.
func TestGeneratedPaperConfig(t *testing.T) {
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 96, Nwg: 32, Kwg: 48,
		MdimC: 16, NdimC: 16, MdimA: 16, NdimB: 16,
		Kwi: 2, VectorWidth: 2, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	checkGenerated(t, p, 96, 32, 48, 8)
}

// Property test over random small configurations: the generated source,
// interpreted, matches the reference BLAS for all three algorithms.
func TestGeneratedPropertyRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("interpreter property test")
	}
	f := func(algSel, mwiS, nwiS, kwgS, vwS, shSel, stSel, layA, layB uint8, seed int64) bool {
		p := codegen.Params{
			Precision: matrix.Double,
			Algorithm: codegen.Algorithms[algSel%3],
			MdimC:     2, NdimC: 4,
			Kwi:     2,
			SharedA: shSel&1 != 0,
			SharedB: shSel&2 != 0,
			StrideM: stSel&1 != 0,
			StrideN: stSel&2 != 0,
			LayoutA: []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layA%3],
			LayoutB: []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layB%3],
		}
		p.Mwg = p.MdimC * (int(mwiS%3) + 1)
		p.Nwg = p.NdimC * []int{2, 4}[nwiS%2]
		p.Kwg = []int{4, 8}[kwgS%2]
		p.VectorWidth = []int{1, 2}[vwS%2]
		p.MdimA = p.MdimC
		p.NdimB = p.NdimC
		if p.Algorithm == codegen.DB && !p.UsesLocalMemory() {
			p.SharedB = true
		}
		if err := p.Validate(); err != nil {
			return true
		}
		m, n, k := p.Mwg*2, p.Nwg, p.Kwg*2

		rng := rand.New(rand.NewSource(seed))
		a := matrix.New[float64](m, k, matrix.RowMajor)
		b := matrix.New[float64](k, n, matrix.RowMajor)
		c := matrix.New[float64](m, n, matrix.RowMajor)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c.FillRandom(rng)
		at := matrix.Pack(a, true, k, m, p.Kwg, p.Mwg, p.LayoutA)
		bp := matrix.Pack(b, false, k, n, p.Kwg, p.Nwg, p.LayoutB)
		cGen := c.Clone()
		runGenerated(t, p, m, n, k, 1.0, at.Data, bp.Data, 1.0, cGen.Data)
		want := c.Clone()
		blas.GEMM(blas.NoTrans, blas.NoTrans, 1.0, a, b, 1.0, want)
		return matrix.MaxRelDiff(cGen, want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
