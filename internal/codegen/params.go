// Package codegen implements the paper's GEMM code generator (§III):
// a parameter vector describing one C ← α·Aᵀ·B + β·C kernel variant,
// validation of parameter consistency, emission of the corresponding
// OpenCL C kernel source, and static resource/usage statistics consumed
// by the performance model.
package codegen

import (
	"errors"
	"fmt"

	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// Algorithm selects one of the three GEMM schedules of §III-E.
type Algorithm int

const (
	// BA is the basic algorithm (Fig. 4), after Volkov and Demmel.
	BA Algorithm = iota
	// PL adds software pipelining of global loads (Fig. 5), after
	// Nath et al. / Kurzak et al.
	PL
	// DB double-buffers local memory (Fig. 6), after Tan et al.
	DB
)

// String returns the paper's abbreviation.
func (a Algorithm) String() string {
	switch a {
	case PL:
		return "PL"
	case DB:
		return "DB"
	default:
		return "BA"
	}
}

// Algorithms lists all three schedules.
var Algorithms = []Algorithm{BA, PL, DB}

// ParseAlgorithm converts "BA"/"PL"/"DB" to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "BA":
		return BA, nil
	case "PL":
		return PL, nil
	case "DB":
		return DB, nil
	}
	return 0, fmt.Errorf("codegen: unknown algorithm %q", s)
}

// Params is one point in the code generator's search space. The eight
// blocking-related parameters (Mwg, Nwg, Kwg, MdimC, NdimC, MdimA,
// NdimB, Kwi) are the paper's §III-F count; none is restricted to powers
// of two.
type Params struct {
	Precision matrix.Precision
	Algorithm Algorithm

	// Work-group blocking factors (§III-A).
	Mwg, Nwg, Kwg int

	// Work-group shape; the work-item blocking factors are derived:
	// Mwi = Mwg/MdimC, Nwi = Nwg/NdimC.
	MdimC, NdimC int

	// Load-reshape parameters for cooperative local-memory loads
	// (§III-C); KdimA = MdimC·NdimC/MdimA, KdimB = MdimC·NdimC/NdimB.
	// Ignored for matrices not staged through local memory.
	MdimA, NdimB int

	// Kwi is the unrolling depth of the innermost loop (§III-A).
	Kwi int

	// VectorWidth is the OpenCL vector-variable width vw (§III-B).
	VectorWidth int

	// StrideM/StrideN select non-unit (interleaved) stride access in
	// the M/N direction (§III-B, Fig. 2(b)).
	StrideM, StrideN bool

	// SharedA/SharedB stage the A/B operand through local memory
	// (§III-C).
	SharedA, SharedB bool

	// LayoutA/LayoutB are the data layouts of the copied operands
	// (§III-D, Fig. 3).
	LayoutA, LayoutB matrix.Layout
}

// Mwi returns the work-item blocking factor in M.
func (p *Params) Mwi() int { return p.Mwg / p.MdimC }

// Nwi returns the work-item blocking factor in N.
func (p *Params) Nwi() int { return p.Nwg / p.NdimC }

// KdimA returns the derived reshape height for A loads.
func (p *Params) KdimA() int { return p.MdimC * p.NdimC / p.MdimA }

// KdimB returns the derived reshape height for B loads.
func (p *Params) KdimB() int { return p.MdimC * p.NdimC / p.NdimB }

// MwiA returns elements of A each work-item loads per row of the
// cooperative load (Mwg/MdimA).
func (p *Params) MwiA() int { return p.Mwg / p.MdimA }

// KwiA returns rows of A each work-item loads cooperatively (Kwg/KdimA).
func (p *Params) KwiA() int { return p.Kwg / p.KdimA() }

// KwiB returns rows of B each work-item loads cooperatively (Kwg/KdimB).
func (p *Params) KwiB() int { return p.Kwg / p.KdimB() }

// NwiB returns elements of B each work-item loads per row (Nwg/NdimB).
func (p *Params) NwiB() int { return p.Nwg / p.NdimB }

// WGSize returns work-items per work-group (MdimC·NdimC).
func (p *Params) WGSize() int { return p.MdimC * p.NdimC }

// LCM returns the least common multiple of the work-group blocking
// factors, the granularity at which the search procedure picks problem
// sizes (§III-F).
func (p *Params) LCM() int {
	return lcm(lcm(p.Mwg, p.Nwg), p.Kwg)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// UsesLocalMemory reports whether either operand is staged through
// local memory.
func (p *Params) UsesLocalMemory() bool { return p.SharedA || p.SharedB }

// Validate checks internal consistency of the parameter set. Invalid
// sets correspond to the paper's "kernels which fail in code
// generation"; they are discarded by the search engine and not counted.
func (p *Params) Validate() error {
	if p.Mwg <= 0 || p.Nwg <= 0 || p.Kwg <= 0 {
		return errors.New("codegen: blocking factors must be positive")
	}
	if p.MdimC <= 0 || p.NdimC <= 0 {
		return errors.New("codegen: work-group dimensions must be positive")
	}
	if p.Kwi <= 0 {
		return errors.New("codegen: Kwi must be positive")
	}
	if p.Mwg%p.MdimC != 0 {
		return fmt.Errorf("codegen: Mwg=%d not divisible by MdimC=%d", p.Mwg, p.MdimC)
	}
	if p.Nwg%p.NdimC != 0 {
		return fmt.Errorf("codegen: Nwg=%d not divisible by NdimC=%d", p.Nwg, p.NdimC)
	}
	kwgSpan := p.Kwg
	if p.Algorithm == DB {
		// DB processes Kwg in two half-buffers (Fig. 6).
		if p.Kwg%2 != 0 {
			return fmt.Errorf("codegen: DB requires even Kwg, got %d", p.Kwg)
		}
		kwgSpan = p.Kwg / 2
	}
	if kwgSpan%p.Kwi != 0 {
		return fmt.Errorf("codegen: inner span %d not divisible by Kwi=%d", kwgSpan, p.Kwi)
	}
	switch p.VectorWidth {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("codegen: vector width %d not in {1,2,4,8}", p.VectorWidth)
	}
	if p.Nwi()%p.VectorWidth != 0 {
		return fmt.Errorf("codegen: Nwi=%d not divisible by vector width %d", p.Nwi(), p.VectorWidth)
	}
	wg := p.WGSize()
	if p.SharedA {
		if p.MdimA <= 0 {
			return errors.New("codegen: MdimA must be positive when A is shared")
		}
		if wg%p.MdimA != 0 {
			return fmt.Errorf("codegen: work-group size %d not divisible by MdimA=%d", wg, p.MdimA)
		}
		if p.Mwg%p.MdimA != 0 {
			return fmt.Errorf("codegen: Mwg=%d not divisible by MdimA=%d", p.Mwg, p.MdimA)
		}
		if p.Kwg%p.KdimA() != 0 {
			return fmt.Errorf("codegen: Kwg=%d not divisible by KdimA=%d", p.Kwg, p.KdimA())
		}
		if p.Algorithm == DB && p.KwiA()%2 != 0 {
			return fmt.Errorf("codegen: DB requires even KwiA, got %d", p.KwiA())
		}
	}
	if p.SharedB {
		if p.NdimB <= 0 {
			return errors.New("codegen: NdimB must be positive when B is shared")
		}
		if wg%p.NdimB != 0 {
			return fmt.Errorf("codegen: work-group size %d not divisible by NdimB=%d", wg, p.NdimB)
		}
		if p.Nwg%p.NdimB != 0 {
			return fmt.Errorf("codegen: Nwg=%d not divisible by NdimB=%d", p.Nwg, p.NdimB)
		}
		if p.Kwg%p.KdimB() != 0 {
			return fmt.Errorf("codegen: Kwg=%d not divisible by KdimB=%d", p.Kwg, p.KdimB())
		}
		if p.Algorithm == DB && p.KwiB()%2 != 0 {
			return fmt.Errorf("codegen: DB requires even KwiB, got %d", p.KwiB())
		}
	}
	if p.Algorithm == DB && !p.UsesLocalMemory() {
		return errors.New("codegen: DB requires at least one operand in local memory")
	}
	for _, l := range []matrix.Layout{p.LayoutA, p.LayoutB} {
		switch l {
		case matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL:
		default:
			return fmt.Errorf("codegen: unknown layout %d", l)
		}
	}
	return nil
}

// CheckDevice verifies the parameter set against a device: work-group
// limits, local-memory capacity, and device quirks. These correspond to
// the paper's "kernels which fail in compilation or testing".
func (p *Params) CheckDevice(d *device.Spec) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if wg := p.WGSize(); wg > d.MaxWGSize {
		return fmt.Errorf("codegen: work-group size %d exceeds %s limit %d", wg, d.CodeName, d.MaxWGSize)
	}
	r := p.Resources()
	if r.LDSBytes > d.LocalMemBytes() {
		return fmt.Errorf("codegen: %d bytes of local memory exceed %s capacity %d",
			r.LDSBytes, d.CodeName, d.LocalMemBytes())
	}
	if d.PLDoubleFails && p.Algorithm == PL && p.Precision == matrix.Double {
		// Reproduces the paper's note: "DGEMM kernels with PL algorithm
		// always fail to execute on the Bulldozer."
		return fmt.Errorf("codegen: PL double-precision kernels fail to execute on %s", d.CodeName)
	}
	return nil
}

// MinK returns the smallest K the generated kernel supports: PL needs a
// prologue plus at least one pipelined iteration (2·Kwg); the others
// need one Kwg panel.
func (p *Params) MinK() int {
	if p.Algorithm == PL || p.Algorithm == DB {
		return 2 * p.Kwg
	}
	return p.Kwg
}

// Name returns a compact identifier encoding the full parameter set,
// used as the generated kernel's function name suffix and in logs.
func (p *Params) Name() string {
	stride := ""
	if p.StrideM {
		stride += "M"
	}
	if p.StrideN {
		stride += "N"
	}
	if stride == "" {
		stride = "U"
	}
	shared := ""
	if p.SharedA {
		shared += "A"
	}
	if p.SharedB {
		shared += "B"
	}
	if shared == "" {
		shared = "0"
	}
	return fmt.Sprintf("%s_%s_wg%dx%dx%d_wi%dx%dx%d_d%dx%d_a%dx%d_v%d_s%s_lm%s_%s%s",
		p.Precision.GEMMName(), p.Algorithm,
		p.Mwg, p.Nwg, p.Kwg,
		p.Mwi(), p.Nwi(), p.Kwi,
		p.MdimC, p.NdimC, p.MdimA, p.NdimB,
		p.VectorWidth, stride, shared,
		p.LayoutA, p.LayoutB)
}
