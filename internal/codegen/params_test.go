package codegen

import (
	"strings"
	"testing"
	"testing/quick"

	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// tahitiSGEMM returns the paper's fastest Tahiti SGEMM kernel parameters
// (Table II): Mwg,Nwg,Kwg = 96,96,16; Mwi,Nwi,Kwi = 6,6,2;
// MdimC,NdimC = 16,16; vw = 1; shared A,B; CBL/CBL; BA.
func tahitiSGEMM() Params {
	return Params{
		Precision: matrix.Single, Algorithm: BA,
		Mwg: 96, Nwg: 96, Kwg: 16,
		MdimC: 16, NdimC: 16,
		MdimA: 16, NdimB: 16,
		Kwi:         2,
		VectorWidth: 1,
		SharedA:     true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
}

// tahitiDGEMM returns the paper's fastest Tahiti DGEMM kernel (Table II):
// 96,32,48; wi 6,2,2; dims 16,16; vw 2; shared B; CBL/CBL; BA.
func tahitiDGEMM() Params {
	return Params{
		Precision: matrix.Double, Algorithm: BA,
		Mwg: 96, Nwg: 32, Kwg: 48,
		MdimC: 16, NdimC: 16,
		MdimA: 16, NdimB: 16,
		Kwi:         2,
		VectorWidth: 2,
		SharedB:     true,
		LayoutA:     matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
}

func TestPaperParamsValidate(t *testing.T) {
	configs := map[string]Params{
		"tahiti-sgemm": tahitiSGEMM(),
		"tahiti-dgemm": tahitiDGEMM(),
		// Fermi DGEMM (Table II): 64,64,8; wi 4,4,2; 16,16; a 64,4;
		// b 4,64; vw 1; stride N; shared A,B; CBL,RBL; PL.
		"fermi-dgemm": {
			Precision: matrix.Double, Algorithm: PL,
			Mwg: 64, Nwg: 64, Kwg: 8,
			MdimC: 16, NdimC: 16, MdimA: 64, NdimB: 64,
			Kwi: 2, VectorWidth: 1, StrideN: true,
			SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL,
		},
		// Bulldozer DGEMM (Table II): 48,32,96; wi 2,8,16; 24,4; DB.
		"bulldozer-dgemm": {
			Precision: matrix.Double, Algorithm: DB,
			Mwg: 48, Nwg: 32, Kwg: 96,
			MdimC: 24, NdimC: 4, MdimA: 24, NdimB: 2,
			Kwi: 16, VectorWidth: 2, StrideM: true,
			SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL,
		},
	}
	for name, p := range configs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: paper's own config rejected: %v", name, err)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := tahitiSGEMM()
	if p.Mwi() != 6 || p.Nwi() != 6 {
		t.Errorf("Mwi/Nwi = %d/%d, want 6/6", p.Mwi(), p.Nwi())
	}
	if p.WGSize() != 256 {
		t.Errorf("WGSize = %d, want 256", p.WGSize())
	}
	if p.KdimA() != 16 || p.KdimB() != 16 {
		t.Errorf("KdimA/KdimB = %d/%d, want 16/16", p.KdimA(), p.KdimB())
	}
	if p.MwiA() != 6 || p.KwiA() != 1 {
		t.Errorf("MwiA/KwiA = %d/%d, want 6/1", p.MwiA(), p.KwiA())
	}
	if p.LCM() != 96 {
		t.Errorf("LCM = %d, want 96", p.LCM())
	}
	d := tahitiDGEMM()
	if d.LCM() != lcm(lcm(96, 32), 48) {
		t.Errorf("LCM wrong for dgemm config")
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := func(f func(*Params)) Params {
		p := tahitiSGEMM()
		f(&p)
		return p
	}
	bad := map[string]Params{
		"mwg-not-divisible": mutate(func(p *Params) { p.Mwg = 100 }),
		"nwg-not-divisible": mutate(func(p *Params) { p.Nwg = 50 }),
		"kwi-not-divisible": mutate(func(p *Params) { p.Kwi = 3 }),
		"zero-kwi":          mutate(func(p *Params) { p.Kwi = 0 }),
		"negative-mwg":      mutate(func(p *Params) { p.Mwg = -96 }),
		"bad-vector-width":  mutate(func(p *Params) { p.VectorWidth = 3 }),
		"nwi-not-vectorize": mutate(func(p *Params) { p.VectorWidth = 4 }), // Nwi=6
		"mdima-not-div-wg":  mutate(func(p *Params) { p.MdimA = 24; p.Kwg = 17 }),
		"mdima-zero-shared": mutate(func(p *Params) { p.MdimA = 0 }),
		"mwg-not-div-mdima": mutate(func(p *Params) { p.MdimA = 64 }),
		"db-odd-kwg":        mutate(func(p *Params) { p.Algorithm = DB; p.Kwg = 15; p.Kwi = 1 }),
		"db-without-local":  mutate(func(p *Params) { p.Algorithm = DB; p.SharedA = false; p.SharedB = false }),
		"unknown-layout":    mutate(func(p *Params) { p.LayoutA = matrix.Layout(99) }),
		"zero-mdimc":        mutate(func(p *Params) { p.MdimC = 0 }),
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation failure", name)
		}
	}
}

func TestCheckDevice(t *testing.T) {
	tahiti := device.Tahiti()
	p := tahitiSGEMM()
	if err := p.CheckDevice(tahiti); err != nil {
		t.Errorf("paper's Tahiti kernel rejected on Tahiti: %v", err)
	}

	// Work-group too large for AMD (max 256).
	big := p
	big.MdimC, big.NdimC = 32, 16
	big.Mwg, big.Nwg = 96*2, 96 // keep divisibility: Mwi=6
	big.MdimA, big.NdimB = 32, 32
	if err := big.CheckDevice(tahiti); err == nil {
		t.Error("512-item work-group must fail on Tahiti")
	}

	// Local memory overflow: huge shared panels.
	fat := p
	fat.Mwg, fat.Nwg, fat.Kwg = 96, 96, 96
	fat.Kwi = 2
	if fat.Resources().LDSBytes <= tahiti.LocalMemBytes() {
		t.Skip("test premise wrong")
	}
	if err := fat.CheckDevice(tahiti); err == nil {
		t.Error("LDS overflow must fail")
	}

	// Bulldozer PL-double quirk.
	bd := device.Bulldozer()
	pl := tahitiDGEMM()
	pl.Algorithm = PL
	if err := pl.CheckDevice(bd); err == nil {
		t.Error("PL DGEMM must fail on Bulldozer (paper §IV-A)")
	}
	if err := pl.CheckDevice(tahiti); err != nil {
		t.Errorf("PL DGEMM should work on Tahiti: %v", err)
	}
	plS := pl
	plS.Precision = matrix.Single
	plS.VectorWidth = 1
	if err := plS.CheckDevice(bd); err != nil {
		t.Errorf("PL SGEMM should work on Bulldozer: %v", err)
	}
}

func TestMinK(t *testing.T) {
	p := tahitiSGEMM()
	if p.MinK() != 16 {
		t.Errorf("BA MinK = %d, want Kwg", p.MinK())
	}
	p.Algorithm = PL
	if p.MinK() != 32 {
		t.Errorf("PL MinK = %d, want 2*Kwg", p.MinK())
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range Algorithms {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("algorithm round trip failed for %s", a)
		}
	}
	if _, err := ParseAlgorithm("XX"); err == nil {
		t.Error("ParseAlgorithm should reject XX")
	}
}

func TestNameEncodesParams(t *testing.T) {
	p := tahitiDGEMM()
	n := p.Name()
	for _, frag := range []string{"DGEMM", "BA", "wg96x32x48", "v2", "lmB", "CBL"} {
		if !strings.Contains(n, frag) {
			t.Errorf("Name() = %q missing %q", n, frag)
		}
	}
	q := tahitiSGEMM()
	if q.Name() == n {
		t.Error("distinct params must have distinct names")
	}
}

func TestResourcesSGEMMTahiti(t *testing.T) {
	p := tahitiSGEMM()
	r := p.Resources()
	// LDS: (96*16 + 16*96) * 4 bytes = 12288.
	if r.LDSBytes != 12288 {
		t.Errorf("LDSBytes = %d, want 12288", r.LDSBytes)
	}
	// Registers: C 36 + live fragments 12 + 10 overhead = 58 words.
	if r.RegWordsPerWI != 58 {
		t.Errorf("RegWordsPerWI = %d, want 58", r.RegWordsPerWI)
	}
	// The paper's Kepler SGEMM kernel (PL, 8x4, MdimA 32, NdimB 32)
	// must fit Kepler's 63-register limit.
	kep := Params{
		Precision: matrix.Single, Algorithm: PL,
		Mwg: 64, Nwg: 64, Kwg: 8,
		MdimC: 8, NdimC: 16, MdimA: 32, NdimB: 32,
		Kwi: 8, VectorWidth: 2, StrideM: true,
		SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	if err := kep.Validate(); err != nil {
		t.Fatalf("Kepler paper config invalid: %v", err)
	}
	if kr := kep.Resources(); kr.RegWordsPerWI > 63 {
		t.Errorf("Kepler paper config needs %d regs, should fit 63", kr.RegWordsPerWI)
	}
	if r.UniqueAElems != 96*16 || r.UniqueBElems != 16*96 {
		t.Errorf("unique elems wrong: %d %d", r.UniqueAElems, r.UniqueBElems)
	}
	// Both shared: raw == unique.
	if r.RawAElems != r.UniqueAElems || r.RawBElems != r.UniqueBElems {
		t.Errorf("shared operands must have raw == unique")
	}
	if r.BarriersPerIter != 2 {
		t.Errorf("BA barriers = %d, want 2", r.BarriersPerIter)
	}
	// LDS reads: (6*16 + 16*6) * 256 work-items.
	if r.LDSReadElems != (6*16+16*6)*256 {
		t.Errorf("LDSReadElems = %d", r.LDSReadElems)
	}
}

func TestResourcesDGEMMTahitiSharedBOnly(t *testing.T) {
	p := tahitiDGEMM()
	r := p.Resources()
	// Only B shared: LDS = 48*32*8 = 12288.
	if r.LDSBytes != 12288 {
		t.Errorf("LDSBytes = %d, want 12288", r.LDSBytes)
	}
	// A not shared: raw = unique * NdimC.
	if r.RawAElems != 96*48*16 {
		t.Errorf("RawAElems = %d, want %d", r.RawAElems, 96*48*16)
	}
	if r.RawBElems != 48*32 {
		t.Errorf("RawBElems = %d, want %d", r.RawBElems, 48*32)
	}
}

func TestResourcesAlgorithmEffects(t *testing.T) {
	base := tahitiSGEMM()
	ba := base.Resources()

	pl := base
	pl.Algorithm = PL
	rpl := pl.Resources()
	if rpl.RegWordsPerWI <= ba.RegWordsPerWI {
		t.Error("PL must use more registers than BA (staging)")
	}
	if rpl.LDSBytes != ba.LDSBytes {
		t.Error("PL LDS must equal BA LDS")
	}
	if rpl.BarriersPerIter != 3 {
		t.Errorf("PL barriers = %d, want 3", rpl.BarriersPerIter)
	}

	db := base
	db.Algorithm = DB
	rdb := db.Resources()
	if rdb.LDSBytes != ba.LDSBytes {
		t.Error("DB total LDS must equal BA's (two half-panel buffers, Fig. 6)")
	}
	if rdb.RegWordsPerWI >= rpl.RegWordsPerWI {
		t.Error("DB must use fewer registers than PL (its advantage, §III-E)")
	}
}

func TestResourcesNoLocal(t *testing.T) {
	p := tahitiSGEMM()
	p.SharedA, p.SharedB = false, false
	r := p.Resources()
	if r.LDSBytes != 0 || r.BarriersPerIter != 0 || r.LDSReadElems != 0 {
		t.Error("non-shared kernel must not use LDS or barriers")
	}
	if r.RawAElems != r.UniqueAElems*p.NdimC {
		t.Error("direct A loads must be redundant by NdimC")
	}
}

func TestStrideDisablesVectorLoadsForDirectOperands(t *testing.T) {
	p := tahitiSGEMM()
	p.SharedA, p.SharedB = false, false
	p.StrideM, p.StrideN = true, true
	p.VectorWidth = 2
	r := p.Resources()
	if r.GlobalLoadWidthA != 1 || r.GlobalLoadWidthB != 1 {
		t.Error("interleaved direct loads must be scalar")
	}
	p.SharedA, p.SharedB = true, true
	r = p.Resources()
	if r.GlobalLoadWidthA != 2 || r.GlobalLoadWidthB != 2 {
		t.Error("cooperative loads keep vector width")
	}
}

// Property: for any valid parameter set, resources are positive and
// consistent.
func TestResourcesConsistencyProperty(t *testing.T) {
	f := func(mi, ni, ki, mc, nc, vwSel, algSel uint8, sharedA, sharedB bool) bool {
		p := Params{
			Precision:   matrix.Single,
			Algorithm:   Algorithms[algSel%3],
			MdimC:       int(mc%8) + 1,
			NdimC:       int(nc%8) + 1,
			Kwi:         1 << (ki % 3),
			VectorWidth: 1,
			SharedA:     sharedA, SharedB: sharedB,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
		}
		p.Mwg = p.MdimC * (int(mi%6) + 1)
		p.Nwg = p.NdimC * (int(ni%6) + 1)
		p.Kwg = p.Kwi * 2 * (int(ki%4) + 1)
		p.MdimA = p.MdimC
		p.NdimB = p.NdimC
		// Reshape divisibility may still fail; skip those.
		if err := p.Validate(); err != nil {
			return true
		}
		r := p.Resources()
		if r.RegWordsPerWI <= 0 || r.WGSize != p.MdimC*p.NdimC {
			return false
		}
		if r.RawAElems < r.UniqueAElems || r.RawBElems < r.UniqueBElems {
			return false
		}
		if (p.SharedA || p.SharedB) != (r.LDSBytes > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
