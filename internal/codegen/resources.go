package codegen

// ResourceUsage summarizes the static footprint of a generated kernel.
// All per-iteration quantities refer to one Kwg panel processed by one
// work-group. The performance model converts these into time.
type ResourceUsage struct {
	// WGSize is work-items per work-group.
	WGSize int

	// RegWordsPerWI estimates 32-bit register words per work-item:
	// the C accumulator block, the private A/B fragments, algorithm
	// staging registers, and addressing overhead.
	RegWordsPerWI int

	// LDSBytes is local memory per work-group (0 when nothing shared;
	// doubled for DB).
	LDSBytes int

	// UniqueAElems/UniqueBElems are the distinct elements of A/B a
	// work-group consumes per Kwg iteration.
	UniqueAElems, UniqueBElems int

	// RawAElems/RawBElems are the elements actually requested from
	// global memory per iteration: equal to the unique counts for
	// operands staged through local memory (cooperative loads touch
	// each element once), and unique × redundancy for direct loads,
	// where the redundancy is the number of work-items sharing each
	// element (NdimC for A, MdimC for B). Caches absorb part of the
	// redundant traffic; how much is a device property.
	RawAElems, RawBElems int

	// LDSReadElems is the number of local-memory elements read per
	// work-group per Kwg iteration by the compute phase.
	LDSReadElems int

	// BarriersPerIter is the number of work-group barriers per Kwg
	// iteration (0 when local memory is unused).
	BarriersPerIter int

	// GlobalLoadWidthA/B is the width in elements of each global load
	// instruction for the operand (vector loads when the contiguous
	// run allows it).
	GlobalLoadWidthA, GlobalLoadWidthB int
}

// Resources computes the kernel's static resource usage.
func (p *Params) Resources() ResourceUsage {
	wpe := p.Precision.Size() / 4 // 32-bit words per element
	mwi, nwi := p.Mwi(), p.Nwi()

	var r ResourceUsage
	r.WGSize = p.WGSize()

	// Register estimate per work-item: the C accumulator block is fully
	// live; of the A/B fragments only the current row/column of the
	// unrolled multiply is live at a time (compilers rotate fragment
	// registers), plus addressing overhead.
	regs := mwi*nwi*wpe + // C accumulators
		(mwi+nwi)*wpe + // live A/B fragment row+column
		10 // indices, pointers, loop counters
	switch p.Algorithm {
	case PL:
		// The pipelined loads stage the next panel in private memory
		// (Fig. 5 lines 6-7): MwiA·KwiA + KwiB·NwiB extra elements.
		staging := 0
		if p.SharedA {
			staging += p.MwiA() * p.KwiA()
		} else {
			staging += mwi + p.Kwi
		}
		if p.SharedB {
			staging += p.KwiB() * p.NwiB()
		} else {
			staging += p.Kwi + nwi
		}
		regs += staging * wpe
	case DB:
		// DB keeps pressure low (its advantage per §III-E); only the
		// half-panel load indices add registers.
		regs += 4
	}
	r.RegWordsPerWI = regs

	// Local memory. DB double-buffers *half* panels (Fig. 6 loads
	// MwiA·(KwiA/2) elements per buffer), so its total equals BA's one
	// full panel; the paper's Bulldozer DB configuration only fits the
	// device's 32 KB local memory under this reading.
	lds := 0
	if p.SharedA {
		lds += p.Mwg * p.Kwg * p.Precision.Size()
	}
	if p.SharedB {
		lds += p.Kwg * p.Nwg * p.Precision.Size()
	}
	r.LDSBytes = lds

	// Global traffic per Kwg iteration.
	r.UniqueAElems = p.Mwg * p.Kwg
	r.UniqueBElems = p.Kwg * p.Nwg
	if p.SharedA {
		r.RawAElems = r.UniqueAElems
	} else {
		r.RawAElems = r.UniqueAElems * p.NdimC
	}
	if p.SharedB {
		r.RawBElems = r.UniqueBElems
	} else {
		r.RawBElems = r.UniqueBElems * p.MdimC
	}

	// Local-memory read traffic by the compute phase: each work-item
	// reads Mwi·Kwg elements of A and Kwg·Nwi of B per iteration from
	// wherever they are staged.
	ldsReads := 0
	if p.SharedA {
		ldsReads += mwi * p.Kwg * r.WGSize
	}
	if p.SharedB {
		ldsReads += p.Kwg * nwi * r.WGSize
	}
	r.LDSReadElems = ldsReads

	// Barriers per Kwg iteration (Figs. 4-6).
	if p.UsesLocalMemory() {
		switch p.Algorithm {
		case BA:
			r.BarriersPerIter = 2
		case PL:
			r.BarriersPerIter = 3
		case DB:
			r.BarriersPerIter = 2
		}
	}

	// Global load widths: loads run along the contiguous direction of
	// the operand's layout. Block-major layouts keep Mwg/Nwg-wide rows
	// contiguous so vector loads of the full vw are possible; row-major
	// still has contiguous rows (stride N), so width is vw as well —
	// the difference between layouts is modeled as stream efficiency,
	// not load width. Direct (non-shared) strided loads in the
	// interleaved scheme fall back to scalar width.
	r.GlobalLoadWidthA = p.VectorWidth
	r.GlobalLoadWidthB = p.VectorWidth
	if !p.SharedA && p.StrideM {
		r.GlobalLoadWidthA = 1
	}
	if !p.SharedB && p.StrideN {
		r.GlobalLoadWidthB = 1
	}
	return r
}
