// Span tracing: named wall-clock regions with bytes/flops attributes,
// recorded into a fixed-capacity ring buffer and exportable as
// JSON-lines. The tracer answers "where did this call's time go" —
// pack vs. kernel vs. copy vs. steal/requeue — at single-span
// granularity, complementing the registry's aggregates.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity bounds a tracer's ring buffer when no explicit
// capacity is given.
const DefaultTraceCapacity = 4096

// maxSpanAttrs bounds per-span key=value attributes; extras are
// dropped. Spans carry Bytes and Flops as first-class fields, so
// attributes are for low-cardinality identity (device, kernel, cause).
const maxSpanAttrs = 4

type spanAttr struct{ key, value string }

// Span is one in-flight region. Obtain it from Tracer.Start (or the
// context-carrying StartSpan), decorate it, then End it. A nil Span
// (from a nil Tracer) ignores every call.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
	bytes int64
	flops int64
	attrs [maxSpanAttrs]spanAttr
	n     int
}

// SetBytes records how many host bytes the region moved.
func (s *Span) SetBytes(n int64) *Span {
	if s != nil {
		s.bytes = n
	}
	return s
}

// SetFlops records how many floating-point operations the region
// performed.
func (s *Span) SetFlops(n int64) *Span {
	if s != nil {
		s.flops = n
	}
	return s
}

// SetAttr attaches one key=value attribute (device, kernel, cause).
// At most 4 attributes are kept per span.
func (s *Span) SetAttr(key, value string) *Span {
	if s != nil && s.n < maxSpanAttrs {
		s.attrs[s.n] = spanAttr{key, value}
		s.n++
	}
	return s
}

// End closes the region and commits it to the tracer's ring buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		Seconds: time.Since(s.start).Seconds(),
		Bytes:   s.bytes,
		Flops:   s.flops,
	}
	if s.n > 0 {
		rec.Attrs = make(map[string]string, s.n)
		for i := 0; i < s.n; i++ {
			rec.Attrs[s.attrs[i].key] = s.attrs[i].value
		}
	}
	s.tr.record(rec)
}

// SpanRecord is one completed region, the unit of the JSON-lines
// export.
type SpanRecord struct {
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	Seconds float64           `json:"seconds"`
	Bytes   int64             `json:"bytes,omitempty"`
	Flops   int64             `json:"flops,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer records completed spans into a ring buffer of fixed capacity,
// overwriting the oldest when full (Dropped counts the overwritten).
// All methods are safe for concurrent use; a nil *Tracer is a no-op,
// so instrumented code needs no branches.
type Tracer struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int // insertion index once the buffer has wrapped
	wrapped bool
	dropped uint64
}

// NewTracer returns a tracer keeping the most recent capacity spans
// (capacity <= 0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]SpanRecord, 0, capacity)}
}

// Start opens a span; the caller must End it. Nil tracers return a nil
// (no-op) span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, start: time.Now()}
}

// Event records an instantaneous occurrence (a steal, a requeue, a
// member death) as a zero-duration span.
func (t *Tracer) Event(name string) *Span {
	return t.Start(name)
}

func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.next] = rec
		t.next = (t.next + 1) % cap(t.buf)
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of spans currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many spans were overwritten by newer ones.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the buffered spans oldest-first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// WriteJSONL writes the buffered spans oldest-first, one JSON object
// per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

type tracerCtxKey struct{}

// NewContext returns ctx carrying the tracer for StartSpan.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// FromContext returns the tracer carried by ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerCtxKey{}).(*Tracer)
	return t
}

// StartSpan opens a span on the context's tracer (a no-op span when
// the context carries none): ctx, sp := obs.StartSpan(ctx, "pack.A").
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, FromContext(ctx).Start(name)
}
