// Package obs is the repository's observability layer: a
// dependency-free metrics registry (counters, gauges, histograms with
// fixed bucket boundaries) and a lightweight span tracer (trace.go).
//
// The paper's whole argument rests on measurement — the tuner picks
// kernels by timing them and the full-GEMM design amortizes O(N²) copy
// against O(N³) math — so the execution layers (clsim, gemmimpl, the
// tuner, sched) publish what they do here instead of asserting it via
// ad-hoc test arithmetic, following GEMMbench's case for reproducible,
// exportable measurement harnesses.
//
// Design constraints, in order:
//
//   - The hot path is atomic: Counter.Add, Gauge.Set and
//     Histogram.Observe never take the registry lock.
//   - Everything is nil-safe: a nil *Registry hands out nil instruments
//     whose methods are no-ops, so instrumented code needs no branches
//     and pays only a predicted-not-taken nil check when observability
//     is off.
//   - No dependencies beyond the standard library.
//
// Metric names are dotted paths, "layer.noun.verb" style
// ("clsim.kernel.launches", "gemm.plan.miss"); a per-entity dimension
// is folded into the name with Label ("sched.tiles{device=tahiti}").
// Durations are histograms in seconds named "*.seconds".
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level (live buffers, bytes in flight). The
// zero value is ready to use; a nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// TimeBuckets are the default histogram boundaries for "*.seconds"
// metrics: decades from 1µs to 10s, bracketing everything from one
// atomic update to a full simulated 8192³ GEMM.
var TimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram counts observations into fixed, ascending bucket upper
// bounds (bucket i counts v <= bounds[i]; one overflow bucket catches
// the rest) and tracks the running sum. Observe is lock-free. A nil
// Histogram discards observations.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// export: counts are loaded bucket by bucket, so a snapshot taken
// mid-update may be off by in-flight observations, never torn.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is overflow
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry hands out named instruments. Lookup takes a read lock; the
// instruments themselves are lock-free, so callers on hot paths should
// resolve handles once and keep them. A nil *Registry hands out nil
// instruments, making "observability off" free at every call site.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (no bounds selects TimeBuckets). Later
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = TimeBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Label folds one dimension into a metric name:
// Label("sched.tiles", "device", "tahiti") = "sched.tiles{device=tahiti}".
func Label(name, key, value string) string {
	return name + "{" + key + "=" + value + "}"
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value. Nil registries
// yield an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range histograms {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as one indented JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Render formats the snapshot as an aligned, name-sorted table:
// counters and gauges one per line, histograms as count/sum/mean.
func (s Snapshot) Render() string {
	var b strings.Builder
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%-48s %14d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%-48s %14d  (gauge)", k, v))
	}
	for k, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		lines = append(lines, fmt.Sprintf("%-48s %14d  sum=%.6f mean=%.6f", k, h.Count, h.Sum, mean))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
