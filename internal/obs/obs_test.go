package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if want := 0.5 + 1 + 5 + 10 + 50 + 1000; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
	// v <= bound lands in that bound's bucket; beyond the last bound
	// lands in the overflow bucket.
	wantCounts := []int64{2, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewRegistry().Histogram("h", TimeBuckets...)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Errorf("sum = %g, want 8.0", h.Sum())
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(1)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}

	var tr *Tracer
	sp := tr.Start("x")
	sp.SetBytes(1).SetFlops(2).SetAttr("k", "v")
	sp.End()
	if tr.Len() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracer recorded spans")
	}
}

func TestTracerRingBufferWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		sp := tr.Start(string(rune('a' + i)))
		sp.End()
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
	snap := tr.Snapshot()
	got := ""
	for _, s := range snap {
		got += s.Name
	}
	if got != "defg" {
		t.Errorf("snapshot order = %q, want oldest-first \"defg\"", got)
	}
}

func TestTracerJSONLinesValid(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("gemm.pack.A")
	sp.SetBytes(4096).SetFlops(128).SetAttr("device", "tahiti")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Event("sched.steal").SetAttr("device", "fermi").End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var recs []SpanRecord
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "gemm.pack.A" || recs[0].Bytes != 4096 || recs[0].Flops != 128 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[0].Seconds <= 0 {
		t.Errorf("span duration not positive: %v", recs[0].Seconds)
	}
	if recs[0].Attrs["device"] != "tahiti" {
		t.Errorf("attrs = %v", recs[0].Attrs)
	}
}

func TestContextSpan(t *testing.T) {
	tr := NewTracer(8)
	ctx := NewContext(context.Background(), tr)
	_, sp := StartSpan(ctx, "region")
	sp.End()
	if tr.Len() != 1 {
		t.Errorf("context span not recorded; len = %d", tr.Len())
	}
	// A context without a tracer yields a working no-op span.
	_, sp = StartSpan(context.Background(), "region")
	sp.SetBytes(1)
	sp.End()
}

func TestPhaseBreakdownAndRender(t *testing.T) {
	spans := []SpanRecord{
		{Name: "gemm.kernel", Seconds: 0.5},
		{Name: "gemm.pack.A", Seconds: 0.2, Bytes: 100},
		{Name: "gemm.pack.A", Seconds: 0.1, Bytes: 50},
		{Name: "gemm.copy.out", Seconds: 0.05, Bytes: 25},
	}
	phases := PhaseBreakdown(spans)
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	if phases[0].Name != "gemm.kernel" {
		t.Errorf("phases not time-ordered: %+v", phases)
	}
	if phases[1].Name != "gemm.pack.A" || phases[1].Calls != 2 || phases[1].Bytes != 150 {
		t.Errorf("pack.A aggregate = %+v", phases[1])
	}
	out := RenderPhases(phases)
	for _, want := range []string{"gemm.kernel", "gemm.pack.A", "total", "share"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("sched.tiles", "device", "tahiti")).Add(7)
	r.Histogram("gemm.phase.kernel.seconds").Observe(0.01)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if s.Counters["sched.tiles{device=tahiti}"] != 7 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Histograms["gemm.phase.kernel.seconds"].Count != 1 {
		t.Errorf("histograms = %v", s.Histograms)
	}
	if out := r.Snapshot().Render(); !strings.Contains(out, "sched.tiles{device=tahiti}") {
		t.Errorf("render missing counter:\n%s", out)
	}
}

func TestBenchReportJSON(t *testing.T) {
	rep := NewBenchReport("single")
	rep.Device = "tahiti"
	rep.M, rep.N, rep.K, rep.Iters = 192, 160, 128, 4
	rep.WallSeconds = 0.25
	rep.Phases = []Phase{{Name: "gemm.kernel", Calls: 4, Seconds: 0.2}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got BenchReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if got.Schema != "oclgemm-bench/v1" || got.Mode != "single" || len(got.Phases) != 1 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := time.Parse(time.RFC3339, got.Timestamp); err != nil {
		t.Errorf("timestamp %q not RFC3339: %v", got.Timestamp, err)
	}
}
