// Reporting: per-phase breakdowns aggregated from trace spans, an
// aligned table renderer, and the BENCH_gemm.json emitter that records
// the repository's performance trajectory across commits.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Phase is the aggregate of every span sharing one name: where a
// call's time went, the unit of the gemmbench -metrics table.
type Phase struct {
	Name    string  `json:"name"`
	Calls   int64   `json:"calls"`
	Seconds float64 `json:"seconds"`
	Bytes   int64   `json:"bytes,omitempty"`
	Flops   int64   `json:"flops,omitempty"`
}

// PhaseBreakdown aggregates span records by name, ordered by total
// time descending.
func PhaseBreakdown(spans []SpanRecord) []Phase {
	byName := map[string]*Phase{}
	for _, s := range spans {
		p := byName[s.Name]
		if p == nil {
			p = &Phase{Name: s.Name}
			byName[s.Name] = p
		}
		p.Calls++
		p.Seconds += s.Seconds
		p.Bytes += s.Bytes
		p.Flops += s.Flops
	}
	out := make([]Phase, 0, len(byName))
	for _, p := range byName {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderPhases formats phases as an aligned table with each phase's
// share of the total time.
func RenderPhases(phases []Phase) string {
	var total float64
	for _, p := range phases {
		total += p.Seconds
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %12s %7s %14s\n", "phase", "calls", "seconds", "share", "bytes")
	for _, p := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * p.Seconds / total
		}
		fmt.Fprintf(&b, "%-24s %8d %12.6f %6.1f%% %14d\n", p.Name, p.Calls, p.Seconds, share, p.Bytes)
	}
	fmt.Fprintf(&b, "%-24s %8s %12.6f %6.1f%%\n", "total", "", total, 100.0)
	return b.String()
}

// BenchReport is the BENCH_gemm.json schema: one instrumented
// benchmark run, self-describing enough to diff across commits.
type BenchReport struct {
	Schema      string  `json:"schema"` // "oclgemm-bench/v1"
	Timestamp   string  `json:"timestamp"`
	Mode        string  `json:"mode"` // "single" or "pool"
	Device      string  `json:"device,omitempty"`
	M           int     `json:"m"`
	N           int     `json:"n"`
	K           int     `json:"k"`
	Iters       int     `json:"iters"`
	WallSeconds float64 `json:"wall_seconds"`
	// GFlops is wall-clock throughput of the simulated run — a
	// regression canary for the engine's hot path, not a claim about
	// hardware.
	GFlops  float64  `json:"gflops"`
	Phases  []Phase  `json:"phases"`
	Metrics Snapshot `json:"metrics"`

	// Count and Entries extend the schema additively for batched runs:
	// Count is the strided-batch size and Entries holds one throughput
	// row per execution leg (warm batched, loop of single GEMMs, serve
	// path). Absent on single/pool reports, so v1 readers are unaffected.
	Count   int          `json:"count,omitempty"`
	Entries []BenchEntry `json:"entries,omitempty"`
}

// BenchEntry is one named throughput measurement inside a BenchReport:
// a leg of a comparative run, e.g. the batched path versus the
// loop-of-GEMMs baseline it must beat.
type BenchEntry struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	WallSeconds float64 `json:"wall_seconds"`
	GFlops      float64 `json:"gflops"`
}

// NewBenchReport stamps a report with the schema version and the
// current time.
func NewBenchReport(mode string) *BenchReport {
	return &BenchReport{
		Schema:    "oclgemm-bench/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Mode:      mode,
	}
}

// WriteJSON writes the report as one indented JSON object.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
