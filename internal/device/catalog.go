package device

// The six processors of Table I. Identity rows are the paper's values;
// where our copy of the table is truncated (CPU memory bandwidth) the
// part's published specification is used and noted. Architectural model
// fields come from the vendors' ISA/optimization guides for each
// microarchitecture. Calibration targets (paper Table II best-kernel
// results) are noted per device.

// Tahiti returns the AMD Radeon HD 7970 (GCN).
// Calibration targets: DGEMM 863 GFlop/s (91%), SGEMM 3047 GFlop/s (80%).
func Tahiti() *Spec {
	return &Spec{
		ID: "tahiti", CodeName: "Tahiti", Product: "Radeon HD 7970",
		Kind: GPU, ClockGHz: 0.925, BoostFactor: 1.0,
		ComputeUnits:  32,
		DPOpsPerClock: 1024, SPOpsPerClock: 4096,
		GlobalMemGB: 3, BandwidthGBs: 264,
		L3KB: 0, L2KB: 768, L1KB: 16,
		LocalMemKB: 64, LocalMem: Scratchpad,
		OpenCLSDK: "AMD APP 2.6", Driver: "Catalyst 12.3",

		Wavefront: 64, MaxWGSize: 256, MaxWGPerCU: 16, MaxWavesPerCU: 40,
		RegFileWords: 65536, MaxRegsPerWI: 256,

		BarrierCycles: 40, LDSBytesPerClk: 128, LDSBanks: 32,
		WavesForOverlap: 8, LaunchOverheadUS: 8,

		CacheReuseEff:      0.97,
		CoalesceUnitStride: 0.88, CoalesceNonUnit: 0.95,
		RowMajorEff: 0.55, BankConflictFactor: 0.35, CopyBWFrac: 0.70,

		VecWidthSP: 1, VecWidthDP: 1, MinILP: 8,
		ComputeEffSP: 0.87, ComputeEffDP: 0.98, SpillPenalty: 0.40,
		CalibDP: 1.16, CalibSP: 1.12,
	}
}

// Cayman returns the AMD Radeon HD 6970 (VLIW4). The paper observes that
// kernels using local memory run slower here (barrier cost), so the
// barrier cost is the distinguishing constant.
// Calibration targets: DGEMM 580 GFlop/s (86%), SGEMM 2167 GFlop/s (80%).
func Cayman() *Spec {
	return &Spec{
		ID: "cayman", CodeName: "Cayman", Product: "Radeon HD 6970",
		Kind: GPU, ClockGHz: 0.88, BoostFactor: 1.0,
		ComputeUnits:  24,
		DPOpsPerClock: 768, SPOpsPerClock: 3072,
		GlobalMemGB: 1, BandwidthGBs: 176,
		L3KB: 0, L2KB: 512, L1KB: 8,
		LocalMemKB: 32, LocalMem: Scratchpad,
		OpenCLSDK: "AMD APP 2.6", Driver: "Catalyst 11.11",

		Wavefront: 64, MaxWGSize: 256, MaxWGPerCU: 8, MaxWavesPerCU: 32,
		RegFileWords: 65536, MaxRegsPerWI: 256,

		BarrierCycles: 600, LDSBytesPerClk: 64, LDSBanks: 32,
		WavesForOverlap: 5, LaunchOverheadUS: 8,

		CacheReuseEff:      0.95,
		CoalesceUnitStride: 0.90, CoalesceNonUnit: 0.92,
		RowMajorEff: 0.55, BankConflictFactor: 0.45, CopyBWFrac: 0.65,

		VecWidthSP: 4, VecWidthDP: 2, MinILP: 4,
		ComputeEffSP: 0.87, ComputeEffDP: 0.93, SpillPenalty: 0.40,
		CalibDP: 1.14, CalibSP: 1.11,
	}
}

// Kepler returns the NVIDIA GeForce GTX 670 (overclocked). GPU Boost
// raises the sustained clock above the base used for Table I peaks,
// which is how the paper's DGEMM efficiency exceeds 100%.
// Calibration targets: DGEMM 128 GFlop/s (105%), SGEMM 1440 GFlop/s (49%).
func Kepler() *Spec {
	return &Spec{
		ID: "kepler", CodeName: "Kepler", Product: "GeForce GTX 670 OC",
		Kind: GPU, ClockGHz: 1.085, BoostFactor: 1.10,
		ComputeUnits:  7,
		DPOpsPerClock: 112, SPOpsPerClock: 2688,
		GlobalMemGB: 2, BandwidthGBs: 192,
		L3KB: 0, L2KB: 512, L1KB: 64,
		LocalMemKB: 48, LocalMem: Scratchpad,
		OpenCLSDK: "CUDA 5.0 RC", Driver: "304.33",

		Wavefront: 32, MaxWGSize: 1024, MaxWGPerCU: 16, MaxWavesPerCU: 64,
		RegFileWords: 65536, MaxRegsPerWI: 63,

		BarrierCycles: 30, LDSBytesPerClk: 128, LDSBanks: 32,
		WavesForOverlap: 12, LaunchOverheadUS: 6,

		CacheReuseEff:      0.75,
		CoalesceUnitStride: 0.45, CoalesceNonUnit: 0.95,
		RowMajorEff: 0.75, BankConflictFactor: 0.80, CopyBWFrac: 0.70,

		VecWidthSP: 1, VecWidthDP: 1, MinILP: 10,
		ComputeEffSP: 0.75, ComputeEffDP: 0.98, SpillPenalty: 0.40,
		CalibDP: 1.33, CalibSP: 1.23,
	}
}

// Fermi returns the NVIDIA Tesla M2090.
// Calibration targets: DGEMM 370 GFlop/s (56%), SGEMM 896 GFlop/s (67%).
func Fermi() *Spec {
	return &Spec{
		ID: "fermi", CodeName: "Fermi", Product: "Tesla M2090",
		Kind: GPU, ClockGHz: 1.3, BoostFactor: 1.0,
		ComputeUnits:  16,
		DPOpsPerClock: 512, SPOpsPerClock: 1024,
		GlobalMemGB: 6, BandwidthGBs: 177,
		L3KB: 0, L2KB: 768, L1KB: 16,
		LocalMemKB: 48, LocalMem: Scratchpad,
		OpenCLSDK: "CUDA 4.1.28", Driver: "285.05",

		Wavefront: 32, MaxWGSize: 1024, MaxWGPerCU: 8, MaxWavesPerCU: 48,
		RegFileWords: 32768, MaxRegsPerWI: 63,

		BarrierCycles: 35, LDSBytesPerClk: 64, LDSBanks: 32,
		WavesForOverlap: 8, LaunchOverheadUS: 6,

		CacheReuseEff:      0.75,
		CoalesceUnitStride: 0.45, CoalesceNonUnit: 0.92,
		RowMajorEff: 0.75, BankConflictFactor: 0.80, CopyBWFrac: 0.65,

		VecWidthSP: 1, VecWidthDP: 1, MinILP: 7,
		ComputeEffSP: 0.73, ComputeEffDP: 0.84, SpillPenalty: 0.40,
		CalibDP: 0.85, CalibSP: 1.04,
	}
}

// SandyBridge returns the Intel Core i7 3960X. Table I's bandwidth row is
// truncated in our source; 51.2 GB/s is the part's quad-channel
// DDR3-1600 specification. The low ComputeEff reflects the paper's
// observation that OpenCL CPU compilers are immature (MKL is >2×
// faster).
// Calibration targets: DGEMM 64 GFlop/s (40%), SGEMM 140 GFlop/s (44%).
func SandyBridge() *Spec {
	return &Spec{
		ID: "sandybridge", CodeName: "Sandy Bridge", Product: "Core i7 3960X",
		Kind: CPU, ClockGHz: 3.3, BoostFactor: 1.0,
		ComputeUnits:  6,
		DPOpsPerClock: 48, SPOpsPerClock: 96,
		GlobalMemGB: 16, BandwidthGBs: 51.2,
		L3KB: 15 * 1024, L2KB: 256, L1KB: 32,
		LocalMemKB: 32, LocalMem: GlobalMem,
		OpenCLSDK: "Intel SDK 2013 beta", Driver: "",

		Wavefront: 1, MaxWGSize: 1024, MaxWGPerCU: 2, MaxWavesPerCU: 2,
		RegFileWords: 4096, MaxRegsPerWI: 512,

		BarrierCycles: 800, LDSBytesPerClk: 32, LDSBanks: 1,
		WavesForOverlap: 1, LaunchOverheadUS: 25,

		CacheReuseEff:      0.97,
		CoalesceUnitStride: 0.95, CoalesceNonUnit: 0.80,
		RowMajorEff: 0.85, BankConflictFactor: 0.90, CopyBWFrac: 0.50,

		VecWidthSP: 8, VecWidthDP: 4, MinILP: 2,
		ComputeEffSP: 0.50, ComputeEffDP: 0.50, SpillPenalty: 0.70,
		CalibDP: 0.88, CalibSP: 0.93,
	}
}

// Bulldozer returns the AMD FX-8150. Bandwidth as for Sandy Bridge is the
// part's dual-channel DDR3-1866 specification. PLDoubleFails reproduces
// the paper's note that PL DGEMM kernels always fail to execute here.
// Calibration targets: DGEMM 37 GFlop/s (32%), SGEMM 87 GFlop/s (38%).
func Bulldozer() *Spec {
	return &Spec{
		ID: "bulldozer", CodeName: "Bulldozer", Product: "FX-8150",
		Kind: CPU, ClockGHz: 3.6, BoostFactor: 1.0,
		ComputeUnits:  8,
		DPOpsPerClock: 32, SPOpsPerClock: 64,
		GlobalMemGB: 8, BandwidthGBs: 29.9,
		L3KB: 8 * 1024, L2KB: 2048, L1KB: 64,
		LocalMemKB: 32, LocalMem: GlobalMem,
		OpenCLSDK: "AMD APP 2.7", Driver: "",

		Wavefront: 1, MaxWGSize: 1024, MaxWGPerCU: 2, MaxWavesPerCU: 2,
		RegFileWords: 4096, MaxRegsPerWI: 512,

		BarrierCycles: 1000, LDSBytesPerClk: 16, LDSBanks: 1,
		WavesForOverlap: 1, LaunchOverheadUS: 30,

		CacheReuseEff:      0.96,
		CoalesceUnitStride: 0.95, CoalesceNonUnit: 0.78,
		RowMajorEff: 0.85, BankConflictFactor: 0.90, CopyBWFrac: 0.45,

		VecWidthSP: 4, VecWidthDP: 2, MinILP: 2,
		ComputeEffSP: 0.44, ComputeEffDP: 0.44, SpillPenalty: 0.70,
		PLDoubleFails: true,
		CalibDP:       0.78, CalibSP: 0.93,
	}
}

// SandyBridgeSDK2012 returns the Sandy Bridge device as seen through the
// older Intel OpenCL SDK 2012 (Fig. 11 compares the two: the 2013 beta
// improves DGEMM by around 20%).
func SandyBridgeSDK2012() *Spec {
	s := SandyBridge()
	s.ID = "sandybridge-sdk2012"
	s.OpenCLSDK = "Intel SDK 2012"
	s.ComputeEffSP *= 1.0 / 1.2
	s.ComputeEffDP *= 1.0 / 1.2
	return s
}

// Cypress returns the AMD Radeon HD 5870 used in the paper's §IV-C
// comparison with Nakasato's IL kernels (our tuned OpenCL DGEMM reaches
// 495 GFlop/s vs 498 for hand-written IL) and with Du et al.'s OpenCL
// tuner (308 GFlop/s). Peak DP 544 GFlop/s.
func Cypress() *Spec {
	s := Cayman()
	s.ID = "cypress"
	s.CodeName = "Cypress"
	s.Product = "Radeon HD 5870"
	s.ClockGHz = 0.85
	s.ComputeUnits = 20
	s.DPOpsPerClock = 640  // VLIW5: 20 CU * 16 PE * 2 DP flops
	s.SPOpsPerClock = 3200 // 20 CU * 16 PE * 5 lanes * 2
	s.GlobalMemGB = 1
	s.BandwidthGBs = 153.6
	s.L2KB = 512
	s.L1KB = 8
	s.OpenCLSDK = "AMD APP 2.5"
	s.VecWidthSP = 4 // VLIW5 fills best from float4 + ILP
	s.VecWidthDP = 2
	return s
}
