// Package device describes the six processors evaluated in the paper
// (Table I) plus the architectural model fields the performance model
// needs: wavefront width, register file, LDS bandwidth, barrier cost,
// coalescing behaviour, cache reuse, and OpenCL-compiler maturity.
//
// Table I fields are taken verbatim from the paper; the architectural
// fields are public specifications of the corresponding silicon
// (GCN/VLIW4/Kepler/Fermi/Sandy Bridge/Bulldozer) with a small number of
// calibration constants that are documented next to the paper numbers
// they target.
package device

import (
	"fmt"

	"oclgemm/internal/matrix"
)

// Kind distinguishes GPUs from CPUs.
type Kind int

const (
	// GPU devices have scratchpad local memory and wide SIMD.
	GPU Kind = iota
	// CPU devices run OpenCL work-items on cores; local memory is
	// ordinary cached memory ("Global" type in Table I).
	CPU
)

// String returns "GPU" or "CPU".
func (k Kind) String() string {
	if k == CPU {
		return "CPU"
	}
	return "GPU"
}

// LocalMemKind is the OpenCL CL_DEVICE_LOCAL_MEM_TYPE of the device.
type LocalMemKind int

const (
	// Scratchpad is dedicated on-chip local memory (GPU LDS/shared).
	Scratchpad LocalMemKind = iota
	// GlobalMem means local memory is emulated in cached global memory
	// (the CPU devices in Table I).
	GlobalMem
)

// String returns the Table I wording.
func (l LocalMemKind) String() string {
	if l == GlobalMem {
		return "Global"
	}
	return "Scratchpad"
}

// Spec is a full device description.
type Spec struct {
	// Identity (Table I).
	ID       string // short stable identifier, e.g. "tahiti"
	CodeName string // "Tahiti"
	Product  string // "Radeon HD 7970"
	Kind     Kind
	ClockGHz float64
	// BoostFactor is the effective sustained clock multiplier relative
	// to ClockGHz. The Kepler GTX 670 OC in the paper boosts above its
	// listed base clock, which is why its DGEMM efficiency exceeds 100%.
	BoostFactor   float64
	ComputeUnits  int
	DPOpsPerClock int // chip-wide double-precision flops per clock
	SPOpsPerClock int // chip-wide single-precision flops per clock
	GlobalMemGB   float64
	BandwidthGBs  float64
	L3KB          int // 0 when absent
	L2KB          int
	L1KB          int
	LocalMemKB    int
	LocalMem      LocalMemKind
	OpenCLSDK     string
	Driver        string

	// Execution geometry.
	Wavefront     int // work-items issued in lockstep (1 on CPUs)
	MaxWGSize     int // CL_DEVICE_MAX_WORK_GROUP_SIZE
	MaxWGPerCU    int
	MaxWavesPerCU int
	RegFileWords  int // 32-bit register words per compute unit
	MaxRegsPerWI  int // hard per-work-item register ceiling (words)

	// Timing model constants.
	BarrierCycles    float64 // cost of one work-group barrier, cycles
	LDSBytesPerClk   float64 // local-memory bytes/clock per CU
	LDSBanks         int
	WavesForOverlap  float64 // waves/CU needed to hide memory latency
	LaunchOverheadUS float64

	// Global-memory behaviour.
	CacheReuseEff      float64 // fraction of redundant non-LDS loads served by cache
	CoalesceUnitStride float64 // efficiency of unit-stride work-item access
	CoalesceNonUnit    float64 // efficiency of interleaved (non-unit) access
	RowMajorEff        float64 // efficiency of row-major (non-block-major) streams
	BankConflictFactor float64 // extra slowdown for row-major at power-of-two strides
	CopyBWFrac         float64 // fraction of BandwidthGBs achieved by layout-copy kernels

	// Compute behaviour.
	VecWidthSP int     // native vector ALU lanes per work-item issue (SP)
	VecWidthDP int     // same for DP
	MinILP     float64 // independent FMAs per work-item needed to fill pipelines
	// ComputeEffSP/DP are the OpenCL-compiler maturity ceilings on ALU
	// utilisation per precision (the best kernel the paper's search
	// finds tops out here).
	ComputeEffSP float64
	ComputeEffDP float64
	SpillPenalty float64 // throughput factor once registers spill

	// Quirks.
	// PLDoubleFails reproduces the paper's note that DGEMM kernels using
	// the PL algorithm always fail to execute on the Bulldozer.
	PLDoubleFails bool

	// CalibDP/CalibSP are the final per-precision calibration scalars
	// that pin the modeled best-kernel GFlop/s to the paper's Table II.
	// All ordering/shape effects come from the mechanisms above; these
	// only set the absolute level.
	CalibDP, CalibSP float64
}

// PeakGFlops returns the Table I peak for the precision.
func (s *Spec) PeakGFlops(p matrix.Precision) float64 {
	if p == matrix.Double {
		return s.ClockGHz * float64(s.DPOpsPerClock)
	}
	return s.ClockGHz * float64(s.SPOpsPerClock)
}

// OpsPerClock returns chip-wide flops/clock for the precision.
func (s *Spec) OpsPerClock(p matrix.Precision) int {
	if p == matrix.Double {
		return s.DPOpsPerClock
	}
	return s.SPOpsPerClock
}

// VecWidth returns the native per-work-item vector width for the precision.
func (s *Spec) VecWidth(p matrix.Precision) int {
	if p == matrix.Double {
		return s.VecWidthDP
	}
	return s.VecWidthSP
}

// Calib returns the calibration scalar for the precision.
func (s *Spec) Calib(p matrix.Precision) float64 {
	if p == matrix.Double {
		return s.CalibDP
	}
	return s.CalibSP
}

// ComputeEff returns the ALU utilisation ceiling for the precision.
func (s *Spec) ComputeEff(p matrix.Precision) float64 {
	if p == matrix.Double {
		return s.ComputeEffDP
	}
	return s.ComputeEffSP
}

// LocalMemBytes returns the per-CU local memory capacity in bytes.
func (s *Spec) LocalMemBytes() int { return s.LocalMemKB * 1024 }

// String returns "CodeName (Product)".
func (s *Spec) String() string { return fmt.Sprintf("%s (%s)", s.CodeName, s.Product) }

// ByID returns the device with the given ID from Catalog (the six
// Table I processors plus the Cypress and SDK-2012 variants).
func ByID(id string) (*Spec, error) {
	for _, d := range Catalog() {
		if d.ID == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("device: unknown device %q", id)
}

// IDs returns the identifiers of all catalogued devices in Table I order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, d := range all {
		ids[i] = d.ID
	}
	return ids
}

// All returns the six devices of Table I, in the paper's column order.
// Fresh copies are returned so callers may mutate specs (e.g. the SDK
// variants used by Fig. 11) without affecting the catalog.
func All() []*Spec {
	return []*Spec{Tahiti(), Cayman(), Kepler(), Fermi(), SandyBridge(), Bulldozer()}
}

// Catalog returns every catalogued spec: Table I's six processors plus
// the Cypress (§IV-C) and Sandy Bridge SDK-2012 (Fig. 11) variants —
// the full set a multi-device pool may draw members from.
func Catalog() []*Spec {
	return append(All(), Cypress(), SandyBridgeSDK2012())
}
