package device

import (
	"testing"

	"oclgemm/internal/matrix"
)

// Table I peak performance values the specs must reproduce.
func TestPeakMatchesTableI(t *testing.T) {
	cases := []struct {
		id       string
		dp, sp   float64
		cus      int
		localKB  int
		localMem LocalMemKind
	}{
		{"tahiti", 947, 3789, 32, 64, Scratchpad},
		{"cayman", 676, 2703, 24, 32, Scratchpad},
		{"kepler", 122, 2916, 7, 48, Scratchpad},
		{"fermi", 665, 1331, 16, 48, Scratchpad},
		{"sandybridge", 158.4, 316.8, 6, 32, GlobalMem},
		{"bulldozer", 115.2, 230.4, 8, 32, GlobalMem},
	}
	for _, c := range cases {
		d, err := ByID(c.id)
		if err != nil {
			t.Fatalf("ByID(%q): %v", c.id, err)
		}
		if got := d.PeakGFlops(matrix.Double); got < c.dp*0.99 || got > c.dp*1.01 {
			t.Errorf("%s DP peak = %.1f, Table I says %.1f", c.id, got, c.dp)
		}
		if got := d.PeakGFlops(matrix.Single); got < c.sp*0.99 || got > c.sp*1.01 {
			t.Errorf("%s SP peak = %.1f, Table I says %.1f", c.id, got, c.sp)
		}
		if d.ComputeUnits != c.cus {
			t.Errorf("%s CUs = %d, want %d", c.id, d.ComputeUnits, c.cus)
		}
		if d.LocalMemKB != c.localKB || d.LocalMem != c.localMem {
			t.Errorf("%s local mem = %d KB %v, want %d KB %v",
				c.id, d.LocalMemKB, d.LocalMem, c.localKB, c.localMem)
		}
	}
}

func TestAllOrderAndFreshCopies(t *testing.T) {
	all := All()
	wantOrder := []string{"tahiti", "cayman", "kepler", "fermi", "sandybridge", "bulldozer"}
	if len(all) != len(wantOrder) {
		t.Fatalf("All() returned %d devices, want %d", len(all), len(wantOrder))
	}
	for i, d := range all {
		if d.ID != wantOrder[i] {
			t.Errorf("All()[%d] = %s, want %s", i, d.ID, wantOrder[i])
		}
	}
	// Mutating a returned spec must not affect the catalog.
	all[0].ClockGHz = 99
	if Tahiti().ClockGHz == 99 {
		t.Error("All() must return fresh copies")
	}
	ids := IDs()
	for i := range wantOrder {
		if ids[i] != wantOrder[i] {
			t.Errorf("IDs()[%d] = %s, want %s", i, ids[i], wantOrder[i])
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nonexistent"); err == nil {
		t.Error("ByID should fail for unknown device")
	}
}

func TestKindAndLocalMemStrings(t *testing.T) {
	if GPU.String() != "GPU" || CPU.String() != "CPU" {
		t.Error("Kind strings wrong")
	}
	if Scratchpad.String() != "Scratchpad" || GlobalMem.String() != "Global" {
		t.Error("LocalMemKind strings wrong")
	}
}

func TestHelpers(t *testing.T) {
	d := Tahiti()
	if d.OpsPerClock(matrix.Double) != 1024 || d.OpsPerClock(matrix.Single) != 4096 {
		t.Error("OpsPerClock wrong")
	}
	if d.LocalMemBytes() != 64*1024 {
		t.Error("LocalMemBytes wrong")
	}
	if d.String() != "Tahiti (Radeon HD 7970)" {
		t.Errorf("String() = %q", d.String())
	}
	snb := SandyBridge()
	if snb.VecWidth(matrix.Single) != 8 || snb.VecWidth(matrix.Double) != 4 {
		t.Error("SNB vector widths should be AVX 8/4")
	}
	if snb.Calib(matrix.Double) != snb.CalibDP {
		t.Error("Calib accessor wrong")
	}
}

func TestSDK2012Variant(t *testing.T) {
	newer := SandyBridge()
	older := SandyBridgeSDK2012()
	if older.ComputeEffDP >= newer.ComputeEffDP || older.ComputeEffSP >= newer.ComputeEffSP {
		t.Error("SDK 2012 must be slower than 2013 beta")
	}
	ratio := newer.ComputeEffDP / older.ComputeEffDP
	if ratio < 1.15 || ratio > 1.25 {
		t.Errorf("SDK improvement ratio = %.2f, paper says around 20%%", ratio)
	}
}

func TestBulldozerQuirk(t *testing.T) {
	if !Bulldozer().PLDoubleFails {
		t.Error("Bulldozer must carry the PL-DGEMM failure quirk")
	}
	for _, d := range All() {
		if d.ID != "bulldozer" && d.PLDoubleFails {
			t.Errorf("%s should not have PLDoubleFails", d.ID)
		}
	}
}

func TestCypress(t *testing.T) {
	c := Cypress()
	peak := c.PeakGFlops(matrix.Double)
	if peak < 500 || peak > 600 {
		t.Errorf("Cypress DP peak = %.0f, want 544", peak)
	}
}

// Sanity bounds every catalogued device must satisfy (the perf model
// divides by several of these).
func TestSpecSanity(t *testing.T) {
	devs := All()
	devs = append(devs, SandyBridgeSDK2012(), Cypress())
	for _, d := range devs {
		if d.ClockGHz <= 0 || d.ComputeUnits <= 0 || d.BandwidthGBs <= 0 {
			t.Errorf("%s: non-positive basic rates", d.ID)
		}
		if d.Wavefront <= 0 || d.MaxWGSize <= 0 || d.MaxWGPerCU <= 0 {
			t.Errorf("%s: bad geometry", d.ID)
		}
		if d.ComputeEffSP <= 0 || d.ComputeEffSP > 1 || d.ComputeEffDP <= 0 || d.ComputeEffDP > 1 {
			t.Errorf("%s: compute efficiencies out of (0,1]: SP=%f DP=%f", d.ID, d.ComputeEffSP, d.ComputeEffDP)
		}
		if d.CacheReuseEff < 0 || d.CacheReuseEff > 1 {
			t.Errorf("%s: CacheReuseEff out of range", d.ID)
		}
		if d.BoostFactor < 1 {
			t.Errorf("%s: BoostFactor < 1", d.ID)
		}
		if d.CalibDP <= 0 || d.CalibSP <= 0 {
			t.Errorf("%s: calibration scalars must be positive", d.ID)
		}
		if d.Kind == CPU && d.LocalMem != GlobalMem {
			t.Errorf("%s: CPUs have Global local memory in Table I", d.ID)
		}
	}
}
