package perfmodel

import (
	"errors"
	"math"
	"testing"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func anchor(devID string, p matrix.Precision) (d *device.Spec, cfg codegen.Params, n int) {
	for _, c := range paperKernels() {
		if c.Dev.ID == devID && c.P.Precision == p {
			return c.Dev, c.P, c.N
		}
	}
	panic("no anchor for " + devID)
}

func gflops(t *testing.T, d *device.Spec, p *codegen.Params, n int) float64 {
	t.Helper()
	gf, err := KernelGFlops(d, p, n, n, n)
	if err != nil {
		t.Fatalf("KernelGFlops(%s, %s, %d): %v", d.ID, p.Name(), n, err)
	}
	return gf
}

// Performance must ramp up with problem size and plateau (Fig. 7 shape).
func TestPerformanceRampsWithSize(t *testing.T) {
	d, p, _ := anchor("tahiti", matrix.Single)
	small := gflops(t, d, &p, 192)
	mid := gflops(t, d, &p, 1152)
	big := gflops(t, d, &p, 4032)
	huge := gflops(t, d, &p, 6048)
	if !(small < mid && mid < big) {
		t.Errorf("performance must grow with size: %f %f %f", small, mid, big)
	}
	if math.Abs(huge-big)/big > 0.15 {
		t.Errorf("performance should plateau for large sizes: %f vs %f", big, huge)
	}
	if small > 0.5*big {
		t.Errorf("small sizes should be well below peak (tail + launch overhead): %f vs %f", small, big)
	}
}

// Block-major layouts must beat row-major on every device, with a big
// effect on AMD GPUs and a small one elsewhere (paper §IV-A).
func TestBlockMajorLayoutAdvantage(t *testing.T) {
	for _, devID := range []string{"tahiti", "cayman", "kepler", "fermi", "sandybridge", "bulldozer"} {
		d, p, n := anchor(devID, matrix.Double)
		cbl := gflops(t, d, &p, n)
		rm := p
		rm.LayoutA, rm.LayoutB = matrix.LayoutRowMajor, matrix.LayoutRowMajor
		rmGF := gflops(t, d, &rm, n)
		if rmGF >= cbl {
			t.Errorf("%s: row-major (%f) must not beat block-major (%f)", devID, rmGF, cbl)
		}
		ratio := rmGF / cbl
		if devID == "tahiti" || devID == "cayman" {
			if ratio > 0.99 {
				t.Errorf("%s: layout effect should be visible on AMD GPUs (ratio %.3f)", devID, ratio)
			}
		}
		if d.Kind == device.CPU && ratio < 0.7 {
			t.Errorf("%s: layout effect should be small on CPUs (ratio %.3f)", devID, ratio)
		}
	}
}

// The paper: Tahiti row-major DGEMM reaches 837 GFlop/s but sizes that
// are multiples of 2048 deteriorate drastically from bank conflicts.
// The cliff only bites when the buffer stride stays a power of two,
// i.e. the kernel's blocking factors divide 2048 (padding otherwise
// breaks the stride).
func TestBankConflictCliffAtPowerOfTwo(t *testing.T) {
	d, p, _ := anchor("tahiti", matrix.Double)
	p.LayoutA, p.LayoutB = matrix.LayoutRowMajor, matrix.LayoutRowMajor
	p.Mwg, p.Nwg, p.Kwg = 64, 32, 32 // power-of-two blocking
	okSize := gflops(t, d, &p, 1952) // pads to 1984: not a multiple of 512
	conflict := gflops(t, d, &p, 2048)
	if conflict > 0.6*okSize {
		t.Errorf("N=2048 row-major should collapse: %.0f vs %.0f at N=1952", conflict, okSize)
	}
	// Block-major is immune.
	p2 := p
	p2.LayoutA, p2.LayoutB = matrix.LayoutCBL, matrix.LayoutCBL
	immuneOK := gflops(t, d, &p2, 1952)
	immuneConflict := gflops(t, d, &p2, 2048)
	if immuneConflict < 0.9*immuneOK {
		t.Errorf("block-major must be immune to the 2048 cliff: %.0f vs %.0f", immuneConflict, immuneOK)
	}
}

// Paper §IV-A: local memory matters on Kepler. Toggling LDS off the
// paper's best kernel (without re-tuning the other parameters) must
// lose clearly; the re-tuned comparison (paper: 1440 → 1150) lives in
// the core package's ablation test, since it needs a search.
func TestKeplerLocalMemoryAblation(t *testing.T) {
	d, p, n := anchor("kepler", matrix.Single)
	withLDS := gflops(t, d, &p, n)
	noLDS := p
	noLDS.Algorithm = codegen.BA // PL without LDS is a different beast
	noLDS.SharedA, noLDS.SharedB = false, false
	noLDS.StrideM, noLDS.StrideN = true, true // keep direct loads coalesced
	without := gflops(t, d, &noLDS, n)
	ratio := without / withLDS
	if ratio > 0.92 {
		t.Errorf("Kepler SGEMM without LDS should lose clearly (ratio %.2f)", ratio)
	}
	if ratio < 0.2 {
		t.Errorf("Kepler SGEMM without LDS should not collapse entirely (ratio %.2f)", ratio)
	}
}

// Paper §IV-A: "The Cayman runs slower when the local memory is
// utilized, probably because the cost for barrier synchronizations is
// too large."
func TestCaymanLocalMemoryHurts(t *testing.T) {
	d, p, n := anchor("cayman", matrix.Single)
	if p.UsesLocalMemory() {
		t.Fatal("anchor premise: Cayman best kernel avoids local memory")
	}
	noLDS := gflops(t, d, &p, n)
	lds := p
	lds.Algorithm = codegen.BA
	lds.SharedA, lds.SharedB = true, true
	lds.Kwg = 16 // keep panels within 32 KB local memory
	lds.Kwi = 2
	withLDS := gflops(t, d, &lds, n)
	if withLDS >= noLDS {
		t.Errorf("Cayman with LDS (%f) must be slower than without (%f)", withLDS, noLDS)
	}
}

// On CPUs no prominent difference from local memory usage (paper §IV-A).
func TestCPULocalMemoryNeutral(t *testing.T) {
	d, p, n := anchor("sandybridge", matrix.Single)
	base := gflops(t, d, &p, n)
	flip := p
	flip.SharedB = !flip.SharedB
	other := gflops(t, d, &flip, n)
	if r := other / base; r < 0.8 || r > 1.25 {
		t.Errorf("CPU local-memory effect should be mild, got ratio %.2f", r)
	}
}

// PL DGEMM on Bulldozer must be rejected (paper: always fails).
func TestBulldozerPLDoubleRejected(t *testing.T) {
	d := device.Bulldozer()
	_, p, n := anchor("tahiti", matrix.Double)
	p.Algorithm = codegen.PL
	p.MdimC, p.NdimC = 16, 16 // fits CPU WG limits
	if _, err := KernelGFlops(d, &p, n, n, n); err == nil {
		t.Error("PL DGEMM on Bulldozer must fail")
	}
}

// The vector width should matter on CPUs (AVX) and Cayman (VLIW) but
// not on scalar GCN/NVIDIA.
func TestVectorWidthSensitivity(t *testing.T) {
	d, p, n := anchor("sandybridge", matrix.Single) // vw=8 anchor
	wide := gflops(t, d, &p, n)
	narrow := p
	narrow.VectorWidth = 1
	nGF := gflops(t, d, &narrow, n)
	if nGF > 0.5*wide {
		t.Errorf("scalar kernels on AVX CPU should be much slower: %.0f vs %.0f", nGF, wide)
	}

	dT, pT, nT := anchor("tahiti", matrix.Single) // vw=1 anchor
	s1 := gflops(t, dT, &pT, nT)
	pT.VectorWidth = 2
	pT.Kwi = 2
	s2 := gflops(t, dT, &pT, nT)
	if r := s2 / s1; r < 0.9 || r > 1.1 {
		t.Errorf("vector width should be nearly neutral on GCN: ratio %.2f", r)
	}
}

// Larger work-item tiles raise arithmetic intensity; tiny tiles must be
// memory-bound and slower.
func TestWorkItemBlockingMatters(t *testing.T) {
	d, p, n := anchor("tahiti", matrix.Double)
	big := gflops(t, d, &p, n)
	tiny := p
	tiny.Mwg, tiny.Nwg = 32, 32 // Mwi=Nwi=2
	tiny.MdimA, tiny.NdimB = 16, 16
	tinyGF := gflops(t, d, &tiny, n)
	if tinyGF > 0.6*big {
		t.Errorf("2x2 work-item tiles should be far slower: %.0f vs %.0f", tinyGF, big)
	}
}

func TestKernelTimeErrors(t *testing.T) {
	d, p, _ := anchor("tahiti", matrix.Double)
	if _, err := KernelTime(d, &p, 0, 10, 10); err == nil {
		t.Error("non-positive size must fail")
	}
	bad := p
	bad.Mwg = 7 // not divisible by MdimC
	if _, err := KernelTime(d, &bad, 100, 100, 100); err == nil {
		t.Error("invalid params must fail")
	}
}

func TestErrUnsupportedProblemSentinel(t *testing.T) {
	// Exercised indirectly: the sentinel is exported for the tuner.
	if ErrUnsupportedProblem == nil || !errors.Is(ErrUnsupportedProblem, ErrUnsupportedProblem) {
		t.Error("sentinel must exist")
	}
}

// Breakdown totals must be internally consistent.
func TestBreakdownConsistency(t *testing.T) {
	d, p, n := anchor("fermi", matrix.Single)
	bd, err := KernelTime(d, &p, n, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total <= 0 || bd.Compute <= 0 || bd.GlobalMem <= 0 {
		t.Error("breakdown components must be positive")
	}
	if bd.Total < bd.Launch {
		t.Error("total must include launch overhead")
	}
	if bd.Overlap < 0 || bd.Overlap > 1 || bd.BusyFrac <= 0 || bd.BusyFrac > 1 {
		t.Errorf("diagnostic fractions out of range: overlap=%f busy=%f", bd.Overlap, bd.BusyFrac)
	}
	if bd.PaddedM%p.Mwg != 0 || bd.PaddedN%p.Nwg != 0 || bd.PaddedK%p.Kwg != 0 {
		t.Error("padded dimensions must be multiples of blocking factors")
	}
}

// Efficiency must never exceed the physically meaningful bound
// (boost × 1.05 headroom for the calibrated model).
func TestEfficiencyBounded(t *testing.T) {
	for _, c := range paperKernels() {
		gf, err := KernelGFlops(c.Dev, &c.P, 8064, 8064, 8064)
		if err != nil {
			t.Fatalf("%s: %v", c.Dev.ID, err)
		}
		bound := c.Dev.PeakGFlops(c.P.Precision) * c.Dev.BoostFactor * 1.05
		if gf > bound {
			t.Errorf("%s %s: modeled %.0f exceeds bound %.0f", c.Dev.ID, c.P.Precision.GEMMName(), gf, bound)
		}
	}
}

// Rectangular problems must work and respect padding.
func TestRectangularProblems(t *testing.T) {
	d, p, _ := anchor("tahiti", matrix.Single)
	bd, err := KernelTime(d, &p, 100, 3000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if bd.PaddedM < 100 || bd.PaddedN < 3000 || bd.PaddedK < 500 {
		t.Error("padding must cover the problem")
	}
	// K-shallow problems have lower arithmetic intensity per C element
	// and must not beat a deep problem of the same M×N.
	shallow, _ := KernelGFlops(d, &p, 3840, 3840, 96)
	deep, _ := KernelGFlops(d, &p, 3840, 3840, 3840)
	if shallow > deep {
		t.Errorf("K-shallow problem (%f) should not beat deep (%f)", shallow, deep)
	}
}
