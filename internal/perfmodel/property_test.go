package perfmodel

import (
	"testing"
	"testing/quick"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// randParams draws a parameter set from a small valid lattice.
func randParams(mwiS, nwiS, kwgS, kwiS, vwS, algS, shS, stS, layS uint8, prec matrix.Precision) codegen.Params {
	p := codegen.Params{
		Precision: prec,
		Algorithm: codegen.Algorithms[algS%3],
		MdimC:     8, NdimC: 8,
		MdimA: 8, NdimB: 8,
		SharedA: shS&1 != 0,
		SharedB: shS&2 != 0,
		StrideM: stS&1 != 0,
		StrideN: stS&2 != 0,
		LayoutA: []matrix.Layout{matrix.LayoutRowMajor, matrix.LayoutCBL, matrix.LayoutRBL}[layS%3],
		LayoutB: []matrix.Layout{matrix.LayoutCBL, matrix.LayoutRBL}[layS%2],
	}
	p.Mwg = 8 * (int(mwiS%8) + 1)
	p.Nwg = 8 * (int(nwiS%8) + 1)
	p.Kwg = []int{8, 16, 32, 64}[kwgS%4]
	p.Kwi = []int{1, 2, 4, 8}[kwiS%4]
	p.VectorWidth = []int{1, 2, 4}[vwS%3]
	if p.Algorithm == codegen.DB && !p.UsesLocalMemory() {
		p.SharedB = true
	}
	return p
}

// Property: every valid kernel yields a positive, finite time with
// consistent breakdown components on every device.
func TestModelTotalsPositiveProperty(t *testing.T) {
	devs := device.All()
	f := func(mwiS, nwiS, kwgS, kwiS, vwS, algS, shS, stS, layS, devS uint8, dbl bool) bool {
		prec := matrix.Single
		if dbl {
			prec = matrix.Double
		}
		p := randParams(mwiS, nwiS, kwgS, kwiS, vwS, algS, shS, stS, layS, prec)
		d := devs[int(devS)%len(devs)]
		if !p.ValidFor(d) {
			return true
		}
		bd, err := KernelTime(d, &p, 1024, 1024, 1024)
		if err != nil {
			return false
		}
		if !(bd.Total > 0) || !(bd.Compute > 0) || !(bd.GlobalMem > 0) {
			return false
		}
		if bd.Total < bd.Launch {
			return false
		}
		if bd.ALUEff <= 0 || bd.ALUEff > 1.001 {
			return false
		}
		// Efficiency never beyond physical peak (with boost).
		gf := 2.0 * 1024 * 1024 * 1024 / bd.Total / 1e9
		return gf <= d.PeakGFlops(prec)*d.BoostFactor*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: time grows monotonically in each problem dimension.
func TestModelMonotoneInSizeProperty(t *testing.T) {
	d := device.Tahiti()
	f := func(mwiS, nwiS, kwgS, kwiS, vwS, algS, shS, stS, layS uint8) bool {
		p := randParams(mwiS, nwiS, kwgS, kwiS, vwS, algS, shS, stS, layS, matrix.Double)
		if !p.ValidFor(d) {
			return true
		}
		base, err := KernelTime(d, &p, 1024, 1024, 1024)
		if err != nil {
			return false
		}
		for _, dims := range [][3]int{{2048, 1024, 1024}, {1024, 2048, 1024}, {1024, 1024, 2048}} {
			bigger, err := KernelTime(d, &p, dims[0], dims[1], dims[2])
			if err != nil {
				return false
			}
			if bigger.Total < base.Total*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the model is deterministic.
func TestModelDeterministicProperty(t *testing.T) {
	d := device.Fermi()
	f := func(mwiS, nwiS, kwgS, kwiS, vwS, algS, shS, stS, layS uint8, n uint16) bool {
		p := randParams(mwiS, nwiS, kwgS, kwiS, vwS, algS, shS, stS, layS, matrix.Single)
		if !p.ValidFor(d) {
			return true
		}
		size := int(n%4096) + 64
		a, errA := KernelTime(d, &p, size, size, size)
		b, errB := KernelTime(d, &p, size, size, size)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
