package perfmodel

import (
	"testing"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// paperKernels returns the paper's Table II fastest-kernel parameter
// sets together with the reported maximum GFlop/s. These are the
// calibration anchors: the model must put each within tolerance of the
// paper's measurement on its device.
func paperKernels() []struct {
	Dev  *device.Spec
	P    codegen.Params
	N    int
	Want float64
} {
	return []struct {
		Dev  *device.Spec
		P    codegen.Params
		N    int
		Want float64
	}{
		{device.Tahiti(), codegen.Params{Precision: matrix.Double, Algorithm: codegen.BA,
			Mwg: 96, Nwg: 32, Kwg: 48, MdimC: 16, NdimC: 16, MdimA: 16, NdimB: 16,
			Kwi: 2, VectorWidth: 2, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 4032, 863},
		{device.Tahiti(), codegen.Params{Precision: matrix.Single, Algorithm: codegen.BA,
			Mwg: 96, Nwg: 96, Kwg: 16, MdimC: 16, NdimC: 16, MdimA: 16, NdimB: 16,
			Kwi: 2, VectorWidth: 1, SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 4032, 3047},
		{device.Cayman(), codegen.Params{Precision: matrix.Double, Algorithm: codegen.BA,
			Mwg: 64, Nwg: 32, Kwg: 48, MdimC: 16, NdimC: 8, MdimA: 16, NdimB: 16,
			Kwi: 24, VectorWidth: 2,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 4032, 580},
		{device.Cayman(), codegen.Params{Precision: matrix.Single, Algorithm: codegen.PL,
			Mwg: 128, Nwg: 64, Kwg: 96, MdimC: 16, NdimC: 8, MdimA: 16, NdimB: 8,
			Kwi: 24, VectorWidth: 4, StrideN: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 4096, 2167},
		{device.Kepler(), codegen.Params{Precision: matrix.Double, Algorithm: codegen.BA,
			Mwg: 32, Nwg: 64, Kwg: 8, MdimC: 16, NdimC: 16, MdimA: 32, NdimB: 32,
			Kwi: 4, VectorWidth: 1, StrideN: true, SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 4096, 128},
		{device.Kepler(), codegen.Params{Precision: matrix.Single, Algorithm: codegen.PL,
			Mwg: 64, Nwg: 64, Kwg: 8, MdimC: 8, NdimC: 16, MdimA: 32, NdimB: 32,
			Kwi: 8, VectorWidth: 2, StrideM: true, SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 4096, 1440},
		{device.Fermi(), codegen.Params{Precision: matrix.Double, Algorithm: codegen.PL,
			Mwg: 64, Nwg: 64, Kwg: 8, MdimC: 16, NdimC: 16, MdimA: 64, NdimB: 64,
			Kwi: 2, VectorWidth: 1, StrideN: true, SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL}, 4096, 370},
		{device.Fermi(), codegen.Params{Precision: matrix.Single, Algorithm: codegen.BA,
			Mwg: 64, Nwg: 64, Kwg: 16, MdimC: 8, NdimC: 16, MdimA: 32, NdimB: 8,
			Kwi: 16, VectorWidth: 2, StrideM: true, StrideN: true, SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 4096, 896},
		{device.SandyBridge(), codegen.Params{Precision: matrix.Double, Algorithm: codegen.DB,
			Mwg: 64, Nwg: 32, Kwg: 64, MdimC: 16, NdimC: 4, MdimA: 16, NdimB: 16,
			Kwi: 4, VectorWidth: 4, StrideN: true, SharedB: true,
			LayoutA: matrix.LayoutRBL, LayoutB: matrix.LayoutRBL}, 1536, 64},
		{device.SandyBridge(), codegen.Params{Precision: matrix.Single, Algorithm: codegen.BA,
			Mwg: 64, Nwg: 64, Kwg: 64, MdimC: 8, NdimC: 8, MdimA: 8, NdimB: 8,
			Kwi: 8, VectorWidth: 8, StrideM: true, SharedB: true,
			LayoutA: matrix.LayoutRBL, LayoutB: matrix.LayoutRBL}, 1536, 140},
		{device.Bulldozer(), codegen.Params{Precision: matrix.Double, Algorithm: codegen.DB,
			Mwg: 48, Nwg: 32, Kwg: 96, MdimC: 24, NdimC: 4, MdimA: 24, NdimB: 2,
			Kwi: 16, VectorWidth: 2, StrideM: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL}, 1536, 37},
		{device.Bulldozer(), codegen.Params{Precision: matrix.Single, Algorithm: codegen.BA,
			Mwg: 32, Nwg: 48, Kwg: 192, MdimC: 8, NdimC: 4, MdimA: 8, NdimB: 8,
			Kwi: 4, VectorWidth: 4, StrideM: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL}, 1536, 87},
	}
}

// TestCalibrationAgainstTableII checks that the modeled performance of
// the paper's own fastest kernels lands near the paper's reported
// numbers on every device. Tolerance ±20%: the tuner may find slightly
// different argmax configurations, but the anchor kernels must be in
// the right band for every figure's shape to hold.
func TestCalibrationAgainstTableII(t *testing.T) {
	for _, c := range paperKernels() {
		c := c
		name := c.Dev.ID + "-" + c.P.Precision.GEMMName()
		t.Run(name, func(t *testing.T) {
			gf, err := KernelGFlops(c.Dev, &c.P, c.N, c.N, c.N)
			if err != nil {
				t.Fatalf("model rejected paper kernel: %v", err)
			}
			bd, _ := KernelTime(c.Dev, &c.P, c.N, c.N, c.N)
			t.Logf("modeled %.0f GFlop/s, paper %.0f (ratio %.2f); comp=%.4fs mem=%.4fs lds=%.4fs bar=%.4fs overlap=%.2f wg/cu=%d alu=%.2f spill=%v",
				gf, c.Want, gf/c.Want, bd.Compute, bd.GlobalMem, bd.LocalMem, bd.Barrier,
				bd.Overlap, bd.WGPerCU, bd.ALUEff, bd.RegSpill)
			if ratio := gf / c.Want; ratio < 0.90 || ratio > 1.10 {
				t.Errorf("modeled %.0f GFlop/s vs paper %.0f (ratio %.2f, want within ±10%%)", gf, c.Want, ratio)
			}
		})
	}
}
