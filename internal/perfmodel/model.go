// Package perfmodel estimates the execution time of generated GEMM
// kernels on the catalogued devices. It is the substitute for wall-clock
// measurement on the paper's physical testbed (see DESIGN.md §2): a
// roofline over compute, global memory, and local memory, with the
// architectural mechanisms the paper's analysis attributes performance
// differences to — occupancy from registers and local memory, barrier
// cost, coalescing and stride behaviour, block-major vs row-major
// streams, power-of-two bank conflicts, vector-ALU matching, loop
// unrolling, and work-group tail effects.
package perfmodel

import (
	"errors"
	"fmt"
	"math"

	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

// ErrUnsupportedProblem reports a problem shape the kernel cannot run
// (K below the algorithm's minimum).
var ErrUnsupportedProblem = errors.New("perfmodel: problem size unsupported by kernel")

// Breakdown exposes the components of a kernel time estimate for tests,
// ablation and reporting.
type Breakdown struct {
	// Seconds.
	Compute, GlobalMem, LocalMem, Barrier, Launch float64
	Total                                         float64

	// Dimensionless diagnostics.
	WGPerCU    int
	WavesPerCU int
	Overlap    float64 // 0..1 latency-hiding quality
	BusyFrac   float64 // CU utilization including tail rounds
	ALUEff     float64
	MemEffA    float64
	MemEffB    float64
	RegSpill   bool
	PaddedM    int
	PaddedN    int
	PaddedK    int
}

// KernelTime estimates the execution time in seconds of the AᵀB kernel
// described by p on device d for an M×N×K multiplication (sizes are
// padded up to the blocking factors, as the GEMM planner does).
func KernelTime(d *device.Spec, p *codegen.Params, m, n, k int) (Breakdown, error) {
	var bd Breakdown
	if m <= 0 || n <= 0 || k <= 0 {
		return bd, fmt.Errorf("perfmodel: non-positive problem %dx%dx%d", m, n, k)
	}
	if err := p.CheckDevice(d); err != nil {
		return bd, err
	}
	mp := matrix.PadDim(m, p.Mwg)
	np := matrix.PadDim(n, p.Nwg)
	kp := matrix.PadDim(k, p.Kwg)
	if kp < p.MinK() {
		kp = p.MinK()
	}
	bd.PaddedM, bd.PaddedN, bd.PaddedK = mp, np, kp

	r := p.Resources()
	clockHz := d.ClockGHz * d.BoostFactor * 1e9
	esz := p.Precision.Size()

	numWG := (mp / p.Mwg) * (np / p.Nwg)
	iters := kp / p.Kwg
	wgSize := r.WGSize

	// ---- Occupancy ----------------------------------------------------
	wavesPerWG := 1
	if d.Kind == device.GPU {
		wavesPerWG = (wgSize + d.Wavefront - 1) / d.Wavefront
	}
	wgPerCU := d.MaxWGPerCU
	spill := false
	spillFactor := 1.0
	if d.Kind == device.GPU {
		regsPerWI := r.RegWordsPerWI
		if regsPerWI > d.MaxRegsPerWI {
			spill = true
			// Graded penalty: a few spilled values hit cache cheaply,
			// deep spilling approaches the device's SpillPenalty floor.
			over := float64(regsPerWI-d.MaxRegsPerWI) / (0.5 * float64(d.MaxRegsPerWI))
			if over > 1 {
				over = 1
			}
			spillFactor = 1 - (1-d.SpillPenalty)*over
			regsPerWI = d.MaxRegsPerWI
		}
		if byRegs := d.RegFileWords / (regsPerWI * wgSize); byRegs < wgPerCU {
			wgPerCU = byRegs
		}
		if r.LDSBytes > 0 {
			if byLDS := d.LocalMemBytes() / r.LDSBytes; byLDS < wgPerCU {
				wgPerCU = byLDS
			}
		}
		if byWaves := d.MaxWavesPerCU / wavesPerWG; byWaves < wgPerCU {
			wgPerCU = byWaves
		}
		if wgPerCU < 1 {
			// The kernel still launches one group at a time, at the
			// price of heavy spilling / serialization.
			wgPerCU = 1
			spill = true
			spillFactor = d.SpillPenalty
		}
	}
	wavesPerCU := wgPerCU * wavesPerWG
	overlap := math.Min(1, float64(wavesPerCU)/d.WavesForOverlap)
	bd.WGPerCU, bd.WavesPerCU, bd.Overlap = wgPerCU, wavesPerCU, overlap

	// Tail quantization: work-groups are dispatched in rounds of
	// CUs·wgPerCU; the last round may be mostly idle.
	slots := d.ComputeUnits * wgPerCU
	rounds := (numWG + slots - 1) / slots
	busy := float64(numWG) / float64(rounds*slots)
	bd.BusyFrac = busy

	// ---- ALU efficiency -----------------------------------------------
	alu := d.ComputeEff(p.Precision)
	native := d.VecWidth(p.Precision)
	if p.VectorWidth < native {
		alu *= float64(p.VectorWidth) / float64(native)
	} else if p.VectorWidth > native {
		// Oversized vectors split into native-width ops with a small
		// scheduling cost.
		alu *= 0.97
	}
	if ilp := float64(p.Mwi() * p.Nwi()); ilp < d.MinILP {
		alu *= ilp / d.MinILP
	}
	// Loop overhead amortized by unrolling depth Kwi.
	alu *= float64(p.Kwi) / (float64(p.Kwi) + 0.15)
	alu *= spillFactor
	if d.Kind == device.GPU && wgSize%d.Wavefront != 0 {
		alu *= float64(wgSize) / float64(wavesPerWG*d.Wavefront)
	}
	bd.ALUEff = alu
	bd.RegSpill = spill

	flops := 2 * float64(mp) * float64(np) * float64(kp)
	chipFlopsPerSec := float64(d.OpsPerClock(p.Precision)) * clockHz
	tComp := flops / (chipFlopsPerSec * alu)

	// ---- Global memory ------------------------------------------------
	effA := streamEff(d, p.LayoutA, p.SharedA, p.StrideM, r.GlobalLoadWidthA*esz, mp)
	effB := streamEff(d, p.LayoutB, p.SharedB, p.StrideN, r.GlobalLoadWidthB*esz, np)
	bd.MemEffA, bd.MemEffB = effA, effB

	trafficA := absorbed(float64(r.RawAElems), float64(r.UniqueAElems), d.CacheReuseEff)
	trafficB := absorbed(float64(r.RawBElems), float64(r.UniqueBElems), d.CacheReuseEff)
	perIterBytes := (trafficA/effA + trafficB/effB) * float64(esz)
	// Spilled registers consume cache/memory bandwidth as well.
	perIterBytes /= spillFactor
	// C is read (for β) and written once per work-group.
	cBytes := 2 * float64(mp) * float64(np) * float64(esz) / d.CoalesceUnitStride
	totalWeighted := perIterBytes*float64(iters)*float64(numWG) + cBytes
	tMem := totalWeighted / (d.BandwidthGBs * 1e9)

	// ---- Local memory -------------------------------------------------
	var tLDS float64
	if r.LDSBytes > 0 {
		ldsBytes := float64(r.LDSReadElems+r.UniqueAElems*boolInt(p.SharedA)+r.UniqueBElems*boolInt(p.SharedB)) *
			float64(esz) * float64(iters) * float64(numWG)
		chipLDSBW := float64(d.ComputeUnits) * d.LDSBytesPerClk * clockHz
		tLDS = ldsBytes / chipLDSBW / spillFactor
	}

	// ---- Barriers -----------------------------------------------------
	var tBar float64
	if r.BarriersPerIter > 0 {
		perWGCycles := float64(iters) * float64(r.BarriersPerIter) * d.BarrierCycles
		tBar = perWGCycles * float64(numWG) / (float64(slots) * clockHz)
	}

	// ---- Combine ------------------------------------------------------
	// Even at full occupancy the overlap of compute with memory is not
	// perfect (issue slots are shared, stalls leak); a small fraction of
	// the non-dominant terms always shows through. This is what keeps
	// block-major layouts measurably ahead of row-major even on
	// compute-bound kernels, as the paper observes on every processor.
	const leak = 0.08
	tMax := math.Max(tComp, math.Max(tMem, tLDS))
	tSum := tComp + tMem + tLDS
	tWork := overlap*(tMax+leak*(tSum-tMax)) + (1-overlap)*tSum
	tWork /= busy
	launch := d.LaunchOverheadUS * 1e-6
	total := (tWork + tBar) / d.Calib(p.Precision)
	// Physical floor: no calibration may push a kernel past the
	// device's peak throughput (boost included). The knee is soft
	// (p-norm) so kernels near the floor keep a strict ordering
	// instead of collapsing into ties.
	floor := flops / (float64(d.OpsPerClock(p.Precision)) * clockHz)
	total = math.Pow(math.Pow(total, 8)+math.Pow(floor, 8), 1.0/8)
	total += launch

	bd.Compute = tComp
	bd.GlobalMem = tMem
	bd.LocalMem = tLDS
	bd.Barrier = tBar
	bd.Launch = launch
	bd.Total = total
	return bd, nil
}

// RoutineBreakdown is the modeled cost of one full GEMM routine call:
// the kernel plus the §III-D layout-change copies the §IV-B
// implementation runs before it.
type RoutineBreakdown struct {
	Kernel Breakdown
	// CopySeconds is the modeled time of the layout-change copies of A
	// and B (and the C pad copy when padding is needed).
	CopySeconds float64
	// TotalSeconds includes kernel and copies.
	TotalSeconds float64
}

// RoutineTime estimates the full routine: KernelTime plus the copy
// overhead of re-laying-out A, B (and padding C). The GEMM type does
// not change the cost — the copy pass handles transposition at the same
// price — which is why the paper's Table III shows almost
// type-independent performance. The multi-device scheduler prices tiles
// with this estimate when partitioning one GEMM across a pool.
func RoutineTime(d *device.Spec, p *codegen.Params, m, n, k int) (RoutineBreakdown, error) {
	var out RoutineBreakdown
	kb, err := KernelTime(d, p, m, n, k)
	if err != nil {
		return out, err
	}
	mp, np, kp := kb.PaddedM, kb.PaddedN, kb.PaddedK
	esz := float64(p.Precision.Size())

	// Copy kernels read the source and write the padded destination.
	bytes := (float64(m*k) + float64(kp*mp)) * esz // A
	bytes += (float64(k*n) + float64(kp*np)) * esz // B
	if mp != m || np != n {
		bytes += (float64(m*n) + float64(mp*np)) * esz // C pad copy
	}
	copyBW := d.BandwidthGBs * 1e9 * d.CopyBWFrac
	out.CopySeconds = bytes/copyBW + 2*d.LaunchOverheadUS*1e-6
	out.Kernel = kb
	out.TotalSeconds = kb.Total + out.CopySeconds
	return out, nil
}

// RoutineGFlops returns the modeled full-routine performance for the
// nominal problem size.
func RoutineGFlops(d *device.Spec, p *codegen.Params, m, n, k int) (float64, error) {
	bd, err := RoutineTime(d, p, m, n, k)
	if err != nil {
		return 0, err
	}
	return 2 * float64(m) * float64(n) * float64(k) / bd.TotalSeconds / 1e9, nil
}

// KernelGFlops returns the modeled performance in GFlop/s for the
// nominal (unpadded) problem size, as the paper reports it.
func KernelGFlops(d *device.Spec, p *codegen.Params, m, n, k int) (float64, error) {
	bd, err := KernelTime(d, p, m, n, k)
	if err != nil {
		return 0, err
	}
	return 2 * float64(m) * float64(n) * float64(k) / bd.Total / 1e9, nil
}

// streamEff computes the efficiency of one operand's global-memory
// stream: layout streaming quality, power-of-two channel conflicts for
// row-major streams, work-item coalescing, and load width.
func streamEff(d *device.Spec, layout matrix.Layout, shared, strided bool, loadBytes, leadingDim int) float64 {
	eff := 1.0
	if layout == matrix.LayoutRowMajor {
		eff *= d.RowMajorEff
		// Channel/bank conflicts when the row stride is a large power
		// of two (paper: sizes that are multiples of 2048 deteriorate
		// drastically without block-major layouts).
		switch {
		case leadingDim%2048 == 0:
			eff *= d.BankConflictFactor
		case leadingDim%1024 == 0:
			eff *= (d.BankConflictFactor + 1) / 2
		case leadingDim%512 == 0:
			eff *= (d.BankConflictFactor + 3) / 4
		}
	}
	if shared {
		// Cooperative loads are emitted in coalesced order regardless
		// of the compute-phase stride mode.
		eff *= math.Max(d.CoalesceUnitStride, d.CoalesceNonUnit)
	} else if strided {
		eff *= d.CoalesceNonUnit
	} else {
		eff *= d.CoalesceUnitStride
	}
	if d.Kind == device.GPU && loadBytes < 8 {
		eff *= 0.9
	}
	return eff
}

// absorbed returns the effective element traffic after the cache absorbs
// a fraction of the redundant (raw − unique) requests.
func absorbed(raw, unique, reuse float64) float64 {
	return unique + (raw-unique)*(1-reuse)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
