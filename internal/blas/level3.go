// Reference Level-3 routines beyond GEMM: straightforward
// triple-loop SYRK and substitution TRSM with float64 accumulation,
// the element-wise oracles the blocked level3 reductions (which route
// their bulk work through the tuned device GEMM) are verified against.
// Orientation is passed as plain booleans so higher layers with richer
// Uplo/Side/Diag types can call down without an import cycle.
package blas

import (
	"fmt"

	"oclgemm/internal/matrix"
)

// SYRK computes the symmetric rank-k update on the reference path:
// C ← alpha·A·Aᵀ + beta·C (trans == NoTrans, A is n×k) or
// C ← alpha·Aᵀ·A + beta·C (trans == Trans, A is k×n), touching only
// the upper (upper == true) or lower triangle of the n×n matrix C.
// Accumulation is in-order float64, matching GEMM's reference
// semantics.
func SYRK[T matrix.Scalar](upper bool, trans Transpose, alpha T, a *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) {
	n := c.Rows
	if c.Cols != n {
		panic(fmt.Sprintf("blas: SYRK needs square C, got %dx%d", c.Rows, c.Cols))
	}
	an, k := a.Rows, a.Cols
	if trans == Trans {
		an, k = a.Cols, a.Rows
	}
	if an != n {
		panic(fmt.Sprintf("blas: SYRK dimension mismatch: op(A) is %dx%d, C is %dx%d", an, k, n, n))
	}
	at := func(i, p int) float64 {
		if trans == Trans {
			return float64(a.At(p, i))
		}
		return float64(a.At(i, p))
	}
	for i := 0; i < n; i++ {
		lo, hi := 0, i+1
		if upper {
			lo, hi = i, n
		}
		for j := lo; j < hi; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += at(i, p) * at(j, p)
			}
			c.Set(i, j, T(float64(alpha)*acc+float64(beta)*float64(c.At(i, j))))
		}
	}
}

// TRSM solves a triangular system on the reference path, overwriting B
// with the solution X:
//
//	left == true:  op(A)·X = alpha·B   (A is m×m)
//	left == false: X·op(A) = alpha·B   (A is n×n)
//
// where B is m×n and only the upper (upper == true) or lower triangle
// of A is referenced; unit == true takes the diagonal as 1 without
// reading it. Plain forward/back substitution with float64
// accumulation — O(m²n) or O(mn²), the oracle for the blocked device
// reduction.
func TRSM[T matrix.Scalar](left, upper, unit bool, trans Transpose, alpha T, a *matrix.Matrix[T], b *matrix.Matrix[T]) {
	m, n := b.Rows, b.Cols
	na := m
	if !left {
		na = n
	}
	if a.Rows != na || a.Cols != na {
		panic(fmt.Sprintf("blas: TRSM needs %dx%d A, got %dx%d", na, na, a.Rows, a.Cols))
	}
	// op(A)[i][j] honoring the stored triangle and the unit diagonal.
	opa := func(i, j int) float64 {
		if trans == Trans {
			i, j = j, i
		}
		if unit && i == j {
			return 1
		}
		if (upper && i > j) || (!upper && i < j) {
			return 0
		}
		return float64(a.At(i, j))
	}
	// op(A) is effectively lower-triangular when (lower, NoTrans) or
	// (upper, Trans): forward substitution; otherwise backward.
	forward := upper == (trans == Trans)
	if left {
		for j := 0; j < n; j++ {
			solveColumn(forward, m, opa, func(i int) float64 { return float64(alpha) * float64(b.At(i, j)) }, func(i int, v float64) { b.Set(i, j, T(v)) }, func(i int) float64 { return float64(b.At(i, j)) })
		}
		return
	}
	// Right side: X·op(A) = alpha·B row by row — each row of X solves
	// op(A)ᵀ·xᵀ = alpha·bᵀ, i.e. the transposed system, flipping the
	// substitution direction.
	for i := 0; i < m; i++ {
		solveColumn(!forward, n, func(r, c int) float64 { return opa(c, r) }, func(j int) float64 { return float64(alpha) * float64(b.At(i, j)) }, func(j int, v float64) { b.Set(i, j, T(v)) }, func(j int) float64 { return float64(b.At(i, j)) })
	}
}

// solveColumn runs one substitution sweep for L·x = rhs (forward) or
// U·x = rhs (backward), where coefficient lookups go through m(i, j)
// and the solution is written back through set as it is produced.
func solveColumn(forward bool, n int, m func(i, j int) float64, rhs func(i int) float64, set func(i int, v float64), cur func(i int) float64) {
	if forward {
		for i := 0; i < n; i++ {
			acc := rhs(i)
			for p := 0; p < i; p++ {
				acc -= m(i, p) * cur(p)
			}
			set(i, acc/m(i, i))
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		acc := rhs(i)
		for p := i + 1; p < n; p++ {
			acc -= m(i, p) * cur(p)
		}
		set(i, acc/m(i, i))
	}
}
