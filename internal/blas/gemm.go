// Package blas provides reference GEMM implementations in pure Go. They
// are the correctness oracle for every generated kernel and every
// simulated execution path in this repository: naive triple loops for
// clarity, a cache-blocked variant, and a goroutine-parallel variant for
// larger verification problems.
package blas

import (
	"fmt"
	"runtime"
	"sync"

	"oclgemm/internal/matrix"
)

// Transpose selects op(X) for a GEMM operand.
type Transpose int

const (
	// NoTrans uses X as stored.
	NoTrans Transpose = iota
	// Trans uses Xᵀ.
	Trans
)

// String returns "N" or "T".
func (t Transpose) String() string {
	if t == Trans {
		return "T"
	}
	return "N"
}

// GEMMType identifies one of the four multiplication types of the paper
// (§III): NN, NT, TN, TT.
type GEMMType struct {
	TransA, TransB Transpose
}

// GEMMTypes lists the four types in the paper's order.
var GEMMTypes = []GEMMType{
	{NoTrans, NoTrans},
	{NoTrans, Trans},
	{Trans, NoTrans},
	{Trans, Trans},
}

// String returns "NN", "NT", "TN" or "TT".
func (g GEMMType) String() string { return g.TransA.String() + g.TransB.String() }

// ParseGEMMType converts "NN"/"NT"/"TN"/"TT" to a GEMMType.
func ParseGEMMType(s string) (GEMMType, error) {
	for _, g := range GEMMTypes {
		if g.String() == s {
			return g, nil
		}
	}
	return GEMMType{}, fmt.Errorf("blas: unknown GEMM type %q", s)
}

func opDims[T matrix.Scalar](x *matrix.Matrix[T], t Transpose) (rows, cols int) {
	if t == Trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

func opAt[T matrix.Scalar](x *matrix.Matrix[T], t Transpose, r, c int) T {
	if t == Trans {
		return x.At(c, r)
	}
	return x.At(r, c)
}

func checkDims[T matrix.Scalar](ta, tb Transpose, a, b, c *matrix.Matrix[T]) (m, n, k int) {
	am, ak := opDims(a, ta)
	bk, bn := opDims(b, tb)
	if ak != bk {
		panic(fmt.Sprintf("blas: inner dimensions disagree: op(A) is %dx%d, op(B) is %dx%d", am, ak, bk, bn))
	}
	if c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("blas: C is %dx%d, want %dx%d", c.Rows, c.Cols, am, bn))
	}
	return am, bn, ak
}

// GEMM computes C ← alpha·op(A)·op(B) + beta·C with the naive triple
// loop, accumulating in float64 regardless of T for a tight oracle.
func GEMM[T matrix.Scalar](ta, tb Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) {
	m, n, k := checkDims(ta, tb, a, b, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(opAt(a, ta, i, p)) * float64(opAt(b, tb, p, j))
			}
			c.Set(i, j, T(float64(alpha)*acc+float64(beta)*float64(c.At(i, j))))
		}
	}
}

// blockDim is the cache-block edge used by GEMMBlocked.
const blockDim = 64

// GEMMBlocked computes C ← alpha·op(A)·op(B) + beta·C with a simple
// three-level cache blocking. It exists both as a faster oracle and as
// the "ATLAS-style tuned C" reference point discussed in the paper's
// Fig. 11 comparison.
func GEMMBlocked[T matrix.Scalar](ta, tb Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) {
	m, n, k := checkDims(ta, tb, a, b, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.Set(i, j, T(float64(beta)*float64(c.At(i, j))))
		}
	}
	for ii := 0; ii < m; ii += blockDim {
		iEnd := min(ii+blockDim, m)
		for pp := 0; pp < k; pp += blockDim {
			pEnd := min(pp+blockDim, k)
			for jj := 0; jj < n; jj += blockDim {
				jEnd := min(jj+blockDim, n)
				for i := ii; i < iEnd; i++ {
					for p := pp; p < pEnd; p++ {
						av := float64(alpha) * float64(opAt(a, ta, i, p))
						if av == 0 {
							continue
						}
						for j := jj; j < jEnd; j++ {
							c.Set(i, j, T(float64(c.At(i, j))+av*float64(opAt(b, tb, p, j))))
						}
					}
				}
			}
		}
	}
}

// GEMMParallel computes C ← alpha·op(A)·op(B) + beta·C, parallelizing
// GEMMBlocked's row panels across GOMAXPROCS goroutines.
func GEMMParallel[T matrix.Scalar](ta, tb Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) {
	m, n, k := checkDims(ta, tb, a, b, c)
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		GEMMBlocked(ta, tb, alpha, a, b, beta, c)
		return
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := min(lo+rowsPer, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					var acc float64
					for p := 0; p < k; p++ {
						acc += float64(opAt(a, ta, i, p)) * float64(opAt(b, tb, p, j))
					}
					c.Set(i, j, T(float64(alpha)*acc+float64(beta)*float64(c.At(i, j))))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// FlopCount returns the floating-point operation count 2·m·n·k the paper
// uses to convert kernel times to GFlop/s.
func FlopCount(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}
