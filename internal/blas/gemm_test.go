package blas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oclgemm/internal/matrix"
)

func randomMat(rows, cols int, seed int64) *matrix.Matrix[float64] {
	m := matrix.New[float64](rows, cols, matrix.RowMajor)
	m.FillRandom(rand.New(rand.NewSource(seed)))
	return m
}

func TestGEMMTypeStrings(t *testing.T) {
	want := []string{"NN", "NT", "TN", "TT"}
	for i, g := range GEMMTypes {
		if g.String() != want[i] {
			t.Errorf("GEMMTypes[%d] = %s, want %s", i, g, want[i])
		}
		back, err := ParseGEMMType(want[i])
		if err != nil || back != g {
			t.Errorf("ParseGEMMType(%s) failed: %v %v", want[i], back, err)
		}
	}
	if _, err := ParseGEMMType("XX"); err == nil {
		t.Error("ParseGEMMType should reject XX")
	}
}

// 2x2 hand-checked case.
func TestGEMMKnownValues(t *testing.T) {
	a := matrix.FromSlice(2, 2, matrix.RowMajor, []float64{1, 2, 3, 4})
	b := matrix.FromSlice(2, 2, matrix.RowMajor, []float64{5, 6, 7, 8})
	c := matrix.New[float64](2, 2, matrix.RowMajor)
	GEMM(NoTrans, NoTrans, 1, a, b, 0, c)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("C[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestGEMMAlphaBeta(t *testing.T) {
	a := matrix.FromSlice(1, 1, matrix.RowMajor, []float64{3})
	b := matrix.FromSlice(1, 1, matrix.RowMajor, []float64{4})
	c := matrix.FromSlice(1, 1, matrix.RowMajor, []float64{10})
	GEMM(NoTrans, NoTrans, 2, a, b, 0.5, c)
	if c.Data[0] != 2*12+0.5*10 {
		t.Errorf("alpha/beta wrong: got %v, want 29", c.Data[0])
	}
}

func TestGEMMTransposeTypes(t *testing.T) {
	// For each type, compare against explicit pre-transposed naive NN.
	m, n, k := 7, 5, 9
	for _, g := range GEMMTypes {
		var a, b *matrix.Matrix[float64]
		if g.TransA == Trans {
			a = randomMat(k, m, 1)
		} else {
			a = randomMat(m, k, 1)
		}
		if g.TransB == Trans {
			b = randomMat(n, k, 2)
		} else {
			b = randomMat(k, n, 2)
		}
		c := randomMat(m, n, 3)
		want := c.Clone()
		GEMM(g.TransA, g.TransB, 1.5, a, b, 0.25, c)

		aEff := a
		if g.TransA == Trans {
			aEff = a.Transpose()
		}
		bEff := b
		if g.TransB == Trans {
			bEff = b.Transpose()
		}
		GEMM(NoTrans, NoTrans, 1.5, aEff, bEff, 0.25, want)
		if d := matrix.MaxRelDiff(c, want); d > 1e-14 {
			t.Errorf("%s: diff %g vs pre-transposed NN", g, d)
		}
	}
}

func TestGEMMDimensionPanics(t *testing.T) {
	a := matrix.New[float64](2, 3, matrix.RowMajor)
	b := matrix.New[float64](4, 2, matrix.RowMajor) // inner mismatch
	c := matrix.New[float64](2, 2, matrix.RowMajor)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on inner mismatch")
			}
		}()
		GEMM(NoTrans, NoTrans, 1, a, b, 0, c)
	}()
	b2 := matrix.New[float64](3, 2, matrix.RowMajor)
	cBad := matrix.New[float64](3, 2, matrix.RowMajor)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on C shape mismatch")
			}
		}()
		GEMM(NoTrans, NoTrans, 1, a, b2, 0, cBad)
	}()
}

func TestBlockedMatchesNaive(t *testing.T) {
	for _, g := range GEMMTypes {
		m, n, k := 70, 65, 130 // exercise partial blocks
		var a, b *matrix.Matrix[float64]
		if g.TransA == Trans {
			a = randomMat(k, m, 4)
		} else {
			a = randomMat(m, k, 4)
		}
		if g.TransB == Trans {
			b = randomMat(n, k, 5)
		} else {
			b = randomMat(k, n, 5)
		}
		c1 := randomMat(m, n, 6)
		c2 := c1.Clone()
		GEMM(g.TransA, g.TransB, 0.7, a, b, 1.3, c1)
		GEMMBlocked(g.TransA, g.TransB, 0.7, a, b, 1.3, c2)
		if d := matrix.MaxRelDiff(c1, c2); d > 1e-12 {
			t.Errorf("%s: blocked diverges from naive by %g", g, d)
		}
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	m, n, k := 90, 40, 55
	a := randomMat(m, k, 7)
	b := randomMat(k, n, 8)
	c1 := randomMat(m, n, 9)
	c2 := c1.Clone()
	GEMM(NoTrans, NoTrans, 1, a, b, 0.5, c1)
	GEMMParallel(NoTrans, NoTrans, 1, a, b, 0.5, c2)
	if d := matrix.MaxRelDiff(c1, c2); d > 1e-12 {
		t.Errorf("parallel diverges from naive by %g", d)
	}
}

func TestGEMMSingle(t *testing.T) {
	a := matrix.New[float32](8, 8, matrix.RowMajor)
	b := matrix.New[float32](8, 8, matrix.RowMajor)
	c := matrix.New[float32](8, 8, matrix.RowMajor)
	a.FillRandom(rand.New(rand.NewSource(10)))
	b.FillRandom(rand.New(rand.NewSource(11)))
	GEMM(NoTrans, NoTrans, 1, a, b, 0, c)
	// Identity check: A*I = A.
	id := matrix.New[float32](8, 8, matrix.RowMajor)
	for i := 0; i < 8; i++ {
		id.Set(i, i, 1)
	}
	c2 := matrix.New[float32](8, 8, matrix.RowMajor)
	GEMM(NoTrans, NoTrans, 1, a, id, 0, c2)
	if d := matrix.MaxRelDiff(a, c2); d > 1e-6 {
		t.Errorf("A*I != A, diff %g", d)
	}
}

func TestFlopCount(t *testing.T) {
	if FlopCount(10, 20, 30) != 12000 {
		t.Errorf("FlopCount wrong: %v", FlopCount(10, 20, 30))
	}
}

// Property: GEMM is linear in alpha — C(2a) - C(0 via beta=1 trick)
// equals 2*(C(a) - base). We verify alpha-scaling on a zero-beta call.
func TestGEMMAlphaLinearityProperty(t *testing.T) {
	f := func(seed int64, alphaBits uint8) bool {
		alpha := float64(alphaBits%7) + 0.5
		m, n, k := 6, 5, 4
		a := randomMat(m, k, seed)
		b := randomMat(k, n, seed+1)
		c1 := matrix.New[float64](m, n, matrix.RowMajor)
		c2 := matrix.New[float64](m, n, matrix.RowMajor)
		GEMM(NoTrans, NoTrans, 1, a, b, 0, c1)
		GEMM(NoTrans, NoTrans, alpha, a, b, 0, c2)
		for i := range c1.Data {
			if diff := c2.Data[i] - alpha*c1.Data[i]; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
