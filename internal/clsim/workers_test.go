package clsim

import (
	"errors"
	"testing"
)

// The Workers option must not change results: work-groups are
// independent, so serial (Workers = 1) and parallel execution produce
// bit-identical output.
func TestWorkersDeterministicLockstep(t *testing.T) {
	in := make([]float64, 64)
	for i := range in {
		in[i] = float64(i) * 0.5
	}
	nd := NDRange{Global: [2]int{64, 1}, Local: [2]int{8, 1}}
	var ref []float64
	for _, workers := range []int{1, 2, 7, 0} {
		ctx := NewContext(testDevice())
		q := NewQueue(ctx)
		q.Workers = workers
		k := &lockstepSum{in: in, out: make([]float64, 8)}
		if err := q.RunLockstep(k, nd); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = k.out
			continue
		}
		for i := range ref {
			if k.out[i] != ref[i] {
				t.Errorf("workers=%d: group %d = %v, want %v", workers, i, k.out[i], ref[i])
			}
		}
	}
}

// The serial path must report kernel errors and stats like the pool.
func TestWorkersSerialErrorsAndStats(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	q.Workers = 1
	nd := NDRange{Global: [2]int{8, 1}, Local: [2]int{8, 1}}
	if err := q.RunLockstep(lockstepPanic{}, nd); !errors.Is(err, ErrLocalMemExceeded) {
		t.Errorf("serial path: want ErrLocalMemExceeded, got %v", err)
	}

	in := make([]float64, 16)
	k := &lockstepSum{in: in, out: make([]float64, 2)}
	nd = NDRange{Global: [2]int{16, 1}, Local: [2]int{8, 1}}
	if err := q.RunLockstep(k, nd); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.WorkGroupsRun != 1+2 || st.KernelLaunches != 2 {
		t.Errorf("serial stats: %+v", st)
	}
}

// Workers applies to the concurrent (work-item goroutine) executor too.
func TestWorkersConcurrentExecutor(t *testing.T) {
	var ref []float32
	for _, workers := range []int{1, 3} {
		ctx := NewContext(testDevice())
		q := NewQueue(ctx)
		q.Workers = workers
		k := &idKernel{out: make([]float32, 32)}
		nd := NDRange{Global: [2]int{8, 4}, Local: [2]int{4, 2}}
		if err := q.Run(k, nd); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = k.out
			continue
		}
		for i, v := range k.out {
			if v != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, v, ref[i])
			}
		}
	}
}

// Create/release accounting must balance, survive double release, and
// expose leaks as Live > 0.
func TestBufferStatsAccounting(t *testing.T) {
	ctx := NewContext(testDevice())
	b1, err := ctx.CreateBuffer(1024)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ctx.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	st := ctx.BufferStats()
	if st.Created != 2 || st.Released != 0 || st.Live != 2 || st.LiveBytes != 1088 {
		t.Errorf("after create: %+v", st)
	}
	b1.Release()
	b1.Release() // idempotent: must not double-count
	st = ctx.BufferStats()
	if st.Created != 2 || st.Released != 1 || st.Live != 1 || st.LiveBytes != 64 {
		t.Errorf("after release: %+v", st)
	}
	b2.Release()
	st = ctx.BufferStats()
	if st.Created != st.Released || st.Live != 0 || st.LiveBytes != 0 {
		t.Errorf("after full cleanup: %+v", st)
	}
}
