package clsim

import (
	"fmt"
	"unsafe"
)

// Buffer is a device memory object (clCreateBuffer). Storage is a
// uint64 word array so that float32 and float64 views are both
// well-aligned; the typed views alias the same storage, mirroring
// OpenCL's untyped buffer objects.
type Buffer struct {
	ctx   *Context
	size  int // bytes
	words []uint64
	freed bool
}

// CreateBuffer allocates a zero-filled buffer of size bytes, which must
// fit in the device's global memory.
func (c *Context) CreateBuffer(size int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("clsim: non-positive buffer size %d", size)
	}
	limit := int64(c.Device.Spec.GlobalMemGB * float64(1<<30))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allocated+int64(size) > limit {
		return nil, fmt.Errorf("clsim: allocation of %d bytes exceeds device global memory (%d of %d bytes in use)",
			size, c.allocated, limit)
	}
	c.allocated += int64(size)
	c.buffers++
	c.created++
	c.o.bufCreated.Inc()
	c.o.bufLive.Add(1)
	c.o.bufLiveBytes.Add(int64(size))
	return &Buffer{
		ctx:   c,
		size:  size,
		words: make([]uint64, (size+7)/8),
	}, nil
}

// Size returns the buffer size in bytes.
func (b *Buffer) Size() int { return b.size }

// Release returns the buffer's bytes to the context accounting. Using a
// released buffer panics.
func (b *Buffer) Release() {
	if b.freed {
		return
	}
	b.freed = true
	b.ctx.mu.Lock()
	b.ctx.allocated -= int64(b.size)
	b.ctx.buffers--
	b.ctx.released++
	b.ctx.o.bufReleased.Inc()
	b.ctx.o.bufLive.Add(-1)
	b.ctx.o.bufLiveBytes.Add(-int64(b.size))
	b.ctx.mu.Unlock()
	b.words = nil
}

func (b *Buffer) check() {
	if b.freed {
		panic("clsim: use of released buffer")
	}
}

// Float32 returns a float32 view of the buffer (size/4 elements) that
// aliases the buffer storage.
func (b *Buffer) Float32() []float32 {
	b.check()
	if len(b.words) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b.words[0])), b.size/4)
}

// Float64 returns a float64 view of the buffer (size/8 elements) that
// aliases the buffer storage.
func (b *Buffer) Float64() []float64 {
	b.check()
	if len(b.words) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b.words[0])), b.size/8)
}

// WriteFloat32 copies host data into the buffer starting at element
// offset (clEnqueueWriteBuffer).
func (q *Queue) WriteFloat32(b *Buffer, offset int, host []float32) error {
	b.check()
	dst := b.Float32()
	if offset < 0 || offset+len(host) > len(dst) {
		return fmt.Errorf("clsim: write of %d elements at %d exceeds buffer of %d", len(host), offset, len(dst))
	}
	copy(dst[offset:], host)
	q.mu.Lock()
	q.stats.BytesWritten += int64(4 * len(host))
	q.mu.Unlock()
	q.Ctx.o.bytesW.Add(int64(4 * len(host)))
	return nil
}

// WriteFloat64 copies host data into the buffer starting at element
// offset.
func (q *Queue) WriteFloat64(b *Buffer, offset int, host []float64) error {
	b.check()
	dst := b.Float64()
	if offset < 0 || offset+len(host) > len(dst) {
		return fmt.Errorf("clsim: write of %d elements at %d exceeds buffer of %d", len(host), offset, len(dst))
	}
	copy(dst[offset:], host)
	q.mu.Lock()
	q.stats.BytesWritten += int64(8 * len(host))
	q.mu.Unlock()
	q.Ctx.o.bytesW.Add(int64(8 * len(host)))
	return nil
}

// ReadFloat32 copies buffer contents to host (clEnqueueReadBuffer).
func (q *Queue) ReadFloat32(b *Buffer, offset int, host []float32) error {
	b.check()
	src := b.Float32()
	if offset < 0 || offset+len(host) > len(src) {
		return fmt.Errorf("clsim: read of %d elements at %d exceeds buffer of %d", len(host), offset, len(src))
	}
	copy(host, src[offset:])
	q.mu.Lock()
	q.stats.BytesRead += int64(4 * len(host))
	q.mu.Unlock()
	q.Ctx.o.bytesR.Add(int64(4 * len(host)))
	return nil
}

// ReadFloat64 copies buffer contents to host.
func (q *Queue) ReadFloat64(b *Buffer, offset int, host []float64) error {
	b.check()
	src := b.Float64()
	if offset < 0 || offset+len(host) > len(src) {
		return fmt.Errorf("clsim: read of %d elements at %d exceeds buffer of %d", len(host), offset, len(src))
	}
	copy(host, src[offset:])
	q.mu.Lock()
	q.stats.BytesRead += int64(8 * len(host))
	q.mu.Unlock()
	q.Ctx.o.bytesR.Add(int64(8 * len(host)))
	return nil
}
