package clsim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrLocalMemExceeded reports a kernel whose local-memory allocations do
// not fit the device. The tuner treats such kernels like the paper
// treats kernels that fail compilation: discarded and not counted.
var ErrLocalMemExceeded = errors.New("clsim: local memory allocation exceeds device capacity")

// ErrBarrierDivergence reports a kernel in which some work-items of a
// group reached a barrier while another finished without it (undefined
// behaviour in OpenCL; detected and reported here).
var ErrBarrierDivergence = errors.New("clsim: work-items diverged at a barrier")

// Group is the per-work-group execution state: identity, local memory,
// and the barrier shared by the group's work-items.
type Group struct {
	id  [2]int
	nd  NDRange
	dev *Device

	localUsed int
	barrier   *wgBarrier
	barriers  int64
}

// ID returns the group index in dimension d.
func (g *Group) ID(d int) int { return g.id[d] }

// Size returns work-items per group.
func (g *Group) Size() int { return g.nd.GroupSize() }

// LocalSize returns the group size in dimension d.
func (g *Group) LocalSize(d int) int { return g.nd.Local[d] }

// NumGroups returns the group-grid extent in dimension d.
func (g *Group) NumGroups(d int) int { return g.nd.NumGroups()[d] }

// AllocLocalFloat32 allocates n float32 elements of local memory.
// It panics with ErrLocalMemExceeded when the device capacity is
// exceeded; executors convert the panic into an error result.
func (g *Group) AllocLocalFloat32(n int) []float32 {
	g.takeLocal(4 * n)
	return make([]float32, n)
}

// AllocLocalFloat64 allocates n float64 elements of local memory.
func (g *Group) AllocLocalFloat64(n int) []float64 {
	g.takeLocal(8 * n)
	return make([]float64, n)
}

// TakeLocal charges bytes of local memory against the device capacity
// without allocating backing storage. Kernels that pool their local
// slabs across launches use it so the per-group capacity accounting —
// and its ErrLocalMemExceeded panic — stays exactly as strict as
// AllocLocalFloat32/64.
func (g *Group) TakeLocal(bytes int) { g.takeLocal(bytes) }

func (g *Group) takeLocal(bytes int) {
	g.localUsed += bytes
	if g.localUsed > g.dev.Spec.LocalMemBytes() {
		panic(ErrLocalMemExceeded)
	}
}

// LocalBytesUsed returns the local memory the kernel has allocated so far.
func (g *Group) LocalBytesUsed() int { return g.localUsed }

// Item is the per-work-item handle passed to kernel code.
type Item struct {
	group   *Group
	localID [2]int
}

// Group returns the item's work-group.
func (it *Item) Group() *Group { return it.group }

// LocalID returns get_local_id(d).
func (it *Item) LocalID(d int) int { return it.localID[d] }

// GlobalID returns get_global_id(d).
func (it *Item) GlobalID(d int) int {
	return it.group.id[d]*it.group.nd.Local[d] + it.localID[d]
}

// GroupID returns get_group_id(d).
func (it *Item) GroupID(d int) int { return it.group.id[d] }

// LocalSize returns get_local_size(d).
func (it *Item) LocalSize(d int) int { return it.group.nd.Local[d] }

// GlobalSize returns get_global_size(d).
func (it *Item) GlobalSize(d int) int { return it.group.nd.Global[d] }

// LinearLocalID returns the row-major flattened local id
// (local_id(1)*local_size(0) + local_id(0)), matching OpenCL's
// get_local_linear_id for 2-D ranges.
func (it *Item) LinearLocalID() int {
	return it.localID[1]*it.group.nd.Local[0] + it.localID[0]
}

// Barrier executes barrier(CLK_LOCAL_MEM_FENCE): no work-item of the
// group proceeds until all have arrived.
func (it *Item) Barrier() {
	atomic.AddInt64(&it.group.barriers, 1)
	it.group.barrier.wait()
}

// WorkItemKernel is kernel code expressed per work-item, the way OpenCL
// kernels are written (SPMD). SetupGroup runs once per work-group before
// its items start and typically allocates local memory; the returned
// value is handed to every Run call of that group.
type WorkItemKernel interface {
	Name() string
	SetupGroup(g *Group) any
	Run(it *Item, shared any)
}

// GroupKernel is kernel code expressed in barrier-phase form: RunGroup
// drives all work-items of one group through the kernel's phases via
// ForAll, which is semantically a loop over work-items followed by a
// barrier. This lockstep form avoids a goroutine per work-item and is
// used by the native GEMM kernels.
type GroupKernel interface {
	Name() string
	RunGroup(g *GroupRun)
}

// GroupRun drives one work-group of a GroupKernel.
type GroupRun struct {
	*Group
}

// ForAll executes fn for every work-item of the group (arguments are
// local ids lx, ly) and then performs an implicit barrier.
func (g *GroupRun) ForAll(fn func(lx, ly int)) {
	for ly := 0; ly < g.nd.Local[1]; ly++ {
		for lx := 0; lx < g.nd.Local[0]; lx++ {
			fn(lx, ly)
		}
	}
	g.barriers++
}

// PhaseBarrier records one barrier without iterating work-items. Fast
// kernel paths that fuse a whole ForAll phase into bulk operations
// (panel-row copies, register-tiled loops) call it once per fused phase
// so their barrier statistics stay identical to the generic
// phase-by-phase form — tests assert fast and generic launches report
// the same QueueStats.
func (g *GroupRun) PhaseBarrier() { g.barriers++ }

// GlobalID0 returns the global id in dimension 0 for local id lx.
func (g *GroupRun) GlobalID0(lx int) int { return g.id[0]*g.nd.Local[0] + lx }

// GlobalID1 returns the global id in dimension 1 for local id ly.
func (g *GroupRun) GlobalID1(ly int) int { return g.id[1]*g.nd.Local[1] + ly }

// workerCount resolves the queue's Workers option: 0 (or negative)
// means one worker per available CPU.
func (q *Queue) workerCount() int {
	if q.Workers > 0 {
		return q.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachGroup dispatches every work-group id of the NDRange to run,
// either serially (one worker) or over a pool of worker goroutines.
// Work-groups of one launch are independent in the OpenCL execution
// model, so the schedule cannot change results. The first error wins.
func (q *Queue) forEachGroup(nd NDRange, run func(gid [2]int) error) error {
	groups := nd.NumGroups()
	if q.workerCount() == 1 {
		var firstErr error
		for gy := 0; gy < groups[1]; gy++ {
			for gx := 0; gx < groups[0]; gx++ {
				if err := run([2]int{gx, gy}); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}
	var firstErr atomic.Value
	work := make(chan [2]int)
	var wg sync.WaitGroup
	for w := 0; w < q.workerCount(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gid := range work {
				if err := run(gid); err != nil {
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	for gy := 0; gy < groups[1]; gy++ {
		for gx := 0; gx < groups[0]; gx++ {
			work <- [2]int{gx, gy}
		}
	}
	close(work)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return err
	}
	return nil
}

// Run executes a WorkItemKernel over the NDRange with one goroutine per
// work-item inside each group (true concurrent execution with a cyclic
// barrier). Work-groups are distributed over the queue's worker pool.
// Kernel panics become errors.
func (q *Queue) Run(k WorkItemKernel, nd NDRange) error {
	if err := nd.Validate(q.Ctx.Device); err != nil {
		return fmt.Errorf("kernel %s: %w", k.Name(), err)
	}
	if err := q.launchAllowed(k.Name()); err != nil {
		return err
	}
	var barriers int64
	err := q.forEachGroup(nd, func(gid [2]int) error {
		return q.runGroupConcurrent(k, nd, gid, &barriers)
	})

	q.addLaunch(int64(nd.TotalGroups()), int64(nd.Global[0])*int64(nd.Global[1]), barriers)
	if err != nil {
		return fmt.Errorf("kernel %s: %w", k.Name(), err)
	}
	return nil
}

func (q *Queue) runGroupConcurrent(k WorkItemKernel, nd NDRange, gid [2]int, barriers *int64) (err error) {
	size := nd.GroupSize()
	g := &Group{id: gid, nd: nd, dev: q.Ctx.Device, barrier: newWGBarrier(size)}
	defer func() {
		atomic.AddInt64(barriers, g.barriers)
		if r := recover(); r != nil {
			err = recoveredError(r)
		}
	}()
	shared := k.SetupGroup(g)

	errs := make(chan error, size)
	var iwg sync.WaitGroup
	for ly := 0; ly < nd.Local[1]; ly++ {
		for lx := 0; lx < nd.Local[0]; lx++ {
			iwg.Add(1)
			go func(lx, ly int) {
				defer iwg.Done()
				it := &Item{group: g, localID: [2]int{lx, ly}}
				defer g.barrier.leave()
				defer func() {
					if r := recover(); r != nil {
						g.barrier.abort(recoveredError(r))
						errs <- recoveredError(r)
					}
				}()
				k.Run(it, shared)
			}(lx, ly)
		}
	}
	iwg.Wait()
	select {
	case e := <-errs:
		return e
	default:
	}
	if e := g.barrier.err(); e != nil {
		return e
	}
	return nil
}

// RunLockstep executes a GroupKernel over the NDRange, distributing
// independent groups over the queue's worker pool (bounded by the
// Workers option). Kernel panics become errors.
//
// The single-worker path is allocation-free in the steady state:
// GroupRun frames are recycled through a queue-owned free list (a
// mutex-guarded stack, not sync.Pool, whose GC-droppable items would
// defeat the warm-launch zero-allocation guarantee) and the group loop
// runs without closures.
func (q *Queue) RunLockstep(k GroupKernel, nd NDRange) error {
	if err := nd.Validate(q.Ctx.Device); err != nil {
		return fmt.Errorf("kernel %s: %w", k.Name(), err)
	}
	if q.LaunchHook != nil {
		if err := q.launchAllowed(k.Name()); err != nil {
			return err
		}
	}
	var barriers int64
	var err error
	if q.workerCount() == 1 {
		barriers, err = q.runLockstepSerial(k, nd)
	} else {
		barriers, err = q.runLockstepParallel(k, nd)
	}
	q.addLaunch(int64(nd.TotalGroups()), int64(nd.Global[0])*int64(nd.Global[1]), barriers)
	if err != nil {
		return fmt.Errorf("kernel %s: %w", k.Name(), err)
	}
	return nil
}

func (q *Queue) runLockstepSerial(k GroupKernel, nd NDRange) (int64, error) {
	groups := nd.NumGroups()
	var barriers int64
	var firstErr error
	for gy := 0; gy < groups[1]; gy++ {
		for gx := 0; gx < groups[0]; gx++ {
			g := q.getGroupRun()
			*g.Group = Group{id: [2]int{gx, gy}, nd: nd, dev: q.Ctx.Device}
			err := runLockstepGroup(k, g)
			barriers += g.barriers
			q.putGroupRun(g)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return barriers, firstErr
}

func (q *Queue) runLockstepParallel(k GroupKernel, nd NDRange) (int64, error) {
	var barriers int64
	err := q.forEachGroup(nd, func(gid [2]int) error {
		g := q.getGroupRun()
		*g.Group = Group{id: gid, nd: nd, dev: q.Ctx.Device}
		err := runLockstepGroup(k, g)
		atomic.AddInt64(&barriers, g.barriers)
		q.putGroupRun(g)
		return err
	})
	return barriers, err
}

// runLockstepGroup runs one group, converting kernel panics (local
// memory exhaustion, bounds faults) into errors.
func runLockstepGroup(k GroupKernel, g *GroupRun) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError(r)
		}
	}()
	k.RunGroup(g)
	return nil
}

func (q *Queue) getGroupRun() *GroupRun {
	q.grMu.Lock()
	var g *GroupRun
	if n := len(q.grFree); n > 0 {
		g = q.grFree[n-1]
		q.grFree = q.grFree[:n-1]
	}
	q.grMu.Unlock()
	if g == nil {
		g = &GroupRun{Group: &Group{}}
	}
	return g
}

func (q *Queue) putGroupRun(g *GroupRun) {
	q.grMu.Lock()
	q.grFree = append(q.grFree, g)
	q.grMu.Unlock()
}

// launchAllowed consults the queue's LaunchHook (simulated launch-time
// failures).
func (q *Queue) launchAllowed(name string) error {
	if q.LaunchHook == nil {
		return nil
	}
	if err := q.LaunchHook(name); err != nil {
		return fmt.Errorf("kernel %s: launch rejected: %w", name, err)
	}
	return nil
}

func recoveredError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("clsim: kernel panic: %v", r)
}
