package clsim

import (
	"errors"
	"testing"

	"oclgemm/internal/device"
)

func testDevice() *Device { return &Device{Spec: device.Tahiti()} }

func TestDefaultPlatform(t *testing.T) {
	p := DefaultPlatform()
	if len(p.Devices) != 6 {
		t.Fatalf("platform has %d devices, want 6", len(p.Devices))
	}
	if p.Devices[0].Name() != "Tahiti (Radeon HD 7970)" {
		t.Errorf("first device = %q", p.Devices[0].Name())
	}
}

func TestBufferViewsAliasSameStorage(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	b, err := ctx.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	f64 := b.Float64()
	f32 := b.Float32()
	if len(f64) != 8 || len(f32) != 16 {
		t.Fatalf("view lengths %d/%d, want 8/16", len(f64), len(f32))
	}
	f64[0] = 1.0
	// 1.0 in float64 is 0x3FF0000000000000; its upper 32 bits alias the
	// second float32 slot on little-endian storage.
	if f32[1] == 0 {
		t.Error("views do not alias the same storage")
	}
	host := make([]float64, 8)
	if err := q.ReadFloat64(b, 0, host); err != nil {
		t.Fatal(err)
	}
	if host[0] != 1.0 {
		t.Errorf("read back %v, want 1.0", host[0])
	}
}

func TestBufferBounds(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	b, _ := ctx.CreateBuffer(32)
	defer b.Release()
	if err := q.WriteFloat64(b, 2, []float64{1, 2, 3}); err == nil {
		t.Error("out-of-bounds write must fail")
	}
	if err := q.ReadFloat32(b, 6, make([]float32, 4)); err == nil {
		t.Error("out-of-bounds read must fail")
	}
	if err := q.WriteFloat64(b, -1, []float64{1}); err == nil {
		t.Error("negative offset must fail")
	}
	if _, err := ctx.CreateBuffer(0); err == nil {
		t.Error("zero-size buffer must fail")
	}
}

func TestGlobalMemoryAccounting(t *testing.T) {
	ctx := NewContext(testDevice()) // Tahiti: 3 GB
	if _, err := ctx.CreateBuffer(4 << 30); err == nil {
		t.Fatal("allocation above device memory must fail")
	}
	b1, err := ctx.CreateBuffer(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.AllocatedBytes() != 1<<30 || ctx.LiveBuffers() != 1 {
		t.Errorf("accounting wrong after alloc: %d bytes, %d buffers", ctx.AllocatedBytes(), ctx.LiveBuffers())
	}
	b1.Release()
	b1.Release() // idempotent
	if ctx.AllocatedBytes() != 0 || ctx.LiveBuffers() != 0 {
		t.Errorf("accounting wrong after release")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("use after release must panic")
			}
		}()
		b1.Float64()
	}()
}

func TestNDRangeValidate(t *testing.T) {
	d := testDevice() // MaxWGSize 256
	good := NDRange{Global: [2]int{64, 64}, Local: [2]int{16, 16}}
	if err := good.Validate(d); err != nil {
		t.Errorf("valid range rejected: %v", err)
	}
	if good.GroupSize() != 256 || good.TotalGroups() != 16 {
		t.Errorf("geometry wrong: %d %d", good.GroupSize(), good.TotalGroups())
	}
	bad := NDRange{Global: [2]int{60, 64}, Local: [2]int{16, 16}}
	if err := bad.Validate(d); err == nil {
		t.Error("non-divisible range must fail")
	}
	big := NDRange{Global: [2]int{64, 64}, Local: [2]int{32, 16}}
	if err := big.Validate(d); err == nil {
		t.Error("oversized work-group must fail on Tahiti (max 256)")
	}
	neg := NDRange{Global: [2]int{0, 64}, Local: [2]int{16, 16}}
	if err := neg.Validate(d); err == nil {
		t.Error("zero global size must fail")
	}
}

// reverseKernel reverses a vector within each work-group using local
// memory and one barrier — exercises ids, local memory, and barriers.
type reverseKernel struct {
	data []float32
}

func (k *reverseKernel) Name() string { return "reverse" }

func (k *reverseKernel) SetupGroup(g *Group) any {
	return g.AllocLocalFloat32(g.LocalSize(0))
}

func (k *reverseKernel) Run(it *Item, shared any) {
	lm := shared.([]float32)
	lx := it.LocalID(0)
	n := it.LocalSize(0)
	lm[lx] = k.data[it.GlobalID(0)]
	it.Barrier()
	k.data[it.GlobalID(0)] = lm[n-1-lx]
}

func TestConcurrentExecutorReverse(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	n, wg := 64, 16
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i)
	}
	k := &reverseKernel{data: data}
	nd := NDRange{Global: [2]int{n, 1}, Local: [2]int{wg, 1}}
	if err := q.Run(k, nd); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < n/wg; g++ {
		for i := 0; i < wg; i++ {
			want := float32(g*wg + wg - 1 - i)
			if data[g*wg+i] != want {
				t.Fatalf("data[%d] = %v, want %v", g*wg+i, data[g*wg+i], want)
			}
		}
	}
	st := q.Stats()
	if st.KernelLaunches != 1 || st.WorkGroupsRun != 4 || st.WorkItemsRun != 64 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.BarriersHit != 64 { // every work-item hit one barrier
		t.Errorf("barriers = %d, want 64", st.BarriersHit)
	}
}

// idKernel writes each item's flattened global id — checks 2-D indexing.
type idKernel struct{ out []float32 }

func (k *idKernel) Name() string          { return "ids" }
func (k *idKernel) SetupGroup(*Group) any { return nil }
func (k *idKernel) Run(it *Item, _ any) {
	k.out[it.GlobalID(1)*it.GlobalSize(0)+it.GlobalID(0)] =
		float32(it.GroupID(0) + 100*it.GroupID(1) + 10000*it.LinearLocalID())
}

func TestTwoDimensionalIndexing(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	nd := NDRange{Global: [2]int{8, 6}, Local: [2]int{4, 3}}
	k := &idKernel{out: make([]float32, 48)}
	if err := q.Run(k, nd); err != nil {
		t.Fatal(err)
	}
	// Item at global (5, 4): group (1, 1), local (1, 1), linear 1*4+1=5.
	got := k.out[4*8+5]
	if got != float32(1+100*1+10000*5) {
		t.Errorf("indexing wrong: got %v", got)
	}
}

// divergentKernel: half the items hit a barrier, half return.
type divergentKernel struct{}

func (divergentKernel) Name() string          { return "divergent" }
func (divergentKernel) SetupGroup(*Group) any { return nil }
func (divergentKernel) Run(it *Item, _ any) {
	if it.LocalID(0) < it.LocalSize(0)/2 {
		it.Barrier()
	}
}

func TestBarrierDivergenceDetected(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	nd := NDRange{Global: [2]int{16, 1}, Local: [2]int{16, 1}}
	err := q.Run(divergentKernel{}, nd)
	if !errors.Is(err, ErrBarrierDivergence) {
		t.Errorf("want ErrBarrierDivergence, got %v", err)
	}
}

// hugeLocalKernel allocates more local memory than any device has.
type hugeLocalKernel struct{}

func (hugeLocalKernel) Name() string { return "huge-local" }
func (hugeLocalKernel) SetupGroup(g *Group) any {
	return g.AllocLocalFloat64(1 << 20)
}
func (hugeLocalKernel) Run(*Item, any) {}

func TestLocalMemoryLimit(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	nd := NDRange{Global: [2]int{16, 1}, Local: [2]int{16, 1}}
	err := q.Run(hugeLocalKernel{}, nd)
	if !errors.Is(err, ErrLocalMemExceeded) {
		t.Errorf("want ErrLocalMemExceeded, got %v", err)
	}
}

// panicKernel panics in one work-item.
type panicKernel struct{}

func (panicKernel) Name() string          { return "panics" }
func (panicKernel) SetupGroup(*Group) any { return nil }
func (panicKernel) Run(it *Item, _ any) {
	if it.GlobalID(0) == 3 {
		panic("boom")
	}
	it.Barrier()
}

func TestWorkItemPanicBecomesError(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	nd := NDRange{Global: [2]int{8, 1}, Local: [2]int{8, 1}}
	if err := q.Run(panicKernel{}, nd); err == nil {
		t.Error("panic in work-item must surface as error")
	}
}

// lockstepSum: GroupKernel computing per-group sums via phases.
type lockstepSum struct {
	in  []float64
	out []float64
}

func (k *lockstepSum) Name() string { return "lockstep-sum" }
func (k *lockstepSum) RunGroup(g *GroupRun) {
	partial := g.AllocLocalFloat64(g.Size())
	g.ForAll(func(lx, ly int) {
		partial[lx] = k.in[g.GlobalID0(lx)]
	})
	g.ForAll(func(lx, ly int) {
		if lx == 0 {
			var s float64
			for _, v := range partial {
				s += v
			}
			k.out[g.ID(0)] = s
		}
	})
}

func TestLockstepExecutor(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	in := make([]float64, 32)
	for i := range in {
		in[i] = float64(i)
	}
	k := &lockstepSum{in: in, out: make([]float64, 4)}
	nd := NDRange{Global: [2]int{32, 1}, Local: [2]int{8, 1}}
	if err := q.RunLockstep(k, nd); err != nil {
		t.Fatal(err)
	}
	wants := []float64{28, 92, 156, 220}
	for i, w := range wants {
		if k.out[i] != w {
			t.Errorf("group %d sum = %v, want %v", i, k.out[i], w)
		}
	}
	if st := q.Stats(); st.BarriersHit != 8 { // 4 groups × 2 phases
		t.Errorf("lockstep barriers = %d, want 8", st.BarriersHit)
	}
}

type lockstepPanic struct{}

func (lockstepPanic) Name() string { return "lockstep-panic" }
func (lockstepPanic) RunGroup(g *GroupRun) {
	g.AllocLocalFloat64(1 << 22) // exceeds every device
}

func TestLockstepLocalLimit(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	nd := NDRange{Global: [2]int{8, 1}, Local: [2]int{8, 1}}
	err := q.RunLockstep(lockstepPanic{}, nd)
	if !errors.Is(err, ErrLocalMemExceeded) {
		t.Errorf("want ErrLocalMemExceeded, got %v", err)
	}
}

// A queue's LaunchHook must be able to veto launches (the fault
// injector's simulated compile/launch failures), and a passing hook
// must observe the kernel name without disturbing execution.
func TestLaunchHookVetoesLaunches(t *testing.T) {
	ctx := NewContext(testDevice())
	q := NewQueue(ctx)
	var seen []string
	q.LaunchHook = func(name string) error {
		seen = append(seen, name)
		if name == "lockstep-sum" {
			return errors.New("injected launch failure")
		}
		return nil
	}
	in := make([]float64, 32)
	k := &lockstepSum{in: in, out: make([]float64, 4)}
	nd := NDRange{Global: [2]int{32, 1}, Local: [2]int{8, 1}}
	if err := q.RunLockstep(k, nd); err == nil {
		t.Fatal("hooked launch must fail")
	}
	if st := q.Stats(); st.KernelLaunches != 0 {
		t.Errorf("vetoed launch must not count, got %d launches", st.KernelLaunches)
	}

	// The concurrent executor consults the hook too.
	ids := &idKernel{out: make([]float32, 16)}
	if err := q.Run(ids, NDRange{Global: [2]int{4, 4}, Local: [2]int{2, 2}}); err != nil {
		t.Fatalf("non-vetoed kernel must run: %v", err)
	}
	if len(seen) != 2 || seen[0] != "lockstep-sum" || seen[1] != "ids" {
		t.Errorf("hook saw %v, want [lockstep-sum ids]", seen)
	}
}

// fastSum is lockstepSum rewritten the micro-kernel way: local memory
// charged with TakeLocal against a pooled slab, phases fused into bulk
// loops with PhaseBarrier. It must produce the same results, the same
// barrier statistics, and zero allocations once warm.
type fastSum struct {
	in, out []float64
	partial []float64
}

func (k *fastSum) Name() string { return "fast-sum" }
func (k *fastSum) RunGroup(g *GroupRun) {
	g.TakeLocal(8 * g.Size())
	for lx := 0; lx < g.Size(); lx++ {
		k.partial[lx] = k.in[g.GlobalID0(lx)]
	}
	g.PhaseBarrier()
	var s float64
	for _, v := range k.partial {
		s += v
	}
	k.out[g.ID(0)] = s
	g.PhaseBarrier()
}

// PhaseBarrier must count exactly like the implicit ForAll barrier, so
// fused fast paths report identical QueueStats.
func TestPhaseBarrierMatchesForAll(t *testing.T) {
	in := make([]float64, 32)
	for i := range in {
		in[i] = float64(i)
	}
	nd := NDRange{Global: [2]int{32, 1}, Local: [2]int{8, 1}}

	qGen := NewQueue(NewContext(testDevice()))
	gen := &lockstepSum{in: in, out: make([]float64, 4)}
	if err := qGen.RunLockstep(gen, nd); err != nil {
		t.Fatal(err)
	}
	qFast := NewQueue(NewContext(testDevice()))
	qFast.Workers = 1 // the shared partial slab needs serial groups
	fast := &fastSum{in: in, out: make([]float64, 4), partial: make([]float64, 8)}
	if err := qFast.RunLockstep(fast, nd); err != nil {
		t.Fatal(err)
	}
	for i := range gen.out {
		if gen.out[i] != fast.out[i] {
			t.Errorf("group %d: fast sum %v, generic %v", i, fast.out[i], gen.out[i])
		}
	}
	sg, sf := qGen.Stats(), qFast.Stats()
	if sf.BarriersHit != sg.BarriersHit {
		t.Errorf("fast barriers = %d, generic = %d", sf.BarriersHit, sg.BarriersHit)
	}
}

type takeLocalPanic struct{}

func (takeLocalPanic) Name() string { return "take-local-panic" }
func (takeLocalPanic) RunGroup(g *GroupRun) {
	g.TakeLocal(8 << 22) // exceeds every device
}

// TakeLocal must enforce the same capacity limit as the allocating
// local-memory calls: pooled slabs cannot bypass ErrLocalMemExceeded.
func TestTakeLocalEnforcesLimit(t *testing.T) {
	q := NewQueue(NewContext(testDevice()))
	nd := NDRange{Global: [2]int{8, 1}, Local: [2]int{8, 1}}
	err := q.RunLockstep(takeLocalPanic{}, nd)
	if !errors.Is(err, ErrLocalMemExceeded) {
		t.Errorf("want ErrLocalMemExceeded, got %v", err)
	}
}

// A warm serial lockstep launch must allocate nothing: GroupRun frames
// are recycled through the queue's free list and the group loop runs
// without closures. This is the executor's half of the engine-level
// zero-allocation guarantee on the warm kernel phase.
func TestSerialLockstepZeroAlloc(t *testing.T) {
	q := NewQueue(NewContext(testDevice()))
	q.Workers = 1
	k := &fastSum{in: make([]float64, 32), out: make([]float64, 4), partial: make([]float64, 8)}
	nd := NDRange{Global: [2]int{32, 1}, Local: [2]int{8, 1}}
	if err := q.RunLockstep(k, nd); err != nil { // warm the free list
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := q.RunLockstep(k, nd); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm serial RunLockstep allocated %.1f objects/op, want 0", allocs)
	}
}
