package clsim

import "sync"

// wgBarrier is a cyclic barrier for the work-items of one group, with
// divergence detection: if a work-item finishes while others are parked
// at a barrier, the parked items are released with
// ErrBarrierDivergence (real OpenCL leaves this undefined; we fail
// loudly instead of deadlocking).
type wgBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	active  int // participants still executing
	waiting int
	gen     int
	failure error
}

func newWGBarrier(n int) *wgBarrier {
	b := &wgBarrier{active: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all active participants have called wait. Panics
// with the barrier's failure if the group aborted or diverged.
func (b *wgBarrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failure != nil {
		panic(b.failure)
	}
	b.waiting++
	if b.waiting == b.active {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for gen == b.gen && b.failure == nil {
		b.cond.Wait()
	}
	if b.failure != nil {
		panic(b.failure)
	}
}

// leave removes a finished participant. If others are parked at the
// barrier this is divergence.
func (b *wgBarrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.active--
	if b.waiting > 0 && b.failure == nil {
		b.failure = ErrBarrierDivergence
		b.cond.Broadcast()
	}
}

// abort releases everyone with the given error (work-item panicked).
func (b *wgBarrier) abort(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failure == nil {
		b.failure = err
	}
	b.cond.Broadcast()
}

// err returns the recorded failure, if any.
func (b *wgBarrier) err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failure
}
