// Package clsim is a pure-Go simulation of the OpenCL host and device
// model that the paper's auto-tuning system runs on: platforms, devices,
// contexts, command queues, buffer objects, and two-dimensional NDRange
// kernel execution with work-groups, work-items, local memory and
// barriers.
//
// The runtime is functional, not cycle-accurate: kernels compute real
// results with exact OpenCL barrier semantics. Timing estimates come
// from the separate perfmodel package; the command queue records
// execution statistics (launches, bytes moved, barrier counts) that
// tests and the tuner consume.
package clsim

import (
	"fmt"
	"sync"

	"oclgemm/internal/device"
	"oclgemm/internal/obs"
)

// Platform groups the simulated devices, mirroring clGetPlatformIDs.
type Platform struct {
	Name    string
	Vendor  string
	Version string
	Devices []*Device
}

// DefaultPlatform returns a platform exposing every device in the
// Table I catalog.
func DefaultPlatform() *Platform {
	p := &Platform{
		Name:    "oclgemm simulated platform",
		Vendor:  "oclgemm",
		Version: "OpenCL 1.2 (simulated)",
	}
	for _, spec := range device.All() {
		p.Devices = append(p.Devices, &Device{Spec: spec})
	}
	return p
}

// Device is an OpenCL device backed by a catalog spec.
type Device struct {
	Spec *device.Spec
}

// Name returns the device display name.
func (d *Device) Name() string { return d.Spec.String() }

// Context owns buffers for a device, mirroring clCreateContext.
type Context struct {
	Device *Device

	mu        sync.Mutex
	allocated int64
	buffers   int
	created   int64
	released  int64

	o ctxObs
}

// ctxObs holds the context's resolved metric handles. Every handle is
// nil-safe, so an unobserved context (the default) pays only a nil
// check per event.
type ctxObs struct {
	bufCreated, bufReleased  *obs.Counter
	bufLive, bufLiveBytes    *obs.Gauge
	launches, groups, items  *obs.Counter
	barriers, bytesW, bytesR *obs.Counter
}

// SetObserver folds the context's buffer accounting and the execution
// statistics of its queues into the registry: counters
// clsim.buffer.created/released, clsim.kernel.launches,
// clsim.workgroups.run, clsim.workitems.run, clsim.barriers.hit,
// clsim.bytes.written/read and gauges clsim.buffer.live/live_bytes.
// Call it before the context is used; a nil registry detaches.
func (c *Context) SetObserver(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r == nil {
		c.o = ctxObs{}
		return
	}
	c.o = ctxObs{
		bufCreated:   r.Counter("clsim.buffer.created"),
		bufReleased:  r.Counter("clsim.buffer.released"),
		bufLive:      r.Gauge("clsim.buffer.live"),
		bufLiveBytes: r.Gauge("clsim.buffer.live_bytes"),
		launches:     r.Counter("clsim.kernel.launches"),
		groups:       r.Counter("clsim.workgroups.run"),
		items:        r.Counter("clsim.workitems.run"),
		barriers:     r.Counter("clsim.barriers.hit"),
		bytesW:       r.Counter("clsim.bytes.written"),
		bytesR:       r.Counter("clsim.bytes.read"),
	}
}

// NewContext creates a context on the device.
func NewContext(d *Device) *Context {
	if d == nil {
		panic("clsim: nil device")
	}
	return &Context{Device: d}
}

// AllocatedBytes returns the total bytes currently held by live buffers.
func (c *Context) AllocatedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocated
}

// LiveBuffers returns the number of unreleased buffers.
func (c *Context) LiveBuffers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buffers
}

// BufferStats is the context's lifetime buffer accounting: leak tests
// assert Created == Released (equivalently Live == 0) once every owner
// has cleaned up, including error paths.
type BufferStats struct {
	// Created counts every successful CreateBuffer.
	Created int64
	// Released counts every first Release of a buffer.
	Released int64
	// Live is the number of unreleased buffers (Created - Released).
	Live int
	// LiveBytes is the total size of unreleased buffers.
	LiveBytes int64
}

// BufferStats returns a snapshot of the context's buffer accounting.
func (c *Context) BufferStats() BufferStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return BufferStats{
		Created:   c.created,
		Released:  c.released,
		Live:      c.buffers,
		LiveBytes: c.allocated,
	}
}

// QueueStats aggregates what a command queue has executed.
type QueueStats struct {
	KernelLaunches int
	WorkGroupsRun  int64
	WorkItemsRun   int64
	BarriersHit    int64
	BytesWritten   int64 // host -> device
	BytesRead      int64 // device -> host
}

// Queue is an in-order command queue, mirroring clCreateCommandQueue.
// All enqueue operations execute synchronously (the simulation has no
// asynchronous device).
type Queue struct {
	Ctx *Context

	// LaunchHook, if non-nil, is consulted before every kernel launch;
	// a non-nil error aborts the launch. Fault-injection harnesses use
	// it to simulate compile/launch failures without touching kernel
	// code. Set it before the first launch; it must be safe for
	// concurrent calls.
	LaunchHook func(kernelName string) error

	// Workers bounds the number of goroutines executing independent
	// work-groups of one kernel launch (0 = GOMAXPROCS). Workers == 1
	// runs the groups serially on the calling goroutine. Work-groups
	// write disjoint output regions, so results are identical for every
	// worker count.
	Workers int

	mu    sync.Mutex
	stats QueueStats

	// grFree recycles GroupRun frames across lockstep launches so a
	// warm launch performs no per-group allocations.
	grMu   sync.Mutex
	grFree []*GroupRun
}

// NewQueue creates a command queue on the context.
func NewQueue(c *Context) *Queue {
	if c == nil {
		panic("clsim: nil context")
	}
	return &Queue{Ctx: c}
}

// Stats returns a snapshot of the queue's execution statistics.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

func (q *Queue) addLaunch(groups, items, barriers int64) {
	q.mu.Lock()
	q.stats.KernelLaunches++
	q.stats.WorkGroupsRun += groups
	q.stats.WorkItemsRun += items
	q.stats.BarriersHit += barriers
	q.mu.Unlock()
	o := &q.Ctx.o
	o.launches.Inc()
	o.groups.Add(groups)
	o.items.Add(items)
	o.barriers.Add(barriers)
}

// NDRange is a two-dimensional index space (the paper only considers 2-D
// NDRanges, which suit matrix data).
type NDRange struct {
	// Global is the total number of work-items per dimension.
	Global [2]int
	// Local is the work-group size per dimension.
	Local [2]int
}

// Validate checks the geometry against the device limits.
func (n NDRange) Validate(d *Device) error {
	for dim := 0; dim < 2; dim++ {
		if n.Global[dim] <= 0 || n.Local[dim] <= 0 {
			return fmt.Errorf("clsim: non-positive NDRange dimension %d", dim)
		}
		if n.Global[dim]%n.Local[dim] != 0 {
			return fmt.Errorf("clsim: global size %d not divisible by local size %d in dimension %d",
				n.Global[dim], n.Local[dim], dim)
		}
	}
	if wg := n.Local[0] * n.Local[1]; wg > d.Spec.MaxWGSize {
		return fmt.Errorf("clsim: work-group size %d exceeds device limit %d", wg, d.Spec.MaxWGSize)
	}
	return nil
}

// GroupSize returns work-items per group.
func (n NDRange) GroupSize() int { return n.Local[0] * n.Local[1] }

// NumGroups returns the group grid dimensions.
func (n NDRange) NumGroups() [2]int {
	return [2]int{n.Global[0] / n.Local[0], n.Global[1] / n.Local[1]}
}

// TotalGroups returns the number of work-groups in the NDRange.
func (n NDRange) TotalGroups() int {
	g := n.NumGroups()
	return g[0] * g[1]
}
