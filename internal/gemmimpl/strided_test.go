package gemmimpl

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"oclgemm/internal/batch"
	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// randStrided builds a count-item strided batch of small row-major
// matrices with contiguous slabs.
func randStrided(m, n, k, count int, beta float64, seed int64) *batch.Strided[float64] {
	rng := rand.New(rand.NewSource(seed))
	fill := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.Float64()*2 - 1
		}
		return out
	}
	return &batch.Strided[float64]{
		M: m, N: n, K: k, Count: count,
		Alpha: 1.25, Beta: beta,
		Order: matrix.RowMajor,
		A:     fill(m * k * count), StrideA: m * k,
		B: fill(k * n * count), StrideB: k * n,
		C: fill(m * n * count), StrideC: m * n,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
	}
}

// TestRunStridedMatchesLoop checks the plan-level strided path against
// looping RunCtx on the same plan (bit-identical, same plan both ways).
func TestRunStridedMatchesLoop(t *testing.T) {
	im := testImpl(t)
	const m, n, k, count = 9, 7, 5, 8
	sb := randStrided(m, n, k, count, 0.5, 1)
	oracle := randStrided(m, n, k, count, 0.5, 1) // same seed: same data

	pl, err := NewPlan[float64](im, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	items, err := oracle.Items()
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		it := &items[i]
		if err := pl.Run(oracle.TransA, oracle.TransB, oracle.Alpha, it.A, it.B, oracle.Beta, it.C); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.RunStrided(sb); err != nil {
		t.Fatal(err)
	}
	for i, v := range sb.C {
		if v != oracle.C[i] {
			t.Fatalf("slab element %d: strided %v, loop %v", i, v, oracle.C[i])
		}
	}
}

// TestStridedBatchOnePlanZeroAllocs is the ISSUE's amortization
// acceptance gate: a warm batched call of ≥64 small matrices claims
// exactly one plan (one cold build, everything after a cache hit) and
// its kernel phase allocates nothing — work-group state comes off the
// free list, not the heap.
func TestStridedBatchOnePlanZeroAllocs(t *testing.T) {
	im := testImpl(t)
	im.SetWorkers(1) // deterministic allocation accounting
	reg := obs.NewRegistry()
	im.SetObservability(reg, nil)
	eng := NewEngine(im)
	defer eng.Close()
	const m, n, k, count = 8, 8, 4, 64
	sb := randStrided(m, n, k, count, 0, 2)

	// Cold call: exactly one plan build for the whole 64-item batch.
	if err := EngineRunStrided(eng, sb); err != nil {
		t.Fatal(err)
	}
	cache := eng.Cache64()
	if got := cache.Len(); got != 1 {
		t.Fatalf("after one %d-item batch the cache holds %d plans, want 1", count, got)
	}
	snap := reg.Snapshot()
	if miss := snap.Counters["gemm.plan.miss"]; miss != 1 {
		t.Fatalf("batch of %d built %d plans, want exactly 1", count, miss)
	}

	// Warm call: the free-listed kernel state must be reused, not
	// reallocated...
	e, err := cache.acquire(context.Background(), m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	pl := e.plan
	defer cache.release(e)
	before := pl.KernelStateAllocs()
	for i := 0; i < 3; i++ {
		if err := EngineRunStrided(eng, sb); err != nil {
			t.Fatal(err)
		}
	}
	if after := pl.KernelStateAllocs(); after != before {
		t.Errorf("3 warm batches allocated %d new kernel states, want 0", after-before)
	}
	// ...and the warm kernel phase itself performs zero heap
	// allocations per launch.
	allocs := testing.AllocsPerRun(10, func() {
		if err := pl.q.RunLockstep(pl.kern, pl.kern.NDRange()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm batched kernel phase allocated %.1f objects/op, want 0", allocs)
	}
}

// TestRunStridedCtxReportsItemIndex pins the error chain: a batch
// cancelled mid-flight names the item it stopped at.
func TestRunStridedCtxReportsItemIndex(t *testing.T) {
	im := testImpl(t)
	eng := NewEngine(im)
	defer eng.Close()
	sb := randStrided(6, 6, 4, 4, 0, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := EngineRunStridedCtx(ctx, eng, sb)
	if err == nil {
		t.Fatal("cancelled batch returned nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if want := "batch item 0"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the item (%q)", err, want)
	}
}

// TestRunBatchEachCtxErrorNamesIndex pins the satellite fix: a failed
// call in RunBatchEachCtx reports its batch index in the error chain.
func TestRunBatchEachCtxErrorNamesIndex(t *testing.T) {
	im := testImpl(t)
	eng := NewEngine(im)
	defer eng.Close()
	good := func(seed int64) Call[float64] {
		a := matrix.New[float64](6, 4, matrix.RowMajor)
		b := matrix.New[float64](4, 6, matrix.RowMajor)
		c := matrix.New[float64](6, 6, matrix.RowMajor)
		a.FillRandom(rand.New(rand.NewSource(seed)))
		b.FillRandom(rand.New(rand.NewSource(seed + 1)))
		return Call[float64]{TransA: blas.NoTrans, TransB: blas.NoTrans, Alpha: 1, A: a, B: b, C: c}
	}
	calls := []Call[float64]{good(1), good(2), good(3)}
	// Poison call 1 with mismatched dimensions.
	calls[1].B = matrix.New[float64](5, 6, matrix.RowMajor)
	ctxs := []context.Context{context.Background(), context.Background(), context.Background()}
	errs := RunBatchEachCtx(eng, ctxs, calls)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy calls failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("poisoned call succeeded")
	}
	if want := "batch call 1"; !strings.Contains(errs[1].Error(), want) {
		t.Errorf("error %q does not name its index (%q)", errs[1], want)
	}
}
