// Package gemmimpl implements the paper's full GEMM routines (§IV-B):
// all four multiplication types NN/NT/TN/TT on top of the single
// C ← α·Aᵀ·B + β·C kernel. Matrix data are first copied into extra
// buffers — transposed as needed, changed into the kernel's block-major
// layout, and zero-padded when sizes are not multiples of the blocking
// factors — and then the kernel runs on the padded problem.
//
// The functional path executes on the clsim runtime and computes real
// results; the performance path adds the O(N²) copy cost to the
// kernel's modeled time, which is why the implementations are slow for
// small sizes and amortize the overhead as N grows, exactly as the
// paper discusses.
package gemmimpl

import (
	"fmt"

	"oclgemm/internal/blas"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/kernels"
	"oclgemm/internal/matrix"
	"oclgemm/internal/perfmodel"
)

// Impl is a GEMM implementation bound to a device and a tuned kernel
// parameter set (usually the tuner's winner).
type Impl struct {
	Dev    *device.Spec
	Params codegen.Params
}

// New validates the kernel parameters against the device.
func New(d *device.Spec, p codegen.Params) (*Impl, error) {
	if err := p.CheckDevice(d); err != nil {
		return nil, err
	}
	return &Impl{Dev: d, Params: p}, nil
}

// padded returns the kernel-ready problem dimensions for an m×n×k
// multiplication.
func (im *Impl) padded(m, n, k int) (mp, np, kp int) {
	mp = matrix.PadDim(m, im.Params.Mwg)
	np = matrix.PadDim(n, im.Params.Nwg)
	kp = matrix.PadDim(k, im.Params.Kwg)
	if kp < im.Params.MinK() {
		kp = im.Params.MinK()
	}
	return
}

// Run computes C ← alpha·op(A)·op(B) + beta·C functionally on the
// simulated device. A, B, C may be stored in either order (the paper's
// §IV-B evaluation uses column-major); op(A) must be m×k, op(B) k×n
// and C m×n.
func Run[T matrix.Scalar](im *Impl, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	m, n := c.Rows, c.Cols
	am, ak := a.Rows, a.Cols
	if ta == blas.Trans {
		am, ak = ak, am
	}
	bk, bn := b.Rows, b.Cols
	if tb == blas.Trans {
		bk, bn = bn, bk
	}
	if am != m || bn != n || ak != bk {
		return fmt.Errorf("gemmimpl: dimension mismatch: op(A) %dx%d, op(B) %dx%d, C %dx%d", am, ak, bk, bn, m, n)
	}
	k := ak
	p := im.Params
	mp, np, kp := im.padded(m, n, k)

	dev := &clsim.Device{Spec: im.Dev}
	ctx := clsim.NewContext(dev)
	q := clsim.NewQueue(ctx)
	esz := p.Precision.Size()

	// Copy phase, on the device (§III-D): pack op(A)ᵀ into a K×M buffer
	// and op(B) into a K×N buffer in the kernel's layouts, zero-padded;
	// C is padded into row-major. Column-major hosts hand over their
	// storage as the row-major transpose, which just flips the copy
	// kernel's transpose flag.
	bufA, err := devicePack(ctx, q, a, ta == blas.NoTrans, codegen.PackParams{
		Precision: p.Precision, Layout: p.LayoutA, Rb: p.Kwg, Cb: p.Mwg,
	}, kp, mp, esz)
	if err != nil {
		return err
	}
	defer bufA.Release()
	bufB, err := devicePack(ctx, q, b, tb == blas.Trans, codegen.PackParams{
		Precision: p.Precision, Layout: p.LayoutB, Rb: p.Kwg, Cb: p.Nwg,
	}, kp, np, esz)
	if err != nil {
		return err
	}
	defer bufB.Release()
	bufC, err := devicePack(ctx, q, c, false, codegen.PackParams{
		Precision: p.Precision, Layout: matrix.LayoutRowMajor, Rb: p.Mwg, Cb: p.Nwg,
	}, mp, np, esz)
	if err != nil {
		return err
	}
	defer bufC.Release()

	kern, err := kernels.NewGEMM(p, mp, np, kp, alpha, view[T](bufA), view[T](bufB), beta, view[T](bufC))
	if err != nil {
		return err
	}
	if err := q.RunLockstep(kern, kern.NDRange()); err != nil {
		return err
	}
	cp := make([]T, mp*np)
	if err := readBuf(q, bufC, cp); err != nil {
		return err
	}

	// Unpad into the caller's C.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.Set(i, j, cp[i*np+j])
		}
	}
	return nil
}

// devicePack uploads src and runs the §III-D copy kernel, returning the
// packed R×C device buffer. transpose is relative to the logical
// matrix; the physical flag accounts for column-major storage.
func devicePack[T matrix.Scalar](ctx *clsim.Context, q *clsim.Queue, src *matrix.Matrix[T],
	transpose bool, pp codegen.PackParams, r, c, esz int) (*clsim.Buffer, error) {
	sr, sc := src.Rows, src.Cols
	if src.Order == matrix.ColMajor {
		sr, sc = sc, sr
		transpose = !transpose
	}
	pp.Transpose = transpose

	bufS, err := ctx.CreateBuffer(maxInt(len(src.Data), 1) * esz)
	if err != nil {
		return nil, err
	}
	defer bufS.Release()
	if err := writeBuf(q, bufS, src.Data); err != nil {
		return nil, err
	}
	bufD, err := ctx.CreateBuffer(r * c * esz)
	if err != nil {
		return nil, err
	}
	pk, err := kernels.NewPack(pp, sr, sc, src.Stride, r, c, view[T](bufS), view[T](bufD))
	if err != nil {
		bufD.Release()
		return nil, err
	}
	if err := q.RunLockstep(pk, pk.NDRange()); err != nil {
		bufD.Release()
		return nil, err
	}
	return bufD, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func view[T matrix.Scalar](b *clsim.Buffer) []T {
	var zero T
	switch any(zero).(type) {
	case float64:
		return any(b.Float64()).([]T)
	default:
		return any(b.Float32()).([]T)
	}
}

func writeBuf[T matrix.Scalar](q *clsim.Queue, b *clsim.Buffer, host []T) error {
	switch h := any(host).(type) {
	case []float64:
		return q.WriteFloat64(b, 0, h)
	case []float32:
		return q.WriteFloat32(b, 0, h)
	}
	return fmt.Errorf("gemmimpl: unsupported element type %T", host)
}

func readBuf[T matrix.Scalar](q *clsim.Queue, b *clsim.Buffer, host []T) error {
	switch h := any(host).(type) {
	case []float64:
		return q.ReadFloat64(b, 0, h)
	case []float32:
		return q.ReadFloat32(b, 0, h)
	}
	return fmt.Errorf("gemmimpl: unsupported element type %T", host)
}

// Breakdown is the modeled cost of one full GEMM call.
type Breakdown struct {
	Kernel perfmodel.Breakdown
	// CopySeconds is the modeled time of the layout-change copies of A
	// and B (and the C pad copy when padding is needed).
	CopySeconds float64
	// TotalSeconds includes kernel and copies.
	TotalSeconds float64
}

// Time models the execution time of C ← α·op(A)·op(B) + β·C including
// the copy overhead. The GEMM type does not change the cost: the copy
// pass handles transposition at the same price, which is why the
// paper's Table III shows almost type-independent performance for this
// implementation.
func (im *Impl) Time(m, n, k int) (Breakdown, error) {
	var out Breakdown
	kb, err := perfmodel.KernelTime(im.Dev, &im.Params, m, n, k)
	if err != nil {
		return out, err
	}
	mp, np, kp := im.padded(m, n, k)
	esz := float64(im.Params.Precision.Size())

	// Copy kernels read the source and write the padded destination.
	bytes := (float64(m*k) + float64(kp*mp)) * esz // A
	bytes += (float64(k*n) + float64(kp*np)) * esz // B
	if mp != m || np != n {
		bytes += (float64(m*n) + float64(mp*np)) * esz // C pad copy
	}
	copyBW := im.Dev.BandwidthGBs * 1e9 * im.Dev.CopyBWFrac
	out.CopySeconds = bytes/copyBW + 2*im.Dev.LaunchOverheadUS*1e-6
	out.Kernel = kb
	out.TotalSeconds = kb.Total + out.CopySeconds
	return out, nil
}

// GFlops returns the modeled performance of the full routine for the
// nominal problem size.
func (im *Impl) GFlops(m, n, k int) (float64, error) {
	bd, err := im.Time(m, n, k)
	if err != nil {
		return 0, err
	}
	return blas.FlopCount(m, n, k) / bd.TotalSeconds / 1e9, nil
}
