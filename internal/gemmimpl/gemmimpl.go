// Package gemmimpl implements the paper's full GEMM routines (§IV-B):
// all four multiplication types NN/NT/TN/TT on top of the single
// C ← α·Aᵀ·B + β·C kernel. Matrix data are first copied into extra
// buffers — transposed as needed, changed into the kernel's block-major
// layout, and zero-padded when sizes are not multiples of the blocking
// factors — and then the kernel runs on the padded problem.
//
// The functional path executes on the clsim runtime and computes real
// results; the performance path adds the O(N²) copy cost to the
// kernel's modeled time, which is why the implementations are slow for
// small sizes and amortize the overhead as N grows, exactly as the
// paper discusses.
package gemmimpl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"math"

	"oclgemm/internal/blas"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
	"oclgemm/internal/perfmodel"
)

// Impl is a GEMM implementation bound to a device and a tuned kernel
// parameter set (usually the tuner's winner). One Impl may be shared by
// any number of plans and request goroutines: the immutable identity
// (Dev, Params) is plain data, and every mutable option lives behind
// atomic or mutex access so SetWorkers/SetForceGenericKernels may be
// called concurrently with Runs (serve path).
type Impl struct {
	Dev    *device.Spec
	Params codegen.Params

	// workers bounds the work-group parallelism of kernel launches
	// issued by plans built from this implementation (0 = GOMAXPROCS,
	// 1 = serial); see clsim.Queue.Workers. Atomic: read at every Run,
	// written by SetWorkers at any time.
	workers atomic.Int64

	// forceGeneric disables the micro-kernel fast paths on every kernel
	// built by plans of this implementation, forcing the generic
	// closure reference path (A/B benchmarking, bit-identity tests).
	// Atomic: it only affects plans built after the write.
	forceGeneric atomic.Bool

	// mu guards the reference-typed options below, which are copied
	// into a plan at build time.
	mu         sync.Mutex
	launchHook func(kernelName string) error
	obs        *obs.Registry
	trace      *obs.Tracer
}

// New validates the kernel parameters against the device.
func New(d *device.Spec, p codegen.Params) (*Impl, error) {
	if err := p.CheckDevice(d); err != nil {
		return nil, err
	}
	return &Impl{Dev: d, Params: p}, nil
}

// SetWorkers bounds the work-group parallelism of kernel launches
// issued by plans built from this implementation (0 = GOMAXPROCS,
// 1 = serial). Safe to call concurrently with Runs: in-flight calls
// finish with the old setting, the next call on every plan picks up
// the new one. Results are identical for every setting.
func (im *Impl) SetWorkers(n int) { im.workers.Store(int64(n)) }

// Workers returns the current work-group parallelism bound.
func (im *Impl) Workers() int { return int(im.workers.Load()) }

// SetForceGenericKernels disables (true) or re-enables (false) the
// micro-kernel fast paths. It affects plans built after the call; safe
// to call concurrently with Runs.
func (im *Impl) SetForceGenericKernels(force bool) { im.forceGeneric.Store(force) }

// ForceGenericKernels reports whether new plans build generic kernels.
func (im *Impl) ForceGenericKernels() bool { return im.forceGeneric.Load() }

// SetLaunchHook installs the hook consulted before every kernel launch
// of plans built after the call (fault injection; see
// clsim.Queue.LaunchHook). Safe to call concurrently with Runs.
func (im *Impl) SetLaunchHook(hook func(kernelName string) error) {
	im.mu.Lock()
	im.launchHook = hook
	im.mu.Unlock()
}

// SetObservability attaches a metrics registry and/or span tracer
// (either may be nil) to plans built after the call: per-phase timing
// histograms, pack-reuse and plan-cache counters, and the clsim
// launch/buffer accounting. Safe to call concurrently with Runs, but
// plans already built keep the instruments they were built with.
func (im *Impl) SetObservability(r *obs.Registry, t *obs.Tracer) {
	im.mu.Lock()
	im.obs = r
	im.trace = t
	im.mu.Unlock()
}

// Obs returns the implementation's metrics registry (nil when
// observability is off; every obs instrument is nil-safe).
func (im *Impl) Obs() *obs.Registry {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.obs
}

// Trace returns the implementation's span tracer (may be nil).
func (im *Impl) Trace() *obs.Tracer {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.trace
}

// launchHookRef returns the current launch hook under the lock.
func (im *Impl) launchHookRef() func(string) error {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.launchHook
}

// Dims validates operand shapes against C and returns the problem
// dimensions m, n, k — exported for layers that partition a GEMM before
// running it (the multi-device scheduler).
func Dims[T matrix.Scalar](ta, tb blas.Transpose, a, b, c *matrix.Matrix[T]) (m, n, k int, err error) {
	return gemmDims(ta, tb, a, b, c)
}

// padded returns the kernel-ready problem dimensions for an m×n×k
// multiplication.
func (im *Impl) padded(m, n, k int) (mp, np, kp int) {
	mp = matrix.PadDim(m, im.Params.Mwg)
	np = matrix.PadDim(n, im.Params.Nwg)
	kp = matrix.PadDim(k, im.Params.Kwg)
	if kp < im.Params.MinK() {
		kp = im.Params.MinK()
	}
	return
}

// PaddedDims exposes the kernel-ready padded shape for an m×n×k
// problem — the plan-cache key. Layers that group traffic by the plan
// it will execute on (the serve coalescer) key on this.
func (im *Impl) PaddedDims(m, n, k int) (mp, np, kp int) { return im.padded(m, n, k) }

// Run computes C ← alpha·op(A)·op(B) + beta·C functionally on the
// simulated device. A, B, C may be stored in either order (the paper's
// §IV-B evaluation uses column-major); op(A) must be m×k, op(B) k×n
// and C m×n.
//
// Run is the one-shot (cold) path: it builds a transient Plan, executes
// it once and releases it. Serving paths with repeated calls should
// hold a Plan, PlanCache or Engine instead, which amortize the setup.
func Run[T matrix.Scalar](im *Impl, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	m, n, k, err := gemmDims(ta, tb, a, b, c)
	if err != nil {
		return err
	}
	plan, err := NewPlan[T](im, m, n, k)
	if err != nil {
		return err
	}
	defer plan.Close()
	return plan.Run(ta, tb, alpha, a, b, beta, c)
}

func view[T matrix.Scalar](b *clsim.Buffer) []T {
	var zero T
	switch any(zero).(type) {
	case float64:
		return any(b.Float64()).([]T)
	default:
		return any(b.Float32()).([]T)
	}
}

func writeBuf[T matrix.Scalar](q *clsim.Queue, b *clsim.Buffer, host []T) error {
	switch h := any(host).(type) {
	case []float64:
		return q.WriteFloat64(b, 0, h)
	case []float32:
		return q.WriteFloat32(b, 0, h)
	}
	return fmt.Errorf("gemmimpl: unsupported element type %T", host)
}

func readBuf[T matrix.Scalar](q *clsim.Queue, b *clsim.Buffer, host []T) error {
	switch h := any(host).(type) {
	case []float64:
		return q.ReadFloat64(b, 0, h)
	case []float32:
		return q.ReadFloat32(b, 0, h)
	}
	return fmt.Errorf("gemmimpl: unsupported element type %T", host)
}

// Breakdown is the modeled cost of one full GEMM call.
type Breakdown struct {
	Kernel perfmodel.Breakdown
	// CopySeconds is the modeled time of the layout-change copies of A
	// and B (and the C pad copy when padding is needed).
	CopySeconds float64
	// TotalSeconds includes kernel and copies.
	TotalSeconds float64
}

// Time models the execution time of C ← α·op(A)·op(B) + β·C including
// the copy overhead (perfmodel.RoutineTime with this implementation's
// device and parameters).
func (im *Impl) Time(m, n, k int) (Breakdown, error) {
	rb, err := perfmodel.RoutineTime(im.Dev, &im.Params, m, n, k)
	if err != nil {
		return Breakdown{}, err
	}
	return Breakdown{Kernel: rb.Kernel, CopySeconds: rb.CopySeconds, TotalSeconds: rb.TotalSeconds}, nil
}

// GFlops returns the modeled performance of the full routine for the
// nominal problem size. A degenerate model output (zero, negative,
// NaN or infinite time) is an error rather than an Inf/NaN throughput
// that would silently corrupt downstream scheduling comparisons.
func (im *Impl) GFlops(m, n, k int) (float64, error) {
	bd, err := im.Time(m, n, k)
	if err != nil {
		return 0, err
	}
	if !(bd.TotalSeconds > 0) || math.IsInf(bd.TotalSeconds, 1) {
		return 0, fmt.Errorf("gemmimpl: model produced unusable routine time %v for %dx%dx%d on %s",
			bd.TotalSeconds, m, n, k, im.Dev.ID)
	}
	return blas.FlopCount(m, n, k) / bd.TotalSeconds / 1e9, nil
}
