package gemmimpl

// Concurrency contract tests for the shared Engine/PlanCache: these
// are the regression proofs for the serve-path refactor — plan builds
// happen outside the cache lock with per-key singleflight, and the
// Impl mutators are safe concurrently with Runs. Run them under
// -race (make check, the CI serve job).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
)

// refGEMM computes the expected C with the serial pure-Go reference
// (bit-exact for float64 against the kernel's k-order accumulation).
func refGEMM[T matrix.Scalar](ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) *matrix.Matrix[T] {
	want := c.Clone()
	blas.GEMM(ta, tb, alpha, a, b, beta, want)
	return want
}

// A slow cold-shape plan build must not block calls on a warm shape:
// the build happens outside the cache lock. Before the fix, NewPlan ran
// under pc.mu and the warm runs below would deadlock against the
// stalled build until it finished.
func TestColdPlanBuildDoesNotBlockWarmShape(t *testing.T) {
	im := testImpl(t)
	pc := NewPlanCache[float64](im, 4)
	defer pc.Close()

	// Warm shape: build its plan up front.
	aw, bw, cw := randCM(8, 8, 1), randCM(8, 8, 2), randCM(8, 8, 3)
	if err := pc.Run(blas.NoTrans, blas.NoTrans, 1, aw, bw, 0, cw); err != nil {
		t.Fatal(err)
	}

	// Stall the next (cold) build until released.
	hold := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	pc.buildHook = func() error {
		once.Do(func() { close(entered) })
		<-hold
		return nil
	}

	coldDone := make(chan error, 1)
	go func() {
		a, b, c := randCM(32, 32, 4), randCM(32, 32, 5), randCM(32, 32, 6)
		coldDone <- pc.Run(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("cold build never started")
	}

	// With the cold build stalled, warm-shape traffic must keep flowing.
	warmDone := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			c := randCM(8, 8, int64(10+i))
			want := refGEMM(blas.NoTrans, blas.NoTrans, 1.0, aw, bw, 0.0, c)
			if err := pc.Run(blas.NoTrans, blas.NoTrans, 1, aw, bw, 0, c); err != nil {
				warmDone <- err
				return
			}
			if d := matrix.MaxRelDiff(c, want); d != 0 {
				warmDone <- fmt.Errorf("warm run diff %g", d)
				return
			}
		}
		warmDone <- nil
	}()
	select {
	case err := <-warmDone:
		if err != nil {
			t.Fatalf("warm runs while cold build stalled: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("warm shape blocked behind the stalled cold build (head-of-line blocking)")
	}

	close(hold)
	if err := <-coldDone; err != nil {
		t.Fatalf("cold run after release: %v", err)
	}
}

// Concurrent cold misses for ONE shape must build exactly one plan
// (per-key singleflight): the losers wait for the winner's build
// instead of duplicating the heavyweight setup or blocking the cache.
func TestColdMissSingleflight(t *testing.T) {
	im := testImpl(t)
	pc := NewPlanCache[float64](im, 4)
	defer pc.Close()

	var builds atomic.Int64
	pc.buildHook = func() error {
		builds.Add(1)
		time.Sleep(50 * time.Millisecond) // widen the race window
		return nil
	}

	a, b := randCM(16, 16, 1), randCM(16, 16, 2)
	const G = 8
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		go func(g int) {
			c := randCM(16, 16, int64(3+g))
			want := refGEMM(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c)
			if err := pc.Run(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c); err != nil {
				errs <- err
				return
			}
			if d := matrix.MaxRelDiff(c, want); d != 0 {
				errs <- fmt.Errorf("goroutine %d: diff %g", g, d)
				return
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < G; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("concurrent cold misses built %d plans, want exactly 1 (singleflight)", n)
	}
	if pc.Len() != 1 {
		t.Fatalf("cache holds %d plans, want 1", pc.Len())
	}
}

// A waiter whose context dies while the winner is still building must
// return the context error promptly, not wait out the build.
func TestSingleflightWaiterHonorsContext(t *testing.T) {
	im := testImpl(t)
	pc := NewPlanCache[float64](im, 4)
	defer pc.Close()

	hold := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	pc.buildHook = func() error {
		once.Do(func() { close(entered) })
		<-hold
		return nil
	}
	defer close(hold)

	a, b := randCM(16, 16, 1), randCM(16, 16, 2)
	go func() {
		c := randCM(16, 16, 3)
		_ = pc.Run(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := randCM(16, 16, 4)
	err := pc.RunCtx(ctx, blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter got %v, want context.DeadlineExceeded", err)
	}
}

// A failed plan build must not poison its key: the builder and every
// singleflight waiter see the error, the placeholder entry is dropped,
// and the next call rebuilds the key successfully.
func TestFailedBuildDoesNotPoisonKey(t *testing.T) {
	im := testImpl(t)
	pc := NewPlanCache[float64](im, 4)
	defer pc.Close()

	errBuild := errors.New("injected build failure")
	var fails atomic.Int64
	pc.buildHook = func() error {
		if fails.Add(1) == 1 {
			time.Sleep(20 * time.Millisecond) // let waiters pile up
			return errBuild
		}
		return nil
	}

	a, b := randCM(16, 16, 1), randCM(16, 16, 2)
	const G = 4
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		go func(g int) {
			c := randCM(16, 16, int64(3+g))
			errs <- pc.Run(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
		}(g)
	}
	var failed int
	for g := 0; g < G; g++ {
		if err := <-errs; err != nil {
			if !errors.Is(err, errBuild) {
				t.Fatalf("unexpected error %v", err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("injected build failure reached no caller")
	}

	// The key must recover on the next call.
	c := randCM(16, 16, 99)
	want := refGEMM(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c)
	if err := pc.Run(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c); err != nil {
		t.Fatalf("key poisoned after failed build: %v", err)
	}
	if d := matrix.MaxRelDiff(c, want); d != 0 {
		t.Fatalf("diff %g", d)
	}
	if pc.Len() != 1 {
		t.Fatalf("cache holds %d plans, want 1", pc.Len())
	}
}

// SetWorkers (and SetFastPath) racing with Runs on a shared Engine:
// the old code wrote Impl.Workers unsynchronized while Plan.RunCtx
// read it — a data race -race flags. Results must stay bit-exact
// throughout.
func TestSetWorkersConcurrentWithRuns(t *testing.T) {
	im := testImpl(t)
	eng := NewEngine(im)
	defer eng.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			im.SetWorkers(i % 3)
			im.SetForceGenericKernels(i%2 == 0)
		}
	}()

	a, b := randCM(24, 24, 1), randCM(24, 24, 2)
	const G, runs = 4, 8
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		go func(g int) {
			for i := 0; i < runs; i++ {
				c := randCM(24, 24, int64(100*g+i))
				want := refGEMM(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c)
				if err := EngineRun(eng, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c); err != nil {
					errs <- err
					return
				}
				if d := matrix.MaxRelDiff(c, want); d != 0 {
					errs <- fmt.Errorf("goroutine %d run %d: diff %g under concurrent SetWorkers", g, i, d)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < G; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// One shared Engine hammered by N goroutines across mixed shapes and
// precisions under cache-capacity pressure: every result must be
// bit-exact (float64) / exact (float32, same accumulation order)
// against the pure-Go reference, and evicted-while-in-use plans (the
// doomed path) must finish their in-flight call before being closed.
func TestConcurrentEngineSharingMixedShapes(t *testing.T) {
	im := testImpl(t)
	eng := NewEngine(im)
	defer eng.Close()

	// Shrink the float64 cache to force evict-while-in-use churn.
	eng.c64.maxPlans = 2

	shapes := [][3]int{{8, 8, 4}, {16, 8, 8}, {8, 24, 4}, {32, 16, 8}, {13, 19, 11}}
	const G = 8
	const runsPerG = 6
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < runsPerG; i++ {
				s := shapes[rng.Intn(len(shapes))]
				m, n, k := s[0], s[1], s[2]
				if g%2 == 0 {
					a, b := randCM(m, k, int64(g*100+i)), randCM(k, n, int64(g*100+i+1))
					c := randCM(m, n, int64(g*100+i+2))
					want := refGEMM(blas.NoTrans, blas.NoTrans, 1.0, a, b, 1.0, c)
					if err := EngineRun(eng, blas.NoTrans, blas.NoTrans, 1.0, a, b, 1.0, c); err != nil {
						errs <- fmt.Errorf("f64 g%d i%d: %v", g, i, err)
						return
					}
					if d := matrix.MaxRelDiff(c, want); d != 0 {
						errs <- fmt.Errorf("f64 g%d i%d %dx%dx%d: diff %g (not bit-exact)", g, i, m, n, k, d)
						return
					}
				} else {
					a := matrix.New[float32](m, k, matrix.ColMajor)
					b := matrix.New[float32](k, n, matrix.ColMajor)
					c := matrix.New[float32](m, n, matrix.ColMajor)
					a.FillRandom(rng)
					b.FillRandom(rng)
					c.FillRandom(rng)
					want := refGEMM(blas.NoTrans, blas.NoTrans, float32(1), a, b, float32(0), c)
					if err := EngineRun(eng, blas.NoTrans, blas.NoTrans, float32(1), a, b, float32(0), c); err != nil {
						errs <- fmt.Errorf("f32 g%d i%d: %v", g, i, err)
						return
					}
					// float32 kernels reorder the accumulation, so
					// compare within the standard tolerance (float64,
					// below, is the bit-exact case).
					if d := matrix.MaxRelDiff(c, want); d > matrix.Tolerance(matrix.Single, k) {
						errs <- fmt.Errorf("f32 g%d i%d %dx%dx%d: diff %g", g, i, m, n, k, d)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Capacity pressure must have evicted: 5 float64 shapes through a
	// 2-plan cache.
	if pc := eng.c64; pc.Len() > 2 {
		t.Fatalf("float64 cache holds %d plans, capacity 2", pc.Len())
	}
}
