// Execution engine: reusable GEMM plans.
//
// A Plan amortizes the per-call setup that Run would otherwise repeat —
// simulated context and queue construction, pack/GEMM kernel builds and
// the three padded device buffers — across every call of one padded
// problem shape, the steady-state/setup split GEMMbench and CLTune make
// for reproducible GEMM benchmarking. On top of plans sit a PlanCache
// (plans keyed by padded shape, LRU-bounded) and an Engine (one cache
// per precision), which the public GEMM routine, the one-shot Run and
// the level3 factorizations all route through.
package gemmimpl

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/clsim"
	"oclgemm/internal/codegen"
	"oclgemm/internal/kernels"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// gemmDims validates operand shapes against C and returns the problem
// dimensions.
func gemmDims[T matrix.Scalar](ta, tb blas.Transpose, a, b, c *matrix.Matrix[T]) (m, n, k int, err error) {
	m, n = c.Rows, c.Cols
	am, ak := a.Rows, a.Cols
	if ta == blas.Trans {
		am, ak = ak, am
	}
	bk, bn := b.Rows, b.Cols
	if tb == blas.Trans {
		bk, bn = bn, bk
	}
	if am != m || bn != n || ak != bk {
		return 0, 0, 0, fmt.Errorf("gemmimpl: dimension mismatch: op(A) %dx%d, op(B) %dx%d, C %dx%d", am, ak, bk, bn, m, n)
	}
	return m, n, ak, nil
}

// operandKey identifies the exact pack a device buffer holds: source
// geometry, storage order, logical transpose flag and a fingerprint of
// the element contents. Matching keys guarantee an identical packed
// result, so the pack (upload + copy kernel) can be skipped.
type operandKey struct {
	rows, cols, stride int
	order              matrix.Order
	transpose          bool
	fp                 uint64
}

func sourceKey[T matrix.Scalar](src *matrix.Matrix[T], transpose bool) operandKey {
	return operandKey{
		rows: src.Rows, cols: src.Cols, stride: src.Stride,
		order: src.Order, transpose: transpose,
		fp: fingerprint(src),
	}
}

// fingerprint hashes the logical elements of m (FNV-1a over the IEEE
// bit patterns, honoring the stride so views hash only their region).
// The state is seeded with the dimensions and storage order so that
// different shapes over one element stream — a 2×8 and a 4×4 view of
// the same backing slice — cannot collide. Hashing is O(elements) but
// far cheaper than the simulated pack kernel it lets the engine skip.
func fingerprint[T matrix.Scalar](m *matrix.Matrix[T]) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(m.Rows)) * prime64
	h = (h ^ uint64(m.Cols)) * prime64
	h = (h ^ uint64(m.Order)) * prime64
	major, minor := m.Rows, m.Cols
	if m.Order == matrix.ColMajor {
		major, minor = m.Cols, m.Rows
	}
	switch data := any(m.Data).(type) {
	case []float64:
		for r := 0; r < major; r++ {
			for _, v := range data[r*m.Stride : r*m.Stride+minor] {
				h = (h ^ math.Float64bits(v)) * prime64
			}
		}
	case []float32:
		for r := 0; r < major; r++ {
			for _, v := range data[r*m.Stride : r*m.Stride+minor] {
				h = (h ^ uint64(math.Float32bits(v))) * prime64
			}
		}
	}
	return h
}

// bufPool recycles upload-staging device buffers keyed by byte size, so
// steady-state calls allocate no fresh device memory. Buffers in the
// pool stay live in the context accounting until close.
type bufPool struct {
	ctx  *clsim.Context
	free map[int][]*clsim.Buffer
}

func newBufPool(ctx *clsim.Context) *bufPool {
	return &bufPool{ctx: ctx, free: make(map[int][]*clsim.Buffer)}
}

func (p *bufPool) get(size int) (*clsim.Buffer, error) {
	if l := p.free[size]; len(l) > 0 {
		b := l[len(l)-1]
		p.free[size] = l[:len(l)-1]
		return b, nil
	}
	return p.ctx.CreateBuffer(size)
}

func (p *bufPool) put(b *clsim.Buffer) {
	p.free[b.Size()] = append(p.free[b.Size()], b)
}

func (p *bufPool) close() {
	for _, l := range p.free {
		for _, b := range l {
			b.Release()
		}
	}
	p.free = make(map[int][]*clsim.Buffer)
}

// PlanStats counts what a plan did across its lifetime; the reuse
// counters prove when the engine skipped redundant work.
type PlanStats struct {
	// Runs is the number of completed GEMM calls.
	Runs int
	// PackA/PackB/PackC count executed pack kernels per operand.
	PackA, PackB, PackC int
	// ReusedA/ReusedB count calls that skipped the pack because the
	// operand was unchanged since the previous pack.
	ReusedA, ReusedB int
	// SkippedC counts calls with beta == 0, where BLAS semantics forbid
	// reading C and the engine skips its pack entirely.
	SkippedC int
}

// Plan is a reusable GEMM execution plan for one (device, params,
// padded m/n/k, precision) tuple: it owns a persistent simulated
// context and queue, the three padded device buffers, prebuilt pack and
// GEMM kernels, a staging-buffer pool and the host readback slice.
// Repeated calls whose operands pad to the plan's shape run with no
// setup cost, and an unchanged A or B operand skips its upload + pack.
//
// Concurrency: all methods are safe for concurrent use, but calls on
// ONE plan serialize on its mutex (a plan owns a single set of device
// buffers). Cross-shape parallelism comes from running distinct plans
// concurrently — the PlanCache/Engine layers above hand concurrent
// goroutines distinct plans per padded shape, which execute in
// parallel.
type Plan[T matrix.Scalar] struct {
	im         *Impl
	Mp, Np, Kp int

	mu     sync.Mutex
	closed bool

	ctx              *clsim.Context
	q                *clsim.Queue
	bufA, bufB, bufC *clsim.Buffer
	kern             *kernels.GEMM[T]
	packA            *kernels.Pack[T]
	packB            *kernels.Pack[T]
	packC            *kernels.Pack[T]
	pool             *bufPool
	cp               []T // readback staging, Mp*Np

	lastA, lastB operandKey
	haveA, haveB bool
	stats        PlanStats

	tr *obs.Tracer
	o  planObs
}

// planObs holds the plan's resolved metric handles. All handles are
// nil-safe no-ops when the implementation carries no registry, so the
// uninstrumented hot path pays only nil checks.
type planObs struct {
	calls                                            *obs.Counter
	callSec                                          *obs.Histogram
	packASec, packBSec, packCSec, kernelSec, copySec *obs.Histogram
	reusedA, reusedB, skippedC                       *obs.Counter
}

func resolvePlanObs(r *obs.Registry) planObs {
	return planObs{
		calls:     r.Counter("gemm.calls"),
		callSec:   r.Histogram("gemm.call.seconds"),
		packASec:  r.Histogram("gemm.phase.pack.A.seconds"),
		packBSec:  r.Histogram("gemm.phase.pack.B.seconds"),
		packCSec:  r.Histogram("gemm.phase.pack.C.seconds"),
		kernelSec: r.Histogram("gemm.phase.kernel.seconds"),
		copySec:   r.Histogram("gemm.phase.copy.out.seconds"),
		reusedA:   r.Counter("gemm.pack.reused.A"),
		reusedB:   r.Counter("gemm.pack.reused.B"),
		skippedC:  r.Counter("gemm.pack.skipped.C"),
	}
}

// phase wraps one region of a Run with a timing observation and a
// trace span carrying the device and the bytes/flops the region moved.
// With neither a registry nor a tracer attached it calls fn directly.
func (pl *Plan[T]) phase(name string, h *obs.Histogram, bytes, flops int64, fn func() error) error {
	if h == nil && pl.tr == nil {
		return fn()
	}
	sp := pl.tr.Start(name)
	sp.SetBytes(bytes).SetFlops(flops).SetAttr("device", pl.im.Dev.ID)
	start := time.Now()
	err := fn()
	h.Observe(time.Since(start).Seconds())
	sp.End()
	return err
}

// NewPlan builds a plan for problems whose dimensions pad to the same
// shape as (m, n, k). The heavyweight setup (context, buffers, kernel
// builds) happens here, once.
func NewPlan[T matrix.Scalar](im *Impl, m, n, k int) (*Plan[T], error) {
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, fmt.Errorf("gemmimpl: non-positive plan dimensions %dx%dx%d", m, n, k)
	}
	p := im.Params
	mp, np, kp := im.padded(m, n, k)
	esz := p.Precision.Size()
	dev := &clsim.Device{Spec: im.Dev}
	ctx := clsim.NewContext(dev)
	q := clsim.NewQueue(ctx)
	reg := im.Obs()
	q.Workers = im.Workers()
	q.LaunchHook = im.launchHookRef()
	ctx.SetObserver(reg)
	pl := &Plan[T]{
		im: im, Mp: mp, Np: np, Kp: kp,
		ctx: ctx, q: q, pool: newBufPool(ctx),
		cp: make([]T, mp*np),
		tr: im.Trace(),
		o:  resolvePlanObs(reg),
	}
	var err error
	if pl.bufA, err = ctx.CreateBuffer(kp * mp * esz); err != nil {
		pl.Close()
		return nil, err
	}
	if pl.bufB, err = ctx.CreateBuffer(kp * np * esz); err != nil {
		pl.Close()
		return nil, err
	}
	if pl.bufC, err = ctx.CreateBuffer(mp * np * esz); err != nil {
		pl.Close()
		return nil, err
	}
	var zero T
	if pl.kern, err = kernels.NewGEMM(p, mp, np, kp, zero, view[T](pl.bufA), view[T](pl.bufB), zero, view[T](pl.bufC)); err != nil {
		pl.Close()
		return nil, err
	}
	// Pack kernels are built once against the fixed destinations; the
	// per-call source geometry is set by Rebind.
	mk := func(pp codegen.PackParams, r, c int, dst *clsim.Buffer) (*kernels.Pack[T], error) {
		return kernels.NewPack(pp, 0, 0, 0, r, c, nil, view[T](dst))
	}
	if pl.packA, err = mk(codegen.PackParams{Precision: p.Precision, Layout: p.LayoutA, Rb: p.Kwg, Cb: p.Mwg}, kp, mp, pl.bufA); err != nil {
		pl.Close()
		return nil, err
	}
	if pl.packB, err = mk(codegen.PackParams{Precision: p.Precision, Layout: p.LayoutB, Rb: p.Kwg, Cb: p.Nwg}, kp, np, pl.bufB); err != nil {
		pl.Close()
		return nil, err
	}
	if pl.packC, err = mk(codegen.PackParams{Precision: p.Precision, Layout: matrix.LayoutRowMajor, Rb: p.Mwg, Cb: p.Nwg}, mp, np, pl.bufC); err != nil {
		pl.Close()
		return nil, err
	}
	pl.kern.SetObserver(reg)
	for _, pk := range []*kernels.Pack[T]{pl.packA, pl.packB, pl.packC} {
		pk.SetObserver(reg)
	}
	if im.ForceGenericKernels() {
		pl.kern.SetFastPath(false)
		for _, pk := range []*kernels.Pack[T]{pl.packA, pl.packB, pl.packC} {
			pk.SetFastPath(false)
		}
	}
	return pl, nil
}

// Context exposes the plan's simulated context (buffer accounting for
// leak tests).
func (pl *Plan[T]) Context() *clsim.Context { return pl.ctx }

// Stats returns a snapshot of the plan's execution counters.
func (pl *Plan[T]) Stats() PlanStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.stats
}

// KernelStateAllocs returns how many work-group states the plan's GEMM
// kernel has allocated (kernels.GEMM.StateAllocs): flat across warm
// calls, which the batched zero-alloc tests assert.
func (pl *Plan[T]) KernelStateAllocs() int64 { return pl.kern.StateAllocs() }

// Close releases every device buffer the plan owns (the persistent
// operand buffers and the staging pool). A closed plan rejects Run.
func (pl *Plan[T]) Close() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return
	}
	pl.closed = true
	for _, b := range []*clsim.Buffer{pl.bufA, pl.bufB, pl.bufC} {
		if b != nil {
			b.Release()
		}
	}
	pl.pool.close()
}

// pack uploads src through a pooled staging buffer and runs the §III-D
// copy kernel into the prebuilt destination. transpose is relative to
// the logical matrix; column-major storage flips the physical flag.
func (pl *Plan[T]) pack(pk *kernels.Pack[T], src *matrix.Matrix[T], transpose bool) error {
	sr, sc := src.Rows, src.Cols
	if src.Order == matrix.ColMajor {
		sr, sc = sc, sr
		transpose = !transpose
	}
	esz := pl.im.Params.Precision.Size()
	bufS, err := pl.pool.get(max(len(src.Data), 1) * esz)
	if err != nil {
		return err
	}
	defer pl.pool.put(bufS)
	if err := writeBuf(pl.q, bufS, src.Data); err != nil {
		return err
	}
	if err := pk.Rebind(sr, sc, src.Stride, transpose, view[T](bufS)); err != nil {
		return err
	}
	return pl.q.RunLockstep(pk, pk.NDRange())
}

// ctxErr wraps a context failure so callers can both errors.Is against
// context.DeadlineExceeded/Canceled and see which phase was abandoned.
func ctxErr(err error, phase string) error {
	return fmt.Errorf("gemmimpl: call abandoned before %s: %w", phase, err)
}

// Run computes C ← alpha·op(A)·op(B) + beta·C on the plan's device
// state. The problem must pad to the plan's shape. When A or B is
// bit-identical to the operand packed by the previous call (same
// geometry, order and contents), its upload and pack are skipped; when
// beta == 0, C is neither read nor packed, per BLAS semantics.
func (pl *Plan[T]) Run(ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	return pl.RunCtx(context.Background(), ta, tb, alpha, a, b, beta, c)
}

// RunCtx is Run with cancellation: the context is checked before every
// phase (pack A/B/C, kernel, copy-out), so a cancelled or deadline-
// expired call returns within one phase of the signal instead of
// finishing the whole tile. A partially-executed call leaves the plan
// consistent — the next Run simply re-packs whatever the abandoned call
// invalidated. The returned error wraps ctx.Err(), so errors.Is against
// context.DeadlineExceeded/context.Canceled works.
func (pl *Plan[T]) RunCtx(ctx context.Context, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	m, n, k, err := gemmDims(ta, tb, a, b, c)
	if err != nil {
		return err
	}
	mp, np, kp := pl.im.padded(m, n, k)
	if mp != pl.Mp || np != pl.Np || kp != pl.Kp {
		return fmt.Errorf("gemmimpl: problem %dx%dx%d pads to %dx%dx%d, plan holds %dx%dx%d",
			m, n, k, mp, np, kp, pl.Mp, pl.Np, pl.Kp)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.runLocked(ctx, ta, tb, alpha, a, b, beta, c, m, n)
}

// runLocked executes one validated call on the plan's device state.
// Callers hold pl.mu and have checked the padded shape; the strided
// batch path loops it under a single lock hold so the whole batch is
// one plan claim.
func (pl *Plan[T]) runLocked(ctx context.Context, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T], m, n int) error {
	if pl.closed {
		return fmt.Errorf("gemmimpl: Run on closed plan")
	}
	k := a.Cols
	if ta == blas.Trans {
		k = a.Rows
	}
	np := pl.Np
	pl.q.Workers = pl.im.Workers()
	callStart := time.Now()
	esz := int64(pl.im.Params.Precision.Size())

	if err := ctx.Err(); err != nil {
		return ctxErr(err, "pack A")
	}
	keyA := sourceKey(a, ta == blas.NoTrans)
	if pl.haveA && keyA == pl.lastA {
		pl.stats.ReusedA++
		pl.o.reusedA.Inc()
	} else {
		pl.haveA = false
		err := pl.phase("gemm.pack.A", pl.o.packASec, int64(len(a.Data))*esz, 0, func() error {
			return pl.pack(pl.packA, a, ta == blas.NoTrans)
		})
		if err != nil {
			return err
		}
		pl.lastA, pl.haveA = keyA, true
		pl.stats.PackA++
	}
	if err := ctx.Err(); err != nil {
		return ctxErr(err, "pack B")
	}
	keyB := sourceKey(b, tb == blas.Trans)
	if pl.haveB && keyB == pl.lastB {
		pl.stats.ReusedB++
		pl.o.reusedB.Inc()
	} else {
		pl.haveB = false
		err := pl.phase("gemm.pack.B", pl.o.packBSec, int64(len(b.Data))*esz, 0, func() error {
			return pl.pack(pl.packB, b, tb == blas.Trans)
		})
		if err != nil {
			return err
		}
		pl.lastB, pl.haveB = keyB, true
		pl.stats.PackB++
	}
	if err := ctx.Err(); err != nil {
		return ctxErr(err, "pack C")
	}
	if beta == 0 {
		// BLAS: C must not be read when beta == 0. The GEMM kernel
		// overwrites every padded element, so stale device contents
		// (previous calls, NaN/Inf-poisoned host C) never surface.
		pl.stats.SkippedC++
		pl.o.skippedC.Inc()
	} else {
		err := pl.phase("gemm.pack.C", pl.o.packCSec, int64(len(c.Data))*esz, 0, func() error {
			return pl.pack(pl.packC, c, false)
		})
		if err != nil {
			return err
		}
		pl.stats.PackC++
	}

	if err := ctx.Err(); err != nil {
		return ctxErr(err, "kernel")
	}
	pl.kern.SetScalars(alpha, beta)
	err := pl.phase("gemm.kernel", pl.o.kernelSec, 0, int64(blas.FlopCount(m, n, k)), func() error {
		return pl.q.RunLockstep(pl.kern, pl.kern.NDRange())
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return ctxErr(err, "copy out")
	}
	err = pl.phase("gemm.copy.out", pl.o.copySec, int64(len(pl.cp))*esz, 0, func() error {
		if err := readBuf(pl.q, pl.bufC, pl.cp); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				c.Set(i, j, pl.cp[i*np+j])
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	pl.stats.Runs++
	pl.o.calls.Inc()
	pl.o.callSec.Observe(time.Since(callStart).Seconds())
	return nil
}

// planKey is the padded shape a plan serves.
type planKey struct{ mp, np, kp int }

// cacheEntry is one cached plan plus its lifecycle state. An entry is
// inserted before its plan is built (singleflight placeholder): ready
// is closed when the build finishes, after which exactly one of plan
// and err is set. refs counts calls between claim and release; a
// doomed entry (evicted while in use) is closed by the last release.
type cacheEntry[T matrix.Scalar] struct {
	plan    *Plan[T]
	err     error
	ready   chan struct{}
	refs    int
	lastUse int64
	doomed  bool
}

// DefaultMaxPlans bounds a PlanCache when no explicit limit is given;
// beyond it the least-recently-used idle plan is closed and evicted.
const DefaultMaxPlans = 8

// PlanCache keeps one plan per padded problem shape for an
// implementation, building plans on first use and evicting LRU when
// over capacity. Safe for concurrent use: the heavyweight plan build
// happens outside the cache lock with per-key singleflight, so a cold
// miss for one shape never blocks calls on warm shapes and concurrent
// cold misses for one shape build exactly once.
type PlanCache[T matrix.Scalar] struct {
	im       *Impl
	maxPlans int

	hit, miss, evicted *obs.Counter

	// buildHook, when set, runs in the building goroutine after the
	// singleflight placeholder is published but before NewPlan — with
	// pc.mu NOT held. A non-nil return aborts the build with that
	// error. Tests use it to stall a cold build (proving warm shapes
	// keep running) and to inject build failures.
	buildHook func() error

	mu    sync.Mutex
	seq   int64
	plans map[planKey]*cacheEntry[T]
}

// NewPlanCache creates a cache holding at most maxPlans plans
// (maxPlans <= 0 selects DefaultMaxPlans).
func NewPlanCache[T matrix.Scalar](im *Impl, maxPlans int) *PlanCache[T] {
	if maxPlans <= 0 {
		maxPlans = DefaultMaxPlans
	}
	return &PlanCache[T]{
		im: im, maxPlans: maxPlans, plans: make(map[planKey]*cacheEntry[T]),
		hit:     im.Obs().Counter("gemm.plan.hit"),
		miss:    im.Obs().Counter("gemm.plan.miss"),
		evicted: im.Obs().Counter("gemm.plan.evicted"),
	}
}

// Len returns the number of cached plans.
func (pc *PlanCache[T]) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.plans)
}

// Stats sums the counters of every live cached plan (entries still
// being built are skipped).
func (pc *PlanCache[T]) Stats() PlanStats {
	pc.mu.Lock()
	entries := make([]*cacheEntry[T], 0, len(pc.plans))
	for _, e := range pc.plans {
		if e.plan != nil {
			entries = append(entries, e)
		}
	}
	pc.mu.Unlock()
	var out PlanStats
	for _, e := range entries {
		s := e.plan.Stats()
		out.Runs += s.Runs
		out.PackA += s.PackA
		out.PackB += s.PackB
		out.PackC += s.PackC
		out.ReusedA += s.ReusedA
		out.ReusedB += s.ReusedB
		out.SkippedC += s.SkippedC
	}
	return out
}

// Run executes one GEMM through the cache: the plan for the padded
// shape is built on first use and reused afterwards.
func (pc *PlanCache[T]) Run(ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	return pc.RunCtx(context.Background(), ta, tb, alpha, a, b, beta, c)
}

// RunCtx is Run with cancellation, forwarded to the plan's RunCtx.
//
// A cold shape builds its plan outside the cache lock: the call
// publishes a singleflight placeholder, releases pc.mu, and only then
// runs the heavyweight NewPlan, so warm-shape traffic is never
// head-of-line-blocked behind a cold build. Concurrent cold misses for
// one shape build exactly once — the losers wait for the winner's
// build (or their context, whichever ends first).
func (pc *PlanCache[T]) RunCtx(ctx context.Context, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	m, n, k, err := gemmDims(ta, tb, a, b, c)
	if err != nil {
		return err
	}
	e, err := pc.acquire(ctx, m, n, k)
	if err != nil {
		return err
	}
	err = e.plan.RunCtx(ctx, ta, tb, alpha, a, b, beta, c)
	pc.release(e)
	return err
}

// acquire claims the cache entry for the padded shape of (m, n, k),
// building the plan on a cold miss (outside the lock, singleflight).
// On success the returned entry holds a built plan and one claim ref;
// the caller must pc.release it. One acquire/release pair may span any
// number of plan runs — the strided batch path claims once for a whole
// batch.
func (pc *PlanCache[T]) acquire(ctx context.Context, m, n, k int) (*cacheEntry[T], error) {
	mp, np, kp := pc.im.padded(m, n, k)
	key := planKey{mp, np, kp}

	pc.mu.Lock()
	e := pc.plans[key]
	if e == nil {
		// Cold miss: claim the key with an unbuilt entry and build
		// outside the lock. The claim ref keeps eviction from closing
		// the entry mid-build (it may doom it; see release).
		pc.miss.Inc()
		e = &cacheEntry[T]{ready: make(chan struct{}), refs: 1}
		pc.plans[key] = e
		pc.touchLocked(e)
		pc.evictLocked(key)
		pc.mu.Unlock()

		var plan *Plan[T]
		var perr error
		if pc.buildHook != nil {
			perr = pc.buildHook()
		}
		if perr == nil {
			plan, perr = NewPlan[T](pc.im, m, n, k)
		}

		pc.mu.Lock()
		e.plan, e.err = plan, perr
		close(e.ready)
		if perr != nil {
			// A failed build must not poison the key: drop the entry so
			// the next call rebuilds. Waiters still hold e and see e.err.
			if pc.plans[key] == e {
				delete(pc.plans, key)
			}
			pc.releaseLocked(e)
			pc.mu.Unlock()
			return nil, perr
		}
		pc.mu.Unlock()
	} else {
		e.refs++
		pc.touchLocked(e)
		pc.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			pc.release(e)
			return nil, ctxErr(ctx.Err(), "plan build")
		}
		if e.err != nil {
			pc.release(e)
			return nil, e.err
		}
		pc.hit.Inc()
	}
	return e, nil
}

// touchLocked stamps the entry as most recently used.
func (pc *PlanCache[T]) touchLocked(e *cacheEntry[T]) {
	pc.seq++
	e.lastUse = pc.seq
}

// release drops one claim on the entry, closing a doomed plan when the
// last claim goes.
func (pc *PlanCache[T]) release(e *cacheEntry[T]) {
	pc.mu.Lock()
	pc.releaseLocked(e)
	pc.mu.Unlock()
}

func (pc *PlanCache[T]) releaseLocked(e *cacheEntry[T]) {
	e.refs--
	if e.doomed && e.refs == 0 && e.plan != nil {
		e.plan.Close()
	}
}

// evictLocked drops least-recently-used plans beyond capacity. In-use
// (or still-building) plans are doomed instead of closed; the last
// release closes them.
func (pc *PlanCache[T]) evictLocked(keep planKey) {
	for len(pc.plans) > pc.maxPlans {
		var victim planKey
		var found bool
		for k, e := range pc.plans {
			if k == keep {
				continue
			}
			if !found || e.lastUse < pc.plans[victim].lastUse {
				victim, found = k, true
			}
		}
		if !found {
			return
		}
		e := pc.plans[victim]
		delete(pc.plans, victim)
		pc.evicted.Inc()
		if e.refs == 0 && e.plan != nil {
			e.plan.Close()
		} else {
			e.doomed = true
		}
	}
}

// Close evicts and closes every cached plan.
func (pc *PlanCache[T]) Close() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for k, e := range pc.plans {
		delete(pc.plans, k)
		if e.refs == 0 && e.plan != nil {
			e.plan.Close()
		} else {
			e.doomed = true
		}
	}
}

// Engine is the precision-complete execution engine for one
// implementation: a plan cache per element type, sharing the Impl's
// device, parameters and Workers option. The public oclgemm.GEMM and
// level3.Engine route every call through one of these.
type Engine struct {
	im  *Impl
	c32 *PlanCache[float32]
	c64 *PlanCache[float64]
}

// NewEngine builds an engine with DefaultMaxPlans-bounded caches.
func NewEngine(im *Impl) *Engine {
	return &Engine{im: im, c32: NewPlanCache[float32](im, 0), c64: NewPlanCache[float64](im, 0)}
}

// Impl returns the implementation the engine serves.
func (e *Engine) Impl() *Impl { return e.im }

// Close releases every plan in both caches.
func (e *Engine) Close() {
	e.c32.Close()
	e.c64.Close()
}

// Cache32 exposes the float32 plan cache (stats for tests and tools).
func (e *Engine) Cache32() *PlanCache[float32] { return e.c32 }

// Cache64 exposes the float64 plan cache.
func (e *Engine) Cache64() *PlanCache[float64] { return e.c64 }

// EngineRun executes one GEMM through the engine's plan cache for T.
func EngineRun[T matrix.Scalar](e *Engine, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	return EngineRunCtx(context.Background(), e, ta, tb, alpha, a, b, beta, c)
}

// EngineRunCtx is EngineRun with cancellation: the serve path's
// deadline-aware entry point into the engine. The context is checked at
// every phase boundary of the underlying plan.
func EngineRunCtx[T matrix.Scalar](ctx context.Context, e *Engine, ta, tb blas.Transpose, alpha T, a, b *matrix.Matrix[T], beta T, c *matrix.Matrix[T]) error {
	switch any(alpha).(type) {
	case float64:
		return e.c64.RunCtx(ctx, ta, tb, any(alpha).(float64),
			any(a).(*matrix.Matrix[float64]), any(b).(*matrix.Matrix[float64]),
			any(beta).(float64), any(c).(*matrix.Matrix[float64]))
	default:
		return e.c32.RunCtx(ctx, ta, tb, any(alpha).(float32),
			any(a).(*matrix.Matrix[float32]), any(b).(*matrix.Matrix[float32]),
			any(beta).(float32), any(c).(*matrix.Matrix[float32]))
	}
}

// Call is one GEMM of a batch: C ← Alpha·op(A)·op(B) + Beta·C.
type Call[T matrix.Scalar] struct {
	TransA, TransB blas.Transpose
	Alpha          T
	A, B           *matrix.Matrix[T]
	Beta           T
	C              *matrix.Matrix[T]
}

// RunBatch executes the calls in order through the engine, stopping at
// the first error. Calls sharing a padded shape reuse one plan, and
// consecutive calls with an unchanged A or B skip that operand's
// upload and pack — the steady-state serving path for repeated GEMM
// traffic.
func RunBatch[T matrix.Scalar](e *Engine, calls []Call[T]) error {
	return RunBatchCtx(context.Background(), e, calls)
}

// RunBatchCtx is RunBatch with cancellation: a cancelled context stops
// the batch between calls (and within the current call at its next
// phase boundary), reporting how far it got.
func RunBatchCtx[T matrix.Scalar](ctx context.Context, e *Engine, calls []Call[T]) error {
	for i, cl := range calls {
		if err := EngineRunCtx(ctx, e, cl.TransA, cl.TransB, cl.Alpha, cl.A, cl.B, cl.Beta, cl.C); err != nil {
			return fmt.Errorf("batch call %d: %w", i, err)
		}
	}
	return nil
}

// RunBatchEachCtx executes a batch of independent calls with per-call
// contexts, returning one error slot per call instead of stopping at
// the first failure — the serve coalescer's entry point: requests from
// different clients share the warm plan (and pack reuse) of a batch,
// but one expired deadline or bad call must not fail its neighbors. A
// nil or missing context means context.Background; ctxs may be shorter
// than calls. Each non-nil error names its batch index in the chain
// (and still unwraps to the underlying cause), so an aggregated report
// identifies which call failed.
func RunBatchEachCtx[T matrix.Scalar](e *Engine, ctxs []context.Context, calls []Call[T]) []error {
	errs := make([]error, len(calls))
	for i, cl := range calls {
		ctx := context.Background()
		if i < len(ctxs) && ctxs[i] != nil {
			ctx = ctxs[i]
		}
		if err := EngineRunCtx(ctx, e, cl.TransA, cl.TransB, cl.Alpha, cl.A, cl.B, cl.Beta, cl.C); err != nil {
			errs[i] = fmt.Errorf("batch call %d: %w", i, err)
		}
	}
	return errs
}
