package gemmimpl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

func testImpl(t *testing.T) *Impl {
	t.Helper()
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 8, Nwg: 8, Kwg: 4,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 1,
		SharedA: true, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	im, err := New(device.Tahiti(), p)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func randCM(rows, cols int, seed int64) *matrix.Matrix[float64] {
	m := matrix.New[float64](rows, cols, matrix.ColMajor)
	m.FillRandom(rand.New(rand.NewSource(seed)))
	return m
}

// All four GEMM types on column-major data (the paper's §IV-B setup),
// with sizes NOT multiples of the blocking factors (exercises padding).
func TestAllTypesColumnMajorPadded(t *testing.T) {
	im := testImpl(t)
	m, n, k := 13, 19, 11
	for _, g := range blas.GEMMTypes {
		var a, b *matrix.Matrix[float64]
		if g.TransA == blas.Trans {
			a = randCM(k, m, 1)
		} else {
			a = randCM(m, k, 1)
		}
		if g.TransB == blas.Trans {
			b = randCM(n, k, 2)
		} else {
			b = randCM(k, n, 2)
		}
		c := randCM(m, n, 3)
		want := c.Clone()
		blas.GEMM(g.TransA, g.TransB, 1.5, a, b, -0.25, want)

		if err := Run(im, g.TransA, g.TransB, 1.5, a, b, -0.25, c); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if d := matrix.MaxRelDiff(c, want); d > 1e-12 {
			t.Errorf("%s: diff %g vs reference", g, d)
		}
	}
}

func TestRowMajorInputs(t *testing.T) {
	im := testImpl(t)
	m, n, k := 16, 8, 12
	a := matrix.New[float64](m, k, matrix.RowMajor)
	b := matrix.New[float64](k, n, matrix.RowMajor)
	c := matrix.New[float64](m, n, matrix.RowMajor)
	rng := rand.New(rand.NewSource(4))
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, want)
	if err := Run(im, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(c, want); d > 1e-12 {
		t.Errorf("row-major diff %g", d)
	}
}

func TestDimensionMismatch(t *testing.T) {
	im := testImpl(t)
	a := randCM(4, 5, 1)
	b := randCM(6, 7, 2) // inner mismatch
	c := randCM(4, 7, 3)
	if err := Run(im, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err == nil {
		t.Error("inner mismatch must fail")
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	p := codegen.Params{Mwg: 7, Nwg: 8, Kwg: 4, MdimC: 4, NdimC: 4, Kwi: 2, VectorWidth: 1}
	if _, err := New(device.Tahiti(), p); err == nil {
		t.Error("invalid params must be rejected")
	}
}

// The copy overhead must make small problems relatively slow and be
// amortized at large sizes (paper Fig. 9 discussion).
func TestCopyOverheadAmortization(t *testing.T) {
	p := codegen.Params{
		Precision: matrix.Double, Algorithm: codegen.BA,
		Mwg: 96, Nwg: 32, Kwg: 48, MdimC: 16, NdimC: 16, MdimA: 16, NdimB: 16,
		Kwi: 2, VectorWidth: 2, SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
	}
	im, err := New(device.Tahiti(), p)
	if err != nil {
		t.Fatal(err)
	}
	small, err := im.Time(384, 384, 384)
	if err != nil {
		t.Fatal(err)
	}
	large, err := im.Time(4032, 4032, 4032)
	if err != nil {
		t.Fatal(err)
	}
	fracSmall := small.CopySeconds / small.TotalSeconds
	fracLarge := large.CopySeconds / large.TotalSeconds
	if fracSmall <= fracLarge {
		t.Errorf("copy fraction must shrink with size: %.3f vs %.3f", fracSmall, fracLarge)
	}
	if fracLarge > 0.10 {
		t.Errorf("copy overhead at N=4032 should be amortized, got %.3f", fracLarge)
	}

	gfS, _ := im.GFlops(384, 384, 384)
	gfL, _ := im.GFlops(4032, 4032, 4032)
	if gfS >= gfL {
		t.Errorf("implementation must be slower for small sizes: %.0f vs %.0f", gfS, gfL)
	}
	// Kernel-only performance must exceed the full implementation.
	if gfL >= blas.FlopCount(4032, 4032, 4032)/large.Kernel.Total/1e9 {
		t.Error("full routine cannot beat its own kernel")
	}
}

// Performance must be nearly independent of the GEMM type (Table III).
func TestTypeIndependentCost(t *testing.T) {
	im := testImpl(t)
	// Time() has no type argument by design; this asserts the API
	// reflects the paper's observation. Functional equivalence across
	// types is covered above; here we just pin the modeled numbers.
	a, err := im.Time(100, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSeconds <= 0 || a.CopySeconds <= 0 {
		t.Error("breakdown must be positive")
	}
}

// Property: random shapes and scalars agree with the reference.
func TestRunPropertyRandomShapes(t *testing.T) {
	im := testImpl(t)
	f := func(ms, ns, ks uint8, ta, tb bool, seed int64) bool {
		m := int(ms%24) + 1
		n := int(ns%24) + 1
		k := int(ks%24) + 1
		tA, tB := blas.NoTrans, blas.NoTrans
		if ta {
			tA = blas.Trans
		}
		if tb {
			tB = blas.Trans
		}
		var a, b *matrix.Matrix[float64]
		if tA == blas.Trans {
			a = randCM(k, m, seed)
		} else {
			a = randCM(m, k, seed)
		}
		if tB == blas.Trans {
			b = randCM(n, k, seed+1)
		} else {
			b = randCM(k, n, seed+1)
		}
		c := randCM(m, n, seed+2)
		want := c.Clone()
		blas.GEMM(tA, tB, 0.5, a, b, 2.0, want)
		if err := Run(im, tA, tB, 0.5, a, b, 2.0, c); err != nil {
			return false
		}
		return matrix.MaxRelDiff(c, want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Float32 path through the clsim buffers.
func TestRunFloat32(t *testing.T) {
	p := codegen.Params{
		Precision: matrix.Single, Algorithm: codegen.BA,
		Mwg: 8, Nwg: 8, Kwg: 4,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 2,
		SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL,
	}
	im, err := New(device.Fermi(), p)
	if err != nil {
		t.Fatal(err)
	}
	m, n, k := 10, 9, 7
	a := matrix.New[float32](m, k, matrix.ColMajor)
	b := matrix.New[float32](k, n, matrix.ColMajor)
	c := matrix.New[float32](m, n, matrix.ColMajor)
	rng := rand.New(rand.NewSource(9))
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	blas.GEMM(blas.NoTrans, blas.NoTrans, float32(1), a, b, float32(1), want)
	if err := Run(im, blas.NoTrans, blas.NoTrans, float32(1), a, b, float32(1), c); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(c, want); d > float64(matrix.Tolerance(matrix.Single, k)) {
		t.Errorf("float32 diff %g", d)
	}
}
