// Strided-batched execution: count same-shape GEMMs amortizing ONE
// plan claim, one mutex hold and one set of packed-operand
// fingerprints across the whole batch. Each item still runs the full
// pack→kernel→copy-out pipeline (results are bit-identical to a loop
// of single calls — the kernel accumulates in the same k-order), but
// the per-call overhead a loop of Engine runs would pay — cache
// lookup, entry claim, lock, workers reload — is paid once, and a
// broadcast operand (stride 0) packs once for the whole batch via the
// existing fingerprint reuse.
package gemmimpl

import (
	"context"
	"fmt"

	"oclgemm/internal/batch"
	"oclgemm/internal/matrix"
)

// RunStrided executes a strided batch on the plan. See RunStridedCtx.
func (pl *Plan[T]) RunStrided(sb *batch.Strided[T]) error {
	return pl.RunStridedCtx(context.Background(), sb)
}

// RunStridedCtx executes every item of the batch back-to-back under a
// single lock hold on the plan. The batch's shape must pad to the
// plan's shape. A failed or cancelled item stops the batch and reports
// its index; earlier items have already committed their results.
func (pl *Plan[T]) RunStridedCtx(ctx context.Context, sb *batch.Strided[T]) error {
	items, err := sb.Items()
	if err != nil {
		return err
	}
	mp, np, kp := pl.im.padded(sb.M, sb.N, sb.K)
	if mp != pl.Mp || np != pl.Np || kp != pl.Kp {
		return fmt.Errorf("gemmimpl: batch %dx%dx%d pads to %dx%dx%d, plan holds %dx%dx%d",
			sb.M, sb.N, sb.K, mp, np, kp, pl.Mp, pl.Np, pl.Kp)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for i := range items {
		it := &items[i]
		if err := pl.runLocked(ctx, sb.TransA, sb.TransB, sb.Alpha, it.A, it.B, sb.Beta, it.C, sb.M, sb.N); err != nil {
			return fmt.Errorf("batch item %d: %w", i, err)
		}
	}
	return nil
}

// RunStridedCtx executes a strided batch through the cache: the plan
// for the batch's padded shape is claimed exactly once (built on first
// use), every item runs on it back-to-back, and the claim is released
// when the batch completes — one plan build and one cache transaction
// regardless of Count.
func (pc *PlanCache[T]) RunStridedCtx(ctx context.Context, sb *batch.Strided[T]) error {
	if _, err := sb.Items(); err != nil {
		return err
	}
	e, err := pc.acquire(ctx, sb.M, sb.N, sb.K)
	if err != nil {
		return err
	}
	err = e.plan.RunStridedCtx(ctx, sb)
	pc.release(e)
	return err
}

// EngineRunStrided executes a strided batch through the engine's plan
// cache for T. See EngineRunStridedCtx.
func EngineRunStrided[T matrix.Scalar](e *Engine, sb *batch.Strided[T]) error {
	return EngineRunStridedCtx(context.Background(), e, sb)
}

// EngineRunStridedCtx is the engine entry point for strided-batched
// GEMM: one plan claim for the whole batch, per-item context checks at
// every phase boundary. Results are bit-identical to looping
// EngineRunCtx over the items.
func EngineRunStridedCtx[T matrix.Scalar](ctx context.Context, e *Engine, sb *batch.Strided[T]) error {
	switch s := any(sb).(type) {
	case *batch.Strided[float64]:
		return e.c64.RunStridedCtx(ctx, s)
	case *batch.Strided[float32]:
		return e.c32.RunStridedCtx(ctx, s)
	}
	return fmt.Errorf("gemmimpl: unsupported batch element type %T", sb)
}
