package gemmimpl

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"oclgemm/internal/blas"
	"oclgemm/internal/codegen"
	"oclgemm/internal/device"
	"oclgemm/internal/matrix"
)

var errInjected = errors.New("injected launch fault")

func testImplSingle(t *testing.T) *Impl {
	t.Helper()
	p := codegen.Params{
		Precision: matrix.Single, Algorithm: codegen.BA,
		Mwg: 8, Nwg: 8, Kwg: 4,
		MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
		Kwi: 2, VectorWidth: 2,
		SharedB: true,
		LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutRBL,
	}
	im, err := New(device.Fermi(), p)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// checkGEMM runs one plan call and compares against the host reference.
func checkGEMM(t *testing.T, pl *Plan[float64], ta, tb blas.Transpose, alpha float64, a, b *matrix.Matrix[float64], beta float64, c *matrix.Matrix[float64]) {
	t.Helper()
	want := c.Clone()
	blas.GEMM(ta, tb, alpha, a, b, beta, want)
	if err := pl.Run(ta, tb, alpha, a, b, beta, c); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(c, want); d > 1e-12 {
		t.Fatalf("diff %g vs reference", d)
	}
}

// A repeated call with unchanged A and B must skip both packs; mutating
// an operand must trigger a repack and still compute correctly.
func TestPlanPackReuse(t *testing.T) {
	im := testImpl(t)
	m, n, k := 13, 19, 11
	pl, err := NewPlan[float64](im, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	a, b := randCM(m, k, 1), randCM(k, n, 2)

	checkGEMM(t, pl, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0, randCM(m, n, 3))
	checkGEMM(t, pl, blas.NoTrans, blas.NoTrans, 2.5, a, b, 0, randCM(m, n, 4))
	st := pl.Stats()
	if st.PackA != 1 || st.PackB != 1 || st.ReusedA != 1 || st.ReusedB != 1 {
		t.Errorf("after identical rerun: %+v", st)
	}

	// In-place mutation (no pointer change) must invalidate the pack.
	a.Set(0, 0, a.At(0, 0)+1)
	checkGEMM(t, pl, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0, randCM(m, n, 5))
	st = pl.Stats()
	if st.PackA != 2 || st.ReusedA != 1 || st.ReusedB != 2 {
		t.Errorf("after mutating A: %+v", st)
	}

	// A different transpose flag changes the packed form even for
	// identical contents.
	sq := randCM(8, 8, 6)
	pls, err := NewPlan[float64](im, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pls.Close()
	checkGEMM(t, pls, blas.NoTrans, blas.NoTrans, 1, sq, sq, 0, randCM(8, 8, 7))
	checkGEMM(t, pls, blas.Trans, blas.NoTrans, 1, sq, sq, 0, randCM(8, 8, 7))
	if st := pls.Stats(); st.PackA != 2 {
		t.Errorf("transpose change must repack A: %+v", st)
	}
}

// beta == 0 must not read C: a NaN-poisoned C must produce the clean
// product, through both the one-shot path and a warm plan whose device
// buffer holds stale data from a previous call.
func TestBetaZeroDoesNotReadC(t *testing.T) {
	im := testImpl(t)
	m, n, k := 13, 19, 11
	a, b := randCM(m, k, 1), randCM(k, n, 2)
	want := matrix.New[float64](m, n, matrix.ColMajor)
	blas.GEMM(blas.NoTrans, blas.NoTrans, 1.5, a, b, 0, want)

	poison := func() *matrix.Matrix[float64] {
		c := matrix.New[float64](m, n, matrix.ColMajor)
		for i := range c.Data {
			c.Data[i] = math.NaN()
		}
		return c
	}

	// One-shot (cold) path.
	c := poison()
	if err := Run(im, blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.0, c); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(c, want); d > 1e-12 || math.IsNaN(d) {
		t.Errorf("one-shot beta=0 with NaN C: diff %v", d)
	}

	// Warm plan: first poison the device C buffer via a beta != 0 call,
	// then ensure beta == 0 ignores both host and device C state.
	pl, err := NewPlan[float64](im, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	c2 := randCM(m, n, 3)
	if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c2); err != nil {
		t.Fatal(err)
	}
	c = poison()
	if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.0, c); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(c, want); d > 1e-12 || math.IsNaN(d) {
		t.Errorf("warm beta=0 with NaN C: diff %v", d)
	}
	st := pl.Stats()
	if st.SkippedC != 1 || st.PackC != 1 {
		t.Errorf("C pack accounting: %+v", st)
	}
}

// A plan serves exactly one padded shape and rejects use after Close.
func TestPlanShapeAndClosedErrors(t *testing.T) {
	im := testImpl(t)
	pl, err := NewPlan[float64](im, 13, 19, 11)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := randCM(40, 40, 1), randCM(40, 40, 2), randCM(40, 40, 3)
	if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err == nil {
		t.Error("padded-shape mismatch must fail")
	} else if !strings.Contains(err.Error(), "plan holds") {
		t.Errorf("unexpected mismatch error: %v", err)
	}
	pl.Close()
	pl.Close() // idempotent
	a, b, c = randCM(13, 11, 1), randCM(11, 19, 2), randCM(13, 19, 3)
	if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err == nil {
		t.Error("Run on closed plan must fail")
	}
}

// Device buffer accounting must balance on every path: steady-state runs
// must not grow the live set, failed launches (fault injection at each
// of the four kernels of a call) must not strand buffers, and Close must
// release everything.
func TestPlanBufferAccounting(t *testing.T) {
	im := testImpl(t)
	m, n, k := 13, 19, 11
	mk := func(seed int64) (a, b, c *matrix.Matrix[float64]) {
		return randCM(m, k, seed), randCM(k, n, seed+1), randCM(m, n, seed+2)
	}

	t.Run("steady-state", func(t *testing.T) {
		pl, err := NewPlan[float64](im, m, n, k)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c := mk(1)
		if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c); err != nil {
			t.Fatal(err)
		}
		after1 := pl.Context().BufferStats()
		for i := int64(0); i < 5; i++ {
			a, b, c := mk(10 * i)
			if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c); err != nil {
				t.Fatal(err)
			}
		}
		st := pl.Context().BufferStats()
		if st.Created != after1.Created || st.Live != after1.Live {
			t.Errorf("steady state grew the buffer set: %+v -> %+v", after1, st)
		}
		pl.Close()
		st = pl.Context().BufferStats()
		if st.Live != 0 || st.LiveBytes != 0 || st.Created != st.Released {
			t.Errorf("leak after Close: %+v", st)
		}
	})

	// Fail the Nth kernel launch of a beta != 0 call (pack A, pack B,
	// pack C, then GEMM) and verify no buffer is stranded.
	for fail := int64(1); fail <= 4; fail++ {
		var launch int64
		imf := testImpl(t)
		imf.SetLaunchHook(func(string) error {
			if atomic.AddInt64(&launch, 1) == fail {
				return errInjected
			}
			return nil
		})
		pl, err := NewPlan[float64](imf, m, n, k)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c := mk(fail)
		if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c); err == nil {
			t.Fatalf("fail=%d: injected fault must surface", fail)
		}
		pl.Close()
		st := pl.Context().BufferStats()
		if st.Live != 0 || st.LiveBytes != 0 || st.Created != st.Released {
			t.Errorf("fail=%d: leak after faulted run + Close: %+v", fail, st)
		}
		// The plan must recover once the fault clears: rebuild and run.
		pl2, err := NewPlan[float64](imf, m, n, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := pl2.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c); err != nil {
			t.Errorf("fail=%d: clean rerun failed: %v", fail, err)
		}
		pl2.Close()
	}
}

// The cache must bound live plans with LRU eviction and rebuild on
// re-access.
func TestPlanCacheLRU(t *testing.T) {
	im := testImpl(t)
	pc := NewPlanCache[float64](im, 2)
	defer pc.Close()
	run := func(m, n, k int, seed int64) {
		t.Helper()
		a, b, c := randCM(m, k, seed), randCM(k, n, seed+1), randCM(m, n, seed+2)
		want := c.Clone()
		blas.GEMM(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, want)
		if err := pc.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.5, c); err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxRelDiff(c, want); d > 1e-12 {
			t.Fatalf("%dx%dx%d: diff %g", m, n, k, d)
		}
	}
	run(8, 8, 8, 1)
	run(16, 16, 16, 2)
	if pc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pc.Len())
	}
	run(24, 24, 24, 3) // evicts the 8³ plan (LRU)
	if pc.Len() != 2 {
		t.Fatalf("Len after eviction = %d, want 2", pc.Len())
	}
	run(16, 16, 16, 4) // still cached: reuses its plan
	run(8, 8, 8, 5)    // evicted: rebuilt transparently
	// Stats sums live plans only: the 16³ plan survived with 2 runs, the
	// rebuilt 8³ plan has 1; the evicted plans' counters are gone.
	if got := pc.Stats().Runs; got != 3 {
		t.Errorf("aggregate live Runs = %d, want 3", got)
	}
}

// Engine + RunBatch: calls sharing a padded shape share one plan, and a
// repeated A operand is packed once across the batch.
func TestEngineRunBatch(t *testing.T) {
	im := testImpl(t)
	e := NewEngine(im)
	defer e.Close()
	m, n, k := 13, 19, 11
	a := randCM(m, k, 1)
	calls := make([]Call[float64], 4)
	wants := make([]*matrix.Matrix[float64], len(calls))
	for i := range calls {
		b := randCM(k, n, int64(10+i))
		c := randCM(m, n, int64(20+i))
		wants[i] = c.Clone()
		blas.GEMM(blas.NoTrans, blas.NoTrans, 2.0, a, b, 0.25, wants[i])
		calls[i] = Call[float64]{
			TransA: blas.NoTrans, TransB: blas.NoTrans,
			Alpha: 2.0, A: a, B: b, Beta: 0.25, C: c,
		}
	}
	if err := RunBatch(e, calls); err != nil {
		t.Fatal(err)
	}
	for i, cl := range calls {
		if d := matrix.MaxRelDiff(cl.C, wants[i]); d > 1e-12 {
			t.Errorf("call %d: diff %g", i, d)
		}
	}
	st := e.Cache64().Stats()
	if st.Runs != 4 || st.PackA != 1 || st.ReusedA != 3 || st.PackB != 4 {
		t.Errorf("batch stats: %+v", st)
	}

	// A bad call reports its index.
	bad := []Call[float64]{{TransA: blas.NoTrans, TransB: blas.NoTrans,
		Alpha: 1, A: randCM(4, 5, 1), B: randCM(6, 7, 2), Beta: 0, C: randCM(4, 7, 3)}}
	if err := RunBatch(e, bad); err == nil || !strings.Contains(err.Error(), "batch call 0") {
		t.Errorf("batch error attribution: %v", err)
	}
}

// The float32 cache of an engine built from a single-precision Impl.
func TestEngineFloat32(t *testing.T) {
	im := testImplSingle(t)
	e := NewEngine(im)
	defer e.Close()
	m, n, k := 10, 9, 7
	a := matrix.New[float32](m, k, matrix.ColMajor)
	b := matrix.New[float32](k, n, matrix.ColMajor)
	c := matrix.New[float32](m, n, matrix.ColMajor)
	rng := rand.New(rand.NewSource(9))
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	for i := 0; i < 2; i++ {
		if err := EngineRun(e, blas.NoTrans, blas.NoTrans, float32(1.5), a, b, float32(0.5), c); err != nil {
			t.Fatal(err)
		}
		blas.GEMM(blas.NoTrans, blas.NoTrans, float32(1.5), a, b, float32(0.5), want)
		// c was updated in place; want tracks the same recurrence.
		if d := matrix.MaxRelDiff(c, want); d > float64(matrix.Tolerance(matrix.Single, k)) {
			t.Errorf("run %d: diff %g", i, d)
		}
	}
	if st := e.Cache32().Stats(); st.ReusedA != 1 || st.ReusedB != 1 {
		t.Errorf("float32 reuse stats: %+v", st)
	}
}

// Work-group parallelism must be invisible in the results: serial and
// parallel execution of the same problem agree bit-for-bit.
func TestPlanWorkersDeterministic(t *testing.T) {
	m, n, k := 33, 29, 17
	a, b := randCM(m, k, 1), randCM(k, n, 2)
	var ref *matrix.Matrix[float64]
	for _, workers := range []int{1, 4, 0} {
		im := testImpl(t)
		im.SetWorkers(workers)
		c := randCM(m, n, 3)
		if err := Run(im, blas.NoTrans, blas.NoTrans, 1.5, a, b, -0.25, c); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = c
			continue
		}
		for i, v := range c.Data {
			if v != ref.Data[i] {
				t.Fatalf("workers=%d: C[%d] = %v, want %v (not bit-identical)", workers, i, v, ref.Data[i])
			}
		}
	}
}

// The steady-state plan path must allocate at least 10x fewer bytes per
// call than the cold one-shot path (the engine's reason to exist).
func TestPlanSteadyStateAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	// A deep problem (large k, one work-group of C) makes the setup the
	// plan amortizes — context, kernel builds, k-proportional device
	// buffers and uploads — dominate the cold path, while the warm path
	// reuses the packed operands entirely. Serial workers keep scheduler
	// allocations out of the comparison.
	im := testImpl(t)
	im.SetWorkers(1)
	m, n, k := 8, 8, 512
	a, b, c := randCM(m, k, 1), randCM(k, n, 2), randCM(m, n, 3)

	cold := testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if err := Run(im, blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
				bb.Fatal(err)
			}
		}
	})
	pl, err := NewPlan[float64](im, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	warm := testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
				bb.Fatal(err)
			}
		}
	})
	cb, wb := cold.AllocedBytesPerOp(), warm.AllocedBytesPerOp()
	t.Logf("cold %d B/op, warm %d B/op", cb, wb)
	if wb*10 > cb {
		t.Errorf("plan reuse saves too little: cold %d B/op vs warm %d B/op (want >= 10x)", cb, wb)
	}
}

// Exhaustive functional table: all four GEMM types at sizes crossing the
// blocking boundaries (1, below, just above, and well above a padded
// tile) in both storage orders and both precisions, against the host
// reference.
func TestGEMMTableAllTypes(t *testing.T) {
	sizes := []int{1, 7, 33, 129}
	t.Run("double", func(t *testing.T) {
		runGEMMTable[float64](t, testImpl(t), sizes)
	})
	t.Run("single", func(t *testing.T) {
		runGEMMTable[float32](t, testImplSingle(t), sizes)
	})
}

func runGEMMTable[T matrix.Scalar](t *testing.T, im *Impl, sizes []int) {
	// One cache large enough to hold every padded shape of the table, so
	// the sweep also exercises sustained plan reuse.
	pc := NewPlanCache[T](im, len(sizes)*len(sizes)*len(sizes))
	defer pc.Close()
	alpha, beta := T(1.25), T(-0.5)
	seed := int64(1)
	for _, order := range []matrix.Order{matrix.ColMajor, matrix.RowMajor} {
		for _, g := range blas.GEMMTypes {
			for _, m := range sizes {
				for _, n := range sizes {
					for _, k := range sizes {
						seed++
						ar, ac := m, k
						if g.TransA == blas.Trans {
							ar, ac = k, m
						}
						br, bc := k, n
						if g.TransB == blas.Trans {
							br, bc = n, k
						}
						rng := rand.New(rand.NewSource(seed))
						a := matrix.New[T](ar, ac, order)
						b := matrix.New[T](br, bc, order)
						c := matrix.New[T](m, n, order)
						a.FillRandom(rng)
						b.FillRandom(rng)
						c.FillRandom(rng)
						want := c.Clone()
						blas.GEMM(g.TransA, g.TransB, alpha, a, b, beta, want)
						if err := pc.Run(g.TransA, g.TransB, alpha, a, b, beta, c); err != nil {
							t.Fatalf("%s %v m=%d n=%d k=%d: %v", g, order, m, n, k, err)
						}
						if d := matrix.MaxRelDiff(c, want); d > matrix.Tolerance(im.Params.Precision, k) {
							t.Errorf("%s %v m=%d n=%d k=%d: diff %g", g, order, m, n, k, d)
						}
					}
				}
			}
		}
	}
}

// comparePlanPaths runs one full plan call (pack + kernel + readback)
// through the micro-kernel fast paths and through an implementation
// with ForceGenericKernels set, and demands bit-identical C output.
func comparePlanPaths[T matrix.Scalar](t *testing.T, p codegen.Params, ta, tb blas.Transpose, m, n, k int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	newMat := func(r, c int) *matrix.Matrix[T] {
		mt := matrix.New[T](r, c, matrix.ColMajor)
		mt.FillRandom(rng)
		return mt
	}
	a := newMat(m, k)
	if ta == blas.Trans {
		a = newMat(k, m)
	}
	b := newMat(k, n)
	if tb == blas.Trans {
		b = newMat(n, k)
	}
	c0 := newMat(m, n)

	run := func(forceGeneric bool) []T {
		im, err := New(device.Tahiti(), p)
		if err != nil {
			t.Fatal(err)
		}
		im.SetWorkers(1)
		im.SetForceGenericKernels(forceGeneric)
		pl, err := NewPlan[T](im, m, n, k)
		if err != nil {
			t.Fatal(err)
		}
		defer pl.Close()
		c := c0.Clone()
		if err := pl.Run(ta, tb, T(1.25), a, b, T(-0.5), c); err != nil {
			t.Fatal(err)
		}
		return c.Data
	}
	got := run(false)
	want := run(true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s ta=%v tb=%v: element %d not bit-identical: fast %v, generic %v",
				p.Name(), ta, tb, i, got[i], want[i])
		}
	}
}

// The fast-path plan must be bit-identical to the generic-path plan
// over sampled kernel parameter points × all three schedules × all four
// transpose types × both precisions, through the full padded pipeline
// (packs included).
func TestPlanFastPathMatchesGenericBitIdentical(t *testing.T) {
	samples := []codegen.Params{
		{ // BA, fully shared, blocked layouts (testImpl's point)
			Algorithm: codegen.BA,
			Mwg: 8, Nwg: 8, Kwg: 4,
			MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
			Kwi: 2, VectorWidth: 1,
			SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
		},
		{ // PL, one operand direct from global memory, mixed layouts, vw=2
			Algorithm: codegen.PL,
			Mwg: 8, Nwg: 8, Kwg: 4,
			MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
			Kwi: 2, VectorWidth: 2,
			SharedB: true,
			LayoutA: matrix.LayoutRowMajor, LayoutB: matrix.LayoutRBL,
		},
		{ // DB, even half-panels, blocked layouts
			Algorithm: codegen.DB,
			Mwg: 8, Nwg: 8, Kwg: 8,
			MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
			Kwi: 2, VectorWidth: 1,
			SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutRBL, LayoutB: matrix.LayoutCBL,
		},
		{ // strided point: both plans run the generic micro-kernel
			Algorithm: codegen.BA,
			Mwg: 8, Nwg: 8, Kwg: 4,
			MdimC: 4, NdimC: 4, MdimA: 4, NdimB: 4,
			Kwi: 2, VectorWidth: 1, StrideM: true, StrideN: true,
			SharedA: true, SharedB: true,
			LayoutA: matrix.LayoutCBL, LayoutB: matrix.LayoutCBL,
		},
	}
	m, n, k := 13, 19, 11 // pads on every side
	var seed int64 = 40
	for _, p := range samples {
		for _, g := range blas.GEMMTypes {
			seed++
			pd := p
			pd.Precision = matrix.Double
			comparePlanPaths[float64](t, pd, g.TransA, g.TransB, m, n, k, seed)
			ps := p
			ps.Precision = matrix.Single
			comparePlanPaths[float32](t, ps, g.TransA, g.TransB, m, n, k, seed)
		}
	}
}
