package gemmimpl

import (
	"testing"
	"time"

	"oclgemm/internal/blas"
	"oclgemm/internal/matrix"
	"oclgemm/internal/obs"
)

// fingerprint must mix the dimensions and storage order into the hash
// state. The old hash covered only the element stream, so every
// reshaping of one backing slice — 2×8, 4×4, 8×2, row- or col-major,
// all walking the same 16 values in the same order — collided, and the
// engine's pack-skip could reuse a buffer packed for a different shape.
func TestFingerprintMixesShapeAndOrder(t *testing.T) {
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i + 1)
	}
	cases := []struct {
		name string
		m    *matrix.Matrix[float64]
	}{
		{"2x8 row-major", matrix.FromSlice(2, 8, matrix.RowMajor, data)},
		{"4x4 row-major", matrix.FromSlice(4, 4, matrix.RowMajor, data)},
		{"8x2 row-major", matrix.FromSlice(8, 2, matrix.RowMajor, data)},
		{"2x8 col-major", matrix.FromSlice(2, 8, matrix.ColMajor, data)},
		{"4x4 col-major", matrix.FromSlice(4, 4, matrix.ColMajor, data)},
	}
	seen := map[uint64]string{}
	for _, tc := range cases {
		fp := fingerprint(tc.m)
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision: %s and %s both hash to %#x", prev, tc.name, fp)
		}
		seen[fp] = tc.name
	}
	// Stability: same logical matrix, same fingerprint.
	if fingerprint(cases[0].m) != fingerprint(matrix.FromSlice(2, 8, matrix.RowMajor, data)) {
		t.Error("fingerprint not deterministic for equal matrices")
	}
}

// An instrumented plan must record its per-phase breakdown and call
// counters, and the pack-skip fast path must show up as reuse counts.
func TestPlanPhaseMetricsAndReuseCounters(t *testing.T) {
	im := testImpl(t)
	im.SetWorkers(1)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	im.SetObservability(reg, tr)

	const m, n, k = 24, 24, 12
	pl, err := NewPlan[float64](im, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	a := randCM(m, k, 1)
	b := randCM(k, n, 2)
	c := randCM(m, n, 3)
	const calls = 3
	for i := 0; i < calls; i++ {
		if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
			t.Fatal(err)
		}
	}

	s := reg.Snapshot()
	if got := s.Counters["gemm.calls"]; got != calls {
		t.Errorf("gemm.calls = %d, want %d", got, calls)
	}
	for _, name := range []string{
		"gemm.call.seconds",
		"gemm.phase.pack.A.seconds",
		"gemm.phase.pack.B.seconds",
		"gemm.phase.kernel.seconds",
		"gemm.phase.copy.out.seconds",
	} {
		if h, ok := s.Histograms[name]; !ok || h.Count == 0 {
			t.Errorf("histogram %s missing or empty (%+v)", name, h)
		}
	}
	// Calls 2 and 3 hit the unchanged-operand fast path.
	if got := s.Counters["gemm.pack.reused.A"]; got != calls-1 {
		t.Errorf("gemm.pack.reused.A = %d, want %d", got, calls-1)
	}
	if got := s.Counters["gemm.pack.reused.B"]; got != calls-1 {
		t.Errorf("gemm.pack.reused.B = %d, want %d", got, calls-1)
	}
	if tr.Len() == 0 {
		t.Error("tracer recorded no spans")
	}
}

// bestNsPerOp runs the benchmark a few times and keeps the fastest
// result, the standard defense against scheduler noise in CI.
func bestNsPerOp(rounds int, fn func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// The warm-plan instrumentation tax must stay under 5%: the point of
// the pre-resolved nil-safe instruments is that serving paths can stay
// instrumented in production.
func TestWarmPlanOverheadUnderFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	const m, n, k = 128, 128, 64
	a := randCM(m, k, 1)
	b := randCM(k, n, 2)
	c := randCM(m, n, 3)

	run := func(instrumented bool) func(bench *testing.B) {
		im := testImpl(t)
		im.SetWorkers(1)
		if instrumented {
			im.SetObservability(obs.NewRegistry(), obs.NewTracer(0))
		}
		pl, err := NewPlan[float64](im, m, n, k)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(pl.Close)
		// Warm: buffers packed, fingerprints cached, kernels built.
		if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
			t.Fatal(err)
		}
		return func(bench *testing.B) {
			for i := 0; i < bench.N; i++ {
				if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
					bench.Fatal(err)
				}
			}
		}
	}

	plainFn := run(false)
	instrFn := run(true)
	const rounds = 3
	plain := bestNsPerOp(rounds, plainFn)
	instr := bestNsPerOp(rounds, instrFn)

	overhead := (instr - plain) / plain
	t.Logf("warm plan.Run: plain %.0f ns/op, instrumented %.0f ns/op, overhead %.2f%%",
		plain, instr, 100*overhead)
	if overhead > 0.05 {
		t.Errorf("instrumentation overhead %.2f%% exceeds 5%% budget (plain %v, instrumented %v)",
			100*overhead, time.Duration(plain), time.Duration(instr))
	}
}

// The warm kernel phase must perform zero allocations: work-group state
// and local-memory slabs are pooled in the kernel, GroupRun frames in
// the queue, and the serial lockstep loop is closure-free. This is the
// allocation regression gate for the micro-kernel layer — it holds on
// the fast path and on the forced-generic path alike.
func TestWarmKernelPhaseZeroAllocs(t *testing.T) {
	for _, forceGeneric := range []bool{false, true} {
		name := "fast"
		if forceGeneric {
			name = "generic"
		}
		t.Run(name, func(t *testing.T) {
			im := testImpl(t)
			im.SetWorkers(1)
			im.SetForceGenericKernels(forceGeneric)
			const m, n, k = 24, 24, 12
			pl, err := NewPlan[float64](im, m, n, k)
			if err != nil {
				t.Fatal(err)
			}
			defer pl.Close()
			a, b, c := randCM(m, k, 1), randCM(k, n, 2), randCM(m, n, 3)
			// Warm: packs done, state and GroupRun pools populated.
			if err := pl.Run(blas.NoTrans, blas.NoTrans, 1.0, a, b, 0.0, c); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := pl.q.RunLockstep(pl.kern, pl.kern.NDRange()); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("warm kernel phase (%s path) allocated %.1f objects/op, want 0", name, allocs)
			}
		})
	}
}
